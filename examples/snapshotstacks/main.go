// Snapshot stacks: the §3 example. Functions Foo() and Bar() are both
// snapshotted, but the three-snapshot stack (runtime, Foo diff, Bar
// diff) shares the ~113 MB interpreter image — each function costs only
// its ~2 MB page-level diff, which is what lets a node cache tens of
// thousands of functions.
package main

import (
	"fmt"
	"log"

	"seuss"
)

const fooSrc = `
var fooState = {calls: 0};
function main(args) {
	fooState.calls = fooState.calls + 1;
	return {fn: "foo", calls: fooState.calls};
}
`

const barSrc = `
function main(args) {
	var out = [];
	for (var i = 0; i < args.n; i++) { out.push(i * i); }
	return {fn: "bar", squares: out};
}
`

func main() {
	sim := seuss.New()
	node, err := sim.NewNode(seuss.NodeDefaults())
	if err != nil {
		log.Fatal(err)
	}
	base := node.Stats().MemoryUsedBytes
	fmt.Printf("after system init:    %7.1f MB (runtime snapshot: interpreter + driver)\n", mb(base))

	if _, err := node.InvokeSync("alice/foo", fooSrc, `{}`); err != nil {
		log.Fatal(err)
	}
	afterFoo := node.Stats().MemoryUsedBytes
	fmt.Printf("after snapshotting Foo: %5.1f MB (+%.1f MB: Foo's page-level diff + its idle UC)\n",
		mb(afterFoo), mb(afterFoo-base))

	if _, err := node.InvokeSync("bob/bar", barSrc, `{"n": 4}`); err != nil {
		log.Fatal(err)
	}
	afterBar := node.Stats().MemoryUsedBytes
	fmt.Printf("after snapshotting Bar: %5.1f MB (+%.1f MB: Bar's diff — the interpreter is shared)\n",
		mb(afterBar), mb(afterBar-afterFoo))

	// With only whole-image snapshots this would be ≈2 × 113 MB. With
	// snapshot stacks it is 113 MB + two small diffs.
	fmt.Printf("\nnaive per-function images would need ≈%.0f MB; the stack uses %.1f MB\n",
		2*mb(base), mb(afterBar))

	// Both functions stay independently warm.
	for i := 0; i < 2; i++ {
		inv, err := node.InvokeSync("alice/foo", fooSrc, `{}`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("foo again: path=%s output=%s\n", inv.Path, inv.Output)
	}
	inv, err := node.InvokeSync("bob/bar", barSrc, `{"n": 3}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bar again: path=%s output=%s\n", inv.Path, inv.Output)
}

func mb(b int64) float64 { return float64(b) / 1e6 }
