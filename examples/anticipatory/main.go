// Anticipatory optimization (§3, Table 2): run the same cold and warm
// invocations on three nodes whose base runtime snapshots were captured
// with different amounts of pre-execution — none, network warming only,
// and network + interpreter warming — and watch redundant first-time
// paths vanish from the invocation latencies.
package main

import (
	"fmt"
	"log"
	"time"

	"seuss"
)

func main() {
	configs := []struct {
		label string
		cfg   seuss.NodeConfig
	}{
		{"No AO", seuss.NodeConfig{}},
		{"Network AO", seuss.NodeConfig{NetworkAO: true}},
		{"Network + Interpreter AO", seuss.NodeConfig{NetworkAO: true, InterpreterAO: true}},
	}

	fmt.Printf("%-26s  %-12s  %-12s  %-12s\n", "Snapshot preparation", "cold start", "warm start", "hot start")
	for _, c := range configs {
		cold, warm, hot := measure(c.cfg)
		fmt.Printf("%-26s  %-12v  %-12v  %-12v\n", c.label, cold, warm, hot)
	}
	fmt.Println("\n(paper Table 2: cold 42 / 16.8 / 7.5 ms; warm 7.6 / 5.5 / 3.5 ms)")
}

// measure runs one cold, one warm, and one hot NOP invocation on a
// fresh node with the given AO configuration.
func measure(cfg seuss.NodeConfig) (cold, warm, hot time.Duration) {
	sim := seuss.New()
	node, err := sim.NewNode(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Cold: nothing cached for this function yet.
	inv, err := node.InvokeSync("demo/nop", seuss.NOPSource, `{}`)
	if err != nil {
		log.Fatal(err)
	}
	cold = inv.Latency

	// The cold path cached an idle UC; the next call is hot.
	inv, err = node.InvokeSync("demo/nop", seuss.NOPSource, `{}`)
	if err != nil {
		log.Fatal(err)
	}
	hot = inv.Latency

	// Drain the idle cache in parallel: two concurrent requests make
	// one of them deploy from the function snapshot — the warm path.
	var a, b seuss.Invocation
	sim.Spawn("w1", func(t *seuss.Task) { a, _ = node.Invoke(t, "demo/nop", seuss.NOPSource, `{}`) })
	sim.Spawn("w2", func(t *seuss.Task) { b, _ = node.Invoke(t, "demo/nop", seuss.NOPSource, `{}`) })
	sim.Run()
	warm = a.Latency
	if b.Path == "warm" {
		warm = b.Latency
	}
	return cold, warm, hot
}
