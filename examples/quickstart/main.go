// Quickstart: boot a SEUSS compute node, invoke a function three times,
// and watch the invocation path progress cold → hot as the node caches
// a function snapshot and an idle unikernel context.
package main

import (
	"fmt"
	"log"

	"seuss"
)

const hello = `
function main(args) {
	var greeting = "hello, " + args.name + "!";
	return {greeting: greeting, length: greeting.length};
}
`

func main() {
	sim := seuss.New()

	// System initialization (§4): boot the unikernel into the Node.js
	// stand-in, run the invocation driver, apply the anticipatory
	// optimizations, capture the base runtime snapshot.
	node, err := sim.NewNode(seuss.NodeDefaults())
	if err != nil {
		log.Fatal(err)
	}

	// First invocation: the cold path. The UC is deployed from the
	// runtime snapshot, the source is imported and compiled, and a
	// function-specific snapshot is captured for the future.
	for i := 1; i <= 3; i++ {
		inv, err := node.InvokeSync("demo/hello", hello, `{"name": "seuss"}`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("invocation %d: path=%-4s latency=%8v output=%s\n",
			i, inv.Path, inv.Latency, inv.Output)
	}

	st := node.Stats()
	fmt.Printf("\nnode: %d cold / %d warm / %d hot; %d snapshot(s) cached; %d idle UC(s); %.1f MB used\n",
		st.Cold, st.Warm, st.Hot, st.CachedSnapshots, st.IdleUCs, float64(st.MemoryUsedBytes)/1e6)
}
