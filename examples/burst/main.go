// Burst resiliency (§7, Figures 6-8): expose both platform backends to
// a steady background stream of IO-bound functions plus periodic bursts
// of never-before-seen CPU-bound functions, and compare how each copes.
// On the Linux container backend the bursts drain the stemcell cache
// and requests start failing; the SEUSS node serves every request from
// snapshots.
package main

import (
	"fmt"
	"log"
	"time"

	"seuss"
)

func main() {
	const period = 16 * time.Second
	for _, backend := range []string{"linux", "seuss"} {
		tl := run(backend, period)
		bg := seuss.Summarize(tl.Latencies("background"))
		bu := seuss.Summarize(tl.Latencies("burst"))
		fmt.Printf("%-5s  background: %4d reqs %3d errors p50=%-8v p99=%-8v max gap=%v\n",
			backend, tl.Count("background"), tl.Errors("background"),
			bg.P50.Round(time.Millisecond), bg.P99.Round(time.Millisecond),
			tl.MaxGap("background").Round(time.Millisecond))
		fmt.Printf("       bursts:     %4d reqs %3d errors p50=%-8v p99=%-8v\n",
			tl.Count("burst"), tl.Errors("burst"),
			bu.P50.Round(time.Millisecond), bu.P99.Round(time.Millisecond))
	}
}

func run(backend string, period time.Duration) *seuss.Timeline {
	sim := seuss.New()
	var cluster *seuss.Cluster
	var err error
	switch backend {
	case "seuss":
		cfg := seuss.NodeDefaults()
		cfg.HTTPHandler = func(url string) (string, time.Duration, error) {
			return "OK", 250 * time.Millisecond, nil // the external server blocks 250 ms
		}
		cluster, err = sim.NewSeussCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
	case "linux":
		cluster = sim.NewLinuxCluster(seuss.LinuxConfig{Stemcells: 256, ContainerLimit: 1024})
	}

	bgFns := make([]seuss.Function, 16)
	for i := range bgFns {
		bgFns[i] = seuss.IOBound(fmt.Sprintf("bg%02d/io", i), "http://ext/block", 250*time.Millisecond)
	}
	if backend == "seuss" {
		// The SEUSS guest blocks inside http.get; zero the modeled IO
		// so it is not double-counted.
		for i := range bgFns {
			bgFns[i].IO = 0
		}
	}
	return cluster.RunBurst(seuss.Burst{
		Threads:    128,
		BGFns:      bgFns,
		BGRate:     72,
		BurstEvery: period,
		BurstSize:  128,
		BurstCPUms: 150,
		Bursts:     6,
		Seed:       1,
	})
}
