// Multiple interpreters (§4): SEUSS keeps one base runtime snapshot per
// supported language runtime — the prototype ports both Node.js and
// Python onto Rumprun. Each runtime's functions deploy from their own
// base image; the snapshot caches stay separate; both get the same
// cold → hot progression.
package main

import (
	"fmt"
	"log"

	"seuss"
)

const fn = `function main(args) { return {runtime: args.rt, value: args.n * 3}; }`

func main() {
	sim := seuss.New()
	cfg := seuss.NodeDefaults()
	cfg.Runtimes = []string{"nodejs", "python"}
	node, err := sim.NewNode(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, rt := range []string{"nodejs", "python"} {
		for i := 0; i < 2; i++ {
			var inv seuss.Invocation
			var ierr error
			rtCopy := rt
			sim.Spawn("client", func(t *seuss.Task) {
				inv, ierr = node.InvokeRuntime(t, rtCopy, rtCopy+"/demo", fn, fmt.Sprintf(`{"rt": %q, "n": 7}`, rtCopy))
			})
			sim.Run()
			if ierr != nil {
				log.Fatal(ierr)
			}
			fmt.Printf("%-7s invocation %d: path=%-4s latency=%8v %s\n", rt, i+1, inv.Path, inv.Latency, inv.Output)
		}
	}

	st := node.Stats()
	fmt.Printf("\nnode caches %d function snapshots across 2 runtime base images; %.1f MB used\n",
		st.CachedSnapshots, float64(st.MemoryUsedBytes)/1e6)
}
