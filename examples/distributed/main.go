// DR-SEUSS (§9 future work): a distributed, replicated global snapshot
// cache. Unikernel snapshots are read-only and every UC shares one
// network identity, so a snapshot captured on one node deploys on any
// node with the same base image. The cluster's directory makes a
// function cold at most once per *cluster*; under load, snapshot diffs
// migrate over the 10 GbE fabric and the function becomes warm
// everywhere.
package main

import (
	"fmt"
	"log"

	"seuss"
)

const fn = `
function main(args) {
	var total = 0;
	for (var i = 0; i < args.n; i++) { total += i; }
	return {sum: total};
}
`

func main() {
	sim := seuss.New()
	dc, err := sim.NewDistCluster(seuss.DistConfig{Nodes: 3, Policy: seuss.PolicyMigrate})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, policy=migrate\n\n", dc.Nodes())

	// First invocation: cold, once, somewhere.
	inv, node, err := dc.InvokeSync("team/sum", fn, `{"n": 100}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request 1: node=%d path=%-4s latency=%8v %s\n", node, inv.Path, inv.Latency, inv.Output)

	// Sixteen concurrent requests: the holder overloads, the snapshot
	// migrates, and the function is served warm from multiple nodes.
	type outcome struct {
		node int
		path string
	}
	var outcomes []outcome
	for i := 0; i < 16; i++ {
		sim.Spawn("client", func(t *seuss.Task) {
			inv, node, err := dc.Invoke(t, "team/sum", fn, `{"n": 100}`)
			if err != nil {
				log.Fatal(err)
			}
			outcomes = append(outcomes, outcome{node, inv.Path})
		})
	}
	sim.Run()

	perNode := map[int]int{}
	cold := 0
	for _, o := range outcomes {
		perNode[o.node]++
		if o.path == "cold" {
			cold++
		}
	}
	fmt.Printf("\n16 concurrent requests served by nodes: %v (cold paths: %d)\n", perNode, cold)

	st := dc.Stats()
	fmt.Printf("cluster stats: colds=%d migrations=%d migrated=%.1f MB holders=%v\n",
		st.ClusterColds, st.Migrations, float64(st.MigratedBytes)/1e6, dc.Holders("team/sum"))
}
