package sched

import (
	"sort"
	"sync"
)

// Layer is one content-addressed snapshot layer a node's disk tier
// advertises: the tier key, its base dependency, and the FNV-64a digest
// of the encoded bytes. Two nodes advertising the same digest hold
// byte-identical layers — the dedup unit of the fabric.
type Layer struct {
	Key    string
	Base   string
	Digest uint64
	Size   int64
}

// MemberState is the scheduler's liveness belief about one node,
// driven by heartbeats piggybacked on gossip rounds: a node whose
// report lands is alive; one that misses K consecutive rounds is
// suspect; one that keeps missing is declared dead and has its view
// entries purged. The zero value is StateAlive, so callers that never
// run the heartbeat machinery (the shardpool router) see every node as
// placeable.
type MemberState int

const (
	// StateAlive: heartbeats landing; the node takes placements.
	StateAlive MemberState = iota
	// StateSuspect: K or more consecutive heartbeats missed; placers
	// skip the node as a holder but its entries are retained — a single
	// resumed report restores it.
	StateSuspect
	// StateDead: the suspicion deadline passed; the node's view entries
	// are purged and orphaned lineages become repair work.
	StateDead
)

var memberStateNames = [...]string{"alive", "suspect", "dead"}

// String implements fmt.Stringer.
func (s MemberState) String() string { return memberStateNames[s] }

// nodeView is what the scheduler believes about one node.
type nodeView struct {
	// fabric is whether the node runs a content-addressed disk store
	// (set once at cluster boot, not gossiped).
	fabric bool
	// state is the heartbeat-driven liveness belief; missed counts the
	// consecutive heartbeat rounds the node has failed to report.
	state  MemberState
	missed int
	// resident is the node's RAM-resident function snapshots, keyed by
	// function key. Updated synchronously on serve/transfer success and
	// replaced wholesale by gossip.
	resident map[string]bool
	// layers is the node's advertised disk-tier manifest, keyed by tier
	// key. Replaced wholesale by gossip.
	layers map[string]Layer
}

// View is the scheduler's shared state: per-node snapshot residency
// and disk-tier layer manifests.
//
// Concurrency contract: View is the ONLY scheduler state shared across
// goroutines, and every method is safe for concurrent use — lookups
// (ResidentHolders, TierHolders, Resident, Layer) may run concurrently
// with a gossip Refresh, serialized by an internal RWMutex. Placers,
// by contrast, are single-writer (see Placer); they read the view but
// keep their own cursor/scratch state unshared.
//
// Staleness model: MarkResident/DropResident keep the view exact for
// transitions the scheduler itself performs (a serve, a fetch, a
// prune). Evictions happen inside nodes without the scheduler's
// knowledge; gossip's wholesale Refresh is what eventually drops those
// entries, and the placement verifier prunes any it trips over first.
type View struct {
	mu    sync.RWMutex
	nodes []nodeView
	gen   int64 // bumped per Refresh (tests, debugging)
}

// NewView returns an empty view over n nodes.
func NewView(n int) *View {
	v := &View{nodes: make([]nodeView, n)}
	for i := range v.nodes {
		v.nodes[i] = nodeView{
			resident: make(map[string]bool),
			layers:   make(map[string]Layer),
		}
	}
	return v
}

// Nodes returns the view's node count.
func (v *View) Nodes() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.nodes)
}

// SetFabric records whether a node runs a content-addressed disk store.
func (v *View) SetFabric(node int, on bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nodes[node].fabric = on
}

// Fabric reports whether a node runs a content-addressed disk store.
func (v *View) Fabric(node int) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.nodes[node].fabric
}

// State returns the liveness belief for a node.
func (v *View) State(node int) MemberState {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.nodes[node].state
}

// Alive reports whether the view believes a node is taking placements.
func (v *View) Alive(node int) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.nodes[node].state == StateAlive
}

// Missed returns how many consecutive heartbeat rounds a node has
// failed to report (0 while alive).
func (v *View) Missed(node int) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.nodes[node].missed
}

// ReportHeartbeat records that a node's gossip report landed this
// round: its missed count resets and it is believed alive again.
// Returns the state the node held before the report, so the caller can
// count and trace recoveries.
func (v *View) ReportHeartbeat(node int) MemberState {
	v.mu.Lock()
	defer v.mu.Unlock()
	prev := v.nodes[node].state
	v.nodes[node].state = StateAlive
	v.nodes[node].missed = 0
	return prev
}

// MissHeartbeat records that a node failed to report this gossip round
// and advances the state machine: alive → suspect after suspectAfter
// consecutive misses, suspect → dead after deadAfter. Returns the
// states before and after so the caller can count transitions. A dead
// node stays dead until a report lands (ReportHeartbeat).
func (v *View) MissHeartbeat(node, suspectAfter, deadAfter int) (from, to MemberState) {
	v.mu.Lock()
	defer v.mu.Unlock()
	nv := &v.nodes[node]
	from = nv.state
	nv.missed++
	switch {
	case nv.missed >= deadAfter:
		nv.state = StateDead
	case nv.missed >= suspectAfter:
		nv.state = StateSuspect
	}
	return from, nv.state
}

// PurgeNode drops everything the view believes about a node's contents
// — its residency entries and advertised layers — and returns how many
// entries were pruned. Called when a node is declared dead (its RAM is
// gone and its disk unreachable) and when a rejoining node resyncs
// from scratch.
func (v *View) PurgeNode(node int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	nv := &v.nodes[node]
	n := len(nv.resident) + len(nv.layers)
	nv.resident = make(map[string]bool)
	nv.layers = make(map[string]Layer)
	return n
}

// FilterAlive removes (in place) the IDs of nodes not believed alive
// and returns the filtered slice — the holder-liveness filter placers
// apply before routing.
func (v *View) FilterAlive(ids []int) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := ids[:0]
	for _, id := range ids {
		if v.nodes[id].state == StateAlive {
			out = append(out, id)
		}
	}
	return out
}

// Refresh replaces one node's gossiped state wholesale: its resident
// function keys and its disk-tier layer manifest. Entries the node no
// longer holds disappear from the view here — gossip is the staleness
// collector.
func (v *View) Refresh(node int, resident []string, layers []Layer) {
	res := make(map[string]bool, len(resident))
	for _, k := range resident {
		res[k] = true
	}
	lay := make(map[string]Layer, len(layers))
	for _, l := range layers {
		lay[l.Key] = l
	}
	v.mu.Lock()
	v.nodes[node].resident = res
	v.nodes[node].layers = lay
	v.gen++
	v.mu.Unlock()
}

// Generation returns how many Refresh calls the view has absorbed.
func (v *View) Generation() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gen
}

// MarkResident records that a node now holds a function snapshot (a
// successful serve, fetch, or migration).
func (v *View) MarkResident(node int, key string) {
	v.mu.Lock()
	v.nodes[node].resident[key] = true
	v.mu.Unlock()
}

// DropResident removes a residency entry (a stale-directory prune).
func (v *View) DropResident(node int, key string) {
	v.mu.Lock()
	delete(v.nodes[node].resident, key)
	v.mu.Unlock()
}

// DropLayer removes an advertised tier layer (a stale-manifest prune).
func (v *View) DropLayer(node int, key string) {
	v.mu.Lock()
	delete(v.nodes[node].layers, key)
	v.mu.Unlock()
}

// Resident reports whether the view believes node holds key in RAM.
func (v *View) Resident(node int, key string) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.nodes[node].resident[key]
}

// AppendResidentHolders appends (to dst) the IDs of nodes believed to
// hold key in RAM, in ascending node order, and returns the extended
// slice — the allocation-free lookup the hot path uses.
func (v *View) AppendResidentHolders(dst []int, key string) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for i := range v.nodes {
		if v.nodes[i].resident[key] {
			dst = append(dst, i)
		}
	}
	return dst
}

// ResidentHolders returns the nodes believed to hold key in RAM, in
// ascending node order. Allocates; hot paths use the Append form.
func (v *View) ResidentHolders(key string) []int {
	return v.AppendResidentHolders(nil, key)
}

// AppendTierHolders appends the IDs of nodes whose advertised disk
// manifest contains the lineage key, in ascending node order.
func (v *View) AppendTierHolders(dst []int, lineage string) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for i := range v.nodes {
		if _, ok := v.nodes[i].layers[lineage]; ok {
			dst = append(dst, i)
		}
	}
	return dst
}

// Layer returns a node's advertised layer for a tier key.
func (v *View) Layer(node int, key string) (Layer, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	l, ok := v.nodes[node].layers[key]
	return l, ok
}

// Layers returns a node's advertised manifest sorted by key (tests,
// introspection).
func (v *View) Layers(node int) []Layer {
	v.mu.RLock()
	out := make([]Layer, 0, len(v.nodes[node].layers))
	for _, l := range v.nodes[node].layers {
		out = append(out, l)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
