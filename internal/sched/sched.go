// Package sched is the shared scheduler layer: the placement policy
// that used to live inside internal/cluster's pick() and, in ad-hoc
// form, inside the shardpool router and faas front doors.
//
// The split of responsibilities is:
//
//   - View (view.go) is the scheduler's shared state: which node holds
//     which function snapshot in RAM, and which content-addressed
//     layers each node's disk tier advertises. It is the one piece of
//     scheduler state touched from multiple goroutines, so it is
//     lock-protected (RWMutex) and safe for concurrent lookups during
//     a gossip refresh.
//   - Placer turns one request plus the view into a decision: which
//     node serves it, and by which action (cold, route, fetch the
//     missing layers, or migrate the whole diff). Placers are
//     single-writer by contract — one owner goroutine per placer —
//     and the built-in placers assert that contract at runtime.
//
// The caller (internal/cluster) owns verification and mechanics: it
// checks the decision against ground truth (a holder may have evicted
// since the last gossip round), prunes stale view entries, and executes
// transfers. The placer only decides.
package sched

import (
	"fmt"
	"sync/atomic"
)

// Action is what the placer tells the caller to do with a request.
type Action int

const (
	// ActionCold places the request on a node with no snapshot
	// anywhere: the function pays its once-per-cluster cold start.
	ActionCold Action = iota
	// ActionRoute forwards the request to a node already holding the
	// snapshot (in RAM, or on disk for a lukewarm restore).
	ActionRoute
	// ActionFetch pulls only the missing snapshot-stack layers from the
	// holder's content-addressed store to the chosen node, then serves
	// there — layers already present locally (by digest) ship nothing.
	ActionFetch
	// ActionMigrate ships the holder's whole snapshot diff to the
	// chosen node and grafts it there.
	ActionMigrate
)

var actionNames = [...]string{"cold", "route", "fetch", "migrate"}

// String implements fmt.Stringer.
func (a Action) String() string { return actionNames[a] }

// NodeState is one node's load and health input to a placement.
type NodeState struct {
	// ID indexes the node in the cluster's member list.
	ID int
	// Inflight is the node's requests currently being served.
	Inflight int
	// Healthy is false when the node's breaker (or equivalent) says it
	// should not take new placements; an all-unhealthy cluster falls
	// back to ignoring the flag (serving degraded beats serving nobody).
	Healthy bool
}

// Request is one placement question.
type Request struct {
	// Key is the function key.
	Key string
	// Lineage is the function's snapshot-tier key ("fn/<key>").
	Lineage string
	// Nodes is the per-node load/health state. The slice may be reused
	// by the caller between calls; placers must not retain it.
	Nodes []NodeState
	// View is the gossip-refreshed residency and layer state.
	View *View
}

// Placement is the decision.
type Placement struct {
	// Node serves the request.
	Node int
	// Action is how the node gets ready to serve it.
	Action Action
	// Holder is the source node for ActionFetch/ActionMigrate and the
	// serving holder for ActionRoute; -1 when no holder is involved.
	Holder int
}

// Placer decides where one request runs. Implementations are
// single-writer: exactly one goroutine calls Place on a given placer
// (the cluster's engine goroutine). Cross-goroutine scheduler state
// belongs in the View, which is lock-protected.
type Placer interface {
	Place(r Request) Placement
	// Name identifies the policy in reports and experiment output.
	Name() string
}

// singleWriter asserts the Placer ownership contract at runtime: a
// second goroutine entering Place concurrently panics immediately
// instead of corrupting the cursor/scratch state silently.
type singleWriter struct{ busy atomic.Bool }

func (sw *singleWriter) enter(who string) {
	if !sw.busy.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("sched: %s.Place called concurrently; placers are single-writer by contract", who))
	}
}

func (sw *singleWriter) exit() { sw.busy.Store(false) }

// LocalityPlacer is the default policy: serve where the snapshot
// already lives. A request routes to its least-loaded holder while the
// holder keeps up; once the holder is Slack requests busier than the
// cluster's least-loaded node and Replicate is set, the function
// replicates there — by layer fetch when both ends run the
// content-addressed fabric, by whole-diff migration otherwise. With no
// RAM holder anywhere, a node advertising the lineage on disk serves
// lukewarm; failing that, the request is cold exactly once per cluster,
// placed least-loaded with a round-robin tie-break.
type LocalityPlacer struct {
	// Replicate allows fetch/migrate placements when a holder is
	// overloaded (the cluster's PolicyMigrate). False always routes.
	Replicate bool
	// Slack is how many in-flight requests beyond the least-loaded
	// node's a holder may carry before it counts as overloaded
	// (default 1).
	Slack int

	sw      singleWriter
	cursor  int
	holders []int // scratch, reused across calls
}

// Name implements Placer.
func (lp *LocalityPlacer) Name() string {
	if lp.Replicate {
		return "locality-replicate"
	}
	return "locality-route"
}

// Place implements Placer.
func (lp *LocalityPlacer) Place(r Request) Placement {
	lp.sw.enter("LocalityPlacer")
	defer lp.sw.exit()
	slack := lp.Slack
	if slack <= 0 {
		slack = 1
	}
	least := leastLoaded(r.Nodes, &lp.cursor)

	// Holders the heartbeat machinery believes non-alive are skipped:
	// routing to a suspect node gambles the request on a member that has
	// stopped reporting, and a dead one is certain to fail over.
	lp.holders = r.View.FilterAlive(r.View.AppendResidentHolders(lp.holders[:0], r.Key))
	holder := minInflight(r.Nodes, lp.holders)
	if holder < 0 {
		// No reachable RAM holder. A live node holding the lineage in
		// its disk tier serves lukewarm — far cheaper than another
		// cluster cold.
		lp.holders = r.View.FilterAlive(r.View.AppendTierHolders(lp.holders[:0], r.Lineage))
		if h := minInflight(r.Nodes, lp.holders); h >= 0 {
			return Placement{Node: h, Action: ActionRoute, Holder: h}
		}
		// No live holder and no live disk copy: the request is never
		// stranded — it cold-boots locally on the least-loaded node.
		return Placement{Node: least.ID, Action: ActionCold, Holder: -1}
	}

	hs := stateOf(r.Nodes, holder)
	if !lp.Replicate || hs.Inflight <= least.Inflight+slack {
		return Placement{Node: holder, Action: ActionRoute, Holder: holder}
	}
	// The holder is overloaded and replication is allowed.
	if r.View.Resident(least.ID, r.Key) {
		// A replica already lives on the least-loaded node.
		return Placement{Node: least.ID, Action: ActionRoute, Holder: least.ID}
	}
	if r.View.Fabric(holder) && r.View.Fabric(least.ID) {
		return Placement{Node: least.ID, Action: ActionFetch, Holder: holder}
	}
	return Placement{Node: least.ID, Action: ActionMigrate, Holder: holder}
}

// LeastLoadedPlacer ignores locality entirely: every request goes to
// the least-loaded node, which pays its own cold start if it has never
// seen the function. It is the "local-only" baseline arm of the fabric
// experiment — what a cluster without the snapshot directory does.
type LeastLoadedPlacer struct {
	sw     singleWriter
	cursor int
}

// Name implements Placer.
func (lb *LeastLoadedPlacer) Name() string { return "least-loaded" }

// Place implements Placer.
func (lb *LeastLoadedPlacer) Place(r Request) Placement {
	lb.sw.enter("LeastLoadedPlacer")
	defer lb.sw.exit()
	least := leastLoaded(r.Nodes, &lb.cursor)
	if r.View.Resident(least.ID, r.Key) && r.View.Alive(least.ID) {
		return Placement{Node: least.ID, Action: ActionRoute, Holder: least.ID}
	}
	return Placement{Node: least.ID, Action: ActionCold, Holder: -1}
}

// leastLoaded picks the healthy node with the fewest in-flight
// requests; ties rotate round-robin through cursor so sequential
// traffic still spreads. If no node is healthy, health is ignored.
func leastLoaded(nodes []NodeState, cursor *int) NodeState {
	n := len(nodes)
	anyHealthy := false
	for i := range nodes {
		if nodes[i].Healthy {
			anyHealthy = true
			break
		}
	}
	best := -1
	for i := 0; i < n; i++ {
		j := (*cursor + i) % n
		if anyHealthy && !nodes[j].Healthy {
			continue
		}
		if best < 0 || nodes[j].Inflight < nodes[best].Inflight {
			best = j
		}
	}
	*cursor++
	return nodes[best]
}

// minInflight returns the ID of the least-loaded healthy node among
// ids (first-wins on ties, matching the old holderFor), or -1 when ids
// is empty or every candidate is unhealthy — unlike leastLoaded there
// is no all-unhealthy fallback, because a holder the caller marked
// unhealthy (down, or the member a retry just failed on) must not be
// re-picked; the placer degrades to tier holders or a cold boot
// instead.
func minInflight(nodes []NodeState, ids []int) int {
	best := -1
	bestIn := 0
	for _, id := range ids {
		s := stateOf(nodes, id)
		if !s.Healthy {
			continue
		}
		if best < 0 || s.Inflight < bestIn {
			best, bestIn = id, s.Inflight
		}
	}
	return best
}

// stateOf resolves a node ID against the request's state slice.
func stateOf(nodes []NodeState, id int) NodeState {
	for i := range nodes {
		if nodes[i].ID == id {
			return nodes[i]
		}
	}
	return NodeState{ID: id}
}

// OwnerShard routes a key to its owner among n shards by 32-bit FNV-1a,
// computed inline over the string so front doors do not allocate a
// hasher and a byte-slice copy per request. Constants and routing match
// hash/fnv's FNV-1a exactly. This is the shared key-affinity hash: the
// shardpool front door and any consistent per-key routing use the same
// function, so a key's owner is stable across layers.
func OwnerShard(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}
