package sched

import (
	"hash/fnv"
	"sync"
	"testing"
)

func nodes(inflight ...int) []NodeState {
	out := make([]NodeState, len(inflight))
	for i, f := range inflight {
		out[i] = NodeState{ID: i, Inflight: f, Healthy: true}
	}
	return out
}

// TestLocalityPlacerRoutesToHolder: a request whose lineage lives on
// node A is placed on A, not on the emptier node B — the locality
// property of the acceptance criteria.
func TestLocalityPlacerRoutesToHolder(t *testing.T) {
	v := NewView(3)
	v.MarkResident(1, "fn")
	lp := &LocalityPlacer{Replicate: true}
	for i := 0; i < 5; i++ {
		pl := lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 0, 0), View: v})
		if pl.Action != ActionRoute || pl.Node != 1 {
			t.Fatalf("placement = %+v, want route to holder 1", pl)
		}
	}
}

// TestLocalityPlacerColdSpreads: with no holders anywhere, sequential
// cold placements rotate round-robin across the idle nodes.
func TestLocalityPlacerColdSpreads(t *testing.T) {
	v := NewView(4)
	lp := &LocalityPlacer{}
	used := make(map[int]bool)
	for i := 0; i < 4; i++ {
		pl := lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 0, 0, 0), View: v})
		if pl.Action != ActionCold {
			t.Fatalf("placement = %+v, want cold", pl)
		}
		used[pl.Node] = true
	}
	if len(used) != 4 {
		t.Fatalf("cold placements used %d/4 nodes", len(used))
	}
}

// TestLocalityPlacerOverloadReplicates: an overloaded holder triggers
// migration (no fabric) or a layer fetch (fabric on both ends) to the
// least-loaded node; without Replicate it keeps routing.
func TestLocalityPlacerOverloadReplicates(t *testing.T) {
	v := NewView(2)
	v.MarkResident(0, "fn")
	st := nodes(5, 0) // holder 5 in flight, node 1 idle

	noRep := &LocalityPlacer{Replicate: false}
	if pl := noRep.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: st, View: v}); pl.Action != ActionRoute || pl.Node != 0 {
		t.Fatalf("route-only placement = %+v, want route to 0", pl)
	}

	rep := &LocalityPlacer{Replicate: true}
	if pl := rep.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: st, View: v}); pl.Action != ActionMigrate || pl.Node != 1 || pl.Holder != 0 {
		t.Fatalf("no-fabric placement = %+v, want migrate 0 -> 1", pl)
	}

	v.SetFabric(0, true)
	v.SetFabric(1, true)
	if pl := rep.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: st, View: v}); pl.Action != ActionFetch || pl.Node != 1 || pl.Holder != 0 {
		t.Fatalf("fabric placement = %+v, want fetch 0 -> 1", pl)
	}

	// A replica already on the least-loaded node short-circuits to it.
	v.MarkResident(1, "fn")
	if pl := rep.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: st, View: v}); pl.Action != ActionRoute || pl.Node != 1 {
		t.Fatalf("replica placement = %+v, want route to 1", pl)
	}
}

// TestLocalityPlacerTierRouteLukewarm: with no RAM holder but a node
// advertising the lineage on disk, the request routes there for a
// lukewarm restore instead of going cold elsewhere.
func TestLocalityPlacerTierRouteLukewarm(t *testing.T) {
	v := NewView(3)
	v.Refresh(2, nil, []Layer{{Key: "fn/fn", Base: "runtime/nodejs", Digest: 42, Size: 100}})
	lp := &LocalityPlacer{Replicate: true}
	pl := lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 0, 0), View: v})
	if pl.Action != ActionRoute || pl.Node != 2 {
		t.Fatalf("placement = %+v, want lukewarm route to 2", pl)
	}
}

// TestLocalityPlacerSkipsUnhealthy: unhealthy nodes take no cold
// placements unless every node is unhealthy.
func TestLocalityPlacerSkipsUnhealthy(t *testing.T) {
	v := NewView(2)
	lp := &LocalityPlacer{}
	st := []NodeState{{ID: 0, Inflight: 0, Healthy: false}, {ID: 1, Inflight: 9, Healthy: true}}
	for i := 0; i < 3; i++ {
		if pl := lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: st, View: v}); pl.Node != 1 {
			t.Fatalf("placement landed on unhealthy node: %+v", pl)
		}
	}
	allSick := []NodeState{{ID: 0}, {ID: 1}}
	if pl := lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: allSick, View: v}); pl.Node != 0 && pl.Node != 1 {
		t.Fatalf("all-unhealthy placement = %+v", pl)
	}
}

// TestLeastLoadedPlacerIgnoresLocality: the baseline arm never fetches
// or migrates; a node it picks that has served the key before routes to
// itself, anything else is a fresh cold.
func TestLeastLoadedPlacerIgnoresLocality(t *testing.T) {
	v := NewView(2)
	v.MarkResident(0, "fn")
	lb := &LeastLoadedPlacer{}
	pl := lb.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(9, 0), View: v})
	if pl.Node != 1 || pl.Action != ActionCold {
		t.Fatalf("placement = %+v, want cold on idle node 1 despite holder 0", pl)
	}
	pl = lb.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 9), View: v})
	if pl.Node != 0 || pl.Action != ActionRoute {
		t.Fatalf("placement = %+v, want self-route on node 0", pl)
	}
}

// TestOwnerShardMatchesFNV: the inlined hash is exactly hash/fnv's
// 32-bit FNV-1a — the shardpool front door and sched agree on owners.
func TestOwnerShardMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "alice/hello", "fn-000123", "布"}
	for _, key := range keys {
		for _, n := range []int{1, 2, 7, 16} {
			h := fnv.New32a()
			h.Write([]byte(key))
			want := int(h.Sum32() % uint32(n))
			if got := OwnerShard(key, n); got != want {
				t.Errorf("OwnerShard(%q, %d) = %d, want %d", key, n, got, want)
			}
		}
	}
}

// TestPlacerSingleWriterAsserted: the single-writer contract is
// enforced, not just documented — a second concurrent Place panics.
func TestPlacerSingleWriterAsserted(t *testing.T) {
	lp := &LocalityPlacer{}
	lp.sw.enter("LocalityPlacer") // simulate an in-flight Place
	defer lp.sw.exit()
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent Place did not panic")
		}
	}()
	lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0), View: NewView(1)})
}

// TestViewConcurrentLookupsDuringRefresh: the satellite's -race test —
// concurrent holder lookups, residency marks, and wholesale gossip
// refreshes on one View must be data-race free and never observe torn
// state.
func TestViewConcurrentLookupsDuringRefresh(t *testing.T) {
	v := NewView(4)
	layers := []Layer{
		{Key: "fn/a", Base: "runtime/nodejs", Digest: 1, Size: 10},
		{Key: "runtime/nodejs", Digest: 2, Size: 100},
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Gossip writer: wholesale refreshes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v.Refresh(i%4, []string{"a", "b"}, layers)
		}
	}()
	// Synchronous scheduler updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v.MarkResident(i%4, "c")
			v.DropResident((i+1)%4, "c")
		}
	}()
	// Concurrent readers run a fixed iteration count; the writers spin
	// until the readers finish.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var scratch []int
			for i := 0; i < 5000; i++ {
				scratch = v.AppendResidentHolders(scratch[:0], "a")
				for _, id := range scratch {
					if id < 0 || id >= 4 {
						t.Errorf("torn holder ID %d", id)
						return
					}
				}
				scratch = v.AppendTierHolders(scratch[:0], "fn/a")
				v.Resident(i%4, "b")
				v.Layer(i%4, "runtime/nodejs")
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}

// TestViewRefreshReplacesState: gossip is the staleness collector — a
// refresh that no longer lists an entry removes it from the view.
func TestViewRefreshReplacesState(t *testing.T) {
	v := NewView(2)
	v.MarkResident(0, "old")
	v.Refresh(0, []string{"new"}, nil)
	if v.Resident(0, "old") {
		t.Error("refresh kept a residency entry the node no longer reported")
	}
	if !v.Resident(0, "new") {
		t.Error("refresh dropped a reported residency entry")
	}
	if g := v.Generation(); g != 1 {
		t.Errorf("Generation = %d, want 1", g)
	}
}
