package sched

import "testing"

// TestMemberStateMachine walks the heartbeat state machine: alive →
// suspect after suspectAfter consecutive misses → dead after deadAfter,
// with any landed report resetting to alive.
func TestMemberStateMachine(t *testing.T) {
	v := NewView(1)
	if s := v.State(0); s != StateAlive {
		t.Fatalf("zero-value state = %v, want alive", s)
	}

	if from, to := v.MissHeartbeat(0, 2, 4); from != StateAlive || to != StateAlive {
		t.Fatalf("miss 1: %v -> %v, want alive -> alive", from, to)
	}
	if from, to := v.MissHeartbeat(0, 2, 4); from != StateAlive || to != StateSuspect {
		t.Fatalf("miss 2: %v -> %v, want alive -> suspect", from, to)
	}
	if v.Alive(0) {
		t.Error("suspect node reported alive")
	}
	if from, to := v.MissHeartbeat(0, 2, 4); from != StateSuspect || to != StateSuspect {
		t.Fatalf("miss 3: %v -> %v, want suspect -> suspect", from, to)
	}
	if from, to := v.MissHeartbeat(0, 2, 4); from != StateSuspect || to != StateDead {
		t.Fatalf("miss 4: %v -> %v, want suspect -> dead", from, to)
	}
	if got := v.Missed(0); got != 4 {
		t.Errorf("Missed = %d, want 4", got)
	}
	// A dead node stays dead on further misses.
	if _, to := v.MissHeartbeat(0, 2, 4); to != StateDead {
		t.Errorf("post-death miss left state %v", to)
	}

	// One landed report revives it completely.
	if prev := v.ReportHeartbeat(0); prev != StateDead {
		t.Fatalf("report returned prior state %v, want dead", prev)
	}
	if !v.Alive(0) || v.Missed(0) != 0 {
		t.Errorf("report did not reset: alive=%v missed=%d", v.Alive(0), v.Missed(0))
	}
}

// TestSuspectReportRecoversWithoutPurge: a suspect node whose report
// lands keeps all its view entries — only death purges.
func TestSuspectReportRecoversWithoutPurge(t *testing.T) {
	v := NewView(2)
	v.MarkResident(1, "fn")
	v.MissHeartbeat(1, 1, 3) // straight to suspect
	if v.State(1) != StateSuspect {
		t.Fatal("setup: node 1 not suspect")
	}
	if !v.Resident(1, "fn") {
		t.Error("suspicion purged entries; only death should")
	}
	v.ReportHeartbeat(1)
	if !v.Resident(1, "fn") || v.State(1) != StateAlive {
		t.Error("recovery from suspicion lost state")
	}
}

// TestPurgeNodeCounts: purging a dead node's view state drops its
// residency and layer entries and reports how many were pruned.
func TestPurgeNodeCounts(t *testing.T) {
	v := NewView(2)
	v.MarkResident(1, "a")
	v.MarkResident(1, "b")
	v.Refresh(0, []string{"a", "b"}, nil)
	v.Refresh(1, []string{"a", "b"}, []Layer{
		{Key: "fn/a", Digest: 1}, {Key: "runtime/nodejs", Digest: 2},
	})
	if n := v.PurgeNode(1); n != 4 {
		t.Errorf("PurgeNode pruned %d entries, want 4 (2 resident + 2 layers)", n)
	}
	if v.Resident(1, "a") || len(v.Layers(1)) != 0 {
		t.Error("purge left entries behind")
	}
	if !v.Resident(0, "a") {
		t.Error("purge leaked onto another node")
	}
	if n := v.PurgeNode(1); n != 0 {
		t.Errorf("second purge pruned %d, want 0", n)
	}
}

// TestFilterAliveDropsSuspectHolders: the placer-side holder filter
// removes suspect and dead nodes in place.
func TestFilterAliveDropsSuspectHolders(t *testing.T) {
	v := NewView(3)
	v.MissHeartbeat(1, 1, 2) // suspect
	v.MissHeartbeat(2, 1, 2)
	v.MissHeartbeat(2, 1, 2) // dead
	ids := []int{0, 1, 2}
	got := v.FilterAlive(ids)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("FilterAlive = %v, want [0]", got)
	}
	// In-place: the result aliases the input's backing array.
	if &got[0] != &ids[0] {
		t.Error("FilterAlive allocated instead of filtering in place")
	}
}

// TestPlacerSkipsNonAliveHolder: a LocalityPlacer degrades holder →
// tier → cold as liveness removes candidates, and LeastLoadedPlacer
// goes cold rather than self-routing on a node it believes non-alive.
func TestPlacerSkipsNonAliveHolder(t *testing.T) {
	v := NewView(3)
	v.MarkResident(1, "fn")
	v.Refresh(2, nil, []Layer{{Key: "fn/fn", Digest: 7}})
	v.MarkResident(2, "fn") // re-add after Refresh replaced node 2's state
	lp := &LocalityPlacer{Replicate: true}

	// Both holders alive: route to the least-loaded one.
	pl := lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 0, 0), View: v})
	if pl.Action != ActionRoute || (pl.Node != 1 && pl.Node != 2) {
		t.Fatalf("placement = %+v, want route to a holder", pl)
	}

	// Node 1 suspect: only holder 2 remains.
	v.MissHeartbeat(1, 1, 3)
	pl = lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 0, 0), View: v})
	if pl.Action != ActionRoute || pl.Node != 2 {
		t.Fatalf("placement = %+v, want route to the live holder 2", pl)
	}

	// Node 2 suspect too, but it still advertises the lineage on disk —
	// and a suspect tier holder is skipped as well: cold, never stranded.
	// (Ground-truth health keeps the cold boot off the sick nodes.)
	v.DropResident(2, "fn")
	v.MissHeartbeat(2, 1, 3)
	st := []NodeState{{ID: 0, Healthy: true}, {ID: 1}, {ID: 2}}
	pl = lp.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: st, View: v})
	if pl.Action != ActionCold || pl.Node != 0 {
		t.Fatalf("placement = %+v, want cold on the one alive node", pl)
	}

	lb := &LeastLoadedPlacer{}
	v2 := NewView(2)
	v2.MarkResident(0, "fn")
	v2.MissHeartbeat(0, 1, 3)
	pl = lb.Place(Request{Key: "fn", Lineage: "fn/fn", Nodes: nodes(0, 9), View: v2})
	if pl.Node != 0 || pl.Action != ActionCold {
		t.Fatalf("placement = %+v, want cold (no self-route on a suspect node)", pl)
	}
}

// TestMemberStateStrings pins the state names used in /stats and traces.
func TestMemberStateStrings(t *testing.T) {
	if StateAlive.String() != "alive" || StateSuspect.String() != "suspect" || StateDead.String() != "dead" {
		t.Error("member state names")
	}
}
