package isolation

import (
	"testing"
	"time"

	"seuss/internal/costs"
	"seuss/internal/netsim"
	"seuss/internal/sim"
)

func TestMemPool(t *testing.T) {
	m := NewMemPool(100)
	if !m.Take(60) || !m.Take(40) {
		t.Fatal("takes within budget failed")
	}
	if m.Take(1) {
		t.Fatal("over-budget take succeeded")
	}
	m.Give(50)
	if m.Used() != 50 || m.Available() != 50 {
		t.Errorf("used/avail = %d/%d", m.Used(), m.Available())
	}
	m.Give(1000) // over-give clamps
	if m.Used() != 0 {
		t.Errorf("used = %d", m.Used())
	}
}

// createN creates n instances through a single simulated worker and
// returns elapsed virtual time.
func createN(t *testing.T, b *Backend, n int) (time.Duration, []*Instance) {
	t.Helper()
	eng := sim.NewEngine()
	var insts []*Instance
	eng.Go("creator", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			inst, err := b.Create(p)
			if err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			insts = append(insts, inst)
		}
	})
	eng.Run()
	return time.Duration(eng.Now()), insts
}

func TestProcessCreationRate(t *testing.T) {
	// Table 3: 45 processes/s across 16 cores ⇒ ≈350 ms each.
	m := NewMemPool(costs.NodeMemoryBytes)
	b := NewBackend(KindProcess, m, nil, sim.NewRNG(1))
	elapsed, _ := createN(t, b, 10)
	per := elapsed / 10
	if per < 300*time.Millisecond || per > 400*time.Millisecond {
		t.Errorf("per-process creation = %v", per)
	}
}

func TestProcessDensityMatchesTable3(t *testing.T) {
	m := NewMemPool(costs.NodeMemoryBytes)
	n := costs.NodeMemoryBytes / costs.ProcessIdleBytes
	if n < 4000 || n > 4600 {
		t.Errorf("process density = %d, paper ≈4200", n)
	}
	_ = m
}

func TestContainerCreationGrowsWithPopulation(t *testing.T) {
	// §7: 541 ms with no other containers, ≈1.5 s past 1000.
	m := NewMemPool(costs.NodeMemoryBytes)
	b := NewBackend(KindContainer, m, nil, sim.NewRNG(1))
	eng := sim.NewEngine()
	var first, later time.Duration
	eng.Go("seq", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := b.Create(p); err != nil {
			t.Error(err)
			return
		}
		first = time.Duration(p.Now() - t0)
		b.pop = 1000 // fast-forward the population
		t1 := p.Now()
		if _, err := b.Create(p); err != nil {
			t.Error(err)
			return
		}
		later = time.Duration(p.Now() - t1)
	})
	eng.Run()
	if first < 450*time.Millisecond || first > 650*time.Millisecond {
		t.Errorf("first container = %v, paper 541 ms", first)
	}
	if later < 1200*time.Millisecond || later > 1800*time.Millisecond {
		t.Errorf("container at pop 1000 = %v, paper ≈1.5 s", later)
	}
}

func TestContainerParallelContention(t *testing.T) {
	// Two properties from §7: (a) creation latency grows with the
	// number of concurrent creations; (b) sustained 16-way parallel
	// creation lands near Table 3's aggregate 5.3 containers/s.
	// The actual Table 3 experiment: deploy containers from 16 workers
	// until the node's memory saturates, then report the aggregate
	// rate and the density.
	m := NewMemPool(costs.NodeMemoryBytes)
	b := NewBackend(KindContainer, m, nil, sim.NewRNG(1))
	eng := sim.NewEngine()
	done := 0
	for i := 0; i < 16; i++ {
		eng.Go("par", func(p *sim.Proc) {
			for {
				if _, err := b.Create(p); err != nil {
					if err != ErrOutOfMemory {
						t.Error(err)
					}
					return
				}
				done++
			}
		})
	}
	eng.Run()
	if done < 2800 || done > 3400 {
		t.Fatalf("density = %d, Table 3 reports ≈3000", done)
	}
	rate := float64(done) / time.Duration(eng.Now()).Seconds()
	if rate < 4.2 || rate > 6.5 {
		t.Errorf("16-way fill rate = %.1f/s, Table 3 reports 5.3/s", rate)
	}

	// Contention property: a creation with 15 others in flight is
	// visibly slower than an uncontended one.
	b2 := NewBackend(KindContainer, NewMemPool(costs.NodeMemoryBytes), nil, sim.NewRNG(1))
	eng2 := sim.NewEngine()
	var solo, contended time.Duration
	eng2.Go("solo", func(p *sim.Proc) {
		t0 := p.Now()
		b2.Create(p)
		solo = time.Duration(p.Now() - t0)
	})
	eng2.Run()
	eng3 := sim.NewEngine()
	for i := 0; i < 16; i++ {
		last := i == 15
		eng3.Go("c", func(p *sim.Proc) {
			t0 := p.Now()
			b2.Create(p)
			if last {
				contended = time.Duration(p.Now() - t0)
			}
		})
	}
	eng3.Run()
	if contended <= solo {
		t.Errorf("no parallel contention: solo %v, 16-way %v", solo, contended)
	}
}

func TestContainerDensityMatchesTable3(t *testing.T) {
	n := costs.NodeMemoryBytes / costs.ContainerIdleBytes
	if n < 2800 || n > 3400 {
		t.Errorf("container density = %d, paper ≈3000", n)
	}
}

func TestMicroVMMatchesTable3(t *testing.T) {
	m := NewMemPool(costs.NodeMemoryBytes)
	b := NewBackend(KindMicroVM, m, nil, sim.NewRNG(1))
	elapsed, _ := createN(t, b, 4)
	per := elapsed / 4
	if per < 2800*time.Millisecond || per > 3500*time.Millisecond {
		t.Errorf("microVM creation = %v, paper >3 s", per)
	}
	n := costs.NodeMemoryBytes / costs.MicroVMIdleBytes
	if n < 400 || n > 520 {
		t.Errorf("microVM density = %d, paper ≈450", n)
	}
}

func TestCreateFailsAtBudget(t *testing.T) {
	m := NewMemPool(2 * costs.ProcessIdleBytes)
	b := NewBackend(KindProcess, m, nil, sim.NewRNG(1))
	eng := sim.NewEngine()
	var errAt3 error
	eng.Go("fill", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if _, err := b.Create(p); err != nil {
				t.Errorf("create %d: %v", i, err)
			}
		}
		_, errAt3 = b.Create(p)
	})
	eng.Run()
	if errAt3 != ErrOutOfMemory {
		t.Errorf("err = %v", errAt3)
	}
	if b.Population() != 2 {
		t.Errorf("population = %d", b.Population())
	}
}

func TestDestroyReleasesMemoryAndBridge(t *testing.T) {
	m := NewMemPool(costs.NodeMemoryBytes)
	bridge := netsim.NewBridge(sim.NewRNG(1))
	b := NewBackend(KindContainer, m, bridge, sim.NewRNG(1))
	eng := sim.NewEngine()
	eng.Go("w", func(p *sim.Proc) {
		inst, err := b.Create(p)
		if err != nil {
			t.Error(err)
			return
		}
		if bridge.Endpoints() != 1 {
			t.Errorf("endpoints = %d", bridge.Endpoints())
		}
		b.Destroy(p, inst)
		if m.Used() != 0 || bridge.Endpoints() != 0 || b.Population() != 0 {
			t.Errorf("leak: mem=%d endpoints=%d pop=%d", m.Used(), bridge.Endpoints(), b.Population())
		}
		b.Destroy(p, inst) // idempotent
		if b.Destroyed != 1 {
			t.Errorf("destroyed = %d", b.Destroyed)
		}
		if err := b.Invoke(p, inst, 0); err == nil {
			t.Error("invoke on destroyed instance")
		}
	})
	eng.Run()
}

func TestInvokeTimesOutOnSaturatedBridge(t *testing.T) {
	m := NewMemPool(costs.NodeMemoryBytes << 4)
	bridge := netsim.NewBridge(sim.NewRNG(1))
	for i := 0; i < 3000; i++ {
		bridge.Attach()
	}
	b := NewBackend(KindContainer, m, bridge, sim.NewRNG(1))
	eng := sim.NewEngine()
	inst := &Instance{backend: b, foot: 1}
	timeouts := 0
	eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := b.Invoke(p, inst, 0); err == ErrConnTimeout {
				timeouts++
			}
		}
	})
	eng.Run()
	if timeouts < 15 {
		t.Errorf("timeouts = %d/20 on a 3000-endpoint bridge", timeouts)
	}
}

func TestKindStrings(t *testing.T) {
	if KindProcess.String() != "process" || KindContainer.String() != "container" || KindMicroVM.String() != "microvm" {
		t.Error("kind names")
	}
}

func TestPrewarmAccountsLikeCreate(t *testing.T) {
	m := NewMemPool(costs.NodeMemoryBytes)
	bridge := netsim.NewBridge(sim.NewRNG(1))
	b := NewBackend(KindContainer, m, bridge, sim.NewRNG(1))
	inst, err := b.Prewarm()
	if err != nil {
		t.Fatal(err)
	}
	if b.Population() != 1 || bridge.Endpoints() != 1 || m.Used() != inst.Footprint() {
		t.Errorf("accounting: pop=%d endpoints=%d used=%d", b.Population(), bridge.Endpoints(), m.Used())
	}
	// Prewarm respects the budget.
	tiny := NewBackend(KindContainer, NewMemPool(1), nil, sim.NewRNG(1))
	if _, err := tiny.Prewarm(); err != ErrOutOfMemory {
		t.Errorf("err = %v", err)
	}
}

func TestInstanceFnField(t *testing.T) {
	m := NewMemPool(costs.NodeMemoryBytes)
	b := NewBackend(KindProcess, m, nil, sim.NewRNG(1))
	eng := sim.NewEngine()
	eng.Go("w", func(p *sim.Proc) {
		inst, err := b.Create(p)
		if err != nil {
			t.Error(err)
			return
		}
		inst.Fn = "user/fn"
		if inst.Fn != "user/fn" || b.InFlight() != 0 {
			t.Errorf("inst = %+v inflight = %d", inst, b.InFlight())
		}
	})
	eng.Run()
}
