// Package isolation implements the Linux-side execution-environment
// baselines of the Table 3 microbenchmarks: plain processes, Docker
// containers on the overlay2/bridge stack, and Firecracker microVMs via
// the Kata backend. Each provides the same contract — create an idle
// Node.js environment, invoke in it, destroy it — with calibrated cost
// models for creation latency (including Docker's population- and
// parallelism-dependent scaling the paper documents) and idle memory
// footprint.
//
// SEUSS UCs satisfy the same contract through internal/core; the
// Table 3 harness drives all four.
package isolation

import (
	"errors"
	"time"

	"seuss/internal/costs"
	"seuss/internal/netsim"
	"seuss/internal/sim"
)

// ErrOutOfMemory is returned by Create when the node memory budget
// cannot hold another idle instance.
var ErrOutOfMemory = errors.New("isolation: node memory exhausted")

// ErrConnTimeout is returned when an instance's network connection
// drops (bridge saturation) and the platform request times out.
var ErrConnTimeout = errors.New("isolation: connection timed out")

// MemPool is the node's memory budget shared by all instances of a
// backend (the 88 GB VM).
type MemPool struct {
	budget int64
	used   int64
}

// NewMemPool returns a pool with the given byte budget.
func NewMemPool(budget int64) *MemPool { return &MemPool{budget: budget} }

// Take reserves n bytes; false if the budget would be exceeded.
func (m *MemPool) Take(n int64) bool {
	if m.used+n > m.budget {
		return false
	}
	m.used += n
	return true
}

// Give returns n bytes.
func (m *MemPool) Give(n int64) {
	m.used -= n
	if m.used < 0 {
		m.used = 0
	}
}

// Used returns reserved bytes.
func (m *MemPool) Used() int64 { return m.used }

// Available returns free bytes.
func (m *MemPool) Available() int64 { return m.budget - m.used }

// Instance is one idle-or-busy execution environment.
type Instance struct {
	backend *Backend
	foot    int64
	dead    bool
	// Fn is the function code loaded into the instance ("" for a
	// stemcell that has not imported code yet).
	Fn string
}

// Footprint returns the instance's idle memory footprint in bytes.
func (i *Instance) Footprint() int64 { return i.foot }

// Kind is the isolation technology.
type Kind int

// The isolation methods of Table 3.
const (
	KindProcess Kind = iota
	KindContainer
	KindMicroVM
)

var kindNames = [...]string{"process", "container", "microvm"}

// String implements fmt.Stringer.
func (k Kind) String() string { return kindNames[k] }

// Backend creates and destroys instances of one isolation kind,
// applying that kind's cost model.
type Backend struct {
	kind     Kind
	mem      *MemPool
	bridge   *netsim.Bridge // containers only
	rng      *sim.RNG
	pop      int // live instances
	inflight int // concurrent creations (Docker daemon contention)

	// Created / Destroyed count lifetime churn.
	Created   int64
	Destroyed int64
}

// NewBackend returns a backend of the given kind drawing from mem.
// bridge may be nil for non-container kinds.
func NewBackend(kind Kind, mem *MemPool, bridge *netsim.Bridge, rng *sim.RNG) *Backend {
	return &Backend{kind: kind, mem: mem, bridge: bridge, rng: rng}
}

// Kind returns the backend's isolation kind.
func (b *Backend) Kind() Kind { return b.kind }

// Population returns the number of live instances.
func (b *Backend) Population() int { return b.pop }

// InFlight returns the number of creations currently in progress.
func (b *Backend) InFlight() int { return b.inflight }

// idleBytes returns the marginal idle footprint for the kind.
func (b *Backend) idleBytes() int64 {
	switch b.kind {
	case KindProcess:
		return costs.ProcessIdleBytes
	case KindContainer:
		return costs.ContainerIdleBytes
	default:
		return costs.MicroVMIdleBytes
	}
}

// createLatency returns the modeled creation time at the current
// population and parallelism. The Docker model encodes the paper's two
// observed scalability problems: latency proportional to the number of
// containers on the system, and latency proportional to the number of
// concurrent creations in flight.
func (b *Backend) createLatency() time.Duration {
	switch b.kind {
	case KindProcess:
		return b.rng.Jitter(costs.ProcessCreate, 0.05)
	case KindContainer:
		d := costs.ContainerCreateBase
		d += time.Duration(b.pop) * costs.ContainerCreatePerExisting
		if b.inflight > 1 {
			par := b.inflight - 1
			if par > costs.DockerDaemonPool-1 {
				par = costs.DockerDaemonPool - 1
			}
			d += time.Duration(par) * costs.ContainerCreatePerParallel
		}
		if over := b.inflight - costs.DockerDaemonPool; over > 0 {
			d += time.Duration(over) * costs.ContainerCreateThrash
		}
		return b.rng.Jitter(d, 0.05)
	default:
		d := costs.MicroVMCreate
		if b.inflight > 1 {
			d += time.Duration(b.inflight-1) * costs.MicroVMCreatePerParallel
		}
		return b.rng.Jitter(d, 0.05)
	}
}

// Create provisions one idle Node.js environment, blocking p for the
// modeled duration. It fails with ErrOutOfMemory when the node is
// saturated — the density limit of Table 3.
func (b *Backend) Create(p *sim.Proc) (*Instance, error) {
	foot := b.idleBytes()
	if !b.mem.Take(foot) {
		return nil, ErrOutOfMemory
	}
	b.inflight++
	d := b.createLatency()
	p.Sleep(d)
	b.inflight--
	b.pop++
	b.Created++
	if b.kind == KindContainer && b.bridge != nil {
		b.bridge.Attach()
		// The new endpoint's first connection can already hit a
		// saturated bridge.
		if !b.bridge.Connect() {
			p.Sleep(costs.ConnTimeout)
			b.destroyLocked(p, &Instance{backend: b, foot: foot})
			return nil, ErrConnTimeout
		}
	}
	return &Instance{backend: b, foot: foot}, nil
}

// Prewarm provisions an instance instantly — platform setup that
// happens before the measurement clock starts (e.g. populating the
// initial stemcell pool on a fresh deployment). Memory and bridge
// accounting are identical to Create; only the latency is skipped.
func (b *Backend) Prewarm() (*Instance, error) {
	foot := b.idleBytes()
	if !b.mem.Take(foot) {
		return nil, ErrOutOfMemory
	}
	b.pop++
	b.Created++
	if b.kind == KindContainer && b.bridge != nil {
		b.bridge.Attach()
	}
	return &Instance{backend: b, foot: foot}, nil
}

// Invoke runs one cached (warm/hot) invocation in the instance: the
// platform connects to the in-instance server, passes arguments, and
// the function runs for fnCPU.
func (b *Backend) Invoke(p *sim.Proc, inst *Instance, fnCPU time.Duration) error {
	if inst.dead {
		return errors.New("isolation: invoke on destroyed instance")
	}
	if b.kind == KindContainer && b.bridge != nil {
		if !b.bridge.Connect() {
			p.Sleep(costs.ConnTimeout)
			return ErrConnTimeout
		}
	}
	switch b.kind {
	case KindProcess:
		p.Sleep(costs.ProcessWarmInvoke)
	default:
		p.Sleep(costs.ContainerWarmInvoke)
	}
	if fnCPU > 0 {
		p.Sleep(fnCPU)
	}
	return nil
}

// Destroy tears the instance down, releasing memory and its bridge
// endpoint.
func (b *Backend) Destroy(p *sim.Proc, inst *Instance) {
	if inst.dead {
		return
	}
	if b.kind == KindContainer {
		p.Sleep(costs.ContainerDestroy)
	} else {
		p.Sleep(10 * time.Millisecond)
	}
	b.destroyLocked(p, inst)
}

func (b *Backend) destroyLocked(_ *sim.Proc, inst *Instance) {
	inst.dead = true
	b.mem.Give(inst.foot)
	if b.pop > 0 {
		b.pop--
	}
	b.Destroyed++
	if b.kind == KindContainer && b.bridge != nil {
		b.bridge.Detach()
	}
}
