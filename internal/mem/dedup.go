package mem

import "crypto/sha256"

// DedupStats reports what a KSM-style retroactive deduplication scan
// would find. §5 contrasts SEUSS's ahead-of-time page sharing with
// KSM: SEUSS shares structurally (CoW from snapshots), so a scanner
// that fingerprints materialized frames finds little left to merge —
// and, unlike KSM, SEUSS sharing cannot leak co-residency through
// merge-timing side channels because it is never applied retroactively.
type DedupStats struct {
	// Scanned is the number of frames with materialized contents
	// (unmaterialized zero frames are implicitly deduplicated already).
	Scanned int
	// Duplicates is the number of frames whose contents equal some
	// earlier frame's — the pages KSM could merge.
	Duplicates int
	// DuplicateBytes is Duplicates * PageSize.
	DuplicateBytes int64
	// ZeroFrames counts unmaterialized (implicit zero) frames in use.
	ZeroFrames int
}

// Scanner fingerprints frame contents, modeling a KSM pass over the
// node's memory. Frames are registered as they materialize; Scan
// reports merge opportunities without performing merges (SEUSS never
// merges retroactively).
type Scanner struct {
	frames map[FrameID]*Frame
}

// NewScanner returns an empty scanner.
func NewScanner() *Scanner {
	return &Scanner{frames: make(map[FrameID]*Frame)}
}

// Track registers a frame for scanning.
func (s *Scanner) Track(f *Frame) { s.frames[f.id] = f }

// Untrack removes a frame (freed or out of scope).
func (s *Scanner) Untrack(id FrameID) { delete(s.frames, id) }

// Scan fingerprints every tracked live frame and reports duplicates.
func (s *Scanner) Scan() DedupStats {
	var stats DedupStats
	seen := make(map[[32]byte]bool)
	buf := make([]byte, PageSize)
	for _, f := range s.frames {
		if f.Refs() <= 0 {
			continue
		}
		if !f.Materialized() {
			stats.ZeroFrames++
			continue
		}
		stats.Scanned++
		f.Read(0, buf)
		sum := sha256.Sum256(buf)
		if seen[sum] {
			stats.Duplicates++
			stats.DuplicateBytes += PageSize
		} else {
			seen[sum] = true
		}
	}
	return stats
}
