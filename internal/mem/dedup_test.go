package mem

import "testing"

func TestScannerFindsDuplicates(t *testing.T) {
	st := NewStore(0)
	sc := NewScanner()
	mk := func(content byte) *Frame {
		f := st.MustAlloc()
		f.Write(0, []byte{content, content, content})
		sc.Track(f)
		return f
	}
	mk(1)
	mk(1) // duplicate of the first
	mk(2)
	zero := st.MustAlloc() // unmaterialized
	sc.Track(zero)

	stats := sc.Scan()
	if stats.Scanned != 3 {
		t.Errorf("scanned = %d", stats.Scanned)
	}
	if stats.Duplicates != 1 || stats.DuplicateBytes != PageSize {
		t.Errorf("duplicates = %d (%d bytes)", stats.Duplicates, stats.DuplicateBytes)
	}
	if stats.ZeroFrames != 1 {
		t.Errorf("zero frames = %d", stats.ZeroFrames)
	}
}

func TestScannerSkipsFreedFrames(t *testing.T) {
	st := NewStore(0)
	sc := NewScanner()
	f := st.MustAlloc()
	f.Write(0, []byte{9})
	sc.Track(f)
	st.DecRef(f)
	stats := sc.Scan()
	if stats.Scanned != 0 {
		t.Errorf("scanned freed frame: %+v", stats)
	}
}

func TestScannerUntrack(t *testing.T) {
	st := NewStore(0)
	sc := NewScanner()
	f := st.MustAlloc()
	f.Write(0, []byte{7})
	sc.Track(f)
	sc.Untrack(f.ID())
	if stats := sc.Scan(); stats.Scanned != 0 {
		t.Errorf("scanned untracked frame: %+v", stats)
	}
}

// The §5 claim in miniature: after SEUSS-style CoW sharing, a KSM scan
// finds almost nothing to merge, because identical pages are already
// the same frame.
func TestStructuralSharingLeavesNothingForKSM(t *testing.T) {
	st := NewStore(0)
	sc := NewScanner()

	// One "snapshot" frame shared CoW by many consumers: a single
	// frame, many references.
	shared := st.MustAlloc()
	shared.Write(0, []byte("interpreter page"))
	sc.Track(shared)
	for i := 0; i < 100; i++ {
		st.IncRef(shared) // 100 UCs map it
	}

	stats := sc.Scan()
	if stats.Duplicates != 0 {
		t.Errorf("structural sharing produced %d mergeable duplicates", stats.Duplicates)
	}
	if stats.Scanned != 1 {
		t.Errorf("scanned = %d, want the single shared frame", stats.Scanned)
	}

	// Contrast: 100 *copies* of the page (what full per-function images
	// would produce) give KSM 99 merge targets.
	for i := 0; i < 100; i++ {
		cp, err := st.Clone(shared)
		if err != nil {
			t.Fatal(err)
		}
		sc.Track(cp)
	}
	stats = sc.Scan()
	if stats.Duplicates != 100 {
		t.Errorf("duplicates = %d, want 100", stats.Duplicates)
	}
}

func TestAttachedScannerTracksLifecycle(t *testing.T) {
	st := NewStore(0)
	sc := NewScanner()
	st.AttachScanner(sc)
	a := st.MustAlloc()
	a.Write(0, []byte("x"))
	b, err := st.Clone(a)
	if err != nil {
		t.Fatal(err)
	}
	stats := sc.Scan()
	if stats.Scanned != 2 || stats.Duplicates != 1 {
		t.Errorf("stats = %+v", stats)
	}
	st.DecRef(b)
	stats = sc.Scan()
	if stats.Scanned != 1 || stats.Duplicates != 0 {
		t.Errorf("after free: %+v", stats)
	}
	st.DecRef(a)
	if sc.Scan().Scanned != 0 {
		t.Error("freed frame still tracked")
	}
}
