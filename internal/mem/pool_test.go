package mem

import "testing"

// TestFramePoolRecycles checks that freed descriptors and payload
// buffers are reused in the default build, and that recycled frames come
// back with fresh identity and a zeroed view.
func TestFramePoolRecycles(t *testing.T) {
	if !framePoolEnabled {
		t.Skip("descriptor pool disabled (seusspoison build)")
	}
	st := NewStore(0)
	f := st.MustAlloc()
	f.Write(100, []byte{0xAA, 0xBB})
	id := f.ID()
	st.DecRef(f)

	g := st.MustAlloc()
	if g != f {
		t.Fatalf("descriptor not recycled: got %p want %p", g, f)
	}
	if g.ID() == id {
		t.Fatalf("recycled frame kept stale ID %d", id)
	}
	if g.Refs() != 1 {
		t.Fatalf("recycled frame refs = %d, want 1", g.Refs())
	}
	if g.Materialized() {
		t.Fatal("recycled frame came back materialized")
	}
	// The recycled buffer held 0xAA/0xBB; a fresh write must see zeros
	// everywhere it did not touch.
	g.Write(0, []byte{1})
	buf := make([]byte, PageSize)
	g.Read(0, buf)
	if buf[0] != 1 {
		t.Fatalf("written byte lost: %x", buf[0])
	}
	for i := 1; i < PageSize; i++ {
		if buf[i] != 0 {
			t.Fatalf("recycled buffer leaked stale byte %#x at %d", buf[i], i)
		}
	}
	s := st.Stats()
	if s.FrameReuses != 1 {
		t.Fatalf("FrameReuses = %d, want 1", s.FrameReuses)
	}
	if s.BufReuses != 1 {
		t.Fatalf("BufReuses = %d, want 1", s.BufReuses)
	}
}

// TestFreedBufferNeverAliasesLiveMapping allocates a frame, writes to
// it, frees it, then materializes a batch of new frames and checks that
// mutating the new frames cannot be observed through the stale view —
// i.e. a recycled buffer is handed to at most one live frame, and the
// freed frame itself reads as zeros/poison, never as another mapping's
// live bytes.
func TestFreedBufferNeverAliasesLiveMapping(t *testing.T) {
	st := NewStore(0)
	f := st.MustAlloc()
	f.Write(0, []byte{0x11})
	stale := f.Bytes() // use-after-free view kept on purpose
	st.DecRef(f)

	// Materialize several live frames; exactly one may own the recycled
	// buffer.
	live := make([]*Frame, 8)
	owners := 0
	for i := range live {
		live[i] = st.MustAlloc()
		live[i].Write(0, []byte{byte(0x80 + i)})
		if &live[i].Bytes()[0] == &stale[0] {
			owners++
		}
	}
	if owners > 1 {
		t.Fatalf("recycled buffer aliased by %d live frames", owners)
	}
	// Every live frame must read back its own byte regardless of what the
	// others wrote.
	for i := range live {
		var b [1]byte
		live[i].Read(0, b[:])
		if b[0] != byte(0x80+i) {
			t.Fatalf("frame %d corrupted: got %#x", i, b[0])
		}
	}
}

// TestCloneFromRecycledBuffer exercises the Clone path (no zeroing —
// full-page copy) against a dirty recycled buffer.
func TestCloneFromRecycledBuffer(t *testing.T) {
	st := NewStore(0)
	junk := st.MustAlloc()
	junk.Write(0, make([]byte, PageSize)) // materialize
	junk.Write(2000, []byte{0xFE, 0xFE})
	st.DecRef(junk)

	src := st.MustAlloc()
	src.Write(0, []byte{1, 2, 3})
	dst, err := st.Clone(src)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, PageSize)
	want[0], want[1], want[2] = 1, 2, 3
	got := make([]byte, PageSize)
	dst.Read(0, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clone differs at %d: got %#x want %#x", i, got[i], want[i])
		}
	}
}

// TestPoolRespectsBudget checks the byte budget is enforced across
// recycle cycles (inUse accounting, not free-list length, is what
// gates).
func TestPoolRespectsBudget(t *testing.T) {
	st := NewStore(2 * PageSize)
	a := st.MustAlloc()
	b := st.MustAlloc()
	if _, err := st.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	st.DecRef(a)
	c := st.MustAlloc() // frees made room
	st.DecRef(b)
	st.DecRef(c)
	if got := st.Stats().FramesInUse; got != 0 {
		t.Fatalf("FramesInUse = %d, want 0", got)
	}
}

// TestSlabDescriptorsIndependent makes sure slab-carved descriptors do
// not share state.
func TestSlabDescriptorsIndependent(t *testing.T) {
	st := NewStore(0)
	frames := make([]*Frame, frameSlabSize*2+3)
	for i := range frames {
		frames[i] = st.MustAlloc()
		frames[i].Write(0, []byte{byte(i)})
	}
	for i := range frames {
		var b [1]byte
		frames[i].Read(0, b[:])
		if b[0] != byte(i) {
			t.Fatalf("frame %d corrupted: got %#x", i, b[0])
		}
		st.DecRef(frames[i])
	}
}

// BenchmarkFrameAllocFree is the allocator's steady-state hot loop: it
// must be allocation-free once the pool is primed.
func BenchmarkFrameAllocFree(b *testing.B) {
	st := NewStore(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := st.MustAlloc()
		f.Write(0, []byte{1})
		st.DecRef(f)
	}
}

// BenchmarkFrameClone measures the CoW resolution path with recycling.
func BenchmarkFrameClone(b *testing.B) {
	st := NewStore(0)
	src := st.MustAlloc()
	src.Write(0, make([]byte, PageSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := st.Clone(src)
		if err != nil {
			b.Fatal(err)
		}
		st.DecRef(f)
	}
}
