//go:build seusspoison

package mem

import "testing"

// TestPoisonOnFree verifies the seusspoison contract: a use-after-free
// view of a freed frame's payload reads the poison pattern (not zeros,
// not another mapping's bytes), and freed descriptors are quarantined so
// stale handles panic instead of silently resurrecting.
func TestPoisonOnFree(t *testing.T) {
	st := NewStore(0)
	f := st.MustAlloc()
	f.Write(0, []byte{0x42, 0x43})
	stale := f.Bytes()
	st.DecRef(f)

	for i, b := range stale {
		if b != PoisonByte {
			t.Fatalf("freed payload byte %d = %#x, want poison %#x", i, b, PoisonByte)
		}
	}

	// Descriptors are quarantined: a new alloc must NOT hand back f.
	g := st.MustAlloc()
	if g == f {
		t.Fatal("freed descriptor recycled despite seusspoison quarantine")
	}

	// And the stale handle still panics on use.
	defer func() {
		if recover() == nil {
			t.Fatal("IncRef on freed frame did not panic")
		}
	}()
	st.IncRef(f)
}

// TestPoisonedBufferZeroedOnReuse checks that even though payload
// buffers ARE recycled under seusspoison, a demand-zero materialization
// never exposes the poison.
func TestPoisonedBufferZeroedOnReuse(t *testing.T) {
	st := NewStore(0)
	f := st.MustAlloc()
	f.Write(0, []byte{9})
	st.DecRef(f)

	g := st.MustAlloc()
	g.Write(100, []byte{7}) // materializes from the (poisoned) recycled buffer
	buf := make([]byte, PageSize)
	g.Read(0, buf)
	for i, b := range buf {
		want := byte(0)
		if i == 100 {
			want = 7
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x (poison leaked)", i, b, want)
		}
	}
}
