//go:build !seusspoison

package mem

// PoisonEnabled reports whether the store poisons freed payload buffers
// and quarantines freed frame descriptors (build tag seusspoison).
const PoisonEnabled = false

// framePoolEnabled gates descriptor recycling. In the default build,
// descriptors are recycled for the allocation-free hot path.
const framePoolEnabled = true

// poisonBuf is a no-op in the default build.
func poisonBuf([]byte) {}
