//go:build seusspoison

package mem

// PoisonEnabled reports whether the store poisons freed payload buffers
// and quarantines freed frame descriptors (build tag seusspoison).
const PoisonEnabled = true

// PoisonByte fills every freed payload buffer. A reader holding a
// use-after-free view of a frame's bytes sees 0xDB, not zeros — so
// aliasing bugs show up as loud content corruption in tests instead of
// silent zero reads.
const PoisonByte = 0xDB

// framePoolEnabled gates descriptor recycling. Under seusspoison,
// descriptors are quarantined (never recycled) so a stale *Frame handle
// keeps its refs==0 state forever and the next IncRef/DecRef panics —
// the same detection the garbage-collected build gave us for free.
const framePoolEnabled = false

// poisonBuf fills a freed payload with the poison pattern.
func poisonBuf(b []byte) {
	for i := range b {
		b[i] = PoisonByte
	}
}
