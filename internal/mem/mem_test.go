package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAndAccounting(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	if f.Refs() != 1 {
		t.Errorf("refs = %d, want 1", f.Refs())
	}
	st := s.Stats()
	if st.FramesInUse != 1 || st.BytesInUse != PageSize {
		t.Errorf("stats = %+v", st)
	}
	s.DecRef(f)
	if got := s.Stats().FramesInUse; got != 0 {
		t.Errorf("FramesInUse after free = %d", got)
	}
}

func TestBudgetEnforced(t *testing.T) {
	s := NewStore(3 * PageSize)
	for i := 0; i < 3; i++ {
		if _, err := s.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := s.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if s.Available() != 0 {
		t.Errorf("Available = %d", s.Available())
	}
}

func TestBudgetFreesReturnCapacity(t *testing.T) {
	s := NewStore(PageSize)
	f := s.MustAlloc()
	if _, err := s.Alloc(); err == nil {
		t.Fatal("over-budget alloc succeeded")
	}
	s.DecRef(f)
	if _, err := s.Alloc(); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestUnlimitedStoreAvailable(t *testing.T) {
	s := NewStore(0)
	if s.Available() != -1 {
		t.Errorf("Available = %d, want -1", s.Available())
	}
}

func TestLazyMaterialization(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	if f.Materialized() {
		t.Error("fresh frame is materialized")
	}
	buf := make([]byte, 8)
	f.Read(0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unmaterialized frame read nonzero")
		}
	}
	f.Write(100, []byte("hello"))
	if !f.Materialized() {
		t.Error("written frame not materialized")
	}
	got := make([]byte, 5)
	f.Read(100, got)
	if string(got) != "hello" {
		t.Errorf("read %q", got)
	}
	if s.Stats().Materialized != 1 {
		t.Errorf("Materialized = %d", s.Stats().Materialized)
	}
}

func TestEmptyWriteDoesNotMaterialize(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	f.Write(0, nil)
	if f.Materialized() {
		t.Error("empty write materialized frame")
	}
}

func TestWriteOutOfBoundsPanics(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Write(PageSize-2, []byte("abc"))
}

func TestReadOutOfBoundsPanics(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Read(-1, make([]byte, 1))
}

func TestRefCounting(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	s.IncRef(f)
	s.IncRef(f)
	if f.Refs() != 3 {
		t.Fatalf("refs = %d", f.Refs())
	}
	s.DecRef(f)
	s.DecRef(f)
	if s.Stats().FramesInUse != 1 {
		t.Error("frame freed while referenced")
	}
	s.DecRef(f)
	if s.Stats().FramesInUse != 0 {
		t.Error("frame not freed at zero refs")
	}
}

func TestDecRefOnFreedFramePanics(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	s.DecRef(f)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.DecRef(f)
}

func TestIncRefOnFreedFramePanics(t *testing.T) {
	s := NewStore(0)
	f := s.MustAlloc()
	s.DecRef(f)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.IncRef(f)
}

func TestCloneCopiesContent(t *testing.T) {
	s := NewStore(0)
	src := s.MustAlloc()
	src.Write(0, []byte("original"))
	dst, err := s.Clone(src)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	dst.Read(0, got)
	if string(got) != "original" {
		t.Errorf("clone read %q", got)
	}
	// Mutating the clone must not affect the source (CoW isolation).
	dst.Write(0, []byte("mutated!"))
	src.Read(0, got)
	if string(got) != "original" {
		t.Errorf("source corrupted by clone write: %q", got)
	}
}

func TestCloneOfZeroFrameStaysLazy(t *testing.T) {
	s := NewStore(0)
	src := s.MustAlloc()
	dst, err := s.Clone(src)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Materialized() {
		t.Error("clone of zero frame materialized")
	}
}

func TestHighWaterMark(t *testing.T) {
	s := NewStore(0)
	var frames []*Frame
	for i := 0; i < 10; i++ {
		frames = append(frames, s.MustAlloc())
	}
	for _, f := range frames {
		s.DecRef(f)
	}
	st := s.Stats()
	if st.HighWater != 10 {
		t.Errorf("HighWater = %d, want 10", st.HighWater)
	}
	if st.Allocs != 10 || st.Frees != 10 {
		t.Errorf("Allocs/Frees = %d/%d", st.Allocs, st.Frees)
	}
}

func TestUniqueFrameIDs(t *testing.T) {
	s := NewStore(0)
	seen := map[FrameID]bool{}
	for i := 0; i < 1000; i++ {
		f := s.MustAlloc()
		if seen[f.ID()] {
			t.Fatalf("duplicate frame ID %d", f.ID())
		}
		seen[f.ID()] = true
	}
}

// Property: for any sequence of writes within a page, reading back each
// written region returns the written bytes (last-writer-wins at byte
// granularity is exercised by overlapping writes below).
func TestQuickWriteReadRoundTrip(t *testing.T) {
	s := NewStore(0)
	prop := func(off uint16, data []byte) bool {
		o := int(off) % PageSize
		if o+len(data) > PageSize {
			data = data[:PageSize-o]
		}
		f := s.MustAlloc()
		defer s.DecRef(f)
		f.Write(o, data)
		got := make([]byte, len(data))
		f.Read(o, got)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: allocation never exceeds the budget, for any interleaving of
// allocs and frees.
func TestQuickBudgetInvariant(t *testing.T) {
	prop := func(ops []bool) bool {
		const budget = 8 * PageSize
		s := NewStore(budget)
		var live []*Frame
		for _, alloc := range ops {
			if alloc {
				if f, err := s.Alloc(); err == nil {
					live = append(live, f)
				}
			} else if len(live) > 0 {
				s.DecRef(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if s.Stats().BytesInUse > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
