// Package mem simulates the physical memory of the SEUSS compute node.
//
// The paper's evaluation runs inside an 88 GB QEMU-KVM virtual machine;
// snapshot sizes, per-invocation footprints, and cache-density limits are
// all statements about how many 4 KB physical frames are in use and how
// they are shared. This package provides that substrate: a frame
// allocator with reference counting (frames are shared read-only between
// snapshots and unikernel contexts), byte-level accounting against a
// configurable budget, and *lazy* frame contents so density experiments
// with 50 000+ cached contexts fit in laptop RAM — a frame's 4 KB payload
// is only materialized when something writes actual bytes into it.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the size of a physical frame in bytes, matching x86-64.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// ErrOutOfMemory is returned by Alloc when the store's byte budget is
// exhausted. The SEUSS OOM policy (§6 Memory Management) reacts to this
// by reclaiming idle UCs.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// FrameID identifies a physical frame within a Store.
type FrameID uint64

// Frame is a 4 KB physical frame. Frames are reference counted: page
// tables, snapshots, and UCs that map a frame hold a reference, and the
// frame returns to the allocator when the last reference drops.
type Frame struct {
	id   FrameID
	refs int32
	data []byte // nil until materialized; nil reads as all zeros
	st   *Store
}

// ID returns the frame's identifier.
func (f *Frame) ID() FrameID { return f.id }

// Refs returns the current reference count.
func (f *Frame) Refs() int32 { return f.refs }

// Materialized reports whether the frame's 4 KB payload is backed by
// real bytes (true) or is an implicit zero page (false).
func (f *Frame) Materialized() bool { return f.data != nil }

// Write copies data into the frame at off, materializing the payload on
// first write. It panics if the write would run past the frame: callers
// are simulating hardware and must respect page bounds.
func (f *Frame) Write(off int, data []byte) {
	if off < 0 || off+len(data) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside frame", off, off+len(data)))
	}
	if len(data) == 0 {
		return
	}
	if f.data == nil {
		f.data = make([]byte, PageSize)
		f.st.materialized++
		if f.st.scanner != nil {
			f.st.scanner.Track(f)
		}
	}
	copy(f.data[off:], data)
}

// Read copies the frame's bytes at off into dst. Unmaterialized frames
// read as zeros.
func (f *Frame) Read(off int, dst []byte) {
	if off < 0 || off+len(dst) > PageSize {
		panic(fmt.Sprintf("mem: read [%d,%d) outside frame", off, off+len(dst)))
	}
	if f.data == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, f.data[off:])
}

// Store is a physical memory allocator with a byte budget.
type Store struct {
	budget       int64 // total bytes; 0 means unlimited
	nextID       FrameID
	inUse        int64 // frames currently allocated
	highWater    int64
	materialized int64 // frames with real payloads
	allocs       int64 // lifetime allocation count
	frees        int64
	scanner      *Scanner // optional KSM-style content scanner
}

// AttachScanner registers a deduplication scanner: every frame that
// materializes content is tracked, and frees untrack. Used by the
// §5 KSM-contrast ablation.
func (s *Store) AttachScanner(sc *Scanner) { s.scanner = sc }

// NewStore returns a store with the given byte budget. A budget of 0
// means unlimited (useful for unit tests); the paper's compute node uses
// 88 GB.
func NewStore(budget int64) *Store {
	return &Store{budget: budget}
}

// Budget returns the configured byte budget (0 = unlimited).
func (s *Store) Budget() int64 { return s.budget }

// Alloc returns a fresh frame with reference count 1, or ErrOutOfMemory
// if the budget would be exceeded.
func (s *Store) Alloc() (*Frame, error) {
	if s.budget > 0 && (s.inUse+1)*PageSize > s.budget {
		return nil, ErrOutOfMemory
	}
	s.nextID++
	s.inUse++
	s.allocs++
	if s.inUse > s.highWater {
		s.highWater = s.inUse
	}
	return &Frame{id: s.nextID, refs: 1, st: s}, nil
}

// MustAlloc is Alloc for contexts where the budget is known to hold
// (tests, bootstrapping); it panics on exhaustion.
func (s *Store) MustAlloc() *Frame {
	f, err := s.Alloc()
	if err != nil {
		panic(err)
	}
	return f
}

// IncRef adds a reference to the frame (a new mapping or snapshot
// capture of it).
func (s *Store) IncRef(f *Frame) {
	if f.refs <= 0 {
		panic("mem: IncRef on freed frame")
	}
	f.refs++
}

// DecRef drops a reference; when the count reaches zero the frame is
// returned to the allocator.
func (s *Store) DecRef(f *Frame) {
	if f.refs <= 0 {
		panic("mem: DecRef on freed frame")
	}
	f.refs--
	if f.refs == 0 {
		if f.data != nil {
			f.data = nil
			s.materialized--
			if s.scanner != nil {
				s.scanner.Untrack(f.id)
			}
		}
		s.inUse--
		s.frees++
		f.st = nil
	}
}

// Clone allocates a new frame containing a copy of src's bytes — the
// copy-on-write resolution path. Unmaterialized sources clone to
// unmaterialized (zero) frames at no real-memory cost.
func (s *Store) Clone(src *Frame) (*Frame, error) {
	f, err := s.Alloc()
	if err != nil {
		return nil, err
	}
	if src.data != nil {
		f.data = make([]byte, PageSize)
		copy(f.data, src.data)
		s.materialized++
		if s.scanner != nil {
			s.scanner.Track(f)
		}
	}
	return f, nil
}

// Stats is a point-in-time snapshot of the store's accounting.
type Stats struct {
	FramesInUse  int64
	BytesInUse   int64
	HighWater    int64 // frames
	Materialized int64 // frames with real payloads
	Allocs       int64
	Frees        int64
	Budget       int64
}

// Stats returns current accounting.
func (s *Store) Stats() Stats {
	return Stats{
		FramesInUse:  s.inUse,
		BytesInUse:   s.inUse * PageSize,
		HighWater:    s.highWater,
		Materialized: s.materialized,
		Allocs:       s.allocs,
		Frees:        s.frees,
		Budget:       s.budget,
	}
}

// Available returns how many more frames fit in the budget, or -1 for
// unlimited stores.
func (s *Store) Available() int64 {
	if s.budget == 0 {
		return -1
	}
	return s.budget/PageSize - s.inUse
}
