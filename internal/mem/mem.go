// Package mem simulates the physical memory of the SEUSS compute node.
//
// The paper's evaluation runs inside an 88 GB QEMU-KVM virtual machine;
// snapshot sizes, per-invocation footprints, and cache-density limits are
// all statements about how many 4 KB physical frames are in use and how
// they are shared. This package provides that substrate: a frame
// allocator with reference counting (frames are shared read-only between
// snapshots and unikernel contexts), byte-level accounting against a
// configurable budget, and *lazy* frame contents so density experiments
// with 50 000+ cached contexts fit in laptop RAM — a frame's 4 KB payload
// is only materialized when something writes actual bytes into it.
//
// The allocator is free-list backed: freed frame descriptors and freed
// 4 KB payload buffers are recycled instead of handed back to the Go
// allocator, so the deploy→fault→capture hot path runs allocation-free
// in steady state (fresh descriptors come from slabs, amortizing the
// cold-start cost too). Recycling trades away the garbage collector's
// use-after-free protection; build with `-tags seusspoison` to get it
// back — freed payloads are filled with a poison pattern and freed
// descriptors are quarantined so stale handles keep panicking.
package mem

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// PageSize is the size of a physical frame in bytes, matching x86-64.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// frameSlabSize is how many frame descriptors are carved from one slab
// allocation when the free list is empty. 128 descriptors ≈ 6 KB —
// small enough to stay cheap, large enough that allocs/op on a
// descriptor-churning benchmark truncates to zero.
const frameSlabSize = 128

// maxFreeBufs bounds the recycled-payload list so a transient burst of
// materialized pages (a density spike) does not pin its high-water mark
// in buffers forever. 16 384 buffers = 64 MB per store.
const maxFreeBufs = 16384

// ErrOutOfMemory is returned by Alloc when the store's byte budget is
// exhausted. The SEUSS OOM policy (§6 Memory Management) reacts to this
// by reclaiming idle UCs.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// FrameID identifies a physical frame within a Store.
type FrameID uint64

// Frame is a 4 KB physical frame. Frames are reference counted: page
// tables, snapshots, and UCs that map a frame hold a reference, and the
// frame returns to the allocator when the last reference drops.
//
// The reference count is atomic so read-side paths (stats, the dedup
// scanner, cross-shard observers) may call Refs concurrently with a
// shard mutating it; all *structural* mutation (Alloc/DecRef/Write)
// still belongs to the store-owning goroutine.
type Frame struct {
	id   FrameID
	refs atomic.Int32
	data []byte // nil until materialized; nil reads as all zeros
	st   *Store
}

// ID returns the frame's identifier.
func (f *Frame) ID() FrameID { return f.id }

// Refs returns the current reference count.
func (f *Frame) Refs() int32 { return f.refs.Load() }

// Materialized reports whether the frame's 4 KB payload is backed by
// real bytes (true) or is an implicit zero page (false).
func (f *Frame) Materialized() bool { return f.data != nil }

// Bytes returns the frame's live payload without copying, or nil for an
// unmaterialized (implicit zero) frame. The slice aliases the frame's
// backing buffer: it is valid only while the caller holds a reference,
// and callers must treat it as read-only — it exists so the snapshot
// codec can stream page contents straight from frames to the wire.
func (f *Frame) Bytes() []byte { return f.data }

// Write copies data into the frame at off, materializing the payload on
// first write. It panics if the write would run past the frame: callers
// are simulating hardware and must respect page bounds.
func (f *Frame) Write(off int, data []byte) {
	if off < 0 || off+len(data) > PageSize {
		panic(fmt.Sprintf("mem: write [%d,%d) outside frame", off, off+len(data)))
	}
	if len(data) == 0 {
		return
	}
	if f.data == nil {
		f.data = f.st.getBuf(true)
		f.st.materialized++
		if f.st.scanner != nil {
			f.st.scanner.Track(f)
		}
	}
	copy(f.data[off:], data)
}

// Read copies the frame's bytes at off into dst. Unmaterialized frames
// read as zeros.
func (f *Frame) Read(off int, dst []byte) {
	if off < 0 || off+len(dst) > PageSize {
		panic(fmt.Sprintf("mem: read [%d,%d) outside frame", off, off+len(dst)))
	}
	if f.data == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, f.data[off:])
}

// Store is a physical memory allocator with a byte budget. Stores are
// shard-local (shared-nothing), so the free lists need no locking.
type Store struct {
	budget       int64 // total bytes; 0 means unlimited
	nextID       FrameID
	inUse        int64 // frames currently allocated
	highWater    int64
	materialized int64 // frames with real payloads
	allocs       int64 // lifetime allocation count
	frees        int64
	frameReuses  int64 // allocs served from the descriptor free list
	bufReuses    int64 // materializations served from the payload free list
	free         []*Frame // recycled descriptors (refs==0, data==nil)
	bufs         [][]byte // recycled 4 KB payloads
	slab         []Frame  // current descriptor slab
	slabN        int      // descriptors handed out of slab
	scanner      *Scanner // optional KSM-style content scanner
}

// AttachScanner registers a deduplication scanner: every frame that
// materializes content is tracked, and frees untrack. Used by the
// §5 KSM-contrast ablation.
func (s *Store) AttachScanner(sc *Scanner) { s.scanner = sc }

// NewStore returns a store with the given byte budget. A budget of 0
// means unlimited (useful for unit tests); the paper's compute node uses
// 88 GB.
func NewStore(budget int64) *Store {
	return &Store{budget: budget}
}

// Budget returns the configured byte budget (0 = unlimited).
func (s *Store) Budget() int64 { return s.budget }

// getBuf returns a 4 KB payload buffer, recycled when possible. Recycled
// buffers carry stale bytes (or poison, under the seusspoison tag), so
// callers that expose the buffer as a fresh zero page pass zero=true;
// the Clone path overwrites the full page and skips the clear.
func (s *Store) getBuf(zero bool) []byte {
	if n := len(s.bufs); n > 0 {
		b := s.bufs[n-1]
		s.bufs[n-1] = nil
		s.bufs = s.bufs[:n-1]
		s.bufReuses++
		if zero {
			clear(b)
		}
		return b
	}
	return make([]byte, PageSize)
}

// putBuf recycles a payload buffer (poisoning it first under the
// seusspoison build tag).
func (s *Store) putBuf(b []byte) {
	poisonBuf(b)
	if len(s.bufs) < maxFreeBufs {
		s.bufs = append(s.bufs, b)
	}
}

// Alloc returns a fresh frame with reference count 1, or ErrOutOfMemory
// if the budget would be exceeded.
func (s *Store) Alloc() (*Frame, error) {
	if s.budget > 0 && (s.inUse+1)*PageSize > s.budget {
		return nil, ErrOutOfMemory
	}
	s.nextID++
	s.inUse++
	s.allocs++
	if s.inUse > s.highWater {
		s.highWater = s.inUse
	}
	var f *Frame
	if n := len(s.free); n > 0 && framePoolEnabled {
		f = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.frameReuses++
	} else {
		if s.slabN == len(s.slab) {
			s.slab = make([]Frame, frameSlabSize)
			s.slabN = 0
		}
		f = &s.slab[s.slabN]
		s.slabN++
	}
	f.id = s.nextID
	f.st = s
	f.refs.Store(1)
	return f, nil
}

// MustAlloc is Alloc for contexts where the budget is known to hold
// (tests, bootstrapping); it panics on exhaustion.
func (s *Store) MustAlloc() *Frame {
	f, err := s.Alloc()
	if err != nil {
		panic(err)
	}
	return f
}

// IncRef adds a reference to the frame (a new mapping or snapshot
// capture of it).
func (s *Store) IncRef(f *Frame) {
	if f.refs.Load() <= 0 {
		panic("mem: IncRef on freed frame")
	}
	f.refs.Add(1)
}

// DecRef drops a reference; when the count reaches zero the frame's
// descriptor and payload buffer are returned to the store's free lists
// (under the seusspoison tag the descriptor is quarantined instead, so
// a stale handle still panics on the next IncRef/DecRef).
func (s *Store) DecRef(f *Frame) {
	if f.refs.Load() <= 0 {
		panic("mem: DecRef on freed frame")
	}
	if f.refs.Add(-1) != 0 {
		return
	}
	if f.data != nil {
		s.putBuf(f.data)
		f.data = nil
		s.materialized--
		if s.scanner != nil {
			s.scanner.Untrack(f.id)
		}
	}
	s.inUse--
	s.frees++
	f.st = nil
	if framePoolEnabled {
		s.free = append(s.free, f)
	}
}

// Clone allocates a new frame containing a copy of src's bytes — the
// copy-on-write resolution path. Unmaterialized sources clone to
// unmaterialized (zero) frames at no real-memory cost.
func (s *Store) Clone(src *Frame) (*Frame, error) {
	f, err := s.Alloc()
	if err != nil {
		return nil, err
	}
	if src.data != nil {
		f.data = s.getBuf(false)
		copy(f.data, src.data)
		s.materialized++
		if s.scanner != nil {
			s.scanner.Track(f)
		}
	}
	return f, nil
}

// Stats is a point-in-time snapshot of the store's accounting.
type Stats struct {
	FramesInUse  int64
	BytesInUse   int64
	HighWater    int64 // frames
	Materialized int64 // frames with real payloads
	Allocs       int64
	Frees        int64
	FrameReuses  int64 // allocs served by recycled descriptors
	BufReuses    int64 // materializations served by recycled buffers
	Budget       int64
}

// Stats returns current accounting.
func (s *Store) Stats() Stats {
	return Stats{
		FramesInUse:  s.inUse,
		BytesInUse:   s.inUse * PageSize,
		HighWater:    s.highWater,
		Materialized: s.materialized,
		Allocs:       s.allocs,
		Frees:        s.frees,
		FrameReuses:  s.frameReuses,
		BufReuses:    s.bufReuses,
		Budget:       s.budget,
	}
}

// Available returns how many more frames fit in the budget, or -1 for
// unlimited stores.
func (s *Store) Available() int64 {
	if s.budget == 0 {
		return -1
	}
	return s.budget/PageSize - s.inUse
}
