package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"seuss/internal/sim"
)

// This file is the open-loop companion to Trial's closed loop: a
// trace-driven generator where each function key has its own arrival
// process (Poisson, lognormal, or one-shot) and invocations are issued
// at their scheduled instants regardless of how fast earlier ones
// complete — the arrival model of production serverless traffic, and
// the load shape lifecycle policies are measured under.

// Arrival processes.
const (
	// ProcPoisson draws exponential gaps around Mean — the bursty,
	// memoryless interactive stream.
	ProcPoisson = "poisson"
	// ProcLognormal draws gaps of median Mean and log-stddev Sigma —
	// concentrated near-periodic traffic (crons, batch ticks).
	ProcLognormal = "lognormal"
	// ProcOnce fires exactly one arrival, uniform in [0, Mean) — the
	// long tail of keys that are invoked and never seen again.
	ProcOnce = "once"
)

// TraceKey is one function and its arrival process.
type TraceKey struct {
	Spec    Spec
	Process string        // ProcPoisson, ProcLognormal, or ProcOnce
	Mean    time.Duration // poisson: mean gap; lognormal: median gap; once: arrival window
	Sigma   float64       // lognormal log-stddev (ignored otherwise)
}

// Trace is an open-loop, trace-driven load description over M keys.
// The same Seed always yields the same arrival schedule.
type Trace struct {
	Keys    []TraceKey
	Horizon time.Duration // generate arrivals in [0, Horizon)
	Seed    int64
}

// Arrival is one scheduled invocation: Keys[Key] fires at At.
type Arrival struct {
	At  time.Duration
	Key int
}

// TracePoint is one completed invocation.
type TracePoint struct {
	Key     string
	Sent    time.Duration // scheduled arrival instant (virtual)
	Latency time.Duration
	Path    string // serving path as reported by the invoker
	Err     bool
}

// TraceResult aggregates a trace run. Points is in completion order;
// callers window on Sent to exclude warmup.
type TraceResult struct {
	Arrivals  int
	Completed int
	Errors    int
	Points    []TracePoint
}

// PathInvoker is an Invoker that also reports which taxonomy path
// (cold/warm/hot/lukewarm) served each invocation — the trace
// experiments' primary observable.
type PathInvoker interface {
	InvokePath(p *sim.Proc, spec Spec, args string) (path string, err error)
}

// Arrivals expands the trace into its deterministic arrival schedule,
// sorted by instant (ties broken by key index). Each key draws from
// its own seeded stream, so adding or removing keys never perturbs the
// others' schedules.
func (t Trace) Arrivals() []Arrival {
	var out []Arrival
	for ki, k := range t.Keys {
		kr := sim.NewRNG(t.Seed + int64(ki+1)*0x9E3779B9)
		switch k.Process {
		case ProcOnce:
			window := k.Mean
			if window <= 0 {
				window = t.Horizon
			}
			at := time.Duration(kr.Float64() * float64(window))
			if at < t.Horizon {
				out = append(out, Arrival{At: at, Key: ki})
			}
		case ProcLognormal:
			// Random phase so the periodic keys don't all tick in
			// lockstep, then lognormal gaps.
			at := time.Duration(kr.Float64() * float64(k.Mean))
			for at < t.Horizon {
				out = append(out, Arrival{At: at, Key: ki})
				at += lognormalGap(kr, k.Mean, k.Sigma)
			}
		default: // ProcPoisson
			at := kr.Exp(k.Mean)
			for at < t.Horizon {
				out = append(out, Arrival{At: at, Key: ki})
				at += kr.Exp(k.Mean)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Run issues the trace's arrivals open-loop against inv: a generator
// proc sleeps to each scheduled instant and forks the invocation into
// its own proc, so slow serves never delay later arrivals. Run drives
// eng.Run itself and returns once every in-flight invocation has
// completed.
func (t Trace) Run(eng *sim.Engine, inv PathInvoker) TraceResult {
	arrivals := t.Arrivals()
	res := TraceResult{Arrivals: len(arrivals)}
	eng.Go("trace-arrivals", func(p *sim.Proc) {
		for _, a := range arrivals {
			if wait := a.At - time.Duration(p.Now()); wait > 0 {
				p.Sleep(wait)
			}
			a := a
			k := t.Keys[a.Key]
			eng.Go("trace-invoke", func(p *sim.Proc) {
				start := time.Duration(p.Now())
				path, err := inv.InvokePath(p, k.Spec, "{}")
				pt := TracePoint{
					Key:     k.Spec.Key,
					Sent:    a.At,
					Latency: time.Duration(p.Now()) - start,
					Path:    path,
					Err:     err != nil,
				}
				if err != nil {
					res.Errors++
				} else {
					res.Completed++
				}
				res.Points = append(res.Points, pt)
			})
		}
	})
	eng.Run()
	return res
}

// lognormalGap draws median * exp(sigma * Z) with Z standard normal
// (Box-Muller over the trace RNG — sim.RNG has no normal variate).
func lognormalGap(r *sim.RNG, median time.Duration, sigma float64) time.Duration {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	d := time.Duration(float64(median) * math.Exp(sigma*z))
	if d < time.Millisecond {
		d = time.Millisecond // keep pathological tails from zero-gap loops
	}
	return d
}

// ParseTraceCSV reads trace keys from CSV with columns
//
//	key,process,mean_ms,sigma[,cpu_ms]
//
// process is poisson|lognormal|once; mean_ms is the process's Mean in
// milliseconds; sigma is the lognormal log-stddev (0 for the others);
// the optional cpu_ms makes the function CPU-bound instead of NOP.
// Lines starting with '#' and a leading "key,..." header are skipped —
// the format real Azure-style trace exports flatten into.
func ParseTraceCSV(r io.Reader) ([]TraceKey, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	var keys []TraceKey
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace csv: %w", err)
		}
		line++
		if line == 1 && len(rec) > 0 && strings.EqualFold(strings.TrimSpace(rec[0]), "key") {
			continue
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("trace csv record %d: want key,process,mean_ms[,sigma[,cpu_ms]], got %d fields", line, len(rec))
		}
		key := strings.TrimSpace(rec[0])
		proc := strings.ToLower(strings.TrimSpace(rec[1]))
		switch proc {
		case ProcPoisson, ProcLognormal, ProcOnce:
		default:
			return nil, fmt.Errorf("trace csv record %d: unknown process %q", line, proc)
		}
		meanMS, err := strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
		if err != nil || meanMS <= 0 {
			return nil, fmt.Errorf("trace csv record %d: bad mean_ms %q", line, rec[2])
		}
		var sigma float64
		if len(rec) > 3 && strings.TrimSpace(rec[3]) != "" {
			sigma, err = strconv.ParseFloat(strings.TrimSpace(rec[3]), 64)
			if err != nil || sigma < 0 {
				return nil, fmt.Errorf("trace csv record %d: bad sigma %q", line, rec[3])
			}
		}
		spec := Spec{Key: key, Source: NOPSource}
		if len(rec) > 4 && strings.TrimSpace(rec[4]) != "" {
			cpuMS, err := strconv.Atoi(strings.TrimSpace(rec[4]))
			if err != nil || cpuMS < 0 {
				return nil, fmt.Errorf("trace csv record %d: bad cpu_ms %q", line, rec[4])
			}
			if cpuMS > 0 {
				spec = CPUSpec(key, cpuMS)
			}
		}
		keys = append(keys, TraceKey{
			Spec:    spec,
			Process: proc,
			Mean:    time.Duration(meanMS * float64(time.Millisecond)),
			Sigma:   sigma,
		})
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("trace csv: no keys")
	}
	return keys, nil
}
