package workload

import (
	"strings"
	"testing"
	"time"

	"seuss/internal/sim"
)

// traceRecorder is a PathInvoker that records arrival order and serves
// every invocation instantly.
type traceRecorder struct {
	keys  []string
	times []time.Duration
}

func (r *traceRecorder) InvokePath(p *sim.Proc, spec Spec, args string) (string, error) {
	r.keys = append(r.keys, spec.Key)
	r.times = append(r.times, time.Duration(p.Now()))
	return "hot", nil
}

func testTrace(seed int64) Trace {
	return Trace{
		Seed:    seed,
		Horizon: 4 * time.Minute,
		Keys: []TraceKey{
			{Spec: NOPSpec(0), Process: ProcPoisson, Mean: 10 * time.Second},
			{Spec: NOPSpec(1), Process: ProcLognormal, Mean: 45 * time.Second, Sigma: 0.2},
			{Spec: NOPSpec(2), Process: ProcOnce, Mean: time.Minute},
		},
	}
}

// TestPolicyTraceDeterministicPerSeed: the same seed yields the same
// schedule; a different seed yields a different one.
func TestPolicyTraceDeterministicPerSeed(t *testing.T) {
	a := testTrace(7).Arrivals()
	b := testTrace(7).Arrivals()
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := testTrace(8).Arrivals()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

// TestPolicyTraceProcessShapes sanity-checks each arrival process:
// Poisson count near horizon/mean, lognormal gaps concentrated around
// the median, exactly one arrival for a once key, all inside the
// horizon and sorted.
func TestPolicyTraceProcessShapes(t *testing.T) {
	tr := testTrace(42)
	arr := tr.Arrivals()
	counts := map[int]int{}
	var last time.Duration
	for _, a := range arr {
		if a.At < last {
			t.Fatal("arrivals not sorted by instant")
		}
		last = a.At
		if a.At < 0 || a.At >= tr.Horizon {
			t.Fatalf("arrival at %v outside [0, %v)", a.At, tr.Horizon)
		}
		counts[a.Key]++
	}
	// Poisson mean 10s over 4min → ~24 arrivals; allow wide slack.
	if n := counts[0]; n < 10 || n > 48 {
		t.Errorf("poisson key arrivals = %d, want ≈24", n)
	}
	// Lognormal median 45s over 4min → ~5-6 arrivals.
	if n := counts[1]; n < 3 || n > 10 {
		t.Errorf("lognormal key arrivals = %d, want ≈5", n)
	}
	if n := counts[2]; n != 1 {
		t.Errorf("once key arrivals = %d, want 1", n)
	}
}

// TestPolicyTraceRunOpenLoop: Run issues every arrival at its
// scheduled instant (invocations are forked, never queued behind each
// other) and reports completions.
func TestPolicyTraceRunOpenLoop(t *testing.T) {
	eng := sim.NewEngine()
	tr := testTrace(7)
	rec := &traceRecorder{}
	res := tr.Run(eng, rec)
	if res.Arrivals != len(tr.Arrivals()) {
		t.Errorf("Arrivals = %d, want %d", res.Arrivals, len(tr.Arrivals()))
	}
	if res.Completed != res.Arrivals || res.Errors != 0 {
		t.Errorf("Completed = %d, Errors = %d, want %d completions", res.Completed, res.Errors, res.Arrivals)
	}
	if len(res.Points) != res.Arrivals {
		t.Fatalf("Points = %d, want %d", len(res.Points), res.Arrivals)
	}
	want := tr.Arrivals()
	for i, at := range rec.times {
		if at != want[i].At {
			t.Fatalf("invocation %d issued at %v, scheduled for %v", i, at, want[i].At)
		}
	}
	for _, pt := range res.Points {
		if pt.Path != "hot" || pt.Err {
			t.Fatalf("unexpected point %+v", pt)
		}
	}
}

// TestPolicyTraceCSVImport round-trips the CSV trace format and
// rejects malformed rows.
func TestPolicyTraceCSVImport(t *testing.T) {
	csvText := `key,process,mean_ms,sigma,cpu_ms
# periodic batch tick
acct/cron,lognormal,240000,0.12,
acct/api,poisson,15000,0,150
acct/oneshot,once,60000
`
	keys, err := ParseTraceCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("parsed %d keys, want 3", len(keys))
	}
	if keys[0].Process != ProcLognormal || keys[0].Mean != 4*time.Minute || keys[0].Sigma != 0.12 {
		t.Errorf("cron row parsed as %+v", keys[0])
	}
	if keys[1].Spec.CPU != 150*time.Millisecond {
		t.Errorf("cpu_ms column ignored: %+v", keys[1].Spec)
	}
	if keys[2].Process != ProcOnce || keys[2].Mean != time.Minute {
		t.Errorf("once row parsed as %+v", keys[2])
	}

	for _, bad := range []string{
		"",
		"k,warp,1000,0\n",
		"k,poisson,-5,0\n",
		"k,lognormal,1000,-1\n",
		"k,poisson\n",
	} {
		if _, err := ParseTraceCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTraceCSV(%q) did not error", bad)
		}
	}
}
