// Package workload implements the paper's load-generation benchmark
// (§7) and its function corpus.
//
// The benchmark works in trials of three parameters: invocation count
// (N), function set size (M), and worker threads (C). N invocations are
// distributed across M functions in a pre-computed random order
// (persisted per seed, so trials are repeatable); C workers pull
// requests one at a time from a shared queue and issue synchronous
// invocations, so at most C requests are in flight.
//
// The corpus has the three function shapes the evaluation uses: the
// NOP JavaScript function of the microbenchmarks and throughput tests,
// CPU-bound functions (≈150 ms of compute) and IO-bound functions
// (blocking ≈250 ms on an external HTTP server) for the burst
// experiments.
package workload

import (
	"fmt"
	"sort"
	"time"

	"seuss/internal/metrics"
	"seuss/internal/sim"
)

// NOPSource is the single-line NOP JavaScript function used throughout
// the evaluation to expose system-induced overheads.
const NOPSource = `function main(args) { return {}; }`

// CPUBoundSource returns a function that burns ms of CPU (the burst
// functions perform a computation that takes around 150 ms).
func CPUBoundSource(ms int) string {
	return fmt.Sprintf(`function main(args) { spin(%d); return {done: true}; }`, ms)
}

// IOBoundSource returns a function that blocks on an external HTTP
// call; the remote server's think time is configured server-side.
func IOBoundSource(url string) string {
	return fmt.Sprintf(`function main(args) { var body = http.get(%q); return {body: body}; }`, url)
}

// Spec describes one function to both backends: real source for the
// SEUSS node, and the modeled CPU/IO demands the Linux container
// backend charges.
type Spec struct {
	Key    string
	Source string
	CPU    time.Duration // in-function compute
	IO     time.Duration // external blocking time
}

// NOPSpec builds a logically unique NOP function (unique key, identical
// code — exactly the throughput experiment's setup).
func NOPSpec(i int) Spec {
	return Spec{Key: fmt.Sprintf("user%05d/nop", i), Source: NOPSource}
}

// CPUSpec builds a CPU-bound function.
func CPUSpec(key string, ms int) Spec {
	return Spec{Key: key, Source: CPUBoundSource(ms), CPU: time.Duration(ms) * time.Millisecond}
}

// IOSpec builds an IO-bound function calling url.
func IOSpec(key, url string, block time.Duration) Spec {
	return Spec{Key: key, Source: IOBoundSource(url), IO: block}
}

// Invoker is the platform interface the benchmark drives. Both the
// SEUSS- and Linux-backed clusters implement it.
type Invoker interface {
	// Invoke runs one synchronous invocation inside p.
	Invoke(p *sim.Proc, spec Spec, args string) error
}

// Trial is one benchmark trial.
type Trial struct {
	// N is the total invocation count.
	N int
	// Fns is the function set (M = len(Fns)).
	Fns []Spec
	// C is the worker thread count.
	C int
	// Seed fixes the pre-computed random send order.
	Seed int64
	// Warmup invocations are executed but excluded from measurements.
	Warmup int
}

// TrialResult aggregates a trial's outcome.
type TrialResult struct {
	Completed int
	Errors    int
	Elapsed   time.Duration
	Latencies []time.Duration
	// Completions holds each successful request's completion instant
	// (virtual time), in completion order.
	Completions []time.Duration
}

// Throughput returns successful completions per second over the whole
// measurement window (first send to last completion).
func (r TrialResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// SteadyThroughput returns the completion rate between the 5th and 95th
// percentile completion instants — the "point of stability" the paper
// reads its throughput from, insensitive to warm-in and straggler
// tails.
func (r TrialResult) SteadyThroughput() float64 {
	n := len(r.Completions)
	if n < 20 {
		return r.Throughput()
	}
	sorted := make([]time.Duration, n)
	copy(sorted, r.Completions)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo, hi := sorted[n/20], sorted[n-1-n/20]
	if hi <= lo {
		return r.Throughput()
	}
	count := float64(n - 2*(n/20))
	return count / (hi - lo).Seconds()
}

// Summary returns the latency percentile summary.
func (r TrialResult) Summary() metrics.Summary { return metrics.Summarize(r.Latencies) }

// Run executes the trial on the engine against the invoker and blocks
// (in real time) until the virtual-time run completes.
func (t Trial) Run(eng *sim.Engine, inv Invoker) TrialResult {
	order := t.sendOrder()
	queue := sim.NewQueue(eng)
	for _, idx := range order {
		queue.Put(idx)
	}
	queue.Close()

	var res TrialResult
	var measStart sim.Time
	measuring := t.Warmup == 0
	remainingWarmup := t.Warmup

	for w := 0; w < t.C; w++ {
		eng.Go(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
			for {
				v, ok := queue.Get(p)
				if !ok {
					return
				}
				spec := t.Fns[v.(int)]
				start := p.Now()
				err := inv.Invoke(p, spec, "{}")
				lat := time.Duration(p.Now() - start)
				if remainingWarmup > 0 {
					remainingWarmup--
					if remainingWarmup == 0 {
						measuring = true
						measStart = p.Now()
					}
					continue
				}
				if !measuring {
					continue
				}
				if err != nil {
					res.Errors++
					continue
				}
				res.Completed++
				res.Latencies = append(res.Latencies, lat)
				res.Completions = append(res.Completions, time.Duration(p.Now()))
			}
		})
	}
	eng.Run()
	res.Elapsed = time.Duration(eng.Now() - measStart)
	return res
}

// sendOrder pre-computes the random request order: N indexes into Fns.
// Every function appears at least once before random filling so small
// N with large M still covers the set.
func (t Trial) sendOrder() []int {
	rng := sim.NewRNG(t.Seed)
	order := make([]int, 0, t.N+t.Warmup)
	total := t.N + t.Warmup
	m := len(t.Fns)
	for i := 0; i < total; i++ {
		order = append(order, rng.Intn(m))
	}
	return order
}

// Burst describes the §7 burst-resiliency experiment: a rate-throttled
// background stream of IO-bound functions with periodic bursts of
// concurrent invocations of fresh CPU-bound functions.
type Burst struct {
	// Background stream: Threads workers spread across BGFns IO-bound
	// functions, throttled to BGRate requests/second in aggregate.
	Threads int
	BGFns   []Spec
	BGRate  float64
	// BurstEvery is the burst period (32 s, 16 s, or 8 s in the paper).
	BurstEvery time.Duration
	// BurstSize is the number of concurrent invocations per burst (the
	// paper does not state it; see EXPERIMENTS.md).
	BurstSize int
	// BurstCPUms is the burst function's compute time (≈150 ms).
	BurstCPUms int
	// Bursts is how many bursts to send.
	Bursts int
	// Seed fixes arrival randomness.
	Seed int64
}

// Run executes the burst experiment and returns the per-request
// timeline (the scatter data of Figures 6-8).
func (b Burst) Run(eng *sim.Engine, inv Invoker) *metrics.Timeline {
	tl := &metrics.Timeline{}
	duration := time.Duration(b.Bursts+1) * b.BurstEvery

	// Background stream: an open-loop arrival process at BGRate,
	// admitted by Threads closed-loop workers through a queue (the
	// benchmark's rate throttle).
	arrivals := sim.NewQueue(eng)
	rng := sim.NewRNG(b.Seed)
	eng.Go("bg-arrivals", func(p *sim.Proc) {
		interval := time.Duration(float64(time.Second) / b.BGRate)
		n := 0
		for time.Duration(p.Now()) < duration {
			arrivals.Put(b.BGFns[n%len(b.BGFns)])
			n++
			p.Sleep(rng.Jitter(interval, 0.1))
		}
		arrivals.Close()
	})
	for wi := 0; wi < b.Threads; wi++ {
		eng.Go(fmt.Sprintf("bg%d", wi), func(p *sim.Proc) {
			for {
				v, ok := arrivals.Get(p)
				if !ok {
					return
				}
				spec := v.(Spec)
				sent := time.Duration(p.Now())
				err := inv.Invoke(p, spec, "{}")
				tl.Add(metrics.Point{
					Sent:    sent,
					Latency: time.Duration(p.Now()) - sent,
					Err:     err != nil,
					Kind:    "background",
				})
			}
		})
	}

	// Bursts: every BurstEvery, BurstSize concurrent invocations of a
	// function never seen before (unique across bursts).
	for bi := 0; bi < b.Bursts; bi++ {
		at := time.Duration(bi+1) * b.BurstEvery
		fn := CPUSpec(fmt.Sprintf("burst%04d/cpu", bi), b.BurstCPUms)
		eng.At(sim.Time(at), func() {
			for r := 0; r < b.BurstSize; r++ {
				eng.Go("burst-req", func(p *sim.Proc) {
					sent := time.Duration(p.Now())
					err := inv.Invoke(p, fn, "{}")
					tl.Add(metrics.Point{
						Sent:    sent,
						Latency: time.Duration(p.Now()) - sent,
						Err:     err != nil,
						Kind:    "burst",
					})
				})
			}
		})
	}

	eng.Run()
	return tl
}
