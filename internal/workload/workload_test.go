package workload

import (
	"strings"
	"testing"
	"time"

	"seuss/internal/lang"
	"seuss/internal/sim"
)

// fakeInvoker records invocations and charges a fixed latency.
type fakeInvoker struct {
	latency time.Duration
	seen    []string
	fail    func(key string) bool
}

func (f *fakeInvoker) Invoke(p *sim.Proc, spec Spec, args string) error {
	f.seen = append(f.seen, spec.Key)
	p.Sleep(f.latency)
	if f.fail != nil && f.fail(spec.Key) {
		return ErrFake
	}
	return nil
}

// ErrFake marks injected failures.
var ErrFake = errFake{}

type errFake struct{}

func (errFake) Error() string { return "injected failure" }

func TestCorpusSourcesAreValidMiniJS(t *testing.T) {
	for name, src := range map[string]string{
		"nop": NOPSource,
		"cpu": CPUBoundSource(150),
		"io":  IOBoundSource("http://ext/block"),
	} {
		if _, err := lang.Parse(src); err != nil {
			t.Errorf("%s source does not parse: %v", name, err)
		}
		if !strings.Contains(src, "function main") {
			t.Errorf("%s source lacks main", name)
		}
	}
}

func TestSpecConstructors(t *testing.T) {
	n := NOPSpec(3)
	if n.Key != "user00003/nop" || n.CPU != 0 || n.IO != 0 {
		t.Errorf("NOPSpec = %+v", n)
	}
	c := CPUSpec("k", 150)
	if c.CPU != 150*time.Millisecond {
		t.Errorf("CPUSpec = %+v", c)
	}
	i := IOSpec("k", "u", 250*time.Millisecond)
	if i.IO != 250*time.Millisecond {
		t.Errorf("IOSpec = %+v", i)
	}
}

func TestTrialRunsAllInvocations(t *testing.T) {
	eng := sim.NewEngine()
	inv := &fakeInvoker{latency: time.Millisecond}
	fns := []Spec{NOPSpec(0), NOPSpec(1), NOPSpec(2)}
	tr := Trial{N: 100, Fns: fns, C: 4, Seed: 1}
	res := tr.Run(eng, inv)
	if res.Completed != 100 || res.Errors != 0 {
		t.Errorf("completed=%d errors=%d", res.Completed, res.Errors)
	}
	if len(inv.seen) != 100 {
		t.Errorf("invoked %d", len(inv.seen))
	}
	if len(res.Latencies) != 100 {
		t.Errorf("latencies = %d", len(res.Latencies))
	}
}

func TestTrialConcurrencyBound(t *testing.T) {
	// With C workers and 10ms latency, 100 requests take ≥ 100/C*10ms.
	eng := sim.NewEngine()
	inv := &fakeInvoker{latency: 10 * time.Millisecond}
	tr := Trial{N: 100, Fns: []Spec{NOPSpec(0)}, C: 4, Seed: 1}
	res := tr.Run(eng, inv)
	want := 250 * time.Millisecond
	if res.Elapsed < want {
		t.Errorf("elapsed %v < %v: more than C in flight", res.Elapsed, want)
	}
	if got := res.Throughput(); got < 350 || got > 450 {
		t.Errorf("throughput = %.0f/s, want ≈400", got)
	}
}

func TestTrialSendOrderDeterministic(t *testing.T) {
	mk := func() []string {
		eng := sim.NewEngine()
		inv := &fakeInvoker{latency: time.Millisecond}
		tr := Trial{N: 50, Fns: []Spec{NOPSpec(0), NOPSpec(1), NOPSpec(2), NOPSpec(3)}, C: 1, Seed: 42}
		tr.Run(eng, inv)
		return inv.seen
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("send order differs across runs with same seed")
		}
	}
}

func TestTrialDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed int64) []string {
		eng := sim.NewEngine()
		inv := &fakeInvoker{latency: time.Millisecond}
		tr := Trial{N: 50, Fns: []Spec{NOPSpec(0), NOPSpec(1), NOPSpec(2), NOPSpec(3)}, C: 1, Seed: seed}
		tr.Run(eng, inv)
		return inv.seen
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical order")
	}
}

func TestTrialErrorsCounted(t *testing.T) {
	eng := sim.NewEngine()
	inv := &fakeInvoker{latency: time.Millisecond, fail: func(key string) bool {
		return key == "user00001/nop"
	}}
	tr := Trial{N: 90, Fns: []Spec{NOPSpec(0), NOPSpec(1), NOPSpec(2)}, C: 2, Seed: 7}
	res := tr.Run(eng, inv)
	if res.Errors == 0 {
		t.Error("no errors recorded")
	}
	if res.Completed+res.Errors != 90 {
		t.Errorf("completed %d + errors %d != 90", res.Completed, res.Errors)
	}
}

func TestTrialWarmupExcluded(t *testing.T) {
	eng := sim.NewEngine()
	inv := &fakeInvoker{latency: time.Millisecond}
	tr := Trial{N: 50, Fns: []Spec{NOPSpec(0)}, C: 2, Seed: 1, Warmup: 25}
	res := tr.Run(eng, inv)
	if res.Completed != 50 {
		t.Errorf("completed = %d, want 50 measured", res.Completed)
	}
	if len(inv.seen) != 75 {
		t.Errorf("total invoked = %d, want 75", len(inv.seen))
	}
}

func TestBurstTimelineStructure(t *testing.T) {
	eng := sim.NewEngine()
	inv := &fakeInvoker{latency: 5 * time.Millisecond}
	b := Burst{
		Threads:    8,
		BGFns:      []Spec{IOSpec("io0", "http://ext", 50*time.Millisecond)},
		BGRate:     20,
		BurstEvery: 2 * time.Second,
		BurstSize:  10,
		BurstCPUms: 50,
		Bursts:     3,
		Seed:       1,
	}
	tl := b.Run(eng, inv)
	if got := tl.Count("burst"); got != 30 {
		t.Errorf("burst requests = %d, want 30", got)
	}
	if tl.Count("background") < 100 {
		t.Errorf("background requests = %d, implausibly few", tl.Count("background"))
	}
	if tl.Errors("") != 0 {
		t.Errorf("errors = %d", tl.Errors(""))
	}
	// Burst requests are clustered at multiples of the period.
	for _, pt := range tl.Points {
		if pt.Kind != "burst" {
			continue
		}
		period := pt.Sent.Round(2 * time.Second)
		if diff := pt.Sent - period; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("burst request sent at %v, not on a period boundary", pt.Sent)
		}
	}
}

func TestBurstFunctionsUniqueAcrossBursts(t *testing.T) {
	eng := sim.NewEngine()
	inv := &fakeInvoker{latency: time.Millisecond}
	b := Burst{
		Threads: 2, BGFns: []Spec{NOPSpec(0)}, BGRate: 5,
		BurstEvery: time.Second, BurstSize: 4, BurstCPUms: 10, Bursts: 3, Seed: 1,
	}
	b.Run(eng, inv)
	burstKeys := map[string]bool{}
	for _, k := range inv.seen {
		if strings.HasPrefix(k, "burst") {
			burstKeys[k] = true
		}
	}
	if len(burstKeys) != 3 {
		t.Errorf("distinct burst functions = %d, want 3", len(burstKeys))
	}
}

func TestThroughputZeroElapsed(t *testing.T) {
	if (TrialResult{Completed: 10}).Throughput() != 0 {
		t.Error("zero elapsed should give zero throughput")
	}
}
