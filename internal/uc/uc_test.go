package uc

import (
	"strings"
	"testing"
	"time"

	"seuss/internal/costs"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/snapshot"
)

const nopSource = `function main(args) { return {}; }`

const echoSource = `
function main(args) {
	return {echo: args.msg, n: args.n * 2};
}
`

// initRuntimeSnapshot performs the system-initialization sequence with
// full AO and captures the base runtime snapshot — the setup every test
// below deploys from.
func initRuntimeSnapshot(t *testing.T, st *mem.Store, ao bool) *snapshot.Snapshot {
	t.Helper()
	env := &libos.CountingEnv{}
	boot, err := BootFresh(st, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if ao {
		if err := boot.Guest().Unikernel().WarmNetwork(); err != nil {
			t.Fatal(err)
		}
		if err := boot.Guest().WarmInterpreter(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := boot.Capture("nodejs-runtime", TriggerPCDriverListen)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestBootFreshIsExpensiveAndBig(t *testing.T) {
	st := mem.NewStore(0)
	env := &libos.CountingEnv{}
	boot, err := BootFresh(st, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if env.CPU < costs.UnikernelBoot+costs.InterpreterInit {
		t.Errorf("boot charged only %v", env.CPU)
	}
	// The runtime image is on the order of 100 MB (Table 1: 109.6 MB).
	foot := boot.FootprintBytes()
	if foot < 100<<20 || foot > 125<<20 {
		t.Errorf("boot footprint = %d MB", foot>>20)
	}
	if boot.State() != StateIdle {
		t.Errorf("state = %v", boot.State())
	}
}

func TestRuntimeSnapshotSizeMatchesPaper(t *testing.T) {
	// Table 1: 109.6 MB before AO, 114.5 MB after.
	noAO := initRuntimeSnapshot(t, mem.NewStore(0), false)
	withAO := initRuntimeSnapshot(t, mem.NewStore(0), true)
	mbNo := float64(noAO.DiffBytes()) / 1e6
	mbAO := float64(withAO.DiffBytes()) / 1e6
	if mbNo < 100 || mbNo > 120 {
		t.Errorf("runtime snapshot (no AO) = %.1f MB, want ≈109.6", mbNo)
	}
	growth := mbAO - mbNo
	if growth < 3 || growth > 7 {
		t.Errorf("AO grew base snapshot by %.1f MB, want ≈4.9", growth)
	}
}

func TestDeployAndInvokeNOP(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	env := &libos.CountingEnv{}
	u, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if u.From() != runtime {
		t.Error("deploy source wrong")
	}
	if u.Registers().PC != TriggerPCDriverListen {
		t.Errorf("resumed at %#x", u.Registers().PC)
	}
	if err := u.Guest().Connect(); err != nil {
		t.Fatal(err)
	}
	if err := u.Guest().ImportAndCompile(nopSource); err != nil {
		t.Fatal(err)
	}
	out, err := u.Guest().Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ok":true`) {
		t.Errorf("result = %q", out)
	}
}

func TestInvokeRealFunctionLogic(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	u, err := Deploy(runtime, nil, &libos.CountingEnv{})
	if err != nil {
		t.Fatal(err)
	}
	u.Guest().Connect()
	if err := u.Guest().ImportAndCompile(echoSource); err != nil {
		t.Fatal(err)
	}
	out, err := u.Guest().Invoke(`{"msg": "hi", "n": 21}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"echo":"hi"`) || !strings.Contains(out, `"n":42`) {
		t.Errorf("result = %q", out)
	}
}

func TestColdWarmHotPathsExerciseLessEachTime(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)

	// Cold: deploy from runtime snapshot, import, capture fn snapshot,
	// invoke.
	coldEnv := &libos.CountingEnv{}
	cold, err := Deploy(runtime, nil, coldEnv)
	if err != nil {
		t.Fatal(err)
	}
	cold.Guest().Connect()
	if err := cold.Guest().ImportAndCompile(nopSource); err != nil {
		t.Fatal(err)
	}
	fnSnap, err := cold.Capture("fn/nop", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	coldTime := coldEnv.Elapsed()

	// Warm: deploy from fn snapshot, connect, invoke.
	warmEnv := &libos.CountingEnv{}
	warm, err := Deploy(fnSnap, nil, warmEnv)
	if err != nil {
		t.Fatal(err)
	}
	warm.Guest().Connect()
	if !warm.Guest().Imported() {
		t.Fatal("fn snapshot lost imported function")
	}
	if _, err := warm.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	warmTime := warmEnv.Elapsed()

	// Hot: reuse the warm UC for a second invocation.
	hotStart := warmEnv.Elapsed()
	if _, err := warm.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	hotTime := warmEnv.Elapsed() - hotStart

	if !(coldTime > warmTime && warmTime > hotTime) {
		t.Errorf("cold %v, warm %v, hot %v: expected strict ordering", coldTime, warmTime, hotTime)
	}
	// Magnitudes: Table 1 reports 7.5 / 3.5 / 0.8 ms after AO.
	if coldTime < 4*time.Millisecond || coldTime > 14*time.Millisecond {
		t.Errorf("cold = %v, want ≈7.5ms", coldTime)
	}
	if warmTime < 1500*time.Microsecond || warmTime > 7*time.Millisecond {
		t.Errorf("warm = %v, want ≈3.5ms", warmTime)
	}
	if hotTime < 200*time.Microsecond || hotTime > 2500*time.Microsecond {
		t.Errorf("hot = %v, want ≈0.8ms", hotTime)
	}
}

func TestFunctionSnapshotIsSmallDiff(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	u, _ := Deploy(runtime, nil, &libos.CountingEnv{})
	u.Guest().Connect()
	u.Guest().ImportAndCompile(nopSource)
	fnSnap, err := u.Capture("fn/nop", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}
	mb := float64(fnSnap.DiffBytes()) / 1e6
	// Table 1: 2.0 MB after AO.
	if mb < 1 || mb > 4 {
		t.Errorf("fn snapshot = %.2f MB, want ≈2.0", mb)
	}
	if fnSnap.Base() != runtime {
		t.Error("fn snapshot not stacked on runtime snapshot")
	}
	if fnSnap.StackDepth() != 2 {
		t.Errorf("stack depth = %d", fnSnap.StackDepth())
	}
}

func TestAOShrinksFunctionSnapshot(t *testing.T) {
	// Table 1: NOP fn snapshot 4.8 MB without AO → 2.0 MB with.
	mkFnSnap := func(ao bool) *snapshot.Snapshot {
		st := mem.NewStore(0)
		runtime := initRuntimeSnapshot(t, st, ao)
		u, err := Deploy(runtime, nil, &libos.CountingEnv{})
		if err != nil {
			t.Fatal(err)
		}
		u.Guest().Connect()
		if err := u.Guest().ImportAndCompile(nopSource); err != nil {
			t.Fatal(err)
		}
		snap, err := u.Capture("fn", TriggerPCPostCompile)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	withAO := float64(mkFnSnap(true).DiffBytes()) / 1e6
	noAO := float64(mkFnSnap(false).DiffBytes()) / 1e6
	if noAO <= withAO {
		t.Fatalf("AO did not shrink fn snapshot: %.2f !> %.2f", noAO, withAO)
	}
	ratio := noAO / withAO
	if ratio < 1.7 || ratio > 3.5 {
		t.Errorf("AO shrink ratio = %.2f (%.2f → %.2f MB), paper ≈2.4x", ratio, noAO, withAO)
	}
}

func TestManyUCsFromOneSnapshotAreIsolated(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	counter := `var n = 0; function main(args) { n = n + 1; return {count: n}; }`

	mk := func() *UC {
		u, err := Deploy(runtime, nil, &libos.CountingEnv{})
		if err != nil {
			t.Fatal(err)
		}
		u.Guest().Connect()
		if err := u.Guest().ImportAndCompile(counter); err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk(), mk()
	a.Guest().Invoke(`{}`)
	a.Guest().Invoke(`{}`)
	out, _ := a.Guest().Invoke(`{}`)
	if !strings.Contains(out, `"count":3`) {
		t.Errorf("a count = %q", out)
	}
	outB, _ := b.Guest().Invoke(`{}`)
	if !strings.Contains(outB, `"count":1`) {
		t.Errorf("b saw a's state: %q", outB)
	}
}

func TestDriverStateSurvivesSnapshotDeploy(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	u, _ := Deploy(runtime, nil, &libos.CountingEnv{})
	u.Guest().Connect()
	u.Guest().ImportAndCompile(nopSource)
	u.Guest().Invoke(`{}`)
	u.Guest().Invoke(`{}`)
	fnSnap, err := u.Capture("fn", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}

	// A warm deployment resumes with the captured driver state: the
	// sequence number continues from the snapshot point.
	w, err := Deploy(fnSnap, nil, &libos.CountingEnv{})
	if err != nil {
		t.Fatal(err)
	}
	w.Guest().Connect()
	out, err := w.Guest().Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"seq":3`) {
		t.Errorf("driver state not carried in snapshot: %q", out)
	}
}

func TestDestroyReleasesMemory(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	frames0 := st.Stats().FramesInUse
	u, err := Deploy(runtime, nil, &libos.CountingEnv{})
	if err != nil {
		t.Fatal(err)
	}
	u.Guest().Connect()
	u.Guest().ImportAndCompile(nopSource)
	u.Guest().Invoke(`{}`)
	u.Destroy()
	if got := st.Stats().FramesInUse; got != frames0 {
		t.Errorf("leaked %d frames", got-frames0)
	}
	if u.State() != StateDestroyed {
		t.Error("state not destroyed")
	}
	// Idempotent.
	u.Destroy()
	if u.FootprintBytes() != 0 {
		t.Error("destroyed UC reports footprint")
	}
	if _, err := u.Capture("x", TriggerPCPostCompile); err != ErrDestroyed {
		t.Errorf("capture on destroyed = %v", err)
	}
	if runtime.ActiveUCs() != 0 {
		t.Errorf("runtime still has %d active UCs", runtime.ActiveUCs())
	}
}

func TestIdleUCFootprintSupportsDensity(t *testing.T) {
	// Table 3: 54,000 idle UCs in 88 GB → ≈1.6 MB marginal each.
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	u, err := Deploy(runtime, nil, &libos.CountingEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Guest().Connect(); err != nil {
		t.Fatal(err)
	}
	foot := u.FootprintBytes()
	mb := float64(foot) / 1e6
	if mb < 0.4 || mb > 2.5 {
		t.Errorf("idle UC footprint = %.2f MB, want ≈1.6", mb)
	}
}

func TestHypercallTrafficCounted(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	u, _ := Deploy(runtime, nil, &libos.CountingEnv{})
	u.Guest().Connect()
	u.Guest().ImportAndCompile(nopSource)
	u.Guest().Invoke(`{}`)
	if u.Hypercalls().Total() == 0 {
		t.Error("no hypercall crossings recorded")
	}
}

func TestDeployFromSnapshotWithoutPayloadFails(t *testing.T) {
	st := mem.NewStore(0)
	env := &libos.CountingEnv{}
	boot, _ := BootFresh(st, nil, env)
	// Capture directly through the snapshot package: no payload.
	bare, err := snapshot.Capture("bare", nil, boot.Space(), snapshot.Registers{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(bare, nil, env); err == nil {
		t.Error("deploy from payload-less snapshot succeeded")
	}
	if bare.ActiveUCs() != 0 {
		t.Error("failed deploy leaked UC reference")
	}
}

func TestStateStrings(t *testing.T) {
	if StateIdle.String() != "idle" || StateRunning.String() != "running" || StateDestroyed.String() != "destroyed" {
		t.Error("state names")
	}
}

func TestPayloadBinaryRoundTrip(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	u, err := Deploy(runtime, nil, &libos.CountingEnv{})
	if err != nil {
		t.Fatal(err)
	}
	u.Guest().Connect()
	u.Guest().ImportAndCompile(nopSource)
	snap, err := u.Capture("fn", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}
	pl := snap.Payload().(Payload)
	data, err := pl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePayload(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Interp.ImportedSource != pl.Interp.ImportedSource {
		t.Error("imported source lost")
	}
	if back.Libos.HeapBrk != pl.Libos.HeapBrk {
		t.Error("heap brk lost")
	}
	if len(back.Libos.Files) != len(pl.Libos.Files) {
		t.Error("ramdisk metadata lost")
	}
	if _, err := DecodePayload([]byte("garbage")); err == nil {
		t.Error("garbage payload decoded")
	}
}
