package uc

import (
	"testing"
	"time"

	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/snapshot"
)

// measureAO runs the full micro flow (system init with the given AO
// level → cold → warm → hot) and returns the three invocation
// latencies plus the snapshot sizes — the raw material of Tables 1 & 2.
func measureAO(t *testing.T, netAO, interpAO bool) (cold, warm, hot time.Duration, base, fn *snapshot.Snapshot) {
	t.Helper()
	st := mem.NewStore(0)
	env := &libos.CountingEnv{}
	boot, err := BootFresh(st, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if netAO {
		if err := boot.Guest().Unikernel().WarmNetwork(); err != nil {
			t.Fatal(err)
		}
	}
	if interpAO {
		if err := boot.Guest().WarmInterpreter(); err != nil {
			t.Fatal(err)
		}
	}
	base, err = boot.Capture("runtime", TriggerPCDriverListen)
	if err != nil {
		t.Fatal(err)
	}

	coldEnv := &libos.CountingEnv{}
	coldUC, err := Deploy(base, nil, coldEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := coldUC.Guest().Connect(); err != nil {
		t.Fatal(err)
	}
	if err := coldUC.Guest().ImportAndCompile(nopSource); err != nil {
		t.Fatal(err)
	}
	fn, err = coldUC.Capture("fn/nop", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coldUC.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	cold = coldEnv.Elapsed()

	warmEnv := &libos.CountingEnv{}
	warmUC, err := Deploy(fn, nil, warmEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := warmUC.Guest().Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := warmUC.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	warm = warmEnv.Elapsed()

	h0 := warmEnv.Elapsed()
	if _, err := warmUC.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	hot = warmEnv.Elapsed() - h0
	return cold, warm, hot, base, fn
}

// within checks v against a paper value with a relative tolerance.
func within(t *testing.T, name string, got time.Duration, paperMS float64, tol float64) {
	t.Helper()
	g := float64(got.Microseconds()) / 1000
	if g < paperMS*(1-tol) || g > paperMS*(1+tol) {
		t.Errorf("%s = %.2f ms, paper reports %.1f ms (tolerance ±%.0f%%)", name, g, paperMS, tol*100)
	}
}

// TestCalibrationTable2 verifies the AO ablation (Table 2) within 25%
// of the paper's values:
//
//	             No AO   Network AO   Network+Interp AO
//	Cold Start   42 ms   16.8 ms      7.5 ms
//	Warm Start   7.6 ms  5.5 ms       3.5 ms
func TestCalibrationTable2(t *testing.T) {
	coldNo, warmNo, _, _, _ := measureAO(t, false, false)
	coldNet, warmNet, _, _, _ := measureAO(t, true, false)
	coldAO, warmAO, hotAO, base, fn := measureAO(t, true, true)

	t.Logf("cold: %v / %v / %v (paper 42 / 16.8 / 7.5 ms)", coldNo, coldNet, coldAO)
	t.Logf("warm: %v / %v / %v (paper 7.6 / 5.5 / 3.5 ms)", warmNo, warmNet, warmAO)
	t.Logf("hot:  %v (paper 0.8 ms)", hotAO)
	t.Logf("base snapshot: %.1f MB (paper 114.5), fn snapshot: %.2f MB (paper 2.0)",
		float64(base.DiffBytes())/1e6, float64(fn.DiffBytes())/1e6)

	within(t, "cold/noAO", coldNo, 42.0, 0.25)
	within(t, "cold/netAO", coldNet, 16.8, 0.25)
	within(t, "cold/fullAO", coldAO, 7.5, 0.25)
	within(t, "warm/noAO", warmNo, 7.6, 0.25)
	within(t, "warm/netAO", warmNet, 5.5, 0.25)
	within(t, "warm/fullAO", warmAO, 3.5, 0.25)
	within(t, "hot/fullAO", hotAO, 0.8, 0.35)
}

// TestCalibrationTable1Memory verifies the snapshot-size half of
// Table 1 within 20%.
func TestCalibrationTable1Memory(t *testing.T) {
	_, _, _, baseNo, fnNo := measureAO(t, false, false)
	_, _, _, baseAO, fnAO := measureAO(t, true, true)

	checks := []struct {
		name    string
		gotMB   float64
		paperMB float64
	}{
		{"runtime snapshot (no AO)", float64(baseNo.DiffBytes()) / 1e6, 109.6},
		{"runtime snapshot (AO)", float64(baseAO.DiffBytes()) / 1e6, 114.5},
		{"fn snapshot (no AO)", float64(fnNo.DiffBytes()) / 1e6, 4.8},
		{"fn snapshot (AO)", float64(fnAO.DiffBytes()) / 1e6, 2.0},
	}
	for _, c := range checks {
		t.Logf("%s = %.2f MB (paper %.1f)", c.name, c.gotMB, c.paperMB)
		if c.gotMB < c.paperMB*0.8 || c.gotMB > c.paperMB*1.2 {
			t.Errorf("%s = %.2f MB, paper %.1f MB", c.name, c.gotMB, c.paperMB)
		}
	}
}
