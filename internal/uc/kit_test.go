package uc

import (
	"strings"
	"testing"

	"seuss/internal/hypercall"
	"seuss/internal/libos"
	"seuss/internal/mem"
)

// TestKitRecyclingRoundTrip: a destroy of a pristine UC parks a kit on
// the deploy source, and the next deploy takes it — producing a UC that
// is indistinguishable from a freshly rehydrated one.
func TestKitRecyclingRoundTrip(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	env := &libos.CountingEnv{}

	first, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	firstID := first.ID()
	first.Destroy()
	if got := runtime.CachedDeployKits(); got != 1 {
		t.Fatalf("CachedDeployKits = %d after pristine destroy, want 1", got)
	}

	second, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := runtime.CachedDeployKits(); got != 0 {
		t.Fatalf("CachedDeployKits = %d after redeploy, want 0", got)
	}
	if second.ID() == firstID {
		t.Error("recycled UC kept its old identity")
	}
	if second.State() != StateIdle {
		t.Errorf("recycled state = %v", second.State())
	}
	if second.From() != runtime {
		t.Error("recycled deploy source wrong")
	}
	// Exactly one crossing: the accounting was reset on recycle, then the
	// redeploy's uniqueness re-draw crossed once for its entropy.
	if second.Hypercalls().Total() != 1 {
		t.Errorf("recycled UC has %d hypercall crossings, want 1 (the entropy re-draw)", second.Hypercalls().Total())
	}
	if second.Hypercalls().Counts()[hypercall.NumEntropy] != 1 {
		t.Error("the recycled UC's single crossing is not the entropy draw")
	}

	// The recycled UC must work end to end.
	if err := second.Guest().Connect(); err != nil {
		t.Fatal(err)
	}
	if err := second.Guest().ImportAndCompile(nopSource); err != nil {
		t.Fatal(err)
	}
	out, err := second.Guest().Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	// seq 1: the driver counter was reset to the payload's value.
	if !strings.Contains(out, `"seq":1`) {
		t.Errorf("recycled driver counter leaked: %q", out)
	}
	second.Destroy()
}

// TestKitNotRecycledAfterExecution: any interpreter activity (import,
// invoke, status query) spoils pristineness, so the kit is dropped.
func TestKitNotRecycledAfterExecution(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	env := &libos.CountingEnv{}

	u, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	u.Guest().Connect()
	if err := u.Guest().ImportAndCompile(nopSource); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Guest().Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	u.Destroy()
	if got := runtime.CachedDeployKits(); got != 0 {
		t.Fatalf("CachedDeployKits = %d after invoked destroy, want 0", got)
	}

	// Connect alone does NOT spoil pristineness: connection state lives
	// in libos and rehydration resets it.
	v, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	v.Guest().Connect()
	v.Destroy()
	if got := runtime.CachedDeployKits(); got != 1 {
		t.Fatalf("CachedDeployKits = %d after connect-only destroy, want 1", got)
	}
}

// TestKitRecycledDeployEquivalence: a recycled-kit deploy behaves like
// a fresh deploy in both directions that matter. By default the two
// clones DIVERGE — each deploy drew its own entropy and generation, so
// neither replays the other's Math.random stream (restore-time
// uniqueness, DESIGN.md §14). With the reseed pinned to one (draw,
// generation) pair, they are byte-identical — per-clone replay
// determinism survives the uniqueness layer.
func TestKitRecycledDeployEquivalence(t *testing.T) {
	const randSource = `
function main(args) {
	var a = Math.random();
	var b = Math.random();
	return {a: a, b: b, sum: args.x + 1};
}
`
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	env := &libos.CountingEnv{}

	// Build a function snapshot so the payload carries imported source.
	builder, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	builder.Guest().Connect()
	if err := builder.Guest().ImportAndCompile(randSource); err != nil {
		t.Fatal(err)
	}
	fnSnap, err := builder.Capture("fn/rand", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}
	builder.Destroy()

	invoke := func(u *UC) string {
		t.Helper()
		if err := u.Guest().Connect(); err != nil {
			t.Fatal(err)
		}
		out, err := u.Guest().Invoke(`{"x": 41}`)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	fresh, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	want := invoke(fresh)
	fresh.Destroy() // invoked → not pristine, no kit

	// Park a pristine kit, then deploy through it.
	idle, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	idle.Destroy()
	if fnSnap.CachedDeployKits() != 1 {
		t.Fatal("no kit parked")
	}
	recycled, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := invoke(recycled); got == want {
		t.Errorf("recycled clone replayed the fresh clone's RNG stream: %s", got)
	}
	recycled.Destroy()

	// Pinned reseed: the same (draw, generation) pair replays the same
	// stream on both the fresh and the recycled path.
	pin := func(u *UC) string {
		u.Guest().Reseed(0xD0A7, 7)
		return invoke(u)
	}
	a, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	pinnedWant := pin(a)
	a.Destroy()
	b, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	b.Destroy() // pristine → parks a kit
	if fnSnap.CachedDeployKits() != 1 {
		t.Fatal("no kit parked for the pinned pass")
	}
	c, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Recycled() {
		t.Fatal("pinned pass did not exercise the kit path")
	}
	if got := pin(c); got != pinnedWant {
		t.Errorf("pinned reseed not deterministic:\nfresh:    %s\nrecycled: %s", pinnedWant, got)
	}
	c.Destroy()
}

// TestKitDeployFootprintStable: recycling must not leak frames — the
// store's in-use accounting returns to baseline across deploy/destroy
// cycles through the kit path.
func TestKitDeployFootprintStable(t *testing.T) {
	st := mem.NewStore(0)
	runtime := initRuntimeSnapshot(t, st, true)
	env := &libos.CountingEnv{}

	// Prime the kit cache and every pool.
	u, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	u.Destroy()
	base := st.Stats().FramesInUse
	for i := 0; i < 20; i++ {
		u, err := Deploy(runtime, nil, env)
		if err != nil {
			t.Fatal(err)
		}
		u.Destroy()
	}
	if got := st.Stats().FramesInUse; got != base {
		t.Errorf("frame accounting drifted over kit cycles: %d -> %d", base, got)
	}
}
