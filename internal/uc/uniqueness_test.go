package uc

import (
	"testing"

	"seuss/internal/hypercall"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/snapshot"
)

// randSource surfaces the guest RNG stream in the invocation result —
// the observable the divergence tests compare.
const randSource = `
function main(args) {
	return {a: Math.random(), b: Math.random()};
}
`

// buildRandSnapshot captures a function snapshot of randSource layered
// on a fresh runtime image.
func buildRandSnapshot(t *testing.T, st *mem.Store) *snapshot.Snapshot {
	t.Helper()
	runtime := initRuntimeSnapshot(t, st, true)
	env := &libos.CountingEnv{}
	builder, err := Deploy(runtime, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	builder.Guest().Connect()
	if err := builder.Guest().ImportAndCompile(randSource); err != nil {
		t.Fatal(err)
	}
	fnSnap, err := builder.Capture("fn/rand", TriggerPCPostCompile)
	if err != nil {
		t.Fatal(err)
	}
	builder.Destroy()
	return fnSnap
}

func invokeRand(t *testing.T, u *UC) string {
	t.Helper()
	if err := u.Guest().Connect(); err != nil {
		t.Fatal(err)
	}
	out, err := u.Guest().Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClonesDivergeEntropy: two clones deployed from one byte-identical
// snapshot draw distinct RNG streams and distinct identities — the
// tentpole guarantee of DESIGN.md §14. Both deploys here use nil hosts
// whose stubs start at the identical entropy state, so the test also
// proves divergence survives a degenerate entropy source (the deploy
// generation alone carries it).
func TestClonesDivergeEntropy(t *testing.T) {
	st := mem.NewStore(0)
	fnSnap := buildRandSnapshot(t, st)
	env := &libos.CountingEnv{}

	a, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() {
		t.Error("clones share a UC id")
	}
	ga := a.Guest().Unikernel().DeployGeneration()
	gb := b.Guest().Unikernel().DeployGeneration()
	if ga == 0 || gb == 0 {
		t.Fatalf("deploy generations not injected: %d, %d", ga, gb)
	}
	if ga == gb {
		t.Error("clones share a deploy generation")
	}
	outA, outB := invokeRand(t, a), invokeRand(t, b)
	if outA == outB {
		t.Errorf("clones replayed the same RNG stream: %s", outA)
	}
	a.Destroy()
	b.Destroy()
}

// TestBootUCsDivergeEntropy: even the once-per-interpreter fresh boots
// draw their seeds from host entropy plus a generation — never the old
// compile-time constant every node used to share.
func TestBootUCsDivergeEntropy(t *testing.T) {
	env := &libos.CountingEnv{}
	mkOut := func() string {
		u, err := BootFresh(mem.NewStore(0), nil, env)
		if err != nil {
			t.Fatal(err)
		}
		u.Guest().Connect()
		if err := u.Guest().ImportAndCompile(randSource); err != nil {
			t.Fatal(err)
		}
		out, err := u.Guest().Invoke(`{}`)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := mkOut(), mkOut(); a == b {
		t.Errorf("two fresh boots replayed the same RNG stream: %s", a)
	}
}

// TestPinnedReseedDeterministic: replay determinism survives the
// uniqueness layer — pinning the same (draw, generation) pair onto two
// different clones reproduces the identical guest trace.
func TestPinnedReseedDeterministic(t *testing.T) {
	st := mem.NewStore(0)
	fnSnap := buildRandSnapshot(t, st)
	env := &libos.CountingEnv{}

	run := func() string {
		u, err := Deploy(fnSnap, nil, env)
		if err != nil {
			t.Fatal(err)
		}
		u.Guest().Reseed(0xFEED, 3)
		out := invokeRand(t, u)
		u.Destroy()
		return out
	}
	if a, b := run(), run(); a != b {
		t.Errorf("pinned (draw, gen) did not replay:\n%s\n%s", a, b)
	}
}

// TestDeployDrawsEntropyHypercall: every snapshot deploy crosses the
// entropy hypercall exactly once — the uniqueness layer is on the path,
// and it stays one crossing (the §5 narrowness budget).
func TestDeployDrawsEntropyHypercall(t *testing.T) {
	st := mem.NewStore(0)
	fnSnap := buildRandSnapshot(t, st)
	env := &libos.CountingEnv{}
	u, err := Deploy(fnSnap, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Destroy()
	if got := u.Hypercalls().Counts()[hypercall.NumEntropy]; got != 1 {
		t.Errorf("deploy crossed entropy %d times, want 1", got)
	}
}
