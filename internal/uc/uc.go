// Package uc implements unikernel contexts (§3): the unit of deployment
// for individually isolated function executions.
//
// A UC couples an address space (hardware state: page tables, frames,
// registers) with the guest software stack (libos + interpreter). UCs
// come into existence two ways, mirroring the paper:
//
//   - BootFresh: the once-per-interpreter system initialization — boot
//     the unikernel, load the interpreter, start the invocation driver.
//     Slow by design; it happens before the runtime snapshot.
//   - Deploy: create a UC from a snapshot — a shallow page-table copy
//     plus register restore, the fast path every invocation uses.
//
// Capture plays the role of the prototype's debug-register trigger: it
// freezes the UC's instantaneous state into a new snapshot layered on
// the UC's deploy source, and the UC continues transparently.
package uc

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"seuss/internal/costs"
	"seuss/internal/entropy"
	"seuss/internal/hypercall"
	"seuss/internal/interp"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/pagetable"
	"seuss/internal/snapshot"
	"time"
)

// Synthesized trigger addresses: the simulation's stand-ins for "the
// exact instruction within the unikernel where the snapshot is
// captured" (§6). Distinct per trigger point so tests can assert which
// path a deployment resumes on.
const (
	// TriggerPCDriverListen is the runtime-snapshot trigger: the driver
	// has started and sits in its accept loop.
	TriggerPCDriverListen = uint64(0x0000_0000_0040_1a40)
	// TriggerPCPostCompile is the function-snapshot trigger: source
	// imported and compiled, about to read run arguments.
	TriggerPCPostCompile = uint64(0x0000_0000_0040_2b80)
)

// Payload is the guest metadata a snapshot carries (see
// snapshot.SetPayload).
type Payload struct {
	Libos  libos.State
	Interp interp.State
}

// State is a UC's lifecycle state.
type State int

// Lifecycle states.
const (
	StateIdle State = iota
	StateRunning
	StateDestroyed
)

var stateNames = [...]string{"idle", "running", "destroyed"}

// String implements fmt.Stringer.
func (s State) String() string { return stateNames[s] }

// ErrDestroyed is returned for operations on a destroyed UC.
var ErrDestroyed = errors.New("uc: destroyed")

// UC is one unikernel context.
type UC struct {
	id    uint64
	space *pagetable.AddressSpace
	from  *snapshot.Snapshot // deploy source; nil for fresh boots
	guest *interp.Runtime
	host  *hypercall.Counter
	env   libos.Env
	state State
	regs  snapshot.Registers
	// recycled marks a UC whose last deploy rebound a retired deploy
	// kit instead of rehydrating from scratch (the deploy-kit cache
	// hit/miss signal for metrics).
	recycled bool
	// meta holds the kernel-side frames backing the UC descriptor,
	// event-context stacks, and proxy mappings.
	meta []*mem.Frame
	// stub is the fallback hypercall host created when a caller passed
	// nil, remembered so kit recycling does not rebuild it per deploy.
	stub hypercall.Host
}

// allocMeta reserves the kernel-side frames for a live UC.
func (u *UC) allocMeta(st *mem.Store) error {
	n := int(costs.UCKernelMetaBytes / mem.PageSize)
	for i := 0; i < n; i++ {
		f, err := st.Alloc()
		if err != nil {
			u.freeMeta(st)
			return err
		}
		u.meta = append(u.meta, f)
	}
	return nil
}

func (u *UC) freeMeta(st *mem.Store) {
	for _, f := range u.meta {
		st.DecRef(f)
	}
	// Keep the slice's capacity: a recycled kit refills it on redeploy.
	u.meta = u.meta[:0]
}

// nextID is process-global so UC identifiers stay unique across the
// shards of a node pool; shards deploy UCs concurrently from their own
// goroutines, hence the atomic.
var nextID atomic.Uint64

// deployGen counts deployments process-wide. Every path that hands a UC
// to a caller — fresh boot, snapshot deploy, kit redeploy — draws a new
// generation and mixes it with a host entropy draw into the guest's RNG
// seed (DESIGN.md §14): clones deployed from one byte-identical
// snapshot must diverge, and the generation makes the divergence
// unconditional even if the host's entropy source is weak.
var deployGen atomic.Uint64

func init() {
	// Fold a boot-time generation into the id counter so UC ids (and the
	// request ids derived from them) do not collide across process
	// restarts sharing a snapshot directory.
	nextID.Store(entropy.IDBase())
}

// reseed draws host entropy and a fresh deploy generation into the
// guest, making this incarnation's RNG stream unique. Shared by every
// deploy path; pure arithmetic plus one hypercall crossing.
func (u *UC) reseed(uk *libos.Unikernel, rt *interp.Runtime) {
	gen := deployGen.Add(1)
	uk.SetDeployGeneration(gen)
	rt.Reseed(uk.DrawEntropy(), gen)
}

// BootFresh builds a UC from nothing with the default (Node.js)
// interpreter profile. See BootFreshProfile.
func BootFresh(st *mem.Store, host hypercall.Host, env libos.Env) (*UC, error) {
	return BootFreshProfile(st, host, env, interp.NodeJS)
}

// BootFreshProfile builds a UC from nothing: boot the unikernel, load
// the given interpreter, start the invocation driver. Used once per
// supported interpreter during system initialization (§4: one runtime
// snapshot per interpreter).
func BootFreshProfile(st *mem.Store, host hypercall.Host, env libos.Env, prof interp.Profile) (*UC, error) {
	space, err := pagetable.New(st)
	if err != nil {
		return nil, fmt.Errorf("uc: boot: %w", err)
	}
	u := &UC{
		id:    nextID.Add(1),
		space: space,
		env:   env,
		host:  hypercall.NewCounter(hostOrStub(host), costs.Hypercall, env),
		state: StateRunning,
	}
	if err := u.allocMeta(st); err != nil {
		space.Release()
		return nil, err
	}
	uk := libos.New(space, u.host, env)
	if err := uk.Boot(); err != nil {
		space.Release()
		return nil, err
	}
	rt := interp.NewRuntimeWithProfile(uk, prof)
	if err := rt.InitInterpreter(); err != nil {
		space.Release()
		return nil, err
	}
	if err := rt.StartDriver(); err != nil {
		space.Release()
		return nil, err
	}
	u.reseed(uk, rt)
	u.guest = rt
	u.regs = snapshot.Registers{PC: TriggerPCDriverListen, SP: libos.StackTop - 4096}
	u.state = StateIdle
	return u, nil
}

// Deploy creates a UC from a snapshot: the shallow page-table copy,
// core mapping, TLB flush, and register restore of §6, followed by
// rehydration of the guest stack from the snapshot's payload.
//
// When the snapshot holds a retired deploy kit — a UC destroyed while
// its interpreter state still equaled the payload — the guest stack is
// rebound instead of rebuilt, skipping the Go-level rehydration replay
// entirely. On real hardware that replay does not exist (the state
// arrives inside the memory image), so the fast path is also the more
// faithful one.
func Deploy(snap *snapshot.Snapshot, host hypercall.Host, env libos.Env) (*UC, error) {
	u, _, err := DeployPrefetched(snap, host, env, nil)
	return u, err
}

// DeployPrefetched is Deploy with a working-set replay: before the
// resumed guest executes its first instruction, every page in ws (the
// lineage's recorded working set, page-base VAs sorted ascending) is
// bulk-mapped privately writable in one batched page-table walk —
// turning the serial first-touch fault storm of a lukewarm restore
// into a single prefetch charged at the batched rate (DESIGN.md §13).
// Returns the UC and how many pages were prefetched. A nil or empty ws
// is exactly Deploy.
func DeployPrefetched(snap *snapshot.Snapshot, host hypercall.Host, env libos.Env, ws []uint64) (*UC, int, error) {
	env.ChargeCPU(costs.UCDeploy)
	space, regs, err := snap.Deploy()
	if err != nil {
		return nil, 0, err
	}
	payload, ok := snap.Payload().(Payload)
	if !ok {
		space.Release()
		snap.ReleaseUC()
		return nil, 0, fmt.Errorf("uc: snapshot %q has no guest payload", snap.Name())
	}
	prefetched := 0
	if len(ws) > 0 {
		// Replay before Resume: the resume-time rewrite of runtime
		// bookkeeping is the bulk of the storm being skipped. A replay
		// failure only loses the optimization — the on-demand path
		// still resolves every page.
		if n, perr := space.PrefetchWritable(ws); perr == nil {
			prefetched = n
			env.ChargeCPU(costs.WSPrefetchBase + time.Duration(n)*costs.WSPrefetchPerPage)
		}
	}
	if kit, _ := snap.TakeDeployKit().(*UC); kit != nil {
		if err := kit.redeploy(snap, space, regs, payload, host, env); err != nil {
			space.Release()
			snap.ReleaseUC()
			return nil, 0, err
		}
		return kit, prefetched, nil
	}
	inner := hostOrStub(host)
	u := &UC{
		id:    nextID.Add(1),
		space: space,
		from:  snap,
		env:   env,
		host:  hypercall.NewCounter(inner, costs.Hypercall, env),
		regs:  regs,
		state: StateIdle,
	}
	if host == nil {
		u.stub = inner
	}
	if err := u.allocMeta(space.Backing()); err != nil {
		space.Release()
		snap.ReleaseUC()
		return nil, 0, err
	}
	uk := libos.New(space, u.host, env)
	uk.Rehydrate(payload.Libos)
	rt, err := interp.RestoreFromState(uk, payload.Interp, snap.DiffPages())
	if err != nil {
		u.freeMeta(space.Backing())
		space.Release()
		snap.ReleaseUC()
		return nil, 0, err
	}
	// Re-draw uniqueness before the guest's first instruction: every
	// clone of this snapshot restored the same staleSeed.
	u.reseed(uk, rt)
	// The resumed guest immediately rewrites its runtime bookkeeping
	// (stacks, timers, socket rebind) — real post-resume work, charged.
	if err := uk.Resume(); err != nil {
		u.freeMeta(space.Backing())
		space.Release()
		snap.ReleaseUC()
		return nil, 0, err
	}
	u.guest = rt
	return u, prefetched, nil
}

// redeploy rebinds a retired deploy kit to a fresh deployment: new
// address space, new environment, clean hypercall accounting, guest
// metadata reset from the payload. The interpreter replay is skipped —
// the kit was only cached because its interpreter state still equals
// the payload. Runs allocation-free in steady state.
func (u *UC) redeploy(snap *snapshot.Snapshot, space *pagetable.AddressSpace, regs snapshot.Registers, payload Payload, host hypercall.Host, env libos.Env) error {
	u.id = nextID.Add(1)
	u.space = space
	u.from = snap
	u.env = env
	u.regs = regs
	u.state = StateIdle
	u.recycled = true
	inner := host
	if inner == nil {
		if u.stub == nil {
			u.stub = hypercall.NewStubHost()
		}
		inner = u.stub
	}
	u.host.Reset(inner, env)
	if err := u.allocMeta(space.Backing()); err != nil {
		u.state = StateDestroyed
		return err
	}
	uk := u.guest.Unikernel()
	uk.Reattach(space, u.host, env)
	uk.Rehydrate(payload.Libos)
	u.guest.ResetForRedeploy(payload.Interp, snap.DiffPages())
	// A recycled kit shares its guest stack across incarnations — without
	// a re-draw, every redeploy would replay the previous clone's stream.
	u.reseed(uk, u.guest)
	if err := uk.Resume(); err != nil {
		u.freeMeta(space.Backing())
		u.state = StateDestroyed
		return err
	}
	return nil
}

func hostOrStub(h hypercall.Host) hypercall.Host {
	if h == nil {
		return hypercall.NewStubHost()
	}
	return h
}

// ID returns the UC's unique identifier.
func (u *UC) ID() uint64 { return u.id }

// Recycled reports whether this UC's most recent deploy rebound a
// retired deploy kit (skipping rehydration) rather than building the
// guest from the snapshot payload.
func (u *UC) Recycled() bool { return u.recycled }

// Space returns the UC's address space.
func (u *UC) Space() *pagetable.AddressSpace { return u.space }

// Guest returns the runtime inside the UC.
func (u *UC) Guest() *interp.Runtime { return u.guest }

// From returns the snapshot this UC was deployed from (nil for fresh
// boots).
func (u *UC) From() *snapshot.Snapshot { return u.from }

// State returns the lifecycle state.
func (u *UC) State() State { return u.state }

// SetRunning marks the UC as hosting a live invocation.
func (u *UC) SetRunning() { u.state = StateRunning }

// SetIdle marks the UC as cached and reusable (hot-path candidate).
func (u *UC) SetIdle() { u.state = StateIdle }

// Registers returns the UC's current (simulated) register file.
func (u *UC) Registers() snapshot.Registers { return u.regs }

// Hypercalls returns the UC's hypercall crossing counter.
func (u *UC) Hypercalls() *hypercall.Counter { return u.host }

// Capture freezes the UC's instantaneous state into a snapshot named
// name, layered on the UC's deploy source. The UC continues running
// transparently afterwards (its pages become CoW). triggerPC records
// where execution resumes for deployments of the new snapshot.
func (u *UC) Capture(name string, triggerPC uint64) (*snapshot.Snapshot, error) {
	if u.state == StateDestroyed {
		return nil, ErrDestroyed
	}
	dirty := u.space.DirtyCount()
	u.env.ChargeCPU(costs.SnapshotBase + time.Duration(dirty)*costs.SnapshotPerPage)
	regs := u.regs
	regs.PC = triggerPC
	regs.GPR[0] = u.guest.Unikernel().HeapBrk()
	snap, err := snapshot.Capture(name, u.from, u.space, regs)
	if err != nil {
		return nil, err
	}
	snap.SetPayload(Payload{
		Libos:  u.guest.Unikernel().State(),
		Interp: u.guest.State(),
	})
	return snap, nil
}

// Destroy tears the UC down, releasing its address space and its
// reference on the deploy source.
//
// If the guest never ran anything since rehydration — its interpreter
// state still equals the deploy source's payload — the UC retires into
// the snapshot's deploy-kit cache instead of being dropped for the GC,
// and the next Deploy from that snapshot rebinds it allocation-free.
func (u *UC) Destroy() {
	if u.state == StateDestroyed {
		return
	}
	u.env.ChargeCPU(costs.UCDestroy)
	u.freeMeta(u.space.Backing())
	u.space.Release()
	from := u.from
	if from != nil {
		from.ReleaseUC()
	}
	u.state = StateDestroyed
	if from != nil && u.guest != nil && u.guest.Pristine() {
		// Drop references that must not outlive this incarnation; the
		// kit keeps only the guest stack and its own recycled storage.
		u.space = nil
		u.from = nil
		u.env = nil
		from.CacheDeployKit(u)
	}
}

// FootprintBytes returns the UC's private memory cost: pages its faults
// created plus its private page-table nodes — the marginal cost of
// caching this UC (Table 3's density denominator).
func (u *UC) FootprintBytes() int64 {
	if u.state == StateDestroyed {
		return 0
	}
	return u.space.FootprintBytes() + int64(len(u.meta))*mem.PageSize
}

// wirePayload is Payload's serialized shape. The libos ramdisk maps are
// flattened into path-sorted slices because gob iterates maps in random
// order: the content-addressed snapshot tier keys entries by the hash
// of the encoded image, so two marshals of the same payload must be
// byte-identical.
type wirePayload struct {
	Libos     libos.State
	Interp    interp.State
	FilePaths []string
	FileSizes []int64
	AddrPaths []string
	Addrs     []uint64
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
