package uc

// Hand-rolled payload wire format ("SEUP"). The gob encoding this
// replaces cost ~30 µs to decode — a third of the whole lukewarm
// restore — because gob re-transmits type descriptors and reflects on
// every field. The payload's shape is small and fixed, so a direct
// little-endian layout decodes in well under a microsecond:
//
//	magic    [4]byte "SEUP"
//	version  uint16
//	heapBrk  uint64
//	lflags   uint8   (bit 0 NetWarm, 1 NetAO, 2 Booted)
//	iflags   uint8   (bit 0 InterpWarm, 1 InterpAO, 2 DriverStarted)
//	runtime  uint16-prefixed string
//	source   uint32-prefixed string (the imported user function)
//	requests uint64
//	diffPgs  uint64
//	nfiles   uint32; nfiles * { path uint16-str, size uint64 }
//	naddrs   uint32; naddrs * { path uint16-str, addr uint64 }
//
// The ramdisk maps are flattened in sorted path order, keeping the
// old determinism contract: identical payloads marshal to identical
// bytes, which the content-addressed snapshot tier (and the
// working-set sidecar keyed off the same digest) depends on. Decoding
// still accepts the old gob format, so snapshots persisted by earlier
// builds promote unchanged.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

const payloadMagic = "SEUP"
const payloadVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler so the snapshot
// codec can ship guest metadata alongside the page diff (on real
// hardware this state lives inside the pages). The encoding is
// deterministic: identical payloads marshal to identical bytes.
func (pl Payload) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64+len(pl.Interp.ImportedSource))
	buf = append(buf, payloadMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, payloadVersion)
	buf = binary.LittleEndian.AppendUint64(buf, pl.Libos.HeapBrk)
	buf = append(buf, packBits(pl.Libos.NetWarm, pl.Libos.NetAO, pl.Libos.Booted))
	buf = append(buf, packBits(pl.Interp.InterpWarm, pl.Interp.InterpAO, pl.Interp.DriverStarted))
	var err error
	if buf, err = appendString16(buf, pl.Interp.Runtime); err != nil {
		return nil, err
	}
	if len(pl.Interp.ImportedSource) > 1<<30 {
		return nil, fmt.Errorf("uc: payload: source too large")
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pl.Interp.ImportedSource)))
	buf = append(buf, pl.Interp.ImportedSource...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pl.Interp.Requests))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pl.Interp.DeployedDiffPages))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pl.Libos.Files)))
	for _, path := range sortedKeys(pl.Libos.Files) {
		if buf, err = appendString16(buf, path); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pl.Libos.Files[path]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pl.Libos.FileAddrs)))
	for _, path := range sortedKeys(pl.Libos.FileAddrs) {
		if buf, err = appendString16(buf, path); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, pl.Libos.FileAddrs[path])
	}
	return buf, nil
}

func packBits(bits ...bool) byte {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << i
		}
	}
	return b
}

func appendString16(buf []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return nil, fmt.Errorf("uc: payload: string too large")
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// payloadCursor is a bounds-checked reader over the encoded payload;
// errors are sticky, mirroring the snapshot codec's import cursor.
type payloadCursor struct {
	b   []byte
	off int
	bad bool
}

func (c *payloadCursor) take(n int) []byte {
	if c.bad || n < 0 || len(c.b)-c.off < n {
		c.bad = true
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *payloadCursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *payloadCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *payloadCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *payloadCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *payloadCursor) str16() string { return string(c.take(int(c.u16()))) }

// DecodePayload reverses Payload.MarshalBinary. Bytes that do not
// start with the "SEUP" magic fall back to the legacy gob decoder, so
// images persisted by earlier builds (snapstore entries, fabric
// transfers in flight) keep promoting.
func DecodePayload(data []byte) (Payload, error) {
	if len(data) < 4 || string(data[:4]) != payloadMagic {
		return decodePayloadGob(data)
	}
	cur := &payloadCursor{b: data, off: 4}
	if v := cur.u16(); v != payloadVersion {
		return Payload{}, fmt.Errorf("uc: payload: unsupported version %d", v)
	}
	var pl Payload
	pl.Libos.HeapBrk = cur.u64()
	lf := cur.u8()
	pl.Libos.NetWarm, pl.Libos.NetAO, pl.Libos.Booted = lf&1 != 0, lf&2 != 0, lf&4 != 0
	inf := cur.u8()
	pl.Interp.InterpWarm, pl.Interp.InterpAO, pl.Interp.DriverStarted = inf&1 != 0, inf&2 != 0, inf&4 != 0
	pl.Interp.Runtime = cur.str16()
	pl.Interp.ImportedSource = string(cur.take(int(cur.u32())))
	pl.Interp.Requests = int(cur.u64())
	pl.Interp.DeployedDiffPages = int(cur.u64())
	nfiles := cur.u32()
	if cur.bad || int64(nfiles)*10 > int64(len(data)-cur.off) {
		return Payload{}, fmt.Errorf("uc: payload: truncated")
	}
	if nfiles > 0 {
		pl.Libos.Files = make(map[string]int64, nfiles)
		for i := uint32(0); i < nfiles; i++ {
			path := cur.str16()
			pl.Libos.Files[path] = int64(cur.u64())
		}
	}
	naddrs := cur.u32()
	if cur.bad || int64(naddrs)*10 > int64(len(data)-cur.off) {
		return Payload{}, fmt.Errorf("uc: payload: truncated")
	}
	if naddrs > 0 {
		pl.Libos.FileAddrs = make(map[string]uint64, naddrs)
		for i := uint32(0); i < naddrs; i++ {
			path := cur.str16()
			pl.Libos.FileAddrs[path] = cur.u64()
		}
	}
	if cur.bad {
		return Payload{}, fmt.Errorf("uc: payload: truncated")
	}
	if cur.off != len(data) {
		return Payload{}, fmt.Errorf("uc: payload: %d trailing bytes", len(data)-cur.off)
	}
	return pl, nil
}

// decodePayloadGob is the legacy decoder for pre-"SEUP" images.
func decodePayloadGob(data []byte) (Payload, error) {
	var w wirePayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return Payload{}, err
	}
	if len(w.FilePaths) != len(w.FileSizes) || len(w.AddrPaths) != len(w.Addrs) {
		return Payload{}, fmt.Errorf("uc: payload: mismatched ramdisk tables")
	}
	pl := Payload{Libos: w.Libos, Interp: w.Interp}
	if len(w.FilePaths) > 0 {
		pl.Libos.Files = make(map[string]int64, len(w.FilePaths))
		for i, path := range w.FilePaths {
			pl.Libos.Files[path] = w.FileSizes[i]
		}
	}
	if len(w.AddrPaths) > 0 {
		pl.Libos.FileAddrs = make(map[string]uint64, len(w.AddrPaths))
		for i, path := range w.AddrPaths {
			pl.Libos.FileAddrs[path] = w.Addrs[i]
		}
	}
	return pl, nil
}
