package sim

// Queue is an unbounded FIFO connecting simulated processes: the work
// queue the benchmark's worker threads pull from, the message bus
// topics, the per-core run queues of the SEUSS node. Get blocks (in
// virtual time) until an item is available.
type Queue struct {
	eng     *Engine
	items   []interface{}
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue(e *Engine) *Queue { return &Queue{eng: e} }

// Put appends an item and wakes one waiter, if any. Put never blocks.
// Putting to a closed queue panics: it indicates a protocol bug.
func (q *Queue) Put(v interface{}) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// PutFront prepends an item (used for requeueing work that must retain
// priority) and wakes one waiter.
func (q *Queue) PutFront(v interface{}) {
	if q.closed {
		panic("sim: PutFront on closed queue")
	}
	q.items = append([]interface{}{v}, q.items...)
	q.wakeOne()
}

func (q *Queue) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	w.unpark()
}

// Get removes and returns the head item, blocking the process until one
// is available. The second result is false if the queue was closed and
// drained.
func (q *Queue) Get(p *Proc) (interface{}, bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryGet removes and returns the head item without blocking. ok is
// false if the queue is empty.
func (q *Queue) TryGet() (v interface{}, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Close marks the queue closed and wakes all waiters, which will
// observe ok=false once the queue drains.
func (q *Queue) Close() {
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		w.unpark()
	}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }
