package sim

import "fmt"

// Proc is a simulated process (the paper's "worker thread", a container
// creation in flight, a UC executing a function…). A Proc is backed by a
// goroutine with strict hand-off to the engine: exactly one Proc — or
// the engine itself — runs at any moment, which keeps the simulation
// deterministic.
//
// Inside a process function, blocking operations (Sleep, Queue.Get,
// Resource.Acquire) suspend the process in virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	dead   bool
	// dispatchFn is the dispatch method value, bound once at spawn so
	// Sleep and unpark — the two hottest scheduling sites — do not
	// allocate a fresh closure per suspension.
	dispatchFn func()
}

// Go spawns a new simulated process running fn. The process starts at
// the current virtual instant (as a scheduled event, so it does not run
// until the engine reaches it). name is used in diagnostics only.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.dispatchFn = p.dispatch
	e.procs++
	e.After(0, func() {
		go func() {
			<-p.resume
			defer func() {
				p.dead = true
				p.eng.procs--
				p.yield <- struct{}{}
			}()
			fn(p)
		}()
		p.dispatch()
	})
}

// dispatch hands control to the process goroutine and waits for it to
// yield back (by blocking or finishing). Dispatching a process that has
// already finished is a scheduling bug (it would deadlock the engine),
// so it panics loudly instead.
func (p *Proc) dispatch() {
	if p.dead {
		panic("sim: dispatch of dead process " + p.name)
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park suspends the process until something calls unpark. It must be
// called from inside the process goroutine.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// unpark schedules the process to continue at the current virtual
// instant. It must be called from engine context (an event callback or
// another process's wake path routed through the engine).
func (p *Proc) unpark() {
	if p.dead {
		panic("sim: unpark of dead process " + p.name)
	}
	p.eng.After(0, p.dispatchFn)
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name of the process.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d of virtual time. Negative durations
// are treated as zero (the process still yields, giving other
// same-instant events a chance to run).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.At(p.eng.now.Add(d), p.dispatchFn)
	p.yield <- struct{}{}
	<-p.resume
}

// Yield gives up the processor for the current instant, allowing other
// events scheduled at the same virtual time to run first.
func (p *Proc) Yield() { p.Sleep(0) }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Signal is a broadcast wakeup point: processes Wait on it, and a later
// Broadcast wakes all current waiters. It is the simulation analogue of
// a condition variable with an external lock implied by the engine's
// single-threaded execution.
type Signal struct {
	eng     *Engine
	waiters []*signalWaiter
}

type signalWaiter struct {
	p        *Proc
	signaled bool
	woken    bool
}

// NewSignal returns a Signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait suspends the process until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, &signalWaiter{p: p})
	p.park()
}

// WaitTimeout suspends the process until the next Broadcast or until d
// elapses, whichever comes first. It reports whether the wakeup was a
// Broadcast (true) rather than the timeout (false).
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	w := &signalWaiter{p: p}
	s.waiters = append(s.waiters, w)
	s.eng.After(d, func() {
		if w.woken {
			return
		}
		w.woken = true
		s.remove(w)
		p.unpark()
	})
	p.park()
	return w.signaled
}

func (s *Signal) remove(target *signalWaiter) {
	for i, w := range s.waiters {
		if w == target {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every process currently waiting.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.woken {
			continue
		}
		w.woken = true
		w.signaled = true
		w.p.unpark()
	}
}

// Waiters returns the number of processes currently blocked in Wait.
func (s *Signal) Waiters() int { return len(s.waiters) }
