package sim

// Resource is a counting semaphore in virtual time. It models the
// compute node's CPU cores (capacity 16 in the paper's testbed), Docker
// daemon concurrency, and similar contended capacities. Acquire blocks
// the calling process until a unit is free; waiters are served FIFO,
// which keeps the simulation deterministic.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*Proc
	// MaxInUse tracks the high-water mark, useful for utilization
	// reporting in the experiment harnesses.
	MaxInUse int
}

// NewResource returns a resource with the given capacity. Capacity must
// be positive.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of processes blocked in Acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks the process until a unit is available, then takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.waiters = append(r.waiters, p)
		p.park()
	}
	r.inUse++
	if r.inUse > r.MaxInUse {
		r.MaxInUse = r.inUse
	}
}

// TryAcquire takes a unit if one is free, without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	if r.inUse > r.MaxInUse {
		r.MaxInUse = r.inUse
	}
	return true
}

// Release returns a unit and wakes the first waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.unpark()
	}
}

// Use acquires a unit, sleeps for d (the service time), and releases.
// It is the common pattern for "run on a CPU core for d".
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}
