package sim

import "math/rand"

// RNG is the deterministic random source used by every experiment. The
// paper pre-computes and persists the benchmark's random send order so
// trials are repeatable; we get the same property by seeding one RNG
// per experiment and never consulting any other entropy source.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]; it models
// run-to-run variance around a calibrated mean cost.
func (g *RNG) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*g.r.Float64()-1)
	return Duration(float64(d) * scale)
}

// Exp returns an exponentially distributed duration with the given
// mean; it models inter-arrival times for open-loop streams.
func (g *RNG) Exp(mean Duration) Duration {
	return Duration(g.r.ExpFloat64() * float64(mean))
}

// Perm returns a deterministic permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle deterministically shuffles n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
