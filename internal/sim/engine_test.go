package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(3*time.Millisecond, func() { got = append(got, 3) })
	e.After(1*time.Millisecond, func() { got = append(got, 1) })
	e.After(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now = %v, want 3ms", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.After(time.Millisecond, func() {
		fired = append(fired, "outer")
		e.After(time.Millisecond, func() { fired = append(fired, "inner") })
	})
	e.Run()
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Errorf("Now = %v, want 2ms", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(time.Millisecond), func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(Time(5 * time.Second))
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != Time(5*time.Second) {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(Time(time.Hour))
	if e.Now() != Time(time.Hour) {
		t.Errorf("Now = %v, want 1h", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(42*time.Millisecond) {
		t.Errorf("woke at %v, want 42ms", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Millisecond)
			trace = append(trace, p.Now())
		}
	})
	e.Run()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestQueueBlockingGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	var got interface{}
	var at Time
	e.Go("consumer", func(p *Proc) {
		got, _ = q.Get(p)
		at = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		q.Put("hello")
	})
	e.Run()
	if got != "hello" {
		t.Errorf("got %v", got)
	}
	if at != Time(5*time.Millisecond) {
		t.Errorf("consumed at %v, want 5ms", at)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	var got []int
	e.Go("c", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, _ := q.Get(p)
			got = append(got, v.(int))
		}
	})
	e.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueuePutFront(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	q.Put(1)
	q.PutFront(0)
	v, _ := q.TryGet()
	if v != 0 {
		t.Errorf("head = %v, want 0", v)
	}
}

func TestQueueClose(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	var okAfterClose bool = true
	e.Go("c", func(p *Proc) {
		_, okAfterClose = q.Get(p)
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Close()
	})
	e.Run()
	if okAfterClose {
		t.Error("Get on closed empty queue returned ok=true")
	}
}

func TestQueueCloseDrainsItemsFirst(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	q.Put("x")
	q.Close()
	var v interface{}
	var ok bool
	e.Go("c", func(p *Proc) { v, ok = q.Get(p) })
	e.Run()
	if !ok || v != "x" {
		t.Errorf("Get = %v, %v; want x, true", v, ok)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Go("worker", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	// With capacity 2 and 4 jobs of 10ms: two finish at 10ms, two at 20ms.
	if len(finish) != 4 {
		t.Fatalf("finish = %v", finish)
	}
	if finish[0] != Time(10*time.Millisecond) || finish[3] != Time(20*time.Millisecond) {
		t.Errorf("finish times = %v", finish)
	}
	if r.MaxInUse != 2 {
		t.Errorf("MaxInUse = %d, want 2", r.MaxInUse)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded at capacity")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Release()
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if s.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", s.Waiters())
		}
		s.Broadcast()
	})
	e.Run()
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(1)
	base := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := g.Jitter(base, 0.1)
		if d < 90*time.Millisecond || d > 110*time.Millisecond {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if g.Jitter(base, 0) != base {
		t.Error("zero jitter changed duration")
	}
}

func TestTimeHelpers(t *testing.T) {
	t0 := Time(time.Second)
	if t0.Add(time.Second) != Time(2*time.Second) {
		t.Error("Add")
	}
	if t0.Sub(Time(500*time.Millisecond)) != 500*time.Millisecond {
		t.Error("Sub")
	}
	if t0.Seconds() != 1 {
		t.Error("Seconds")
	}
}

func TestSignalWaitTimeoutExpires(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var signaled bool
	var at Time
	e.Go("w", func(p *Proc) {
		signaled = s.WaitTimeout(p, 25*time.Millisecond)
		at = p.Now()
	})
	e.Run()
	if signaled {
		t.Error("timeout reported as signal")
	}
	if at != Time(25*time.Millisecond) {
		t.Errorf("woke at %v", at)
	}
	if s.Waiters() != 0 {
		t.Errorf("stale waiter left: %d", s.Waiters())
	}
}

func TestSignalWaitTimeoutSignaled(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var signaled bool
	var at Time
	e.Go("w", func(p *Proc) {
		signaled = s.WaitTimeout(p, time.Second)
		at = p.Now()
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Broadcast()
	})
	e.Run()
	if !signaled {
		t.Error("broadcast reported as timeout")
	}
	if at != Time(5*time.Millisecond) {
		t.Errorf("woke at %v", at)
	}
}

func TestSignalMixedWaiters(t *testing.T) {
	// One plain waiter and one timed waiter: the broadcast wakes both;
	// the timed waiter's later timeout event must be a no-op.
	e := NewEngine()
	s := NewSignal(e)
	woken := 0
	e.Go("plain", func(p *Proc) {
		s.Wait(p)
		woken++
	})
	e.Go("timed", func(p *Proc) {
		if s.WaitTimeout(p, time.Minute) {
			woken++
		}
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
	})
	e.Run()
	if woken != 2 {
		t.Errorf("woken = %d", woken)
	}
	if e.Now() < Time(time.Minute) {
		t.Errorf("pending timeout event not drained: clock %v", e.Now())
	}
}

func TestSignalRepeatedWaitTimeoutRounds(t *testing.T) {
	// A process can wait in rounds; each round gets its own timeout.
	e := NewEngine()
	s := NewSignal(e)
	rounds := 0
	e.Go("w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			s.WaitTimeout(p, 10*time.Millisecond)
			rounds++
		}
	})
	e.Run()
	if rounds != 3 {
		t.Errorf("rounds = %d", rounds)
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestLiveProcsDrainToZero(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) { p.Sleep(time.Millisecond) })
	}
	e.Run()
	if e.LiveProcs() != 0 {
		t.Errorf("live procs after drain = %d", e.LiveProcs())
	}
}

func TestLiveProcsCountsBlocked(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	e.Go("server", func(p *Proc) { q.Get(p) }) // blocks forever
	e.Run()
	if e.LiveProcs() != 1 {
		t.Errorf("live procs = %d, want the blocked server", e.LiveProcs())
	}
}
