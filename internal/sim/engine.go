// Package sim provides a deterministic discrete-event simulation engine.
//
// All SEUSS experiments run in virtual time: latency-bearing operations
// (booting a unikernel, creating a container, a network round trip) are
// modeled as events on a shared virtual clock rather than as wall-clock
// delays. This makes the macro experiments of the paper — minutes of
// testbed time — run deterministically in milliseconds.
//
// The engine supports two styles:
//
//   - Callback events: At/After schedule a function at a virtual instant.
//   - Processes: Go spawns a coroutine-style process (backed by a
//     goroutine with strict hand-off) that can Sleep, block on Queues and
//     Resources, and generally be written as straight-line code, the way
//     the paper's benchmark worker threads are described.
//
// Determinism: exactly one process or callback runs at a time; ties in
// virtual time are broken by schedule order (a monotonic sequence
// number). Given the same seed and the same program, every run produces
// identical results.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual instant, measured in nanoseconds from the start of
// the simulation. It is deliberately a distinct type from time.Time so
// virtual and wall-clock time cannot be confused.
type Time int64

// Duration re-exports time.Duration for callers' convenience; virtual
// durations use the same unit (nanoseconds) as wall-clock durations.
type Duration = time.Duration

// String formats the instant as a duration offset from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the instant as seconds from simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
//
// Ownership contract: an Engine is single-threaded by construction and
// is NOT safe for concurrent use. Every call — scheduling, Run/Step,
// and every method of every Proc, Queue, Resource, or Signal bound to
// it — must come from one owning OS goroutine (process goroutines
// spawned by Go hand off strictly, so they count as the owner while
// dispatched). A sharded system therefore runs one engine per shard,
// each driven only by its shard goroutine; determinism holds per
// engine, and nothing is promised about event ordering across engines.
type Engine struct {
	now     Time
	pq      eventHeap
	seq     uint64
	procs   int // live processes (for leak detection)
	running bool
	// free recycles event descriptors: the scheduling hot path (every
	// Sleep, every queue wakeup) reuses a popped descriptor instead of
	// allocating one per event.
	free []*event
}

// maxFreeEvents bounds the recycled-descriptor list; beyond it, retired
// events are left to the GC.
const maxFreeEvents = 1024

// NewEngine returns an engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual instant t. Scheduling in the past is
// a programming error and panics: discrete-event time cannot move
// backwards.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	heap.Push(&e.pq, ev)
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the single earliest pending event, advancing the clock to
// its instant. It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	fn := ev.fn
	// Recycle before running: fn may schedule (and thus reuse the
	// descriptor) immediately.
	ev.fn = nil
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
	fn()
	return true
}

// Run executes events until none remain. Processes blocked forever (for
// example, a server loop waiting on a queue that will never be filled)
// do not keep Run alive: only scheduled events do.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with instants <= t, then advances the clock
// to exactly t.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }

// LiveProcs returns the number of processes that have been spawned and
// not yet finished — blocked servers and leaked workers show up here
// after Run drains.
func (e *Engine) LiveProcs() int { return e.procs }
