// Robustness counters: the failure-containment ledger the node, pool,
// and platform layers export. Where Summary measures how fast the
// system is, Robustness measures how it failed — and how often a
// failure was absorbed (retried, re-routed, degraded) instead of
// surfaced.

package metrics

import (
	"fmt"
	"strings"
)

// Robustness aggregates fault-handling counters across layers. The
// zero value is a clean run. Counters are plain int64s: collection
// points snapshot them inside their owning goroutine, so the struct
// itself needs no synchronization.
type Robustness struct {
	// Retries counts re-submissions after contained faults (platform
	// and cluster retry budgets).
	Retries int64
	// BreakerTrips counts circuit-breaker closed→open transitions.
	BreakerTrips int64
	// Rerouted counts requests diverted away from an open breaker.
	Rerouted int64
	// UCCrashes counts unikernel contexts destroyed after a fault
	// (injected crash, guest error, deadline kill).
	UCCrashes int64
	// DeadlinesExceeded counts invocations killed by their step-budget
	// deadline.
	DeadlinesExceeded int64
	// PressureIdleReclaims counts level-1 degradations: idle UCs
	// reclaimed to fit a deploy.
	PressureIdleReclaims int64
	// PressureSnapshotEvictions counts level-2 degradations: cold
	// function snapshots evicted to fit a deploy.
	PressureSnapshotEvictions int64
	// PressureColdFallbacks counts level-3 degradations: warm deploys
	// abandoned, request served cold instead of failed.
	PressureColdFallbacks int64
	// FaultsInjected counts fault points fired by the injector.
	FaultsInjected int64
}

// Add accumulates another ledger into this one.
func (r *Robustness) Add(o Robustness) {
	r.Retries += o.Retries
	r.BreakerTrips += o.BreakerTrips
	r.Rerouted += o.Rerouted
	r.UCCrashes += o.UCCrashes
	r.DeadlinesExceeded += o.DeadlinesExceeded
	r.PressureIdleReclaims += o.PressureIdleReclaims
	r.PressureSnapshotEvictions += o.PressureSnapshotEvictions
	r.PressureColdFallbacks += o.PressureColdFallbacks
	r.FaultsInjected += o.FaultsInjected
}

// Zero reports whether the run was fault-free.
func (r Robustness) Zero() bool { return r == Robustness{} }

// String renders only the non-zero counters, one compact line — a
// clean run renders as "no faults".
func (r Robustness) String() string {
	var parts []string
	add := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("retries", r.Retries)
	add("breaker_trips", r.BreakerTrips)
	add("rerouted", r.Rerouted)
	add("uc_crashes", r.UCCrashes)
	add("deadlines", r.DeadlinesExceeded)
	add("pressure_idle_reclaims", r.PressureIdleReclaims)
	add("pressure_snapshot_evictions", r.PressureSnapshotEvictions)
	add("pressure_cold_fallbacks", r.PressureColdFallbacks)
	add("faults_injected", r.FaultsInjected)
	if len(parts) == 0 {
		return "no faults"
	}
	return strings.Join(parts, " ")
}
