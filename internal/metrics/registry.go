// The metrics registry: a fixed, pre-registered set of monotonic
// counters and latency histograms every instrumented layer (core node,
// shard pool, platform) records into, plus the Prometheus text
// exposition writer.
//
// Design: observability must stay off the allocation-free hot path.
// Every counter and histogram is registered at compile time as an
// index into a fixed array of atomics — recording is one atomic add,
// with no map lookups, no label interning, and no per-event heap
// allocation. A sharded pool gives each shard a private Recorder
// (lock-free by construction: atomics, no shared cache lines beyond
// the array) and merges Snapshots on read, mirroring how per-shard
// stats are already aggregated.

package metrics

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// Counter identifies one pre-registered monotonic counter.
type Counter int

// The registered counters. Descriptors in counterDescs must stay in
// this order, with counters sharing a Prometheus family name adjacent,
// so the exposition writer can group them under one HELP/TYPE header.
const (
	// Invocations by outcome (the paper's cold/warm/hot split, plus
	// the disk tier's lukewarm restores).
	CtrColdInvocations Counter = iota
	CtrWarmInvocations
	CtrHotInvocations
	CtrLukewarmInvocations
	CtrInvokeErrors
	// Cache behavior: snapshot-stack (function snapshot) lookups, idle
	// UC (hot path) hits, and deploy-kit recycling.
	CtrSnapshotStackHits
	CtrSnapshotStackMisses
	CtrIdleUCHits
	CtrDeployKitHits
	CtrDeployKitMisses
	// UC lifecycle.
	CtrUCsDeployed
	CtrUCsReclaimed
	CtrSnapshotsCaptured
	CtrSnapshotsEvicted
	// Snapshot disk tier: lookups on the lukewarm path, evictions
	// persisted as demotions, promotions back into RAM.
	CtrTierHits
	CtrTierMisses
	CtrTierDemotions
	CtrTierPromotionsLukewarm
	CtrTierPromotionsPrewarm
	// Failure containment.
	CtrUCCrashes
	CtrDeadlinesExceeded
	CtrPressureIdleReclaims
	CtrPressureSnapshotEvictions
	CtrPressureColdFallbacks
	CtrFaultsInjected
	// Pool routing and breaker transitions.
	CtrBreakerTrips
	CtrRequestsStolen
	CtrRequestsRerouted
	CtrRequestsRequeued
	CtrShardStalls
	// Platform (faas.Cluster) outcomes.
	CtrPlatformRequests
	CtrPlatformFailures
	CtrPlatformRetries
	// Scheduler placements and the snapshot fabric.
	CtrSchedPlacementsCold
	CtrSchedPlacementsRoute
	CtrSchedPlacementsFetch
	CtrSchedPlacementsMigrate
	CtrSchedStaleEntries
	CtrGossipRounds
	CtrGossipDrops
	CtrFabricLayersFetched
	CtrFabricLayersDeduped
	CtrFabricLayersRejected
	// Member liveness lifecycle, failover, and redundancy repair.
	CtrMemberStateAlive
	CtrMemberStateSuspect
	CtrMemberStateDead
	CtrClusterFailovers
	CtrFabricRepairsPromoted
	CtrFabricRepairsRefetched
	CtrFabricRepairsCold
	CtrFabricRepairsFailed
	// Working-set record/replay on the lukewarm path.
	CtrWSRecordsRecorded
	CtrWSRecordsMerged
	CtrWSRecordsCorrupt
	CtrWSPrefetchedPages
	CtrWSCoverageHits
	CtrWSCoverageMisses
	// Restore-time uniqueness: entropy reseeds drawn at deploy, by path.
	CtrReseedsBoot
	CtrReseedsCold
	CtrReseedsWarm
	CtrReseedsLukewarm
	CtrReseedsKit
	// Lifecycle policy: keep-alive expirations (idle UCs destroyed and
	// lineages scaled to zero) and prewarm outcomes.
	CtrPolicyExpirations
	CtrPolicyPrewarmsPromoted
	CtrPolicyPrewarmsMiss
	CtrPolicyPrewarmsMisfire

	numCounters
)

// Hist identifies one pre-registered latency histogram.
type Hist int

// The registered histograms: invocation latency split by path.
const (
	HistColdLatency Hist = iota
	HistWarmLatency
	HistHotLatency
	HistLukewarmLatency
	// HistPolicyKeepalive records the keep-alive window the lifecycle
	// policy granted at each invocation completion — duration-scaled
	// buckets (KeepaliveBuckets), not latency-scaled.
	HistPolicyKeepalive

	numHists
)

type desc struct {
	name   string // Prometheus family name
	help   string // HELP text, written once per family
	labels string // rendered label pairs, "" for none
}

var counterDescs = [numCounters]desc{
	CtrColdInvocations:     {"seuss_invocations_total", "Invocations served, by path taken.", `path="cold"`},
	CtrWarmInvocations:     {"seuss_invocations_total", "", `path="warm"`},
	CtrHotInvocations:      {"seuss_invocations_total", "", `path="hot"`},
	CtrLukewarmInvocations: {"seuss_invocations_total", "", `path="lukewarm"`},
	CtrInvokeErrors:        {"seuss_invocation_errors_total", "Invocations that returned an error.", ""},

	CtrSnapshotStackHits:   {"seuss_snapshot_stack_lookups_total", "Function-snapshot (snapshot stack) cache lookups on the warm path.", `result="hit"`},
	CtrSnapshotStackMisses: {"seuss_snapshot_stack_lookups_total", "", `result="miss"`},
	CtrIdleUCHits:          {"seuss_idle_uc_hits_total", "Invocations served hot from a cached idle UC.", ""},
	CtrDeployKitHits:       {"seuss_deploy_kit_lookups_total", "Deploy-kit cache lookups (retired UC recycling) during deploys.", `result="hit"`},
	CtrDeployKitMisses:     {"seuss_deploy_kit_lookups_total", "", `result="miss"`},

	CtrUCsDeployed:       {"seuss_ucs_deployed_total", "UCs deployed from snapshots.", ""},
	CtrUCsReclaimed:      {"seuss_ucs_reclaimed_total", "Idle UCs destroyed by the OOM reclaim policy.", ""},
	CtrSnapshotsCaptured: {"seuss_snapshots_captured_total", "Function snapshots captured on cold paths.", ""},
	CtrSnapshotsEvicted:  {"seuss_snapshots_evicted_total", "Function snapshots evicted from the cache.", ""},

	CtrTierHits:               {"seuss_snapshot_tier_lookups_total", "Disk-tier lookups on the lukewarm path.", `result="hit"`},
	CtrTierMisses:             {"seuss_snapshot_tier_lookups_total", "", `result="miss"`},
	CtrTierDemotions:          {"seuss_snapshot_tier_demotions_total", "Snapshots demoted to the disk tier instead of destroyed.", ""},
	CtrTierPromotionsLukewarm: {"seuss_snapshot_tier_promotions_total", "Snapshots promoted from the disk tier back into RAM, by trigger.", `kind="lukewarm"`},
	CtrTierPromotionsPrewarm:  {"seuss_snapshot_tier_promotions_total", "", `kind="prewarm"`},

	CtrUCCrashes:                 {"seuss_uc_crashes_total", "UCs destroyed after a contained mid-invocation fault.", ""},
	CtrDeadlinesExceeded:         {"seuss_deadlines_exceeded_total", "Invocations killed by their step-budget deadline.", ""},
	CtrPressureIdleReclaims:      {"seuss_pressure_degradations_total", "Memory-pressure degradations, by ladder level.", `level="idle_reclaim"`},
	CtrPressureSnapshotEvictions: {"seuss_pressure_degradations_total", "", `level="snapshot_eviction"`},
	CtrPressureColdFallbacks:     {"seuss_pressure_degradations_total", "", `level="cold_fallback"`},
	CtrFaultsInjected:            {"seuss_faults_injected_total", "Fault points fired by the deterministic injector.", ""},

	CtrBreakerTrips:     {"seuss_breaker_trips_total", "Circuit-breaker closed-to-open transitions.", ""},
	CtrRequestsStolen:   {"seuss_requests_stolen_total", "Requests served off their owner shard via work stealing.", ""},
	CtrRequestsRerouted: {"seuss_requests_rerouted_total", "Requests diverted away from an open breaker.", ""},
	CtrRequestsRequeued: {"seuss_requests_requeued_total", "Requests a stalled shard pushed back for a healthy shard.", ""},
	CtrShardStalls:      {"seuss_shard_stalls_total", "Injected shard stalls.", ""},

	CtrPlatformRequests: {"seuss_platform_requests_total", "Platform-level activations accepted.", ""},
	CtrPlatformFailures: {"seuss_platform_failures_total", "Platform-level activations that surfaced an error.", ""},
	CtrPlatformRetries:  {"seuss_platform_retries_total", "Platform re-submissions after contained faults.", ""},

	CtrSchedPlacementsCold:    {"seuss_sched_placements_total", "Scheduler placement decisions, by action.", `action="cold"`},
	CtrSchedPlacementsRoute:   {"seuss_sched_placements_total", "", `action="route"`},
	CtrSchedPlacementsFetch:   {"seuss_sched_placements_total", "", `action="fetch"`},
	CtrSchedPlacementsMigrate: {"seuss_sched_placements_total", "", `action="migrate"`},
	CtrSchedStaleEntries:      {"seuss_sched_stale_entries_total", "Stale scheduler directory entries pruned at placement time.", ""},
	CtrGossipRounds:           {"seuss_fabric_gossip_rounds_total", "Completed scheduler manifest-exchange rounds.", ""},
	CtrGossipDrops:            {"seuss_fabric_gossip_drops_total", "Gossip exchanges lost to injected faults.", ""},
	CtrFabricLayersFetched:    {"seuss_fabric_layer_transfers_total", "Snapshot-layer transfer outcomes on the fabric.", `outcome="fetched"`},
	CtrFabricLayersDeduped:    {"seuss_fabric_layer_transfers_total", "", `outcome="deduped"`},
	CtrFabricLayersRejected:   {"seuss_fabric_layer_transfers_total", "", `outcome="rejected"`},

	CtrMemberStateAlive:       {"seuss_cluster_member_state_transitions_total", "Member liveness transitions, by state entered.", `state="alive"`},
	CtrMemberStateSuspect:     {"seuss_cluster_member_state_transitions_total", "", `state="suspect"`},
	CtrMemberStateDead:        {"seuss_cluster_member_state_transitions_total", "", `state="dead"`},
	CtrClusterFailovers:       {"seuss_cluster_failovers_total", "Invocations re-picked to a live member after the serving member became unreachable.", ""},
	CtrFabricRepairsPromoted:  {"seuss_fabric_repairs_total", "Repair-pass actions for lineages that lost their last live holder, by outcome.", `outcome="promoted"`},
	CtrFabricRepairsRefetched: {"seuss_fabric_repairs_total", "", `outcome="refetched"`},
	CtrFabricRepairsCold:      {"seuss_fabric_repairs_total", "", `outcome="cold"`},
	CtrFabricRepairsFailed:    {"seuss_fabric_repairs_total", "", `outcome="failed"`},

	CtrWSRecordsRecorded: {"seuss_ws_records_total", "Working-set record events on the lukewarm path, by outcome.", `outcome="recorded"`},
	CtrWSRecordsMerged:   {"seuss_ws_records_total", "", `outcome="merged"`},
	CtrWSRecordsCorrupt:  {"seuss_ws_records_total", "", `outcome="corrupt"`},
	CtrWSPrefetchedPages: {"seuss_ws_prefetched_pages_total", "Pages bulk-mapped from working-set records before lukewarm resume.", ""},
	CtrWSCoverageHits:    {"seuss_ws_coverage_pages_total", "Pages a lukewarm invocation touched, split by working-set coverage.", `result="hit"`},
	CtrWSCoverageMisses:  {"seuss_ws_coverage_pages_total", "", `result="miss"`},

	CtrReseedsBoot:     {"seuss_uc_reseeds_total", "Entropy reseeds drawn at UC deploy, by path.", `path="boot"`},
	CtrReseedsCold:     {"seuss_uc_reseeds_total", "", `path="cold"`},
	CtrReseedsWarm:     {"seuss_uc_reseeds_total", "", `path="warm"`},
	CtrReseedsLukewarm: {"seuss_uc_reseeds_total", "", `path="lukewarm"`},
	CtrReseedsKit:      {"seuss_uc_reseeds_total", "", `path="kit"`},

	CtrPolicyExpirations:      {"seuss_policy_expirations_total", "Keep-alive expirations by the lifecycle policy: idle UCs destroyed plus lineages demoted to the disk tier (scale-to-zero).", ""},
	CtrPolicyPrewarmsPromoted: {"seuss_policy_prewarms_total", "Policy-driven prewarm attempts, by outcome.", `outcome="promoted"`},
	CtrPolicyPrewarmsMiss:     {"seuss_policy_prewarms_total", "", `outcome="miss"`},
	CtrPolicyPrewarmsMisfire:  {"seuss_policy_prewarms_total", "", `outcome="misfire"`},
}

var histDescs = [numHists]desc{
	HistColdLatency:     {"seuss_invocation_latency_seconds", "Node-side invocation latency (virtual time), by path.", `path="cold"`},
	HistWarmLatency:     {"seuss_invocation_latency_seconds", "", `path="warm"`},
	HistHotLatency:      {"seuss_invocation_latency_seconds", "", `path="hot"`},
	HistLukewarmLatency: {"seuss_invocation_latency_seconds", "", `path="lukewarm"`},
	HistPolicyKeepalive: {"seuss_policy_keepalive_seconds", "Keep-alive window granted by the lifecycle policy at each invocation completion.", ""},
}

// histBounds overrides a histogram's bucket bound table; nil entries
// use the default LatencyBuckets.
var histBounds = [numHists]*[len(LatencyBuckets)]time.Duration{
	HistPolicyKeepalive: &KeepaliveBuckets,
}

// boundsFor returns the bound table a histogram records and renders
// against.
func boundsFor(h Hist) *[len(LatencyBuckets)]time.Duration {
	if b := histBounds[h]; b != nil {
		return b
	}
	return &LatencyBuckets
}

// Recorder is one collection point's metric storage: a fixed array of
// atomic counters plus the registered histograms. All methods are
// safe for concurrent use and nil-safe — un-instrumented code paths
// carry a nil Recorder at zero cost and zero conditionals at call
// sites.
type Recorder struct {
	counters [numCounters]atomic.Int64
	hists    [numHists]Histogram
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Inc adds one to a counter. Safe on a nil recorder.
func (r *Recorder) Inc(c Counter) {
	if r != nil {
		r.counters[c].Add(1)
	}
}

// AddCounter adds n to a counter. Safe on a nil recorder.
func (r *Recorder) AddCounter(c Counter, n int64) {
	if r != nil {
		r.counters[c].Add(n)
	}
}

// Observe records a duration into a histogram. Safe on a nil recorder;
// never allocates.
func (r *Recorder) Observe(h Hist, d time.Duration) {
	if r != nil {
		r.hists[h].observe(boundsFor(h), d)
	}
}

// Snapshot returns a point-in-time copy of every counter and
// histogram. Safe on a nil recorder (returns the zero snapshot).
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for i := range r.counters {
		s.Counters[i] = r.counters[i].Load()
	}
	for i := range r.hists {
		s.Hists[i] = r.hists[i].Snapshot()
	}
	return s
}

// Snapshot is an immutable reading of a Recorder: the unit merged
// across shards on scrape.
type Snapshot struct {
	Counters [numCounters]int64
	Hists    [numHists]HistogramSnapshot
}

// Merge accumulates o into s (element-wise, associative).
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Counters {
		s.Counters[i] += o.Counters[i]
	}
	for i := range s.Hists {
		s.Hists[i].Merge(o.Hists[i])
	}
}

// Counter returns one counter's value.
func (s Snapshot) Counter(c Counter) int64 { return s.Counters[c] }

// Histogram returns one histogram's snapshot.
func (s Snapshot) Histogram(h Hist) HistogramSnapshot { return s.Hists[h] }

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): counters as counter families, histograms as
// cumulative-bucket histogram families with +Inf, _sum, and _count
// series. Families sharing a name are grouped under a single
// HELP/TYPE header, as the format requires.
func WritePrometheus(w io.Writer, s Snapshot) error {
	prev := ""
	for i := Counter(0); i < numCounters; i++ {
		d := counterDescs[i]
		if d.name != prev {
			if err := writeHeader(w, d.name, d.help, "counter"); err != nil {
				return err
			}
			prev = d.name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", d.name, renderLabels(d.labels), s.Counters[i]); err != nil {
			return err
		}
	}
	prev = ""
	for i := Hist(0); i < numHists; i++ {
		d := histDescs[i]
		if d.name != prev {
			if err := writeHeader(w, d.name, d.help, "histogram"); err != nil {
				return err
			}
			prev = d.name
		}
		if err := writeHistogram(w, d, boundsFor(i), s.Hists[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func renderLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func writeHistogram(w io.Writer, d desc, bounds *[len(LatencyBuckets)]time.Duration, h HistogramSnapshot) error {
	sep := ""
	if d.labels != "" {
		sep = d.labels + ","
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = formatSeconds(bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", d.name, sep, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", d.name, renderLabels(d.labels),
		strconv.FormatFloat(float64(h.SumNanos)/1e9, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", d.name, renderLabels(d.labels), cum)
	return err
}

// formatSeconds renders a bucket bound as a seconds float ("0.001").
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
