package metrics

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestQuantileKnownValues(t *testing.T) {
	// Pins the estimator: linear interpolation between closest ranks
	// (R-7). Sample {10, 20, 30, 40ms}: position = q·(n−1).
	sorted := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		30 * time.Millisecond, 40 * time.Millisecond}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 10 * time.Millisecond},
		{0.25, 17500 * time.Microsecond}, // pos 0.75: 10 + 0.75·(20−10)
		{0.5, 25 * time.Millisecond},     // pos 1.5: midway 20..30
		{0.75, 32500 * time.Microsecond}, // pos 2.25: 30 + 0.25·(40−30)
		{1, 40 * time.Millisecond},
		{-0.5, 10 * time.Millisecond}, // clamped
		{1.5, 40 * time.Millisecond},  // clamped
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty sample set should yield 0")
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile(one, q); got != 7*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v", q, got)
		}
	}
}

func TestQuantileProperties(t *testing.T) {
	// Property check on random sorted samples: monotone in q, bounded
	// by min/max, and exact at integer rank positions.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		sorted := make([]time.Duration, n)
		var acc time.Duration
		for i := range sorted {
			acc += time.Duration(rng.Intn(1000)) * time.Microsecond
			sorted[i] = acc
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(sorted, q)
			if v < sorted[0] || v > sorted[n-1] {
				t.Fatalf("n=%d q=%v: %v outside [%v, %v]", n, q, v, sorted[0], sorted[n-1])
			}
			if v < prev {
				t.Fatalf("n=%d q=%v: quantile decreased %v -> %v", n, q, prev, v)
			}
			prev = v
		}
		// Integer positions return the order statistic (±1ns: the
		// float rank q·(n−1) can land a hair below i and the duration
		// truncation floors it).
		for i := 0; i < n; i++ {
			q := float64(i) / float64(n-1)
			if n == 1 {
				q = 0
			}
			got := Quantile(sorted, q)
			if d := got - sorted[i]; d < -time.Nanosecond || d > time.Nanosecond {
				t.Fatalf("n=%d rank %d: got %v, want %v", n, i, got, sorted[i])
			}
		}
	}
}

func TestHistogramObserveBuckets(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Microsecond)  // bucket 0 (≤10µs)
	h.Observe(10 * time.Microsecond) // bucket 0 (bound is inclusive)
	h.Observe(11 * time.Microsecond) // bucket 1
	h.Observe(10 * time.Second)      // +Inf overflow
	s := h.Snapshot()
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[NumBuckets-1] != 1 {
		t.Errorf("buckets = %v", s.Buckets)
	}
	if s.Count() != 4 {
		t.Errorf("count = %d", s.Count())
	}
	wantSum := int64(5*time.Microsecond + 10*time.Microsecond + 11*time.Microsecond + 10*time.Second)
	if s.SumNanos != wantSum {
		t.Errorf("sum = %d, want %d", s.SumNanos, wantSum)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	// Merge must be associative (and commutative): any merge tree over
	// the same shard snapshots yields the same aggregate — the property
	// Pool.Metrics() relies on.
	rng := rand.New(rand.NewSource(7))
	mk := func() HistogramSnapshot {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Observe(time.Duration(rng.Intn(int(6 * time.Second))))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	abThenC := a // (a+b)+c
	abThenC.Merge(b)
	abThenC.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	aThenBC := a
	aThenBC.Merge(bc)

	ba := b // (b+a)+c — commutativity
	ba.Merge(a)
	ba.Merge(c)

	if abThenC != aThenBC || abThenC != ba {
		t.Errorf("merge not associative/commutative:\n(a+b)+c = %+v\na+(b+c) = %+v\n(b+a)+c = %+v",
			abThenC, aThenBC, ba)
	}
	if abThenC.Count() != a.Count()+b.Count()+c.Count() {
		t.Errorf("merged count = %d", abThenC.Count())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Inc(CtrColdInvocations)
	r.AddCounter(CtrUCsDeployed, 5)
	r.Observe(HistColdLatency, time.Millisecond)
	s := r.Snapshot()
	if s.Counter(CtrColdInvocations) != 0 || s.Histogram(HistColdLatency).Count() != 0 {
		t.Error("nil recorder recorded")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Inc(CtrColdInvocations)
	a.AddCounter(CtrUCsDeployed, 3)
	a.Observe(HistColdLatency, 5*time.Millisecond)
	b.Inc(CtrColdInvocations)
	b.Inc(CtrWarmInvocations)
	b.Observe(HistColdLatency, 7*time.Millisecond)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counter(CtrColdInvocations) != 2 || s.Counter(CtrWarmInvocations) != 1 ||
		s.Counter(CtrUCsDeployed) != 3 {
		t.Errorf("merged counters = %v", s.Counters)
	}
	if s.Histogram(HistColdLatency).Count() != 2 {
		t.Errorf("merged histogram count = %d", s.Histogram(HistColdLatency).Count())
	}
}

// TestWritePrometheusGolden pins the full exposition output byte for
// byte. Regenerate with: go test ./internal/metrics -run Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRecorder()
	r.Inc(CtrColdInvocations)
	r.AddCounter(CtrWarmInvocations, 2)
	r.AddCounter(CtrHotInvocations, 7)
	r.Inc(CtrSnapshotStackHits)
	r.AddCounter(CtrSnapshotStackMisses, 3)
	r.AddCounter(CtrDeployKitHits, 4)
	r.Inc(CtrUCsDeployed)
	r.Inc(CtrBreakerTrips)
	r.Observe(HistColdLatency, 8*time.Millisecond)
	r.Observe(HistColdLatency, 15*time.Millisecond)
	r.Observe(HistWarmLatency, 600*time.Microsecond)
	r.Observe(HistHotLatency, 90*time.Microsecond)
	r.Observe(HistHotLatency, 7*time.Second) // overflow bucket

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
