// Package metrics collects and summarizes the measurements the
// evaluation reports: latency percentiles (Figure 5), throughput series
// (Figure 4), and per-request timelines (Figures 6-8).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary is a percentile summary of a latency sample set — the
// quantiles Figure 5 plots (1st, 25th, 50th, 75th, 99th and the mean).
type Summary struct {
	Count int
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P1    time.Duration
	P25   time.Duration
	P50   time.Duration
	P75   time.Duration
	P99   time.Duration
}

// Summarize computes a Summary from samples. An empty input returns the
// zero Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, s := range sorted {
		total += s
	}
	return Summary{
		Count: len(sorted),
		Mean:  total / time.Duration(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P1:    Quantile(sorted, 0.01),
		P25:   Quantile(sorted, 0.25),
		P50:   Quantile(sorted, 0.50),
		P75:   Quantile(sorted, 0.75),
		P99:   Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0..1) of an ascending-sorted sample
// set using linear interpolation between the closest ranks (the R-7
// estimator of Hyndman & Fan, the default in NumPy and Excel): the
// quantile position is q·(n−1), and a fractional position interpolates
// linearly between the two neighboring order statistics. See DESIGN.md
// §9 for why this estimator and how it relates to the /metrics
// histograms.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// String renders the summary on one line in milliseconds.
func (s Summary) String() string {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return fmt.Sprintf("n=%d mean=%.2fms p1=%.2f p25=%.2f p50=%.2f p75=%.2f p99=%.2f",
		s.Count, ms(s.Mean), ms(s.P1), ms(s.P25), ms(s.P50), ms(s.P75), ms(s.P99))
}

// Point is one request in a timeline: the scatter dots of Figures 6-8.
type Point struct {
	// Sent is the request's send time on the virtual clock.
	Sent time.Duration
	// Latency is the end-to-end request latency.
	Latency time.Duration
	// Err is true for failed requests (the 'x' marks in the figures).
	Err bool
	// Kind labels the workload component ("background", "burst", ...).
	Kind string
}

// Timeline records per-request points in send order.
type Timeline struct {
	Points []Point
}

// Add appends a point.
func (t *Timeline) Add(p Point) { t.Points = append(t.Points, p) }

// Errors returns the number of failed requests, optionally filtered by
// kind ("" = all).
func (t *Timeline) Errors(kind string) int {
	n := 0
	for _, p := range t.Points {
		if p.Err && (kind == "" || p.Kind == kind) {
			n++
		}
	}
	return n
}

// Count returns the number of requests of the given kind ("" = all).
func (t *Timeline) Count(kind string) int {
	n := 0
	for _, p := range t.Points {
		if kind == "" || p.Kind == kind {
			n++
		}
	}
	return n
}

// Latencies returns the latencies of successful requests of a kind.
func (t *Timeline) Latencies(kind string) []time.Duration {
	var out []time.Duration
	for _, p := range t.Points {
		if !p.Err && (kind == "" || p.Kind == kind) {
			out = append(out, p.Latency)
		}
	}
	return out
}

// MaxGap returns the longest interval between consecutive successful
// completions of a kind — the "gaps in the background stream" that show
// the Linux node stalling in Figures 6-8.
func (t *Timeline) MaxGap(kind string) time.Duration {
	var done []time.Duration
	for _, p := range t.Points {
		if !p.Err && (kind == "" || p.Kind == kind) {
			done = append(done, p.Sent+p.Latency)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	var max time.Duration
	for i := 1; i < len(done); i++ {
		if g := done[i] - done[i-1]; g > max {
			max = g
		}
	}
	return max
}

// Throughput is a throughput measurement: completed requests over a
// window.
type Throughput struct {
	Completed int
	Errors    int
	Window    time.Duration
}

// PerSecond returns completions per second.
func (t Throughput) PerSecond() float64 {
	if t.Window <= 0 {
		return 0
	}
	return float64(t.Completed) / t.Window.Seconds()
}

// Table renders rows of labeled values as an aligned text table —
// the experiment harnesses print paper tables with it.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
