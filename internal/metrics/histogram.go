// Fixed-bucket latency histograms: the production form of the
// evaluation's latency measurements. Where Summarize computes exact
// quantiles from a retained sample slice (fine for a bounded
// experiment), a Histogram is the streaming equivalent a live node
// exports — constant memory, lock-free writes, mergeable across
// shards.
//
// Observe is a bucket scan plus two atomic adds: no locks, no heap
// allocation, safe from any goroutine. A shared-nothing pool gives
// each shard its own histogram and merges snapshots on read, so the
// record path never contends.

package metrics

import (
	"sync/atomic"
	"time"
)

// LatencyBuckets are the histogram upper bounds, chosen to resolve the
// paper's three invocation paths: hot starts land around 100µs, warm
// starts near 1ms, cold starts at 5-20ms, and the tail buckets catch
// pressure-degraded or fault-delayed invocations. Fixed at compile
// time: pre-registered buckets are what keep Observe allocation-free.
var LatencyBuckets = [...]time.Duration{
	10 * time.Microsecond,
	20 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	200 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	5 * time.Second,
}

// NumBuckets counts the histogram's buckets including the implicit
// +Inf overflow bucket.
const NumBuckets = len(LatencyBuckets) + 1

// KeepaliveBuckets are the bounds for duration-valued (not
// latency-valued) histograms — keep-alive windows run seconds to
// hours, three orders of magnitude above invocation latencies. Same
// bucket count as LatencyBuckets: every Histogram shares one storage
// layout and only the bound table differs.
var KeepaliveBuckets = [len(LatencyBuckets)]time.Duration{
	1 * time.Second,
	5 * time.Second,
	10 * time.Second,
	20 * time.Second,
	30 * time.Second,
	45 * time.Second,
	1 * time.Minute,
	2 * time.Minute,
	3 * time.Minute,
	5 * time.Minute,
	10 * time.Minute,
	15 * time.Minute,
	30 * time.Minute,
	1 * time.Hour,
	2 * time.Hour,
	6 * time.Hour,
	24 * time.Hour,
}

// Histogram is a fixed-bucket, lock-free latency histogram. The zero
// value is ready to use. Buckets hold per-bucket (non-cumulative)
// counts; the exposition layer accumulates them into the cumulative
// form Prometheus expects.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration against the default latency bounds.
// Safe for concurrent use; never allocates.
func (h *Histogram) Observe(d time.Duration) {
	h.observe(&LatencyBuckets, d)
}

// observe records one duration against an explicit bound table (the
// Recorder picks per-Hist bounds; see boundsFor).
func (h *Histogram) observe(bounds *[len(LatencyBuckets)]time.Duration, d time.Duration) {
	i := 0
	for i < len(bounds) && d > bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(int64(d))
}

// Snapshot returns a point-in-time copy. Concurrent Observes may land
// between bucket reads; each bucket is individually exact and the
// snapshot is monotonically consistent with earlier snapshots.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.SumNanos = h.sum.Load()
	return s
}

// HistogramSnapshot is an immutable histogram reading; the mergeable
// unit a sharded pool aggregates on scrape.
type HistogramSnapshot struct {
	// Buckets are per-bucket counts; Buckets[i] counts observations in
	// (LatencyBuckets[i-1], LatencyBuckets[i]], with the final entry
	// the +Inf overflow.
	Buckets [NumBuckets]int64
	// SumNanos is the sum of all observed durations in nanoseconds.
	SumNanos int64
}

// Merge accumulates o into s. Element-wise addition, so merging is
// associative and commutative: any merge tree over the same shard
// snapshots yields the same aggregate.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.SumNanos += o.SumNanos
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}
