package metrics

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarizeBasic(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, ms(i))
	}
	s := Summarize(samples)
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Mean != ms(50)+500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Min != ms(1) || s.Max != ms(100) {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 < ms(50) || s.P50 > ms(51) {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < ms(98) || s.P99 > ms(100) {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.P1 < ms(1) || s.P1 > ms(3) {
		t.Errorf("p1 = %v", s.P1)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{ms(7)})
	if s.P1 != ms(7) || s.P50 != ms(7) || s.P99 != ms(7) || s.Mean != ms(7) {
		t.Errorf("single = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{ms(3), ms(1), ms(2)}
	Summarize(in)
	if in[0] != ms(3) || in[2] != ms(2) {
		t.Error("input reordered")
	}
}

func TestQuantileBounds(t *testing.T) {
	sorted := []time.Duration{ms(1), ms(2), ms(3)}
	if Quantile(sorted, -1) != ms(1) || Quantile(sorted, 0) != ms(1) {
		t.Error("low quantile")
	}
	if Quantile(sorted, 1) != ms(3) || Quantile(sorted, 2) != ms(3) {
		t.Error("high quantile")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	if q := Quantile(sorted, 0.5); q != ms(2) {
		t.Errorf("median = %v", q)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	prop := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, r := range raw {
			samples[i] = time.Duration(r) * time.Microsecond
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(samples, qa) <= Quantile(samples, qb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Add(Point{Sent: ms(0), Latency: ms(10), Kind: "background"})
	tl.Add(Point{Sent: ms(5), Latency: ms(20), Kind: "burst"})
	tl.Add(Point{Sent: ms(8), Latency: ms(1), Err: true, Kind: "burst"})
	tl.Add(Point{Sent: ms(100), Latency: ms(10), Kind: "background"})

	if tl.Count("") != 4 || tl.Count("burst") != 2 {
		t.Errorf("counts: %d %d", tl.Count(""), tl.Count("burst"))
	}
	if tl.Errors("") != 1 || tl.Errors("background") != 0 {
		t.Errorf("errors: %d %d", tl.Errors(""), tl.Errors("background"))
	}
	lats := tl.Latencies("background")
	if len(lats) != 2 || lats[0] != ms(10) {
		t.Errorf("latencies = %v", lats)
	}
	// Completions at 10ms and 110ms → max gap 100ms.
	if g := tl.MaxGap("background"); g != ms(100) {
		t.Errorf("gap = %v", g)
	}
}

func TestThroughput(t *testing.T) {
	th := Throughput{Completed: 500, Window: 10 * time.Second}
	if th.PerSecond() != 50 {
		t.Errorf("rate = %v", th.PerSecond())
	}
	if (Throughput{}).PerSecond() != 0 {
		t.Error("zero window")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"Isolation Method", "Rate", "Density"}}
	tab.AddRow("SEUSS UC", "128.6", "54000")
	tab.AddRow("Docker", "5.3", "3000")
	out := tab.String()
	if out == "" {
		t.Fatal("empty render")
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 4 { // header + separator + 2 rows
		t.Errorf("rendered %d lines:\n%s", lines, out)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]time.Duration{ms(1), ms(2)})
	if got := s.String(); got == "" {
		t.Error("empty string")
	}
}

func TestMaxGapEdgeCases(t *testing.T) {
	var tl Timeline
	if tl.MaxGap("") != 0 {
		t.Error("empty timeline gap")
	}
	tl.Add(Point{Sent: 0, Latency: ms(5)})
	if tl.MaxGap("") != 0 {
		t.Error("single-point gap")
	}
	// Errors are excluded from gap computation.
	tl.Add(Point{Sent: ms(100), Latency: ms(1), Err: true})
	if tl.MaxGap("") != 0 {
		t.Error("error contributed to gaps")
	}
}

func TestLatenciesExcludeErrors(t *testing.T) {
	var tl Timeline
	tl.Add(Point{Latency: ms(1)})
	tl.Add(Point{Latency: ms(2), Err: true})
	if got := tl.Latencies(""); len(got) != 1 || got[0] != ms(1) {
		t.Errorf("latencies = %v", got)
	}
}

func TestRobustnessAddAndString(t *testing.T) {
	var r Robustness
	if !r.Zero() || r.String() != "no faults" {
		t.Fatalf("zero ledger: zero=%v str=%q", r.Zero(), r.String())
	}
	r.Add(Robustness{Retries: 2, UCCrashes: 1})
	r.Add(Robustness{Retries: 1, BreakerTrips: 3, PressureColdFallbacks: 4})
	if r.Retries != 3 || r.BreakerTrips != 3 || r.UCCrashes != 1 || r.PressureColdFallbacks != 4 {
		t.Errorf("accumulated ledger = %+v", r)
	}
	if r.Zero() {
		t.Error("non-empty ledger reported zero")
	}
	s := r.String()
	for _, want := range []string{"retries=3", "breaker_trips=3", "uc_crashes=1", "pressure_cold_fallbacks=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "deadlines") {
		t.Errorf("String() = %q renders zero counters", s)
	}
}
