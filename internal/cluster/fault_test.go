package cluster

import (
	"errors"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// TestInvokeOnEmptyCluster: a memberless cluster rejects invocations
// with ErrNoNodes rather than panicking in the balancer.
func TestInvokeOnEmptyCluster(t *testing.T) {
	eng := sim.NewEngine()
	c := &Cluster{eng: eng, migrating: map[string]bool{}}
	var err error
	eng.Go("client", func(p *sim.Proc) {
		_, _, err = c.Invoke(p, core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"})
	})
	eng.Run()
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

// TestMigrationCorruptionFallsBackToHolder: a diff corrupted in flight
// fails the codec's checksum, the transfer is abandoned, and the
// holder serves the request — a failed migration never fails an
// invocation.
func TestMigrationCorruptionFallsBackToHolder(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Nodes:  2,
		Policy: PolicyMigrate,
		Faults: fault.Config{
			Schedule: map[fault.Point][]uint64{fault.PointSnapshotCorrupt: {1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{Key: "hotfn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req) // cold on one node

	// Concurrent load overloads the holder and triggers migration; the
	// first attempt hits the corruption schedule.
	done := 0
	for i := 0; i < 8; i++ {
		eng.Go("client", func(p *sim.Proc) {
			if _, _, err := c.Invoke(p, req); err != nil {
				t.Error(err)
				return
			}
			done++
		})
	}
	eng.Run()
	if done != 8 {
		t.Fatalf("served %d/8 under migration corruption", done)
	}
	st := c.Stats()
	if st.FailedMigrations != 1 {
		t.Errorf("FailedMigrations = %d, want 1 (scheduled corruption)", st.FailedMigrations)
	}
}

// TestClusterRetryRedeploysCrashedUC: a crashed UC consumes the retry
// budget, the balancer re-picks, and a fresh deploy from the immutable
// snapshot path serves the request — the caller never sees the crash.
func TestClusterRetryRedeploysCrashedUC(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Nodes:      2,
		MaxRetries: 2,
		// Every member's derived injector crashes its own first UC
		// invocation — so the retry must also survive landing on the
		// other, equally faulty, member before attempt three succeeds.
		Faults: fault.Config{
			Schedule: map[fault.Point][]uint64{fault.PointUCCrash: {1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}
	res, _ := invoke(t, c, eng, req)
	// The crashed cold attempt already captured the function snapshot
	// (SEUSS captures before first execution), so the successful retry
	// deploys warm from it — that IS the containment property.
	if res.Path != core.PathWarm && res.Path != core.PathCold {
		t.Errorf("retry path = %v, want warm (snapshot survived) or cold", res.Path)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded despite scheduled crashes")
	}
	// Backoff is real virtual time: at least the first 1 ms delay
	// elapsed on the cluster clock.
	if time.Duration(eng.Now()) < time.Millisecond {
		t.Errorf("clock = %v, want >= 1ms of backoff", time.Duration(eng.Now()))
	}
}

// TestClusterRetryBudgetExhausted: when every attempt crashes, the
// error surfaces after the budget — contained, so yet-higher layers
// may still retry — rather than looping forever.
func TestClusterRetryBudgetExhausted(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Nodes:      2,
		MaxRetries: 1,
		Faults: fault.Config{
			Schedule: map[fault.Point][]uint64{fault.PointUCCrash: {1, 2, 3, 4}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var invokeErr error
	eng.Go("client", func(p *sim.Proc) {
		_, _, invokeErr = c.Invoke(p, core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"})
	})
	eng.Run()
	if !errors.Is(invokeErr, core.ErrUCCrashed) {
		t.Fatalf("err = %v, want ErrUCCrashed", invokeErr)
	}
	if !fault.IsContained(invokeErr) {
		t.Error("exhausted-budget error lost its containment marker")
	}
	if c.Stats().Retries != 1 {
		t.Errorf("Retries = %d, want exactly the budget of 1", c.Stats().Retries)
	}
}

// TestClusterFaultDeterminism: the same cluster fault seed replays the
// same retry count, stats, and outcome.
func TestClusterFaultDeterminism(t *testing.T) {
	run := func() Stats {
		eng := sim.NewEngine()
		c, err := New(eng, Config{
			Nodes:      2,
			MaxRetries: 3,
			Faults:     fault.Config{Seed: 11, Rate: 0.25, Points: []fault.Point{fault.PointUCCrash}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			key := []string{"a/fn", "b/fn"}[i%2]
			eng.Go("client", func(p *sim.Proc) {
				_, _, err := c.Invoke(p, core.Request{Key: key, Source: workload.NOPSource, Args: "{}"})
				if err != nil && !fault.IsContained(err) {
					t.Errorf("uncontained error: %v", err)
				}
			})
			eng.Run()
		}
		return c.Stats()
	}
	st1 := run()
	st2 := run()
	if st1 != st2 {
		t.Fatalf("same seed, different cluster stats:\n%+v\n%+v", st1, st2)
	}
}
