package cluster

import (
	"bytes"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// overload floods the cluster with n concurrent requests for one key,
// enough to push the holder past the placer's slack and trigger
// replication.
func overload(t *testing.T, c *Cluster, eng *sim.Engine, req core.Request, n int) {
	t.Helper()
	done := 0
	for i := 0; i < n; i++ {
		eng.Go("client", func(p *sim.Proc) {
			if _, _, err := c.Invoke(p, req); err != nil {
				t.Error(err)
				return
			}
			done++
		})
	}
	eng.Run()
	if done != n {
		t.Fatalf("served %d/%d", done, n)
	}
}

// TestFabricBaseLayerDedup is the dedup acceptance test: across an
// N-node fabric, the runtime base layer is stored exactly once per node
// (byte-identical by digest cluster-wide) and a replication fetch ships
// only the function's diff layer — never the base.
func TestFabricBaseLayerDedup(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 3, Policy: PolicyMigrate, SnapDir: t.TempDir()})
	req := core.Request{Key: "hotfn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req) // cold once, on one node
	overload(t, c, eng, req, 8)

	st := c.Stats()
	if st.Fetches == 0 {
		t.Fatal("no layer fetches under concurrent load on the fabric")
	}
	if st.Migrations != 0 {
		t.Errorf("fabric replication fell back to %d whole-diff migrations", st.Migrations)
	}
	if st.LayerDedups == 0 {
		t.Error("no layers deduped: the base was re-shipped")
	}

	base, ok := c.Members()[0].Store.Layer("runtime/nodejs")
	if !ok {
		t.Fatal("node 0 tier missing the seeded runtime layer")
	}
	if st.FetchedBytes <= 0 || st.FetchedBytes >= base.Size {
		t.Errorf("fetch moved %d bytes; want (0, %d): only the diff layer ships", st.FetchedBytes, base.Size)
	}

	// Every node stores the base exactly once, and all three copies are
	// byte-identical (same content digest) — counted in bytes on disk
	// via the tier's unique-file stats.
	for _, m := range c.Members() {
		copies := 0
		for _, l := range m.Store.Manifest() {
			if l.Digest == base.Digest {
				copies++
			}
		}
		if copies != 1 {
			t.Errorf("node %d holds %d copies of the base digest, want 1", m.ID, copies)
		}
		ts := m.Store.Stats()
		if ts.DiskFiles != len(m.Store.Manifest()) {
			t.Errorf("node %d: %d disk files for %d layers (unexpected duplication)", m.ID, ts.DiskFiles, len(m.Store.Manifest()))
		}
		if ts.DiskBytes < base.Size || ts.DiskBytes >= 2*base.Size {
			t.Errorf("node %d: %d disk bytes; want exactly one %d-byte base plus small diffs", m.ID, ts.DiskBytes, base.Size)
		}
	}

	// The replica is real: two nodes now hold the function in RAM.
	if len(c.Holders("hotfn")) < 2 {
		t.Errorf("holders = %v, want 2 after fetch", c.Holders("hotfn"))
	}
}

// TestFabricPlacementRoutesToHolder: an invocation whose lineage lives
// on node A routes to A, even when other nodes are equally idle.
func TestFabricPlacementRoutesToHolder(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 3, Policy: PolicyMigrate, SnapDir: t.TempDir()})
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}
	_, home := invoke(t, c, eng, req)
	for i := 0; i < 6; i++ {
		res, n := invoke(t, c, eng, req)
		if n != home {
			t.Fatalf("invocation %d placed on node %d, want holder %d", i, n, home)
		}
		if res.Path == core.PathCold {
			t.Fatalf("invocation %d went cold on the holder", i)
		}
	}
	if st := c.Stats(); st.ClusterColds != 1 {
		t.Errorf("cluster colds = %d, want 1", st.ClusterColds)
	}
}

// TestFabricFetchCorruptionFallsBackToHolder: a layer corrupted on the
// wire fails verification at the destination tier (codec CRC), the
// fetch is abandoned, and the holder serves — a failed fetch never
// fails an invocation.
func TestFabricFetchCorruptionFallsBackToHolder(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 2, Policy: PolicyMigrate, SnapDir: t.TempDir(),
		Faults: fault.Config{
			Schedule: map[fault.Point][]uint64{fault.PointSnapshotCorrupt: {1}},
		},
	})
	req := core.Request{Key: "hotfn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req)
	overload(t, c, eng, req, 8)
	st := c.Stats()
	if st.FailedFetches != 1 {
		t.Errorf("FailedFetches = %d, want 1 (scheduled corruption)", st.FailedFetches)
	}
	if st.LayerDedups == 0 {
		t.Error("base layer still deduped before the corrupt diff, want >= 1")
	}
}

// TestFabricFetchDropRetransmits: an injected fetch packet drop costs
// one retransmit RTT and the transfer still completes.
func TestFabricFetchDropRetransmits(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 2, Policy: PolicyMigrate, SnapDir: t.TempDir(),
		Faults: fault.Config{
			Schedule: map[fault.Point][]uint64{fault.PointFetchDrop: {1}},
		},
	})
	req := core.Request{Key: "hotfn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req)
	overload(t, c, eng, req, 8)
	st := c.Stats()
	if st.FetchRetransmits != 1 {
		t.Errorf("FetchRetransmits = %d, want 1", st.FetchRetransmits)
	}
	if st.Fetches == 0 {
		t.Error("dropped packet aborted the fetch; want retransmit + completion")
	}
	if st.FailedFetches != 0 {
		t.Errorf("FailedFetches = %d after a plain drop, want 0", st.FailedFetches)
	}
}

// TestFabricGossipDropKeepsViewStale: a dropped manifest exchange
// leaves that member's view stale for the round; the round still
// completes and the next one recovers.
func TestFabricGossipDropKeepsViewStale(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 2, GossipInterval: time.Nanosecond, SnapDir: t.TempDir(),
		Faults: fault.Config{
			Schedule: map[fault.Point][]uint64{fault.PointGossipDrop: {1}},
		},
	})
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req)
	st := c.Stats()
	if st.GossipRounds != 1 || st.GossipDrops != 1 {
		t.Fatalf("rounds = %d, drops = %d; want 1, 1", st.GossipRounds, st.GossipDrops)
	}
	// Node 0's report was dropped, node 1's landed: half the view
	// refreshed.
	if g := c.View().Generation(); g != 1 {
		t.Errorf("view generation = %d, want 1 (one member refreshed)", g)
	}
	// The next invocation gossips again (1 ns interval) with no
	// scheduled drop left; both members refresh.
	invoke(t, c, eng, req)
	st = c.Stats()
	if st.GossipRounds < 2 || st.GossipDrops != 1 {
		t.Errorf("rounds = %d, drops = %d after recovery; want >= 2, 1", st.GossipRounds, st.GossipDrops)
	}
	if g := c.View().Generation(); g < 3 {
		t.Errorf("view generation = %d, want >= 3 after a full round", g)
	}
}

// TestStaleDirectoryPrunedAndCounted: when a holder evicts a snapshot
// between gossip rounds, the placement verifier catches the lie, counts
// it, prunes the entry, and re-places the request — which then recovers
// (cold again) instead of failing.
func TestStaleDirectoryPrunedAndCounted(t *testing.T) {
	cfg := Config{Nodes: 2, GossipInterval: time.Hour} // gossip never repairs the view
	cfg.NodeConfig = core.DefaultConfig()
	cfg.NodeConfig.MemoryBytes = 170 << 20
	c, eng := newCluster(t, cfg)

	victim := core.Request{Key: "victim", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, victim)
	// Flood both nodes with other functions to force eviction of
	// "victim" everywhere; the hour-long gossip interval means the view
	// still lists the original holder.
	for i := 0; i < 40; i++ {
		req := core.Request{Key: "filler" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Source: workload.NOPSource, Args: "{}"}
		invoke(t, c, eng, req)
	}
	res, _ := invoke(t, c, eng, victim)
	if res.Output == "" {
		t.Error("stale directory broke the invocation")
	}
	st := c.Stats()
	if st.StaleDirectory == 0 {
		t.Error("stale entry served without being counted and pruned")
	}
	if len(c.Holders("victim")) != 1 {
		t.Errorf("holders after prune + re-serve = %v, want exactly the new server", c.Holders("victim"))
	}
}

// TestFabricShipsWorkingSetSidecar: the working-set record a holder
// harvests on its first lukewarm restore rides the replication fetch,
// so the replica's own first lukewarm restore prefetches instead of
// re-recording.
func TestFabricShipsWorkingSetSidecar(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 2, Policy: PolicyMigrate, SnapDir: t.TempDir(), RejoinLazy: true,
	})
	req := core.Request{Key: "hotfn", Source: workload.NOPSource, Args: "{}"}
	_, home := invoke(t, c, eng, req) // cold on the home node
	var h *Member
	for _, m := range c.Members() {
		if m.ID == home {
			h = m
		}
	}

	// Persist the lineage, lose the home node's RAM, and rejoin lazily:
	// the next request restores lukewarm and records the working set.
	if h.Node.FlushSnapshots(nil) == 0 {
		t.Fatal("holder flushed nothing")
	}
	restart := func(id int) {
		if !c.Crash(id) {
			t.Fatalf("member %d would not crash", id)
		}
		var err error
		eng.Go("ops", func(p *sim.Proc) { err = c.Restart(p, id) })
		eng.Run()
		if err != nil {
			t.Fatalf("restart member %d: %v", id, err)
		}
	}
	restart(home)
	res, n2 := invoke(t, c, eng, req)
	if n2 != home || res.Path != core.PathLukewarm {
		t.Fatalf("recording restore: node=%d path=%v, want holder %d lukewarm", n2, res.Path, home)
	}
	if st := h.Node.Stats(); st.WSRecorded != 1 {
		t.Fatalf("holder recorded %d working sets, want 1", st.WSRecorded)
	}
	layer, ok := h.Store.Layer("fn/hotfn")
	if !ok {
		t.Fatal("holder tier missing the fn diff layer")
	}
	rec, ok := h.Store.WorkingSetForDigest(layer.Digest)
	if !ok {
		t.Fatal("holder tier missing the sidecar the harvest just wrote")
	}

	// Replicate under load; the sidecar piggybacks on the layer fetch.
	overload(t, c, eng, req, 8)
	if c.Stats().Fetches == 0 {
		t.Fatal("no replication fetch; sidecar shipping untested")
	}
	var replica *Member
	for _, m := range c.Members() {
		if m.ID == home {
			continue
		}
		if got, ok := m.Store.WorkingSetForDigest(layer.Digest); ok {
			if !bytes.Equal(got, rec) {
				t.Fatalf("shipped sidecar differs: %d vs %d bytes", len(got), len(rec))
			}
			replica = m
		}
	}
	if replica == nil {
		t.Fatal("no replica received the working-set sidecar")
	}

	// The replica's own first lukewarm restore replays the shipped
	// record: pages prefetch, nothing is re-recorded.
	if replica.Node.FlushSnapshots(nil) == 0 {
		t.Fatal("replica flushed nothing")
	}
	restart(replica.ID)
	var rres core.Result
	var rerr error
	eng.Go("client", func(p *sim.Proc) {
		rres, rerr = replica.Node.Invoke(p, req)
	})
	eng.Run()
	if rerr != nil || rres.Path != core.PathLukewarm {
		t.Fatalf("replica restore: path=%v err=%v", rres.Path, rerr)
	}
	st := replica.Node.Stats()
	if st.WSPrefetchedPages == 0 {
		t.Errorf("replica restored without prefetching the shipped record: %+v", st)
	}
	if st.WSRecorded != 0 {
		t.Errorf("replica re-recorded over the shipped record: %+v", st)
	}
}
