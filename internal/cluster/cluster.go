// Package cluster implements the paper's §9 future work: DR-SEUSS, a
// distributed and replicated global snapshot cache spanning compute
// nodes.
//
// The enabling properties are exactly the ones §9 names: snapshots are
// read-only, and every UC is configured with an identical network
// identity, so a snapshot captured on one node can be cloned and
// deployed on any node with the same base runtime snapshot. Placement
// lives in internal/sched: the cluster feeds the placer a gossiped view
// of which node holds which lineage, verifies its decision against
// ground truth (pruning stale entries), and executes the mechanics —
// route to a holder, migrate a whole diff, or, when both ends run the
// content-addressed snapshot fabric (Config.SnapDir), fetch only the
// stack layers the destination is missing. Identical base layers dedupe
// by FNV-64a digest and are stored once per node, so a function is cold
// at most once per *cluster* and its runtime image ships zero times.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/mem"
	"seuss/internal/metrics"
	"seuss/internal/sched"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/snapstore"
	"seuss/internal/trace"
)

// ErrNoNodes is returned when the cluster has no members.
var ErrNoNodes = errors.New("cluster: no nodes")

// Policy selects how a node without a local snapshot exploits a remote
// holder. It is shorthand for the two built-in placers; Config.Placer
// overrides it entirely.
type Policy int

const (
	// PolicyRoute forwards the request to a node that already holds
	// the snapshot (cheap, but hotspots the holder).
	PolicyRoute Policy = iota
	// PolicyMigrate replicates the snapshot to the chosen node when the
	// holder is overloaded — by layer fetch on the fabric, by whole-diff
	// migration otherwise (pays one transfer, then the function is warm
	// on both nodes).
	PolicyMigrate
)

var policyNames = [...]string{"route", "migrate"}

// String implements fmt.Stringer.
func (p Policy) String() string { return policyNames[p] }

// Config parameterizes the cluster.
type Config struct {
	// Nodes is the member count.
	Nodes int
	// NodeConfig configures each member identically ("similar hardware
	// profiles").
	NodeConfig core.Config
	// Policy picks route-vs-replicate on remote snapshot hits (default
	// PolicyMigrate — the replicated cache of §9). Ignored when Placer
	// is set.
	Policy Policy
	// Placer overrides the placement policy entirely (default: a
	// sched.LocalityPlacer configured from Policy).
	Placer sched.Placer
	// LinkBandwidth is the inter-node network bandwidth
	// (default 10 Gb/s, the paper's testbed fabric).
	LinkBandwidth float64 // bytes/second
	// LinkRTT is the inter-node round trip (default 150 µs).
	LinkRTT time.Duration
	// GossipInterval is how often (in virtual time) members exchange
	// snapshot manifests with the scheduler view (default 10 ms). The
	// exchange is lazy — it piggybacks on the next Invoke past the
	// deadline — so an idle cluster gossips nothing.
	GossipInterval time.Duration
	// SnapDir enables the content-addressed snapshot fabric: each member
	// gets a disk tier at SnapDir/node<i>, seeded with byte-identical
	// runtime base layers, and locality misses fetch only missing stack
	// layers instead of migrating whole diffs. Empty disables the fabric
	// (node-local behavior, migrate-only replication).
	SnapDir string
	// SnapDiskCap bounds each member's tier in bytes (0 = unlimited).
	SnapDiskCap int64
	// MaxRetries is the retry budget for contained faults: after a
	// member fails an invocation with a contained error, the cluster
	// re-picks a member and retries up to MaxRetries times (default 0 =
	// fail fast). Uncontained errors are never retried.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 1 ms).
	RetryBackoff time.Duration
	// Faults configures deterministic fault injection. The cluster
	// keeps the base injector for fabric-level points (snapshot
	// corruption, gossip and fetch drops); each member node derives a
	// private child injector for node-level points (UC crashes), unless
	// NodeConfig already carries one.
	Faults fault.Config
	// Metrics receives cluster-level counters (scheduler placements,
	// gossip, layer transfers); shared with members whose NodeConfig
	// carries none. Nil disables.
	Metrics *metrics.Recorder
	// Tracer receives cluster-level spans (gossip, fetch, stale prunes);
	// shared with members whose NodeConfig carries none. Nil disables.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 10e9 / 8 // 10 GbE
	}
	if c.LinkRTT == 0 {
		c.LinkRTT = 150 * time.Microsecond
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 10 * time.Millisecond
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	return c
}

// Stats counts cluster-level behavior.
type Stats struct {
	// LocalHits served from the chosen node's own caches.
	LocalHits int64
	// RemoteRoutes forwarded to a holder node.
	RemoteRoutes int64
	// Migrations pulled a whole snapshot diff across the fabric.
	Migrations int64
	// MigratedBytes is the total whole-diff traffic.
	MigratedBytes int64
	// Fetches replicated a function by shipping only its missing stack
	// layers from a holder's tier.
	Fetches int64
	// FetchedBytes is the total layer traffic (deduped layers ship 0).
	FetchedBytes int64
	// LayerDedups counts stack layers a fetch skipped because the
	// destination already held identical content (by digest).
	LayerDedups int64
	// FailedFetches counts layer fetches abandoned mid-flight (missing
	// source, rejected verification — including injected corruption — or
	// promote failure); each fell back to serving from the holder.
	FailedFetches int64
	// FetchRetransmits counts injected fetch packet drops (each cost one
	// extra RTT).
	FetchRetransmits int64
	// ClusterColds are first-in-cluster cold paths.
	ClusterColds int64
	// Retries counts re-picked invocations after contained faults.
	Retries int64
	// FailedMigrations counts diff transfers abandoned mid-flight
	// (export, decode — including injected corruption — or graft
	// failure); each fell back to serving from the holder.
	FailedMigrations int64
	// StaleDirectory counts placements that tripped over a holder that
	// no longer had the snapshot; the entry was pruned and the request
	// re-placed.
	StaleDirectory int64
	// GossipRounds counts completed manifest-exchange rounds.
	GossipRounds int64
	// GossipDrops counts member exchanges lost to injected faults (the
	// view stays stale for that member until the next round).
	GossipDrops int64
}

// Member is one compute node in the cluster.
type Member struct {
	ID   int
	Node *core.Node
	// Store is the member's content-addressed disk tier; nil unless the
	// fabric is enabled (Config.SnapDir).
	Store    *snapstore.Store
	inflight int
}

// Cluster is a DR-SEUSS deployment.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	members []*Member
	// view is the scheduler's shared residency/manifest state, refreshed
	// by gossip and updated synchronously on transfers the cluster
	// itself performs.
	view *sched.View
	// placer turns the view plus load state into placement decisions. It
	// is single-writer: only the cluster touches it.
	placer sched.Placer
	// migrating tracks in-flight transfers per function so concurrent
	// requests do not re-ship the same pages.
	migrating map[string]bool
	stats     Stats
	// faults is the fabric-level injector (nil when disabled).
	faults *fault.Injector
	rec    *metrics.Recorder
	tr     *trace.Tracer

	lastGossip sim.Time
	gossiped   bool
	scratch    []sched.NodeState // reused placement input
}

// New boots n identical nodes and links them.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, ErrNoNodes
	}
	placer := cfg.Placer
	if placer == nil {
		placer = &sched.LocalityPlacer{Replicate: cfg.Policy == PolicyMigrate}
	}
	c := &Cluster{
		eng:       eng,
		cfg:       cfg,
		view:      sched.NewView(cfg.Nodes),
		placer:    placer,
		migrating: make(map[string]bool),
		faults:    fault.New(cfg.Faults),
		rec:       cfg.Metrics,
		tr:        cfg.Tracer,
	}

	base := cfg.NodeConfig
	if base.Cores == 0 && base.MemoryBytes == 0 && !base.NetworkAO && !base.InterpreterAO && !base.DisableAO {
		base = core.DefaultConfig()
	}

	// With the fabric on, every member's tier is seeded from ONE
	// canonical boot per runtime: the encoded base layers are
	// byte-identical across nodes, so they share one FNV-64a digest
	// cluster-wide and a fetch never re-ships them.
	var seeds map[string][]byte
	if cfg.SnapDir != "" {
		seeds = make(map[string][]byte)
		for _, name := range base.Normalized().Runtimes {
			snap, err := core.BootRuntime(mem.NewStore(0), base, name)
			if err != nil {
				return nil, fmt.Errorf("cluster: seed runtime %q: %w", name, err)
			}
			var buf bytes.Buffer
			err = snap.Export(&buf)
			snap.Delete()
			if err != nil {
				return nil, fmt.Errorf("cluster: seed runtime %q: %w", name, err)
			}
			seeds["runtime/"+name] = buf.Bytes()
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		nc := base
		nc.Seed = nc.Seed + int64(i)
		if nc.Faults == nil {
			// Child(i+1) keeps member injectors distinct from the
			// cluster's own (Child(0) would alias the base seed).
			nc.Faults = fault.New(cfg.Faults.Child(i + 1))
		}
		if nc.Metrics == nil {
			nc.Metrics = cfg.Metrics
		}
		if nc.Tracer == nil {
			nc.Tracer = cfg.Tracer
		}
		var store *snapstore.Store
		if cfg.SnapDir != "" {
			capBytes := cfg.SnapDiskCap
			if capBytes == 0 {
				capBytes = -1
			}
			var err error
			store, err = snapstore.Open(filepath.Join(cfg.SnapDir, fmt.Sprintf("node%d", i)), capBytes)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d tier: %w", i, err)
			}
			for key, enc := range seeds {
				if err := store.Put(key, "", enc); err != nil {
					return nil, fmt.Errorf("cluster: node %d seed %q: %w", i, key, err)
				}
			}
			nc.SnapStore = store
		}
		node, err := core.NewNode(eng, nc)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.members = append(c.members, &Member{ID: i, Node: node, Store: store})
		c.view.SetFabric(i, store != nil)
	}
	return c, nil
}

// Members returns the cluster's nodes.
func (c *Cluster) Members() []*Member { return c.members }

// Stats returns cluster counters.
func (c *Cluster) Stats() Stats { return c.stats }

// View returns the scheduler's shared state (safe for concurrent use).
func (c *Cluster) View() *sched.View { return c.view }

// Holders returns the nodes the scheduler believes hold a function's
// snapshot in RAM, in ascending node order.
func (c *Cluster) Holders(key string) []int {
	return c.view.ResidentHolders(key)
}

// transferTime models shipping bytes across the fabric.
func (c *Cluster) transferTime(bytes int64) time.Duration {
	return c.cfg.LinkRTT + time.Duration(float64(bytes)/c.cfg.LinkBandwidth*float64(time.Second))
}

// isLeastLoaded reports whether no member carries less than m.
func (c *Cluster) isLeastLoaded(m *Member) bool {
	for _, o := range c.members {
		if o.inflight < m.inflight {
			return false
		}
	}
	return true
}

// Invoke services one invocation somewhere in the cluster and returns
// the result plus the serving node's ID. A contained fault (UC crash,
// deadline kill, shard stall — anything the fault taxonomy marks
// retryable) consumes the retry budget: the cluster backs off,
// re-picks a member, and tries again, so a crashed UC is redeployed
// from its immutable snapshot rather than surfacing to the caller.
// Uncontained (deterministic) failures fail fast.
func (c *Cluster) Invoke(p *sim.Proc, req core.Request) (core.Result, int, error) {
	if len(c.members) == 0 {
		return core.Result{}, -1, ErrNoNodes
	}
	c.maybeGossip()
	backoff := c.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		target := c.pick(p, req)
		target.inflight++
		res, err := target.Node.Invoke(p, req)
		target.inflight--
		if err == nil {
			c.view.MarkResident(target.ID, req.Key)
			return res, target.ID, nil
		}
		if attempt >= c.cfg.MaxRetries || !fault.IsContained(err) {
			return core.Result{}, target.ID, err
		}
		c.stats.Retries++
		p.Sleep(backoff)
		backoff *= 2
	}
}

// maybeGossip runs a manifest-exchange round if the interval elapsed:
// every member reports its RAM-resident snapshot keys and (on the
// fabric) its tier manifest, wholesale-replacing the scheduler view.
// The exchange itself is metadata-sized and charges no virtual time; an
// injected PointGossipDrop loses one member's report, leaving its view
// stale until the next round.
func (c *Cluster) maybeGossip() {
	now := c.eng.Now()
	if c.gossiped && now.Sub(c.lastGossip) < c.cfg.GossipInterval {
		return
	}
	c.gossiped = true
	c.lastGossip = now
	for _, m := range c.members {
		if c.faults.Fire(fault.PointGossipDrop) {
			c.stats.GossipDrops++
			c.rec.Inc(metrics.CtrGossipDrops)
			c.tr.Record(trace.Event{
				At: time.Duration(now), Kind: trace.KindFault, ID: uint64(m.ID),
				Key: "gossip", Detail: "manifest exchange dropped; view stays stale one round",
			})
			continue
		}
		var layers []sched.Layer
		if m.Store != nil {
			for _, l := range m.Store.Manifest() {
				layers = append(layers, sched.Layer{Key: l.Key, Base: l.Base, Digest: l.Digest, Size: l.Size})
			}
		}
		c.view.Refresh(m.ID, m.Node.SnapshotKeys(), layers)
	}
	c.stats.GossipRounds++
	c.rec.Inc(metrics.CtrGossipRounds)
	c.tr.Record(trace.Event{
		At: time.Duration(now), Kind: trace.KindGossip,
		Detail: fmt.Sprintf("round %d, view gen %d", c.stats.GossipRounds, c.view.Generation()),
	})
}

// pruneStale drops a scheduler entry the placement verifier caught
// lying — the holder no longer has the snapshot (RAM or tier) — so the
// next placement does not re-hit it.
func (c *Cluster) pruneStale(node int, key, lineage string) {
	c.view.DropResident(node, key)
	c.view.DropLayer(node, lineage)
	c.stats.StaleDirectory++
	c.rec.Inc(metrics.CtrSchedStaleEntries)
	c.tr.Record(trace.Event{
		At: time.Duration(c.eng.Now()), Kind: trace.KindStale, ID: uint64(node),
		Key: key, Detail: "holder no longer resident; entry pruned, request re-placed",
	})
}

// pick asks the placer for a decision, verifies it against node ground
// truth (the view may lag gossip), prunes stale entries, and executes
// the transfer mechanics. Bounded re-placement: after one prune per
// member the request serves cold rather than looping.
func (c *Cluster) pick(p *sim.Proc, req core.Request) *Member {
	lineage := "fn/" + req.Key
	for tries := 0; ; tries++ {
		c.scratch = c.scratch[:0]
		for _, m := range c.members {
			c.scratch = append(c.scratch, sched.NodeState{ID: m.ID, Inflight: m.inflight, Healthy: true})
		}
		pl := c.placer.Place(sched.Request{Key: req.Key, Lineage: lineage, Nodes: c.scratch, View: c.view})

		switch pl.Action {
		case sched.ActionCold:
			c.stats.ClusterColds++
			c.rec.Inc(metrics.CtrSchedPlacementsCold)
			return c.members[pl.Node]

		case sched.ActionRoute:
			holder := c.members[pl.Node]
			if holder.Node.HasSnapshot(req.Key) || holder.Node.HasIdleUC(req.Key) ||
				(holder.Store != nil && holder.Store.Has(lineage)) {
				c.rec.Inc(metrics.CtrSchedPlacementsRoute)
				c.stats.LocalHitsOrRoute(c.isLeastLoaded(holder))
				return holder
			}
			if tries >= len(c.members) {
				c.stats.ClusterColds++
				c.rec.Inc(metrics.CtrSchedPlacementsCold)
				return holder
			}
			c.pruneStale(holder.ID, req.Key, lineage)

		case sched.ActionFetch, sched.ActionMigrate:
			holder, dst := c.members[pl.Holder], c.members[pl.Node]
			if !holder.Node.HasSnapshot(req.Key) {
				if tries >= len(c.members) {
					c.stats.ClusterColds++
					c.rec.Inc(metrics.CtrSchedPlacementsCold)
					return dst
				}
				c.pruneStale(holder.ID, req.Key, lineage)
				continue
			}
			if c.migrating[req.Key] {
				// A racer is already shipping this function: serve from
				// the holder rather than double-transferring.
				c.rec.Inc(metrics.CtrSchedPlacementsRoute)
				c.stats.LocalHitsOrRoute(false)
				return holder
			}
			c.migrating[req.Key] = true
			var target *Member
			if pl.Action == sched.ActionFetch {
				c.rec.Inc(metrics.CtrSchedPlacementsFetch)
				target = c.fetchLayers(p, holder, dst, req.Key)
			} else {
				c.rec.Inc(metrics.CtrSchedPlacementsMigrate)
				target = c.migrate(p, holder, dst, req.Key)
			}
			delete(c.migrating, req.Key)
			return target
		}
	}
}

// migrate ships the holder's snapshot diff to dst over the fabric and
// grafts it. On any failure — including an injected wire corruption
// that the decoder rejects — the transfer is abandoned and the holder
// serves the request instead: migration failure degrades to routing,
// never to a failed invocation.
func (c *Cluster) migrate(p *sim.Proc, holder, dst *Member, key string) *Member {
	var wire bytes.Buffer
	if err := holder.Node.ExportSnapshot(key, &wire); err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	// Fault point: the diff is corrupted in flight. Truncating the wire
	// image makes the codec's decode fail, exercising the same path a
	// checksum mismatch would take on real hardware.
	if c.faults.Fire(fault.PointSnapshotCorrupt) {
		wire.Truncate(wire.Len() / 2)
	}
	// Decode without copying: the diff aliases wire's bytes, which stay
	// live until AdoptDiff has grafted (copied) them into local frames.
	diff, err := snapshot.ImportBytes(wire.Bytes())
	if err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	// Ship the logical page volume: unmaterialized pages travel as one
	// byte in the simulation but stand in for real content.
	n := diff.LogicalBytes()
	p.Sleep(c.transferTime(n))
	if err := dst.Node.AdoptDiff(p, key, diff); err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	c.stats.Migrations++
	c.stats.MigratedBytes += n
	c.view.MarkResident(dst.ID, key)
	return dst
}

// fetchLayers replicates a function to dst by shipping only the stack
// layers dst's tier is missing, base-most first. The holder flushes the
// lineage to its own tier (metadata-only when the bytes are unchanged),
// then each layer either dedupes by digest (identical content already
// on dst — the runtime base always does, shipping zero bytes) or
// travels CRC-protected: a fetched layer must decode through the codec,
// name the key it claims, and match the advertised digest before dst's
// tier accepts it. Any failure abandons the fetch and the holder serves
// — fetch failure degrades to routing, never to a failed invocation.
func (c *Cluster) fetchLayers(p *sim.Proc, holder, dst *Member, key string) *Member {
	lineage := "fn/" + key
	start := c.eng.Now()
	if !holder.Node.FlushLineage(p, key) && !holder.Store.Has(lineage) {
		c.stats.FailedFetches++
		return holder
	}
	stack := holder.Store.Stack(lineage)
	if len(stack) == 0 {
		c.stats.FailedFetches++
		return holder
	}
	var moved int64
	fetched, deduped := 0, 0
	for i := len(stack) - 1; i >= 0; i-- {
		lk := stack[i]
		layer, ok := holder.Store.Layer(lk)
		if !ok {
			c.stats.FailedFetches++
			return holder
		}
		if have, ok := dst.Store.Layer(lk); ok && have.Digest == layer.Digest {
			// Same key, same content: nothing ships.
			c.stats.LayerDedups++
			c.rec.Inc(metrics.CtrFabricLayersDeduped)
			deduped++
			continue
		}
		if dst.Store.HasDigest(layer.Digest) && dst.Store.LinkDigest(lk, layer.Base, layer.Digest) == nil {
			// Identical content under another name: link, ship nothing.
			c.stats.LayerDedups++
			c.rec.Inc(metrics.CtrFabricLayersDeduped)
			deduped++
			continue
		}
		data, err := holder.Store.Get(lk)
		if err != nil {
			c.stats.FailedFetches++
			return holder
		}
		// Copy before mutating: Get's single-flight shares the backing
		// slice with concurrent readers.
		wire := append([]byte(nil), data...)
		if c.faults.Fire(fault.PointFetchDrop) {
			// One dropped packet: pay a retransmit RTT and continue.
			c.stats.FetchRetransmits++
			p.Sleep(c.cfg.LinkRTT)
		}
		if c.faults.Fire(fault.PointSnapshotCorrupt) {
			wire[len(wire)/2] ^= 0xff
		}
		p.Sleep(c.transferTime(int64(len(wire))))
		if err := dst.Store.PutFetched(lk, layer.Base, wire, layer.Digest); err != nil {
			c.stats.FailedFetches++
			c.rec.Inc(metrics.CtrFabricLayersRejected)
			c.tr.Record(trace.Event{
				At: time.Duration(c.eng.Now()), Kind: trace.KindFault, ID: uint64(dst.ID),
				Key: lk, Detail: fmt.Sprintf("fetched layer rejected: %v; holder serves", err),
			})
			return holder
		}
		moved += int64(len(wire))
		fetched++
		c.rec.Inc(metrics.CtrFabricLayersFetched)
	}
	if err := dst.Node.PromoteLineage(p, lineage); err != nil {
		c.stats.FailedFetches++
		return holder
	}
	c.stats.Fetches++
	c.stats.FetchedBytes += moved
	c.view.MarkResident(dst.ID, key)
	now := c.eng.Now()
	c.tr.Record(trace.Event{
		At: time.Duration(start), Dur: time.Duration(now - start),
		Kind: trace.KindFetch, ID: uint64(dst.ID), Key: key,
		Path:   "fetch",
		Detail: fmt.Sprintf("%d layers fetched (%d deduped), %.1f KB from node %d", fetched, deduped, float64(moved)/1e3, holder.ID),
	})
	return dst
}

// LocalHitsOrRoute records a directory hit.
func (s *Stats) LocalHitsOrRoute(local bool) {
	if local {
		s.LocalHits++
	} else {
		s.RemoteRoutes++
	}
}
