// Package cluster implements the paper's §9 future work: DR-SEUSS, a
// distributed and replicated global snapshot cache spanning compute
// nodes.
//
// The enabling properties are exactly the ones §9 names: snapshots are
// read-only, and every UC is configured with an identical network
// identity, so a snapshot captured on one node can be cloned and
// deployed on any node with the same base runtime snapshot. The cluster
// keeps a directory mapping function keys to holder nodes; on a
// directory hit the request is either routed to a holder or the
// page-level diff is migrated over the cluster network (10 GbE in the
// paper's testbed) and grafted onto the local base image, whichever the
// policy prefers. Either way, a function is cold at most once per
// *cluster* rather than once per node.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
)

// ErrNoNodes is returned when the cluster has no members.
var ErrNoNodes = errors.New("cluster: no nodes")

// Policy selects how a node without a local snapshot exploits a remote
// holder.
type Policy int

const (
	// PolicyRoute forwards the request to a node that already holds
	// the snapshot (cheap, but hotspots the holder).
	PolicyRoute Policy = iota
	// PolicyMigrate pulls the snapshot diff to the chosen node and
	// deploys locally (pays one transfer, then the function is warm on
	// both nodes).
	PolicyMigrate
)

var policyNames = [...]string{"route", "migrate"}

// String implements fmt.Stringer.
func (p Policy) String() string { return policyNames[p] }

// Config parameterizes the cluster.
type Config struct {
	// Nodes is the member count.
	Nodes int
	// NodeConfig configures each member identically ("similar hardware
	// profiles").
	NodeConfig core.Config
	// Policy picks route-vs-migrate on remote snapshot hits (default
	// PolicyMigrate — the replicated cache of §9).
	Policy Policy
	// LinkBandwidth is the inter-node network bandwidth
	// (default 10 Gb/s, the paper's testbed fabric).
	LinkBandwidth float64 // bytes/second
	// LinkRTT is the inter-node round trip (default 150 µs).
	LinkRTT time.Duration
	// MaxRetries is the retry budget for contained faults: after a
	// member fails an invocation with a contained error, the cluster
	// re-picks a member and retries up to MaxRetries times (default 0 =
	// fail fast). Uncontained errors are never retried.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 1 ms).
	RetryBackoff time.Duration
	// Faults configures deterministic fault injection. The cluster
	// keeps the base injector for fabric-level points (snapshot
	// corruption mid-migrate); each member node derives a private child
	// injector for node-level points (UC crashes), unless NodeConfig
	// already carries one.
	Faults fault.Config
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 10e9 / 8 // 10 GbE
	}
	if c.LinkRTT == 0 {
		c.LinkRTT = 150 * time.Microsecond
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	return c
}

// Stats counts cluster-level behavior.
type Stats struct {
	// LocalHits served from the chosen node's own caches.
	LocalHits int64
	// RemoteRoutes forwarded to a holder node.
	RemoteRoutes int64
	// Migrations pulled a snapshot diff across the fabric.
	Migrations int64
	// MigratedBytes is the total diff traffic.
	MigratedBytes int64
	// ClusterColds are first-in-cluster cold paths.
	ClusterColds int64
	// Retries counts re-picked invocations after contained faults.
	Retries int64
	// FailedMigrations counts diff transfers abandoned mid-flight
	// (export, decode — including injected corruption — or graft
	// failure); each fell back to serving from the holder.
	FailedMigrations int64
}

// Member is one compute node in the cluster.
type Member struct {
	ID       int
	Node     *core.Node
	inflight int
}

// Cluster is a DR-SEUSS deployment.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	members []*Member
	// directory maps function key → IDs of nodes holding its snapshot.
	directory map[string][]int
	// migrating tracks in-flight diff transfers per function so
	// concurrent requests do not re-ship the same pages.
	migrating map[string]bool
	cursor    int // round-robin tie-breaker for the balancer
	stats     Stats
	// faults is the fabric-level injector (nil when disabled).
	faults *fault.Injector
}

// New boots n identical nodes and links them.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, ErrNoNodes
	}
	c := &Cluster{
		eng:       eng,
		cfg:       cfg,
		directory: make(map[string][]int),
		migrating: make(map[string]bool),
		faults:    fault.New(cfg.Faults),
	}
	for i := 0; i < cfg.Nodes; i++ {
		nc := cfg.NodeConfig
		if nc.Cores == 0 && nc.MemoryBytes == 0 && !nc.NetworkAO && !nc.InterpreterAO && !nc.DisableAO {
			nc = core.DefaultConfig()
		}
		nc.Seed = nc.Seed + int64(i)
		if nc.Faults == nil {
			// Child(i+1) keeps member injectors distinct from the
			// cluster's own (Child(0) would alias the base seed).
			nc.Faults = fault.New(cfg.Faults.Child(i + 1))
		}
		node, err := core.NewNode(eng, nc)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.members = append(c.members, &Member{ID: i, Node: node})
	}
	return c, nil
}

// Members returns the cluster's nodes.
func (c *Cluster) Members() []*Member { return c.members }

// Stats returns cluster counters.
func (c *Cluster) Stats() Stats { return c.stats }

// Holders returns the nodes currently registered for a function.
func (c *Cluster) Holders(key string) []int {
	out := make([]int, len(c.directory[key]))
	copy(out, c.directory[key])
	return out
}

// transferTime models shipping bytes across the fabric.
func (c *Cluster) transferTime(bytes int64) time.Duration {
	return c.cfg.LinkRTT + time.Duration(float64(bytes)/c.cfg.LinkBandwidth*float64(time.Second))
}

// leastLoaded returns the member with the fewest requests in flight;
// ties rotate round-robin so sequential traffic still spreads.
func (c *Cluster) leastLoaded() *Member {
	n := len(c.members)
	best := c.members[c.cursor%n]
	for i := 1; i < n; i++ {
		m := c.members[(c.cursor+i)%n]
		if m.inflight < best.inflight {
			best = m
		}
	}
	c.cursor++
	return best
}

// holderFor returns the least-loaded member holding key, or nil.
func (c *Cluster) holderFor(key string) *Member {
	var best *Member
	for _, id := range c.directory[key] {
		m := c.members[id]
		if best == nil || m.inflight < best.inflight {
			best = m
		}
	}
	return best
}

func (c *Cluster) register(key string, id int) {
	for _, existing := range c.directory[key] {
		if existing == id {
			return
		}
	}
	c.directory[key] = append(c.directory[key], id)
}

// Invoke services one invocation somewhere in the cluster and returns
// the result plus the serving node's ID. A contained fault (UC crash,
// deadline kill, shard stall — anything the fault taxonomy marks
// retryable) consumes the retry budget: the cluster backs off,
// re-picks a member, and tries again, so a crashed UC is redeployed
// from its immutable snapshot rather than surfacing to the caller.
// Uncontained (deterministic) failures fail fast.
func (c *Cluster) Invoke(p *sim.Proc, req core.Request) (core.Result, int, error) {
	if len(c.members) == 0 {
		return core.Result{}, -1, ErrNoNodes
	}
	backoff := c.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		target := c.pick(p, req)
		target.inflight++
		res, err := target.Node.Invoke(p, req)
		target.inflight--
		if err == nil {
			c.register(req.Key, target.ID)
			return res, target.ID, nil
		}
		if attempt >= c.cfg.MaxRetries || !fault.IsContained(err) {
			return core.Result{}, target.ID, err
		}
		c.stats.Retries++
		p.Sleep(backoff)
		backoff *= 2
	}
}

// pick chooses (and, under PolicyMigrate, prepares) the serving node.
func (c *Cluster) pick(p *sim.Proc, req core.Request) *Member {
	// Any node already warm for this function?
	if holder := c.holderFor(req.Key); holder != nil {
		least := c.leastLoaded()
		// Balanced enough: serve from a holder.
		if c.cfg.Policy == PolicyRoute || holder.inflight <= least.inflight+1 {
			if holder.Node.HasSnapshot(req.Key) || holder.Node.HasIdleUC(req.Key) {
				c.stats.LocalHitsOrRoute(holder == least)
				return holder
			}
			// Directory is stale (the holder evicted it): fall through.
		}
		// PolicyMigrate with an overloaded holder: serialize the diff on
		// the holder, ship the bytes across the fabric, and graft them
		// onto the target's base image. One transfer per function at a
		// time; racers fall back to the holder.
		if c.cfg.Policy == PolicyMigrate && holder.Node.HasSnapshot(req.Key) && !c.migrating[req.Key] {
			if least.Node.HasSnapshot(req.Key) {
				c.register(req.Key, least.ID)
				return least
			}
			c.migrating[req.Key] = true
			target := c.migrate(p, holder, least, req.Key)
			delete(c.migrating, req.Key)
			return target
		}
		return holder
	}
	// First sighting in the cluster: cold exactly once.
	c.stats.ClusterColds++
	return c.leastLoaded()
}

// migrate ships the holder's snapshot diff to dst over the fabric and
// grafts it. On any failure — including an injected wire corruption
// that the decoder rejects — the transfer is abandoned and the holder
// serves the request instead: migration failure degrades to routing,
// never to a failed invocation.
func (c *Cluster) migrate(p *sim.Proc, holder, dst *Member, key string) *Member {
	var wire bytes.Buffer
	if err := holder.Node.ExportSnapshot(key, &wire); err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	// Fault point: the diff is corrupted in flight. Truncating the wire
	// image makes the codec's decode fail, exercising the same path a
	// checksum mismatch would take on real hardware.
	if c.faults.Fire(fault.PointSnapshotCorrupt) {
		wire.Truncate(wire.Len() / 2)
	}
	// Decode without copying: the diff aliases wire's bytes, which stay
	// live until AdoptDiff has grafted (copied) them into local frames.
	diff, err := snapshot.ImportBytes(wire.Bytes())
	if err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	// Ship the logical page volume: unmaterialized pages travel as one
	// byte in the simulation but stand in for real content.
	n := diff.LogicalBytes()
	p.Sleep(c.transferTime(n))
	if err := dst.Node.AdoptDiff(p, key, diff); err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	c.stats.Migrations++
	c.stats.MigratedBytes += n
	c.register(key, dst.ID)
	return dst
}

// LocalHitsOrRoute records a directory hit.
func (s *Stats) LocalHitsOrRoute(local bool) {
	if local {
		s.LocalHits++
	} else {
		s.RemoteRoutes++
	}
}
