// Package cluster implements the paper's §9 future work: DR-SEUSS, a
// distributed and replicated global snapshot cache spanning compute
// nodes.
//
// The enabling properties are exactly the ones §9 names: snapshots are
// read-only, and every UC is configured with an identical network
// identity, so a snapshot captured on one node can be cloned and
// deployed on any node with the same base runtime snapshot. Placement
// lives in internal/sched: the cluster feeds the placer a gossiped view
// of which node holds which lineage, verifies its decision against
// ground truth (pruning stale entries), and executes the mechanics —
// route to a holder, migrate a whole diff, or, when both ends run the
// content-addressed snapshot fabric (Config.SnapDir), fetch only the
// stack layers the destination is missing. Identical base layers dedupe
// by FNV-64a digest and are stored once per node, so a function is cold
// at most once per *cluster* and its runtime image ships zero times.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/mem"
	"seuss/internal/metrics"
	"seuss/internal/policy"
	"seuss/internal/sched"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/snapstore"
	"seuss/internal/trace"
)

// ErrNoNodes is returned when the cluster has no members.
var ErrNoNodes = errors.New("cluster: no nodes")

// ErrMemberDown marks an attempt that landed on an unreachable member
// (crashed or partitioned). It is always wrapped in fault.Contain: the
// retry path fails over to a live member instead of surfacing it.
var ErrMemberDown = errors.New("cluster: member down")

// Policy selects how a node without a local snapshot exploits a remote
// holder. It is shorthand for the two built-in placers; Config.Placer
// overrides it entirely.
type Policy int

const (
	// PolicyRoute forwards the request to a node that already holds
	// the snapshot (cheap, but hotspots the holder).
	PolicyRoute Policy = iota
	// PolicyMigrate replicates the snapshot to the chosen node when the
	// holder is overloaded — by layer fetch on the fabric, by whole-diff
	// migration otherwise (pays one transfer, then the function is warm
	// on both nodes).
	PolicyMigrate
)

var policyNames = [...]string{"route", "migrate"}

// String implements fmt.Stringer.
func (p Policy) String() string { return policyNames[p] }

// Config parameterizes the cluster.
type Config struct {
	// Nodes is the member count.
	Nodes int
	// NodeConfig configures each member identically ("similar hardware
	// profiles").
	NodeConfig core.Config
	// Policy picks route-vs-replicate on remote snapshot hits (default
	// PolicyMigrate — the replicated cache of §9). Ignored when Placer
	// is set.
	Policy Policy
	// Placer overrides the placement policy entirely (default: a
	// sched.LocalityPlacer configured from Policy).
	Placer sched.Placer
	// Lifecycle is the per-function lifecycle policy — keep-alive,
	// scale-to-zero, predictive prewarm — cloned into every member
	// (policies accumulate per-key history, so members never share an
	// instance). Lifecycle transitions a member's reaper makes are
	// reflected into the scheduler view, keeping placement aware of
	// scaled-to-zero lineages. Nil disables lifecycle management. (The
	// name: Policy was already taken by the placement policy above.)
	Lifecycle policy.Policy
	// LinkBandwidth is the inter-node network bandwidth
	// (default 10 Gb/s, the paper's testbed fabric).
	LinkBandwidth float64 // bytes/second
	// LinkRTT is the inter-node round trip (default 150 µs).
	LinkRTT time.Duration
	// GossipInterval is how often (in virtual time) members exchange
	// snapshot manifests with the scheduler view (default 10 ms). The
	// exchange is lazy — it piggybacks on the next Invoke past the
	// deadline — so an idle cluster gossips nothing. Member heartbeats
	// ride the same rounds: a member whose report fails to land misses
	// a heartbeat.
	GossipInterval time.Duration
	// SuspectAfter is the suspicion threshold K: a member that misses K
	// consecutive heartbeat rounds is believed suspect (default 2), and
	// placers stop routing to it as a holder.
	SuspectAfter int
	// DeadAfter is how many consecutive missed rounds declare a member
	// dead (default 2*SuspectAfter): its view entries are purged and
	// the repair pass re-replicates lineages it solely held.
	DeadAfter int
	// RepairReplicas is how many live disk-tier copies the repair pass
	// restores for a lineage that lost its last live RAM holder
	// (default 2, capped by the live fabric-member count).
	RepairReplicas int
	// RejoinLazy skips the disk-tier prewarm when a member restarts:
	// surviving lineages promote lazily (lukewarm) on first request
	// instead of eagerly at rejoin.
	RejoinLazy bool
	// SnapDir enables the content-addressed snapshot fabric: each member
	// gets a disk tier at SnapDir/node<i>, seeded with byte-identical
	// runtime base layers, and locality misses fetch only missing stack
	// layers instead of migrating whole diffs. Empty disables the fabric
	// (node-local behavior, migrate-only replication).
	SnapDir string
	// SnapDiskCap bounds each member's tier in bytes (0 = unlimited).
	SnapDiskCap int64
	// MaxRetries is the retry budget for contained faults: after a
	// member fails an invocation with a contained error, the cluster
	// re-picks a member and retries up to MaxRetries times (default 0 =
	// fail fast). Uncontained errors are never retried.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 1 ms).
	RetryBackoff time.Duration
	// Faults configures deterministic fault injection. The cluster
	// keeps the base injector for fabric-level points (snapshot
	// corruption, gossip and fetch drops); each member node derives a
	// private child injector for node-level points (UC crashes), unless
	// NodeConfig already carries one.
	Faults fault.Config
	// Metrics receives cluster-level counters (scheduler placements,
	// gossip, layer transfers); shared with members whose NodeConfig
	// carries none. Nil disables.
	Metrics *metrics.Recorder
	// Tracer receives cluster-level spans (gossip, fetch, stale prunes);
	// shared with members whose NodeConfig carries none. Nil disables.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 10e9 / 8 // 10 GbE
	}
	if c.LinkRTT == 0 {
		c.LinkRTT = 150 * time.Microsecond
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 10 * time.Millisecond
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	if c.RepairReplicas == 0 {
		c.RepairReplicas = 2
	}
	return c
}

// Stats counts cluster-level behavior.
type Stats struct {
	// LocalHits served from the chosen node's own caches.
	LocalHits int64
	// RemoteRoutes forwarded to a holder node.
	RemoteRoutes int64
	// Migrations pulled a whole snapshot diff across the fabric.
	Migrations int64
	// MigratedBytes is the total whole-diff traffic.
	MigratedBytes int64
	// Fetches replicated a function by shipping only its missing stack
	// layers from a holder's tier.
	Fetches int64
	// FetchedBytes is the total layer traffic (deduped layers ship 0).
	FetchedBytes int64
	// LayerDedups counts stack layers a fetch skipped because the
	// destination already held identical content (by digest).
	LayerDedups int64
	// FailedFetches counts layer fetches abandoned mid-flight (missing
	// source, rejected verification — including injected corruption — or
	// promote failure); each fell back to serving from the holder.
	FailedFetches int64
	// FetchRetransmits counts injected fetch packet drops (each cost one
	// extra RTT).
	FetchRetransmits int64
	// ClusterColds are first-in-cluster cold paths.
	ClusterColds int64
	// Retries counts re-picked invocations after contained faults.
	Retries int64
	// FailedMigrations counts diff transfers abandoned mid-flight
	// (export, decode — including injected corruption — or graft
	// failure); each fell back to serving from the holder.
	FailedMigrations int64
	// StaleDirectory counts placements that tripped over a holder that
	// no longer had the snapshot; the entry was pruned and the request
	// re-placed.
	StaleDirectory int64
	// GossipRounds counts completed manifest-exchange rounds.
	GossipRounds int64
	// GossipDrops counts member exchanges lost to injected faults (the
	// view stays stale for that member until the next round).
	GossipDrops int64
	// Failovers counts invocations re-picked to a live member after the
	// serving member turned out to be unreachable (a subset of Retries).
	Failovers int64
	// MemberCrashes, MemberRestarts, and MemberPartitions count
	// lifecycle events — test hooks and injected faults alike.
	MemberCrashes    int64
	MemberRestarts   int64
	MemberPartitions int64
	// SuspectedMembers, DeadMembers, and RevivedMembers count liveness
	// state-machine transitions recorded in the scheduler view.
	SuspectedMembers int64
	DeadMembers      int64
	RevivedMembers   int64
	// RepairsPromoted counts orphaned lineages restored to RAM on a
	// disk-tier survivor; RepairsRefetched counts disk copies re-shipped
	// to additional live members; RepairsCold counts lineages with no
	// live disk copy (the next request cold-boots locally);
	// RepairsFailed counts repair actions that errored.
	RepairsPromoted  int64
	RepairsRefetched int64
	RepairsCold      int64
	RepairsFailed    int64
}

// Member is one compute node in the cluster.
type Member struct {
	ID int
	// Node is the member's live compute node; nil while crashed (RAM
	// state does not survive a crash — a restart builds a fresh node).
	Node *core.Node
	// Store is the member's content-addressed disk tier; nil unless the
	// fabric is enabled (Config.SnapDir). The store object persists
	// across crashes — it is the disk — but is unreachable while the
	// member is down.
	Store    *snapstore.Store
	inflight int
	// up is ground truth: false between a crash and the next restart.
	up bool
	// partitioned: the node runs but nobody can reach it.
	partitioned bool
	// restarting guards against double-spawned injector restarts.
	restarting bool
	// epoch increments on every crash so in-flight attempts detect that
	// the member died (and maybe even restarted) under them.
	epoch int
	// nc is the node config the member was built with, kept so a
	// restart can rebuild the node over the same disk tier.
	nc core.Config
}

// alive reports ground-truth reachability: up and not partitioned.
func (m *Member) alive() bool { return m.up && !m.partitioned }

// Up reports whether the member's node is running (ground truth).
func (m *Member) Up() bool { return m.up }

// Partitioned reports whether the member is running but unreachable.
func (m *Member) Partitioned() bool { return m.partitioned }

// MemberInfo is one member's lifecycle state: the ground truth the
// cluster runtime knows (Up, Partitioned) plus the heartbeat-driven
// belief recorded in the scheduler view (State, Missed).
type MemberInfo struct {
	ID          int
	Up          bool
	Partitioned bool
	// State is the view's liveness belief: "alive", "suspect", "dead".
	State string
	// Missed is the member's consecutive missed heartbeat rounds.
	Missed int
}

// Cluster is a DR-SEUSS deployment.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	members []*Member
	// view is the scheduler's shared residency/manifest state, refreshed
	// by gossip and updated synchronously on transfers the cluster
	// itself performs.
	view *sched.View
	// placer turns the view plus load state into placement decisions. It
	// is single-writer: only the cluster touches it.
	placer sched.Placer
	// migrating tracks in-flight transfers per function so concurrent
	// requests do not re-ship the same pages.
	migrating map[string]bool
	stats     Stats
	// faults is the fabric-level injector (nil when disabled).
	faults *fault.Injector
	rec    *metrics.Recorder
	tr     *trace.Tracer

	lastGossip sim.Time
	gossiped   bool
	scratch    []sched.NodeState // reused placement input

	// served/servedKeys track every function key the cluster has seen,
	// in first-arrival order — the deterministic worklist the repair
	// pass scans for lineages that lost their last live holder.
	served     map[string]bool
	servedKeys []string
	// needRepair/repairing coordinate the sim-clock repair proc: a
	// death declaration sets needRepair; one proc drains passes until
	// the flag stays clear.
	needRepair bool
	repairing  bool
}

// New boots n identical nodes and links them.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, ErrNoNodes
	}
	placer := cfg.Placer
	if placer == nil {
		placer = &sched.LocalityPlacer{Replicate: cfg.Policy == PolicyMigrate}
	}
	c := &Cluster{
		eng:       eng,
		cfg:       cfg,
		view:      sched.NewView(cfg.Nodes),
		placer:    placer,
		migrating: make(map[string]bool),
		served:    make(map[string]bool),
		faults:    fault.New(cfg.Faults),
		rec:       cfg.Metrics,
		tr:        cfg.Tracer,
	}

	base := cfg.NodeConfig
	if base.Cores == 0 && base.MemoryBytes == 0 && !base.NetworkAO && !base.InterpreterAO && !base.DisableAO {
		base = core.DefaultConfig()
	}

	// With the fabric on, every member's tier is seeded from ONE
	// canonical boot per runtime: the encoded base layers are
	// byte-identical across nodes, so they share one FNV-64a digest
	// cluster-wide and a fetch never re-ships them.
	var seeds map[string][]byte
	if cfg.SnapDir != "" {
		seeds = make(map[string][]byte)
		for _, name := range base.Normalized().Runtimes {
			snap, err := core.BootRuntime(mem.NewStore(0), base, name)
			if err != nil {
				return nil, fmt.Errorf("cluster: seed runtime %q: %w", name, err)
			}
			var buf bytes.Buffer
			err = snap.Export(&buf)
			snap.Delete()
			if err != nil {
				return nil, fmt.Errorf("cluster: seed runtime %q: %w", name, err)
			}
			seeds["runtime/"+name] = buf.Bytes()
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		nc := base
		nc.Seed = nc.Seed + int64(i)
		if nc.Faults == nil {
			// Child(i+1) keeps member injectors distinct from the
			// cluster's own (Child(0) would alias the base seed).
			nc.Faults = fault.New(cfg.Faults.Child(i + 1))
		}
		if nc.Metrics == nil {
			nc.Metrics = cfg.Metrics
		}
		if nc.Tracer == nil {
			nc.Tracer = cfg.Tracer
		}
		if cfg.Lifecycle != nil {
			nc.Policy = cfg.Lifecycle.Clone()
			nc.Residency = lifecycleResidency{c: c, id: i}
		}
		var store *snapstore.Store
		if cfg.SnapDir != "" {
			capBytes := cfg.SnapDiskCap
			if capBytes == 0 {
				capBytes = -1
			}
			var err error
			store, err = snapstore.Open(filepath.Join(cfg.SnapDir, fmt.Sprintf("node%d", i)), capBytes)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d tier: %w", i, err)
			}
			for key, enc := range seeds {
				if err := store.Put(key, "", enc); err != nil {
					return nil, fmt.Errorf("cluster: node %d seed %q: %w", i, key, err)
				}
			}
			nc.SnapStore = store
		}
		node, err := core.NewNode(eng, nc)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.members = append(c.members, &Member{ID: i, Node: node, Store: store, up: true, nc: nc})
		c.view.SetFabric(i, store != nil)
	}
	return c, nil
}

// Members returns the cluster's nodes.
func (c *Cluster) Members() []*Member { return c.members }

// Inflight reports how many invocations the member is executing right
// now — fault injectors use it to land a crash mid-invocation.
func (m *Member) Inflight() int { return m.inflight }

// Stats returns cluster counters.
func (c *Cluster) Stats() Stats { return c.stats }

// View returns the scheduler's shared state (safe for concurrent use).
func (c *Cluster) View() *sched.View { return c.view }

// Holders returns the nodes the scheduler believes hold a function's
// snapshot in RAM, in ascending node order.
func (c *Cluster) Holders(key string) []int {
	return c.view.ResidentHolders(key)
}

// transferTime models shipping bytes across the fabric.
func (c *Cluster) transferTime(bytes int64) time.Duration {
	return c.cfg.LinkRTT + time.Duration(float64(bytes)/c.cfg.LinkBandwidth*float64(time.Second))
}

// isLeastLoaded reports whether no member carries less than m.
func (c *Cluster) isLeastLoaded(m *Member) bool {
	for _, o := range c.members {
		if o.inflight < m.inflight {
			return false
		}
	}
	return true
}

// Invoke services one invocation somewhere in the cluster and returns
// the result plus the serving node's ID. A contained fault (UC crash,
// deadline kill, member crash — anything the fault taxonomy marks
// retryable) consumes the retry budget: the cluster backs off,
// re-picks a member — excluding the one that just failed, so a sick
// node cannot eat the whole budget — and tries again. An attempt that
// landed on a dead or partitioned member is a failover: counted,
// traced, and re-picked among live members. Uncontained
// (deterministic) failures fail fast.
func (c *Cluster) Invoke(p *sim.Proc, req core.Request) (core.Result, int, error) {
	if len(c.members) == 0 {
		return core.Result{}, -1, ErrNoNodes
	}
	c.maybeGossip()
	if !c.served[req.Key] {
		c.served[req.Key] = true
		c.servedKeys = append(c.servedKeys, req.Key)
	}
	backoff := c.cfg.RetryBackoff
	exclude := -1
	for attempt := 0; ; attempt++ {
		target := c.pick(p, req, exclude)
		res, err := c.attempt(p, target, req)
		if err == nil {
			c.view.MarkResident(target.ID, req.Key)
			return res, target.ID, nil
		}
		if attempt >= c.cfg.MaxRetries || !fault.IsContained(err) {
			return core.Result{}, target.ID, err
		}
		c.stats.Retries++
		exclude = target.ID
		if errors.Is(err, ErrMemberDown) {
			c.stats.Failovers++
			c.rec.Inc(metrics.CtrClusterFailovers)
			c.tr.Record(trace.Event{
				At: time.Duration(c.eng.Now()), Kind: trace.KindFailover, ID: uint64(target.ID),
				Key: req.Key, Detail: "member unreachable; re-picking among live members",
			})
		}
		p.Sleep(backoff)
		backoff *= 2
	}
}

// attempt runs one invocation attempt on target, converting member
// death — before or during the call — into a contained ErrMemberDown
// the retry loop fails over.
func (c *Cluster) attempt(p *sim.Proc, target *Member, req core.Request) (core.Result, error) {
	if !target.alive() {
		return core.Result{}, fault.Contain(fmt.Errorf("%w: member %d", ErrMemberDown, target.ID))
	}
	epoch := target.epoch
	target.inflight++
	res, err := target.Node.Invoke(p, req)
	target.inflight--
	if err == nil && (target.epoch != epoch || !target.alive()) {
		// The member died (or vanished behind a partition) while the
		// request was in flight: whatever it computed never reached the
		// caller. Contained — the retry path re-runs it elsewhere.
		return core.Result{}, fault.Contain(fmt.Errorf("%w: member %d died mid-invocation", ErrMemberDown, target.ID))
	}
	return res, err
}

// maybeGossip runs a manifest-exchange round if the interval elapsed:
// every reachable member reports its RAM-resident snapshot keys and
// (on the fabric) its tier manifest, wholesale-replacing the scheduler
// view. The exchange itself is metadata-sized and charges no virtual
// time; an injected PointGossipDrop loses one member's report, leaving
// its view stale until the next round.
//
// Heartbeats piggyback on the same rounds: a member whose report fails
// to land — crashed, partitioned, or dropped on the wire — misses a
// heartbeat, and the per-member state machine walks alive → suspect
// (SuspectAfter consecutive misses) → dead (DeadAfter). A death
// declaration purges the member's view entries (counted as stale
// prunes) and schedules the repair pass. Lifecycle fault points
// (member-crash, member-partition, member-restart) are also consulted
// here, once per member per round in member order, so injected
// lifecycle chaos replays deterministically.
func (c *Cluster) maybeGossip() {
	now := c.eng.Now()
	if c.gossiped && now.Sub(c.lastGossip) < c.cfg.GossipInterval {
		return
	}
	c.gossiped = true
	c.lastGossip = now

	for _, m := range c.members {
		switch {
		case !m.up:
			if c.faults.Fire(fault.PointMemberRestart) && !m.restarting {
				m.restarting = true
				mm := m
				c.eng.Go(fmt.Sprintf("restart-%d", m.ID), func(p *sim.Proc) { c.restart(p, mm) })
			}
		case m.partitioned:
			if c.faults.Fire(fault.PointMemberRestart) {
				c.heal(m)
			}
		default:
			if c.faults.Fire(fault.PointMemberCrash) {
				c.crash(m)
			} else if c.faults.Fire(fault.PointMemberPartition) {
				c.partition(m)
			}
		}
	}

	declaredDead := false
	for _, m := range c.members {
		if m.alive() && !c.faults.Fire(fault.PointGossipDrop) {
			var layers []sched.Layer
			if m.Store != nil {
				for _, l := range m.Store.Manifest() {
					layers = append(layers, sched.Layer{Key: l.Key, Base: l.Base, Digest: l.Digest, Size: l.Size})
				}
			}
			c.view.Refresh(m.ID, m.Node.SnapshotKeys(), layers)
			if from := c.view.ReportHeartbeat(m.ID); from != sched.StateAlive {
				c.stats.RevivedMembers++
				c.rec.Inc(metrics.CtrMemberStateAlive)
				c.tr.Record(trace.Event{
					At: time.Duration(now), Kind: trace.KindRejoin, ID: uint64(m.ID),
					Detail: fmt.Sprintf("heartbeat resumed (was %v); believed alive again", from),
				})
			}
			continue
		}
		if m.alive() {
			// Reachable, but the injector ate the exchange: the view
			// stays stale for this member and the miss still counts
			// against its liveness — the detector cannot tell a lossy
			// wire from a dead peer.
			c.stats.GossipDrops++
			c.rec.Inc(metrics.CtrGossipDrops)
			c.tr.Record(trace.Event{
				At: time.Duration(now), Kind: trace.KindFault, ID: uint64(m.ID),
				Key: "gossip", Detail: "manifest exchange dropped; view stays stale one round",
			})
		}
		from, to := c.view.MissHeartbeat(m.ID, c.cfg.SuspectAfter, c.cfg.DeadAfter)
		if to == from {
			continue
		}
		switch to {
		case sched.StateSuspect:
			c.stats.SuspectedMembers++
			c.rec.Inc(metrics.CtrMemberStateSuspect)
			c.tr.Record(trace.Event{
				At: time.Duration(now), Kind: trace.KindCrash, ID: uint64(m.ID),
				Detail: fmt.Sprintf("suspected after %d missed heartbeats; skipped as holder", c.view.Missed(m.ID)),
			})
		case sched.StateDead:
			c.stats.DeadMembers++
			c.rec.Inc(metrics.CtrMemberStateDead)
			pruned := c.view.PurgeNode(m.ID)
			if pruned > 0 {
				c.stats.StaleDirectory += int64(pruned)
				c.rec.AddCounter(metrics.CtrSchedStaleEntries, int64(pruned))
			}
			declaredDead = true
			c.tr.Record(trace.Event{
				At: time.Duration(now), Kind: trace.KindCrash, ID: uint64(m.ID),
				Detail: fmt.Sprintf("declared dead after %d missed heartbeats; %d view entries pruned", c.view.Missed(m.ID), pruned),
			})
		}
	}
	c.stats.GossipRounds++
	c.rec.Inc(metrics.CtrGossipRounds)
	c.tr.Record(trace.Event{
		At: time.Duration(now), Kind: trace.KindGossip,
		Detail: fmt.Sprintf("round %d, view gen %d", c.stats.GossipRounds, c.view.Generation()),
	})
	if declaredDead {
		c.scheduleRepair()
	}
}

// ---- Member failure lifecycle ----

// Crash kills member id: resident UCs and memory-tier snapshots are
// lost, the disk tier survives but is unreachable until restart.
// In-flight invocations on the member fail contained and fail over.
// Detection is the heartbeat machinery's job — the view keeps
// believing the member alive until it misses enough rounds. Returns
// false if the member was already down. (Test hook; the member-crash
// fault point drives the same path.)
func (c *Cluster) Crash(id int) bool {
	if id < 0 || id >= len(c.members) || !c.members[id].up {
		return false
	}
	c.crash(c.members[id])
	return true
}

func (c *Cluster) crash(m *Member) {
	m.up = false
	m.partitioned = false
	m.epoch++
	m.Node = nil // RAM state is gone; any touch is a bug, make it loud
	c.stats.MemberCrashes++
	c.tr.Record(trace.Event{
		At: time.Duration(c.eng.Now()), Kind: trace.KindCrash, ID: uint64(m.ID),
		Detail: "member crashed: RAM state lost, disk tier offline until restart",
	})
}

// Restart rebuilds a crashed member over its surviving disk tier and
// rejoins it: a fresh node (empty RAM), a full manifest resync into
// the view with its stale entries pruned first, and a prewarm of every
// surviving lineage from the disk tier (skipped under RejoinLazy —
// first requests then promote lukewarm). Partitioned members heal via
// Heal; restarting an up member is an error. (Test hook; the
// member-restart fault point drives the same path.)
func (c *Cluster) Restart(p *sim.Proc, id int) error {
	if id < 0 || id >= len(c.members) {
		return fmt.Errorf("cluster: no member %d", id)
	}
	m := c.members[id]
	if m.up {
		return fmt.Errorf("cluster: member %d is up (heal partitions with Heal)", id)
	}
	return c.restart(p, m)
}

func (c *Cluster) restart(p *sim.Proc, m *Member) error {
	defer func() { m.restarting = false }()
	if m.up {
		return nil
	}
	node, err := core.NewNode(c.eng, m.nc)
	if err != nil {
		return fmt.Errorf("cluster: restart member %d: %w", m.ID, err)
	}
	m.Node = node
	m.up = true
	m.partitioned = false
	c.stats.MemberRestarts++
	warmed := 0
	if m.Store != nil && !c.cfg.RejoinLazy {
		// Prewarm: every lineage the surviving disk tier holds promotes
		// back into RAM before the member takes traffic (best-effort —
		// a damaged entry degrades that lineage to lukewarm-on-demand).
		for _, l := range m.Store.Manifest() {
			if strings.HasPrefix(l.Key, "fn/") && m.Node.PromoteLineage(p, l.Key) == nil {
				warmed++
			}
		}
	}
	c.resync(m)
	c.tr.Record(trace.Event{
		At: time.Duration(c.eng.Now()), Kind: trace.KindRejoin, ID: uint64(m.ID),
		Detail: fmt.Sprintf("restarted: manifest resynced, %d lineages prewarmed from disk tier", warmed),
	})
	return nil
}

// Partition isolates member id: the node keeps running but is
// reachable by no one — heartbeats stop landing, placements skip it
// once suspected, in-flight responses are lost. Returns false if the
// member is down or already partitioned. (Test hook; the
// member-partition fault point drives the same path.)
func (c *Cluster) Partition(id int) bool {
	if id < 0 || id >= len(c.members) || !c.members[id].alive() {
		return false
	}
	c.partition(c.members[id])
	return true
}

func (c *Cluster) partition(m *Member) {
	m.partitioned = true
	c.stats.MemberPartitions++
	c.tr.Record(trace.Event{
		At: time.Duration(c.eng.Now()), Kind: trace.KindCrash, ID: uint64(m.ID),
		Detail: "partitioned: running but reachable by no one",
	})
}

// Heal reconnects a partitioned member. Its RAM state survived, but
// its view entries may have been purged while it was believed dead, so
// it resyncs its manifest like a rejoining member. Returns false if
// the member is not partitioned.
func (c *Cluster) Heal(id int) bool {
	if id < 0 || id >= len(c.members) || !c.members[id].partitioned {
		return false
	}
	c.heal(c.members[id])
	return true
}

func (c *Cluster) heal(m *Member) {
	m.partitioned = false
	c.resync(m)
	c.tr.Record(trace.Event{
		At: time.Duration(c.eng.Now()), Kind: trace.KindRejoin, ID: uint64(m.ID),
		Detail: "partition healed: manifest resynced",
	})
}

// resync replaces everything the view believes about a rejoining
// member with its actual state — stale entries pruned, full manifest
// refresh — and marks it alive.
func (c *Cluster) resync(m *Member) {
	c.view.PurgeNode(m.ID)
	var layers []sched.Layer
	if m.Store != nil {
		for _, l := range m.Store.Manifest() {
			layers = append(layers, sched.Layer{Key: l.Key, Base: l.Base, Digest: l.Digest, Size: l.Size})
		}
	}
	c.view.Refresh(m.ID, m.Node.SnapshotKeys(), layers)
	if from := c.view.ReportHeartbeat(m.ID); from != sched.StateAlive {
		c.stats.RevivedMembers++
		c.rec.Inc(metrics.CtrMemberStateAlive)
	}
}

// MemberStates reports every member's lifecycle state: runtime ground
// truth plus the heartbeat-driven belief in the scheduler view.
func (c *Cluster) MemberStates() []MemberInfo {
	out := make([]MemberInfo, len(c.members))
	for i, m := range c.members {
		out[i] = MemberInfo{
			ID: m.ID, Up: m.up, Partitioned: m.partitioned,
			State:  c.view.State(m.ID).String(),
			Missed: c.view.Missed(m.ID),
		}
	}
	return out
}

// ---- Redundancy repair ----

// scheduleRepair requests a repair pass on the sim clock. One repair
// proc runs at a time; a declaration arriving mid-pass re-arms it.
func (c *Cluster) scheduleRepair() {
	c.needRepair = true
	if c.repairing {
		return
	}
	c.repairing = true
	c.eng.Go("repair", func(p *sim.Proc) {
		for c.needRepair {
			c.needRepair = false
			c.repairPass(p)
		}
		c.repairing = false
	})
}

// repairPass scans every lineage the cluster has served for ones that
// lost their last live RAM holder, and restores redundancy: promote a
// copy back into RAM on the least-loaded disk-tier survivor, then
// re-fetch the stack onto additional live members until RepairReplicas
// live tiers hold it. A lineage with no live disk copy is left to the
// placement fallback — the next request cold-boots locally (outcome
// "cold"): degraded, never stranded.
func (c *Cluster) repairPass(p *sim.Proc) {
	for _, key := range c.servedKeys {
		if c.aliveResident(key) {
			continue
		}
		c.repairLineage(p, key)
	}
}

// aliveResident reports whether any live member holds the function in
// RAM (ground truth, not the view).
func (c *Cluster) aliveResident(key string) bool {
	for _, m := range c.members {
		if m.alive() && (m.Node.HasSnapshot(key) || m.Node.HasIdleUC(key)) {
			return true
		}
	}
	return false
}

func (c *Cluster) repairLineage(p *sim.Proc, key string) {
	lineage := "fn/" + key
	start := c.eng.Now()
	var survivors, candidates []*Member
	for _, m := range c.members {
		if !m.alive() || m.Store == nil {
			continue
		}
		if m.Store.HasStack(lineage) {
			survivors = append(survivors, m)
		} else {
			candidates = append(candidates, m)
		}
	}
	if len(survivors) == 0 {
		c.stats.RepairsCold++
		c.rec.Inc(metrics.CtrFabricRepairsCold)
		c.tr.Record(trace.Event{
			At: time.Duration(start), Kind: trace.KindRepair, Key: key,
			Detail: "no live disk copy; next request cold-boots locally",
		})
		return
	}
	// Restore a RAM copy on the least-loaded survivor (its own disk is
	// the source — a lukewarm-cost promote, no bytes on the wire).
	src := survivors[0]
	for _, m := range survivors[1:] {
		if m.inflight < src.inflight {
			src = m
		}
	}
	if err := src.Node.PromoteLineage(p, lineage); err != nil {
		c.stats.RepairsFailed++
		c.rec.Inc(metrics.CtrFabricRepairsFailed)
		c.tr.Record(trace.Event{
			At: time.Duration(start), Kind: trace.KindRepair, ID: uint64(src.ID), Key: key,
			Detail: fmt.Sprintf("promote on survivor failed: %v", err),
		})
	} else {
		c.stats.RepairsPromoted++
		c.rec.Inc(metrics.CtrFabricRepairsPromoted)
		c.view.MarkResident(src.ID, key)
		c.tr.Record(trace.Event{
			At: time.Duration(start), Dur: time.Duration(c.eng.Now() - start),
			Kind: trace.KindRepair, ID: uint64(src.ID), Key: key,
			Detail: "lineage promoted from disk-tier survivor",
		})
	}
	// Restore disk redundancy: ship the stack to live members missing
	// it until RepairReplicas live tiers hold a copy.
	need := c.cfg.RepairReplicas - len(survivors)
	for _, dst := range candidates {
		if need <= 0 {
			break
		}
		shipStart := c.eng.Now()
		moved, fetched, deduped, err := c.shipLayers(p, src, dst, lineage)
		if err != nil {
			c.stats.RepairsFailed++
			c.rec.Inc(metrics.CtrFabricRepairsFailed)
			c.tr.Record(trace.Event{
				At: time.Duration(shipStart), Kind: trace.KindRepair, ID: uint64(dst.ID), Key: key,
				Detail: fmt.Sprintf("re-replication from member %d failed: %v", src.ID, err),
			})
			continue
		}
		c.stats.RepairsRefetched++
		c.rec.Inc(metrics.CtrFabricRepairsRefetched)
		c.tr.Record(trace.Event{
			At: time.Duration(shipStart), Dur: time.Duration(c.eng.Now() - shipStart),
			Kind: trace.KindRepair, ID: uint64(dst.ID), Key: key,
			Detail: fmt.Sprintf("%d layers re-fetched (%d deduped), %.1f KB from member %d", fetched, deduped, float64(moved)/1e3, src.ID),
		})
		need--
	}
}

// pruneStale drops a scheduler entry the placement verifier caught
// lying — the holder no longer has the snapshot (RAM or tier) — so the
// next placement does not re-hit it.
func (c *Cluster) pruneStale(node int, key, lineage string) {
	c.view.DropResident(node, key)
	c.view.DropLayer(node, lineage)
	c.stats.StaleDirectory++
	c.rec.Inc(metrics.CtrSchedStaleEntries)
	c.tr.Record(trace.Event{
		At: time.Duration(c.eng.Now()), Kind: trace.KindStale, ID: uint64(node),
		Key: key, Detail: "holder no longer resident; entry pruned, request re-placed",
	})
}

// pick asks the placer for a decision, verifies it against node ground
// truth (the view may lag gossip), prunes stale entries, and executes
// the transfer mechanics. Bounded re-placement: after one prune per
// member the request serves cold rather than looping. exclude is the
// member the previous attempt failed on (-1 for none): it is marked
// unhealthy for this placement so a retry never re-picks it while an
// alternative exists.
func (c *Cluster) pick(p *sim.Proc, req core.Request, exclude int) *Member {
	lineage := "fn/" + req.Key
	for tries := 0; ; tries++ {
		c.scratch = c.scratch[:0]
		for _, m := range c.members {
			c.scratch = append(c.scratch, sched.NodeState{ID: m.ID, Inflight: m.inflight, Healthy: m.alive() && m.ID != exclude})
		}
		pl := c.placer.Place(sched.Request{Key: req.Key, Lineage: lineage, Nodes: c.scratch, View: c.view})

		switch pl.Action {
		case sched.ActionCold:
			c.stats.ClusterColds++
			c.rec.Inc(metrics.CtrSchedPlacementsCold)
			return c.members[pl.Node]

		case sched.ActionRoute:
			holder := c.members[pl.Node]
			if !holder.alive() {
				// The view lags ground truth: the believed holder is
				// unreachable. Don't prune — its entries purge when it
				// is declared dead — just hand it back so the retry
				// path fails over with this member excluded.
				return holder
			}
			if holder.Node.HasSnapshot(req.Key) || holder.Node.HasIdleUC(req.Key) ||
				(holder.Store != nil && holder.Store.Has(lineage)) {
				c.rec.Inc(metrics.CtrSchedPlacementsRoute)
				c.stats.LocalHitsOrRoute(c.isLeastLoaded(holder))
				return holder
			}
			if tries >= len(c.members) {
				c.stats.ClusterColds++
				c.rec.Inc(metrics.CtrSchedPlacementsCold)
				return holder
			}
			c.pruneStale(holder.ID, req.Key, lineage)

		case sched.ActionFetch, sched.ActionMigrate:
			holder, dst := c.members[pl.Holder], c.members[pl.Node]
			if !holder.alive() {
				// Source died between gossip and placement: serve on the
				// (healthy, placer-chosen) destination, cold if need be.
				return dst
			}
			if !holder.Node.HasSnapshot(req.Key) {
				if tries >= len(c.members) {
					c.stats.ClusterColds++
					c.rec.Inc(metrics.CtrSchedPlacementsCold)
					return dst
				}
				c.pruneStale(holder.ID, req.Key, lineage)
				continue
			}
			if c.migrating[req.Key] {
				// A racer is already shipping this function: serve from
				// the holder rather than double-transferring.
				c.rec.Inc(metrics.CtrSchedPlacementsRoute)
				c.stats.LocalHitsOrRoute(false)
				return holder
			}
			c.migrating[req.Key] = true
			var target *Member
			if pl.Action == sched.ActionFetch {
				c.rec.Inc(metrics.CtrSchedPlacementsFetch)
				target = c.fetchLayers(p, holder, dst, req.Key)
			} else {
				c.rec.Inc(metrics.CtrSchedPlacementsMigrate)
				target = c.migrate(p, holder, dst, req.Key)
			}
			delete(c.migrating, req.Key)
			return target
		}
	}
}

// fallback picks who serves after an abandoned transfer: the holder
// while it lives (routing still works), else the destination — and if
// that is unreachable too, Invoke's failover path re-picks.
func fallback(holder, dst *Member) *Member {
	if holder.alive() {
		return holder
	}
	return dst
}

// migrate ships the holder's snapshot diff to dst over the fabric and
// grafts it. On any failure — including an injected wire corruption
// that the decoder rejects, or either end crashing while the diff is
// on the wire — the transfer is abandoned and the holder serves the
// request instead: migration failure degrades to routing, never to a
// failed invocation.
func (c *Cluster) migrate(p *sim.Proc, holder, dst *Member, key string) *Member {
	var wire bytes.Buffer
	if err := holder.Node.ExportSnapshot(key, &wire); err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	// Fault point: the diff is corrupted in flight. Truncating the wire
	// image makes the codec's decode fail, exercising the same path a
	// checksum mismatch would take on real hardware.
	if c.faults.Fire(fault.PointSnapshotCorrupt) {
		wire.Truncate(wire.Len() / 2)
	}
	// Decode without copying: the diff aliases wire's bytes, which stay
	// live until AdoptDiff has grafted (copied) them into local frames.
	diff, err := snapshot.ImportBytes(wire.Bytes())
	if err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	// Ship the logical page volume: unmaterialized pages travel as one
	// byte in the simulation but stand in for real content.
	n := diff.LogicalBytes()
	p.Sleep(c.transferTime(n))
	if !dst.alive() || !holder.alive() {
		// A member died while the diff was on the wire.
		c.stats.FailedMigrations++
		return fallback(holder, dst)
	}
	if err := dst.Node.AdoptDiff(p, key, diff); err != nil {
		c.stats.FailedMigrations++
		return holder
	}
	c.stats.Migrations++
	c.stats.MigratedBytes += n
	c.view.MarkResident(dst.ID, key)
	return dst
}

// fetchLayers replicates a function to dst by shipping only the stack
// layers dst's tier is missing, base-most first. The holder flushes the
// lineage to its own tier (metadata-only when the bytes are unchanged),
// then each layer either dedupes by digest (identical content already
// on dst — the runtime base always does, shipping zero bytes) or
// travels CRC-protected: a fetched layer must decode through the codec,
// name the key it claims, and match the advertised digest before dst's
// tier accepts it. Any failure abandons the fetch and the holder serves
// — fetch failure degrades to routing, never to a failed invocation.
func (c *Cluster) fetchLayers(p *sim.Proc, holder, dst *Member, key string) *Member {
	lineage := "fn/" + key
	start := c.eng.Now()
	if !holder.Node.FlushLineage(p, key) && !holder.Store.Has(lineage) {
		c.stats.FailedFetches++
		return holder
	}
	moved, fetched, deduped, err := c.shipLayers(p, holder, dst, lineage)
	if err != nil {
		c.stats.FailedFetches++
		return fallback(holder, dst)
	}
	if !dst.alive() || dst.Node.PromoteLineage(p, lineage) != nil {
		c.stats.FailedFetches++
		return fallback(holder, dst)
	}
	c.stats.Fetches++
	c.stats.FetchedBytes += moved
	c.view.MarkResident(dst.ID, key)
	now := c.eng.Now()
	c.tr.Record(trace.Event{
		At: time.Duration(start), Dur: time.Duration(now - start),
		Kind: trace.KindFetch, ID: uint64(dst.ID), Key: key,
		Path:   "fetch",
		Detail: fmt.Sprintf("%d layers fetched (%d deduped), %.1f KB from node %d", fetched, deduped, float64(moved)/1e3, holder.ID),
	})
	return dst
}

// shipLayers copies lineage's stack layers missing from dst's tier out
// of src's tier, base-most first, deduping by digest — the shared
// transfer loop under both a locality-miss fetch and a repair
// re-replication. Both ends must stay reachable for the duration: a
// member dying while a layer is on the wire aborts the copy.
func (c *Cluster) shipLayers(p *sim.Proc, src, dst *Member, lineage string) (moved int64, fetched, deduped int, err error) {
	stack := src.Store.Stack(lineage)
	if len(stack) == 0 {
		return 0, 0, 0, fmt.Errorf("cluster: member %d holds no stack for %s", src.ID, lineage)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		lk := stack[i]
		if !src.alive() || !dst.alive() {
			return moved, fetched, deduped, fault.Contain(fmt.Errorf("%w: transfer %d→%d lost mid-stack", ErrMemberDown, src.ID, dst.ID))
		}
		layer, ok := src.Store.Layer(lk)
		if !ok {
			return moved, fetched, deduped, fmt.Errorf("cluster: member %d lost layer %s mid-transfer", src.ID, lk)
		}
		if have, ok := dst.Store.Layer(lk); ok && have.Digest == layer.Digest {
			// Same key, same content: only the working-set sidecar can
			// be missing; ship that alone.
			moved += shipWorkingSet(src, dst, layer.Digest)
			c.stats.LayerDedups++
			c.rec.Inc(metrics.CtrFabricLayersDeduped)
			deduped++
			continue
		}
		if dst.Store.HasDigest(layer.Digest) && dst.Store.LinkDigest(lk, layer.Base, layer.Digest) == nil {
			// Identical content under another name: link, ship nothing
			// but the sidecar.
			moved += shipWorkingSet(src, dst, layer.Digest)
			c.stats.LayerDedups++
			c.rec.Inc(metrics.CtrFabricLayersDeduped)
			deduped++
			continue
		}
		data, err := src.Store.Get(lk)
		if err != nil {
			return moved, fetched, deduped, err
		}
		// Copy before mutating: Get's single-flight shares the backing
		// slice with concurrent readers.
		wire := append([]byte(nil), data...)
		if c.faults.Fire(fault.PointFetchDrop) {
			// One dropped packet: pay a retransmit RTT and continue.
			c.stats.FetchRetransmits++
			p.Sleep(c.cfg.LinkRTT)
		}
		if c.faults.Fire(fault.PointSnapshotCorrupt) {
			wire[len(wire)/2] ^= 0xff
		}
		p.Sleep(c.transferTime(int64(len(wire))))
		if !src.alive() || !dst.alive() {
			// A member died while the layer was on the wire.
			return moved, fetched, deduped, fault.Contain(fmt.Errorf("%w: transfer %d→%d lost mid-layer", ErrMemberDown, src.ID, dst.ID))
		}
		if err := dst.Store.PutFetched(lk, layer.Base, wire, layer.Digest); err != nil {
			c.rec.Inc(metrics.CtrFabricLayersRejected)
			c.tr.Record(trace.Event{
				At: time.Duration(c.eng.Now()), Kind: trace.KindFault, ID: uint64(dst.ID),
				Key: lk, Detail: fmt.Sprintf("fetched layer rejected: %v; holder serves", err),
			})
			return moved, fetched, deduped, err
		}
		moved += int64(len(wire))
		fetched++
		c.rec.Inc(metrics.CtrFabricLayersFetched)
		moved += shipWorkingSet(src, dst, layer.Digest)
	}
	return moved, fetched, deduped, nil
}

// shipWorkingSet piggybacks a layer's working-set sidecar on the
// transfer that just placed (or deduped) the layer on dst, so a peer's
// first lukewarm restore of a fetched lineage is already prefetched.
// The sidecar is advisory and content-addressed by the layer it rides
// with — verification happens in PutWorkingSetForDigest — so every
// failure path ships nothing and is silent. Returns the bytes moved.
func shipWorkingSet(src, dst *Member, digest uint64) int64 {
	data, ok := src.Store.WorkingSetForDigest(digest)
	if !ok {
		return 0
	}
	if _, has := dst.Store.WorkingSetForDigest(digest); has {
		return 0
	}
	if dst.Store.PutWorkingSetForDigest(digest, data) != nil {
		return 0
	}
	return int64(len(data))
}

// LocalHitsOrRoute records a directory hit.
func (s *Stats) LocalHitsOrRoute(local bool) {
	if local {
		s.LocalHits++
	} else {
		s.RemoteRoutes++
	}
}
