package cluster

import (
	"testing"

	"seuss/internal/core"
	"seuss/internal/sim"
)

// randSource surfaces the guest RNG stream in invocation output.
const randSource = `
function main(args) {
	return {a: Math.random(), b: Math.random()};
}
`

// TestFabricFetchClonesDivergeEntropy: a lineage replicated to a second
// member over the snapshot fabric deploys clones there from the SAME
// byte-identical layers the origin holds — and they still diverge. The
// assertion is pairwise: across the cold start, the replication burst,
// and one direct invocation per holding member, no two invocations ever
// observe the same RNG stream. Under the stale-seed bug this fails: two
// fresh deploys from one snapshot replay identical streams.
func TestFabricFetchClonesDivergeEntropy(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 2, Policy: PolicyMigrate, SnapDir: t.TempDir()})
	req := core.Request{Key: "acct/rand", Source: randSource, Args: "{}"}

	var outputs []string
	res, _ := invoke(t, c, eng, req)
	outputs = append(outputs, res.Output)

	// Replication burst: overload the holder until the fabric fetches
	// the lineage to the second member.
	const burst = 8
	for i := 0; i < burst; i++ {
		eng.Go("client", func(p *sim.Proc) {
			r, _, err := c.Invoke(p, req)
			if err != nil {
				t.Error(err)
				return
			}
			outputs = append(outputs, r.Output)
		})
	}
	eng.Run()
	if c.Stats().Fetches == 0 {
		t.Fatal("overload did not trigger a fabric fetch")
	}
	holders := c.Holders("acct/rand")
	if len(holders) < 2 {
		t.Fatalf("holders = %v, want the lineage on both members", holders)
	}

	// One direct invocation per holding member: each serves from its own
	// copy of the same snapshot.
	for _, id := range holders {
		n := c.Members()[id].Node
		eng.Go("direct", func(p *sim.Proc) {
			r, err := n.Invoke(p, req)
			if err != nil {
				t.Error(err)
				return
			}
			outputs = append(outputs, r.Output)
		})
		eng.Run()
	}

	seen := make(map[string]bool, len(outputs))
	for i, out := range outputs {
		if seen[out] {
			t.Errorf("invocation %d replayed an earlier RNG stream: %s", i, out)
		}
		seen[out] = true
	}
}
