package cluster

import (
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/policy"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// policyTick advances the cluster's virtual clock to `at` and runs one
// lifecycle pass across every live member.
func policyTick(t *testing.T, c *Cluster, eng *sim.Engine, at time.Duration) core.TickStats {
	t.Helper()
	var ts core.TickStats
	eng.Go("reaper", func(p *sim.Proc) {
		if d := at - time.Duration(p.Now()); d > 0 {
			p.Sleep(d)
		}
		ts = c.PolicyTick(p)
	})
	eng.Run()
	return ts
}

// TestPolicyScaleToZeroUpdatesSchedulerView: when a member's reaper
// scales a lineage to zero, the scheduler view drops the residency
// entry — placement stops treating the member as a RAM holder — and
// the next invocation lukewarm-restores and re-registers it.
func TestPolicyScaleToZeroUpdatesSchedulerView(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes:     2,
		Policy:    PolicyMigrate,
		SnapDir:   t.TempDir(),
		Lifecycle: policy.FixedKeepAlive{Window: 30 * time.Second},
	})
	req := core.Request{Key: "acct/fn", Source: workload.NOPSource, Args: "{}"}
	res, node := invoke(t, c, eng, req)
	if res.Path != core.PathCold {
		t.Fatalf("first path = %v, want cold", res.Path)
	}
	if h := c.Holders(req.Key); len(h) != 1 || h[0] != node {
		t.Fatalf("holders = %v, want [%d]", h, node)
	}

	ts := policyTick(t, c, eng, 40*time.Second)
	if ts.ExpiredUCs != 1 || ts.DemotedLineages != 1 {
		t.Fatalf("tick = %+v, want one UC expired and one lineage demoted", ts)
	}
	if h := c.Holders(req.Key); len(h) != 0 {
		t.Errorf("holders after scale-to-zero = %v, want none", h)
	}
	if m := c.Members()[node]; m.Node.CachedSnapshots() != 0 {
		t.Errorf("lineage still resident on node %d", node)
	}

	res2, node2 := invoke(t, c, eng, req)
	if res2.Path != core.PathLukewarm {
		t.Errorf("post-expiry path = %v, want lukewarm", res2.Path)
	}
	if res2.Output != res.Output {
		t.Errorf("restored output %q != original %q", res2.Output, res.Output)
	}
	if h := c.Holders(req.Key); len(h) != 1 || h[0] != node2 {
		t.Errorf("holders after restore = %v, want [%d]", h, node2)
	}
}

// TestPolicyTickSkipsDownMembers: a crashed member is skipped by the
// cluster pass — no nil-node panic, no view churn for state that died
// with the node — and lifecycle management resumes after restart.
func TestPolicyTickSkipsDownMembers(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes:     2,
		Policy:    PolicyMigrate,
		SnapDir:   t.TempDir(),
		Lifecycle: policy.FixedKeepAlive{Window: 30 * time.Second},
	})
	req := core.Request{Key: "acct/fn", Source: workload.NOPSource, Args: "{}"}
	_, node := invoke(t, c, eng, req)
	if !c.Crash(node) {
		t.Fatal("crash refused")
	}
	if ts := policyTick(t, c, eng, 40*time.Second); ts != (core.TickStats{}) {
		t.Fatalf("tick over crashed holder = %+v, want zero", ts)
	}
	eng.Go("restart", func(p *sim.Proc) {
		if err := c.Restart(p, node); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// The restarted node rebuilt from disk; serve the key again and let
	// the reaper expire it on the rebuilt member.
	invoke(t, c, eng, req)
	ts := policyTick(t, c, eng, 3*time.Minute)
	if ts.ExpiredUCs == 0 {
		t.Errorf("restarted member never resumed lifecycle management: %+v", ts)
	}
}
