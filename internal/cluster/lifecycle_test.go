package cluster

import (
	"bytes"
	"os"
	"strconv"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/sched"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// faultSeed honors the CI fault-matrix seed (SEUSS_FAULT_SEED),
// defaulting to 1.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SEUSS_FAULT_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SEUSS_FAULT_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

// otherMember returns the ID of a cluster member not in exclude.
func otherMember(t *testing.T, c *Cluster, exclude ...int) int {
	t.Helper()
	for _, m := range c.Members() {
		skip := false
		for _, e := range exclude {
			if m.ID == e {
				skip = true
			}
		}
		if !skip {
			return m.ID
		}
	}
	t.Fatal("no member left")
	return -1
}

// stackBytes snapshots a lineage's full on-disk stack from one member's
// tier: layer key -> a private copy of the encoded bytes.
func stackBytes(t *testing.T, m *Member, lineage string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, key := range m.Store.Stack(lineage) {
		data, err := m.Store.Get(key)
		if err != nil {
			t.Fatalf("member %d stack read %s: %v", m.ID, key, err)
		}
		out[key] = append([]byte(nil), data...)
	}
	if len(out) == 0 {
		t.Fatalf("member %d holds no stack for %s", m.ID, lineage)
	}
	return out
}

// TestMemberCrashFailoverAndRepair is the lifecycle acceptance test: it
// kills the sole live RAM holder of a hot lineage and proves that
// (a) the in-flight invocation fails over, contained, and succeeds on a
// live member within the retry budget, and (b) the repair pass restores
// the lineage from the disk-tier survivor — promoted back into RAM and
// re-fetched to a fresh member with byte-identical layers.
func TestMemberCrashFailoverAndRepair(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 3, Policy: PolicyMigrate, SnapDir: t.TempDir(),
		GossipInterval: time.Nanosecond, // every invocation is a heartbeat round
		MaxRetries:     2,
		RejoinLazy:     true, // restarts come back with an empty RAM tier
	})
	req := core.Request{Key: "hotfn", Source: workload.CPUBoundSource(20), Args: "{}"}
	invoke(t, c, eng, req) // cold, on node 0
	overload(t, c, eng, req, 8)

	holders := c.Holders("hotfn")
	if len(holders) < 2 || holders[0] != 0 {
		t.Fatalf("holders after overload = %v, want node 0 plus a replica", holders)
	}
	replica := holders[1]
	third := otherMember(t, c, 0, replica)
	// The bytes the repair must later reproduce, recorded from the
	// original holder's tier before anything dies.
	want := stackBytes(t, c.Members()[0], "fn/hotfn")

	// Crash node 0 and bring it back lazily: its disk tier survives but
	// its RAM copy is gone — the replica is now the sole live RAM holder.
	if !c.Crash(0) {
		t.Fatal("Crash(0) refused")
	}
	eng.Go("restart", func(p *sim.Proc) {
		if err := c.Restart(p, 0); err != nil {
			t.Errorf("restart 0: %v", err)
		}
	})
	eng.Run()
	if got := c.Holders("hotfn"); len(got) != 1 || got[0] != replica {
		t.Fatalf("holders after lazy rejoin = %v, want sole holder %d", got, replica)
	}

	// (a) Kill the sole holder while it is serving: the in-flight
	// invocation must fail over and succeed on a live member.
	var res core.Result
	var served int
	var invokeErr error
	eng.Go("client", func(p *sim.Proc) { res, served, invokeErr = c.Invoke(p, req) })
	eng.Go("killer", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // mid-execution of the 20 ms body
		if !c.Crash(replica) {
			t.Errorf("Crash(%d) refused", replica)
		}
	})
	eng.Run()
	if invokeErr != nil {
		t.Fatalf("failover lost the invocation: %v", invokeErr)
	}
	if served == replica {
		t.Fatalf("retry re-picked the crashed member %d", replica)
	}
	if res.Output == "" {
		t.Error("failover produced no output")
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Error("no failover counted for the mid-invocation crash")
	}
	if st.MemberCrashes != 2 {
		t.Errorf("MemberCrashes = %d, want 2", st.MemberCrashes)
	}

	// Orphan the lineage outright: crash the member the failover landed
	// on and bring it back lazily, so no live member holds hotfn in RAM
	// and the only live copy is node 0's disk tier.
	if !c.Crash(served) {
		t.Fatalf("Crash(%d) refused", served)
	}
	eng.Go("restart", func(p *sim.Proc) {
		if err := c.Restart(p, served); err != nil {
			t.Errorf("restart %d: %v", served, err)
		}
	})
	eng.Run()

	// Drive heartbeat rounds with unrelated traffic until the dead
	// replica's missed heartbeats pass DeadAfter; the declaration
	// schedules the repair pass.
	filler := core.Request{Key: "filler", Source: workload.NOPSource, Args: "{}"}
	for i := 0; i < 12 && c.Stats().DeadMembers == 0; i++ {
		invoke(t, c, eng, filler)
	}
	st = c.Stats()
	if st.SuspectedMembers == 0 || st.DeadMembers == 0 {
		t.Fatalf("replica never declared dead: suspected=%d dead=%d", st.SuspectedMembers, st.DeadMembers)
	}

	// (b) The repair pass ran on the sim clock: the lineage is promoted
	// back into RAM on the disk-tier survivor and re-fetched onto the
	// third member, byte-identical to the original export.
	if st.RepairsPromoted == 0 {
		t.Fatal("repair promoted nothing despite an orphaned lineage")
	}
	if st.RepairsRefetched == 0 {
		t.Fatal("repair restored no disk redundancy")
	}
	if !c.aliveResident("hotfn") {
		t.Error("no live member holds hotfn after repair")
	}
	got := stackBytes(t, c.Members()[third], "fn/hotfn")
	if len(got) != len(want) {
		t.Fatalf("repaired stack has %d layers, original %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("repaired stack missing layer %s", key)
		}
		if !bytes.Equal(g, w) {
			t.Errorf("layer %s differs from the original export (%d vs %d bytes)", key, len(g), len(w))
		}
	}

	// The repaired lineage serves warm — the cluster never pays a second
	// cluster cold for it.
	colds := c.Stats().ClusterColds
	res2, n2 := invoke(t, c, eng, req)
	if res2.Path == core.PathCold || c.Stats().ClusterColds != colds {
		t.Errorf("post-repair invocation went cold (path %v, node %d)", res2.Path, n2)
	}
}

// TestRepairColdWhenNoDiskSurvivor: when every disk copy of an orphaned
// lineage is unreachable, the repair records the "cold" outcome and the
// next request is never stranded — it cold-boots on a live member.
func TestRepairColdWhenNoDiskSurvivor(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 3, Policy: PolicyMigrate, SnapDir: t.TempDir(),
		GossipInterval: time.Nanosecond, MaxRetries: 2,
	})
	req := core.Request{Key: "doomed", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req) // cold on node 0; tier copy on node 0 only
	if !c.Crash(0) {
		t.Fatal("Crash(0) refused")
	}
	filler := core.Request{Key: "filler", Source: workload.NOPSource, Args: "{}"}
	for i := 0; i < 12 && c.Stats().DeadMembers == 0; i++ {
		invoke(t, c, eng, filler)
	}
	st := c.Stats()
	if st.DeadMembers == 0 {
		t.Fatal("crashed member never declared dead")
	}
	if st.RepairsCold == 0 {
		t.Fatalf("repair outcome not cold: %+v", st)
	}
	if st.RepairsPromoted != 0 || st.RepairsRefetched != 0 {
		t.Errorf("repair invented a copy from nowhere: %+v", st)
	}
	res, node := invoke(t, c, eng, req)
	if res.Output == "" {
		t.Fatal("request stranded after total loss")
	}
	if !c.Members()[node].alive() {
		t.Fatalf("served by non-alive member %d", node)
	}
}

// TestGossipDropRunsLivenessStateMachine drives consecutive gossip-drop
// rounds against one member's exchange (the detector cannot tell a
// lossy wire from a dead peer): the member walks alive → suspect →
// dead, its stale view entries are pruned and counted, placements keep
// landing on a live holder throughout, and — because ground truth says
// the member never died — the repair pass does no damage and the next
// landed heartbeat revives it.
func TestGossipDropRunsLivenessStateMachine(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 2, GossipInterval: time.Nanosecond,
		Faults: fault.Config{
			// Drops are consulted once per alive member per round in ID
			// order: even visits are node 1's exchanges. Rounds 2-5 drop
			// node 1 only — four consecutive misses, DeadAfter's default.
			Schedule: map[fault.Point][]uint64{fault.PointGossipDrop: {4, 6, 8, 10}},
		},
	})
	a := core.Request{Key: "a", Source: workload.NOPSource, Args: "{}"}
	b := core.Request{Key: "b", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, a) // round 1: both exchanges land; cold on node 0
	_, nb := invoke(t, c, eng, b)
	if nb != 1 {
		t.Fatalf("b cold on node %d, want 1", nb)
	}

	// Rounds keep dropping node 1's exchange; b's believed holder goes
	// suspect, so placement skips it and serves b on live node 0 — cold
	// once (node 0 never held it), then warm.
	for i := 0; i < 8 && c.Stats().DeadMembers == 0; i++ {
		res, n := invoke(t, c, eng, b)
		if n != 0 {
			t.Fatalf("invocation %d placed on node %d while it was suspect/dead, want 0", i, n)
		}
		if res.Output == "" {
			t.Fatalf("invocation %d lost", i)
		}
	}
	st := c.Stats()
	if st.SuspectedMembers != 1 || st.DeadMembers != 1 {
		t.Fatalf("state machine: suspected=%d dead=%d, want 1, 1", st.SuspectedMembers, st.DeadMembers)
	}
	if st.GossipDrops != 4 {
		t.Errorf("GossipDrops = %d, want the 4 scheduled", st.GossipDrops)
	}
	if st.StaleDirectory == 0 {
		t.Error("death declaration pruned nothing; node 1's entries should count as stale")
	}
	// False positive: node 1 is actually fine, so the scheduled repair
	// must find every lineage still live-resident and touch nothing.
	if st.RepairsPromoted != 0 || st.RepairsRefetched != 0 || st.RepairsCold != 0 || st.RepairsFailed != 0 {
		t.Errorf("repair acted on a false-positive death: %+v", st)
	}
	// The schedule is exhausted: the next round lands node 1's report
	// and revives it.
	invoke(t, c, eng, a)
	if c.Stats().RevivedMembers == 0 {
		t.Error("landed heartbeat did not revive the falsely-dead member")
	}
	if s := c.View().State(1); s != sched.StateAlive {
		t.Errorf("node 1 view state = %v after revival, want alive", s)
	}
}

// TestPartitionHealLifecycle: a partitioned member keeps running but is
// unreachable — placements avoid it, it is eventually declared dead —
// and a heal resyncs its manifest and revives it with its RAM state
// intact.
func TestPartitionHealLifecycle(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 2, GossipInterval: time.Nanosecond, MaxRetries: 1})
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}
	_, home := invoke(t, c, eng, req)

	if !c.Partition(home) {
		t.Fatalf("Partition(%d) refused", home)
	}
	if c.Partition(home) {
		t.Error("double partition accepted")
	}
	// The partitioned member is skipped: requests for its function serve
	// on the other node instead of stranding.
	for i := 0; i < 8 && c.Stats().DeadMembers == 0; i++ {
		_, n := invoke(t, c, eng, req)
		if n == home {
			t.Fatalf("invocation %d reached the partitioned member", i)
		}
	}
	st := c.Stats()
	if st.MemberPartitions != 1 || st.DeadMembers != 1 {
		t.Fatalf("partitions=%d dead=%d, want 1, 1", st.MemberPartitions, st.DeadMembers)
	}

	if !c.Heal(home) {
		t.Fatalf("Heal(%d) refused", home)
	}
	if c.Heal(home) {
		t.Error("double heal accepted")
	}
	// RAM state survived the partition: the healed member's snapshot is
	// back in the view without any transfer or repair.
	if !c.Members()[home].Node.HasSnapshot("fn") {
		t.Error("partition destroyed RAM state")
	}
	if !c.View().Resident(home, "fn") {
		t.Error("heal did not resync the member's manifest")
	}
	if c.Stats().RevivedMembers == 0 {
		t.Error("heal did not revive the member")
	}
	states := c.MemberStates()
	if states[home].State != "alive" || !states[home].Up || states[home].Partitioned {
		t.Errorf("member state after heal = %+v", states[home])
	}
}

// TestRestartGuards: Restart refuses an up member (partitions heal via
// Heal), Crash refuses a down member, and a restart without RejoinLazy
// prewarms the surviving disk tier so the function serves warm with no
// transfer.
func TestRestartGuards(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 2, Policy: PolicyMigrate, SnapDir: t.TempDir()})
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}
	_, home := invoke(t, c, eng, req)
	overload(t, c, eng, req, 8) // flushes the lineage to home's tier

	var err error
	eng.Go("restart-up", func(p *sim.Proc) { err = c.Restart(p, home) })
	eng.Run()
	if err == nil {
		t.Error("Restart accepted an up member")
	}
	if !c.Crash(home) {
		t.Fatal("Crash refused an up member")
	}
	if c.Crash(home) {
		t.Error("Crash accepted a down member")
	}
	if c.Members()[home].Node != nil {
		t.Error("crashed member kept its node")
	}
	eng.Go("restart", func(p *sim.Proc) { err = c.Restart(p, home) })
	eng.Run()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	// Eager rejoin: the tier's lineages are promoted before traffic.
	if !c.Members()[home].Node.HasSnapshot("fn") {
		t.Error("restart did not prewarm the surviving disk tier")
	}
	if !c.View().Resident(home, "fn") {
		t.Error("rejoin resync did not advertise the prewarmed lineage")
	}
	if c.Stats().MemberRestarts != 1 {
		t.Errorf("MemberRestarts = %d, want 1", c.Stats().MemberRestarts)
	}
}

// TestMemberCrashDuringFetch: a member dying while layers are on the
// wire aborts the transfer, contained; every invocation still succeeds
// via fallback and failover.
func TestMemberCrashDuringFetch(t *testing.T) {
	c, eng := newCluster(t, Config{
		Nodes: 2, Policy: PolicyMigrate, SnapDir: t.TempDir(),
		GossipInterval: time.Hour, // lifecycle points stay quiet; the test hook crashes
		MaxRetries:     3,
	})
	req := core.Request{Key: "hotfn", Source: workload.CPUBoundSource(20), Args: "{}"}
	invoke(t, c, eng, req) // cold on node 0

	done := 0
	for i := 0; i < 8; i++ {
		eng.Go("client", func(p *sim.Proc) {
			if _, _, err := c.Invoke(p, req); err != nil {
				t.Error(err)
				return
			}
			done++
		})
	}
	// The overload triggers a layer fetch from node 0 almost
	// immediately; kill the source while the stack is on the wire.
	eng.Go("killer", func(p *sim.Proc) {
		p.Sleep(200 * time.Microsecond)
		if !c.Crash(0) {
			t.Error("Crash(0) refused")
		}
	})
	eng.Run()
	if done != 8 {
		t.Fatalf("served %d/8 with the fetch source crashing mid-transfer", done)
	}
	st := c.Stats()
	if st.MemberCrashes != 1 {
		t.Errorf("MemberCrashes = %d, want 1", st.MemberCrashes)
	}
	if st.FailedFetches == 0 && st.Failovers == 0 {
		t.Error("crash mid-fetch left no trace: no failed fetch, no failover")
	}
}

// TestLifecycleFaultDeterminism: the same seed replays the same
// lifecycle chaos — crashes, partitions, restarts, failovers, repairs —
// to identical cluster stats, and every surfaced error is contained.
// Honors the CI fault-matrix seed.
func TestLifecycleFaultDeterminism(t *testing.T) {
	seed := faultSeed(t)
	run := func() Stats {
		eng := sim.NewEngine()
		c, err := New(eng, Config{
			Nodes: 3, Policy: PolicyMigrate, SnapDir: t.TempDir(),
			GossipInterval: time.Millisecond,
			MaxRetries:     3,
			Faults: fault.Config{
				Seed: seed, Rate: 0.05,
				Points: []fault.Point{
					fault.PointMemberCrash, fault.PointMemberRestart, fault.PointMemberPartition,
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			key := []string{"a/fn", "b/fn", "c/fn"}[i%3]
			eng.Go("client", func(p *sim.Proc) {
				_, _, err := c.Invoke(p, core.Request{Key: key, Source: workload.CPUBoundSource(5), Args: "{}"})
				if err != nil && !fault.IsContained(err) {
					t.Errorf("uncontained error under lifecycle chaos: %v", err)
				}
			})
			eng.Run()
		}
		return c.Stats()
	}
	st1 := run()
	st2 := run()
	if st1 != st2 {
		t.Fatalf("same seed, different lifecycle stats:\n%+v\n%+v", st1, st2)
	}
	if st1.MemberCrashes+st1.MemberPartitions == 0 {
		t.Skipf("seed %d injected no lifecycle faults in 30 invocations", seed)
	}
}
