// Cluster-scope lifecycle management: each member runs the core
// reaper over its private policy clone, and the transitions the reaper
// makes are reflected into the shared scheduler view so placement
// never routes to a lineage the policy just scaled to zero — and
// routes *toward* one a prewarm just brought back.
package cluster

import (
	"seuss/internal/core"
	"seuss/internal/sim"
)

// lifecycleResidency bridges one member's reaper transitions into the
// scheduler view. It fires only from reaper paths (PolicyTick on the
// cluster's single engine goroutine), so no locking beyond the view's
// own is needed.
type lifecycleResidency struct {
	c  *Cluster
	id int
}

func (r lifecycleResidency) LineageDemoted(key string) {
	r.c.view.DropResident(r.id, key)
}

func (r lifecycleResidency) LineagePromoted(key string) {
	r.c.view.MarkResident(r.id, key)
}

// PolicyTick runs one lifecycle-reaper pass on every live member at
// the current virtual instant and returns the aggregate. Crashed and
// partitioned members are skipped: a partitioned node's own reaper
// would keep running in reality, but its view updates could not
// propagate — deferring its pass until heal keeps the view exact,
// which the repair pass depends on. No-op without Config.Lifecycle.
func (c *Cluster) PolicyTick(p *sim.Proc) core.TickStats {
	var ts core.TickStats
	if c.cfg.Lifecycle == nil {
		return ts
	}
	for _, m := range c.members {
		if !m.alive() || m.Node == nil {
			continue
		}
		ts.Add(m.Node.PolicyTick(p))
	}
	return ts
}
