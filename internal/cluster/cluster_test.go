package cluster

import (
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

func newCluster(t *testing.T, cfg Config) (*Cluster, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, eng
}

// invoke runs one request to completion.
func invoke(t *testing.T, c *Cluster, eng *sim.Engine, req core.Request) (core.Result, int) {
	t.Helper()
	var res core.Result
	var node int
	var err error
	eng.Go("client", func(p *sim.Proc) {
		res, node, err = c.Invoke(p, req)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, node
}

func TestEmptyClusterRejected(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Nodes: -1}); err == nil {
		t.Error("negative node count accepted")
	}
}

func TestColdOncePerCluster(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 3})
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}

	res1, n1 := invoke(t, c, eng, req)
	if res1.Path != core.PathCold {
		t.Errorf("first = %v", res1.Path)
	}
	// Subsequent invocations anywhere in the cluster are warm or hot —
	// even when they land on different nodes.
	for i := 0; i < 6; i++ {
		res, _ := invoke(t, c, eng, req)
		if res.Path == core.PathCold {
			t.Errorf("invocation %d went cold again", i)
		}
	}
	if c.Stats().ClusterColds != 1 {
		t.Errorf("cluster colds = %d", c.Stats().ClusterColds)
	}
	if len(c.Holders("fn")) == 0 || c.Holders("fn")[0] != n1 {
		t.Errorf("directory = %v", c.Holders("fn"))
	}
}

func TestMigrationReplicatesUnderLoad(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 2, Policy: PolicyMigrate})
	req := core.Request{Key: "hotfn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req) // cold on one node

	// Concurrent requests overload the holder; the policy migrates the
	// snapshot to the other node.
	done := 0
	for i := 0; i < 8; i++ {
		eng.Go("client", func(p *sim.Proc) {
			if _, _, err := c.Invoke(p, req); err != nil {
				t.Error(err)
				return
			}
			done++
		})
	}
	eng.Run()
	if done != 8 {
		t.Fatal("requests lost")
	}
	st := c.Stats()
	if st.Migrations == 0 {
		t.Error("no migrations under concurrent load")
	}
	if st.MigratedBytes == 0 {
		t.Error("migration moved no bytes")
	}
	if len(c.Holders("hotfn")) != 2 {
		t.Errorf("holders = %v, want both nodes", c.Holders("hotfn"))
	}
	// Both nodes now hold the snapshot for real.
	for _, m := range c.Members() {
		if !m.Node.HasSnapshot("hotfn") {
			t.Errorf("node %d missing replicated snapshot", m.ID)
		}
	}
}

func TestRoutePolicyDoesNotReplicate(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 2, Policy: PolicyRoute})
	req := core.Request{Key: "fn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req)
	for i := 0; i < 8; i++ {
		eng.Go("client", func(p *sim.Proc) { c.Invoke(p, req) })
	}
	eng.Run()
	if c.Stats().Migrations != 0 {
		t.Errorf("route policy migrated %d times", c.Stats().Migrations)
	}
	if len(c.Holders("fn")) != 1 {
		t.Errorf("holders = %v", c.Holders("fn"))
	}
}

func TestLoadSpreadsAcrossNodes(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 4})
	served := map[int]int{}
	for i := 0; i < 16; i++ {
		key := "fn" + string(rune('a'+i))
		req := core.Request{Key: key, Source: workload.NOPSource, Args: "{}"}
		_, n := invoke(t, c, eng, req)
		served[n]++
	}
	// 16 distinct cold functions across 4 nodes: sequential invocations
	// land on the least-loaded node, which round-robins the members.
	for id, count := range served {
		if count == 0 {
			t.Errorf("node %d served nothing", id)
		}
	}
	if len(served) != 4 {
		t.Errorf("only %d nodes used", len(served))
	}
}

func TestMigrationCostScalesWithDiff(t *testing.T) {
	c, _ := newCluster(t, Config{Nodes: 2})
	small := c.transferTime(1 << 20)
	big := c.transferTime(100 << 20)
	if big <= small {
		t.Errorf("transfer time not monotone: %v vs %v", small, big)
	}
	// 2 MB over 10 GbE ≈ 1.7 ms + RTT.
	d := c.transferTime(2 << 20)
	if d < time.Millisecond || d > 4*time.Millisecond {
		t.Errorf("2MB transfer = %v", d)
	}
}

func TestDirectoryStaleEntryRecovers(t *testing.T) {
	// Force the holder to evict by memory pressure, then re-invoke: the
	// cluster must recover (cold again or re-adopt) rather than fail.
	cfg := Config{Nodes: 2}
	cfg.NodeConfig = core.DefaultConfig()
	cfg.NodeConfig.MemoryBytes = 170 << 20
	c, eng := newCluster(t, cfg)

	first := core.Request{Key: "victim", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, first)
	// Flood both nodes with other functions to force eviction of
	// "victim" everywhere.
	for i := 0; i < 40; i++ {
		req := core.Request{Key: "filler" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Source: workload.NOPSource, Args: "{}"}
		invoke(t, c, eng, req)
	}
	res, _ := invoke(t, c, eng, first)
	if res.Output == "" {
		t.Error("stale directory broke the invocation")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyRoute.String() != "route" || PolicyMigrate.String() != "migrate" {
		t.Error("policy names")
	}
}

func TestUniqueWorkloadScalesWithNodes(t *testing.T) {
	// Aggregate CPU capacity grows with node count: 2 small nodes chew
	// through a CPU-bound unique-function stream materially faster
	// than 1.
	run := func(nodes int) time.Duration {
		eng := sim.NewEngine()
		cfg := Config{Nodes: nodes}
		cfg.NodeConfig = core.DefaultConfig()
		cfg.NodeConfig.Cores = 4
		c, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		queue := sim.NewQueue(eng)
		for i := 0; i < 64; i++ {
			queue.Put(core.Request{Key: "u" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Source: workload.CPUBoundSource(50), Args: "{}"})
		}
		queue.Close()
		for w := 0; w < 16; w++ {
			eng.Go("w", func(p *sim.Proc) {
				for {
					v, ok := queue.Get(p)
					if !ok {
						return
					}
					if _, _, err := c.Invoke(p, v.(core.Request)); err != nil {
						t.Error(err)
						return
					}
				}
			})
		}
		eng.Run()
		return time.Duration(eng.Now())
	}
	one := run(1)
	two := run(2)
	if float64(two) > 0.75*float64(one) {
		t.Errorf("2 nodes (%v) not materially faster than 1 (%v)", two, one)
	}
}

func TestDirectoryStatsAccounting(t *testing.T) {
	c, eng := newCluster(t, Config{Nodes: 2, Policy: PolicyRoute})
	req := core.Request{Key: "acct/fn", Source: workload.NOPSource, Args: "{}"}
	invoke(t, c, eng, req) // cluster cold
	for i := 0; i < 4; i++ {
		invoke(t, c, eng, req) // directory hits
	}
	st := c.Stats()
	if st.ClusterColds != 1 {
		t.Errorf("colds = %d", st.ClusterColds)
	}
	if st.LocalHits+st.RemoteRoutes != 4 {
		t.Errorf("hits %d + routes %d != 4", st.LocalHits, st.RemoteRoutes)
	}
}
