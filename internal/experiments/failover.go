package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"seuss/internal/cluster"
	"seuss/internal/faas"
	"seuss/internal/metrics"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// FailoverPhase is one measured window of the member-failure timeline.
type FailoverPhase struct {
	Phase  string
	PerSec float64
	P50    time.Duration
	P99    time.Duration
	Errors int
}

// FigureFailover is the member-failure lifecycle experiment: one
// cluster carries a steady workload through a member crash, the
// suspicion window, the repair pass, and the member's rejoin — the
// graceful-degradation claim measured as a throughput/latency timeline.
type FigureFailover struct {
	Phases []FailoverPhase
	Nodes  int
	N      int // invocations measured per phase
	C      int
	M      int // unique functions
	// RecoveryRatio is post-rejoin throughput over pre-crash throughput
	// (the acceptance bar is >= 0.9).
	RecoveryRatio float64
	// Stats is the cluster's final counter state: failovers, liveness
	// transitions, and repair outcomes accumulated across the timeline.
	Stats cluster.Stats
}

// FailoverConfig scales the experiment.
type FailoverConfig struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// N is invocations measured per phase (default 600).
	N int
	// C is worker threads (default: one per node).
	C int
	// M is the unique-function count (default 24) — small enough that
	// the crashed member's lineages are hot, so its loss is felt.
	M int
	// Seed fixes the random send orders.
	Seed int64
	// SnapDir roots the per-node snapshot tiers; empty uses a temporary
	// directory removed when the run finishes.
	SnapDir string
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.N == 0 {
		c.N = 600
	}
	if c.C == 0 {
		// Oversubscribed on purpose: holders must saturate so the hot
		// lineages replicate across tiers before the crash — that prior
		// replication is what the repair pass later restores from.
		c.C = 2 * c.Nodes
	}
	if c.M == 0 {
		c.M = 24
	}
	return c
}

// RunFailover executes the timeline on ONE cluster deployment — unlike
// the sweep experiments, the phases must share state, because the
// experiment is about what a crash does to state the cluster already
// has. Phase boundaries are the lifecycle events themselves: crash the
// victim after the first measurement, measure through the suspicion
// and repair window, then again after repair settles, then restart the
// victim and measure the rejoined cluster.
func RunFailover(cfg FailoverConfig) (FigureFailover, error) {
	cfg = cfg.withDefaults()
	if cfg.SnapDir == "" {
		dir, err := os.MkdirTemp("", "seuss-failover")
		if err != nil {
			return FigureFailover{}, err
		}
		defer os.RemoveAll(dir)
		cfg.SnapDir = dir
	}
	out := FigureFailover{Nodes: cfg.Nodes, N: cfg.N, C: cfg.C, M: cfg.M}

	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:      cfg.Nodes,
		Policy:     cluster.PolicyMigrate,
		SnapDir:    cfg.SnapDir,
		MaxRetries: 3,
	})
	if err != nil {
		return out, err
	}
	plat := faas.NewCluster(eng, faas.NewSeussDistBackend(eng, cl))

	// CPU-bound bodies keep holders busy enough to trigger replication
	// and leave invocations in flight when the crash lands.
	fns := make([]workload.Spec, cfg.M)
	for i := range fns {
		fns[i] = workload.CPUSpec(fmt.Sprintf("fn%02d", i), 2)
	}
	seed := cfg.Seed
	phase := func(name string, warmup int) FailoverPhase {
		seed++ // distinct send order per phase, still deterministic
		res := workload.Trial{N: cfg.N, Fns: fns, C: cfg.C, Seed: seed, Warmup: warmup}.Run(eng, plat)
		sum := res.Summary()
		return FailoverPhase{Phase: name, PerSec: res.SteadyThroughput(), P50: sum.P50, P99: sum.P99, Errors: res.Errors}
	}

	// Pre-crash: warm the working set in, then measure the baseline.
	out.Phases = append(out.Phases, phase("pre-crash", 2*cfg.M))

	// Suspicion window: the victim dies mid-phase, under load — member 0
	// seeded the working set's cold starts, so it is a hot holder and
	// in-flight invocations fail over. The member walks suspect → dead
	// as heartbeats go missing, and the repair pass re-replicates its
	// orphaned lineages while the measurement continues.
	const victim = 0
	eng.Go("killer", func(p *sim.Proc) {
		p.Sleep(20 * time.Millisecond)
		// Land the crash while the victim is mid-invocation, so the
		// timeline exercises the in-flight failover path and not just
		// the placement skip. The wait is bounded: under this load the
		// victim picks up work within a few scheduling quanta.
		v := cl.Members()[victim]
		for i := 0; i < 1000 && v.Inflight() == 0; i++ {
			p.Sleep(100 * time.Microsecond)
		}
		cl.Crash(victim)
	})
	out.Phases = append(out.Phases, phase("suspicion", 0))

	// After repair: by now the victim must be declared dead and its
	// lineages repaired; measure the two-node steady state.
	if cl.Stats().DeadMembers == 0 {
		return out, fmt.Errorf("failover: victim not declared dead after the suspicion phase (rounds=%d)", cl.Stats().GossipRounds)
	}
	out.Phases = append(out.Phases, phase("after-repair", 0))

	// Rejoin: restart the victim over its surviving disk tier (eager
	// prewarm) and measure the recovered cluster.
	var restartErr error
	eng.Go("restart", func(p *sim.Proc) { restartErr = cl.Restart(p, victim) })
	eng.Run()
	if restartErr != nil {
		return out, restartErr
	}
	out.Phases = append(out.Phases, phase("after-rejoin", cfg.M))

	out.Stats = cl.Stats()
	if pre := out.Phases[0].PerSec; pre > 0 {
		out.RecoveryRatio = out.Phases[len(out.Phases)-1].PerSec / pre
	}
	return out, nil
}

// Render formats the timeline.
func (f FigureFailover) Render() string {
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
	tab := metrics.Table{Header: []string{"Phase", "req/s", "p50 (ms)", "p99 (ms)", "errors"}}
	for _, p := range f.Phases {
		tab.AddRow(p.Phase, fmt.Sprintf("%.1f", p.PerSec), ms(p.P50), ms(p.P99), fmt.Sprintf("%d", p.Errors))
	}
	st := f.Stats
	return fmt.Sprintf("Member-failure lifecycle: %d-node cluster, %d fns (N=%d, C=%d per phase)\n\n", f.Nodes, f.M, f.N, f.C) +
		tab.String() +
		fmt.Sprintf("\npost-rejoin/pre-crash throughput: %.2fx\n", f.RecoveryRatio) +
		fmt.Sprintf("failovers=%d suspected=%d dead=%d revived=%d repairs: promoted=%d refetched=%d cold=%d failed=%d\n",
			st.Failovers, st.SuspectedMembers, st.DeadMembers, st.RevivedMembers,
			st.RepairsPromoted, st.RepairsRefetched, st.RepairsCold, st.RepairsFailed)
}

// TSV renders the timeline as tab-separated values for plotting.
func (f FigureFailover) TSV() string {
	var sb strings.Builder
	sb.WriteString("phase\trps\tp50_us\tp99_us\terrors\n")
	for _, p := range f.Phases {
		fmt.Fprintf(&sb, "%s\t%.2f\t%d\t%d\t%d\n", p.Phase, p.PerSec, p.P50.Microseconds(), p.P99.Microseconds(), p.Errors)
	}
	return sb.String()
}
