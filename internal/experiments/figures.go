package experiments

import (
	"fmt"
	"strings"
	"time"

	"seuss/internal/core"
	"seuss/internal/faas"
	"seuss/internal/metrics"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// steadyWarmup returns how many unmeasured invocations precede the
// measurement window: the paper streams requests "until the measured
// throughput reaches a point of stability". Small sets need roughly
// two passes to build their warm caches; large sets are in steady
// churn immediately.
func steadyWarmup(m int) int {
	w := 4 * m
	if w > 1024 {
		w = 1024
	}
	if w < 512 {
		w = 512
	}
	return w
}

// Figure4Point is one trial of the throughput experiment: a function
// set size and the throughput each backend sustained.
type Figure4Point struct {
	SetSize        int
	SeussPerSec    float64
	LinuxPerSec    float64
	SeussErrors    int
	LinuxErrors    int
	SeussColdShare float64 // fraction of requests served cold
}

// Figure4 is the platform-throughput sweep.
type Figure4 struct {
	Points []Figure4Point
	N      int
	C      int
}

// Figure4Config scales the experiment. The paper doubles M from 64 to
// 65536 with 32 worker threads on a continuous stream; we measure N
// requests per trial after warmup (with N ≥ several times the
// steady-state working set this matches the stream's stable point).
type Figure4Config struct {
	// SetSizes lists the M values (default 64…65536 doubling).
	SetSizes []int
	// N is invocations measured per trial (default 1200).
	N int
	// C is worker threads (default 32, as in the paper).
	C int
	// Seed fixes the random send orders.
	Seed int64
}

func (c Figure4Config) withDefaults() Figure4Config {
	if len(c.SetSizes) == 0 {
		for m := 64; m <= 65536; m *= 2 {
			c.SetSizes = append(c.SetSizes, m)
		}
	}
	if c.N == 0 {
		c.N = 1200
	}
	if c.C == 0 {
		c.C = 32
	}
	return c
}

// RunFigure4 executes the sweep: each trial runs on a fresh platform
// deployment, exactly as the paper re-deploys OpenWhisk per trial.
func RunFigure4(cfg Figure4Config) (Figure4, error) {
	cfg = cfg.withDefaults()
	out := Figure4{N: cfg.N, C: cfg.C}
	for _, m := range cfg.SetSizes {
		fns := make([]workload.Spec, m)
		for i := range fns {
			fns[i] = workload.NOPSpec(i)
		}
		trial := workload.Trial{N: cfg.N, Fns: fns, C: cfg.C, Seed: cfg.Seed, Warmup: steadyWarmup(m)}

		// SEUSS backend.
		engS := sim.NewEngine()
		nodeS, err := core.NewNode(engS, core.DefaultConfig())
		if err != nil {
			return out, err
		}
		clusterS := faas.NewCluster(engS, faas.NewSeussBackend(nodeS))
		resS := trial.Run(engS, clusterS)

		// Linux backend ('stemcell' cache disabled for throughput, per §7).
		engL := sim.NewEngine()
		clusterL := faas.NewCluster(engL, faas.NewLinuxBackend(engL, faas.LinuxConfig{Seed: cfg.Seed}))
		resL := trial.Run(engL, clusterL)

		coldShare := 0.0
		if st := nodeS.Stats(); st.Cold+st.Warm+st.Hot > 0 {
			coldShare = float64(st.Cold) / float64(st.Cold+st.Warm+st.Hot)
		}
		out.Points = append(out.Points, Figure4Point{
			SetSize:        m,
			SeussPerSec:    resS.SteadyThroughput(),
			LinuxPerSec:    resL.SteadyThroughput(),
			SeussErrors:    resS.Errors,
			LinuxErrors:    resL.Errors,
			SeussColdShare: coldShare,
		})
	}
	return out, nil
}

// Render formats the sweep as the Figure 4 series.
func (f Figure4) Render() string {
	tab := metrics.Table{Header: []string{"Set Size (M)", "SEUSS (req/s)", "Linux (req/s)", "SEUSS/Linux", "Linux errors", "SEUSS cold%"}}
	for _, p := range f.Points {
		ratio := 0.0
		if p.LinuxPerSec > 0 {
			ratio = p.SeussPerSec / p.LinuxPerSec
		}
		tab.AddRow(
			fmt.Sprintf("%d", p.SetSize),
			fmt.Sprintf("%.1f", p.SeussPerSec),
			fmt.Sprintf("%.1f", p.LinuxPerSec),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%d", p.LinuxErrors),
			fmt.Sprintf("%.0f%%", p.SeussColdShare*100),
		)
	}
	return fmt.Sprintf("Figure 4: OpenWhisk platform throughput (N=%d, C=%d per trial)\n\n", f.N, f.C) + tab.String()
}

// TSV renders the series as tab-separated values for plotting.
func (f Figure4) TSV() string {
	var sb strings.Builder
	sb.WriteString("set_size\tseuss_rps\tlinux_rps\tlinux_errors\n")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%d\t%.2f\t%.2f\t%d\n", p.SetSize, p.SeussPerSec, p.LinuxPerSec, p.LinuxErrors)
	}
	return sb.String()
}

// Figure5Row is the latency distribution of one backend at one set
// size.
type Figure5Row struct {
	Backend string
	SetSize int
	Summary metrics.Summary
	Errors  int
}

// Figure5 is the end-to-end latency percentile experiment.
type Figure5 struct {
	Rows []Figure5Row
}

// RunFigure5 measures end-to-end request latency distributions at the
// three set sizes of the paper's figure.
func RunFigure5(setSizes []int, n int, seed int64) (Figure5, error) {
	if len(setSizes) == 0 {
		setSizes = []int{64, 2048, 65536}
	}
	if n == 0 {
		n = 1000
	}
	var out Figure5
	for _, m := range setSizes {
		fns := make([]workload.Spec, m)
		for i := range fns {
			fns[i] = workload.NOPSpec(i)
		}
		trial := workload.Trial{N: n, Fns: fns, C: 32, Seed: seed, Warmup: steadyWarmup(m)}

		engS := sim.NewEngine()
		nodeS, err := core.NewNode(engS, core.DefaultConfig())
		if err != nil {
			return out, err
		}
		resS := trial.Run(engS, faas.NewCluster(engS, faas.NewSeussBackend(nodeS)))
		out.Rows = append(out.Rows, Figure5Row{Backend: "seuss", SetSize: m, Summary: resS.Summary(), Errors: resS.Errors})

		engL := sim.NewEngine()
		resL := trial.Run(engL, faas.NewCluster(engL, faas.NewLinuxBackend(engL, faas.LinuxConfig{Seed: seed})))
		out.Rows = append(out.Rows, Figure5Row{Backend: "linux", SetSize: m, Summary: resL.Summary(), Errors: resL.Errors})
	}
	return out, nil
}

// Render formats the Figure 5 quantiles.
func (f Figure5) Render() string {
	tab := metrics.Table{Header: []string{"Backend", "M", "p1", "p25", "p50", "p75", "p99", "mean", "errors"}}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
	for _, r := range f.Rows {
		tab.AddRow(r.Backend, fmt.Sprintf("%d", r.SetSize),
			ms(r.Summary.P1), ms(r.Summary.P25), ms(r.Summary.P50),
			ms(r.Summary.P75), ms(r.Summary.P99), ms(r.Summary.Mean),
			fmt.Sprintf("%d", r.Errors))
	}
	return "Figure 5: End-to-end request latency of a NOP function (ms)\n\n" + tab.String()
}

// BurstResult is one backend's outcome in a burst experiment.
type BurstResult struct {
	Backend          string
	Period           time.Duration
	BackgroundCount  int
	BackgroundErrors int
	BurstCount       int
	BurstErrors      int
	BackgroundP99    time.Duration
	BurstP99         time.Duration
	MaxBackgroundGap time.Duration
	Timeline         *metrics.Timeline
}

// FigureBurst is one of Figures 6-8: both backends exposed to the same
// burst schedule.
type FigureBurst struct {
	Period time.Duration
	Seuss  BurstResult
	Linux  BurstResult
}

// BurstConfig parameterizes the burst experiments; zero values take the
// paper's setup.
type BurstConfig struct {
	Period     time.Duration // 32 s, 16 s, or 8 s
	Bursts     int           // default 10
	BurstSize  int           // default 128 (not stated in the paper; chosen so the container cache limit is hit around the 5th burst at the 32 s period, as §7 reports)
	Threads    int           // default 128
	BGFns      int           // default 16
	BGRate     float64       // default 72 req/s
	IOBlock    time.Duration // default 250 ms
	BurstCPUms int           // default 150
	Seed       int64
	// LinuxContainerLimit defaults to 1024 (the bridge's endpoint
	// limit, as in the throughput runs).
	LinuxContainerLimit int
}

func (c BurstConfig) withDefaults() BurstConfig {
	if c.Period == 0 {
		c.Period = 32 * time.Second
	}
	if c.Bursts == 0 {
		c.Bursts = 10
	}
	if c.BurstSize == 0 {
		c.BurstSize = 128
	}
	if c.Threads == 0 {
		c.Threads = 128
	}
	if c.BGFns == 0 {
		c.BGFns = 16
	}
	if c.BGRate == 0 {
		c.BGRate = 72
	}
	if c.IOBlock == 0 {
		c.IOBlock = 250 * time.Millisecond
	}
	if c.BurstCPUms == 0 {
		c.BurstCPUms = 150
	}
	if c.LinuxContainerLimit == 0 {
		c.LinuxContainerLimit = 1024
	}
	return c
}

// RunBurst executes one burst experiment (one of Figures 6-8) on both
// backends.
func RunBurst(cfg BurstConfig) (FigureBurst, error) {
	cfg = cfg.withDefaults()
	out := FigureBurst{Period: cfg.Period}

	mkBurst := func() workload.Burst {
		fns := make([]workload.Spec, cfg.BGFns)
		for i := range fns {
			fns[i] = workload.IOSpec(fmt.Sprintf("bg%02d/io", i), "http://ext/block", cfg.IOBlock)
		}
		return workload.Burst{
			Threads:    cfg.Threads,
			BGFns:      fns,
			BGRate:     cfg.BGRate,
			BurstEvery: cfg.Period,
			BurstSize:  cfg.BurstSize,
			BurstCPUms: cfg.BurstCPUms,
			Bursts:     cfg.Bursts,
			Seed:       cfg.Seed,
		}
	}

	// SEUSS node: the external HTTP server blocks IOBlock then replies.
	engS := sim.NewEngine()
	nodeCfg := core.DefaultConfig()
	nodeCfg.HTTPHandler = func(url string) (string, time.Duration, error) {
		return "OK", cfg.IOBlock, nil
	}
	nodeS, err := core.NewNode(engS, nodeCfg)
	if err != nil {
		return out, err
	}
	clusterS := faas.NewCluster(engS, faas.NewSeussBackend(nodeS))
	// The SEUSS guest blocks inside http.get; the workload Spec's IO
	// field is for the Linux model, so zero it to avoid double counting.
	bS := mkBurst()
	for i := range bS.BGFns {
		bS.BGFns[i].IO = 0
	}
	tlS := bS.Run(engS, clusterS)
	out.Seuss = summarizeBurst("seuss", cfg.Period, tlS)

	// Linux node: stemcell cache 256, as configured for this experiment.
	engL := sim.NewEngine()
	clusterL := faas.NewCluster(engL, faas.NewLinuxBackend(engL, faas.LinuxConfig{
		Seed:           cfg.Seed,
		Stemcells:      256,
		ContainerLimit: cfg.LinuxContainerLimit,
	}))
	tlL := mkBurst().Run(engL, clusterL)
	out.Linux = summarizeBurst("linux", cfg.Period, tlL)
	return out, nil
}

func summarizeBurst(backend string, period time.Duration, tl *metrics.Timeline) BurstResult {
	bg := metrics.Summarize(tl.Latencies("background"))
	bu := metrics.Summarize(tl.Latencies("burst"))
	return BurstResult{
		Backend:          backend,
		Period:           period,
		BackgroundCount:  tl.Count("background"),
		BackgroundErrors: tl.Errors("background"),
		BurstCount:       tl.Count("burst"),
		BurstErrors:      tl.Errors("burst"),
		BackgroundP99:    bg.P99,
		BurstP99:         bu.P99,
		MaxBackgroundGap: tl.MaxGap("background"),
		Timeline:         tl,
	}
}

// Render formats the burst experiment summary.
func (f FigureBurst) Render() string {
	tab := metrics.Table{Header: []string{"Backend", "bg reqs", "bg errors", "bg p99", "max bg gap", "burst reqs", "burst errors", "burst p99"}}
	row := func(r BurstResult) {
		tab.AddRow(r.Backend,
			fmt.Sprintf("%d", r.BackgroundCount), fmt.Sprintf("%d", r.BackgroundErrors),
			r.BackgroundP99.Round(time.Millisecond).String(), r.MaxBackgroundGap.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.BurstCount), fmt.Sprintf("%d", r.BurstErrors),
			r.BurstP99.Round(time.Millisecond).String())
	}
	row(f.Linux)
	row(f.Seuss)
	return fmt.Sprintf("Figures 6-8: request bursts every %v\n\n", f.Period) + tab.String()
}

// TSV renders both timelines as tab-separated scatter data
// (backend, kind, sent_s, latency_ms, error).
func (f FigureBurst) TSV() string {
	var sb strings.Builder
	sb.WriteString("backend\tkind\tsent_s\tlatency_ms\terror\n")
	write := func(backend string, tl *metrics.Timeline) {
		for _, p := range tl.Points {
			e := 0
			if p.Err {
				e = 1
			}
			fmt.Fprintf(&sb, "%s\t%s\t%.3f\t%.3f\t%d\n",
				backend, p.Kind, p.Sent.Seconds(), float64(p.Latency.Microseconds())/1000, e)
		}
	}
	write("linux", f.Linux.Timeline)
	write("seuss", f.Seuss.Timeline)
	return sb.String()
}
