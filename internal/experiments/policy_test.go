package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestPolicyTradeoffs is the scaled-down acceptance run for the
// lifecycle-policy experiment — the same three-band trace as the full
// figure at a fraction of the key count. The inequalities it pins are
// the ones results/policy.tsv is gated on: Hybrid must beat
// NoKeepAlive on tail latency (prewarms turn lukewarm restores into
// warm starts) while holding less resident RAM than FixedKeepAlive
// (scale-to-zero between predicted arrivals; one-shot keys retire on
// the short default window).
func TestPolicyTradeoffs(t *testing.T) {
	f, err := RunPolicy(PolicyConfig{
		HotKeys:      20,
		PeriodicKeys: 60,
		OnceKeys:     200,
		Horizon:      26 * time.Minute,
		Warmup:       14 * time.Minute,
		Seed:         1,
		SnapDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Arms) != 3 {
		t.Fatalf("arms = %d, want 3", len(f.Arms))
	}
	byName := map[string]PolicyArm{}
	for _, a := range f.Arms {
		byName[a.Policy] = a
	}
	none, fixed, hybrid := byName["none"], byName["fixed"], byName["hybrid"]
	for name, a := range byName {
		if a.Measured == 0 {
			t.Fatalf("arm %q measured nothing", name)
		}
		if a.Cold != 0 {
			t.Errorf("arm %q saw %d cold starts inside the window (every key warmed up)", name, a.Cold)
		}
	}

	// The latency side: prediction beats scale-to-zero on the tail.
	if hybrid.P99 >= none.P99 {
		t.Errorf("hybrid p99 %v not below none p99 %v", hybrid.P99, none.P99)
	}
	if frac := float64(hybrid.Lukewarm) / float64(hybrid.Measured); frac >= 0.01 {
		t.Errorf("hybrid lukewarm fraction %.3f, want < 1%% in steady state", frac)
	}
	if hybrid.Prewarms == 0 {
		t.Error("hybrid never prewarmed — the periodic band was not learned")
	}
	if hybrid.WarmHit < fixed.WarmHit {
		t.Errorf("hybrid warm-hit %.3f below fixed %.3f", hybrid.WarmHit, fixed.WarmHit)
	}

	// The RAM side: per-key windows beat one-size-fits-all.
	if hybrid.RAMGBs >= fixed.RAMGBs {
		t.Errorf("hybrid RAM %.2f GB·s not below fixed %.2f", hybrid.RAMGBs, fixed.RAMGBs)
	}
	if none.RAMGBs >= hybrid.RAMGBs {
		t.Errorf("none RAM %.2f GB·s not below hybrid %.2f — scale-to-zero stopped being free", none.RAMGBs, hybrid.RAMGBs)
	}

	// The baseline pays for its RAM savings in restores.
	if none.Lukewarm <= fixed.Lukewarm {
		t.Errorf("none lukewarm %d not above fixed %d", none.Lukewarm, fixed.Lukewarm)
	}

	if !strings.Contains(f.TSV(), "policy\tarrivals\t") {
		t.Error("TSV header missing")
	}
	if !strings.Contains(f.Render(), "warm-hit") {
		t.Error("render missing warm-hit column")
	}
}
