package experiments

import (
	"fmt"
	"time"

	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/metrics"
	"seuss/internal/uc"
	"seuss/internal/workload"
)

// Figure1Stage is one stage of a function invocation's lifetime
// (Figure 1 of the paper), with the measured time each path spends in
// it. A zero duration with Skipped=true is the point of the figure:
// cached stages vanish from later paths.
type Figure1Stage struct {
	Name                        string
	Cold                        time.Duration
	Warm                        time.Duration
	Hot                         time.Duration
	ColdSkip, WarmSkip, HotSkip bool
}

// Figure1 is the invocation-stage breakdown.
type Figure1 struct {
	Stages []Figure1Stage
	// BootTime is the once-per-interpreter system initialization that
	// even cold starts skip (T1 in the figure: captured in the runtime
	// snapshot).
	BootTime time.Duration
}

// RunFigure1 measures each invocation stage on each path, reproducing
// the stage-skipping structure of Figure 1: the runtime snapshot (T1)
// removes boot + interpreter initialization from every path, the
// function snapshot (T2) removes import + compile from warm starts, and
// the cached UC removes deployment and connection from hot starts.
func RunFigure1() (Figure1, error) {
	var out Figure1
	st := mem.NewStore(0)

	// System initialization (pre-T1).
	bootEnv := &libos.CountingEnv{}
	boot, err := uc.BootFresh(st, nil, bootEnv)
	if err != nil {
		return out, err
	}
	if err := boot.Guest().Unikernel().WarmNetwork(); err != nil {
		return out, err
	}
	if err := boot.Guest().WarmInterpreter(); err != nil {
		return out, err
	}
	out.BootTime = bootEnv.Elapsed()
	base, err := boot.Capture("runtime", uc.TriggerPCDriverListen)
	if err != nil {
		return out, err
	}

	type stamps struct {
		deploy, connect, importCompile, args time.Duration
	}

	// Cold path, stage by stage.
	var cold stamps
	env := &libos.CountingEnv{}
	u, err := uc.Deploy(base, nil, env)
	if err != nil {
		return out, err
	}
	cold.deploy = env.Elapsed()
	if err := u.Guest().Connect(); err != nil {
		return out, err
	}
	cold.connect = env.Elapsed()
	if err := u.Guest().ImportAndCompile(workload.NOPSource); err != nil {
		return out, err
	}
	fnSnap, err := u.Capture("fn", uc.TriggerPCPostCompile)
	if err != nil {
		return out, err
	}
	cold.importCompile = env.Elapsed()
	if _, err := u.Guest().Invoke(`{}`); err != nil {
		return out, err
	}
	cold.args = env.Elapsed()

	// Warm path.
	var warm stamps
	wEnv := &libos.CountingEnv{}
	w, err := uc.Deploy(fnSnap, nil, wEnv)
	if err != nil {
		return out, err
	}
	warm.deploy = wEnv.Elapsed()
	if err := w.Guest().Connect(); err != nil {
		return out, err
	}
	warm.connect = wEnv.Elapsed()
	warm.importCompile = wEnv.Elapsed() // skipped
	if _, err := w.Guest().Invoke(`{}`); err != nil {
		return out, err
	}
	warm.args = wEnv.Elapsed()

	// Hot path: reuse w.
	var hot stamps
	h0 := wEnv.Elapsed()
	if _, err := w.Guest().Invoke(`{}`); err != nil {
		return out, err
	}
	hot.args = wEnv.Elapsed() - h0

	out.Stages = []Figure1Stage{
		{
			Name:     "boot unikernel + init interpreter",
			ColdSkip: true, WarmSkip: true, HotSkip: true, // in the runtime snapshot
		},
		{
			Name: "deploy UC",
			Cold: cold.deploy, Warm: warm.deploy, HotSkip: true,
		},
		{
			Name: "connect",
			Cold: cold.connect - cold.deploy, Warm: warm.connect - warm.deploy, HotSkip: true,
		},
		{
			Name: "import + compile function",
			Cold: cold.importCompile - cold.connect, WarmSkip: true, HotSkip: true, // in the fn snapshot
		},
		{
			Name: "pass arguments + execute",
			Cold: cold.args - cold.importCompile, Warm: warm.args - warm.importCompile, Hot: hot.args,
		},
	}
	return out, nil
}

// Render formats the stage table.
func (f Figure1) Render() string {
	tab := metrics.Table{Header: []string{"Stage", "Cold", "Warm", "Hot"}}
	cell := func(d time.Duration, skip bool) string {
		if skip {
			return "— (cached)"
		}
		return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
	}
	for _, s := range f.Stages {
		tab.AddRow(s.Name, cell(s.Cold, s.ColdSkip), cell(s.Warm, s.WarmSkip), cell(s.Hot, s.HotSkip))
	}
	return fmt.Sprintf("Figure 1: stages of a function invocation (system init before the\nruntime snapshot took %v and is paid once, never per invocation)\n\n",
		f.BootTime.Round(time.Millisecond)) + tab.String()
}
