package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"seuss/internal/cluster"
	"seuss/internal/faas"
	"seuss/internal/metrics"
	"seuss/internal/sched"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// FabricPoint is one trial of the placement experiment: a unique
// function count and the throughput a multi-node cluster sustained
// under each placement policy.
type FabricPoint struct {
	SetSize      int
	LocalPerSec  float64 // locality-blind, node-local snapshots only
	FabricPerSec float64 // locality-aware over the snapshot fabric
	LocalColds   int64
	FabricColds  int64
	Fetches      int64 // fabric layer transfers
	LayerDedups  int64 // layers skipped because the digest already existed
	RemoteRoutes int64 // fabric requests forwarded to a holder
}

// FigureFabric is the Figure 4 sweep re-run on a DR-SEUSS cluster:
// throughput vs unique-function count for local-only placement (each
// node cold-starts its own copy) against locality-aware placement over
// the content-addressed snapshot fabric (cold at most once per
// cluster, bases deduped by digest).
type FigureFabric struct {
	Points []FabricPoint
	Nodes  int
	N      int
	C      int
}

// FabricConfig scales the experiment.
type FabricConfig struct {
	// SetSizes lists the unique-function counts (default 64…1024
	// doubling — the knee of the Figure 4 curve).
	SetSizes []int
	// Nodes is the cluster size (default 4).
	Nodes int
	// N is invocations measured per trial (default 800).
	N int
	// C is worker threads (default: one per node). The dist backend
	// has one shim lane per member, so C beyond Nodes measures
	// front-door queueing — identical in both arms — instead of
	// placement.
	C int
	// Seed fixes the random send orders.
	Seed int64
	// SnapDir roots the fabric arm's per-node snapshot tiers; empty
	// uses a temporary directory removed when the sweep finishes.
	SnapDir string
}

func (c FabricConfig) withDefaults() FabricConfig {
	if len(c.SetSizes) == 0 {
		for m := 64; m <= 1024; m *= 2 {
			c.SetSizes = append(c.SetSizes, m)
		}
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.N == 0 {
		c.N = 800
	}
	if c.C == 0 {
		c.C = c.Nodes
	}
	return c
}

// RunFabric executes the sweep: each arm of each trial runs on a fresh
// cluster deployment, exactly as the paper re-deploys per trial.
func RunFabric(cfg FabricConfig) (FigureFabric, error) {
	cfg = cfg.withDefaults()
	if cfg.SnapDir == "" {
		dir, err := os.MkdirTemp("", "seuss-fabric")
		if err != nil {
			return FigureFabric{}, err
		}
		defer os.RemoveAll(dir)
		cfg.SnapDir = dir
	}
	out := FigureFabric{Nodes: cfg.Nodes, N: cfg.N, C: cfg.C}

	run := func(trial workload.Trial, c cluster.Config) (workload.TrialResult, cluster.Stats, error) {
		eng := sim.NewEngine()
		cl, err := cluster.New(eng, c)
		if err != nil {
			return workload.TrialResult{}, cluster.Stats{}, err
		}
		res := trial.Run(eng, faas.NewCluster(eng, faas.NewSeussDistBackend(eng, cl)))
		return res, cl.Stats(), nil
	}

	for _, m := range cfg.SetSizes {
		fns := make([]workload.Spec, m)
		for i := range fns {
			fns[i] = workload.NOPSpec(i)
		}
		trial := workload.Trial{N: cfg.N, Fns: fns, C: cfg.C, Seed: cfg.Seed, Warmup: steadyWarmup(m)}

		// Local-only arm: no fabric, no locality — the placer spreads by
		// load alone, so every node pays its own cold starts.
		resL, stL, err := run(trial, cluster.Config{
			Nodes:  cfg.Nodes,
			Placer: &sched.LeastLoadedPlacer{},
		})
		if err != nil {
			return out, err
		}

		// Fabric arm: locality-aware placement over per-node
		// content-addressed tiers; replication fetches missing layers.
		resF, stF, err := run(trial, cluster.Config{
			Nodes:   cfg.Nodes,
			Policy:  cluster.PolicyMigrate,
			SnapDir: filepath.Join(cfg.SnapDir, fmt.Sprintf("m%d", m)),
		})
		if err != nil {
			return out, err
		}

		out.Points = append(out.Points, FabricPoint{
			SetSize:      m,
			LocalPerSec:  resL.SteadyThroughput(),
			FabricPerSec: resF.SteadyThroughput(),
			LocalColds:   stL.ClusterColds,
			FabricColds:  stF.ClusterColds,
			Fetches:      stF.Fetches,
			LayerDedups:  stF.LayerDedups,
			RemoteRoutes: stF.RemoteRoutes,
		})
	}
	return out, nil
}

// Render formats the sweep as the fabric-placement series.
func (f FigureFabric) Render() string {
	tab := metrics.Table{Header: []string{"Set Size (M)", "local (req/s)", "fabric (req/s)", "fabric/local", "local colds", "fabric colds", "routes", "fetches", "dedups"}}
	for _, p := range f.Points {
		ratio := 0.0
		if p.LocalPerSec > 0 {
			ratio = p.FabricPerSec / p.LocalPerSec
		}
		tab.AddRow(
			fmt.Sprintf("%d", p.SetSize),
			fmt.Sprintf("%.1f", p.LocalPerSec),
			fmt.Sprintf("%.1f", p.FabricPerSec),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%d", p.LocalColds),
			fmt.Sprintf("%d", p.FabricColds),
			fmt.Sprintf("%d", p.RemoteRoutes),
			fmt.Sprintf("%d", p.Fetches),
			fmt.Sprintf("%d", p.LayerDedups),
		)
	}
	return fmt.Sprintf("Fabric placement: %d-node cluster throughput (N=%d, C=%d per trial)\n\n", f.Nodes, f.N, f.C) + tab.String()
}

// TSV renders the series as tab-separated values for plotting.
func (f FigureFabric) TSV() string {
	var sb strings.Builder
	sb.WriteString("set_size\tlocal_rps\tfabric_rps\tlocal_colds\tfabric_colds\troutes\tfetches\tdedups\n")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%d\t%.2f\t%.2f\t%d\t%d\t%d\t%d\t%d\n",
			p.SetSize, p.LocalPerSec, p.FabricPerSec, p.LocalColds, p.FabricColds, p.RemoteRoutes, p.Fetches, p.LayerDedups)
	}
	return sb.String()
}
