package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"seuss/internal/core"
	"seuss/internal/metrics"
	"seuss/internal/policy"
	"seuss/internal/sim"
	"seuss/internal/snapstore"
	"seuss/internal/workload"
)

// The lifecycle-policy experiment: one open-loop trace (a hot Poisson
// band, a near-periodic lognormal band, and a long tail of one-shot
// keys) replayed against a node under each lifecycle policy. What a
// keep-alive policy trades is latency against resident RAM: NoKeepAlive
// frees memory instantly and pays a lukewarm restore per recurrence,
// FixedKeepAlive holds everything for one window regardless of whether
// it will recur, and Hybrid sizes each key's window from its own
// inter-arrival history — the experiment measures both sides of the
// trade for all three.

// PolicyArm is one policy's measured outcome over the trace.
type PolicyArm struct {
	Policy    string
	Arrivals  int // total scheduled arrivals
	Measured  int // completions inside the measurement window
	Cold      int
	Lukewarm  int
	Warm      int
	Hot       int
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	WarmHit   float64 // (hot+warm) / measured
	RAMGBs    float64 // resident-RAM integral over the window, GB·s
	Expired   int64   // keep-alive expirations (UCs + lineages)
	Prewarms  int64   // predicted promotions
	Misses    int64   // predictions whose lineage left the tier
	PeakBytes int64   // peak resident bytes observed at ticks
}

// FigurePolicy is the full policy comparison.
type FigurePolicy struct {
	Arms    []PolicyArm
	Keys    int
	Horizon time.Duration
	Warmup  time.Duration
}

// PolicyConfig scales the experiment.
type PolicyConfig struct {
	// HotKeys invoke Poisson with mean HotMean — always inside any
	// sane keep-alive window (default 200 keys, 15 s).
	HotKeys int
	HotMean time.Duration
	// PeriodicKeys invoke near-periodically (lognormal, median
	// PeriodicMean, log-stddev PeriodicSigma): the band where the
	// policies separate — longer than Fixed's window, predictable
	// enough for Hybrid to prewarm (default 800 keys, 4 min, 0.12).
	PeriodicKeys  int
	PeriodicMean  time.Duration
	PeriodicSigma float64
	// OnceKeys fire exactly once during warmup and never again — dead
	// weight every keep-alive window holds for nothing (default 9000).
	OnceKeys int
	// Horizon is the trace length; completions with Sent >= Warmup are
	// measured (defaults 26 min / 14 min). The warmup must cover
	// Hybrid's learning phase — MinSamples gaps take three arrivals,
	// about three periods plus phase slack — so the measurement window
	// compares steady-state behavior, not cold statistics.
	Horizon time.Duration
	Warmup  time.Duration
	// Tick is the reaper period, also the RAM sampling period
	// (default 15 s).
	Tick time.Duration
	// FixedWindow is the FixedKeepAlive arm's window (default 2 min).
	FixedWindow time.Duration
	// Keys overrides the synthetic bands entirely (e.g. from
	// workload.ParseTraceCSV); the *Keys counts are then ignored.
	Keys []workload.TraceKey
	// Seed fixes the arrival schedule (same schedule for every arm).
	Seed int64
	// SnapDir roots each arm's disk tier; empty uses a temp directory.
	SnapDir string
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.HotKeys == 0 {
		c.HotKeys = 200
	}
	if c.HotMean == 0 {
		c.HotMean = 15 * time.Second
	}
	if c.PeriodicKeys == 0 {
		c.PeriodicKeys = 800
	}
	if c.PeriodicMean == 0 {
		c.PeriodicMean = 4 * time.Minute
	}
	if c.PeriodicSigma == 0 {
		c.PeriodicSigma = 0.12
	}
	if c.OnceKeys == 0 {
		c.OnceKeys = 9000
	}
	if c.Horizon == 0 {
		c.Horizon = 26 * time.Minute
	}
	if c.Warmup == 0 {
		c.Warmup = 14 * time.Minute
	}
	if c.Tick == 0 {
		c.Tick = 15 * time.Second
	}
	if c.FixedWindow == 0 {
		c.FixedWindow = 2 * time.Minute
	}
	return c
}

// traceKeys builds the synthetic three-band key population.
func (c PolicyConfig) traceKeys() []workload.TraceKey {
	if len(c.Keys) > 0 {
		return c.Keys
	}
	keys := make([]workload.TraceKey, 0, c.HotKeys+c.PeriodicKeys+c.OnceKeys)
	for i := 0; i < c.HotKeys; i++ {
		keys = append(keys, workload.TraceKey{
			Spec:    workload.Spec{Key: fmt.Sprintf("hot/fn%d", i), Source: workload.NOPSource},
			Process: workload.ProcPoisson,
			Mean:    c.HotMean,
		})
	}
	for i := 0; i < c.PeriodicKeys; i++ {
		keys = append(keys, workload.TraceKey{
			Spec:    workload.Spec{Key: fmt.Sprintf("cron/fn%d", i), Source: workload.NOPSource},
			Process: workload.ProcLognormal,
			Mean:    c.PeriodicMean,
			Sigma:   c.PeriodicSigma,
		})
	}
	for i := 0; i < c.OnceKeys; i++ {
		keys = append(keys, workload.TraceKey{
			Spec:    workload.Spec{Key: fmt.Sprintf("once/fn%d", i), Source: workload.NOPSource},
			Process: workload.ProcOnce,
			Mean:    c.Warmup, // fire during warmup; never recur
		})
	}
	return keys
}

// nodeInvoker adapts a core node to the trace generator.
type nodeInvoker struct{ n *core.Node }

func (ni nodeInvoker) InvokePath(p *sim.Proc, spec workload.Spec, args string) (string, error) {
	res, err := ni.n.Invoke(p, core.Request{Key: spec.Key, Source: spec.Source, Args: args})
	if err != nil {
		return "", err
	}
	return res.Path.String(), nil
}

// RunPolicy replays the same trace against each policy arm on a fresh
// node with a fresh disk tier.
func RunPolicy(cfg PolicyConfig) (FigurePolicy, error) {
	cfg = cfg.withDefaults()
	if cfg.SnapDir == "" {
		dir, err := os.MkdirTemp("", "seuss-policy")
		if err != nil {
			return FigurePolicy{}, err
		}
		defer os.RemoveAll(dir)
		cfg.SnapDir = dir
	}
	keys := cfg.traceKeys()
	tr := workload.Trace{Keys: keys, Horizon: cfg.Horizon, Seed: cfg.Seed}
	out := FigurePolicy{Keys: len(keys), Horizon: cfg.Horizon, Warmup: cfg.Warmup}

	arms := []policy.Policy{
		policy.NoKeepAlive{},
		policy.FixedKeepAlive{Window: cfg.FixedWindow},
		policy.NewHybrid(),
	}
	for i, pol := range arms {
		arm, err := runPolicyArm(cfg, tr, pol, fmt.Sprintf("%s/arm%d", cfg.SnapDir, i))
		if err != nil {
			return out, err
		}
		out.Arms = append(out.Arms, arm)
	}
	return out, nil
}

// runPolicyArm runs one policy over the trace. The reaper ticks and
// RAM sampling ride one bounded proc on the trace's engine: it stops
// one tick past the horizon, so eng.Run still terminates.
func runPolicyArm(cfg PolicyConfig, tr workload.Trace, pol policy.Policy, dir string) (PolicyArm, error) {
	store, err := snapstore.Open(dir, -1)
	if err != nil {
		return PolicyArm{}, err
	}
	eng := sim.NewEngine()
	nc := core.DefaultConfig()
	nc.Seed = cfg.Seed
	nc.Policy = pol
	nc.SnapStore = store
	node, err := core.NewNode(eng, nc)
	if err != nil {
		return PolicyArm{}, err
	}

	// RAM accounting integrates BytesInUse over the measurement window
	// by sampling at every reaper tick (rectangle rule at the tick
	// period — the same observable for every arm, so the comparison is
	// exact even if the absolute integral is quantized).
	var ramByteSeconds float64
	var peak int64
	eng.Go("policy-reaper", func(p *sim.Proc) {
		for {
			p.Sleep(cfg.Tick)
			now := time.Duration(p.Now())
			if now > cfg.Horizon+cfg.Tick {
				return
			}
			node.PolicyTick(p)
			if now >= cfg.Warmup && now <= cfg.Horizon {
				b := node.MemStats().BytesInUse
				ramByteSeconds += float64(b) * cfg.Tick.Seconds()
				if b > peak {
					peak = b
				}
			}
		}
	})
	res := tr.Run(eng, nodeInvoker{n: node})
	st := node.Stats()

	arm := PolicyArm{
		Policy:    pol.Name(),
		Arrivals:  res.Arrivals,
		RAMGBs:    ramByteSeconds / 1e9,
		Expired:   st.PolicyExpirations,
		Prewarms:  st.PolicyPrewarms,
		Misses:    st.PolicyPrewarmMisses,
		PeakBytes: peak,
	}
	var lat []time.Duration
	for _, pt := range res.Points {
		if pt.Err || pt.Sent < cfg.Warmup {
			continue
		}
		arm.Measured++
		lat = append(lat, pt.Latency)
		switch pt.Path {
		case core.PathCold.String():
			arm.Cold++
		case core.PathLukewarm.String():
			arm.Lukewarm++
		case core.PathWarm.String():
			arm.Warm++
		case core.PathHot.String():
			arm.Hot++
		}
	}
	if arm.Measured > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		arm.P50 = lat[len(lat)*50/100]
		arm.P99 = lat[len(lat)*99/100]
		arm.P999 = lat[min(len(lat)*999/1000, len(lat)-1)]
		arm.WarmHit = float64(arm.Hot+arm.Warm) / float64(arm.Measured)
	}
	return arm, nil
}

// Render formats the comparison.
func (f FigurePolicy) Render() string {
	tab := metrics.Table{Header: []string{
		"policy", "measured", "cold", "lukewarm", "warm", "hot",
		"p50", "p99", "p99.9", "warm-hit", "RAM GB·s", "expired", "prewarms",
	}}
	for _, a := range f.Arms {
		tab.AddRow(
			a.Policy,
			fmt.Sprintf("%d", a.Measured),
			fmt.Sprintf("%d", a.Cold),
			fmt.Sprintf("%d", a.Lukewarm),
			fmt.Sprintf("%d", a.Warm),
			fmt.Sprintf("%d", a.Hot),
			a.P50.String(),
			a.P99.String(),
			a.P999.String(),
			fmt.Sprintf("%.3f", a.WarmHit),
			fmt.Sprintf("%.2f", a.RAMGBs),
			fmt.Sprintf("%d", a.Expired),
			fmt.Sprintf("%d", a.Prewarms),
		)
	}
	return fmt.Sprintf(
		"Lifecycle policies: %d keys, %v horizon (%v warmup), open-loop\n\n",
		f.Keys, f.Horizon, f.Warmup) + tab.String()
}

// TSV renders the comparison for plotting and the results gate.
func (f FigurePolicy) TSV() string {
	var sb strings.Builder
	sb.WriteString("policy\tarrivals\tmeasured\tcold\tlukewarm\twarm\thot\tp50_us\tp99_us\tp999_us\twarm_hit\tram_gb_s\texpired\tprewarms\tprewarm_misses\n")
	for _, a := range f.Arms {
		fmt.Fprintf(&sb, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.3f\t%d\t%d\t%d\n",
			a.Policy, a.Arrivals, a.Measured, a.Cold, a.Lukewarm, a.Warm, a.Hot,
			a.P50.Microseconds(), a.P99.Microseconds(), a.P999.Microseconds(),
			a.WarmHit, a.RAMGBs, a.Expired, a.Prewarms, a.Misses)
	}
	return sb.String()
}
