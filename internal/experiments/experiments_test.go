package experiments

import (
	"strings"
	"testing"
	"time"
)

// tolerances are generous here: the precise calibration checks live in
// internal/uc's calibration tests; these verify the experiment
// harnesses produce paper-shaped output end to end.

func TestTable1Shape(t *testing.T) {
	t1, err := RunTable1(5)
	if err != nil {
		t.Fatal(err)
	}
	// AO halves the function snapshot and grows the base image.
	if t1.FullAO.FnSnapshotMB >= t1.NoAO.FnSnapshotMB/1.5 {
		t.Errorf("fn snapshot %0.2f → %0.2f MB: AO did not shrink it enough",
			t1.NoAO.FnSnapshotMB, t1.FullAO.FnSnapshotMB)
	}
	if t1.FullAO.BaseSnapshotMB <= t1.NoAO.BaseSnapshotMB {
		t.Error("AO did not grow the base snapshot")
	}
	// Latency ordering within the AO run.
	if !(t1.FullAO.Cold > t1.FullAO.Warm && t1.FullAO.Warm > t1.FullAO.Hot) {
		t.Errorf("latency ordering: %v / %v / %v", t1.FullAO.Cold, t1.FullAO.Warm, t1.FullAO.Hot)
	}
	// Pages copied decrease along the path ladder.
	if !(t1.FullAO.ColdPagesCopied > t1.FullAO.WarmPagesCopied &&
		t1.FullAO.WarmPagesCopied > t1.FullAO.HotPagesCopied) {
		t.Errorf("pages copied: %d / %d / %d",
			t1.FullAO.ColdPagesCopied, t1.FullAO.WarmPagesCopied, t1.FullAO.HotPagesCopied)
	}
	out := t1.Render()
	for _, want := range []string{"Node.js Invocation Driver", "Cold Start", "Hot Start"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2Monotone(t *testing.T) {
	t2, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Levels) != 3 {
		t.Fatalf("levels = %d", len(t2.Levels))
	}
	// Each added AO strictly improves both cold and warm starts.
	for i := 1; i < 3; i++ {
		if t2.Levels[i].Cold >= t2.Levels[i-1].Cold {
			t.Errorf("cold not improved at level %d: %v >= %v", i, t2.Levels[i].Cold, t2.Levels[i-1].Cold)
		}
		if t2.Levels[i].Warm >= t2.Levels[i-1].Warm {
			t.Errorf("warm not improved at level %d: %v >= %v", i, t2.Levels[i].Warm, t2.Levels[i-1].Warm)
		}
	}
	// The big cold-start jumps: ≈2.5x from network AO, ≈2x more from
	// interpreter AO.
	if ratio := float64(t2.Levels[0].Cold) / float64(t2.Levels[1].Cold); ratio < 1.8 {
		t.Errorf("network AO cold speedup = %.2f", ratio)
	}
	if ratio := float64(t2.Levels[1].Cold) / float64(t2.Levels[2].Cold); ratio < 1.5 {
		t.Errorf("interpreter AO cold speedup = %.2f", ratio)
	}
	if !strings.Contains(t2.Render(), "Network + Interpreter AO") {
		t.Error("render missing header")
	}
}

func TestTable3Ordering(t *testing.T) {
	t3, err := RunTable3(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 4 {
		t.Fatalf("rows = %d", len(t3.Rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range t3.Rows {
		byName[r.Method] = r
	}
	fc := byName["Firecracker microVM"]
	dk := byName["Docker w/ overlay2 fs"]
	pr := byName["Linux process"]
	su := byName["SEUSS UC"]

	// Creation-rate ordering: FC < Docker < process < SEUSS.
	if !(fc.CreationRate < dk.CreationRate && dk.CreationRate < pr.CreationRate && pr.CreationRate < su.CreationRate) {
		t.Errorf("creation rates out of order: %+v", t3.Rows)
	}
	// Density ordering: FC < Docker < process << SEUSS.
	if !(fc.Density < dk.Density && dk.Density < pr.Density && pr.Density < su.Density) {
		t.Errorf("densities out of order: %+v", t3.Rows)
	}
	// SEUSS is an order of magnitude denser than anything Linux-based.
	if su.Density < 10*pr.Density {
		t.Errorf("SEUSS density %d not >10x process density %d", su.Density, pr.Density)
	}
	if su.Density < 50000 {
		t.Errorf("SEUSS density = %d, paper reports over 54,000", su.Density)
	}
	if !strings.Contains(t3.Render(), "SEUSS UC") {
		t.Error("render missing row")
	}
}

func TestFigure4Crossover(t *testing.T) {
	// N must be large enough that the measured window sits past the
	// container-cache build; the full-size runs use N=1200.
	f, err := RunFigure4(Figure4Config{SetSizes: []int{64, 2048}, N: 1200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, big := f.Points[0], f.Points[1]
	// Small sets: Linux ahead (the shim hop); big sets: SEUSS far ahead.
	if small.LinuxPerSec <= small.SeussPerSec {
		t.Errorf("at M=64 Linux %.0f !> SEUSS %.0f", small.LinuxPerSec, small.SeussPerSec)
	}
	if big.SeussPerSec < 10*big.LinuxPerSec {
		t.Errorf("at M=2048 SEUSS %.0f not >>10x Linux %.0f", big.SeussPerSec, big.LinuxPerSec)
	}
	// SEUSS throughput is flat across set sizes (the paper's key line).
	if diff := small.SeussPerSec - big.SeussPerSec; diff > 0.15*small.SeussPerSec {
		t.Errorf("SEUSS throughput not flat: %.0f vs %.0f", small.SeussPerSec, big.SeussPerSec)
	}
	if !strings.Contains(f.TSV(), "set_size\t") {
		t.Error("TSV header missing")
	}
}

func TestFigure5Shape(t *testing.T) {
	f, err := RunFigure5([]int{32, 2048}, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	var seussSmall, linuxSmall, linuxBig *Figure5Row
	for i := range f.Rows {
		r := &f.Rows[i]
		switch {
		case r.Backend == "seuss" && r.SetSize == 32:
			seussSmall = r
		case r.Backend == "linux" && r.SetSize == 32:
			linuxSmall = r
		case r.Backend == "linux" && r.SetSize == 2048:
			linuxBig = r
		}
	}
	// SEUSS latency distribution is tight; Linux blows up at large M
	// (the "large difference in Y-axes ranges").
	if seussSmall.Summary.P99 > 2*seussSmall.Summary.P50 {
		t.Errorf("seuss small-M spread too wide: %v", seussSmall.Summary)
	}
	if linuxBig.Summary.P99 < 10*linuxSmall.Summary.P50 {
		t.Errorf("linux large-M tail did not blow up: small p50 %v, big p99 %v",
			linuxSmall.Summary.P50, linuxBig.Summary.P99)
	}
	if !strings.Contains(f.Render(), "p99") {
		t.Error("render missing quantiles")
	}
}

func TestBurstShapes(t *testing.T) {
	// Scaled-down burst pair: SEUSS absorbs everything; the Linux burst
	// path degrades once the 256 stemcells run dry (5 bursts × 128
	// requests overruns the pool with no time to replenish).
	f, err := RunBurst(BurstConfig{
		Period:    6 * time.Second,
		Bursts:    5,
		BurstSize: 128,
		Threads:   48,
		BGRate:    30,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Seuss.BurstErrors != 0 || f.Seuss.BackgroundErrors != 0 {
		t.Errorf("SEUSS errors: bg=%d burst=%d", f.Seuss.BackgroundErrors, f.Seuss.BurstErrors)
	}
	if f.Seuss.BurstCount != 5*128 {
		t.Errorf("burst count = %d", f.Seuss.BurstCount)
	}
	// SEUSS handles bursts orders of magnitude faster than Linux once
	// the Linux stemcell pool is exhausted.
	if f.Linux.BurstP99 < 4*f.Seuss.BurstP99 {
		t.Errorf("linux burst p99 %v not >> seuss %v", f.Linux.BurstP99, f.Seuss.BurstP99)
	}
	if !strings.Contains(f.Render(), "bg errors") {
		t.Error("render missing columns")
	}
	if !strings.Contains(f.TSV(), "backend\tkind") {
		t.Error("TSV header missing")
	}
}

func TestFigure1StageSkipping(t *testing.T) {
	f, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stages) != 5 {
		t.Fatalf("stages = %d", len(f.Stages))
	}
	byName := map[string]Figure1Stage{}
	for _, s := range f.Stages {
		byName[s.Name] = s
	}
	boot := byName["boot unikernel + init interpreter"]
	if !boot.ColdSkip || !boot.WarmSkip || !boot.HotSkip {
		t.Error("boot stage not skipped by every path")
	}
	imp := byName["import + compile function"]
	if imp.Cold <= 0 || !imp.WarmSkip || !imp.HotSkip {
		t.Errorf("import stage: %+v", imp)
	}
	dep := byName["deploy UC"]
	if dep.Cold <= 0 || dep.Warm <= 0 || !dep.HotSkip {
		t.Errorf("deploy stage: %+v", dep)
	}
	exec := byName["pass arguments + execute"]
	if exec.Cold <= 0 || exec.Warm <= 0 || exec.Hot <= 0 {
		t.Errorf("execute stage: %+v", exec)
	}
	// The once-ever system init dwarfs any per-invocation stage.
	if f.BootTime < 500*time.Millisecond {
		t.Errorf("boot time = %v", f.BootTime)
	}
	if !strings.Contains(f.Render(), "cached") {
		t.Error("render missing skip markers")
	}
}

func TestFailoverTimeline(t *testing.T) {
	f, err := RunFailover(FailoverConfig{N: 300, M: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(f.Phases))
	}
	// Every phase keeps serving: failovers and repairs are contained,
	// so the client never sees an error.
	for _, p := range f.Phases {
		if p.Errors != 0 {
			t.Errorf("phase %q saw %d client errors", p.Phase, p.Errors)
		}
		if p.PerSec <= 0 {
			t.Errorf("phase %q throughput = %.1f", p.Phase, p.PerSec)
		}
	}
	// The acceptance bar: the rejoined cluster recovers the pre-crash
	// throughput to within 10%.
	if f.RecoveryRatio < 0.9 {
		t.Errorf("post-rejoin recovery = %.2fx, want >= 0.9x", f.RecoveryRatio)
	}
	// The crash landed under load: at least one in-flight invocation
	// failed over, and the victim walked suspect -> dead -> revived.
	st := f.Stats
	if st.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", st.Failovers)
	}
	if st.DeadMembers < 1 || st.RevivedMembers < 1 {
		t.Errorf("lifecycle: dead=%d revived=%d, want both >= 1", st.DeadMembers, st.RevivedMembers)
	}
	if !strings.Contains(f.TSV(), "phase\t") {
		t.Error("TSV header missing")
	}
	if !strings.Contains(f.Render(), "post-rejoin") {
		t.Error("render missing recovery line")
	}
}
