// Package experiments regenerates every table and figure of the
// paper's evaluation (§7). Each experiment returns structured results
// plus a rendered text table so the same code backs the
// seuss-experiments binary, the benchmark suite, and the regression
// tests in this package.
//
// EXPERIMENTS.md records paper-vs-measured for each experiment and the
// scaling decisions (e.g. the SEUSS density fill is measured over a
// sample and extrapolated by its exact marginal footprint, because
// 54,000 live UC objects would not fit in host RAM even though their
// *simulated* memory accounting is exact).
package experiments

import (
	"fmt"
	"time"

	"seuss/internal/core"
	"seuss/internal/costs"
	"seuss/internal/isolation"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/metrics"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/uc"
	"seuss/internal/workload"
)

// aoLevel names an anticipatory-optimization configuration.
type aoLevel struct {
	name     string
	net, itp bool
}

var aoLevels = []aoLevel{
	{"No AO", false, false},
	{"Network AO", true, false},
	{"Network + Interpreter AO", true, true},
}

// MicroRun is one full micro-benchmark pass at a given AO level: the
// system-initialization sequence followed by a cold, warm, and hot
// invocation of the NOP function, measured at the node boundary the
// way Table 1 measures (request received → result returned).
type MicroRun struct {
	Level             string
	Cold, Warm, Hot   time.Duration
	BaseSnapshotMB    float64
	FnSnapshotMB      float64
	ColdPagesCopied   int
	WarmPagesCopied   int
	HotPagesCopied    int
	IdleUCFootprintMB float64
}

// runMicro executes the §7 microbenchmark flow at one AO level,
// averaging invocation latencies over iters invocations per path (the
// paper averages across 475).
func runMicro(netAO, interpAO bool, iters int) (MicroRun, error) {
	var out MicroRun
	st := mem.NewStore(0)
	env := &libos.CountingEnv{}
	boot, err := uc.BootFresh(st, nil, env)
	if err != nil {
		return out, err
	}
	if netAO {
		if err := boot.Guest().Unikernel().WarmNetwork(); err != nil {
			return out, err
		}
	}
	if interpAO {
		if err := boot.Guest().WarmInterpreter(); err != nil {
			return out, err
		}
	}
	base, err := boot.Capture("runtime", uc.TriggerPCDriverListen)
	if err != nil {
		return out, err
	}
	out.BaseSnapshotMB = float64(base.DiffBytes()) / 1e6

	var fnSnap *snapshot.Snapshot
	var coldTotal, warmTotal, hotTotal time.Duration
	for i := 0; i < iters; i++ {
		// Cold path.
		coldEnv := &libos.CountingEnv{}
		coldUC, err := uc.Deploy(base, nil, coldEnv)
		if err != nil {
			return out, err
		}
		if err := coldUC.Guest().Connect(); err != nil {
			return out, err
		}
		if err := coldUC.Guest().ImportAndCompile(workload.NOPSource); err != nil {
			return out, err
		}
		snapN, err := coldUC.Capture(fmt.Sprintf("fn/nop/%d", i), uc.TriggerPCPostCompile)
		if err != nil {
			return out, err
		}
		if _, err := coldUC.Guest().Invoke(`{}`); err != nil {
			return out, err
		}
		coldTotal += coldEnv.Elapsed()
		if i == 0 {
			out.FnSnapshotMB = float64(snapN.DiffBytes()) / 1e6
			out.ColdPagesCopied = coldUC.Space().Faults.Copied()
		}
		fnSnap = snapN

		// Warm path.
		warmEnv := &libos.CountingEnv{}
		warmUC, err := uc.Deploy(fnSnap, nil, warmEnv)
		if err != nil {
			return out, err
		}
		if err := warmUC.Guest().Connect(); err != nil {
			return out, err
		}
		if _, err := warmUC.Guest().Invoke(`{}`); err != nil {
			return out, err
		}
		warmTotal += warmEnv.Elapsed()
		if i == 0 {
			out.WarmPagesCopied = warmUC.Space().Faults.Copied()
		}

		// Hot path (reuse the warm UC).
		h0 := warmEnv.Elapsed()
		preFaults := warmUC.Space().Faults.Copied()
		if _, err := warmUC.Guest().Invoke(`{}`); err != nil {
			return out, err
		}
		hotTotal += warmEnv.Elapsed() - h0
		if i == 0 {
			out.HotPagesCopied = warmUC.Space().Faults.Copied() - preFaults
		}
		warmUC.Destroy()
		coldUC.Destroy()
	}
	out.Cold = coldTotal / time.Duration(iters)
	out.Warm = warmTotal / time.Duration(iters)
	out.Hot = hotTotal / time.Duration(iters)

	// Idle-UC marginal footprint (Table 3's SEUSS density driver).
	idleEnv := &libos.CountingEnv{}
	idle, err := uc.Deploy(base, nil, idleEnv)
	if err != nil {
		return out, err
	}
	out.IdleUCFootprintMB = float64(idle.FootprintBytes()) / 1e6
	idle.Destroy()
	return out, nil
}

// Table1 reproduces Table 1: snapshot memory footprints before and
// after AO, and per-path invocation latency and pages copied.
type Table1 struct {
	NoAO   MicroRun // before anticipatory optimization
	FullAO MicroRun // after both AOs
	Iters  int
}

// RunTable1 executes the Table 1 experiment, averaging over iters
// invocations per path (the paper uses 475).
func RunTable1(iters int) (Table1, error) {
	if iters <= 0 {
		iters = 475
	}
	no, err := runMicro(false, false, iters)
	if err != nil {
		return Table1{}, err
	}
	full, err := runMicro(true, true, iters)
	if err != nil {
		return Table1{}, err
	}
	return Table1{NoAO: no, FullAO: full, Iters: iters}, nil
}

// Render formats the experiment like the paper's Table 1.
func (t Table1) Render() string {
	top := metrics.Table{Header: []string{"Rumprun Unikernel", "Snapshot Size (MB)", "Size After AO (MB)"}}
	top.AddRow("Node.js Invocation Driver", fmt.Sprintf("%.1f", t.NoAO.BaseSnapshotMB), fmt.Sprintf("%.1f", t.FullAO.BaseSnapshotMB))
	top.AddRow("JavaScript NOP function", fmt.Sprintf("%.1f", t.NoAO.FnSnapshotMB), fmt.Sprintf("%.1f", t.FullAO.FnSnapshotMB))

	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
	bot := metrics.Table{Header: []string{"Invocation (after AO)", "Latency (ms)", "Pages Copied", "Footprint (MB)"}}
	mb := func(pages int) string { return fmt.Sprintf("%.1f", float64(pages)*4096/1e6) }
	bot.AddRow("Cold Start:", ms(t.FullAO.Cold), fmt.Sprintf("%d", t.FullAO.ColdPagesCopied), mb(t.FullAO.ColdPagesCopied))
	bot.AddRow("Warm Start:", ms(t.FullAO.Warm), fmt.Sprintf("%d", t.FullAO.WarmPagesCopied), mb(t.FullAO.WarmPagesCopied))
	bot.AddRow("Hot Start:", ms(t.FullAO.Hot), fmt.Sprintf("%d", t.FullAO.HotPagesCopied), mb(t.FullAO.HotPagesCopied))
	return "Table 1: SEUSS Microbenchmarks (averaged over " + fmt.Sprint(t.Iters) + " invocations)\n\n" +
		top.String() + "\n" + bot.String()
}

// Table2 reproduces Table 2: cold/warm latency across AO levels.
type Table2 struct {
	Levels []MicroRun
}

// RunTable2 executes the AO ablation.
func RunTable2(iters int) (Table2, error) {
	if iters <= 0 {
		iters = 50
	}
	var out Table2
	for _, lvl := range aoLevels {
		run, err := runMicro(lvl.net, lvl.itp, iters)
		if err != nil {
			return out, err
		}
		run.Level = lvl.name
		out.Levels = append(out.Levels, run)
	}
	return out, nil
}

// Render formats the experiment like the paper's Table 2.
func (t Table2) Render() string {
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f ms", float64(d.Microseconds())/1000) }
	tab := metrics.Table{Header: []string{"", "No AO", "Network AO", "Network + Interpreter AO"}}
	if len(t.Levels) == 3 {
		tab.AddRow("Cold Start", ms(t.Levels[0].Cold), ms(t.Levels[1].Cold), ms(t.Levels[2].Cold))
		tab.AddRow("Warm Start", ms(t.Levels[0].Warm), ms(t.Levels[1].Warm), ms(t.Levels[2].Warm))
	}
	return "Table 2: Latency improvements across different AO\n\n" + tab.String()
}

// Table3Row is one isolation method's creation rate and density.
type Table3Row struct {
	Method       string
	CreationRate float64 // instances/second, 16-way parallel
	Density      int     // idle instances in the 88 GB node
}

// Table3 reproduces Table 3.
type Table3 struct {
	Rows []Table3Row
}

// RunTable3 measures parallel creation rate and cache density for the
// four isolation methods. sampleUCs bounds how many real UCs the SEUSS
// measurement materializes (footprint is constant per UC, so density
// extrapolates exactly; 0 means 1500).
func RunTable3(sampleUCs int) (Table3, error) {
	if sampleUCs <= 0 {
		sampleUCs = 1500
	}
	var out Table3

	// Linux baselines: fill to saturation from 16 workers.
	for _, kind := range []isolation.Kind{isolation.KindMicroVM, isolation.KindContainer, isolation.KindProcess} {
		eng := sim.NewEngine()
		pool := isolation.NewMemPool(costs.NodeMemoryBytes)
		backend := isolation.NewBackend(kind, pool, nil, sim.NewRNG(1))
		created := 0
		for w := 0; w < costs.NodeCores; w++ {
			eng.Go("fill", func(p *sim.Proc) {
				for {
					if _, err := backend.Create(p); err != nil {
						return
					}
					created++
				}
			})
		}
		eng.Run()
		rate := float64(created) / time.Duration(eng.Now()).Seconds()
		name := map[isolation.Kind]string{
			isolation.KindMicroVM:   "Firecracker microVM",
			isolation.KindContainer: "Docker w/ overlay2 fs",
			isolation.KindProcess:   "Linux process",
		}[kind]
		out.Rows = append(out.Rows, Table3Row{Method: name, CreationRate: rate, Density: created})
	}

	// SEUSS: creation rate through the shim's serialized connection;
	// density from the measured marginal footprint.
	seussRow, err := seussTable3(sampleUCs)
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, seussRow)
	return out, nil
}

func seussTable3(sampleUCs int) (Table3Row, error) {
	eng := sim.NewEngine()
	node, err := core.NewNode(eng, core.DefaultConfig())
	if err != nil {
		return Table3Row{}, err
	}
	shim := sim.NewResource(eng, 1)
	var ucs []*uc.UC
	created := 0
	perWorker := sampleUCs / costs.NodeCores
	for w := 0; w < costs.NodeCores; w++ {
		eng.Go("deploy", func(p *sim.Proc) {
			for i := 0; i < perWorker; i++ {
				// Each creation request crosses the shim's single TCP
				// connection (the Table 3 bottleneck).
				shim.Acquire(p)
				p.Sleep(costs.ShimSerialize)
				shim.Release()
				u, err := node.DeployIdle(p)
				if err != nil {
					return
				}
				ucs = append(ucs, u)
				created++
			}
		})
	}
	eng.Run()
	rate := float64(created) / time.Duration(eng.Now()).Seconds()

	// Density: base image + N * marginal footprint = budget.
	var marginal int64
	for _, u := range ucs {
		marginal += u.FootprintBytes()
	}
	marginal /= int64(len(ucs))
	baseBytes := node.RuntimeSnapshot().TotalBytes()
	density := int((costs.NodeMemoryBytes - baseBytes) / marginal)
	return Table3Row{Method: "SEUSS UC", CreationRate: rate, Density: density}, nil
}

// Render formats the experiment like the paper's Table 3.
func (t Table3) Render() string {
	tab := metrics.Table{Header: []string{"Isolation Method", "Creation Rate (per second)", "Cache Density"}}
	for _, r := range t.Rows {
		tab.AddRow(r.Method, fmt.Sprintf("%.1f", r.CreationRate), fmt.Sprintf("%d", r.Density))
	}
	return "Table 3: Cache density limit and parallel (16-way) creation rate\n" +
		"for Node.js runtime environments on an 88GB, 16 CPU virtual machine\n\n" + tab.String()
}
