package shardpool

import (
	"errors"
	"strings"
	"testing"

	"seuss/internal/core"
	"seuss/internal/fault"
)

// TestBreakerStateMachine pins the breaker transitions in isolation:
// closed → open on threshold consecutive failures, open → half-open
// after probeAfter diversions, probe outcome closes or re-opens.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 3, nil)

	if allow, _ := b.route(); !allow {
		t.Fatal("closed breaker must allow")
	}
	b.recordFailure()
	b.recordSuccess() // success resets the consecutive-failure count
	b.recordFailure()
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("one failure after reset tripped the breaker: %s", s)
	}
	b.recordFailure()
	if s, trips := b.snapshot(); s != "open" || trips != 1 {
		t.Fatalf("after threshold failures: state=%s trips=%d", s, trips)
	}

	// Open: diverts probeAfter-1 requests, then lets a probe through.
	for i := 0; i < 2; i++ {
		if allow, _ := b.route(); allow {
			t.Fatalf("diversion %d allowed through an open breaker", i)
		}
	}
	allow, probe := b.route()
	if !allow || !probe {
		t.Fatalf("third diversion should be the half-open probe (allow=%v probe=%v)", allow, probe)
	}
	// While the probe is in flight other requests still divert.
	if allow, _ := b.route(); allow {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}

	// Probe fails: straight back to open, counts a fresh trip.
	b.recordFailure()
	if s, trips := b.snapshot(); s != "open" || trips != 2 {
		t.Fatalf("failed probe: state=%s trips=%d", s, trips)
	}
	// Re-probe, succeed: closed.
	b.route()
	b.route()
	if allow, probe := b.route(); !allow || !probe {
		t.Fatal("expected another probe")
	}
	b.recordSuccess()
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("successful probe left state %s", s)
	}

	d := newBreaker(-1, 0, nil)
	if !d.disabled() {
		t.Fatal("threshold -1 should disable")
	}
	d.recordFailure()
	d.recordFailure()
	if allow, _ := d.route(); !allow {
		t.Fatal("disabled breaker must always allow")
	}
}

// TestBreakerReroutesAroundSickShard is the acceptance-path test: with
// one shard's breaker open, that shard's keys divert over the
// work-stealing path to a healthy shard with ZERO dropped or failed
// requests, the half-open probe recovers the shard, and traffic
// returns to the owner.
func TestBreakerReroutesAroundSickShard(t *testing.T) {
	cfg := testConfig(2)
	cfg.BreakerThreshold = 3
	cfg.BreakerProbeAfter = 3
	pool := newTestPool(t, cfg)

	key := "brk/fn"
	sick := pool.OwnerShard(key)
	healthy := 1 - sick

	// Trip the owner's breaker directly (white-box): three contained
	// failures.
	for i := 0; i < 3; i++ {
		pool.shards[sick].breaker.recordFailure()
	}
	if st, _ := pool.BreakerState(sick); st != "open" {
		t.Fatalf("breaker state = %s, want open", st)
	}

	// Diversions 1 and 2 must be served by the healthy shard.
	for i := 0; i < 2; i++ {
		res, err := pool.InvokeSync(key, nopSource, "{}")
		if err != nil {
			t.Fatalf("diverted invoke %d failed: %v", i, err)
		}
		if res.Shard != healthy || !res.Stolen {
			t.Fatalf("diverted invoke %d served by shard %d (stolen=%v), want healthy %d",
				i, res.Shard, res.Stolen, healthy)
		}
		if !strings.Contains(res.Output, `"ok":true`) {
			t.Fatalf("diverted invoke %d output = %q", i, res.Output)
		}
	}

	// Third owned request is the half-open probe: it reaches the sick
	// shard, succeeds, and closes the breaker.
	res, err := pool.InvokeSync(key, nopSource, "{}")
	if err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if res.Shard != sick || res.Stolen {
		t.Fatalf("probe served by shard %d (stolen=%v), want owner %d", res.Shard, res.Stolen, sick)
	}
	if st, _ := pool.BreakerState(sick); st != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}

	// Recovered: traffic stays on the owner.
	res, err = pool.InvokeSync(key, nopSource, "{}")
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard != sick || res.Stolen {
		t.Fatalf("post-recovery request served by shard %d, want owner %d", res.Shard, sick)
	}

	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rerouted != 2 {
		t.Errorf("Rerouted = %d, want 2", st.Rerouted)
	}
	if st.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	if st.Node.Errors != 0 {
		t.Errorf("re-routing produced %d node errors, want 0", st.Node.Errors)
	}
}

// TestBreakerTripsAndSelfHealsSingleShard drives the trip end-to-end
// through injected UC crashes, on a 1-shard pool where diversion has
// no healthy target: requests must fall through to the sick owner
// (liveness — never stranded on the overflow queue), and its first
// success closes the breaker.
func TestBreakerTripsAndSelfHealsSingleShard(t *testing.T) {
	cfg := testConfig(1)
	cfg.Faults = fault.Config{
		Schedule: map[fault.Point][]uint64{fault.PointUCCrash: {1, 2, 3}},
	}
	cfg.BreakerThreshold = 3
	pool := newTestPool(t, cfg)

	for i := 0; i < 3; i++ {
		_, err := pool.InvokeSync("solo/fn", nopSource, "{}")
		if !errors.Is(err, core.ErrUCCrashed) {
			t.Fatalf("invoke %d: err = %v, want ErrUCCrashed", i, err)
		}
		if !fault.IsContained(err) {
			t.Fatalf("invoke %d: crash not contained", i)
		}
	}
	if st, _ := pool.BreakerState(0); st != "open" {
		t.Fatalf("breaker = %s after 3 consecutive crashes, want open", st)
	}

	// Schedule exhausted: the fall-through request succeeds and heals
	// the shard.
	res, err := pool.InvokeSync("solo/fn", nopSource, "{}")
	if err != nil {
		t.Fatalf("fall-through request on sick 1-shard pool: %v", err)
	}
	if !strings.Contains(res.Output, `"ok":true`) {
		t.Fatalf("output = %q", res.Output)
	}
	if st, _ := pool.BreakerState(0); st != "closed" {
		t.Fatalf("breaker = %s after successful serve, want closed", st)
	}

	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BreakerTrips != 1 || st.Rerouted != 0 {
		t.Errorf("trips=%d rerouted=%d, want 1 and 0", st.BreakerTrips, st.Rerouted)
	}
	if st.Node.UCCrashes != 3 {
		t.Errorf("UCCrashes = %d, want 3", st.Node.UCCrashes)
	}
}

// TestStallRequeuesNotDrops: an injected shard stall re-routes the
// request to the overflow queue instead of failing it — the caller
// still gets a successful reply.
func TestStallRequeuesNotDrops(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = fault.Config{
		Schedule: map[fault.Point][]uint64{fault.PointShardStall: {1}},
	}
	pool := newTestPool(t, cfg)

	res, err := pool.InvokeSync("stall/fn", nopSource, "{}")
	if err != nil {
		t.Fatalf("stalled request failed: %v", err)
	}
	if !strings.Contains(res.Output, `"ok":true`) {
		t.Fatalf("output = %q", res.Output)
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The owner stalls once; the thief may itself stall its first visit
	// (each shard runs the same schedule), so 1 or 2 requeues — but the
	// request is never dropped and never surfaces an error.
	if st.Stalls < 1 || st.Requeued < 1 {
		t.Errorf("stalls=%d requeued=%d, want >= 1 each", st.Stalls, st.Requeued)
	}
	if st.Requeued > st.Stalls {
		t.Errorf("requeued=%d > stalls=%d", st.Requeued, st.Stalls)
	}
}

// TestStallWithoutStealingFailsContained: with re-routing disabled a
// stall surfaces as a contained ErrShardStalled, so upper layers can
// retry it.
func TestStallWithoutStealingFailsContained(t *testing.T) {
	cfg := testConfig(2)
	cfg.DisableWorkStealing = true
	cfg.Faults = fault.Config{
		Schedule: map[fault.Point][]uint64{fault.PointShardStall: {1}},
	}
	pool := newTestPool(t, cfg)

	_, err := pool.InvokeSync("stall/fn", nopSource, "{}")
	if !errors.Is(err, ErrShardStalled) {
		t.Fatalf("err = %v, want ErrShardStalled", err)
	}
	if !fault.IsContained(err) {
		t.Error("stall not marked contained")
	}

	// The same key retried lands on visit 2 — past the schedule — and
	// succeeds on its owner.
	res, err := pool.InvokeSync("stall/fn", nopSource, "{}")
	if err != nil {
		t.Fatalf("retry after stall: %v", err)
	}
	if !strings.Contains(res.Output, `"ok":true`) {
		t.Errorf("retry output = %q", res.Output)
	}
}

// TestPoolFaultDeterminism: the same pool seed replays the identical
// per-shard fault trace and per-shard stats, run over run. Pinned
// routing (no stealing, breakers off) keeps per-shard request
// sequences identical so the whole event history is comparable.
func TestPoolFaultDeterminism(t *testing.T) {
	run := func() ([]string, []core.Stats) {
		cfg := testConfig(2)
		cfg.DisableWorkStealing = true
		cfg.BreakerThreshold = -1
		cfg.Faults = fault.Config{
			Seed:   7,
			Rate:   0.15,
			Points: []fault.Point{fault.PointUCCrash},
		}
		pool := newTestPool(t, cfg)
		keys := []string{"det/a", "det/b", "det/c"}
		for i := 0; i < 40; i++ {
			_, err := pool.InvokeSync(keys[i%len(keys)], nopSource, "{}")
			if err != nil && !fault.IsContained(err) {
				t.Fatalf("invoke %d: uncontained error %v", i, err)
			}
		}
		var traces []string
		var stats []core.Stats
		for i := 0; i < pool.Shards(); i++ {
			traces = append(traces, pool.ShardFaults(i).TraceString())
			ss, err := pool.ShardStats(i)
			if err != nil {
				t.Fatal(err)
			}
			stats = append(stats, ss.Node)
		}
		return traces, stats
	}

	tr1, st1 := run()
	tr2, st2 := run()
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Errorf("shard %d: same seed, different traces:\n%s\n%s", i, tr1[i], tr2[i])
		}
		if st1[i] != st2[i] {
			t.Errorf("shard %d: same seed, different stats:\n%+v\n%+v", i, st1[i], st2[i])
		}
	}
	var fired int
	for i := range tr1 {
		fired += len(tr1[i])
	}
	if fired == 0 {
		t.Error("rate 0.15 over 40 invocations fired nothing on any shard")
	}
}
