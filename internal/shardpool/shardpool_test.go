package shardpool

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/sim"
)

const nopSource = `function main(args) { return {ok: true}; }`

func testConfig(shards int) Config {
	return Config{
		Shards: shards,
		Node:   core.Config{NetworkAO: true, InterpreterAO: true},
	}
}

func newTestPool(t testing.TB, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestSingleShardMatchesSingleNode(t *testing.T) {
	// A 1-shard pool hydrated through the codec must behave exactly
	// like a directly booted node: same path sequence, same virtual
	// latencies. This pins the hydrate-once path to the boot-in-place
	// path.
	eng := sim.NewEngine()
	node, err := core.NewNode(eng, core.Config{NetworkAO: true, InterpreterAO: true})
	if err != nil {
		t.Fatal(err)
	}
	var direct []core.Result
	for i := 0; i < 3; i++ {
		eng.Go("inv", func(p *sim.Proc) {
			res, err := node.Invoke(p, core.Request{Key: "a/fn", Source: nopSource, Args: "{}"})
			if err != nil {
				t.Error(err)
			}
			direct = append(direct, res)
		})
		eng.Run()
	}

	pool := newTestPool(t, testConfig(1))
	for i, want := range direct {
		got, err := pool.InvokeSync("a/fn", nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		if got.Path != want.Path {
			t.Errorf("invocation %d: path = %v, want %v", i, got.Path, want.Path)
		}
		if got.Latency != want.Latency {
			t.Errorf("invocation %d: latency = %v, want %v (hydrated shard diverged from booted node)",
				i, got.Latency, want.Latency)
		}
	}
}

func TestRoutingLocality(t *testing.T) {
	// Sequential invocations of one key always land on its owner shard
	// and follow cold → hot.
	pool := newTestPool(t, testConfig(4))
	owner := pool.OwnerShard("loc/fn")
	for i := 0; i < 5; i++ {
		res, err := pool.InvokeSync("loc/fn", nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		if res.Shard != owner {
			t.Errorf("invocation %d served by shard %d, owner is %d", i, res.Shard, owner)
		}
		wantPath := core.PathHot
		if i == 0 {
			wantPath = core.PathCold
		}
		if res.Path != wantPath {
			t.Errorf("invocation %d: path = %v, want %v", i, res.Path, wantPath)
		}
	}
}

func TestConcurrentStress(t *testing.T) {
	// Parallel InvokeSync over mixed cold/warm/hot keys: no lost
	// invocations, no errors, and the aggregated per-path counters add
	// up exactly.
	const (
		shards  = 4
		workers = 16
		perW    = 25
		keys    = 10
	)
	pool := newTestPool(t, testConfig(shards))

	var wg sync.WaitGroup
	errs := make(chan error, workers*perW)
	var mu sync.Mutex
	pathCount := map[core.Path]int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("stress/fn%d", (w*perW+i)%keys)
				res, err := pool.InvokeSync(key, nopSource, `{"n": 1}`)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
				if res.Output == "" {
					errs <- fmt.Errorf("%s: empty output", key)
					return
				}
				mu.Lock()
				pathCount[res.Path]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(workers * perW)
	var seen int64
	for _, n := range pathCount {
		seen += n
	}
	if seen != total {
		t.Fatalf("lost invocations: served %d of %d", seen, total)
	}

	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Node.Errors != 0 {
		t.Errorf("errors = %d", st.Node.Errors)
	}
	if got := st.Node.Cold + st.Node.Warm + st.Node.Hot; got != total {
		t.Errorf("aggregated paths = %d, want %d", got, total)
	}
	if st.Node.Cold != pathCount[core.PathCold] ||
		st.Node.Warm != pathCount[core.PathWarm] ||
		st.Node.Hot != pathCount[core.PathHot] {
		t.Errorf("aggregate (%d/%d/%d) != client-observed (%d/%d/%d)",
			st.Node.Cold, st.Node.Warm, st.Node.Hot,
			pathCount[core.PathCold], pathCount[core.PathWarm], pathCount[core.PathHot])
	}
	// Every key went cold at least once somewhere; with stealing a key
	// may also go cold on a thief shard, never fewer times than keys.
	if st.Node.Cold < keys {
		t.Errorf("cold = %d, want >= %d", st.Node.Cold, keys)
	}
	if len(st.Shards) != shards {
		t.Errorf("per-shard breakdown has %d entries, want %d", len(st.Shards), shards)
	}
}

func TestPerShardDeterminism(t *testing.T) {
	// Same seed, same per-shard request sequence ⇒ identical per-shard
	// virtual latencies. Stealing is disabled so routing is exactly the
	// key hash and every shard sees a reproducible sequence.
	run := func() map[string][]time.Duration {
		cfg := testConfig(4)
		cfg.DisableWorkStealing = true
		cfg.Node.Seed = 42
		pool := newTestPool(t, cfg)
		out := map[string][]time.Duration{}
		for round := 0; round < 3; round++ {
			for k := 0; k < 8; k++ {
				key := fmt.Sprintf("det/fn%d", k)
				res, err := pool.InvokeSync(key, nopSource, "{}")
				if err != nil {
					t.Fatal(err)
				}
				if res.Stolen {
					t.Fatalf("stolen request with stealing disabled")
				}
				out[key] = append(out[key], res.Latency)
			}
		}
		return out
	}
	a, b := run(), run()
	for key, la := range a {
		lb := b[key]
		for i := range la {
			if la[i] != lb[i] {
				t.Errorf("%s invocation %d: run A latency %v, run B %v", key, i, la[i], lb[i])
			}
		}
	}
}

func TestWorkStealingOverflow(t *testing.T) {
	// Every request targets ONE key (maximal skew). The first request
	// wall-clock-blocks its owner shard inside the external-HTTP
	// callback, so the follow-up requests MUST overflow and be stolen
	// by the idle shards.
	cfg := testConfig(4)
	cfg.StealThreshold = 1
	blocked := make(chan struct{})  // closed to release the stuck owner
	entered := make(chan struct{})  // signals the owner is wedged
	var enterOnce sync.Once
	cfg.Node.HTTPHandler = func(url string) (string, time.Duration, error) {
		enterOnce.Do(func() { close(entered) })
		<-blocked
		return `{"slow": true}`, 0, nil
	}
	pool := newTestPool(t, cfg)

	ioSource := `function main(args) { var body = http.get("http://svc/slow"); return {body: body}; }`
	var wedged sync.WaitGroup
	wedged.Add(1)
	go func() {
		defer wedged.Done()
		if _, err := pool.InvokeSync("skew/hotkey", ioSource, "{}"); err != nil {
			t.Error(err)
		}
	}()
	<-entered // owner shard is now stuck in the guest's http.get

	// More work for the same key: the owner cannot serve it, so it
	// overflows to the steal queue and idle shards pick it up.
	const extra = 8
	owner := pool.OwnerShard("skew/hotkey")
	var wg sync.WaitGroup
	shardsSeen := make(chan int, extra)
	invoke := func() {
		defer wg.Done()
		res, err := pool.InvokeSync("skew/hotkey", nopSource, "{}")
		if err != nil {
			t.Error(err)
			return
		}
		shardsSeen <- res.Shard
	}
	// The first extra lands in the wedged owner's queue (depth 0 → 1);
	// wait until it is visibly queued so every later submit sees a
	// backlog at or above the steal threshold and must overflow.
	wg.Add(1)
	go invoke()
	for len(pool.shards[owner].reqs) == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < extra; i++ {
		wg.Add(1)
		go invoke()
	}
	// The stolen extras finish on idle shards; the one queued on the
	// owner needs the owner released first.
	served := make([]int, 0, extra)
	for i := 0; i < extra-1; i++ {
		served = append(served, <-shardsSeen)
	}
	close(blocked)
	wg.Wait()
	wedged.Wait()
	close(shardsSeen)
	for s := range shardsSeen {
		served = append(served, s)
	}

	thieves := map[int]bool{}
	for _, s := range served {
		if s != owner {
			thieves[s] = true
		}
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(thieves) == 0 {
		t.Errorf("no request escaped the wedged owner shard %d (stolen=%d)", owner, st.Stolen)
	}
	if st.Stolen == 0 {
		t.Error("no requests recorded as stolen under maximal skew")
	}
	if got := st.Node.Cold + st.Node.Warm + st.Node.Hot; got != extra+1 {
		t.Errorf("aggregate paths = %d, want %d", got, extra+1)
	}
}

func TestStatsReadsDoNotTearState(t *testing.T) {
	// Hammer Stats concurrently with invocations: every snapshot must
	// be internally consistent (counters never regress, cache sizes
	// non-negative) because reads are routed through shard goroutines.
	pool := newTestPool(t, testConfig(2))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("obs/fn%d", i%6)
			if _, err := pool.InvokeSync(key, nopSource, "{}"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var lastTotal int64
	for {
		select {
		case <-done:
			return
		default:
		}
		st, err := pool.Stats()
		if err != nil {
			t.Fatal(err)
		}
		total := st.Node.Cold + st.Node.Warm + st.Node.Hot
		if total < lastTotal {
			t.Fatalf("aggregate invocation count regressed: %d -> %d", lastTotal, total)
		}
		lastTotal = total
		if st.CachedSnapshots < 0 || st.IdleUCs < 0 || st.MemoryUsedBytes < 0 {
			t.Fatalf("nonsense stats snapshot: %+v", st)
		}
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	pool := newTestPool(t, testConfig(2))
	if _, err := pool.InvokeSync("c/fn", nopSource, "{}"); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if _, err := pool.InvokeSync("c/fn", nopSource, "{}"); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if _, err := pool.Stats(); err != ErrClosed {
		t.Errorf("stats err = %v, want ErrClosed", err)
	}
	pool.Close() // idempotent
}

func TestRuntimeSelection(t *testing.T) {
	// Multi-runtime configs hydrate one base snapshot per interpreter
	// on every shard.
	cfg := testConfig(2)
	cfg.Node.Runtimes = []string{"nodejs", "python"}
	pool := newTestPool(t, cfg)
	res, err := pool.Invoke(core.Request{Key: "py/fn", Source: nopSource, Args: "{}", Runtime: "python"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != core.PathCold {
		t.Errorf("path = %v", res.Path)
	}
	if _, err := pool.Invoke(core.Request{Key: "rb/fn", Source: nopSource, Args: "{}", Runtime: "ruby"}); err == nil {
		t.Error("unknown runtime accepted")
	}
}

func TestDisableAOReachesTemplateBoot(t *testing.T) {
	// DisableAO must affect the once-only template boot, not just
	// per-shard node construction: without AO the cold path pays full
	// first-touch initialization (~42 ms vs ~7.5 ms per Table 2).
	withAO, err := newTestPool(t, testConfig(2)).InvokeSync("ao/fn", nopSource, "{}")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.Node.DisableAO = true
	withoutAO, err := newTestPool(t, cfg).InvokeSync("ao/fn", nopSource, "{}")
	if err != nil {
		t.Fatal(err)
	}
	if withoutAO.Latency < 3*withAO.Latency {
		t.Errorf("DisableAO cold = %v, AO cold = %v: AO flag did not reach the template boot",
			withoutAO.Latency, withAO.Latency)
	}
}
