package shardpool

import (
	"fmt"
	"testing"

	"seuss/internal/core"
	"seuss/internal/snapstore"
)

// tierConfig is testConfig plus a shared disk tier.
func tierConfig(t *testing.T, shards int, capBytes int64) (Config, *snapstore.Store) {
	t.Helper()
	store, err := snapstore.Open(t.TempDir(), capBytes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(shards)
	cfg.Node.SnapStore = store
	return cfg, store
}

// TestPoolFlushAndLukewarmRestart is the process-restart round trip at
// pool scope: flush a running pool's function snapshots to the shared
// store, start a fresh pool over the same directory, and every
// function's first invocation is served lukewarm — from disk, with the
// exact output an uninterrupted first run produced — instead of cold.
func TestPoolFlushAndLukewarmRestart(t *testing.T) {
	const fns = 6
	cfg, store := tierConfig(t, 4, -1)

	key := func(i int) string { return fmt.Sprintf("acct/fn%d", i) }
	firstOutputs := make(map[string]string, fns)

	poolA := newTestPool(t, cfg)
	for i := 0; i < fns; i++ {
		res, err := poolA.InvokeSync(key(i), nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != core.PathCold {
			t.Fatalf("%s first path = %v, want cold", key(i), res.Path)
		}
		firstOutputs[key(i)] = res.Output
	}
	flushed, err := poolA.FlushSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if flushed != fns {
		t.Fatalf("flushed %d snapshots, want %d", flushed, fns)
	}
	if store.Len() != fns {
		t.Fatalf("store holds %d entries, want %d", store.Len(), fns)
	}
	poolA.Close()

	// "Restart": a brand-new pool sharing the same store directory.
	poolB := newTestPool(t, cfg)
	for i := 0; i < fns; i++ {
		res, err := poolB.InvokeSync(key(i), nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != core.PathLukewarm {
			t.Errorf("%s restart path = %v, want lukewarm", key(i), res.Path)
		}
		if res.Output != firstOutputs[key(i)] {
			t.Errorf("%s lukewarm output %q != first-run output %q",
				key(i), res.Output, firstOutputs[key(i)])
		}
	}
	st, err := poolB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Node.Lukewarm != fns || st.Node.Cold != 0 {
		t.Errorf("restart stats: lukewarm=%d cold=%d, want %d/0",
			st.Node.Lukewarm, st.Node.Cold, fns)
	}
	if st.Node.TierHits < int64(fns) {
		t.Errorf("tier hits = %d, want >= %d", st.Node.TierHits, fns)
	}
}

// TestPoolPrewarmMakesFirstInvocationWarm: a restarted pool that
// prewarms its lineages up front serves even the *first* request from
// RAM (warm or hot), and a bounded prewarm restores only the
// most-recently-used lineages.
func TestPoolPrewarmMakesFirstInvocationWarm(t *testing.T) {
	const fns = 5
	cfg, _ := tierConfig(t, 2, -1)
	key := func(i int) string { return fmt.Sprintf("acct/fn%d", i) }

	poolA := newTestPool(t, cfg)
	for i := 0; i < fns; i++ {
		if _, err := poolA.InvokeSync(key(i), nopSource, "{}"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := poolA.FlushSnapshots(); err != nil {
		t.Fatal(err)
	}
	poolA.Close()

	poolB := newTestPool(t, cfg)
	restored, err := poolB.Prewarm(0)
	if err != nil {
		t.Fatal(err)
	}
	if restored != fns {
		t.Fatalf("prewarm restored %d lineages, want %d", restored, fns)
	}
	for i := 0; i < fns; i++ {
		res, err := poolB.InvokeSync(key(i), nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != core.PathWarm && res.Path != core.PathHot {
			t.Errorf("%s post-prewarm path = %v, want warm or hot", key(i), res.Path)
		}
	}
	st, err := poolB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Node.SnapshotsPrewarmed != fns {
		t.Errorf("prewarmed = %d, want %d", st.Node.SnapshotsPrewarmed, fns)
	}
	if st.Node.Cold != 0 || st.Node.Lukewarm != 0 {
		t.Errorf("prewarmed pool still promoted on demand: %+v", st.Node)
	}
	poolB.Close()

	// Bounded prewarm: only the requested number of lineages restore.
	poolC := newTestPool(t, cfg)
	restored, err = poolC.Prewarm(2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Errorf("bounded prewarm restored %d lineages, want 2", restored)
	}
}

// TestPoolRestartDeterminism extends the per-shard determinism contract
// across a flush/restart boundary: two identical restarted pools replay
// the same workload with identical per-invocation paths, outputs, and
// virtual latencies.
func TestPoolRestartDeterminism(t *testing.T) {
	const fns = 4
	key := func(i int) string { return fmt.Sprintf("acct/fn%d", i) }

	run := func() []core.Result {
		cfg, _ := tierConfig(t, 2, -1)
		cfg.DisableWorkStealing = true
		poolA := newTestPool(t, cfg)
		for i := 0; i < fns; i++ {
			if _, err := poolA.InvokeSync(key(i), nopSource, "{}"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := poolA.FlushSnapshots(); err != nil {
			t.Fatal(err)
		}
		poolA.Close()

		poolB := newTestPool(t, cfg)
		var results []core.Result
		for round := 0; round < 2; round++ {
			for i := 0; i < fns; i++ {
				res, err := poolB.InvokeSync(key(i), nopSource, "{}")
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, core.Result{Path: res.Path, Output: res.Output, Latency: res.Latency})
			}
		}
		return results
	}

	a, b := run(), run()
	for i := range a {
		if a[i].Path != b[i].Path || a[i].Output != b[i].Output || a[i].Latency != b[i].Latency {
			t.Fatalf("restarted runs diverged at invocation %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
