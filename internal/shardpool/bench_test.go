package shardpool

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkShardedThroughput measures wall-clock invocations/sec
// through the pool front door as the shard count grows. Keys are
// pre-warmed so the measured path is the hot path — the workload where
// the old single-lock node left all but one core idle. On a multicore
// host, throughput should scale with shards (the acceptance bar is
// >2× at 4 shards vs 1).
func BenchmarkShardedThroughput(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	const keys = 64
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pool, err := New(testConfig(shards))
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			for k := 0; k < keys; k++ {
				if _, err := pool.InvokeSync(fmt.Sprintf("bench/fn%d", k), nopSource, "{}"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					key := fmt.Sprintf("bench/fn%d", k%keys)
					if _, err := pool.InvokeSync(key, nopSource, "{}"); err != nil {
						b.Fatal(err)
					}
					k++
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "invokes/sec")
		})
	}
}
