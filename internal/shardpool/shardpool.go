// Package shardpool turns the single-node SEUSS reproduction into a
// concurrency-safe multi-engine compute node: a shared-nothing pool of
// N shards behind one front door.
//
// Snapshot-restore systems scale out by hydrating many independent
// instances from one captured image. The pool does exactly that with
// the existing snapshot codec: the base runtime image is booted and
// anticipatorily optimized ONCE on a template store, captured, and
// exported to bytes; each shard then materializes the encoded diff
// into its own private mem.Store. Boot + AO cost is paid once per
// process, never per shard.
//
// Each shard is a complete, independent (sim.Engine, mem.Store,
// core.Node) triple owned by a dedicated OS goroutine. Shards share no
// mutable state — no lock protects the serving path, because nothing
// is shared to protect. Requests reach a shard through its queue; the
// shard goroutine drives its engine to completion for one request at a
// time, so the engine ownership contract (see sim.Engine) holds by
// construction.
//
// Routing: a request's function key hashes to its owner shard, so a
// function's snapshot and idle UCs stay shard-local and the hot/warm
// paths keep their locality. When an owner's queue is backed up, the
// request is instead published to a shared overflow queue that any
// idle shard may steal from — skewed keys spill onto idle cores at the
// cost of going cold on the thief (it captures its own function
// snapshot, so repeated spill warms up too).
//
// Determinism: each shard's engine is a deterministic discrete-event
// simulation with its own virtual clock and seed (cfg.Node.Seed +
// shard ID). Given the same per-shard request sequence, a shard
// reports identical virtual latencies run over run. Cross-shard
// ordering — which shard's wall-clock work finishes first, how stolen
// requests interleave — is explicitly NOT part of the deterministic
// contract.
package shardpool

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seuss/internal/core"
	"seuss/internal/mem"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/uc"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("shardpool: pool closed")

// Config parameterizes a pool.
type Config struct {
	// Shards is the shard count (default: runtime.NumCPU()).
	Shards int
	// Node configures every shard's node identically. MemoryBytes is
	// the WHOLE pool's budget; it is divided evenly across shards
	// (shared-nothing, so each shard OOMs independently). Seed is the
	// base seed; shard i runs with Seed+i.
	Node core.Config
	// QueueDepth is each shard's request queue capacity (default 128).
	QueueDepth int
	// StealThreshold is the owner-queue depth at or beyond which a
	// request overflows to the shared steal queue (default 2).
	StealThreshold int
	// DisableWorkStealing pins every request to its hash-owner shard.
	// Skewed keys then serialize on their owner — useful when per-shard
	// request sequences must be exactly reproducible.
	DisableWorkStealing bool
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.StealThreshold == 0 {
		c.StealThreshold = 2
	}
	// Normalize the node config here so per-shard derivations below
	// (memory split, runtime list) work from the defaulted values, and
	// flags like DisableAO take effect before the template boot.
	c.Node = c.Node.Normalized()
	return c
}

// Result is one invocation's outcome, annotated with where it ran.
type Result struct {
	// Path is the invocation path taken ("cold", "warm", "hot").
	Path core.Path
	// Output is the driver's JSON response.
	Output string
	// Latency is the shard-side service time in that shard's virtual
	// clock.
	Latency time.Duration
	// Shard is the shard that served the request.
	Shard int
	// Stolen reports whether the request overflowed its owner shard
	// and was served by a thief.
	Stolen bool
}

// ShardStats is one shard's state, snapshotted inside its owning
// goroutine (never read mid-invocation).
type ShardStats struct {
	Shard           int
	Node            core.Stats
	CachedSnapshots int
	IdleUCs         int
	Mem             mem.Stats
	Clock           time.Duration
}

// Stats is the pool-level aggregate.
type Stats struct {
	// Node sums the per-shard counters.
	Node core.Stats
	// CachedSnapshots / IdleUCs sum the per-shard cache sizes.
	CachedSnapshots int
	IdleUCs         int
	// MemoryUsedBytes sums per-shard physical memory in use.
	MemoryUsedBytes int64
	// Stolen counts requests served off their owner shard.
	Stolen int64
	// Shards is the per-shard breakdown.
	Shards []ShardStats
}

// request is one unit of work delivered to a shard goroutine: an
// invocation, or a control read of shard state.
type request struct {
	req   core.Request
	stats bool // control: snapshot shard stats instead of invoking
	reply chan response
}

type response struct {
	res    core.Result
	err    error
	shard  int
	stolen bool
	stats  ShardStats
}

// shard is one shared-nothing compute unit: engine + store + node,
// owned exclusively by its loop goroutine.
type shard struct {
	id   int
	pool *Pool
	eng  *sim.Engine
	node *core.Node
	reqs chan *request
}

// Pool is the front door over N shards.
type Pool struct {
	cfg      Config
	shards   []*shard
	overflow chan *request
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	stolen   atomic.Int64
}

// New hydrates and starts a pool.
//
// The base runtime snapshot for every configured runtime is booted once
// on a throwaway template store, exported through the snapshot codec,
// and materialized into each shard's private store — the codec
// round-trip is the live hydration path, not a test fixture.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shardpool: invalid shard count %d", cfg.Shards)
	}

	// Template phase: pay boot + AO once, keep only the encoded bytes.
	runtimes := cfg.Node.Runtimes
	if len(runtimes) == 0 {
		runtimes = []string{"nodejs"}
	}
	tmpl := mem.NewStore(0) // unbounded scratch; discarded after export
	encoded := make(map[string][]byte, len(runtimes))
	for _, name := range runtimes {
		snap, err := core.BootRuntime(tmpl, cfg.Node, name)
		if err != nil {
			return nil, fmt.Errorf("shardpool: template: %w", err)
		}
		var buf bytes.Buffer
		if err := snap.Export(&buf); err != nil {
			return nil, fmt.Errorf("shardpool: export %s: %w", name, err)
		}
		encoded[name] = buf.Bytes()
	}

	p := &Pool{
		cfg:      cfg,
		overflow: make(chan *request, cfg.Shards*cfg.QueueDepth),
		quit:     make(chan struct{}),
	}
	perShardMem := cfg.Node.MemoryBytes
	if perShardMem > 0 {
		perShardMem /= int64(cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		s, err := p.hydrateShard(i, perShardMem, encoded)
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, s)
	}
	for _, s := range p.shards {
		p.wg.Add(1)
		go s.loop()
	}
	return p, nil
}

// hydrateShard materializes the encoded runtime images into a fresh
// store and builds the shard's node around them.
func (p *Pool) hydrateShard(id int, memBytes int64, encoded map[string][]byte) (*shard, error) {
	st := mem.NewStore(memBytes)
	snaps := make(map[string]*snapshot.Snapshot, len(encoded))
	for name, enc := range encoded {
		diff, err := snapshot.Import(bytes.NewReader(enc))
		if err != nil {
			return nil, fmt.Errorf("shardpool: shard %d: import %s: %w", id, name, err)
		}
		snap, err := snapshot.Materialize(diff, st)
		if err != nil {
			return nil, fmt.Errorf("shardpool: shard %d: materialize %s: %w", id, name, err)
		}
		payload, err := uc.DecodePayload(diff.PayloadBytes)
		if err != nil {
			return nil, fmt.Errorf("shardpool: shard %d: payload %s: %w", id, name, err)
		}
		snap.SetPayload(payload)
		snaps[name] = snap
	}
	eng := sim.NewEngine()
	nodeCfg := p.cfg.Node
	nodeCfg.MemoryBytes = memBytes
	nodeCfg.Seed = p.cfg.Node.Seed + int64(id)
	node, err := core.NewNodeFromSnapshots(eng, nodeCfg, st, snaps)
	if err != nil {
		return nil, fmt.Errorf("shardpool: shard %d: %w", id, err)
	}
	return &shard{
		id:   id,
		pool: p,
		eng:  eng,
		node: node,
		reqs: make(chan *request, p.cfg.QueueDepth),
	}, nil
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor routes a key to its owner shard by FNV-1a hash.
func (p *Pool) shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// OwnerShard exposes the routing decision (tests, instrumentation).
func (p *Pool) OwnerShard(key string) int { return p.shardFor(key) }

// loop is a shard goroutine: it exclusively owns the shard's engine and
// node, serving its own queue with priority and stealing from the
// shared overflow queue when idle.
func (s *shard) loop() {
	defer s.pool.wg.Done()
	for {
		// Own queue first: preserves hot/warm locality for owned keys
		// even when the overflow queue is non-empty.
		select {
		case r := <-s.reqs:
			s.serve(r, false)
			continue
		default:
		}
		select {
		case r := <-s.reqs:
			s.serve(r, false)
		case r := <-s.pool.overflow:
			s.serve(r, true)
		case <-s.pool.quit:
			return
		}
	}
}

// serve runs one request to completion on the shard's engine. stolen
// marks requests picked off the overflow queue by a non-owner.
func (s *shard) serve(r *request, stolen bool) {
	if r.stats {
		st := s.node.Stats()
		r.reply <- response{shard: s.id, stats: ShardStats{
			Shard:           s.id,
			Node:            st,
			CachedSnapshots: s.node.CachedSnapshots(),
			IdleUCs:         s.node.IdleUCs(),
			Mem:             s.node.MemStats(),
			Clock:           time.Duration(s.eng.Now()),
		}}
		return
	}
	var res core.Result
	var err error
	s.eng.Go("invoke:"+r.req.Key, func(p *sim.Proc) {
		res, err = s.node.Invoke(p, r.req)
	})
	s.eng.Run()
	if stolen {
		s.pool.stolen.Add(1)
	}
	r.reply <- response{res: res, err: err, shard: s.id, stolen: stolen}
}

// submit routes a request: owner shard when its queue is shallow, the
// shared overflow queue when the owner is backed up (unless stealing is
// disabled). It never blocks the pool shut-down path.
func (p *Pool) submit(r *request, owner int) error {
	if p.closed.Load() {
		return ErrClosed
	}
	s := p.shards[owner]
	if !p.cfg.DisableWorkStealing && !r.stats && len(s.reqs) >= p.cfg.StealThreshold {
		select {
		case p.overflow <- r:
			return nil
		default:
			// Overflow full too; fall through to the owner.
		}
	}
	select {
	case s.reqs <- r:
		return nil
	case <-p.quit:
		return ErrClosed
	}
}

// await blocks for a request's reply, bailing out if the pool shuts
// down underneath a still-queued request (replies are buffered, so a
// racing serve is never lost — it is drained here).
func (p *Pool) await(r *request) (response, error) {
	select {
	case resp := <-r.reply:
		return resp, nil
	case <-p.quit:
		select {
		case resp := <-r.reply:
			return resp, nil
		default:
			return response{}, ErrClosed
		}
	}
}

// Invoke services one invocation through the pool and reports where it
// ran. Safe for concurrent use from any number of goroutines.
func (p *Pool) Invoke(req core.Request) (Result, error) {
	r := &request{req: req, reply: make(chan response, 1)}
	if err := p.submit(r, p.shardFor(req.Key)); err != nil {
		return Result{}, err
	}
	resp, err := p.await(r)
	if err != nil {
		return Result{}, err
	}
	if resp.err != nil {
		return Result{Shard: resp.shard, Stolen: resp.stolen}, resp.err
	}
	return Result{
		Path:    resp.res.Path,
		Output:  resp.res.Output,
		Latency: resp.res.Latency,
		Shard:   resp.shard,
		Stolen:  resp.stolen,
	}, nil
}

// InvokeSync is the string-level convenience form mirroring the
// single-node API.
func (p *Pool) InvokeSync(key, source, args string) (Result, error) {
	return p.Invoke(core.Request{Key: key, Source: source, Args: args})
}

// ShardStats snapshots one shard's state by routing the read through
// its owning goroutine — the reply is taken between invocations, never
// mid-invocation.
func (p *Pool) ShardStats(shard int) (ShardStats, error) {
	if shard < 0 || shard >= len(p.shards) {
		return ShardStats{}, fmt.Errorf("shardpool: no shard %d", shard)
	}
	r := &request{stats: true, reply: make(chan response, 1)}
	if err := p.submit(r, shard); err != nil {
		return ShardStats{}, err
	}
	resp, err := p.await(r)
	if err != nil {
		return ShardStats{}, err
	}
	return resp.stats, nil
}

// Stats aggregates counters across every shard. Each shard's snapshot
// is consistent (taken inside its goroutine); the aggregate is a union
// of per-shard snapshots taken at slightly different wall-clock
// moments, which is the strongest statement a shared-nothing design
// can make.
func (p *Pool) Stats() (Stats, error) {
	// Fan the control reads out so one busy shard does not serialize
	// the whole scrape.
	replies := make([]chan response, len(p.shards))
	for i := range p.shards {
		r := &request{stats: true, reply: make(chan response, 1)}
		if err := p.submit(r, i); err != nil {
			return Stats{}, err
		}
		replies[i] = r.reply
	}
	var out Stats
	out.Stolen = p.stolen.Load()
	for _, ch := range replies {
		resp, err := p.await(&request{reply: ch})
		if err != nil {
			return Stats{}, err
		}
		ss := resp.stats
		out.Shards = append(out.Shards, ss)
		out.Node.Cold += ss.Node.Cold
		out.Node.Warm += ss.Node.Warm
		out.Node.Hot += ss.Node.Hot
		out.Node.Errors += ss.Node.Errors
		out.Node.UCsDeployed += ss.Node.UCsDeployed
		out.Node.UCsReclaimed += ss.Node.UCsReclaimed
		out.Node.SnapshotsCaptured += ss.Node.SnapshotsCaptured
		out.Node.SnapshotsEvicted += ss.Node.SnapshotsEvicted
		out.CachedSnapshots += ss.CachedSnapshots
		out.IdleUCs += ss.IdleUCs
		out.MemoryUsedBytes += ss.Mem.BytesInUse
	}
	return out, nil
}

// Close stops the shard goroutines and rejects further submissions.
// In-flight requests complete; queued-but-unserved requests may be
// abandoned, so quiesce callers first. Close is idempotent.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
}
