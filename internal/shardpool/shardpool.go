// Package shardpool turns the single-node SEUSS reproduction into a
// concurrency-safe multi-engine compute node: a shared-nothing pool of
// N shards behind one front door.
//
// Snapshot-restore systems scale out by hydrating many independent
// instances from one captured image. The pool does exactly that with
// the existing snapshot codec: the base runtime image is booted and
// anticipatorily optimized ONCE on a template store, captured, and
// exported to bytes; each shard then materializes the encoded diff
// into its own private mem.Store. Boot + AO cost is paid once per
// process, never per shard.
//
// Each shard is a complete, independent (sim.Engine, mem.Store,
// core.Node) triple owned by a dedicated OS goroutine. Shards share no
// mutable state — no lock protects the serving path, because nothing
// is shared to protect. Requests reach a shard through its queue; the
// shard goroutine drives its engine to completion for one request at a
// time, so the engine ownership contract (see sim.Engine) holds by
// construction.
//
// Routing: a request's function key hashes to its owner shard, so a
// function's snapshot and idle UCs stay shard-local and the hot/warm
// paths keep their locality. When an owner's queue is backed up, the
// request is instead published to a shared overflow queue that any
// idle shard may steal from — skewed keys spill onto idle cores at the
// cost of going cold on the thief (it captures its own function
// snapshot, so repeated spill warms up too).
//
// Determinism: each shard's engine is a deterministic discrete-event
// simulation with its own virtual clock and seed (cfg.Node.Seed +
// shard ID). Given the same per-shard request sequence, a shard
// reports identical virtual latencies run over run. Cross-shard
// ordering — which shard's wall-clock work finishes first, how stolen
// requests interleave — is explicitly NOT part of the deterministic
// contract.
//
// Failure containment: every shard carries a circuit breaker
// (closed → open → half-open). Consecutive contained faults on a
// shard open its breaker; while open, the shard's keys divert over
// the existing work-stealing overflow queue to healthy shards and the
// sick shard stops stealing, so it drains in place. After a bounded
// number of diverted requests one probe is let through; success closes
// the breaker, failure re-opens it. An injected shard stall requeues
// the request to another shard instead of failing it, so a fault storm
// degrades to re-routing, not to dropped requests.
package shardpool

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/mem"
	"seuss/internal/metrics"
	"seuss/internal/sched"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/snapstore"
	"seuss/internal/uc"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("shardpool: pool closed")

// ErrShardStalled is returned when a stalled shard cannot re-route a
// request (stealing disabled, or the requeue budget is exhausted in a
// pool-wide fault storm). Contained: a retry may land on a healthy
// shard.
var ErrShardStalled = errors.New("shardpool: shard stalled")

// Config parameterizes a pool.
type Config struct {
	// Shards is the shard count (default: runtime.NumCPU()).
	Shards int
	// Node configures every shard's node identically. MemoryBytes is
	// the WHOLE pool's budget; it is divided evenly across shards
	// (shared-nothing, so each shard OOMs independently). Seed is the
	// base seed; shard i runs with Seed+i. Node.SnapStore, when set, is
	// shared by every shard — the store is internally synchronized and
	// reads are single-flight, the one deliberate exception to the
	// shared-nothing rule (disk, unlike the engines, is one device).
	Node core.Config
	// QueueDepth is each shard's request queue capacity (default 128).
	QueueDepth int
	// StealThreshold is the owner-queue depth at or beyond which a
	// request overflows to the shared steal queue (default 2).
	StealThreshold int
	// DisableWorkStealing pins every request to its hash-owner shard.
	// Skewed keys then serialize on their owner — useful when per-shard
	// request sequences must be exactly reproducible. Breaker diversion
	// and stall requeueing also ride the overflow queue, so disabling
	// stealing disables re-routing too (sick shards then serve their
	// own keys, and stalls surface as ErrShardStalled).
	DisableWorkStealing bool
	// Faults configures deterministic fault injection. Each shard
	// derives a private injector (Faults.Child(shard)) shared with its
	// node, so shard-level points (stalls) and node-level points (UC
	// crashes, proxy drops) land in one per-shard trace. The zero
	// config injects nothing at zero overhead.
	Faults fault.Config
	// BreakerThreshold is the number of consecutive contained failures
	// that open a shard's circuit breaker (default 3; -1 disables
	// breakers).
	BreakerThreshold int
	// BreakerProbeAfter is how many diverted requests an open breaker
	// absorbs before letting one probe through half-open (default 4).
	BreakerProbeAfter int
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.StealThreshold == 0 {
		c.StealThreshold = 2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerProbeAfter == 0 {
		c.BreakerProbeAfter = 4
	}
	// Normalize the node config here so per-shard derivations below
	// (memory split, runtime list) work from the defaulted values, and
	// flags like DisableAO take effect before the template boot.
	c.Node = c.Node.Normalized()
	return c
}

// Result is one invocation's outcome, annotated with where it ran.
type Result struct {
	// RequestID is the invocation's process-unique request ID, carried
	// on its trace span (core.Result.ID).
	RequestID uint64
	// Path is the invocation path taken ("cold", "warm", "hot",
	// "lukewarm").
	Path core.Path
	// Output is the driver's JSON response.
	Output string
	// Latency is the shard-side service time in that shard's virtual
	// clock.
	Latency time.Duration
	// Shard is the shard that served the request.
	Shard int
	// Stolen reports whether the request overflowed its owner shard
	// and was served by a thief.
	Stolen bool
}

// ShardStats is one shard's state, snapshotted inside its owning
// goroutine (never read mid-invocation).
type ShardStats struct {
	Shard           int
	Node            core.Stats
	CachedSnapshots int
	IdleUCs         int
	Mem             mem.Stats
	Clock           time.Duration
	// Breaker is the shard's circuit-breaker state ("closed", "open",
	// "half-open").
	Breaker string
	// BreakerTrips counts closed→open transitions on this shard.
	BreakerTrips int64
	// FaultsInjected counts fault points fired on this shard.
	FaultsInjected int64
}

// Stats is the pool-level aggregate.
type Stats struct {
	// Node sums the per-shard counters.
	Node core.Stats
	// CachedSnapshots / IdleUCs sum the per-shard cache sizes.
	CachedSnapshots int
	IdleUCs         int
	// MemoryUsedBytes sums per-shard physical memory in use.
	MemoryUsedBytes int64
	// Stolen counts requests served off their owner shard.
	Stolen int64
	// BreakerTrips sums closed→open transitions across shards.
	BreakerTrips int64
	// Rerouted counts requests diverted away from an open breaker.
	Rerouted int64
	// Requeued counts requests a stalled shard pushed back to the
	// overflow queue for a healthy shard to serve.
	Requeued int64
	// Stalls counts injected shard stalls.
	Stalls int64
	// Shards is the per-shard breakdown.
	Shards []ShardStats
}

// ---- Circuit breaker ----

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is one shard's circuit breaker. It is the only mutable state
// on the serving path shared between client goroutines (submit) and
// the shard goroutine (serve); a plain mutex guards it — the critical
// sections are a handful of integer ops.
//
// closed: requests route to the shard; `threshold` consecutive
// contained failures open it. open: requests divert to the overflow
// queue; after `probeAfter` diversions the next owned request is let
// through as a half-open probe. half-open: the probe's outcome decides
// — success closes, failure re-opens.
type breaker struct {
	mu         sync.Mutex
	threshold  int
	probeAfter int
	state      int
	failures   int // consecutive contained failures while closed
	diverted   int // requests diverted while open
	trips      int64
	rec        *metrics.Recorder // shard recorder; counts trips (nil ok)
}

func newBreaker(threshold, probeAfter int, rec *metrics.Recorder) *breaker {
	return &breaker{threshold: threshold, probeAfter: probeAfter, rec: rec}
}

// disabled reports whether breaker logic is off (threshold < 0).
func (b *breaker) disabled() bool { return b.threshold < 0 }

// route decides where an owned request goes: allow=false diverts it to
// the overflow queue; probe marks the request as the half-open probe
// (it must reach the owner directly, bypassing the steal spill).
func (b *breaker) route() (allow, probe bool) {
	if b.disabled() {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		b.diverted++
		if b.diverted >= b.probeAfter {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: one probe is already in flight
		return false, false
	}
}

// recordSuccess notes a request the shard served cleanly.
func (b *breaker) recordSuccess() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.diverted = 0
	}
}

// recordFailure notes a contained fault on the shard.
func (b *breaker) recordFailure() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen: // the probe failed: straight back to open
		b.state = breakerOpen
		b.diverted = 0
		b.trips++
		b.rec.Inc(metrics.CtrBreakerTrips)
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.failures = 0
			b.diverted = 0
			b.trips++
			b.rec.Inc(metrics.CtrBreakerTrips)
		}
	}
	// Failures while already open (stolen work served here) don't
	// re-trip; the breaker is already protecting the shard's keys.
}

// healthy reports whether the shard should take extra (stolen) work.
func (b *breaker) healthy() bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// snapshot returns the state name and trip count.
func (b *breaker) snapshot() (string, int64) {
	if b.disabled() {
		return "disabled", 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state], b.trips
}

// request is one unit of work delivered to a shard goroutine: an
// invocation, or a control read of shard state.
type request struct {
	req      core.Request
	stats    bool          // control: snapshot shard stats instead of invoking
	flush    bool          // control: demote resident snapshots to the disk tier
	prewarm  string        // control: promote this lineage from the disk tier
	tick     bool          // control: advance the shard clock and run a reaper pass
	advance  time.Duration // virtual time to advance before the tick
	requeues int           // times a stalled shard pushed this request back
	reply    chan response
}

// control reports whether the request is a control message (served
// inside the owner goroutine, never stolen, rerouted, or stalled).
func (r *request) control() bool { return r.stats || r.flush || r.prewarm != "" || r.tick }

// reqPool recycles request descriptors and their reply channels across
// invocations — the front door's only steady-state allocations
// otherwise. A request is recycled ONLY after its response has been
// received: a request abandoned at shutdown may still get a late reply
// from a draining shard, so it is never reused.
var reqPool = sync.Pool{
	New: func() interface{} { return &request{reply: make(chan response, 1)} },
}

func getRequest() *request { return reqPool.Get().(*request) }

func putRequest(r *request) {
	r.req = core.Request{}
	r.stats = false
	r.flush = false
	r.prewarm = ""
	r.tick = false
	r.advance = 0
	r.requeues = 0
	reqPool.Put(r)
}

type response struct {
	res       core.Result
	err       error
	shard     int
	stolen    bool
	stats     ShardStats
	flushed   int
	tickStats core.TickStats
}

// shard is one shared-nothing compute unit: engine + store + node,
// owned exclusively by its loop goroutine.
type shard struct {
	id      int
	pool    *Pool
	eng     *sim.Engine
	node    *core.Node
	reqs    chan *request
	faults  *fault.Injector // shared with the shard's node
	breaker *breaker
	// rec is the shard's private metrics recorder, shared with its node
	// (lock-free by construction: one writer goroutine for node-path
	// counters, atomics for the breaker). Merged on Pool.Metrics().
	rec *metrics.Recorder
}

// Pool is the front door over N shards.
type Pool struct {
	cfg      Config
	shards   []*shard
	overflow chan *request
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	stolen   atomic.Int64
	rerouted atomic.Int64
	requeued atomic.Int64
	stalls   atomic.Int64
	// rec holds pool-level (routing) counters; per-shard recorders are
	// merged with it on Metrics().
	rec *metrics.Recorder
}

// New hydrates and starts a pool.
//
// The base runtime snapshot for every configured runtime is booted once
// on a throwaway template store, exported through the snapshot codec,
// and materialized into each shard's private store — the codec
// round-trip is the live hydration path, not a test fixture.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shardpool: invalid shard count %d", cfg.Shards)
	}

	// Template phase: pay boot + AO once, keep only the encoded bytes.
	runtimes := cfg.Node.Runtimes
	if len(runtimes) == 0 {
		runtimes = []string{"nodejs"}
	}
	tmpl := mem.NewStore(0) // unbounded scratch; discarded after export
	encoded := make(map[string][]byte, len(runtimes))
	for _, name := range runtimes {
		snap, err := core.BootRuntime(tmpl, cfg.Node, name)
		if err != nil {
			return nil, fmt.Errorf("shardpool: template: %w", err)
		}
		var buf bytes.Buffer
		if err := snap.Export(&buf); err != nil {
			return nil, fmt.Errorf("shardpool: export %s: %w", name, err)
		}
		encoded[name] = buf.Bytes()
	}

	p := &Pool{
		cfg:      cfg,
		overflow: make(chan *request, cfg.Shards*cfg.QueueDepth),
		quit:     make(chan struct{}),
		rec:      metrics.NewRecorder(),
	}
	// The template boots drew their RNG seeds from host entropy like any
	// deploy path; account them at pool level — the template ran before
	// any shard recorder existed.
	p.rec.AddCounter(metrics.CtrReseedsBoot, int64(len(runtimes)))
	perShardMem := cfg.Node.MemoryBytes
	if perShardMem > 0 {
		perShardMem /= int64(cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		s, err := p.hydrateShard(i, perShardMem, encoded)
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, s)
	}
	for _, s := range p.shards {
		p.wg.Add(1)
		go s.loop()
	}
	return p, nil
}

// hydrateShard materializes the encoded runtime images into a fresh
// store and builds the shard's node around them.
func (p *Pool) hydrateShard(id int, memBytes int64, encoded map[string][]byte) (*shard, error) {
	st := mem.NewStore(memBytes)
	snaps := make(map[string]*snapshot.Snapshot, len(encoded))
	for name, enc := range encoded {
		// Zero-copy decode: the diff aliases enc, which outlives the
		// Materialize below (it copies page bytes into the shard's own
		// frames). N shards hydrate from one wire image without N
		// intermediate copies.
		diff, err := snapshot.ImportBytes(enc)
		if err != nil {
			return nil, fmt.Errorf("shardpool: shard %d: import %s: %w", id, name, err)
		}
		snap, err := snapshot.Materialize(diff, st)
		if err != nil {
			return nil, fmt.Errorf("shardpool: shard %d: materialize %s: %w", id, name, err)
		}
		payload, err := uc.DecodePayload(diff.PayloadBytes)
		if err != nil {
			return nil, fmt.Errorf("shardpool: shard %d: payload %s: %w", id, name, err)
		}
		snap.SetPayload(payload)
		snaps[name] = snap
	}
	eng := sim.NewEngine()
	nodeCfg := p.cfg.Node
	nodeCfg.MemoryBytes = memBytes
	nodeCfg.Seed = p.cfg.Node.Seed + int64(id)
	// Give each shard a private child tracer: records stay uncontended
	// on the shard goroutine, and the caller's parent tracer still reads
	// the merged timeline. A nil parent yields a nil child (no-op).
	nodeCfg.Tracer = p.cfg.Node.Tracer.Child()
	// One lifecycle policy per shard: policies accumulate per-key
	// history (inter-arrival histograms), and sharing one instance
	// across shard goroutines would break the shared-nothing rule. The
	// key→shard hash keeps each key's history on one shard anyway.
	if p.cfg.Node.Policy != nil {
		nodeCfg.Policy = p.cfg.Node.Policy.Clone()
	}
	// One injector per shard, shared with its node: shard-level stalls
	// and node-level crashes land in a single replayable per-shard
	// trace, derived deterministically from the pool seed.
	inj := fault.New(p.cfg.Faults.Child(id))
	nodeCfg.Faults = inj
	// One recorder per shard, shared with its node and breaker; any
	// caller-supplied Node.Metrics is replaced — pool aggregates come
	// out of Pool.Metrics(), which merges the per-shard recorders.
	rec := metrics.NewRecorder()
	nodeCfg.Metrics = rec
	node, err := core.NewNodeFromSnapshots(eng, nodeCfg, st, snaps)
	if err != nil {
		return nil, fmt.Errorf("shardpool: shard %d: %w", id, err)
	}
	return &shard{
		id:      id,
		pool:    p,
		eng:     eng,
		node:    node,
		reqs:    make(chan *request, p.cfg.QueueDepth),
		faults:  inj,
		breaker: newBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerProbeAfter, rec),
		rec:     rec,
	}, nil
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// anyHealthy reports whether some shard other than `except` has a
// closed breaker — i.e. whether the overflow queue has a willing
// thief. Pass except = -1 to count every shard. Re-routing is only
// safe when this holds: sick shards do not steal, so publishing work
// to the overflow queue with no healthy shard would strand it.
func (p *Pool) anyHealthy(except int) bool {
	for i, s := range p.shards {
		if i != except && s.breaker.healthy() {
			return true
		}
	}
	return false
}

// shardFor routes a key to its owner shard via the scheduler layer's
// shared key-affinity hash (allocation-free 32-bit FNV-1a), so a key's
// owner is consistent with every other per-key router in the stack.
func (p *Pool) shardFor(key string) int {
	return sched.OwnerShard(key, len(p.shards))
}

// OwnerShard exposes the routing decision (tests, instrumentation).
func (p *Pool) OwnerShard(key string) int { return p.shardFor(key) }

// loop is a shard goroutine: it exclusively owns the shard's engine and
// node, serving its own queue with priority and stealing from the
// shared overflow queue when idle. A shard whose breaker is not closed
// stops stealing — it drains its own queue (including the half-open
// probe) but takes no diverted work, so a sick shard cannot re-capture
// the very requests its breaker re-routed.
func (s *shard) loop() {
	defer s.pool.wg.Done()
	for {
		// Own queue first: preserves hot/warm locality for owned keys
		// even when the overflow queue is non-empty.
		select {
		case r := <-s.reqs:
			s.serve(r, false)
			continue
		default:
		}
		if !s.breaker.healthy() {
			select {
			case r := <-s.reqs:
				s.serve(r, false)
			case <-s.pool.quit:
				return
			}
			continue
		}
		select {
		case r := <-s.reqs:
			s.serve(r, false)
		case r := <-s.pool.overflow:
			s.serve(r, true)
		case <-s.pool.quit:
			return
		}
	}
}

// serve runs one request to completion on the shard's engine. stolen
// marks requests picked off the overflow queue by a non-owner.
func (s *shard) serve(r *request, stolen bool) {
	if r.stats {
		st := s.node.Stats()
		st.FaultsInjected = int64(s.faults.TotalFired())
		state, trips := s.breaker.snapshot()
		r.reply <- response{shard: s.id, stats: ShardStats{
			Shard:           s.id,
			Node:            st,
			CachedSnapshots: s.node.CachedSnapshots(),
			IdleUCs:         s.node.IdleUCs(),
			Mem:             s.node.MemStats(),
			Clock:           time.Duration(s.eng.Now()),
			Breaker:         state,
			BreakerTrips:    trips,
			FaultsInjected:  st.FaultsInjected,
		}}
		return
	}
	if r.flush {
		var flushed int
		s.eng.Go("flush", func(p *sim.Proc) { flushed = s.node.FlushSnapshots(p) })
		s.eng.Run()
		r.reply <- response{shard: s.id, flushed: flushed}
		return
	}
	if r.prewarm != "" {
		var err error
		s.eng.Go("prewarm:"+r.prewarm, func(p *sim.Proc) { err = s.node.PromoteLineage(p, r.prewarm) })
		s.eng.Run()
		r.reply <- response{shard: s.id, err: err}
		return
	}
	if r.tick {
		// The reaper pass runs between invocations on the owner
		// goroutine, so it observes only quiescent state — no UC is
		// mid-invocation when its keep-alive is judged. The advance
		// models wall-clock idle time elapsing on the shard's virtual
		// clock (invocations advance it only by their own latencies).
		var ts core.TickStats
		adv := r.advance
		s.eng.Go("policy-tick", func(p *sim.Proc) {
			if adv > 0 {
				p.Sleep(adv)
			}
			ts = s.node.PolicyTick(p)
		})
		s.eng.Run()
		r.reply <- response{shard: s.id, tickStats: ts}
		return
	}

	// Fault point: the shard stalls. The request is not dropped — it
	// requeues to the overflow queue for a healthy shard (the stall
	// counts against this shard's breaker), unless re-routing is
	// impossible, in which case the caller gets a contained error.
	if s.faults.Fire(fault.PointShardStall) {
		s.pool.stalls.Add(1)
		s.rec.Inc(metrics.CtrShardStalls)
		s.rec.Inc(metrics.CtrFaultsInjected)
		s.breaker.recordFailure()
		if !s.pool.cfg.DisableWorkStealing && r.requeues < 2*len(s.pool.shards) &&
			s.pool.anyHealthy(-1) {
			r.requeues++
			select {
			case s.pool.overflow <- r:
				s.pool.requeued.Add(1)
				s.pool.rec.Inc(metrics.CtrRequestsRequeued)
				return
			default:
				// Overflow full under a pool-wide storm; fail contained.
			}
		}
		r.reply <- response{err: fault.Contain(ErrShardStalled), shard: s.id, stolen: stolen}
		return
	}

	var res core.Result
	var err error
	s.eng.Go("invoke:"+r.req.Key, func(p *sim.Proc) {
		res, err = s.node.Invoke(p, r.req)
	})
	s.eng.Run()
	if err != nil && fault.IsContained(err) {
		s.breaker.recordFailure()
	} else {
		s.breaker.recordSuccess()
	}
	if stolen {
		s.pool.stolen.Add(1)
		s.pool.rec.Inc(metrics.CtrRequestsStolen)
	}
	r.reply <- response{res: res, err: err, shard: s.id, stolen: stolen}
}

// submit routes a request: owner shard when its queue is shallow and
// its breaker closed; the shared overflow queue when the owner is
// backed up or its breaker is open (unless stealing is disabled). It
// never blocks the pool shut-down path.
func (p *Pool) submit(r *request, owner int) error {
	if p.closed.Load() {
		return ErrClosed
	}
	s := p.shards[owner]
	if !p.cfg.DisableWorkStealing && !r.control() {
		allow, probe := s.breaker.route()
		switch {
		case !allow:
			// Open breaker: divert to a healthy shard over the
			// work-stealing path. With no healthy thief (1-shard pool,
			// pool-wide trip) fall through to the sick owner instead —
			// it still serves, possibly failing contained, and any
			// success it produces closes its breaker (self-healing via
			// fall-through traffic).
			if p.anyHealthy(owner) {
				select {
				case p.overflow <- r:
					p.rerouted.Add(1)
					p.rec.Inc(metrics.CtrRequestsRerouted)
					return nil
				default:
					// Overflow full; fall through to the owner.
				}
			}
		case probe:
			// The half-open probe must reach the owner itself — skip
			// the steal spill below.
		case len(s.reqs) >= p.cfg.StealThreshold:
			select {
			case p.overflow <- r:
				return nil
			default:
				// Overflow full too; fall through to the owner.
			}
		}
	}
	select {
	case s.reqs <- r:
		return nil
	case <-p.quit:
		return ErrClosed
	}
}

// await blocks for a request's reply, bailing out if the pool shuts
// down underneath a still-queued request (replies are buffered, so a
// racing serve is never lost — it is drained here).
func (p *Pool) await(r *request) (response, error) {
	select {
	case resp := <-r.reply:
		return resp, nil
	case <-p.quit:
		select {
		case resp := <-r.reply:
			return resp, nil
		default:
			return response{}, ErrClosed
		}
	}
}

// Invoke services one invocation through the pool and reports where it
// ran. Safe for concurrent use from any number of goroutines.
func (p *Pool) Invoke(req core.Request) (Result, error) {
	r := getRequest()
	r.req = req
	if err := p.submit(r, p.shardFor(req.Key)); err != nil {
		// Rejected before enqueue: safe to recycle.
		putRequest(r)
		return Result{}, err
	}
	resp, err := p.await(r)
	if err != nil {
		// Abandoned in a queue at shutdown — never recycled (see reqPool).
		return Result{}, err
	}
	putRequest(r)
	if resp.err != nil {
		return Result{Shard: resp.shard, Stolen: resp.stolen}, resp.err
	}
	return Result{
		RequestID: resp.res.ID,
		Path:      resp.res.Path,
		Output:    resp.res.Output,
		Latency:   resp.res.Latency,
		Shard:     resp.shard,
		Stolen:    resp.stolen,
	}, nil
}

// InvokeSync is the string-level convenience form mirroring the
// single-node API.
func (p *Pool) InvokeSync(key, source, args string) (Result, error) {
	return p.Invoke(core.Request{Key: key, Source: source, Args: args})
}

// ShardStats snapshots one shard's state by routing the read through
// its owning goroutine — the reply is taken between invocations, never
// mid-invocation.
func (p *Pool) ShardStats(shard int) (ShardStats, error) {
	if shard < 0 || shard >= len(p.shards) {
		return ShardStats{}, fmt.Errorf("shardpool: no shard %d", shard)
	}
	r := getRequest()
	r.stats = true
	if err := p.submit(r, shard); err != nil {
		putRequest(r)
		return ShardStats{}, err
	}
	resp, err := p.await(r)
	if err != nil {
		return ShardStats{}, err
	}
	putRequest(r)
	return resp.stats, nil
}

// Stats aggregates counters across every shard. Each shard's snapshot
// is consistent (taken inside its goroutine); the aggregate is a union
// of per-shard snapshots taken at slightly different wall-clock
// moments, which is the strongest statement a shared-nothing design
// can make.
func (p *Pool) Stats() (Stats, error) {
	// Fan the control reads out so one busy shard does not serialize
	// the whole scrape.
	reqs := make([]*request, len(p.shards))
	for i := range p.shards {
		r := getRequest()
		r.stats = true
		if err := p.submit(r, i); err != nil {
			putRequest(r)
			return Stats{}, err
		}
		reqs[i] = r
	}
	var out Stats
	out.Stolen = p.stolen.Load()
	out.Rerouted = p.rerouted.Load()
	out.Requeued = p.requeued.Load()
	out.Stalls = p.stalls.Load()
	for _, r := range reqs {
		resp, err := p.await(r)
		if err != nil {
			return Stats{}, err
		}
		putRequest(r)
		ss := resp.stats
		out.Shards = append(out.Shards, ss)
		out.Node.Add(ss.Node)
		out.BreakerTrips += ss.BreakerTrips
		out.CachedSnapshots += ss.CachedSnapshots
		out.IdleUCs += ss.IdleUCs
		out.MemoryUsedBytes += ss.Mem.BytesInUse
	}
	return out, nil
}

// Prewarm promotes lineages from the shared disk tier's manifest into
// their owner shards' snapshot caches, hottest (most recently used)
// first — the boot-time restart-recovery pass, so a rebooted node's
// first invocations go warm instead of cold. max bounds how many
// lineages promote (<= 0: all). Returns how many promoted; lineages
// whose promotion fails (damaged entry, memory budget) are skipped,
// not fatal.
func (p *Pool) Prewarm(max int) (int, error) {
	st := p.cfg.Node.SnapStore
	if st == nil {
		return 0, nil
	}
	count := 0
	for _, name := range st.KeysMRU() {
		if max > 0 && count >= max {
			break
		}
		key := strings.TrimPrefix(name, "fn/")
		if key == name {
			continue // mid-stack base, not a lineage: promoted on demand
		}
		r := getRequest()
		r.prewarm = name
		if err := p.submit(r, p.shardFor(key)); err != nil {
			putRequest(r)
			return count, err
		}
		resp, err := p.await(r)
		if err != nil {
			return count, err
		}
		putRequest(r)
		if resp.err == nil {
			count++
		}
	}
	return count, nil
}

// FlushSnapshots demotes every shard's resident function snapshots
// into the shared disk tier without evicting them, then syncs the
// manifest — the graceful-drain persistence pass. Returns the total
// number of entries flushed across shards.
func (p *Pool) FlushSnapshots() (int, error) {
	st := p.cfg.Node.SnapStore
	if st == nil {
		return 0, nil
	}
	reqs := make([]*request, len(p.shards))
	for i := range p.shards {
		r := getRequest()
		r.flush = true
		if err := p.submit(r, i); err != nil {
			putRequest(r)
			return 0, err
		}
		reqs[i] = r
	}
	total := 0
	for _, r := range reqs {
		resp, err := p.await(r)
		if err != nil {
			return total, err
		}
		putRequest(r)
		total += resp.flushed
	}
	return total, st.Sync()
}

// PolicyTick advances every shard's virtual clock by `advance` and
// runs one lifecycle-reaper pass on each — the pool-scope heartbeat an
// owner (a wall-clock ticker in the server, a scripted loop in an
// experiment) drives. Fans out like Stats so one busy shard does not
// serialize the pass; returns the aggregated TickStats. A no-op
// returning zeros when no lifecycle policy is configured.
func (p *Pool) PolicyTick(advance time.Duration) (core.TickStats, error) {
	var out core.TickStats
	if p.cfg.Node.Policy == nil {
		return out, nil
	}
	reqs := make([]*request, len(p.shards))
	for i := range p.shards {
		r := getRequest()
		r.tick = true
		r.advance = advance
		if err := p.submit(r, i); err != nil {
			putRequest(r)
			return out, err
		}
		reqs[i] = r
	}
	for _, r := range reqs {
		resp, err := p.await(r)
		if err != nil {
			return out, err
		}
		putRequest(r)
		out.Add(resp.tickStats)
	}
	return out, nil
}

// SnapStore returns the shared disk tier, nil when none is configured.
func (p *Pool) SnapStore() *snapstore.Store { return p.cfg.Node.SnapStore }

// Metrics merges the pool's routing counters with every shard's
// recorder into one snapshot. Unlike Stats, the read does not route
// through the shard goroutines: recorders are atomics, so a scrape
// never waits behind a busy (or wedged) shard. Each counter is
// individually exact; the snapshot as a whole is a union of per-shard
// readings taken moments apart, same as Stats.
func (p *Pool) Metrics() metrics.Snapshot {
	s := p.rec.Snapshot()
	for _, sh := range p.shards {
		s.Merge(sh.rec.Snapshot())
	}
	return s
}

// BreakerState returns a shard's circuit-breaker state name without
// routing through the shard goroutine (the /healthz read: cheap and
// safe even when a shard is wedged mid-request).
func (p *Pool) BreakerState(shard int) (string, error) {
	if shard < 0 || shard >= len(p.shards) {
		return "", fmt.Errorf("shardpool: no shard %d", shard)
	}
	state, _ := p.shards[shard].breaker.snapshot()
	return state, nil
}

// BreakerStates returns every shard's breaker state, indexed by shard.
func (p *Pool) BreakerStates() []string {
	out := make([]string, len(p.shards))
	for i, s := range p.shards {
		out[i], _ = s.breaker.snapshot()
	}
	return out
}

// ShardFaults exposes a shard's fault injector (tests, diagnostics);
// nil when injection is disabled.
func (p *Pool) ShardFaults(shard int) *fault.Injector {
	if shard < 0 || shard >= len(p.shards) {
		return nil
	}
	return p.shards[shard].faults
}

// Close stops the shard goroutines and rejects further submissions.
// In-flight requests complete; queued-but-unserved requests may be
// abandoned, so quiesce callers first. Close is idempotent.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
}
