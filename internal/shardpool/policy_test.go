package shardpool

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/policy"
)

// TestPolicyTickExpiresAcrossShards: the pool-scope reaper heartbeat
// reaches every shard — idle UCs past their keep-alive die on all of
// them, lineages scale to zero into the shared tier, and the next hit
// per key lukewarm-restores with its original output.
func TestPolicyTickExpiresAcrossShards(t *testing.T) {
	const fns = 6
	cfg, store := tierConfig(t, 3, -1)
	cfg.Node.Policy = policy.FixedKeepAlive{Window: 30 * time.Second}

	pool := newTestPool(t, cfg)
	key := func(i int) string { return fmt.Sprintf("acct/fn%d", i) }
	firstOutputs := make(map[string]string, fns)
	for i := 0; i < fns; i++ {
		res, err := pool.InvokeSync(key(i), nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		firstOutputs[key(i)] = res.Output
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IdleUCs != fns {
		t.Fatalf("idle UCs = %d, want %d", st.IdleUCs, fns)
	}

	// Inside the window: nothing expires.
	if ts, err := pool.PolicyTick(10 * time.Second); err != nil || ts != (core.TickStats{}) {
		t.Fatalf("early tick = %+v err=%v, want zero", ts, err)
	}

	// Past the window: every shard reaps its residents.
	ts, err := pool.PolicyTick(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ts.ExpiredUCs != fns || ts.DemotedLineages != fns {
		t.Fatalf("tick = %+v, want %d expired and demoted", ts, fns)
	}
	st, err = pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IdleUCs != 0 || st.CachedSnapshots != 0 {
		t.Errorf("post-tick residency: idle=%d snaps=%d, want 0/0", st.IdleUCs, st.CachedSnapshots)
	}
	if store.Len() == 0 {
		t.Error("scale-to-zero left the tier empty")
	}

	for i := 0; i < fns; i++ {
		res, err := pool.InvokeSync(key(i), nopSource, "{}")
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != core.PathLukewarm {
			t.Errorf("%s post-expiry path = %v, want lukewarm", key(i), res.Path)
		}
		if res.Output != firstOutputs[key(i)] {
			t.Errorf("%s restored output %q != original %q", key(i), res.Output, firstOutputs[key(i)])
		}
	}
}

// TestPolicyTickWithoutPolicyIsNoOpAtPoolScope: a pool with no
// lifecycle policy ignores the heartbeat entirely.
func TestPolicyTickWithoutPolicyIsNoOpAtPoolScope(t *testing.T) {
	pool := newTestPool(t, testConfig(2))
	if _, err := pool.InvokeSync("acct/fn", nopSource, "{}"); err != nil {
		t.Fatal(err)
	}
	if ts, err := pool.PolicyTick(time.Hour); err != nil || ts != (core.TickStats{}) {
		t.Fatalf("tick = %+v err=%v, want zero no-op", ts, err)
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IdleUCs != 1 {
		t.Errorf("no-policy tick touched residency: idle=%d", st.IdleUCs)
	}
}

// TestPolicyTickRacesInflightInvokes: the reaper/inflight race — ticks
// hammer the pool while clients invoke concurrently. Control messages
// serialize through the shard owner goroutines, so under -race this
// must be clean, every invocation must succeed, and nothing may be
// double-freed no matter how the heartbeat interleaves.
func TestPolicyTickRacesInflightInvokes(t *testing.T) {
	cfg, _ := tierConfig(t, 2, -1)
	cfg.Node.Policy = policy.FixedKeepAlive{Window: time.Millisecond}

	pool := newTestPool(t, cfg)
	const clients, perClient = 4, 25
	stop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pool.PolicyTick(time.Second); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var cw sync.WaitGroup
	for c := 0; c < clients; c++ {
		cw.Add(1)
		go func(c int) {
			defer cw.Done()
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("acct/fn%d", (c*perClient+i)%8)
				if _, err := pool.InvokeSync(key, nopSource, "{}"); err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
			}
		}(c)
	}
	cw.Wait()
	close(stop)
	ticker.Wait()

	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	total := st.Node.Cold + st.Node.Warm + st.Node.Hot + st.Node.Lukewarm
	if total != clients*perClient {
		t.Errorf("served %d invocations, want %d", total, clients*perClient)
	}
}

// TestPolicyClonedPerShard: each shard must get a private policy clone
// — per-key arrival history written from N shard goroutines through
// one shared Hybrid instance would be a data race (and wrong: another
// shard's keys would pollute the histograms).
func TestPolicyClonedPerShard(t *testing.T) {
	cfg := testConfig(3)
	hy := policy.NewHybrid()
	cfg.Node.Policy = hy
	pool := newTestPool(t, cfg)
	for i := 0; i < 12; i++ {
		if _, err := pool.InvokeSync(fmt.Sprintf("acct/fn%d", i), nopSource, "{}"); err != nil {
			t.Fatal(err)
		}
	}
	// The template instance saw no traffic: every RecordInvoke landed
	// on a shard's clone.
	if got := hy.Keys(); got != 0 {
		t.Errorf("shared template policy tracked %d keys, want 0 (clones must be private)", got)
	}
}
