// Package snapstore implements the on-disk snapshot tier: a
// content-addressed, CRC-verified store for encoded snapshot diffs
// (the wire format of internal/snapshot's codec).
//
// The tier turns snapshot eviction into demotion — instead of paying a
// full cold rebuild (~7.5 ms of interpreter replay) the next miss pays
// a disk read plus a graft (the "lukewarm" path) — and makes snapshot
// stacks survive a node restart (the manifest records every lineage, so
// boot can prewarm the hottest ones).
//
// Layout of a store directory:
//
//	<dir>/manifest.json     index: key → {file, base, size, crc, used}
//	<dir>/<hash16>.snap     one encoded diff, named by FNV-64a of bytes
//	<dir>/.tmp-*            in-flight writes (GC'd on Open)
//
// Crash safety: every write lands in a temp file first and is renamed
// into place, data file before manifest, so a kill -9 at any instant
// leaves either (a) a stray .tmp-* file (deleted on next Open), or (b)
// a complete .snap file the manifest does not know about (adopted on
// next Open by decoding its self-describing header). A torn or missing
// manifest is never fatal: the store rebuilds it from the .snap files,
// and entries whose bytes fail the codec CRC are deleted rather than
// served.
//
// A Store is safe for concurrent use. Gets for the same key are
// single-flight: concurrent shards promoting one lineage share a single
// disk read.
package snapstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"seuss/internal/snapshot"
)

// ErrNotFound is returned by Get for keys the tier does not hold.
var ErrNotFound = errors.New("snapstore: not found")

// ErrNoCapacity is returned by Put when the entry cannot fit inside the
// configured byte capacity (including cap 0 — a tier that accepts
// nothing). Callers fall back to plain destruction.
var ErrNoCapacity = errors.New("snapstore: over capacity")

// ErrCorrupt is returned by Get when the stored bytes fail their CRC;
// the damaged entry is dropped from the store.
var ErrCorrupt = errors.New("snapstore: corrupt entry")

const manifestName = "manifest.json"
const tmpPrefix = ".tmp-"

// entry is one manifest record. File names are content addresses
// (FNV-64a of the encoded bytes), so identical contents dedupe and a
// re-Put of an unchanged snapshot is a metadata touch, not a write.
type entry struct {
	File string `json:"file"`
	Base string `json:"base,omitempty"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
	Used uint64 `json:"used"` // LRU clock (monotonic sequence, persisted)
}

type manifest struct {
	Version int              `json:"version"`
	Seq     uint64           `json:"seq"`
	Entries map[string]entry `json:"entries"`
}

// Stats counts store activity since Open.
type Stats struct {
	Hits, Misses   int64 // Get outcomes
	Puts           int64 // entries written (or refreshed) by Put
	PutRejected    int64 // Puts refused by the byte capacity
	Evictions      int64 // entries displaced by the LRU
	CorruptDropped int64 // entries deleted after failing CRC
	WSDropped      int64 // working-set sidecars GC'd on Open (orphaned or corrupt)
	Entries        int   // current entry count
	Bytes          int64 // current resident bytes (per entry; shared files counted once per key)
	DiskFiles      int   // unique content-addressed files on disk
	DiskBytes      int64 // bytes actually on disk (each shared file counted once)
}

// Store is the disk tier. All exported methods are safe for concurrent
// use from multiple goroutines (the shards of a pool share one Store).
type Store struct {
	dir string
	cap int64 // <0: unlimited; 0: accepts nothing; >0: LRU bound

	mu      sync.Mutex
	man     manifest
	bytes   int64
	flights map[string]*flight
	stats   Stats
	// wsCache holds decoded working-set records by sidecar file name.
	// The store decodes every sidecar it accepts (Put validation, Open
	// GC), so serving the decoded pages from memory makes the prefetch
	// lookup free on the restore hot path; the file stays the source of
	// truth across restarts. Callers must treat the slices as read-only.
	wsCache map[string][]uint64
	// fds caches open descriptors for data files so repeated lukewarm
	// restores pay a single pread instead of an open/stat/read/close
	// round trip. Data files are immutable once renamed into place
	// (content-addressed), so a cached descriptor never serves stale
	// bytes. Descriptors are opened and closed under mu; the read
	// itself uses ReadAt outside the lock, which is safe on *os.File.
	fds     map[string]*os.File
	fdOrder []string // FIFO eviction order, bounded by maxCachedFDs
}

// maxCachedFDs bounds how many data-file descriptors Get keeps open.
const maxCachedFDs = 64

type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Open opens (or creates) the store rooted at dir with the given byte
// capacity (capBytes < 0 means unlimited, 0 means the tier accepts
// nothing). Recovery runs before Open returns: stray temp files from
// interrupted writes are deleted, the manifest is loaded if readable
// (and rebuilt from the data files if not), orphan .snap files are
// adopted by decoding their headers, and entries that fail their CRC
// are removed.
func Open(dir string, capBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	s := &Store{
		dir:     dir,
		cap:     capBytes,
		man:     manifest{Version: 1, Entries: make(map[string]entry)},
		flights: make(map[string]*flight),
		wsCache: make(map[string][]uint64),
		fds:     make(map[string]*os.File),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover implements the Open-time crash-recovery pass.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	onDisk := make(map[string]int64) // .snap file → size
	var wsOnDisk []string           // working-set sidecars, GC'd after entries settle
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			// An interrupted write: the rename never happened, so no
			// entry can reference it. Delete.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasSuffix(name, ".snap"):
			if info, err := de.Info(); err == nil {
				onDisk[name] = info.Size()
			}
		case strings.HasSuffix(name, ".ws"):
			wsOnDisk = append(wsOnDisk, name)
		}
	}

	// Load the manifest if present and well-formed; a torn/corrupt one
	// is discarded (rename makes this near-impossible, but a manifest
	// from a different store version must not wedge Open).
	if raw, err := os.ReadFile(filepath.Join(s.dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(raw, &m) == nil && m.Version == 1 && m.Entries != nil {
			s.man = m
		}
	}

	// Drop entries whose data file is gone; track which files the
	// manifest accounts for.
	claimed := make(map[string]bool, len(s.man.Entries))
	for key, e := range s.man.Entries {
		if _, ok := onDisk[e.File]; !ok {
			delete(s.man.Entries, key)
			continue
		}
		claimed[e.File] = true
	}

	// Adopt orphan .snap files (complete writes whose manifest update
	// was lost). The wire format is self-describing: decode recovers
	// the lineage key and base, and the codec CRC rejects damage.
	for file, size := range onDisk {
		if claimed[file] {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, file))
		if err != nil {
			continue
		}
		diff, err := snapshot.ImportBytes(raw)
		if err != nil {
			// Damaged or foreign bytes: GC rather than serve.
			os.Remove(filepath.Join(s.dir, file))
			s.stats.CorruptDropped++
			continue
		}
		if prev, ok := s.man.Entries[diff.Header.Name]; ok {
			// The key already resolves to another file (an older
			// content version whose replacement rename won but whose
			// manifest write lost the race with the crash). Keep the
			// adopted (newer) bytes, drop the stale file.
			s.removeFileIfUnreferenced(prev.File, diff.Header.Name)
		}
		s.man.Seq++
		s.man.Entries[diff.Header.Name] = entry{
			File: file,
			Base: diff.Header.BaseName,
			Size: size,
			CRC:  crc32.ChecksumIEEE(raw),
			Used: s.man.Seq,
		}
	}

	s.bytes = 0
	for _, e := range s.man.Entries {
		s.bytes += e.Size
	}
	s.stats.Entries = len(s.man.Entries)
	s.stats.Bytes = s.bytes
	s.evictLocked(0)
	s.recoverWorkingSets(wsOnDisk)
	return s.syncLocked()
}

// Put stores the encoded snapshot data under key (the snapshot's
// lineage name, e.g. "fn/acct/hello"), recording base as its
// base-snapshot dependency. The write is atomic (temp file + rename);
// identical content re-Puts are metadata-only. Entries beyond the byte
// capacity are refused with ErrNoCapacity, evicting least-recently-used
// entries first if that makes room.
func (s *Store) Put(key, base string, data []byte) error {
	if key == "" {
		return errors.New("snapstore: empty key")
	}
	size := int64(len(data))
	s.mu.Lock()
	if s.cap >= 0 && size > s.cap {
		s.stats.PutRejected++
		s.mu.Unlock()
		return ErrNoCapacity
	}

	sum := fnv.New64a()
	sum.Write(data)
	file := fmt.Sprintf("%016x.snap", sum.Sum64())

	if prev, ok := s.man.Entries[key]; ok && prev.File == file {
		// Unchanged content: refresh the LRU clock only.
		s.man.Seq++
		prev.Used = s.man.Seq
		s.man.Entries[key] = prev
		s.stats.Puts++
		err := s.syncLocked()
		s.mu.Unlock()
		return err
	}

	// Make room, never evicting the key being replaced mid-Put.
	if s.cap >= 0 {
		prevSize := int64(0)
		if prev, ok := s.man.Entries[key]; ok {
			prevSize = prev.Size
		}
		s.evictLocked(size - prevSize)
		if s.bytes-prevSize+size > s.cap {
			s.stats.PutRejected++
			s.mu.Unlock()
			return ErrNoCapacity
		}
	}
	s.mu.Unlock()

	// Data write outside the lock: temp file in the store directory
	// (same filesystem, so the rename is atomic), then rename.
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, file)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.man.Entries[key]; ok {
		s.bytes -= prev.Size
		s.removeFileIfUnreferenced(prev.File, key)
	}
	s.man.Seq++
	s.man.Entries[key] = entry{
		File: file,
		Base: base,
		Size: size,
		CRC:  crc32.ChecksumIEEE(data),
		Used: s.man.Seq,
	}
	s.bytes += size
	s.stats.Puts++
	s.stats.Entries = len(s.man.Entries)
	s.stats.Bytes = s.bytes
	// Capacity may still be exceeded if a concurrent Put landed between
	// our reservation and now; restore the invariant.
	s.evictLocked(0)
	return s.syncLocked()
}

// Get returns the encoded bytes stored under key, verifying them
// against the recorded CRC (a damaged entry is dropped and reported as
// ErrCorrupt). Concurrent Gets for the same key are single-flight: one
// disk read, shared result.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.data, f.err
	}
	e, ok := s.man.Entries[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	fd := s.fds[e.File]
	s.mu.Unlock()

	data, err := s.readFileCached(fd, e)
	corrupt := false
	if err != nil {
		err = fmt.Errorf("%w: %v", ErrNotFound, err)
	} else if crc32.ChecksumIEEE(data) != e.CRC {
		data, err, corrupt = nil, ErrCorrupt, true
	}

	s.mu.Lock()
	delete(s.flights, key)
	if err == nil {
		s.stats.Hits++
		if cur, ok := s.man.Entries[key]; ok && cur.File == e.File {
			s.man.Seq++
			cur.Used = s.man.Seq
			s.man.Entries[key] = cur
		}
	} else {
		s.stats.Misses++
		if corrupt {
			s.stats.CorruptDropped++
			s.dropLocked(key)
		}
	}
	s.mu.Unlock()

	f.data, f.err = data, err
	close(f.done)
	return data, err
}

// Has reports whether key is resident in the tier.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.man.Entries[key]
	return ok
}

// Delete removes key (and its file, if no other entry shares it).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(key)
	s.syncLocked()
}

// Len returns the number of entries resident in the tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.man.Entries)
}

// SizeBytes returns the tier's resident byte total.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.man.Entries)
	st.Bytes = s.bytes
	files := make(map[string]int64, len(s.man.Entries))
	for _, e := range s.man.Entries {
		files[e.File] = e.Size
	}
	st.DiskFiles = len(files)
	for _, sz := range files {
		st.DiskBytes += sz
	}
	return st
}

// KeysMRU returns every key ordered most-recently-used first — the
// boot-time prewarm order (hottest lineages promote first).
func (s *Store) KeysMRU() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.man.Entries))
	for k := range s.man.Entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ei, ej := s.man.Entries[keys[i]], s.man.Entries[keys[j]]
		if ei.Used != ej.Used {
			return ei.Used > ej.Used
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Stack returns key's dependency chain inside the tier: key first, then
// each recorded base that is itself a tier entry. The chain is how a
// whole snapshot stack demotes/promotes as a unit; it ends at the first
// base that is not stored (normally the always-resident runtime image).
func (s *Store) Stack(key string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	seen := make(map[string]bool)
	for key != "" && !seen[key] {
		e, ok := s.man.Entries[key]
		if !ok {
			break
		}
		seen[key] = true
		out = append(out, key)
		key = e.Base
	}
	return out
}

// HasStack reports whether key's full dependency chain — the entry and
// every base under it — is resident. This is the repair-source probe:
// a node can serve as a re-replication source for a lineage only when
// its tier holds the complete stack, not just the top diff.
func (s *Store) HasStack(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	for key != "" && !seen[key] {
		e, ok := s.man.Entries[key]
		if !ok {
			return false
		}
		seen[key] = true
		key = e.Base
	}
	return key == ""
}

// Sync persists the manifest (atomic temp + rename). Put/Delete sync
// implicitly; callers use Sync after out-of-band mutations or before
// handing the directory to another process.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

// dropLocked removes an entry and its file (if unshared). Caller holds mu.
func (s *Store) dropLocked(key string) {
	e, ok := s.man.Entries[key]
	if !ok {
		return
	}
	delete(s.man.Entries, key)
	s.bytes -= e.Size
	s.removeFileIfUnreferenced(e.File, key)
	s.stats.Entries = len(s.man.Entries)
	s.stats.Bytes = s.bytes
}

// removeFileIfUnreferenced deletes file unless another entry (excluding
// exceptKey) still addresses it — content addressing means two lineages
// with identical bytes share one file. The working-set sidecar rides on
// the content, so it goes when the last reference does.
func (s *Store) removeFileIfUnreferenced(file, exceptKey string) {
	for k, e := range s.man.Entries {
		if k != exceptKey && e.File == file {
			return
		}
	}
	os.Remove(filepath.Join(s.dir, file))
	os.Remove(filepath.Join(s.dir, wsFile(file)))
	delete(s.wsCache, wsFile(file))
	if fd, ok := s.fds[file]; ok {
		delete(s.fds, file)
		for i, name := range s.fdOrder {
			if name == file {
				s.fdOrder = append(s.fdOrder[:i], s.fdOrder[i+1:]...)
				break
			}
		}
		fd.Close()
	}
}

// readFileCached reads entry e's data file, preferring a descriptor
// cached by an earlier Get. On a miss it opens the file, reads it, and
// leaves the descriptor cached for the next restore of the same
// content. Any failure on the cached descriptor drops it and retries
// with a fresh open, so a raced eviction degrades to the slow path
// rather than an error.
func (s *Store) readFileCached(fd *os.File, e entry) ([]byte, error) {
	if fd != nil {
		data := make([]byte, e.Size)
		if _, err := fd.ReadAt(data, 0); err == nil {
			return data, nil
		}
		s.dropFD(fd)
	}
	fd, err := os.Open(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, err
	}
	data := make([]byte, e.Size)
	if _, err := fd.ReadAt(data, 0); err != nil {
		fd.Close()
		return nil, err
	}
	s.cacheFD(e.File, fd)
	return data, nil
}

// cacheFD records fd for name, evicting the oldest descriptor when the
// cache is full. If a concurrent Get already cached one, the newcomer
// closes.
func (s *Store) cacheFD(name string, fd *os.File) {
	s.mu.Lock()
	if _, ok := s.fds[name]; ok {
		s.mu.Unlock()
		fd.Close()
		return
	}
	s.fds[name] = fd
	s.fdOrder = append(s.fdOrder, name)
	var evict *os.File
	if len(s.fdOrder) > maxCachedFDs {
		old := s.fdOrder[0]
		s.fdOrder = append([]string(nil), s.fdOrder[1:]...)
		evict = s.fds[old]
		delete(s.fds, old)
	}
	s.mu.Unlock()
	if evict != nil {
		evict.Close()
	}
}

// dropFD removes fd from the cache (wherever it is keyed) and closes
// it. *os.File guards against use-after-close internally, so a reader
// racing the close sees an error and falls back, never another file's
// bytes.
func (s *Store) dropFD(fd *os.File) {
	s.mu.Lock()
	for i, name := range s.fdOrder {
		if s.fds[name] == fd {
			delete(s.fds, name)
			s.fdOrder = append(s.fdOrder[:i], s.fdOrder[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	fd.Close()
}

// evictLocked displaces least-recently-used entries until the resident
// bytes plus need fit the capacity. Evicting an entry also evicts every
// entry that records it as a base (a stack is a unit: a diff without
// its base can never promote). Caller holds mu.
func (s *Store) evictLocked(need int64) {
	if s.cap < 0 {
		return
	}
	for s.bytes+need > s.cap && len(s.man.Entries) > 0 {
		var lruKey string
		var lru entry
		for k, e := range s.man.Entries {
			if lruKey == "" || e.Used < lru.Used || (e.Used == lru.Used && k < lruKey) {
				lruKey, lru = k, e
			}
		}
		s.evictStackLocked(lruKey)
	}
}

// evictStackLocked removes key and, transitively, every entry depending
// on it as a base.
func (s *Store) evictStackLocked(key string) {
	s.dropLocked(key)
	s.stats.Evictions++
	for k, e := range s.man.Entries {
		if e.Base == key {
			s.evictStackLocked(k)
		}
	}
}

// syncLocked writes the manifest atomically. Caller holds mu.
func (s *Store) syncLocked() error {
	raw, err := json.Marshal(&s.man)
	if err != nil {
		return fmt.Errorf("snapstore: manifest: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"man-*")
	if err != nil {
		return fmt.Errorf("snapstore: manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: manifest: %w", err)
	}
	return nil
}
