package snapstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"seuss/internal/snapshot"
)

func encodeWS(t testing.TB, pages []uint64) []byte {
	t.Helper()
	data, err := snapshot.EncodeWorkingSet(pages)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWorkingSetSidecarRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("layer-bytes")); err != nil {
		t.Fatal(err)
	}
	want := []uint64{4096, 8192, 1 << 20}
	rec := encodeWS(t, want)
	if err := s.PutWorkingSet("fn/a", rec); err != nil {
		t.Fatal(err)
	}
	raw, err := s.GetWorkingSet("fn/a")
	if err != nil || !bytes.Equal(raw, rec) {
		t.Fatalf("raw sidecar: err=%v, %d bytes want %d", err, len(raw), len(rec))
	}
	pages, ok := s.GetWorkingSetPages("fn/a")
	if !ok || len(pages) != len(want) {
		t.Fatalf("pages = %v, %v", pages, ok)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages = %v, want %v", pages, want)
		}
	}
	// No layer, no sidecar.
	if err := s.PutWorkingSet("fn/missing", rec); !errors.Is(err, ErrNotFound) {
		t.Fatalf("sidecar without layer: %v", err)
	}
	if _, ok := s.GetWorkingSetPages("fn/missing"); ok {
		t.Fatal("pages for missing layer")
	}
	// A record that does not decode is refused up front.
	if err := s.PutWorkingSet("fn/a", []byte("garbage")); err == nil {
		t.Fatal("undecodable record accepted")
	}
}

func TestWorkingSetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("layer-bytes")); err != nil {
		t.Fatal(err)
	}
	rec := encodeWS(t, []uint64{4096, 12288})
	if err := s.PutWorkingSet("fn/a", rec); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	pages, ok := re.GetWorkingSetPages("fn/a")
	if !ok || len(pages) != 2 || pages[0] != 4096 || pages[1] != 12288 {
		t.Fatalf("after reopen: pages=%v ok=%v", pages, ok)
	}
	if re.Stats().WSDropped != 0 {
		t.Fatalf("healthy sidecar dropped on reopen: %+v", re.Stats())
	}
}

// TestWorkingSetOpenGC: a sidecar whose layer is gone, and one whose
// bytes fail the CRC, are deleted by the Open recovery pass; the
// healthy one beside them survives.
func TestWorkingSetOpenGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("layer-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutWorkingSet("fn/a", encodeWS(t, []uint64{4096})); err != nil {
		t.Fatal(err)
	}
	// An orphan record naming content that is not resident.
	orphan := filepath.Join(dir, fmt.Sprintf("%016x.ws", uint64(0xdeadbeef)))
	if err := os.WriteFile(orphan, encodeWS(t, []uint64{8192}), 0o644); err != nil {
		t.Fatal(err)
	}
	// A live layer whose sidecar rotted on disk.
	if err := s.Put("fn/b", "", []byte("other-layer")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutWorkingSet("fn/b", encodeWS(t, []uint64{8192})); err != nil {
		t.Fatal(err)
	}
	lb, _ := s.Layer("fn/b")
	rotted := filepath.Join(dir, fmt.Sprintf("%016x.ws", lb.Digest))
	if err := os.WriteFile(rotted, []byte("rotted-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Stats().WSDropped; got != 2 {
		t.Errorf("WSDropped = %d, want 2", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan sidecar survived open GC")
	}
	if _, err := os.Stat(rotted); !os.IsNotExist(err) {
		t.Error("corrupt sidecar survived open GC")
	}
	if _, ok := re.GetWorkingSetPages("fn/b"); ok {
		t.Error("corrupt sidecar still served")
	}
	if pages, ok := re.GetWorkingSetPages("fn/a"); !ok || len(pages) != 1 {
		t.Errorf("healthy sidecar lost: pages=%v ok=%v", pages, ok)
	}
}

// TestWorkingSetEvictionRemovesSidecar: when the last lineage sharing a
// layer's content leaves the store, the record leaves with it.
func TestWorkingSetEvictionRemovesSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", bytes.Repeat([]byte{'a'}, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutWorkingSet("fn/a", encodeWS(t, []uint64{4096})); err != nil {
		t.Fatal(err)
	}
	la, _ := s.Layer("fn/a")
	sidecar := filepath.Join(dir, fmt.Sprintf("%016x.ws", la.Digest))
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("sidecar not on disk before eviction: %v", err)
	}
	// Fill past capacity so fn/a is evicted.
	if err := s.Put("fn/b", "", bytes.Repeat([]byte{'b'}, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/c", "", bytes.Repeat([]byte{'c'}, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Has("fn/a") {
		t.Fatal("fn/a not evicted; test premise broken")
	}
	if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
		t.Error("sidecar survived its layer's eviction")
	}
	if _, ok := s.GetWorkingSetPages("fn/a"); ok {
		t.Error("evicted layer still serves a working set")
	}
}

// TestWorkingSetFollowsDigest: the fabric faces read and write records
// by content digest; a record attached under one lineage key is visible
// under the digest, and a digest-addressed put serves lineage reads.
func TestWorkingSetFollowsDigest(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("layer-bytes")); err != nil {
		t.Fatal(err)
	}
	la, _ := s.Layer("fn/a")
	rec := encodeWS(t, []uint64{4096, 8192})
	if err := s.PutWorkingSetForDigest(la.Digest, rec); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.WorkingSetForDigest(la.Digest); !ok || !bytes.Equal(got, rec) {
		t.Fatalf("digest read: ok=%v %d bytes", ok, len(got))
	}
	if pages, ok := s.GetWorkingSetPages("fn/a"); !ok || len(pages) != 2 {
		t.Fatalf("lineage read after digest put: pages=%v ok=%v", pages, ok)
	}
	// Unknown digest: both faces refuse.
	if _, ok := s.WorkingSetForDigest(0x1234); ok {
		t.Error("record for absent digest")
	}
	if err := s.PutWorkingSetForDigest(0x1234, rec); !errors.Is(err, ErrNotFound) {
		t.Errorf("put for absent digest: %v", err)
	}
	// A second lineage linked to the same content shares the record.
	if err := s.LinkDigest("fn/alias", "", la.Digest); err != nil {
		t.Fatal(err)
	}
	if pages, ok := s.GetWorkingSetPages("fn/alias"); !ok || len(pages) != 2 {
		t.Errorf("linked lineage does not share the record: pages=%v ok=%v", pages, ok)
	}
}

// TestGetBeyondFDCache churns more distinct layers than the descriptor
// cache holds, so every Get path — cold open, cached hit, post-eviction
// reopen — serves exact bytes.
func TestGetBeyondFDCache(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	n := maxCachedFDs + 8
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("fn/%d", i), "", []byte(fmt.Sprintf("layer-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			got, err := s.Get(fmt.Sprintf("fn/%d", i))
			if err != nil {
				t.Fatalf("pass %d fn/%d: %v", pass, i, err)
			}
			if want := fmt.Sprintf("layer-%d", i); string(got) != want {
				t.Fatalf("pass %d fn/%d: got %q", pass, i, got)
			}
		}
	}
}

// TestConcurrentWorkingSetAccess races sidecar reads, writes, and layer
// Gets; run under -race this is the recording path's concurrency proof.
func TestConcurrentWorkingSetAccess(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("layer-bytes")); err != nil {
		t.Fatal(err)
	}
	rec := encodeWS(t, []uint64{4096, 8192, 12288})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 3 {
				case 0:
					if err := s.PutWorkingSet("fn/a", rec); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					if pages, ok := s.GetWorkingSetPages("fn/a"); ok && len(pages) != 3 {
						t.Errorf("pages = %v", pages)
						return
					}
				case 2:
					if _, err := s.Get("fn/a"); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
