package snapstore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"seuss/internal/snapshot"
)

// This file is the store's fabric face: what one node's tier exposes to
// the cluster so snapshot layers can be located, deduplicated, and
// transferred by content address. File names already are FNV-64a
// digests of the encoded bytes, so the fabric adds no second hash —
// Manifest just parses the addresses back out, and a peer holding the
// same digest holds byte-identical content.

// Layer is one advertised manifest entry: the tier key, its base
// dependency, the FNV-64a digest of the encoded bytes, and their size.
type Layer struct {
	Key    string
	Base   string
	Digest uint64
	Size   int64
}

// layerDigest recovers the content digest from an entry's file name
// ("<hash16>.snap").
func layerDigest(file string) uint64 {
	d, _ := strconv.ParseUint(strings.TrimSuffix(file, ".snap"), 16, 64)
	return d
}

// Manifest returns every resident layer sorted by key — the unit a node
// gossips to the scheduler.
func (s *Store) Manifest() []Layer {
	s.mu.Lock()
	out := make([]Layer, 0, len(s.man.Entries))
	for k, e := range s.man.Entries {
		out = append(out, Layer{Key: k, Base: e.Base, Digest: layerDigest(e.File), Size: e.Size})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Layer returns the advertised layer for one tier key.
func (s *Store) Layer(key string) (Layer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.man.Entries[key]
	if !ok {
		return Layer{}, false
	}
	return Layer{Key: key, Base: e.Base, Digest: layerDigest(e.File), Size: e.Size}, true
}

// HasDigest reports whether any resident entry's content has the given
// digest — the dedup probe a fetch runs before shipping bytes.
func (s *Store) HasDigest(digest uint64) bool {
	file := fmt.Sprintf("%016x.snap", digest)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.man.Entries {
		if e.File == file {
			return true
		}
	}
	return false
}

// LinkDigest installs key as a new name for content already resident
// under the given digest — the zero-byte-transfer half of a fetch.
// Returns ErrNotFound if no entry holds that digest, or ErrNoCapacity
// if the extra reference cannot fit (each key is charged its full size
// against the capacity, matching Put's accounting for shared files).
func (s *Store) LinkDigest(key, base string, digest uint64) error {
	if key == "" {
		return fmt.Errorf("snapstore: empty key")
	}
	file := fmt.Sprintf("%016x.snap", digest)
	s.mu.Lock()
	defer s.mu.Unlock()
	var src entry
	found := false
	for _, e := range s.man.Entries {
		if e.File == file {
			src, found = e, true
			break
		}
	}
	if !found {
		return ErrNotFound
	}
	if prev, ok := s.man.Entries[key]; ok && prev.File == file {
		// Already linked: refresh the LRU clock only.
		s.man.Seq++
		prev.Used = s.man.Seq
		s.man.Entries[key] = prev
		return s.syncLocked()
	}
	if s.cap >= 0 {
		prevSize := int64(0)
		if prev, ok := s.man.Entries[key]; ok {
			prevSize = prev.Size
		}
		s.evictLocked(src.Size - prevSize)
		if s.bytes-prevSize+src.Size > s.cap {
			s.stats.PutRejected++
			return ErrNoCapacity
		}
		// Eviction may have cascaded away every holder of the source
		// file; linking to deleted bytes would serve ErrNotFound later.
		found = false
		for _, e := range s.man.Entries {
			if e.File == file {
				found = true
				break
			}
		}
		if !found {
			return ErrNotFound
		}
	}
	if prev, ok := s.man.Entries[key]; ok {
		s.bytes -= prev.Size
		s.removeFileIfUnreferenced(prev.File, key)
	}
	s.man.Seq++
	s.man.Entries[key] = entry{File: file, Base: base, Size: src.Size, CRC: src.CRC, Used: s.man.Seq}
	s.bytes += src.Size
	s.stats.Puts++
	s.stats.Entries = len(s.man.Entries)
	s.stats.Bytes = s.bytes
	return s.syncLocked()
}

// PutFetched stores a layer received from a peer, verifying it before
// it can ever be served: the bytes must decode through the snapshot
// codec (whose trailer CRC rejects wire damage), the decoded lineage
// name must match the key the peer claimed, and the content digest must
// match the peer's advertisement. Any mismatch returns ErrCorrupt and
// stores nothing — the caller falls back to the holder.
func (s *Store) PutFetched(key, base string, data []byte, digest uint64) error {
	diff, err := snapshot.ImportBytes(data)
	if err != nil {
		s.mu.Lock()
		s.stats.CorruptDropped++
		s.mu.Unlock()
		return fmt.Errorf("%w: fetched layer: %v", ErrCorrupt, err)
	}
	if diff.Header.Name != key {
		s.mu.Lock()
		s.stats.CorruptDropped++
		s.mu.Unlock()
		return fmt.Errorf("%w: fetched layer decodes as %q, want %q", ErrCorrupt, diff.Header.Name, key)
	}
	sum := fnv.New64a()
	sum.Write(data)
	if got := sum.Sum64(); got != digest {
		s.mu.Lock()
		s.stats.CorruptDropped++
		s.mu.Unlock()
		return fmt.Errorf("%w: fetched layer digest %016x, want %016x", ErrCorrupt, got, digest)
	}
	return s.Put(key, base, data)
}
