package snapstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"seuss/internal/mem"
	"seuss/internal/snapshot"
	"seuss/internal/uc"
)

func TestManifestAdvertisesDigests(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	shared := []byte("identical-content-shared-by-two-keys")
	if err := s.Put("fn/a", "runtime/nodejs", shared); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/b", "runtime/nodejs", shared); err != nil {
		t.Fatal(err)
	}
	man := s.Manifest()
	if len(man) != 2 {
		t.Fatalf("manifest has %d layers, want 2", len(man))
	}
	if man[0].Key != "fn/a" || man[1].Key != "fn/b" {
		t.Fatalf("manifest order = %q, %q", man[0].Key, man[1].Key)
	}
	if man[0].Digest == 0 || man[0].Digest != man[1].Digest {
		t.Fatalf("identical content advertises digests %016x, %016x", man[0].Digest, man[1].Digest)
	}
	if !s.HasDigest(man[0].Digest) || s.HasDigest(man[0].Digest+1) {
		t.Fatal("HasDigest does not match the manifest")
	}
	st := s.Stats()
	if st.DiskFiles != 1 || st.DiskBytes != int64(len(shared)) {
		t.Fatalf("disk stats = %d files / %d bytes, want 1 / %d", st.DiskFiles, st.DiskBytes, len(shared))
	}
	if st.Bytes != 2*int64(len(shared)) {
		t.Fatalf("per-entry bytes = %d, want %d", st.Bytes, 2*len(shared))
	}
}

func TestLinkDigestSharesContent(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("base-layer-bytes")
	if err := s.Put("runtime/nodejs", "", data); err != nil {
		t.Fatal(err)
	}
	l, ok := s.Layer("runtime/nodejs")
	if !ok {
		t.Fatal("Layer lookup failed")
	}
	if err := s.LinkDigest("alias/base", "", l.Digest); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("alias/base")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("linked Get = %v / %d bytes", err, len(got))
	}
	if st := s.Stats(); st.DiskFiles != 1 {
		t.Fatalf("link created %d files, want 1", st.DiskFiles)
	}
	if err := s.LinkDigest("alias/none", "", l.Digest+1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("link to absent digest: got %v, want ErrNotFound", err)
	}
	// Deleting one name keeps the shared file alive for the other.
	s.Delete("runtime/nodejs")
	if got, err := s.Get("alias/base"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after co-owner delete = %v / %d bytes", err, len(got))
	}
	s.Delete("alias/base")
	if st := s.Stats(); st.DiskFiles != 0 {
		t.Fatalf("orphaned files after last delete: %d", st.DiskFiles)
	}
}

// TestFetchedLayerReExportsByteExact: the byte-identity satellite — a
// layer fetched from a peer store verifies, re-serves the identical
// bytes, and still materializes through the codec into a snapshot that
// re-exports byte-exact.
func TestFetchedLayerReExportsByteExact(t *testing.T) {
	enc := encodeTestSnapshot(t, "fn/hello")
	holder, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Put("fn/hello", "", enc); err != nil {
		t.Fatal(err)
	}
	wire, err := holder.Get("fn/hello")
	if err != nil {
		t.Fatal(err)
	}
	l, _ := holder.Layer("fn/hello")

	peer, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.PutFetched("fn/hello", "", append([]byte(nil), wire...), l.Digest); err != nil {
		t.Fatal(err)
	}
	got, err := peer.Get("fn/hello")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, enc) {
		t.Fatal("peer-fetched layer is not byte-identical to the original")
	}
	pl, _ := peer.Layer("fn/hello")
	if pl.Digest != l.Digest {
		t.Fatalf("peer digest %016x, holder digest %016x", pl.Digest, l.Digest)
	}

	// Materialize on the peer (attaching the guest payload, as the
	// hydrate path does) and re-export: still byte-exact.
	diff, err := snapshot.ImportBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Materialize(diff, mem.NewStore(0))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := uc.DecodePayload(diff.PayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	snap.SetPayload(payload)
	var buf bytes.Buffer
	if err := snap.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), enc) {
		t.Fatal("materialized snapshot does not re-export byte-exact")
	}
}

// TestPutFetchedCorruptRejected: every verification failure mode —
// damaged bytes, a digest mismatch, a lying key — returns ErrCorrupt
// and stores nothing.
func TestPutFetchedCorruptRejected(t *testing.T) {
	enc := encodeTestSnapshot(t, "fn/hello")
	holder, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Put("fn/hello", "", enc); err != nil {
		t.Fatal(err)
	}
	l, _ := holder.Layer("fn/hello")

	peer, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), enc...)
	damaged[len(damaged)/2] ^= 0xff
	if err := peer.PutFetched("fn/hello", "", damaged, l.Digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged bytes: got %v, want ErrCorrupt", err)
	}
	if err := peer.PutFetched("fn/hello", "", append([]byte(nil), enc...), l.Digest+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("digest mismatch: got %v, want ErrCorrupt", err)
	}
	if err := peer.PutFetched("fn/other", "", append([]byte(nil), enc...), l.Digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("key mismatch: got %v, want ErrCorrupt", err)
	}
	if peer.Len() != 0 {
		t.Fatalf("rejected fetches left %d entries", peer.Len())
	}
	if st := peer.Stats(); st.CorruptDropped != 3 {
		t.Fatalf("CorruptDropped = %d, want 3", st.CorruptDropped)
	}
}

// TestFabricConcurrentSharedBase: the dependency-cascade satellite —
// concurrent Gets, demote re-Puts, digest links, and capacity-driven
// evictions over one shared base layer must keep byte accounting and
// the stack invariant (a resident diff implies its resident base)
// intact. Run under -race in CI.
func TestFabricConcurrentSharedBase(t *testing.T) {
	base := bytes.Repeat([]byte{'B'}, 64)
	s, err := Open(t.TempDir(), 64+4*16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("runtime/nodejs", "", base); err != nil {
		t.Fatal(err)
	}
	bl, _ := s.Layer("runtime/nodejs")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 4 {
				case 0:
					// Promote path: read the shared base.
					s.Get("runtime/nodejs")
				case 1:
					// Demote path: re-Put unchanged base (metadata-only).
					s.Put("runtime/nodejs", "", base)
				case 2:
					// Fetch path: a diff layer depending on the base;
					// distinct contents force LRU churn at this capacity.
					s.Put(fmt.Sprintf("fn/%d-%d", w, i), "runtime/nodejs",
						[]byte(fmt.Sprintf("diff-%d-%d-payload", w, i)))
				case 3:
					// Dedup path: a second name for the base content.
					s.LinkDigest(fmt.Sprintf("alias/%d-%d", w, i), "", bl.Digest)
				}
			}
		}(w)
	}
	wg.Wait()

	// Byte accounting survived the churn.
	man := s.Manifest()
	var sum int64
	for _, l := range man {
		sum += l.Size
	}
	if got := s.SizeBytes(); got != sum {
		t.Fatalf("SizeBytes = %d, manifest sums to %d", got, sum)
	}
	if got := s.SizeBytes(); got > 64+4*16 {
		t.Fatalf("resident %d bytes exceeds capacity", got)
	}
	// Stack invariant: every resident diff whose base is a tier key has
	// that base resident (eviction cascades, never orphans).
	for _, l := range man {
		if l.Base != "" && !s.Has(l.Base) {
			t.Fatalf("entry %q survived eviction of its base %q", l.Key, l.Base)
		}
	}
	// The store still round-trips after the churn.
	if s.Has("runtime/nodejs") {
		if got, err := s.Get("runtime/nodejs"); err != nil || !bytes.Equal(got, base) {
			t.Fatalf("base after churn: %v / %d bytes", err, len(got))
		}
	}
}
