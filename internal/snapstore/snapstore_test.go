package snapstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"seuss/internal/interp"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/uc"
)

// encodeTestSnapshot boots a real runtime image and returns its encoded
// wire bytes — valid input for the codec-aware recovery paths.
func encodeTestSnapshot(t testing.TB, name string) []byte {
	t.Helper()
	st := mem.NewStore(0)
	prof, err := interp.ProfileByName("nodejs")
	if err != nil {
		t.Fatal(err)
	}
	boot, err := uc.BootFreshProfile(st, nil, &libos.CountingEnv{}, prof)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := boot.Capture(name, uc.TriggerPCDriverListen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("not-a-snapshot-but-bytes-round-trip-anyway")
	if err := s.Put("fn/a", "runtime/nodejs", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("fn/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes", len(got))
	}
	if _, err := s.Get("fn/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: got %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityZeroRejectsEverything(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("x")); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("cap 0 Put: got %v, want ErrNoCapacity", err)
	}
	if s.Len() != 0 {
		t.Fatalf("cap 0 store holds %d entries", s.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := Open(t.TempDir(), 25)
	if err != nil {
		t.Fatal(err)
	}
	ten := func(c byte) []byte { return bytes.Repeat([]byte{c}, 10) }
	for _, k := range []string{"a", "b"} {
		if err := s.Put("fn/"+k, "", ten(k[0])); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU victim.
	if _, err := s.Get("fn/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/c", "", ten('c')); err != nil {
		t.Fatal(err)
	}
	if s.Has("fn/b") {
		t.Fatal("LRU entry fn/b survived eviction")
	}
	if !s.Has("fn/a") || !s.Has("fn/c") {
		t.Fatalf("wrong victim: a=%v c=%v", s.Has("fn/a"), s.Has("fn/c"))
	}
	if s.SizeBytes() > 25 {
		t.Fatalf("resident %d bytes > cap", s.SizeBytes())
	}
	// An entry larger than the whole capacity is refused, not thrashed.
	if err := s.Put("fn/huge", "", bytes.Repeat([]byte{'h'}, 26)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("oversized Put: got %v", err)
	}
}

func TestEvictionCascadesThroughStack(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	// base ← mid ← top: a dependency chain recorded in the manifest.
	if err := s.Put("base", "", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("mid", "base", []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("top", "mid", []byte("ABCDEFGHIJ")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stack("top"); len(got) != 3 || got[0] != "top" || got[2] != "base" {
		t.Fatalf("Stack(top) = %v", got)
	}
	// base is the LRU; evicting it must take mid and top with it — a
	// diff without its base can never promote.
	s.mu.Lock()
	s.cap = 15
	s.evictLocked(0)
	s.mu.Unlock()
	if s.Len() != 0 {
		t.Fatalf("stack eviction left %d entries (%v)", s.Len(), s.KeysMRU())
	}
}

func TestIdenticalContentDedupes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("identical-bytes")
	if err := s.Put("fn/a", "", data); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/b", "", data); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("content addressing: %d files for identical bytes", len(snaps))
	}
	// Deleting one key keeps the shared file alive for the other.
	s.Delete("fn/a")
	if got, err := s.Get("fn/b"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("shared file lost with its sibling: %v", err)
	}
}

func TestReopenRestoresManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "runtime/nodejs", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("fn/a")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopen lost the entry: %v", err)
	}
	if got := s2.Stack("fn/a"); len(got) != 1 {
		t.Fatalf("Stack after reopen = %v", got)
	}
}

// TestCrashRecovery simulates every kill -9 window of a demote:
// (a) mid-data-write — a stray temp file; (b) after the data rename but
// before the manifest write — a complete orphan .snap; (c) bit flips in
// a stored file. Open must GC (a), adopt (b), and CRC-reject (c).
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	valid := encodeTestSnapshot(t, "runtime/nodejs")

	// (a) a partial temp write.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"partial"), valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// (b) a complete orphan .snap, no manifest at all.
	if err := os.WriteFile(filepath.Join(dir, "00000000deadbeef.snap"), valid, 0o644); err != nil {
		t.Fatal(err)
	}
	// (c) a damaged .snap (bit flip in the middle).
	damaged := append([]byte(nil), valid...)
	damaged[len(damaged)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "00000000badbadff.snap"), damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"partial")); !os.IsNotExist(err) {
		t.Fatal("temp file survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, "00000000badbadff.snap")); !os.IsNotExist(err) {
		t.Fatal("CRC-damaged file survived recovery")
	}
	got, err := s.Get("runtime/nodejs")
	if err != nil {
		t.Fatalf("orphan adoption failed: %v", err)
	}
	if !bytes.Equal(got, valid) {
		t.Fatal("adopted bytes differ from the original export")
	}
	if st := s.Stats(); st.CorruptDropped != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
}

// TestTornManifestRebuilds: a corrupt manifest must not wedge Open; the
// store rebuilds its index from the self-describing data files.
func TestTornManifestRebuilds(t *testing.T) {
	dir := t.TempDir()
	valid := encodeTestSnapshot(t, "runtime/nodejs")
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("runtime/nodejs", "", valid); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":1,"ent`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("runtime/nodejs")
	if err != nil || !bytes.Equal(got, valid) {
		t.Fatalf("rebuild from data files failed: %v", err)
	}
}

// TestCorruptEntryDroppedOnGet: post-Open damage (disk rot) is caught
// by the manifest CRC at read time and the entry is dropped.
func TestCorruptEntryDroppedOnGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn/a", "", []byte("soon to rot")); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("%d snap files", len(snaps))
	}
	raw, _ := os.ReadFile(snaps[0])
	raw[0] ^= 0xff
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("fn/a"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rot read: got %v, want ErrCorrupt", err)
	}
	if s.Has("fn/a") {
		t.Fatal("corrupt entry still resident")
	}
}

// TestSingleFlightGet: concurrent readers of one key share the result.
func TestSingleFlightGet(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("seuss"), 1024)
	if err := s.Put("fn/a", "", data); err != nil {
		t.Fatal(err)
	}
	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.Get("fn/a")
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errors.New("mismatched bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentPutGet exercises the store's locking under racing
// writers and readers across keys (run with -race).
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := "fn/" + string(rune('a'+g%4))
			payload := bytes.Repeat([]byte{byte('A' + g)}, 256)
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					if err := s.Put(key, "", payload); err != nil && !errors.Is(err, ErrNoCapacity) {
						t.Error(err)
						return
					}
				} else if _, err := s.Get(key); err != nil &&
					!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrCorrupt) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestManifestIsAtomicallyWritten: the manifest on disk is always valid
// JSON (never a torn partial write), because it lands via rename.
func TestManifestIsAtomicallyWritten(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put("fn/"+strings.Repeat("x", i+1), "", []byte("data")); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			t.Fatal(err)
		}
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("manifest torn after put %d: %v", i, err)
		}
	}
}
