package snapstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"seuss/internal/snapshot"
)

// This file is the store's working-set face: each resident layer may
// carry one sidecar file ("<digest16>.ws" beside "<digest16>.snap")
// holding the encoded set of pages a lukewarm restore of that exact
// content touched. The sidecar is keyed by the layer's content digest,
// not its lineage key, so it follows the bytes: demotion of an
// unchanged snapshot re-resolves to the same file, a fabric fetch that
// dedupes against resident content finds the record already in place,
// and eviction of the last lineage sharing the content removes the
// record with it.
//
// Sidecars are advisory. A missing, stale, or corrupt record degrades
// the next restore to on-demand faulting; it is never an error. Open
// GC therefore drops rather than adopts: a .ws whose layer is gone, or
// whose bytes fail the working-set CRC, is deleted.

// wsFile maps a layer's data file name to its sidecar name.
func wsFile(file string) string {
	return strings.TrimSuffix(file, ".snap") + ".ws"
}

// PutWorkingSet attaches an encoded working-set record to the layer
// stored under key. The write is atomic (temp + rename) and replaces
// any previous record for the same content. Records that do not decode
// are refused: the store never holds a sidecar it would GC on reopen.
func (s *Store) PutWorkingSet(key string, data []byte) error {
	pages, err := snapshot.DecodeWorkingSet(data)
	if err != nil {
		return fmt.Errorf("snapstore: working set: %w", err)
	}
	s.mu.Lock()
	e, ok := s.man.Entries[key]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	return s.writeWorkingSet(wsFile(e.File), data, pages)
}

// GetWorkingSetPages returns the decoded working-set pages attached to
// the layer stored under key, or false when the layer holds no valid
// record. The decoded record is served from the store's in-memory
// cache when the sidecar arrived through this process (Put, fabric
// receive, Open recovery), so the restore hot path pays no file read
// and no decode; a cache miss falls back to reading and decoding the
// sidecar once. The returned slice is shared: callers must not mutate
// it.
func (s *Store) GetWorkingSetPages(key string) ([]uint64, bool) {
	s.mu.Lock()
	e, ok := s.man.Entries[key]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	file := wsFile(e.File)
	if pages, hit := s.wsCache[file]; hit {
		s.mu.Unlock()
		return pages, true
	}
	s.mu.Unlock()
	raw, err := os.ReadFile(filepath.Join(s.dir, file))
	if err != nil {
		return nil, false
	}
	pages, err := snapshot.DecodeWorkingSet(raw)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.wsCache[file] = pages
	s.mu.Unlock()
	return pages, true
}

// GetWorkingSet returns the raw encoded working-set record attached to
// the layer stored under key, or ErrNotFound when the layer holds no
// record. The caller decodes (and treats decode failure as "no
// record") — the store does not re-verify on the read path.
func (s *Store) GetWorkingSet(key string) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.man.Entries[key]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(filepath.Join(s.dir, wsFile(e.File)))
	if err != nil {
		return nil, ErrNotFound
	}
	return data, nil
}

// WorkingSetForDigest returns the record attached to the resident
// content with the given digest — the fabric's read side, used to ship
// the sidecar alongside a fetched layer.
func (s *Store) WorkingSetForDigest(digest uint64) ([]byte, bool) {
	file := fmt.Sprintf("%016x.snap", digest)
	s.mu.Lock()
	held := false
	for _, e := range s.man.Entries {
		if e.File == file {
			held = true
			break
		}
	}
	s.mu.Unlock()
	if !held {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, wsFile(file)))
	if err != nil {
		return nil, false
	}
	return data, true
}

// PutWorkingSetForDigest attaches a record received from a peer to the
// resident content with the given digest. Like PutFetched, the bytes
// are verified before they can ever be served; unlike PutFetched a
// failure is not worth surfacing — the sidecar is advisory — so the
// record is simply not stored.
func (s *Store) PutWorkingSetForDigest(digest uint64, data []byte) error {
	pages, err := snapshot.DecodeWorkingSet(data)
	if err != nil {
		return fmt.Errorf("snapstore: working set: %w", err)
	}
	file := fmt.Sprintf("%016x.snap", digest)
	s.mu.Lock()
	held := false
	for _, e := range s.man.Entries {
		if e.File == file {
			held = true
			break
		}
	}
	s.mu.Unlock()
	if !held {
		return ErrNotFound
	}
	return s.writeWorkingSet(wsFile(file), data, pages)
}

// writeWorkingSet lands data in file via the store's usual temp+rename
// protocol, so a crash mid-write leaves only a .tmp-* for Open to GC.
// pages is the already-decoded record, cached for GetWorkingSetPages
// once the rename commits.
func (s *Store) writeWorkingSet(file string, data []byte, pages []uint64) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("snapstore: working set: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: working set: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: working set: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, file)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapstore: working set: %w", err)
	}
	s.mu.Lock()
	s.wsCache[file] = pages
	s.mu.Unlock()
	return nil
}

// recoverWorkingSets is the sidecar half of the Open-time recovery
// pass: every .ws file must name resident layer content and decode
// cleanly, or it is deleted. Runs after entry recovery so adoption and
// corrupt-entry drops have settled. Caller holds mu (Open is
// single-threaded, but recover mutates stats).
func (s *Store) recoverWorkingSets(wsOnDisk []string) {
	live := make(map[string]bool, len(s.man.Entries))
	for _, e := range s.man.Entries {
		live[wsFile(e.File)] = true
	}
	for _, name := range wsOnDisk {
		if !live[name] {
			os.Remove(filepath.Join(s.dir, name))
			s.stats.WSDropped++
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		pages, err := snapshot.DecodeWorkingSet(raw)
		if err != nil {
			os.Remove(filepath.Join(s.dir, name))
			s.stats.WSDropped++
			continue
		}
		s.wsCache[name] = pages
	}
}
