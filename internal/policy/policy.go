// Package policy decides WHEN function state lives and dies: how long
// an idle UC is kept warm, how long a resident snapshot lineage
// survives after its last invocation before it is demoted to the disk
// tier (scale-to-zero), and when a demoted lineage should be promoted
// back ahead of a predicted recurrence (prewarm). The mechanisms —
// UC caching, snapshot demote/promote, the pressure ladder — live in
// internal/core; this package is the pluggable decision layer on top.
//
// A Policy is consulted from exactly one goroutine (the core.Node
// owner), so implementations need no locking; Clone exists because
// shardpool hydrates one node per shard and per-key mutable state must
// not be shared across shard goroutines.
//
// All instants are sim-clock durations since engine start
// (time.Duration(eng.Now())), not wall time.
package policy

import (
	"fmt"
	"time"
)

// Pinned is the KeepAlive / SnapshotKeepAlive return value meaning
// "never expire" — the reaper skips the key entirely.
const Pinned = time.Duration(-1)

// Policy picks per-function lifecycle windows. The zero windows mean
// scale-to-zero immediately; Pinned (< 0) means never expire.
type Policy interface {
	// Name identifies the policy in stats, TSV output, and flags.
	Name() string

	// RecordInvoke observes a completed invocation of key at instant
	// now. Histogram policies learn inter-arrival times here.
	RecordInvoke(key string, now time.Duration)

	// RecordPressure observes that key lost idle state to memory
	// pressure (cap overflow or the pressure ladder), NOT to natural
	// idleness — so adaptive policies don't mistake eviction for the
	// end of an arrival burst.
	RecordPressure(key string, now time.Duration)

	// KeepAlive returns how long an idle UC of key may sit unused
	// before the reaper destroys it. 0 = destroy on the next tick,
	// Pinned = keep forever.
	KeepAlive(key string, now time.Duration) time.Duration

	// SnapshotKeepAlive returns how long the key's resident snapshot
	// lineage may sit past its last invocation before the reaper
	// demotes it to the disk tier and frees the RAM (scale-to-zero).
	// Usually ≥ KeepAlive: the UC dies first, the snapshot lingers so
	// marginal misses land warm instead of lukewarm.
	SnapshotKeepAlive(key string, now time.Duration) time.Duration

	// PrewarmAt predicts when a scaled-to-zero key should be promoted
	// back from the tier. Consulted at demote time; ok=false means no
	// prediction (wait for the next invocation to lukewarm-restore).
	PrewarmAt(key string, now time.Duration) (at time.Duration, ok bool)

	// Clone returns an independent copy with the same parameters and
	// no shared mutable state, for per-shard hydration.
	Clone() Policy
}

// NoKeepAlive scales every function to zero immediately: idle UCs are
// destroyed and lineages demoted on the first reaper tick after each
// invocation. Every recurrence pays a lukewarm restore — the
// "snapshots only, no cache" baseline.
type NoKeepAlive struct{}

func (NoKeepAlive) Name() string                                    { return "none" }
func (NoKeepAlive) RecordInvoke(string, time.Duration)              {}
func (NoKeepAlive) RecordPressure(string, time.Duration)            {}
func (NoKeepAlive) KeepAlive(string, time.Duration) time.Duration   { return 0 }
func (NoKeepAlive) SnapshotKeepAlive(string, time.Duration) time.Duration {
	return 0
}
func (NoKeepAlive) PrewarmAt(string, time.Duration) (time.Duration, bool) {
	return 0, false
}
func (NoKeepAlive) Clone() Policy { return NoKeepAlive{} }

// DefaultFixedWindow is the classic production keep-alive: idle state
// survives ten minutes past the last invocation.
const DefaultFixedWindow = 10 * time.Minute

// FixedKeepAlive keeps every function's idle UCs and resident lineage
// for one fixed window past its last invocation, then scales to zero.
// No prediction, no prewarm — the 10-minute-style industry baseline.
type FixedKeepAlive struct {
	// Window is the idle window (0 → DefaultFixedWindow).
	Window time.Duration
}

func (f FixedKeepAlive) window() time.Duration {
	if f.Window <= 0 {
		return DefaultFixedWindow
	}
	return f.Window
}

func (f FixedKeepAlive) Name() string                         { return "fixed" }
func (FixedKeepAlive) RecordInvoke(string, time.Duration)     {}
func (FixedKeepAlive) RecordPressure(string, time.Duration)   {}
func (f FixedKeepAlive) KeepAlive(string, time.Duration) time.Duration {
	return f.window()
}
func (f FixedKeepAlive) SnapshotKeepAlive(string, time.Duration) time.Duration {
	return f.window()
}
func (FixedKeepAlive) PrewarmAt(string, time.Duration) (time.Duration, bool) {
	return 0, false
}
func (f FixedKeepAlive) Clone() Policy { return f }

// New builds a policy by flag name: "none" (scale-to-zero
// immediately), "fixed" (fixed keep-alive window), or "hybrid"
// (per-function inter-arrival histogram). keepalive parameterizes the
// named policy — the window for "fixed", the keep-alive cap for
// "hybrid" — and 0 means the policy default. An empty name returns
// (nil, nil): lifecycle management off.
func New(name string, keepalive time.Duration) (Policy, error) {
	switch name {
	case "":
		return nil, nil
	case "none":
		return NoKeepAlive{}, nil
	case "fixed":
		return FixedKeepAlive{Window: keepalive}, nil
	case "hybrid":
		h := NewHybrid()
		if keepalive > 0 {
			h.Max = keepalive
		}
		return h, nil
	default:
		return nil, fmt.Errorf("unknown lifecycle policy %q (want none, fixed, or hybrid)", name)
	}
}
