package policy

import (
	"testing"
	"time"
)

// TestPolicyBaselineWindows pins the two trivial policies: NoKeepAlive
// scales everything to zero on sight, FixedKeepAlive hands every key
// the same window and never prewarms.
func TestPolicyBaselineWindows(t *testing.T) {
	now := 5 * time.Minute

	var none NoKeepAlive
	if got := none.KeepAlive("k", now); got != 0 {
		t.Errorf("NoKeepAlive.KeepAlive = %v, want 0", got)
	}
	if got := none.SnapshotKeepAlive("k", now); got != 0 {
		t.Errorf("NoKeepAlive.SnapshotKeepAlive = %v, want 0", got)
	}
	if _, ok := none.PrewarmAt("k", now); ok {
		t.Error("NoKeepAlive.PrewarmAt predicted a recurrence")
	}

	fixed := FixedKeepAlive{Window: 2 * time.Minute}
	if got := fixed.KeepAlive("k", now); got != 2*time.Minute {
		t.Errorf("FixedKeepAlive.KeepAlive = %v, want 2m", got)
	}
	if got := fixed.SnapshotKeepAlive("k", now); got != 2*time.Minute {
		t.Errorf("FixedKeepAlive.SnapshotKeepAlive = %v, want 2m", got)
	}
	if _, ok := fixed.PrewarmAt("k", now); ok {
		t.Error("FixedKeepAlive.PrewarmAt predicted a recurrence")
	}
	if got := (FixedKeepAlive{}).KeepAlive("k", now); got != DefaultFixedWindow {
		t.Errorf("zero-window FixedKeepAlive = %v, want default %v", got, DefaultFixedWindow)
	}
}

// TestPolicyNewByName pins the flag-name registry.
func TestPolicyNewByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
	}{{"none", "none"}, {"fixed", "fixed"}, {"hybrid", "hybrid"}} {
		p, err := New(tc.name, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", tc.name, err)
		}
		if p.Name() != tc.want {
			t.Errorf("New(%q).Name() = %q", tc.name, p.Name())
		}
	}
	if p, err := New("", 0); err != nil || p != nil {
		t.Errorf("New(\"\") = %v, %v; want nil, nil", p, err)
	}
	if _, err := New("bogus", 0); err == nil {
		t.Error("New(\"bogus\") did not error")
	}
	p, err := New("fixed", 7*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.KeepAlive("k", 0); got != 7*time.Minute {
		t.Errorf("New(fixed, 7m).KeepAlive = %v", got)
	}
}

// TestPolicyHybridColdKeysGetDefaultWindow: with fewer than MinSamples
// recorded gaps the histogram is untrusted — one-shot keys retire on
// the short default window and are never prewarmed.
func TestPolicyHybridColdKeysGetDefaultWindow(t *testing.T) {
	h := NewHybrid()
	h.RecordInvoke("once", 10*time.Second)
	if got := h.KeepAlive("once", 11*time.Second); got != h.Default {
		t.Errorf("one-shot KeepAlive = %v, want default %v", got, h.Default)
	}
	if got := h.SnapshotKeepAlive("once", 11*time.Second); got != h.Default {
		t.Errorf("one-shot SnapshotKeepAlive = %v, want default %v", got, h.Default)
	}
	if _, ok := h.PrewarmAt("once", 11*time.Second); ok {
		t.Error("one-shot key got a prewarm prediction")
	}
	if got := h.KeepAlive("never-seen", 0); got != h.Default {
		t.Errorf("unseen KeepAlive = %v, want default %v", got, h.Default)
	}
}

// TestPolicyHybridPeriodicKeyScaleToZeroAndPrewarm: a key arriving
// every 4 minutes (long, concentrated gaps) flips into periodic mode —
// minimum keep-alive on both windows, and a prewarm scheduled before
// the predicted next arrival.
func TestPolicyHybridPeriodicKeyScaleToZeroAndPrewarm(t *testing.T) {
	h := NewHybrid()
	period := 4 * time.Minute
	var now time.Duration
	for i := 0; i < 6; i++ {
		now = time.Duration(i) * period
		h.RecordInvoke("cron", now)
	}
	if got := h.KeepAlive("cron", now); got != h.Min {
		t.Errorf("periodic KeepAlive = %v, want Min %v", got, h.Min)
	}
	if got := h.SnapshotKeepAlive("cron", now); got != h.Min {
		t.Errorf("periodic SnapshotKeepAlive = %v, want Min %v", got, h.Min)
	}
	at, ok := h.PrewarmAt("cron", now+time.Minute)
	if !ok {
		t.Fatal("periodic key got no prewarm prediction")
	}
	next := now + period
	if at >= next {
		t.Errorf("prewarm at %v is not before the predicted arrival %v", at, next)
	}
	if at <= now+period/3 {
		t.Errorf("prewarm at %v is implausibly early (last invoke %v, period %v)", at, now, period)
	}
}

// TestPolicyHybridBurstyKeyKeepAliveClamped: short, spread-out gaps
// (a Poisson-ish stream) stay in keep-alive mode with the window set
// near the p95 gap — and always inside [Min, Max].
func TestPolicyHybridBurstyKeyKeepAliveClamped(t *testing.T) {
	h := NewHybrid()
	// Gaps spanning 2s..64s: p95 lands in the tail octave.
	gaps := []time.Duration{2 * time.Second, 3 * time.Second, 5 * time.Second,
		8 * time.Second, 10 * time.Second, 15 * time.Second, 20 * time.Second,
		30 * time.Second, 45 * time.Second, 64 * time.Second}
	var now time.Duration
	h.RecordInvoke("api", now)
	for _, g := range gaps {
		now += g
		h.RecordInvoke("api", now)
	}
	ka := h.KeepAlive("api", now)
	if ka < h.Min || ka > h.Max {
		t.Errorf("KeepAlive %v outside [%v, %v]", ka, h.Min, h.Max)
	}
	if ka < 45*time.Second {
		t.Errorf("KeepAlive %v below the observed p95 gap", ka)
	}
	if _, ok := h.PrewarmAt("api", now); ok {
		t.Error("bursty key got a prewarm prediction")
	}
	snap := h.SnapshotKeepAlive("api", now)
	if snap < ka {
		t.Errorf("SnapshotKeepAlive %v shorter than UC KeepAlive %v", snap, ka)
	}
}

// TestPolicyHybridCloneIsIndependent: Clone copies parameters but not
// per-key state — the shardpool contract.
func TestPolicyHybridCloneIsIndependent(t *testing.T) {
	h := NewHybrid()
	h.Max = 3 * time.Minute
	h.RecordInvoke("k", time.Second)
	h.RecordInvoke("k", 2*time.Second)
	h.RecordInvoke("k", 3*time.Second)

	c, ok := h.Clone().(*Hybrid)
	if !ok {
		t.Fatal("Clone did not return a *Hybrid")
	}
	if c.Max != 3*time.Minute {
		t.Errorf("Clone lost parameters: Max = %v", c.Max)
	}
	c.RecordInvoke("k2", time.Second)
	if h.keys["k2"] != nil {
		t.Error("Clone shares per-key state with its parent")
	}
	if c.keys["k"] != nil {
		t.Error("Clone inherited the parent's per-key history")
	}
}

// TestPolicyHybridPressureRecorded: pressure evictions are tallied per
// key, not mistaken for arrival gaps.
func TestPolicyHybridPressureRecorded(t *testing.T) {
	h := NewHybrid()
	h.RecordInvoke("k", time.Second)
	before := h.keys["k"].samples
	h.RecordPressure("k", 2*time.Second)
	h.RecordPressure("k", 3*time.Second)
	if got := h.PressureEvents("k"); got != 2 {
		t.Errorf("PressureEvents = %d, want 2", got)
	}
	if h.keys["k"].samples != before {
		t.Error("RecordPressure changed the gap histogram")
	}
	h.RecordPressure("unknown", time.Second) // must not panic or create state
	if h.keys["unknown"] != nil {
		t.Error("RecordPressure created state for an unseen key")
	}
}

// TestPolicyHybridPressureHalvesWindows: pressure evictions halve a
// key's effective windows (capped at 1/8), and fresh arrivals earn the
// windows back one halving at a time.
func TestPolicyHybridPressureHalvesWindows(t *testing.T) {
	h := NewHybrid()
	h.RecordInvoke("k", time.Second)
	base := h.KeepAlive("k", 2*time.Second)
	if base != h.Default {
		t.Fatalf("undersampled KeepAlive = %v, want default %v", base, h.Default)
	}
	h.RecordPressure("k", 2*time.Second)
	if got := h.KeepAlive("k", 3*time.Second); got != base/2 {
		t.Errorf("KeepAlive after one eviction = %v, want %v", got, base/2)
	}
	if got := h.SnapshotKeepAlive("k", 3*time.Second); got != base/2 {
		t.Errorf("SnapshotKeepAlive after one eviction = %v, want %v", got, base/2)
	}
	for i := 0; i < 10; i++ {
		h.RecordPressure("k", 3*time.Second)
	}
	if got := h.KeepAlive("k", 4*time.Second); got != base/8 {
		t.Errorf("KeepAlive under sustained pressure = %v, want floor %v", got, base/8)
	}
	// One fresh gap forgives one eviction; the cap still binds.
	h.RecordInvoke("k", 10*time.Second)
	if got := h.keys["k"].pressure; got != 10 {
		t.Errorf("pressure after one forgiving arrival = %d, want 10", got)
	}
}
