package policy

import (
	"math"
	"time"
)

// iatBuckets is the per-key inter-arrival histogram resolution:
// quarter-octave log buckets (bucket i spans [2^(i/4), 2^((i+1)/4))
// seconds), 80 buckets covering one second to ~12 days. Sub-second
// gaps land in bucket 0. Quarter-octave granularity keeps prediction
// error under ~19%, tight enough to prewarm ahead of a periodic
// arrival without holding RAM for most of the period.
const iatBuckets = 80

// hybridKey is one function's learned arrival history.
type hybridKey struct {
	seen     bool
	last     time.Duration // instant of the most recent invocation
	samples  int           // inter-arrival gaps recorded
	pressure int           // pressure evictions observed (RecordPressure)
	hist     [iatBuckets]uint32
}

// Hybrid picks per-function windows from a per-key inter-arrival-time
// histogram, after the hybrid policy of "Serverless in the Wild"
// (Shahrad et al., ATC'20): functions whose gaps are long but
// concentrated (periodic crons, batch ticks) are scaled to zero right
// away and prewarmed just before the predicted next arrival; everything
// else gets a keep-alive window sized to its tail gap (p95), clamped to
// [Min, Max]. Keys with too little history get the short Default
// window — which is what retires one-shot keys quickly.
type Hybrid struct {
	// Min and Max clamp every learned keep-alive window.
	Min, Max time.Duration
	// Default is the window used before MinSamples gaps are recorded.
	Default time.Duration
	// SnapFactor stretches the snapshot window relative to the UC
	// window: the UC dies at KeepAlive, the resident lineage survives
	// SnapFactor× longer so marginal misses land warm, not lukewarm.
	SnapFactor float64
	// PrewarmMinIAT is the smallest median gap worth prewarming for;
	// below it, keeping state resident is cheaper than cycling it
	// through the disk tier.
	PrewarmMinIAT time.Duration
	// PrewarmMargin schedules the promotion at
	// last + PrewarmMargin × predicted gap (predicted from the p50
	// bucket's lower bound, so the error is always on the early side).
	PrewarmMargin float64
	// Concentration is the p95/p50 gap ratio at or below which an
	// arrival pattern counts as periodic.
	Concentration float64
	// HoldFactor bounds the post-prewarm hold: a periodic key's
	// lineage is kept resident from the prewarm instant until
	// HoldFactor × p95 after its last arrival, so a promoted snapshot
	// is not scaled back to zero in the gap between the prewarm and
	// the (slightly late) arrival it predicted. Past the hold, a
	// no-show key scales to zero like anything else.
	HoldFactor float64
	// MinSamples is how many recorded gaps the histogram needs before
	// it overrides Default.
	MinSamples int

	keys map[string]*hybridKey
}

// NewHybrid returns a Hybrid with the package defaults.
func NewHybrid() *Hybrid {
	return &Hybrid{
		Min:           20 * time.Second,
		Max:           10 * time.Minute,
		Default:       45 * time.Second,
		SnapFactor:    4,
		PrewarmMinIAT: 90 * time.Second,
		PrewarmMargin: 0.75,
		Concentration: 2.0,
		HoldFactor:    2.0,
		MinSamples:    2,
	}
}

func (h *Hybrid) Name() string { return "hybrid" }

func (h *Hybrid) RecordInvoke(key string, now time.Duration) {
	if h.keys == nil {
		h.keys = make(map[string]*hybridKey)
	}
	st := h.keys[key]
	if st == nil {
		st = &hybridKey{}
		h.keys[key] = st
	}
	if st.seen {
		if gap := now - st.last; gap >= 0 {
			st.hist[iatBucket(gap)]++
			st.samples++
			// Each fresh arrival forgives one pressure eviction, so a
			// key that resumes recurring earns its full windows back.
			if st.pressure > 0 {
				st.pressure--
			}
		}
	}
	st.seen = true
	st.last = now
}

func (h *Hybrid) RecordPressure(key string, now time.Duration) {
	if st := h.keys[key]; st != nil {
		st.pressure++
	}
}

func (h *Hybrid) KeepAlive(key string, now time.Duration) time.Duration {
	st := h.keys[key]
	if st == nil || st.samples < h.MinSamples {
		return h.pressureScaled(st, h.Default)
	}
	if h.periodic(st) {
		return h.Min
	}
	_, p95u := h.percentile(st, 0.95)
	return h.pressureScaled(st, clampDur(p95u, h.Min, h.Max))
}

func (h *Hybrid) SnapshotKeepAlive(key string, now time.Duration) time.Duration {
	st := h.keys[key]
	if st == nil || st.samples < h.MinSamples {
		return h.pressureScaled(st, h.Default)
	}
	if h.periodic(st) {
		// The snapshot window is phase-dependent: right after an
		// arrival, scale to zero fast (Min); but once the clock passes
		// the prewarm instant, report a long window so the lineage the
		// reaper just promoted survives until the predicted arrival
		// actually lands. The hold releases at HoldFactor × p95 past
		// the last arrival, so a key that stops recurring still scales
		// back to zero within a couple of periods.
		p50l, _ := h.percentile(st, 0.50)
		_, p95u := h.percentile(st, 0.95)
		at := st.last + time.Duration(h.PrewarmMargin*float64(p50l))
		hold := st.last + time.Duration(h.holdFactor()*float64(p95u))
		if now >= at && now < hold {
			return h.Max
		}
		return h.Min
	}
	_, p95u := h.percentile(st, 0.95)
	return h.pressureScaled(st, clampDur(time.Duration(h.SnapFactor*float64(p95u)), h.Min, h.Max))
}

// holdFactor guards zero-value Hybrid literals (tests) against a
// degenerate zero-length hold.
func (h *Hybrid) holdFactor() float64 {
	if h.HoldFactor <= 0 {
		return 2.0
	}
	return h.HoldFactor
}

// pressureScaled halves a window once per pressure eviction recorded
// against the key (capped at three halvings): state the node had to
// force out is state whose RAM is better spent elsewhere, so its
// windows shrink until the pressure history is outweighed by fresh
// arrivals. Periodic keys are exempt — their windows are already Min
// outside the prewarm hold, and shortening the hold would turn
// predictions into lukewarm misses.
func (h *Hybrid) pressureScaled(st *hybridKey, d time.Duration) time.Duration {
	if st == nil || st.pressure == 0 {
		return d
	}
	p := st.pressure
	if p > 3 {
		p = 3
	}
	return d >> uint(p)
}

func (h *Hybrid) PrewarmAt(key string, now time.Duration) (time.Duration, bool) {
	st := h.keys[key]
	if st == nil || st.samples < h.MinSamples || !h.periodic(st) {
		return 0, false
	}
	p50l, _ := h.percentile(st, 0.50)
	return st.last + time.Duration(h.PrewarmMargin*float64(p50l)), true
}

func (h *Hybrid) Clone() Policy {
	c := *h
	c.keys = nil
	return &c
}

// Keys reports how many distinct functions this instance has tracked —
// observability for tests (a cloned-per-shard policy's template must
// stay at zero) and stats.
func (h *Hybrid) Keys() int { return len(h.keys) }

// PressureEvents reports how many pressure evictions have been
// recorded against key — observability for tests and stats.
func (h *Hybrid) PressureEvents(key string) int {
	if st := h.keys[key]; st != nil {
		return st.pressure
	}
	return 0
}

// periodic reports whether the key's gaps are long (median at least
// PrewarmMinIAT) and concentrated (p95 within Concentration× of p50) —
// the pattern worth scaling to zero and prewarming.
func (h *Hybrid) periodic(st *hybridKey) bool {
	p50l, p50u := h.percentile(st, 0.50)
	_, p95u := h.percentile(st, 0.95)
	return p50l >= h.PrewarmMinIAT && float64(p95u) <= h.Concentration*float64(p50u)
}

// percentile returns the [lower, upper) bounds of the histogram bucket
// holding the q-th gap quantile. Callers pick the bound whose error
// direction is safe: upper for keep-alive windows (never expire
// early), lower for prewarm predictions (never promote late).
func (h *Hybrid) percentile(st *hybridKey, q float64) (lo, hi time.Duration) {
	target := int(math.Ceil(q * float64(st.samples)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for i := 0; i < iatBuckets; i++ {
		cum += int(st.hist[i])
		if cum >= target {
			return bucketBoundsIAT(i)
		}
	}
	return bucketBoundsIAT(iatBuckets - 1)
}

// iatBucket maps a gap to its quarter-octave bucket.
func iatBucket(gap time.Duration) int {
	s := gap.Seconds()
	if s <= 1 {
		return 0
	}
	i := int(math.Floor(4 * math.Log2(s)))
	if i < 0 {
		i = 0
	}
	if i >= iatBuckets {
		i = iatBuckets - 1
	}
	return i
}

// bucketBoundsIAT returns bucket i's [lower, upper) bounds.
func bucketBoundsIAT(i int) (lo, hi time.Duration) {
	lo = time.Duration(math.Pow(2, float64(i)/4) * float64(time.Second))
	hi = time.Duration(math.Pow(2, float64(i+1)/4) * float64(time.Second))
	return lo, hi
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
