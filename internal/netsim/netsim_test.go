package netsim

import (
	"testing"

	"seuss/internal/sim"
)

func TestProxyInternalMapping(t *testing.T) {
	p := NewProxy(16)
	port, err := p.MapInternal(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := p.RouteInbound(port)
	if err != nil {
		t.Fatal(err)
	}
	if ep.UCID != 42 || ep.Core != 3 {
		t.Errorf("ep = %+v", ep)
	}
}

func TestProxyScreensUnmappedPorts(t *testing.T) {
	p := NewProxy(16)
	if _, err := p.RouteInbound(31337); err != ErrNoRoute {
		t.Errorf("err = %v", err)
	}
	if p.Screened() != 1 {
		t.Errorf("screened = %d", p.Screened())
	}
}

func TestProxyOutboundMasquerade(t *testing.T) {
	p := NewProxy(16)
	port, err := p.MapOutbound(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RouteOutbound(port); err != nil {
		t.Fatal(err)
	}
	// Replies on the masqueraded flow route back in.
	ep, err := p.RouteInbound(port)
	if err != nil || ep.UCID != 7 {
		t.Errorf("reply routing: %+v, %v", ep, err)
	}
}

func TestProxyPortsUnique(t *testing.T) {
	p := NewProxy(16)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		port, err := p.MapInternal(uint64(i), i%16)
		if err != nil {
			t.Fatal(err)
		}
		if seen[port] {
			t.Fatalf("port %d reused", port)
		}
		seen[port] = true
	}
	in, out := p.Mappings()
	if in != 1000 || out != 0 {
		t.Errorf("mappings = %d, %d", in, out)
	}
}

func TestProxyCoreRange(t *testing.T) {
	p := NewProxy(4)
	if _, err := p.MapInternal(1, 4); err == nil {
		t.Error("out-of-range core accepted")
	}
	if _, err := p.MapOutbound(1, -1); err == nil {
		t.Error("negative core accepted")
	}
}

func TestProxyUnmap(t *testing.T) {
	p := NewProxy(16)
	port, _ := p.MapInternal(1, 0)
	p.Unmap(port)
	if _, err := p.RouteInbound(port); err != ErrNoRoute {
		t.Error("mapping survived unmap")
	}
}

func TestProxyUnmapUC(t *testing.T) {
	p := NewProxy(16)
	p1, _ := p.MapInternal(9, 0)
	p2, _ := p.MapOutbound(9, 0)
	p3, _ := p.MapInternal(10, 0)
	p.UnmapUC(9)
	if _, err := p.RouteInbound(p1); err == nil {
		t.Error("internal mapping survived")
	}
	if _, err := p.RouteOutbound(p2); err == nil {
		t.Error("external mapping survived")
	}
	if _, err := p.RouteInbound(p3); err != nil {
		t.Error("other UC's mapping removed")
	}
}

func TestBridgeLoadGrowsQuadratically(t *testing.T) {
	b := NewBridge(sim.NewRNG(1))
	for i := 0; i < 100; i++ {
		b.Attach()
	}
	l100 := b.BroadcastLoad()
	for i := 0; i < 100; i++ {
		b.Attach()
	}
	l200 := b.BroadcastLoad()
	ratio := l200 / l100
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("load ratio for 2x endpoints = %.2f, want ≈4 (O(N²))", ratio)
	}
}

func TestBridgeNoDropsBelowDefaultLimit(t *testing.T) {
	// §7: 1024 is the default limit of endpoints on a Linux bridge;
	// below ~1000 endpoints connections are reliable.
	b := NewBridge(sim.NewRNG(1))
	for i := 0; i < 900; i++ {
		b.Attach()
	}
	if p := b.DropProbability(); p != 0 {
		t.Errorf("drop probability at 900 endpoints = %v", p)
	}
	for i := 0; i < 1000; i++ {
		if !b.Connect() {
			t.Fatal("drop below threshold")
		}
	}
}

func TestBridgeDropsAboveLimit(t *testing.T) {
	b := NewBridge(sim.NewRNG(1))
	for i := 0; i < 1100; i++ {
		b.Attach()
	}
	if p := b.DropProbability(); p <= 0 {
		t.Error("no drops just above the bridge limit")
	}
	// At 3000 endpoints (the observed container density limit) the
	// bridge is unusable.
	for i := 0; i < 1900; i++ {
		b.Attach()
	}
	if p := b.DropProbability(); p < 0.9 {
		t.Errorf("drop probability at 3000 endpoints = %v, want near 1", p)
	}
	drops := 0
	for i := 0; i < 1000; i++ {
		if !b.Connect() {
			drops++
		}
	}
	if drops < 800 {
		t.Errorf("only %d/1000 drops at 3000 endpoints", drops)
	}
	attempts, dropped := b.Stats()
	if attempts != 1000 || int(dropped) != drops {
		t.Errorf("stats = %d, %d", attempts, dropped)
	}
}

func TestBridgeDetach(t *testing.T) {
	b := NewBridge(sim.NewRNG(1))
	b.Attach()
	b.Attach()
	b.Detach()
	if b.Endpoints() != 1 {
		t.Errorf("endpoints = %d", b.Endpoints())
	}
	b.Detach()
	b.Detach() // extra detach is harmless
	if b.Endpoints() != 0 {
		t.Errorf("endpoints = %d", b.Endpoints())
	}
}

func TestBridgeDeterministicDrops(t *testing.T) {
	run := func() []bool {
		b := NewBridge(sim.NewRNG(99))
		for i := 0; i < 1200; i++ {
			b.Attach()
		}
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, b.Connect())
		}
		return out
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("bridge drops nondeterministic under fixed seed")
		}
	}
}

func TestInboundInitiatedConnectionsRejected(t *testing.T) {
	// §6: only outgoing TCP connections initiated from within the
	// unikernel are supported; externally initiated ones are screened.
	p := NewProxy(16)
	port, _ := p.MapInternal(1, 0)
	if err := p.InboundConnect(port); err != ErrUnsupported {
		t.Errorf("err = %v", err)
	}
	if p.Screened() != 1 {
		t.Errorf("screened = %d", p.Screened())
	}
}
