// Package netsim simulates the two network data planes of the
// evaluation:
//
//   - The SEUSS per-core network proxy (§6 Networking): every UC shares
//     one IP/MAC identity; a per-core proxy maintains internal and
//     external mappings keyed by TCP destination port, screens incoming
//     traffic, and masquerades outbound connections. Only outgoing TCP
//     connections initiated from within a unikernel are supported.
//
//   - The Linux bridge the container baseline hangs off: a single
//     broadcast packet (ARP, DHCP) sent over a bridge with N endpoints
//     is processed in the kernel N separate times [§7, 46]. Past ~1024
//     endpoints the softirq load saturates and packets drop, timing out
//     the controller↔container connections — the failure mode that caps
//     the paper's Linux container cache at 1024.
package netsim

import (
	"errors"
	"fmt"

	"seuss/internal/costs"
	"seuss/internal/sim"
)

// ErrNoRoute is returned for traffic to an unmapped port.
var ErrNoRoute = errors.New("netsim: no route for port")

// ErrUnsupported is returned for traffic the proxy does not handle
// (inbound-initiated connections, UDP, IPv6).
var ErrUnsupported = errors.New("netsim: unsupported traffic")

// Endpoint identifies a UC on a worker core.
type Endpoint struct {
	UCID uint64
	Core int
}

// Proxy is the per-node collection of per-core proxy tables. TCP
// destination ports act as the unique key mapping packets to active
// UCs.
type Proxy struct {
	cores    int
	nextPort int
	internal map[int]Endpoint // host→UC connections
	external map[int]Endpoint // UC-initiated outbound flows (masqueraded)
	inPkts   int64
	outPkts  int64
	screened int64 // inbound packets dropped by screening
}

// NewProxy returns a proxy for a node with the given worker core count.
func NewProxy(cores int) *Proxy {
	return &Proxy{
		cores:    cores,
		nextPort: 20000,
		internal: make(map[int]Endpoint),
		external: make(map[int]Endpoint),
	}
}

// MapInternal allocates a port for a host→UC connection and installs
// the mapping on the UC's core, returning the port.
func (p *Proxy) MapInternal(ucID uint64, core int) (int, error) {
	if core < 0 || core >= p.cores {
		return 0, fmt.Errorf("netsim: core %d out of range", core)
	}
	port := p.allocPort()
	p.internal[port] = Endpoint{UCID: ucID, Core: core}
	return port, nil
}

// MapOutbound installs a masquerade entry for a UC-initiated outbound
// TCP connection and returns the translated source port.
func (p *Proxy) MapOutbound(ucID uint64, core int) (int, error) {
	if core < 0 || core >= p.cores {
		return 0, fmt.Errorf("netsim: core %d out of range", core)
	}
	port := p.allocPort()
	p.external[port] = Endpoint{UCID: ucID, Core: core}
	return port, nil
}

func (p *Proxy) allocPort() int {
	for {
		p.nextPort++
		if p.nextPort > 65000 {
			p.nextPort = 20000
		}
		if _, in := p.internal[p.nextPort]; in {
			continue
		}
		if _, out := p.external[p.nextPort]; out {
			continue
		}
		return p.nextPort
	}
}

// RouteInbound screens an incoming packet and returns the UC endpoint
// it maps to. Packets destined for unmapped ports are screened out.
// Inbound traffic can only belong to an internal mapping or be a reply
// on a masqueraded outbound flow.
func (p *Proxy) RouteInbound(port int) (Endpoint, error) {
	p.inPkts++
	if ep, ok := p.internal[port]; ok {
		return ep, nil
	}
	if ep, ok := p.external[port]; ok {
		return ep, nil
	}
	p.screened++
	return Endpoint{}, ErrNoRoute
}

// RouteOutbound records a UC-originated packet on a mapped flow.
func (p *Proxy) RouteOutbound(port int) (Endpoint, error) {
	p.outPkts++
	if ep, ok := p.external[port]; ok {
		return ep, nil
	}
	if ep, ok := p.internal[port]; ok {
		return ep, nil
	}
	return Endpoint{}, ErrNoRoute
}

// InboundConnect handles an externally initiated connection attempt to
// a UC. The design only supports outgoing TCP connections initiated
// from within the unikernel (§6), so this always fails with
// ErrUnsupported; the packet is screened.
func (p *Proxy) InboundConnect(port int) error {
	p.inPkts++
	p.screened++
	return ErrUnsupported
}

// Unmap removes a mapping when its connection or UC dies.
func (p *Proxy) Unmap(port int) {
	delete(p.internal, port)
	delete(p.external, port)
}

// UnmapUC removes every mapping belonging to a UC.
func (p *Proxy) UnmapUC(ucID uint64) {
	for port, ep := range p.internal {
		if ep.UCID == ucID {
			delete(p.internal, port)
		}
	}
	for port, ep := range p.external {
		if ep.UCID == ucID {
			delete(p.external, port)
		}
	}
}

// Mappings returns the number of live (internal, external) mappings.
func (p *Proxy) Mappings() (internal, external int) {
	return len(p.internal), len(p.external)
}

// Screened returns the count of inbound packets dropped by screening.
func (p *Proxy) Screened() int64 { return p.screened }

// Traffic returns the (inbound, outbound) packet counts the proxy has
// routed.
func (p *Proxy) Traffic() (in, out int64) { return p.inPkts, p.outPkts }

// Bridge models the Linux bridge + veth network shared by the container
// baseline. Endpoint count drives broadcast load; past the drop
// threshold, connection attempts start failing probabilistically — the
// paper's observed controller↔container timeouts.
type Bridge struct {
	endpoints int
	rng       *sim.RNG
	attempts  int64
	drops     int64
}

// NewBridge returns a bridge with a deterministic RNG for drop
// decisions.
func NewBridge(rng *sim.RNG) *Bridge {
	return &Bridge{rng: rng}
}

// Attach adds a veth endpoint (container creation).
func (b *Bridge) Attach() { b.endpoints++ }

// Detach removes an endpoint (container destruction).
func (b *Bridge) Detach() {
	if b.endpoints > 0 {
		b.endpoints--
	}
}

// Endpoints returns the number of attached endpoints.
func (b *Bridge) Endpoints() int { return b.endpoints }

// BroadcastLoad returns the fraction of one core the bridge's broadcast
// processing consumes: each endpoint generates broadcasts at
// BridgeBroadcastRate/s and each broadcast is processed once per
// endpoint — the O(N²) kernel work of [46].
func (b *Bridge) BroadcastLoad() float64 {
	n := float64(b.endpoints)
	perSec := n * costs.BridgeBroadcastRate                // broadcasts/s
	work := perSec * n * costs.BridgePerEndpoint.Seconds() // core-seconds/s
	return work
}

// DropProbability returns the chance a connection attempt fails at the
// current endpoint count. Zero below the threshold; grows linearly to
// near-certain loss as broadcast work exceeds a full core.
func (b *Bridge) DropProbability() float64 {
	load := b.BroadcastLoad()
	if load <= costs.BridgeDropThreshold {
		return 0
	}
	p := (load - costs.BridgeDropThreshold) / (1.0 - costs.BridgeDropThreshold)
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// Connect attempts a TCP connection across the bridge; false means the
// packets dropped and the caller will hit its timeout.
func (b *Bridge) Connect() bool {
	b.attempts++
	p := b.DropProbability()
	if p > 0 && b.rng.Float64() < p {
		b.drops++
		return false
	}
	return true
}

// Stats returns (attempts, drops).
func (b *Bridge) Stats() (attempts, drops int64) { return b.attempts, b.drops }
