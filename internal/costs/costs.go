// Package costs is the single calibration table for every virtual-time
// cost model in the reproduction.
//
// The mechanisms of SEUSS (page tables, CoW, snapshots) are implemented
// for real in this repository, so *memory* numbers are measured, not
// modeled. Time, however, cannot be measured faithfully from Go — we are
// not running V8 on a Xeon — so every latency-bearing operation charges
// virtual time from the constants below. They are calibrated against the
// paper's own microbenchmarks (Table 1-3 of §7) and the scaling laws the
// authors report in prose (container creation growing with population
// and with parallelism, the Linux bridge's O(N) broadcast cost, the shim
// process's serialized TCP hop). EXPERIMENTS.md records how the derived
// results compare per table and figure.
//
// Everything here is a var, not a const, so ablation benchmarks can
// perturb a cost and observe the effect; tests that depend on calibrated
// values must restore anything they change.
package costs

import "time"

// ---- SEUSS UC mechanics (§6, Table 1) ----

var (
	// UCDeploy is the fixed cost of deploying a UC from a snapshot:
	// allocate the UC, shallow-copy the root page table, map it to a
	// core, flush the TLB, and resume at the breakpoint.
	UCDeploy = 300 * time.Microsecond

	// UCDestroy tears a UC down (page table release, core bookkeeping).
	UCDestroy = 50 * time.Microsecond

	// PageFault is the kernel cost of resolving one fault on the UC's
	// address space (CoW clone or demand-zero), including the 4 KB copy.
	PageFault = 1500 * time.Nanosecond

	// SnapshotBase is the fixed cost of a snapshot capture (debug
	// exception, register spill, object setup).
	SnapshotBase = 100 * time.Microsecond

	// SnapshotPerPage is charged per dirty page at capture (page-table
	// walk and clone bookkeeping). 2 MB (≈500 pages) lands near the
	// paper's ≈400 µs NOP-function capture together with SnapshotBase.
	SnapshotPerPage = 600 * time.Nanosecond

	// Hypercall is one domain crossing through the narrow (12-call)
	// interface.
	Hypercall = 300 * time.Nanosecond
)

// ---- Snapshot disk tier (demotion / lukewarm promotion) ----
//
// The tier sits between RAM and a cold rebuild: promoting an encoded
// diff from local disk must land strictly between the warm path (the
// snapshot is resident) and the cold path (full interpreter replay,
// dominated by CompileBase). Calibrated against NVMe-class sequential
// reads of the ~0.5-2 MB diffs the NOP-function lineages produce.

var (
	// SnapDemoteBase is the fixed cost of demoting a snapshot: encode
	// setup plus the write submission (the write itself completes
	// asynchronously; eviction does not wait for durability).
	SnapDemoteBase = 400 * time.Microsecond

	// SnapDemotePerPage is charged per diff page encoded on demotion.
	SnapDemotePerPage = 200 * time.Nanosecond

	// SnapPromoteBase is the fixed cost of a lukewarm promotion: open +
	// read submission, CRC verification, decode setup, graft
	// bookkeeping.
	SnapPromoteBase = 1200 * time.Microsecond

	// SnapPromotePerPage is charged per diff page read and grafted onto
	// the resident base during promotion.
	SnapPromotePerPage = 500 * time.Nanosecond

	// WSPrefetchBase is the fixed cost of replaying a working-set
	// record on a lukewarm deploy: sidecar read, decode, and the setup
	// of one batched page-table walk (DESIGN.md §13).
	WSPrefetchBase = 8 * time.Microsecond

	// WSPrefetchPerPage is charged per working-set page bulk-mapped
	// before the first instruction. The whole point of record/replay
	// (REAP, arXiv 2101.09355): a page resolved inside one batched
	// span walk costs ~40 ns, versus the 1.5 µs trap-and-resolve of an
	// on-demand PageFault — the serial fault storm collapses ~37×.
	WSPrefetchPerPage = 40 * time.Nanosecond
)

// ---- Guest software stack (Rumprun + interpreter) ----

var (
	// UnikernelBoot is the one-time cost of booting the general-purpose
	// Rumprun unikernel into the interpreter at system initialization
	// (§6: a general-purpose library OS incurs longer boot times). Paid
	// once per supported interpreter, before the runtime snapshot.
	UnikernelBoot = 700 * time.Millisecond

	// InterpreterInit is the one-time interpreter setup (Node.js boot,
	// driver script start) before the runtime snapshot.
	InterpreterInit = 450 * time.Millisecond

	// ConnectWarm is a TCP connection into a UC whose base image had
	// the network anticipatory optimization: buffer pools and protocol
	// tables pre-grown pre-snapshot.
	ConnectWarm = 1500 * time.Microsecond

	// ConnectCold is the same connection when the base image lacks
	// network AO: per-UC pool growth and slow-path setup re-run on
	// every deployment.
	ConnectCold = 3420 * time.Microsecond

	// NetFirstUse is the one-time lazy initialization of the in-guest
	// network stack the first time traffic enters a lineage without
	// network AO (exercised instead pre-snapshot when AO is applied).
	NetFirstUse = 22900 * time.Microsecond

	// InterpFirstUse is the one-time lazy initialization of interpreter
	// internals (parser tables, code caches) the first time a script
	// runs in a lineage without interpreter AO.
	InterpFirstUse = 6900 * time.Microsecond

	// CompileBase is the fixed cost of importing a function: driver
	// message handling, module context creation, compilation setup.
	// Dominates for a NOP function (≈5 ms of the 7.5 ms cold start).
	CompileBase = 3340 * time.Microsecond

	// CompilePerByte scales compilation with source size.
	CompilePerByte = 40 * time.Nanosecond

	// DriverWarm is the per-invocation driver dispatch (accept request,
	// JSON decode/encode, call the function) on an interpreter-AO image.
	DriverWarm = 350 * time.Microsecond

	// DriverCold is the same dispatch when interpreter AO is absent
	// from the lineage: allocator and cache slow paths re-run per UC.
	DriverCold = 2060 * time.Microsecond

	// ArgImport sends one set of invocation arguments into the UC.
	ArgImport = 200 * time.Microsecond

	// ResultReturn carries the function result back out.
	ResultReturn = 100 * time.Microsecond

	// StepTime converts interpreter evaluation steps to CPU time.
	StepTime = 50 * time.Nanosecond
)

// ---- Guest memory behavior (pages; measured quantities emerge from
// the allocator, these size the subsystems) ----

var (
	// RuntimeImageBytes is the resident size of the booted unikernel +
	// interpreter + driver before AO (Table 1: 109.6 MB).
	RuntimeImageBytes = int64(109_600_000)

	// NetAOBytes is the guest memory the network AO warms into the base
	// snapshot (buffer pools, protocol tables).
	NetAOBytes = int64(1_100_000)

	// InterpAOBytes is the guest memory the interpreter AO warms into
	// the base snapshot (caches, intern tables). NetAOBytes +
	// InterpAOBytes ≈ the paper's +4.9 MB base-snapshot growth.
	InterpAOBytes = int64(1_750_000)

	// ImportMachineryBytes is allocated by any function import
	// regardless of source size (module wrapper, compile scratch).
	ImportMachineryBytes = int64(470_000)

	// CompileAllocFactor multiplies a program's TreeSize into guest
	// heap bytes (AST + generated code + metadata).
	CompileAllocFactor = 8

	// ConnStateBytes is per-connection guest state (socket, TLS-less
	// HTTP parsing buffers).
	ConnStateBytes = int64(96_000)

	// InvokeScratchBytes is transient allocation per invocation
	// (request/response JSON, driver bookkeeping) beyond what user code
	// allocates.
	InvokeScratchBytes = int64(220_000)

	// HotWriteFraction is the fraction of a deployed snapshot's diff
	// pages the next invocation writes (runtime structures captured in
	// the diff — caches, counters — are mutated on their next use and
	// CoW back in). This is the mechanism behind AO shrinking *warm*
	// start times: smaller diffs mean fewer CoW faults per invocation.
	HotWriteFraction = 0.45

	// HotWriteCapPages bounds the hot rewrite set: the runtime's
	// mutable working set is finite, so deployments from the huge base
	// runtime snapshot do not rewrite 45% of a 110 MB image.
	HotWriteCapPages = 300

	// ResumeStateBytes is written by a UC immediately after deployment
	// resumes it: stacks, timers, scheduler bookkeeping, socket rebind.
	// It dominates the idle-UC marginal footprint that caps Table 3's
	// 54,000-UC density.
	ResumeStateBytes = int64(1_430_000)

	// NetAOExtraBytes / InterpAOExtraBytes are the extra pool and cache
	// depth the AO pass grows beyond plain first-use initialization
	// (pre-sizing for production load). They bloat the base snapshot —
	// Table 1's 109.6 → 114.5 MB — and are exactly the state that makes
	// descendant connects and dispatches cheap.
	NetAOExtraBytes    = int64(900_000)
	InterpAOExtraBytes = int64(1_100_000)

	// UCKernelMetaBytes is the kernel-side cost of one live UC: its
	// descriptor, event-context stacks, and proxy mappings. Part of the
	// marginal footprint that bounds Table 3's UC density.
	UCKernelMetaBytes = int64(48 * 4096)
)

// ---- Linux-side cost models (Table 3, §7 microbenchmarks) ----

var (
	// ProcessCreate is a Node.js process fork/exec + interpreter boot.
	ProcessCreate = 350 * time.Millisecond

	// ProcessIdleBytes is the marginal RSS of an idle Node.js process
	// (4200 instances in 88 GB).
	ProcessIdleBytes = int64(22_500_000)

	// ContainerCreateBase is Docker container creation with no other
	// containers on the node (the paper observed 541 ms).
	ContainerCreateBase = 541 * time.Millisecond

	// ContainerCreatePerExisting grows creation latency linearly with
	// the container population (541 ms → ~1.5 s at 1000 containers).
	ContainerCreatePerExisting = 950 * time.Microsecond

	// ContainerCreatePerParallel adds contention in the Docker daemon
	// per concurrent creation in flight. Calibrated to Table 3's
	// aggregate 5.3 creations/s at 16-way parallelism (the prose's
	// 8.5 s mean latency is not simultaneously satisfiable with the
	// table's rate; the table wins — see EXPERIMENTS.md).
	ContainerCreatePerParallel = 65 * time.Millisecond

	// DockerDaemonPool is the daemon's effective creation parallelism;
	// beyond it creations queue and thrash.
	DockerDaemonPool = 16

	// ContainerCreateThrash is added per concurrent creation beyond
	// the daemon pool — the regime the burst experiments push Linux
	// into, producing the paper's 10-60 s cold starts and timeouts.
	ContainerCreateThrash = 800 * time.Millisecond

	// ContainerIdleBytes is the marginal footprint of an idle Node.js
	// container (3000 instances in 88 GB).
	ContainerIdleBytes = int64(31_200_000)

	// ContainerDestroy tears down a container (cache eviction cost on
	// the Linux cold path).
	ContainerDestroy = 400 * time.Millisecond

	// MicroVMCreate boots a Firecracker microVM + guest kernel + the
	// container runtime + Node.js (paper: >3 s).
	MicroVMCreate = 3100 * time.Millisecond

	// MicroVMCreatePerParallel is the Kata/Docker-daemon contention per
	// concurrent microVM boot; it holds the aggregate 16-way creation
	// rate at Table 3's 1.3/s despite 16 workers.
	MicroVMCreatePerParallel = 610 * time.Millisecond

	// MicroVMIdleBytes is the marginal footprint of an idle microVM
	// (450 instances in 88 GB; >100 MB over the container).
	MicroVMIdleBytes = int64(208_000_000)

	// ProcessWarmInvoke / ContainerWarmInvoke are the in-instance costs
	// of running a cached NOP invocation on Linux.
	ProcessWarmInvoke   = 2 * time.Millisecond
	ContainerWarmInvoke = 2500 * time.Microsecond

	// ContainerPauseResume is unpausing a cached container (disabled in
	// the paper's throughput runs, used otherwise).
	ContainerPauseResume = 12 * time.Millisecond
)

// ---- Platform / network (§6 FaaS integration, §7 macro) ----

var (
	// ShimHop is the extra network hop between the OpenWhisk shim
	// process and the SEUSS OS VM (paper: ≈8 ms round trip added).
	ShimHop = 8 * time.Millisecond

	// ShimSerialize is the shim's single-TCP-connection serialization
	// per message; it caps UC creation at ≈128.6/s in Table 3.
	ShimSerialize = 7700 * time.Microsecond

	// ControllerOverhead is the OpenWhisk control-plane cost per
	// request (API gateway, controller, load balancer, Kafka publish).
	ControllerOverhead = 3 * time.Millisecond

	// InvokerOverhead is the Linux invoker's bookkeeping per request.
	InvokerOverhead = 1 * time.Millisecond

	// BridgePerEndpoint is the per-endpoint broadcast-processing cost
	// on the Linux bridge: one broadcast packet costs N × this (§7:
	// "a single broadcast packet ... must be processed in the kernel N
	// separate times"). Calibrated so drops begin just above the
	// 1024-endpoint default bridge limit and are crippling at 3000.
	BridgePerEndpoint = 1220 * time.Nanosecond

	// BridgeBroadcastRate is how many broadcast packets per second the
	// container network generates per active endpoint (ARP/DHCP churn).
	BridgeBroadcastRate = 0.45

	// BridgeDropThreshold is the fraction of a core the bridge soft-IRQ
	// path may consume before packets start dropping and connections
	// time out (the >1024-endpoint failure mode).
	BridgeDropThreshold = 0.50

	// ConnTimeout is how long a platform request waits on a dropped
	// connection before erroring.
	ConnTimeout = 60 * time.Second

	// ExternalHTTPLatency is the benchmark-visible latency to the
	// external HTTP endpoint used by IO-bound functions (network only;
	// the server's 250 ms think time is part of the workload).
	ExternalHTTPLatency = 500 * time.Microsecond
)

// ---- Testbed shape (§7 Experimental Infrastructure) ----

var (
	// NodeCores is the compute node VM's VCPU count.
	NodeCores = 16

	// NodeMemoryBytes is the compute node VM's memory (88 GB).
	NodeMemoryBytes = int64(88) << 30
)

// ---- OpenWhisk invoker path (macro calibration) ----

var (
	// InvokerSerialize is the Linux invoker's serialized per-message
	// dispatch cost (decode, schedule, collect). Together with the
	// shim's 7.7 ms it produces Figure 4's 21% Linux advantage at
	// small function-set sizes: both platforms are dispatch-bound
	// there, at 1/6.4 ms ≈ 156/s vs 1/7.7 ms ≈ 130/s.
	InvokerSerialize = 6400 * time.Microsecond

	// StemcellImport injects function code into a pre-warmed (stemcell
	// or just-created) Node.js container.
	StemcellImport = 80 * time.Millisecond

	// ActionQueueWait is how long the invoker queues a request on a
	// busy action before spawning an additional container for it.
	ActionQueueWait = 40 * time.Millisecond

	// ContainerCreateCPU is the node CPU one container creation burns
	// (dockerd, containerd, runc, network setup) concurrently with the
	// creation itself. During burst-driven creation storms this is
	// what starves the background stream — the gaps in Figures 6-8.
	// The thrash component above is daemon-internal queueing, not CPU.
	ContainerCreateCPU = 450 * time.Millisecond
)
