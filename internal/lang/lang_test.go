package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

// run evaluates source and returns the value of the last expression
// statement.
func run(t *testing.T, src string) Value {
	t.Helper()
	in := New(Hooks{})
	v, err := in.RunSource(src)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v
}

func runNum(t *testing.T, src string) float64 {
	t.Helper()
	v := run(t, src)
	n, ok := v.(float64)
	if !ok {
		t.Fatalf("%q = %v (%T), want number", src, v, v)
	}
	return n
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":          7,
		"(1 + 2) * 3":        9,
		"10 / 4":             2.5,
		"7 % 3":              1,
		"-3 + 1":             -2,
		"2 * 3 + 4 * 5":      26,
		"1 << 4":             16,
		"255 & 15":           15,
		"8 | 1":              9,
		"5 ^ 1":              4,
		"0x10 + 1":           17,
		"1.5e2":              150,
		"Math.pow(2, 10)":    1024,
		"Math.floor(3.7)":    3,
		"Math.max(1, 9, -4)": 9,
		"Math.min(1, 9, -4)": -4,
		"Math.abs(-5)":       5,
	}
	for src, want := range cases {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]string{
		`"a" + "b"`:                     "ab",
		`"n=" + 42`:                     "n=42",
		`"Hello".toUpperCase()`:         "HELLO",
		`"Hello".slice(1, 3)`:           "el",
		`"a,b,c".split(",").join("-")`:  "a-b-c",
		`"  x  ".trim()`:                "x",
		`"ab".repeat(3)`:                "ababab",
		`"hello".charAt(1)`:             "e",
		`typeof "x"`:                    "string",
		`typeof 1`:                      "number",
		`typeof undefinedName`:          "undefined",
		`typeof function(){}`:           "function",
		`JSON.stringify({a:1, b:[2]})`:  `{"a":1,"b":[2]}`,
		`JSON.parse('{"x": 5}').x + ""`: "5",
	}
	for src, want := range cases {
		v := run(t, src)
		if got := ToString(v); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestVariablesAndScope(t *testing.T) {
	src := `
		var x = 1;
		var y = 2;
		function f() { var x = 10; return x + y; }
		f() + x;
	`
	if got := runNum(t, src); got != 13 {
		t.Errorf("got %v", got)
	}
}

func TestClosures(t *testing.T) {
	src := `
		function counter() {
			var n = 0;
			return function() { n = n + 1; return n; };
		}
		var c = counter();
		c(); c();
		c();
	`
	if got := runNum(t, src); got != 3 {
		t.Errorf("closure counter = %v, want 3", got)
	}
}

func TestClosuresAreIndependent(t *testing.T) {
	src := `
		function mk(start) { return function() { start = start + 1; return start; }; }
		var a = mk(0);
		var b = mk(100);
		a(); a(); b();
		a() + b();
	`
	if got := runNum(t, src); got != 3+102 {
		t.Errorf("got %v", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
		var total = 0;
		for (var i = 0; i < 10; i++) {
			if (i % 2 === 0) { continue; }
			if (i === 9) { break; }
			total += i;
		}
		total;
	`
	if got := runNum(t, src); got != 1+3+5+7 {
		t.Errorf("got %v", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
		var n = 1;
		while (n < 100) { n = n * 2; }
		n;
	`
	if got := runNum(t, src); got != 128 {
		t.Errorf("got %v", got)
	}
}

func TestForOfAndForIn(t *testing.T) {
	src := `
		var sum = 0;
		for (var v of [1, 2, 3]) { sum += v; }
		var keys = "";
		for (var k in {a: 1, b: 2}) { keys += k; }
		sum + ":" + keys;
	`
	if got := ToString(run(t, src)); got != "6:ab" {
		t.Errorf("got %q", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
		function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
		fib(15);
	`
	if got := runNum(t, src); got != 610 {
		t.Errorf("fib(15) = %v", got)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	src := `
		var o = {name: "seuss", tags: ["fast", "dense"]};
		o.year = 2020;
		o["venue"] = "eurosys";
		o.tags.push("unikernel");
		o.name + "/" + o.year + "/" + o.venue + "/" + o.tags.length;
	`
	if got := ToString(run(t, src)); got != "seuss/2020/eurosys/3" {
		t.Errorf("got %q", got)
	}
}

func TestArrayMethods(t *testing.T) {
	cases := map[string]string{
		`[3,1,2].indexOf(1)`:                      "1",
		`[1,2,3].includes(2)`:                     "true",
		`[1,2,3].map(x => x * 2).join(",")`:       "2,4,6",
		`[1,2,3,4].filter(x => x % 2 === 0)[0]`:   "2",
		`[1,2,3].reduce((a, b) => a + b, 10)`:     "16",
		`[1,2,3].reduce((a, b) => a + b)`:         "6",
		`[1,2,3].slice(1).join(",")`:              "2,3",
		`[1,2].concat([3,4]).length`:              "4",
		`[1,2,3].reverse().join("")`:              "321",
		`var a = [1,2,3]; a.pop(); a.join(",")`:   "1,2",
		`var a = [1,2,3]; a.shift(); a.join("")`:  "23",
		`var a = []; a[4] = 1; a.length`:          "5",
		`var a = [1,2,3]; a.length = 1; a.join()`: "1",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestArrowFunctions(t *testing.T) {
	src := `
		var add = (a, b) => a + b;
		var sq = x => x * x;
		var block = (x) => { return x + 1; };
		add(1, 2) + sq(3) + block(4);
	`
	if got := runNum(t, src); got != 3+9+5 {
		t.Errorf("got %v", got)
	}
}

func TestTernaryAndLogical(t *testing.T) {
	cases := map[string]string{
		`true ? "a" : "b"`:   "a",
		`0 ? "a" : "b"`:      "b",
		`null && "x"`:        "null",
		`null || "fallback"`: "fallback",
		`"v" && "w"`:         "w",
		`1 === 1.0`:          "true",
		`"1" == 1`:           "true",
		`"1" === 1`:          "false",
		`null == undefined`:  "true",
		`null === undefined`: "false",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestThrowCatch(t *testing.T) {
	src := `
		var msg = "none";
		try {
			throw Error("boom");
		} catch (e) {
			msg = e.message;
		}
		msg;
	`
	if got := ToString(run(t, src)); got != "boom" {
		t.Errorf("got %q", got)
	}
}

func TestUncaughtThrow(t *testing.T) {
	in := New(Hooks{})
	_, err := in.RunSource(`throw "oops";`)
	te, ok := err.(*ThrowError)
	if !ok {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if ToString(te.Value) != "oops" {
		t.Errorf("thrown = %v", te.Value)
	}
}

func TestRuntimeErrors(t *testing.T) {
	for _, src := range []string{
		`undefinedVar + 1`,
		`null.prop`,
		`undefined[0]`,
		`(5)()`,
	} {
		in := New(Hooks{})
		if _, err := in.RunSource(src); err == nil {
			t.Errorf("%q did not error", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		`var = 5`,
		`function ({}`,
		`1 +`,
		`"unterminated`,
		`/* unterminated`,
		`{a: }`,
		`for (;;`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed without error", src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("%q error type %T", src, err)
		}
	}
}

func TestStepBudget(t *testing.T) {
	in := New(Hooks{})
	in.SetMaxSteps(1000)
	_, err := in.RunSource(`while (true) {}`)
	if err != ErrTooManySteps {
		t.Errorf("err = %v, want ErrTooManySteps", err)
	}
}

func TestConsoleLogHook(t *testing.T) {
	var lines []string
	in := New(Hooks{Output: func(s string) { lines = append(lines, s) }})
	if _, err := in.RunSource(`console.log("hello", 42, [1,2]);`); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != "hello 42 1,2" {
		t.Errorf("lines = %q", lines)
	}
}

func TestAllocHookCharged(t *testing.T) {
	var total int
	in := New(Hooks{Alloc: func(n int) { total += n }})
	if _, err := in.RunSource(`var o = {a: 1, b: "xx"}; var l = [1,2,3]; var s = "a" + "b";`); err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("no allocations charged")
	}
}

func TestStepHookCharged(t *testing.T) {
	var steps int
	in := New(Hooks{Step: func(n int) { steps += n }})
	if _, err := in.RunSource(`var x = 0; for (var i = 0; i < 10; i++) { x += i; }`); err != nil {
		t.Fatal(err)
	}
	if steps < 50 {
		t.Errorf("steps = %d, implausibly low", steps)
	}
}

func TestHTTPGetHook(t *testing.T) {
	in := New(Hooks{HTTPGet: func(url string) (string, error) {
		return "body-of-" + url, nil
	}})
	v, err := in.RunSource(`http.get("svc");`)
	if err != nil {
		t.Fatal(err)
	}
	if ToString(v) != "body-of-svc" {
		t.Errorf("got %v", v)
	}
}

func TestSpinAndSleepHooks(t *testing.T) {
	var spun, slept float64
	in := New(Hooks{
		Spin:  func(ms float64) { spun += ms },
		Sleep: func(ms float64) { slept += ms },
	})
	if _, err := in.RunSource(`spin(150); sleep(250);`); err != nil {
		t.Fatal(err)
	}
	if spun != 150 || slept != 250 {
		t.Errorf("spun=%v slept=%v", spun, slept)
	}
}

func TestCallGlobal(t *testing.T) {
	in := New(Hooks{})
	if _, err := in.RunSource(`function main(args) { return args.n * 2; }`); err != nil {
		t.Fatal(err)
	}
	argObj := NewObject()
	argObj.Set("n", 21.0)
	v, err := in.CallGlobal("main", []Value{argObj})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.(float64); n != 42 {
		t.Errorf("main = %v", v)
	}
}

func TestCallGlobalMissing(t *testing.T) {
	in := New(Hooks{})
	if _, err := in.CallGlobal("nope", nil); err == nil {
		t.Error("no error for missing global")
	}
}

func TestUpdateOperators(t *testing.T) {
	cases := map[string]float64{
		`var x = 1; x++; x`:             2,
		`var x = 1; ++x`:                2,
		`var x = 1; x++`:                1,
		`var x = 5; x--; x`:             4,
		`var a = [1]; a[0]++; a[0]`:     2,
		`var o = {n: 1}; o.n += 4; o.n`: 5,
		`var x = 10; x *= 3; x`:         30,
		`var x = 10; x /= 4; x`:         2.5,
	}
	for src, want := range cases {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestObjectKeys(t *testing.T) {
	src := `Object.keys({z: 1, a: 2, m: 3}).join(",")`
	if got := ToString(run(t, src)); got != "z,a,m" {
		t.Errorf("insertion order broken: %q", got)
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `
		// line comment
		var x = 1; /* block
		comment */ var y = 2;
		x + y;
	`
	if got := runNum(t, src); got != 3 {
		t.Errorf("got %v", got)
	}
}

func TestGuestSizeGrowsWithSource(t *testing.T) {
	small, err := Parse(`function f() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	bigSrc := `function f() { var a = 0; `
	for i := 0; i < 100; i++ {
		bigSrc += `a = a + ` + strings.Repeat("1", 3) + `; `
	}
	bigSrc += `return a; }`
	big, err := Parse(bigSrc)
	if err != nil {
		t.Fatal(err)
	}
	if TreeSize(big) <= TreeSize(small) {
		t.Errorf("TreeSize not monotone: %d <= %d", TreeSize(big), TreeSize(small))
	}
}

func TestTryArrowParamsBacktrack(t *testing.T) {
	// "(a + b)" must parse as a parenthesized expression, not arrow params.
	src := `var a = 1; var b = 2; (a + b) * 2;`
	if got := runNum(t, src); got != 6 {
		t.Errorf("got %v", got)
	}
}

// Property: the interpreter is deterministic — same program, same result.
func TestQuickDeterministicEval(t *testing.T) {
	prop := func(a, b int8, op uint8) bool {
		ops := []string{"+", "-", "*", "|", "&", "^"}
		src := ToString(float64(a)) + " " + ops[int(op)%len(ops)] + " " + ToString(float64(b)) + ";"
		i1 := New(Hooks{})
		i2 := New(Hooks{})
		v1, e1 := i1.RunSource(src)
		v2, e2 := i2.RunSource(src)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		return e1 != nil || StrictEquals(v1, v2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: integer arithmetic matches Go for small operands.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	prop := func(a, b int16) bool {
		in := New(Hooks{})
		src := formatNumber(float64(a)) + " + " + formatNumber(float64(b)) + ";"
		v, err := in.RunSource(src)
		if err != nil {
			return false
		}
		return v.(float64) == float64(a)+float64(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves structure for generated objects.
func TestQuickJSONRoundTrip(t *testing.T) {
	prop := func(n uint8, s string) bool {
		if len(s) > 20 {
			return true
		}
		for _, r := range s {
			// Keep to printable ASCII without quoting hazards: escape
			// fidelity for exotic runes is not what this property tests.
			if r < 0x20 || r > 0x7e || r == '"' || r == '\\' || r == '\'' {
				return true
			}
		}
		in := New(Hooks{})
		src := `JSON.stringify(JSON.parse(JSON.stringify({n: ` + formatNumber(float64(n)) + `, s: "` + s + `"})));`
		v, err := in.RunSource(src)
		if err != nil {
			return false
		}
		want := `{"n":` + formatNumber(float64(n)) + `,"s":"` + s + `"}`
		return ToString(v) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSwitchStatement(t *testing.T) {
	cases := map[string]string{
		// Basic matching with break.
		`var r = ""; switch (2) { case 1: r = "one"; break; case 2: r = "two"; break; default: r = "other"; } r;`: "two",
		// Default arm.
		`var r = ""; switch (9) { case 1: r = "one"; break; default: r = "other"; } r;`: "other",
		// Fallthrough accumulates.
		`var r = ""; switch (1) { case 1: r += "a"; case 2: r += "b"; break; case 3: r += "c"; } r;`: "ab",
		// Fallthrough into default.
		`var r = ""; switch (3) { case 3: r += "c"; default: r += "d"; } r;`: "cd",
		// Strict matching: "1" does not match 1.
		`var r = "none"; switch ("1") { case 1: r = "number"; break; default: r = "default"; } r;`: "default",
		// Expression cases.
		`var x = 5; var r = 0; switch (x) { case 2 + 3: r = 42; break; } r;`: "42",
		// No match, no default: nothing runs.
		`var r = "untouched"; switch (7) { case 1: r = "no"; break; } r;`: "untouched",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestSwitchInsideLoop(t *testing.T) {
	src := `
		var evens = 0;
		var odds = 0;
		for (var i = 0; i < 10; i++) {
			switch (i % 2) {
			case 0: evens++; break;
			default: odds++;
			}
		}
		evens * 10 + odds;
	`
	if got := runNum(t, src); got != 55 {
		t.Errorf("got %v", got)
	}
}

func TestDoWhile(t *testing.T) {
	// Body runs at least once even when the condition is false.
	src := `var n = 0; do { n++; } while (false); n;`
	if got := runNum(t, src); got != 1 {
		t.Errorf("got %v", got)
	}
	src = `var n = 1; do { n = n * 3; } while (n < 100); n;`
	if got := runNum(t, src); got != 243 {
		t.Errorf("got %v", got)
	}
	// break and continue work.
	src = `var n = 0; var iter = 0; do { iter++; if (iter % 2 === 0) { continue; } n++; if (iter >= 9) { break; } } while (true); n;`
	if got := runNum(t, src); got != 5 {
		t.Errorf("got %v", got)
	}
}

func TestSwitchSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		`switch (1) { case 1 }`,     // missing colon
		`switch (1) { foo: 1; }`,    // not case/default
		`switch { case 1: break; }`, // missing tag parens
		`do { } until (true);`,      // bad keyword
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
}

func TestTemplateLiterals(t *testing.T) {
	cases := map[string]string{
		"`plain`":                          "plain",
		"``":                               "",
		"var x = 7; `x is ${x}`":           "x is 7",
		"`${1 + 2} and ${3 * 4}`":          "3 and 12",
		"var o = {n: \"go\"}; `hi ${o.n}`": "hi go",
		"`outer ${`inner ${1}`}!`":         "outer inner 1!",
		"`a${[1,2].join(\"-\")}b`":         "a1-2b",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestTemplateSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"`unterminated",
		"`bad ${1 +`",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
}

func TestExtendedStringMethods(t *testing.T) {
	cases := map[string]string{
		`"a-b-c".replace("-", "+")`:    "a+b-c",
		`"a-b-c".replaceAll("-", "+")`: "a+b+c",
		`"hello".substring(1, 3)`:      "el",
		`"5".padStart(3, "0")`:         "005",
		`"5".padEnd(3, "x")`:           "5xx",
		`"abc".padStart(2)`:            "abc",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestExtendedArrayMethods(t *testing.T) {
	cases := map[string]string{
		`[3,1,2].sort().join(",")`:                                    "1,2,3",
		`[10,9,80].sort().join(",")`:                                  "10,80,9", // JS default string sort
		`[10,9,80].sort((a,b) => a - b).join(",")`:                    "9,10,80",
		`[1,2,3].some(x => x > 2)`:                                    "true",
		`[1,2,3].some(x => x > 5)`:                                    "false",
		`[1,2,3].every(x => x > 0)`:                                   "true",
		`[1,2,3].every(x => x > 1)`:                                   "false",
		`[1,2,3,4].find(x => x % 2 === 0)`:                            "2",
		`[[1,2],[3],[4]].flat().join(",")`:                            "1,2,3,4",
		`Array.isArray([1])`:                                          "true",
		`Array.isArray("no")`:                                         "false",
		`var o = Object.assign({a:1}, {b:2}, {a:9}); o.a + "," + o.b`: "9,2",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestSortStability(t *testing.T) {
	src := `
		var items = [{k: "b", i: 1}, {k: "a", i: 2}, {k: "b", i: 3}, {k: "a", i: 4}];
		items.sort((x, y) => x.k < y.k ? -1 : (x.k > y.k ? 1 : 0));
		items.map(e => e.i).join(",");
	`
	if got := ToString(run(t, src)); got != "2,4,1,3" {
		t.Errorf("stable sort order = %q", got)
	}
}

func TestValueCoercionMatrix(t *testing.T) {
	numCases := map[string]float64{
		`+"42"`:      42,
		`+""`:        0,
		`+true`:      1,
		`+false`:     0,
		`+null`:      0,
		`+" 7 "`:     7,
		`1 + +"1.5"`: 2.5,
	}
	for src, want := range numCases {
		if got := runNum(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if got := runNum(t, `+"nope"`); got == got { // NaN check
		t.Errorf(`+"nope" = %v, want NaN`, got)
	}
}

func TestToStringForms(t *testing.T) {
	cases := map[string]string{
		`"" + [1,[2,3]]`:          "1,2,3",
		`"" + {}`:                 "[object Object]",
		`"" + null`:               "null",
		`"" + undefined`:          "undefined",
		`"" + 1e21`:               "1e+21",
		`"" + 0.5`:                "0.5",
		`"" + function named(){}`: "function named",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestLooseVsStrictEquality(t *testing.T) {
	cases := map[string]string{
		`0 == false`:          "true",
		`0 === false`:         "false",
		`"" == 0`:             "true",
		`null == 0`:           "false",
		`undefined == null`:   "true",
		`[] === []`:           "false", // reference equality
		`var a = []; a === a`: "true",
	}
	for src, want := range cases {
		if got := ToString(run(t, src)); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}
