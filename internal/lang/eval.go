package lang

import (
	"errors"
	"fmt"
)

// Hooks connect the interpreter to its host. Inside a UC the host is
// the simulated runtime: allocations are charged to the UC's address
// space, steps advance the virtual clock, and http.get traverses the
// simulated network proxy. All fields are optional; nil hooks make the
// interpreter a plain standalone evaluator (used by unit tests).
type Hooks struct {
	// Alloc charges n bytes of guest heap (values, environments,
	// compiled code).
	Alloc func(n int)
	// Step charges n abstract interpreter steps (CPU time).
	Step func(n int)
	// Output receives console.log lines.
	Output func(s string)
	// HTTPGet performs an outbound HTTP request from the guest; used by
	// the IO-bound workload functions. Blocks in virtual time.
	HTTPGet func(url string) (string, error)
	// Now returns milliseconds since an arbitrary epoch (Date.now).
	Now func() float64
	// Spin charges ms of pure CPU burn (the CPU-bound workload
	// functions call spin() rather than looping millions of real
	// iterations).
	Spin func(ms float64)
	// Sleep blocks the guest for ms without burning CPU.
	Sleep func(ms float64)
	// Random returns a deterministic uniform sample for Math.random.
	Random func() float64
}

// Interp evaluates MiniJS programs.
type Interp struct {
	globals  *Env
	hooks    Hooks
	steps    int64
	maxSteps int64
}

// ErrTooManySteps aborts runaway scripts (the platform's execution
// time limit).
var ErrTooManySteps = errors.New("minijs: step budget exhausted")

// DefaultStepBudget is the interpreter's lifetime step budget before a
// caller installs a per-invocation limit (LimitSteps).
const DefaultStepBudget = 200_000_000

// control-flow sentinels, implemented as error values.
type breakErr struct{}
type continueErr struct{}

func (breakErr) Error() string    { return "break outside loop" }
func (continueErr) Error() string { return "continue outside loop" }

type returnErr struct{ v Value }

func (returnErr) Error() string { return "return outside function" }

// ThrowError carries a thrown MiniJS value through Go error returns.
type ThrowError struct{ Value Value }

// Error implements the error interface.
func (t *ThrowError) Error() string { return "minijs: uncaught " + ToString(t.Value) }

// New returns an interpreter with the standard builtins installed.
func New(hooks Hooks) *Interp {
	in := &Interp{
		globals:  NewEnv(nil),
		hooks:    hooks,
		maxSteps: DefaultStepBudget,
	}
	in.installBuiltins()
	return in
}

// SetMaxSteps overrides the default step budget (0 disables the limit).
func (in *Interp) SetMaxSteps(n int64) { in.maxSteps = n }

// LimitSteps caps execution at n steps *beyond those already
// consumed* — the per-invocation deadline form: steps spent by earlier
// invocations in this interpreter's lifetime do not count against the
// new budget. n <= 0 removes the limit.
func (in *Interp) LimitSteps(n int64) {
	if n <= 0 {
		in.maxSteps = 0
		return
	}
	in.maxSteps = in.steps + n
}

// Steps returns the steps consumed so far.
func (in *Interp) Steps() int64 { return in.steps }

// Globals returns the global scope (the driver script pokes values in).
func (in *Interp) Globals() *Env { return in.globals }

func (in *Interp) step(n int) error {
	in.steps += int64(n)
	if in.hooks.Step != nil {
		in.hooks.Step(n)
	}
	if in.maxSteps > 0 && in.steps > in.maxSteps {
		return ErrTooManySteps
	}
	return nil
}

func (in *Interp) alloc(n int) {
	if in.hooks.Alloc != nil {
		in.hooks.Alloc(n)
	}
}

// Run parses nothing — callers Parse first — and executes the program
// in the global scope, charging its compiled size to the guest heap.
// The value of the last expression statement is returned.
func (in *Interp) Run(prog *Program) (Value, error) {
	in.alloc(TreeSize(prog))
	var last Value = Undefined{}
	for _, stmt := range prog.Body {
		v, err := in.execStmt(stmt, in.globals)
		if err != nil {
			switch err.(type) {
			case returnErr, breakErr, continueErr:
				return nil, fmt.Errorf("minijs: %v at top level", err)
			}
			return nil, err
		}
		if es, ok := stmt.(*ExprStmt); ok && es != nil {
			last = v
		}
	}
	return last, nil
}

// RunSource is Parse + Run.
func (in *Interp) RunSource(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return in.Run(prog)
}

// CallGlobal invokes a global function by name.
func (in *Interp) CallGlobal(name string, args []Value) (Value, error) {
	fn, ok := in.globals.Get(name)
	if !ok {
		return nil, fmt.Errorf("minijs: %s is not defined", name)
	}
	return in.CallValue(fn, Undefined{}, args)
}

// CallValue invokes a function value with this and args.
func (in *Interp) CallValue(fn Value, this Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case *Closure:
		env := NewEnv(f.Env)
		in.alloc(48 + 16*len(args))
		for i, p := range f.Fn.Params {
			if i < len(args) {
				env.Define(p, args[i])
			} else {
				env.Define(p, Undefined{})
			}
		}
		env.Define("arguments", &Array{Elems: args})
		for _, stmt := range f.Fn.Body {
			if _, err := in.execStmt(stmt, env); err != nil {
				if r, ok := err.(returnErr); ok {
					return r.v, nil
				}
				return nil, err
			}
		}
		return Undefined{}, nil
	case *Builtin:
		return f.Fn(in, this, args)
	default:
		return nil, &ThrowError{Value: ToString(fn) + " is not a function"}
	}
}

// execStmt executes one statement and returns its value (for ExprStmt).
func (in *Interp) execStmt(n Node, env *Env) (Value, error) {
	if err := in.step(1); err != nil {
		return nil, err
	}
	switch t := n.(type) {
	case *VarDecl:
		var v Value = Undefined{}
		if t.Init != nil {
			var err error
			v, err = in.eval(t.Init, env)
			if err != nil {
				return nil, err
			}
		}
		in.alloc(24)
		env.Define(t.Name, v)
		return Undefined{}, nil
	case *ExprStmt:
		return in.eval(t.Expr, env)
	case *Return:
		var v Value = Undefined{}
		if t.Value != nil {
			var err error
			v, err = in.eval(t.Value, env)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnErr{v: v}
	case *If:
		test, err := in.eval(t.Test, env)
		if err != nil {
			return nil, err
		}
		if Truthy(test) {
			return nil, in.execBlock(t.Then, env)
		}
		return nil, in.execBlock(t.Else, env)
	case *While:
		for {
			test, err := in.eval(t.Test, env)
			if err != nil {
				return nil, err
			}
			if !Truthy(test) {
				return Undefined{}, nil
			}
			if err := in.execBlock(t.Body, env); err != nil {
				if _, ok := err.(breakErr); ok {
					return Undefined{}, nil
				}
				if _, ok := err.(continueErr); ok {
					continue
				}
				return nil, err
			}
		}
	case *For:
		loopEnv := NewEnv(env)
		if t.Init != nil {
			if _, err := in.execStmt(t.Init, loopEnv); err != nil {
				return nil, err
			}
		}
		for {
			if t.Test != nil {
				test, err := in.eval(t.Test, loopEnv)
				if err != nil {
					return nil, err
				}
				if !Truthy(test) {
					return Undefined{}, nil
				}
			}
			err := in.execBlock(t.Body, loopEnv)
			if err != nil {
				if _, ok := err.(breakErr); ok {
					return Undefined{}, nil
				}
				if _, ok := err.(continueErr); !ok {
					return nil, err
				}
			}
			if t.Post != nil {
				if _, err := in.execStmt(t.Post, loopEnv); err != nil {
					return nil, err
				}
			}
		}
	case *ForIn:
		return in.execForIn(t, env)
	case *DoWhile:
		for {
			if err := in.execBlock(t.Body, NewEnv(env)); err != nil {
				if _, ok := err.(breakErr); ok {
					return Undefined{}, nil
				}
				if _, ok := err.(continueErr); !ok {
					return nil, err
				}
			}
			test, err := in.eval(t.Test, env)
			if err != nil {
				return nil, err
			}
			if !Truthy(test) {
				return Undefined{}, nil
			}
		}
	case *Switch:
		return in.execSwitch(t, env)
	case *Break:
		return nil, breakErr{}
	case *Continue:
		return nil, continueErr{}
	case *Throw:
		v, err := in.eval(t.Value, env)
		if err != nil {
			return nil, err
		}
		return nil, &ThrowError{Value: v}
	case *Try:
		err := in.execBlock(t.Body, NewEnv(env))
		if err != nil {
			if te, ok := err.(*ThrowError); ok {
				catchEnv := NewEnv(env)
				if t.CatchVar != "" {
					catchEnv.Define(t.CatchVar, te.Value)
				}
				return nil, in.execBlock(t.CatchBody, catchEnv)
			}
			return nil, err
		}
		return Undefined{}, nil
	case *Block:
		return nil, in.execBlock(t.Body, NewEnv(env))
	default:
		// Expression used in statement position (e.g. for-post).
		return in.eval(n, env)
	}
}

func (in *Interp) execBlock(stmts []Node, env *Env) error {
	for _, s := range stmts {
		if _, err := in.execStmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

// execSwitch evaluates a switch with JS semantics: === matching,
// fallthrough until break, and a trailing default that participates in
// fallthrough.
func (in *Interp) execSwitch(t *Switch, env *Env) (Value, error) {
	tag, err := in.eval(t.Tag, env)
	if err != nil {
		return nil, err
	}
	swEnv := NewEnv(env)
	matched := -1
	for i, cs := range t.Cases {
		v, err := in.eval(cs.Value, swEnv)
		if err != nil {
			return nil, err
		}
		if StrictEquals(tag, v) {
			matched = i
			break
		}
	}
	var bodies [][]Node
	if matched >= 0 {
		for i := matched; i < len(t.Cases); i++ { // fallthrough
			bodies = append(bodies, t.Cases[i].Body)
		}
	}
	if t.Default != nil && (matched >= 0 || matched == -1) {
		// The default arm runs on fallthrough past the last case, or
		// when nothing matched. (MiniJS requires default to be last.)
		if matched >= 0 {
			bodies = append(bodies, t.Default)
		} else {
			bodies = [][]Node{t.Default}
		}
	}
	for _, body := range bodies {
		if err := in.execBlock(body, swEnv); err != nil {
			if _, ok := err.(breakErr); ok {
				return Undefined{}, nil
			}
			return nil, err
		}
	}
	return Undefined{}, nil
}

func (in *Interp) execForIn(t *ForIn, env *Env) (Value, error) {
	src, err := in.eval(t.Expr, env)
	if err != nil {
		return nil, err
	}
	var items []Value
	if t.Of {
		switch s := src.(type) {
		case *Array:
			items = append(items, s.Elems...)
		case string:
			for _, r := range s {
				items = append(items, string(r))
			}
		default:
			return nil, &ThrowError{Value: "for-of over non-iterable"}
		}
	} else {
		switch s := src.(type) {
		case *Object:
			for _, k := range s.Keys() {
				items = append(items, k)
			}
		case *Array:
			for i := range s.Elems {
				items = append(items, formatNumber(float64(i)))
			}
		default:
			return nil, &ThrowError{Value: "for-in over non-object"}
		}
	}
	loopEnv := NewEnv(env)
	loopEnv.Define(t.Var, Undefined{})
	for _, item := range items {
		loopEnv.Define(t.Var, item)
		if err := in.execBlock(t.Body, loopEnv); err != nil {
			if _, ok := err.(breakErr); ok {
				return Undefined{}, nil
			}
			if _, ok := err.(continueErr); ok {
				continue
			}
			return nil, err
		}
	}
	return Undefined{}, nil
}

// eval evaluates an expression.
func (in *Interp) eval(n Node, env *Env) (Value, error) {
	if err := in.step(1); err != nil {
		return nil, err
	}
	switch t := n.(type) {
	case *NumberLit:
		return t.Value, nil
	case *StringLit:
		return t.Value, nil
	case *BoolLit:
		return t.Value, nil
	case *NullLit:
		return Null{}, nil
	case *UndefinedLit:
		return Undefined{}, nil
	case *Ident:
		if v, ok := env.Get(t.Name); ok {
			return v, nil
		}
		return nil, &ThrowError{Value: t.Name + " is not defined"}
	case *ArrayLit:
		arr := &Array{Elems: make([]Value, 0, len(t.Elems))}
		in.alloc(24 + 16*len(t.Elems))
		for _, e := range t.Elems {
			v, err := in.eval(e, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *ObjectLit:
		obj := NewObject()
		in.alloc(48)
		for i, k := range t.Keys {
			v, err := in.eval(t.Values[i], env)
			if err != nil {
				return nil, err
			}
			in.alloc(32 + len(k))
			obj.Set(k, v)
		}
		return obj, nil
	case *FuncLit:
		in.alloc(64)
		return &Closure{Fn: t, Env: env}, nil
	case *Unary:
		return in.evalUnary(t, env)
	case *Binary:
		return in.evalBinary(t, env)
	case *Logical:
		lhs, err := in.eval(t.LHS, env)
		if err != nil {
			return nil, err
		}
		if t.Op == "&&" {
			if !Truthy(lhs) {
				return lhs, nil
			}
		} else if Truthy(lhs) {
			return lhs, nil
		}
		return in.eval(t.RHS, env)
	case *Cond:
		test, err := in.eval(t.Test, env)
		if err != nil {
			return nil, err
		}
		if Truthy(test) {
			return in.eval(t.Then, env)
		}
		return in.eval(t.Else, env)
	case *Assign:
		return in.evalAssign(t, env)
	case *Update:
		return in.evalUpdate(t, env)
	case *Call:
		return in.evalCall(t, env)
	case *Member:
		obj, err := in.eval(t.Obj, env)
		if err != nil {
			return nil, err
		}
		return in.getMember(obj, t.Name)
	case *Index:
		obj, err := in.eval(t.Obj, env)
		if err != nil {
			return nil, err
		}
		key, err := in.eval(t.Key, env)
		if err != nil {
			return nil, err
		}
		return in.getIndex(obj, key)
	}
	return nil, fmt.Errorf("minijs: cannot evaluate %T", n)
}

func (in *Interp) evalUnary(t *Unary, env *Env) (Value, error) {
	v, err := in.eval(t.Expr, env)
	if err != nil {
		if t.Op == "typeof" {
			// typeof of an undefined name is "undefined", not an error.
			if te, ok := err.(*ThrowError); ok {
				if s, ok := te.Value.(string); ok && len(s) > 14 && s[len(s)-14:] == "is not defined" {
					return "undefined", nil
				}
			}
		}
		return nil, err
	}
	switch t.Op {
	case "-":
		return -ToNumber(v), nil
	case "+":
		return ToNumber(v), nil
	case "!":
		return !Truthy(v), nil
	case "~":
		return float64(^int64(ToNumber(v))), nil
	case "typeof":
		return TypeOf(v), nil
	}
	return nil, fmt.Errorf("minijs: unknown unary %q", t.Op)
}

func (in *Interp) evalBinary(t *Binary, env *Env) (Value, error) {
	lhs, err := in.eval(t.LHS, env)
	if err != nil {
		return nil, err
	}
	rhs, err := in.eval(t.RHS, env)
	if err != nil {
		return nil, err
	}
	return applyBinary(in, t.Op, lhs, rhs)
}

func applyBinary(in *Interp, op string, lhs, rhs Value) (Value, error) {
	switch op {
	case "+":
		ls, lok := lhs.(string)
		rs, rok := rhs.(string)
		if lok || rok {
			if !lok {
				ls = ToString(lhs)
			}
			if !rok {
				rs = ToString(rhs)
			}
			in.alloc(len(ls) + len(rs))
			return ls + rs, nil
		}
		return ToNumber(lhs) + ToNumber(rhs), nil
	case "-":
		return ToNumber(lhs) - ToNumber(rhs), nil
	case "*":
		return ToNumber(lhs) * ToNumber(rhs), nil
	case "/":
		return ToNumber(lhs) / ToNumber(rhs), nil
	case "%":
		l, r := int64(ToNumber(lhs)), int64(ToNumber(rhs))
		if r == 0 {
			return nan(), nil
		}
		return float64(l % r), nil
	case "==":
		return LooseEquals(lhs, rhs), nil
	case "!=":
		return !LooseEquals(lhs, rhs), nil
	case "===":
		return StrictEquals(lhs, rhs), nil
	case "!==":
		return !StrictEquals(lhs, rhs), nil
	case "<", ">", "<=", ">=":
		if ls, ok := lhs.(string); ok {
			if rs, ok := rhs.(string); ok {
				return compareStrings(op, ls, rs), nil
			}
		}
		return compareNumbers(op, ToNumber(lhs), ToNumber(rhs)), nil
	case "&":
		return float64(int64(ToNumber(lhs)) & int64(ToNumber(rhs))), nil
	case "|":
		return float64(int64(ToNumber(lhs)) | int64(ToNumber(rhs))), nil
	case "^":
		return float64(int64(ToNumber(lhs)) ^ int64(ToNumber(rhs))), nil
	case "<<":
		return float64(int64(ToNumber(lhs)) << (uint64(ToNumber(rhs)) & 63)), nil
	case ">>":
		return float64(int64(ToNumber(lhs)) >> (uint64(ToNumber(rhs)) & 63)), nil
	}
	return nil, fmt.Errorf("minijs: unknown operator %q", op)
}

func compareNumbers(op string, l, r float64) bool {
	switch op {
	case "<":
		return l < r
	case ">":
		return l > r
	case "<=":
		return l <= r
	default:
		return l >= r
	}
}

func compareStrings(op, l, r string) bool {
	switch op {
	case "<":
		return l < r
	case ">":
		return l > r
	case "<=":
		return l <= r
	default:
		return l >= r
	}
}

func (in *Interp) evalAssign(t *Assign, env *Env) (Value, error) {
	val, err := in.eval(t.Value, env)
	if err != nil {
		return nil, err
	}
	if t.Op != "=" {
		cur, err := in.eval(t.Target, env)
		if err != nil {
			return nil, err
		}
		val, err = applyBinary(in, t.Op[:1], cur, val)
		if err != nil {
			return nil, err
		}
	}
	if err := in.assignTo(t.Target, val, env); err != nil {
		return nil, err
	}
	return val, nil
}

func (in *Interp) assignTo(target Node, val Value, env *Env) error {
	switch tg := target.(type) {
	case *Ident:
		env.Assign(tg.Name, val)
		return nil
	case *Member:
		obj, err := in.eval(tg.Obj, env)
		if err != nil {
			return err
		}
		return in.setMember(obj, tg.Name, val)
	case *Index:
		obj, err := in.eval(tg.Obj, env)
		if err != nil {
			return err
		}
		key, err := in.eval(tg.Key, env)
		if err != nil {
			return err
		}
		return in.setIndex(obj, key, val)
	}
	return fmt.Errorf("minijs: invalid assignment target %T", target)
}

func (in *Interp) evalUpdate(t *Update, env *Env) (Value, error) {
	cur, err := in.eval(t.Target, env)
	if err != nil {
		return nil, err
	}
	old := ToNumber(cur)
	var next float64
	if t.Op == "++" {
		next = old + 1
	} else {
		next = old - 1
	}
	if err := in.assignTo(t.Target, next, env); err != nil {
		return nil, err
	}
	if t.Postfix {
		return old, nil
	}
	return next, nil
}

func (in *Interp) evalCall(t *Call, env *Env) (Value, error) {
	// Method call: evaluate receiver once.
	var this Value = Undefined{}
	var fn Value
	var err error
	switch callee := t.Fn.(type) {
	case *Member:
		this, err = in.eval(callee.Obj, env)
		if err != nil {
			return nil, err
		}
		fn, err = in.getMember(this, callee.Name)
		if err != nil {
			return nil, err
		}
	case *Index:
		this, err = in.eval(callee.Obj, env)
		if err != nil {
			return nil, err
		}
		key, kerr := in.eval(callee.Key, env)
		if kerr != nil {
			return nil, kerr
		}
		fn, err = in.getIndex(this, key)
		if err != nil {
			return nil, err
		}
	default:
		fn, err = in.eval(t.Fn, env)
		if err != nil {
			return nil, err
		}
	}
	args := make([]Value, 0, len(t.Args))
	for _, a := range t.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if err := in.step(4); err != nil {
		return nil, err
	}
	return in.CallValue(fn, this, args)
}
