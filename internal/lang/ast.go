package lang

// Node is any AST node. Nodes report an approximate in-guest size so
// the runtime can charge compiled code to UC memory the way V8's
// bytecode and metadata occupy a Node.js heap.
type Node interface {
	// GuestSize returns the approximate bytes this node occupies in the
	// guest heap once compiled (the node itself, excluding children).
	GuestSize() int
}

// ---- Expressions ----

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a string literal.
type StringLit struct{ Value string }

// BoolLit is true/false.
type BoolLit struct{ Value bool }

// NullLit is null.
type NullLit struct{}

// UndefinedLit is undefined.
type UndefinedLit struct{}

// Ident is a variable reference.
type Ident struct{ Name string }

// ArrayLit is [a, b, ...].
type ArrayLit struct{ Elems []Node }

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	Keys   []string
	Values []Node
}

// FuncLit is function(params){body} or (params) => expr/body.
type FuncLit struct {
	Name   string // optional
	Params []string
	Body   []Node
}

// Unary is op expr (e.g. -x, !x, typeof x).
type Unary struct {
	Op   string
	Expr Node
}

// Binary is lhs op rhs.
type Binary struct {
	Op       string
	LHS, RHS Node
}

// Logical is && / || with short-circuit evaluation.
type Logical struct {
	Op       string
	LHS, RHS Node
}

// Cond is the ternary a ? b : c.
type Cond struct {
	Test, Then, Else Node
}

// Assign is target op value where op is =, +=, etc. Target is an Ident,
// Member, or Index.
type Assign struct {
	Op     string
	Target Node
	Value  Node
}

// Update is ++x / x++ / --x / x--.
type Update struct {
	Op      string // "++" or "--"
	Target  Node
	Postfix bool
}

// Call is fn(args).
type Call struct {
	Fn   Node
	Args []Node
}

// Member is obj.name.
type Member struct {
	Obj  Node
	Name string
}

// Index is obj[expr].
type Index struct {
	Obj Node
	Key Node
}

// ---- Statements ----

// VarDecl declares one variable (var/let/const are treated alike).
type VarDecl struct {
	Name string
	Init Node // may be nil
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct{ Expr Node }

// Return is a return statement.
type Return struct{ Value Node } // Value may be nil

// If is if/else.
type If struct {
	Test Node
	Then []Node
	Else []Node // nil when absent
}

// While is a while loop.
type While struct {
	Test Node
	Body []Node
}

// For is a C-style for loop.
type For struct {
	Init Node // statement or nil
	Test Node // nil = true
	Post Node // nil
	Body []Node
}

// ForIn is for (x of arr) / for (x in obj).
type ForIn struct {
	Var  string
	Of   bool // true: of (values), false: in (keys)
	Expr Node
	Body []Node
}

// Switch is a switch statement with === case matching.
type Switch struct {
	Tag     Node
	Cases   []SwitchCase
	Default []Node // nil when absent
}

// SwitchCase is one case arm.
type SwitchCase struct {
	Value Node
	Body  []Node
}

// DoWhile is a do { } while (cond) loop.
type DoWhile struct {
	Body []Node
	Test Node
}

// Break breaks the innermost loop or switch.
type Break struct{}

// Continue continues the innermost loop.
type Continue struct{}

// Throw raises a value as an error.
type Throw struct{ Value Node }

// Try is try/catch.
type Try struct {
	Body      []Node
	CatchVar  string
	CatchBody []Node
}

// Block is a lexical block.
type Block struct{ Body []Node }

// Program is a parsed compilation unit.
type Program struct {
	Body []Node
	// Source is retained so snapshot tooling can report code size.
	Source string
}

// GuestSize implementations: coarse per-node costs approximating AST +
// bytecode footprint of a real engine. Values chosen so realistic
// source compiles to roughly 8-12x its byte length of guest metadata,
// in line with observed V8 heap costs for parsed-and-compiled code.

func (n *NumberLit) GuestSize() int    { return 16 }
func (n *StringLit) GuestSize() int    { return 24 + len(n.Value) }
func (n *BoolLit) GuestSize() int      { return 8 }
func (n *NullLit) GuestSize() int      { return 8 }
func (n *UndefinedLit) GuestSize() int { return 8 }
func (n *Ident) GuestSize() int        { return 16 + len(n.Name) }
func (n *ArrayLit) GuestSize() int     { return 24 }
func (n *ObjectLit) GuestSize() int {
	sz := 32
	for _, k := range n.Keys {
		sz += 8 + len(k)
	}
	return sz
}
func (n *FuncLit) GuestSize() int {
	sz := 96 + len(n.Name)
	for _, p := range n.Params {
		sz += 8 + len(p)
	}
	return sz
}
func (n *Unary) GuestSize() int    { return 16 }
func (n *Binary) GuestSize() int   { return 24 }
func (n *Logical) GuestSize() int  { return 24 }
func (n *Cond) GuestSize() int     { return 24 }
func (n *Assign) GuestSize() int   { return 24 }
func (n *Update) GuestSize() int   { return 16 }
func (n *Call) GuestSize() int     { return 32 }
func (n *Member) GuestSize() int   { return 24 + len(n.Name) }
func (n *Index) GuestSize() int    { return 24 }
func (n *VarDecl) GuestSize() int  { return 24 + len(n.Name) }
func (n *ExprStmt) GuestSize() int { return 8 }
func (n *Return) GuestSize() int   { return 16 }
func (n *If) GuestSize() int       { return 32 }
func (n *While) GuestSize() int    { return 32 }
func (n *For) GuestSize() int      { return 48 }
func (n *ForIn) GuestSize() int    { return 48 + len(n.Var) }
func (n *Switch) GuestSize() int {
	return 48 + 16*len(n.Cases)
}
func (n *DoWhile) GuestSize() int  { return 32 }
func (n *Break) GuestSize() int    { return 8 }
func (n *Continue) GuestSize() int { return 8 }
func (n *Throw) GuestSize() int    { return 16 }
func (n *Try) GuestSize() int      { return 48 + len(n.CatchVar) }
func (n *Block) GuestSize() int    { return 16 }
func (n *Program) GuestSize() int  { return 64 }

// TreeSize returns the total guest bytes of a subtree.
func TreeSize(n Node) int {
	if n == nil {
		return 0
	}
	sz := n.GuestSize()
	for _, c := range children(n) {
		sz += TreeSize(c)
	}
	return sz
}

func children(n Node) []Node {
	switch t := n.(type) {
	case *ArrayLit:
		return t.Elems
	case *ObjectLit:
		return t.Values
	case *FuncLit:
		return t.Body
	case *Unary:
		return []Node{t.Expr}
	case *Binary:
		return []Node{t.LHS, t.RHS}
	case *Logical:
		return []Node{t.LHS, t.RHS}
	case *Cond:
		return []Node{t.Test, t.Then, t.Else}
	case *Assign:
		return []Node{t.Target, t.Value}
	case *Update:
		return []Node{t.Target}
	case *Call:
		return append([]Node{t.Fn}, t.Args...)
	case *Member:
		return []Node{t.Obj}
	case *Index:
		return []Node{t.Obj, t.Key}
	case *VarDecl:
		if t.Init != nil {
			return []Node{t.Init}
		}
	case *ExprStmt:
		return []Node{t.Expr}
	case *Return:
		if t.Value != nil {
			return []Node{t.Value}
		}
	case *If:
		out := []Node{t.Test}
		out = append(out, t.Then...)
		return append(out, t.Else...)
	case *While:
		return append([]Node{t.Test}, t.Body...)
	case *DoWhile:
		return append(append([]Node{}, t.Body...), t.Test)
	case *Switch:
		out := []Node{t.Tag}
		for _, cs := range t.Cases {
			out = append(out, cs.Value)
			out = append(out, cs.Body...)
		}
		return append(out, t.Default...)
	case *For:
		var out []Node
		for _, c := range []Node{t.Init, t.Test, t.Post} {
			if c != nil {
				out = append(out, c)
			}
		}
		return append(out, t.Body...)
	case *ForIn:
		return append([]Node{t.Expr}, t.Body...)
	case *Throw:
		return []Node{t.Value}
	case *Try:
		return append(append([]Node{}, t.Body...), t.CatchBody...)
	case *Block:
		return t.Body
	case *Program:
		return t.Body
	}
	return nil
}
