// Package lang implements MiniJS, the high-level scripting language
// interpreted inside SEUSS unikernel contexts.
//
// The paper runs serverless functions on Node.js and Python ports
// linked into Rumprun unikernels. We cannot embed V8, so MiniJS stands
// in: a JavaScript-flavored language with closures, objects, arrays,
// prototypal method dispatch on builtins, and a small standard library.
// What matters for the reproduction is not language completeness but
// that the interpreter is *real*: importing a function parses source
// into an AST, evaluation allocates values, and — through the Hooks
// interface — every allocation lands in the UC's simulated address
// space and every evaluation step advances the virtual clock. Snapshot
// diffs, AO effects, and compile overheads then emerge from running
// code rather than from constants.
package lang

import "fmt"

// TokenKind enumerates lexical token types.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNumber
	TokString
	TokIdent
	TokKeyword
	TokPunct
	TokTemplate
)

var kindNames = map[TokenKind]string{
	TokEOF:      "EOF",
	TokNumber:   "number",
	TokString:   "string",
	TokIdent:    "identifier",
	TokKeyword:  "keyword",
	TokPunct:    "punctuation",
	TokTemplate: "template",
}

// String implements fmt.Stringer.
func (k TokenKind) String() string { return kindNames[k] }

// Token is one lexical token with source position for error reporting.
type Token struct {
	Kind TokenKind
	Text string
	Num  float64 // valid when Kind == TokNumber
	Line int
	Col  int
}

// String implements fmt.Stringer.
func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true,
	"return": true, "if": true, "else": true, "while": true,
	"for": true, "break": true, "continue": true, "true": true,
	"false": true, "null": true, "undefined": true, "new": true,
	"typeof": true, "throw": true, "try": true, "catch": true,
	"in": true, "of": true, "switch": true, "case": true,
	"default": true, "do": true,
}

// SyntaxError is returned by Parse for malformed source.
type SyntaxError struct {
	Msg  string
	Line int
	Col  int
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minijs: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}
