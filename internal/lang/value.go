package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a MiniJS runtime value. Concrete types:
//
//	float64    numbers
//	string     strings
//	bool       booleans
//	Null       null
//	Undefined  undefined
//	*Object    objects
//	*Array     arrays
//	*Closure   user functions
//	*Builtin   host functions
type Value interface{}

// Null is the MiniJS null value.
type Null struct{}

// Undefined is the MiniJS undefined value.
type Undefined struct{}

// Object is a MiniJS object with insertion-ordered keys.
type Object struct {
	props map[string]Value
	keys  []string
}

// NewObject returns an empty object.
func NewObject() *Object {
	return &Object{props: make(map[string]Value)}
}

// Get returns the property value, or Undefined{}.
func (o *Object) Get(key string) Value {
	if v, ok := o.props[key]; ok {
		return v
	}
	return Undefined{}
}

// Has reports whether the property exists.
func (o *Object) Has(key string) bool {
	_, ok := o.props[key]
	return ok
}

// Set stores a property, preserving first-insertion key order.
func (o *Object) Set(key string, v Value) {
	if _, ok := o.props[key]; !ok {
		o.keys = append(o.keys, key)
	}
	o.props[key] = v
}

// Delete removes a property.
func (o *Object) Delete(key string) {
	if _, ok := o.props[key]; !ok {
		return
	}
	delete(o.props, key)
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

// Keys returns the property names in insertion order.
func (o *Object) Keys() []string {
	out := make([]string, len(o.keys))
	copy(out, o.keys)
	return out
}

// Len returns the number of properties.
func (o *Object) Len() int { return len(o.keys) }

// Array is a MiniJS array.
type Array struct {
	Elems []Value
}

// Closure is a user-defined function together with its captured
// environment.
type Closure struct {
	Fn  *FuncLit
	Env *Env
}

// Builtin is a host-implemented function.
type Builtin struct {
	Name string
	Fn   func(in *Interp, this Value, args []Value) (Value, error)
}

// Env is a lexical scope.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a scope chained to parent (nil for the global scope).
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[string]Value), parent: parent}
}

// Get resolves a name up the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a name in this scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Assign rebinds the nearest existing binding; if none exists the name
// is defined globally (sloppy-mode JS behavior, which serverless driver
// scripts rely on).
func (e *Env) Assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			s.vars[name] = v
			return
		}
	}
}

// Truthy converts a value to boolean using JS semantics.
func Truthy(v Value) bool {
	switch t := v.(type) {
	case bool:
		return t
	case float64:
		return t != 0 && t == t // false for 0 and NaN
	case string:
		return t != ""
	case Null, Undefined, nil:
		return false
	default:
		return true
	}
}

// TypeOf returns the typeof string for a value.
func TypeOf(v Value) string {
	switch v.(type) {
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	case Undefined, nil:
		return "undefined"
	case Null, *Object, *Array:
		return "object"
	case *Closure, *Builtin:
		return "function"
	}
	return "unknown"
}

// ToString converts a value to its display string (console.log / string
// concatenation semantics).
func ToString(v Value) string {
	switch t := v.(type) {
	case nil, Undefined:
		return "undefined"
	case Null:
		return "null"
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(t)
	case string:
		return t
	case *Array:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = ToString(e)
		}
		return strings.Join(parts, ",")
	case *Object:
		return "[object Object]"
	case *Closure:
		if t.Fn.Name != "" {
			return "function " + t.Fn.Name
		}
		return "function"
	case *Builtin:
		return "function " + t.Name
	}
	return fmt.Sprintf("%v", v)
}

func formatNumber(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ToNumber converts a value to a number using JS coercion.
func ToNumber(v Value) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case bool:
		if t {
			return 1
		}
		return 0
	case string:
		s := strings.TrimSpace(t)
		if s == "" {
			return 0
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
		return nan()
	case Null:
		return 0
	}
	return nan()
}

func nan() float64 {
	var z float64
	return z / z * 0 // avoid importing math just for NaN
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	switch at := a.(type) {
	case float64:
		bt, ok := b.(float64)
		return ok && at == bt
	case string:
		bt, ok := b.(string)
		return ok && at == bt
	case bool:
		bt, ok := b.(bool)
		return ok && at == bt
	case Null:
		_, ok := b.(Null)
		return ok
	case Undefined, nil:
		switch b.(type) {
		case Undefined, nil:
			return true
		}
		return false
	default:
		return a == b // reference equality for objects/arrays/functions
	}
}

// LooseEquals implements == with the common coercions.
func LooseEquals(a, b Value) bool {
	if StrictEquals(a, b) {
		return true
	}
	an, aNullish := nullish(a)
	bn, bNullish := nullish(b)
	if aNullish || bNullish {
		return an && bn
	}
	// number/string/bool cross-coercion
	switch a.(type) {
	case float64, string, bool:
		switch b.(type) {
		case float64, string, bool:
			return ToNumber(a) == ToNumber(b)
		}
	}
	return false
}

func nullish(v Value) (isNullish, _ bool) {
	switch v.(type) {
	case Null, Undefined, nil:
		return true, true
	}
	return false, false
}

// JSONStringify renders a value as JSON; functions and undefined render
// as null inside containers, matching JS closely enough for driver use.
func JSONStringify(v Value) string {
	var sb strings.Builder
	writeJSON(&sb, v)
	return sb.String()
}

func writeJSON(sb *strings.Builder, v Value) {
	switch t := v.(type) {
	case nil, Undefined, *Closure, *Builtin:
		sb.WriteString("null")
	case Null:
		sb.WriteString("null")
	case bool:
		if t {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case float64:
		sb.WriteString(formatNumber(t))
	case string:
		sb.WriteString(strconv.Quote(t))
	case *Array:
		sb.WriteByte('[')
		for i, e := range t.Elems {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeJSON(sb, e)
		}
		sb.WriteByte(']')
	case *Object:
		sb.WriteByte('{')
		for i, k := range t.keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(k))
			sb.WriteByte(':')
			writeJSON(sb, t.props[k])
		}
		sb.WriteByte('}')
	default:
		sb.WriteString("null")
	}
}

// SortedKeys returns object keys sorted lexicographically (test helper
// for deterministic output).
func SortedKeys(o *Object) []string {
	ks := o.Keys()
	sort.Strings(ks)
	return ks
}
