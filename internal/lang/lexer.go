package lang

import (
	"strconv"
	"strings"
)

// lexer converts MiniJS source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(msg string) *SyntaxError {
	return &SyntaxError{Msg: msg, Line: l.line, Col: l.col}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-byte punctuation, longest first.
var puncts = []string{
	"===", "!==", "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=",
	"+=", "-=", "*=", "/=", "%=", "++", "--", "=>", "<<", ">>",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}",
	"[", "]", ",", ";", ":", ".", "?", "&", "|", "^", "~",
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.peekByte()
	switch {
	case isDigit(c) || (c == '.' && isDigit(l.peekByteAt(1))):
		return l.lexNumber(line, col)
	case c == '"' || c == '\'':
		return l.lexString(line, col)
	case c == '`':
		return l.lexTemplate(line, col)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, l.errf("unexpected character " + strconv.QuoteRune(rune(c)))
}

func (l *lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	if l.peekByte() == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHex(l.peekByte()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return Token{}, l.errf("bad hex literal")
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Num: float64(v), Line: line, Col: col}, nil
	}
	for l.pos < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	if l.peekByte() == '.' && isDigit(l.peekByteAt(1)) {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		save := l.pos
		l.advance()
		if c := l.peekByte(); c == '+' || c == '-' {
			l.advance()
		}
		if !isDigit(l.peekByte()) {
			l.pos = save // not an exponent; leave for the parser to reject
		} else {
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, l.errf("bad number literal " + strconv.Quote(text))
	}
	return Token{Kind: TokNumber, Text: text, Num: v, Line: line, Col: col}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) lexString(line, col int) (Token, error) {
	quote := l.advance()
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated string")
		}
		c := l.advance()
		if c == quote {
			break
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				return Token{}, l.errf("unknown escape \\" + string(e))
			}
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil
}

// lexTemplate tokenizes a template literal into a synthetic token whose
// Text carries the raw body; the parser splits the ${...} holes.
func (l *lexer) lexTemplate(line, col int) (Token, error) {
	l.advance() // opening backtick
	var sb strings.Builder
	depth := 0
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated template literal")
		}
		c := l.advance()
		if c == '`' && depth == 0 {
			break
		}
		if c == '$' && l.peekByte() == '{' {
			depth++
		}
		if c == '}' && depth > 0 {
			depth--
		}
		if c == '\\' && l.peekByte() == '`' {
			sb.WriteByte(l.advance())
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokTemplate, Text: sb.String(), Line: line, Col: col}, nil
}

// lexAll tokenizes the whole source (including the trailing EOF token).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
