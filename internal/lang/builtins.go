package lang

import (
	"fmt"
	"math"
	"strings"
)

// getMember implements obj.name, including method dispatch on native
// strings and arrays.
func (in *Interp) getMember(obj Value, name string) (Value, error) {
	switch o := obj.(type) {
	case *Object:
		return o.Get(name), nil
	case *Array:
		if name == "length" {
			return float64(len(o.Elems)), nil
		}
		if m, ok := arrayMethods[name]; ok {
			return bindMethod(name, o, m), nil
		}
		return Undefined{}, nil
	case string:
		if name == "length" {
			return float64(len(o)), nil
		}
		if m, ok := stringMethods[name]; ok {
			return bindMethod(name, o, m), nil
		}
		return Undefined{}, nil
	case Null, Undefined, nil:
		return nil, &ThrowError{Value: fmt.Sprintf("cannot read property %q of %s", name, ToString(obj))}
	default:
		return Undefined{}, nil
	}
}

func (in *Interp) setMember(obj Value, name string, val Value) error {
	switch o := obj.(type) {
	case *Object:
		in.alloc(32 + len(name))
		o.Set(name, val)
		return nil
	case *Array:
		if name == "length" {
			n := int(ToNumber(val))
			if n < 0 {
				n = 0
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined{})
			}
			o.Elems = o.Elems[:n]
			return nil
		}
		return nil // ignore expando props on arrays
	default:
		return &ThrowError{Value: fmt.Sprintf("cannot set property %q on %s", name, TypeOf(obj))}
	}
}

func (in *Interp) getIndex(obj, key Value) (Value, error) {
	switch o := obj.(type) {
	case *Array:
		if ks, ok := key.(string); ok {
			return in.getMember(o, ks)
		}
		i := int(ToNumber(key))
		if i < 0 || i >= len(o.Elems) {
			return Undefined{}, nil
		}
		return o.Elems[i], nil
	case *Object:
		return o.Get(ToString(key)), nil
	case string:
		if ks, ok := key.(string); ok {
			return in.getMember(o, ks)
		}
		i := int(ToNumber(key))
		if i < 0 || i >= len(o) {
			return Undefined{}, nil
		}
		return string(o[i]), nil
	case Null, Undefined, nil:
		return nil, &ThrowError{Value: "cannot index " + ToString(obj)}
	default:
		return Undefined{}, nil
	}
}

func (in *Interp) setIndex(obj, key, val Value) error {
	switch o := obj.(type) {
	case *Array:
		i := int(ToNumber(key))
		if i < 0 {
			return &ThrowError{Value: "negative array index"}
		}
		for len(o.Elems) <= i {
			o.Elems = append(o.Elems, Undefined{})
		}
		in.alloc(16)
		o.Elems[i] = val
		return nil
	case *Object:
		ks := ToString(key)
		in.alloc(32 + len(ks))
		o.Set(ks, val)
		return nil
	default:
		return &ThrowError{Value: "cannot index-assign " + TypeOf(obj)}
	}
}

type methodFn func(in *Interp, this Value, args []Value) (Value, error)

func bindMethod(name string, this Value, m methodFn) *Builtin {
	return &Builtin{Name: name, Fn: func(in *Interp, _ Value, args []Value) (Value, error) {
		return m(in, this, args)
	}}
}

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined{}
}

// arrayMethods is populated in init to break the initialization cycle
// through Interp.CallValue.
var arrayMethods map[string]methodFn

func init() {
	arrayMethods = map[string]methodFn{
		"push": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			in.alloc(16 * len(args))
			a.Elems = append(a.Elems, args...)
			return float64(len(a.Elems)), nil
		},
		"pop": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			if len(a.Elems) == 0 {
				return Undefined{}, nil
			}
			v := a.Elems[len(a.Elems)-1]
			a.Elems = a.Elems[:len(a.Elems)-1]
			return v, nil
		},
		"shift": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			if len(a.Elems) == 0 {
				return Undefined{}, nil
			}
			v := a.Elems[0]
			a.Elems = a.Elems[1:]
			return v, nil
		},
		"join": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			sep := ","
			if s, ok := arg(args, 0).(string); ok {
				sep = s
			}
			parts := make([]string, len(a.Elems))
			for i, e := range a.Elems {
				parts[i] = ToString(e)
			}
			out := strings.Join(parts, sep)
			in.alloc(len(out))
			return out, nil
		},
		"slice": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			start, end := sliceBounds(len(a.Elems), arg(args, 0), arg(args, 1))
			out := &Array{Elems: append([]Value{}, a.Elems[start:end]...)}
			in.alloc(24 + 16*len(out.Elems))
			return out, nil
		},
		"indexOf": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			for i, e := range a.Elems {
				if StrictEquals(e, arg(args, 0)) {
					return float64(i), nil
				}
			}
			return float64(-1), nil
		},
		"includes": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			for _, e := range a.Elems {
				if StrictEquals(e, arg(args, 0)) {
					return true, nil
				}
			}
			return false, nil
		},
		"concat": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			out := &Array{Elems: append([]Value{}, a.Elems...)}
			for _, v := range args {
				if b, ok := v.(*Array); ok {
					out.Elems = append(out.Elems, b.Elems...)
				} else {
					out.Elems = append(out.Elems, v)
				}
			}
			in.alloc(24 + 16*len(out.Elems))
			return out, nil
		},
		"map": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			out := &Array{Elems: make([]Value, 0, len(a.Elems))}
			in.alloc(24 + 16*len(a.Elems))
			for i, e := range a.Elems {
				v, err := in.CallValue(arg(args, 0), Undefined{}, []Value{e, float64(i)})
				if err != nil {
					return nil, err
				}
				out.Elems = append(out.Elems, v)
			}
			return out, nil
		},
		"filter": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			out := &Array{}
			for i, e := range a.Elems {
				v, err := in.CallValue(arg(args, 0), Undefined{}, []Value{e, float64(i)})
				if err != nil {
					return nil, err
				}
				if Truthy(v) {
					out.Elems = append(out.Elems, e)
				}
			}
			in.alloc(24 + 16*len(out.Elems))
			return out, nil
		},
		"forEach": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			for i, e := range a.Elems {
				if _, err := in.CallValue(arg(args, 0), Undefined{}, []Value{e, float64(i)}); err != nil {
					return nil, err
				}
			}
			return Undefined{}, nil
		},
		"reduce": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			acc := arg(args, 1)
			start := 0
			if _, isUndef := acc.(Undefined); isUndef && len(args) < 2 {
				if len(a.Elems) == 0 {
					return nil, &ThrowError{Value: "reduce of empty array with no initial value"}
				}
				acc = a.Elems[0]
				start = 1
			}
			for i := start; i < len(a.Elems); i++ {
				v, err := in.CallValue(arg(args, 0), Undefined{}, []Value{acc, a.Elems[i], float64(i)})
				if err != nil {
					return nil, err
				}
				acc = v
			}
			return acc, nil
		},
		"reverse": func(in *Interp, this Value, args []Value) (Value, error) {
			a := this.(*Array)
			for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
				a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
			}
			return a, nil
		},
	}
}

func sliceBounds(n int, startV, endV Value) (int, int) {
	start, end := 0, n
	if _, u := startV.(Undefined); !u {
		start = clampIndex(int(ToNumber(startV)), n)
	}
	if _, u := endV.(Undefined); !u {
		end = clampIndex(int(ToNumber(endV)), n)
	}
	if start > end {
		start = end
	}
	return start, end
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

var stringMethods = map[string]methodFn{
	"split": func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		sep, _ := arg(args, 0).(string)
		var parts []string
		if sep == "" && len(args) > 0 {
			for _, r := range s {
				parts = append(parts, string(r))
			}
		} else if len(args) == 0 {
			parts = []string{s}
		} else {
			parts = strings.Split(s, sep)
		}
		out := &Array{Elems: make([]Value, len(parts))}
		for i, p := range parts {
			out.Elems[i] = p
		}
		in.alloc(24 + 16*len(parts) + len(s))
		return out, nil
	},
	"toUpperCase": func(in *Interp, this Value, args []Value) (Value, error) {
		s := strings.ToUpper(this.(string))
		in.alloc(len(s))
		return s, nil
	},
	"toLowerCase": func(in *Interp, this Value, args []Value) (Value, error) {
		s := strings.ToLower(this.(string))
		in.alloc(len(s))
		return s, nil
	},
	"indexOf": func(in *Interp, this Value, args []Value) (Value, error) {
		sub, _ := arg(args, 0).(string)
		return float64(strings.Index(this.(string), sub)), nil
	},
	"includes": func(in *Interp, this Value, args []Value) (Value, error) {
		sub, _ := arg(args, 0).(string)
		return strings.Contains(this.(string), sub), nil
	},
	"slice": func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		start, end := sliceBounds(len(s), arg(args, 0), arg(args, 1))
		out := s[start:end]
		in.alloc(len(out))
		return out, nil
	},
	"charAt": func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		i := int(ToNumber(arg(args, 0)))
		if i < 0 || i >= len(s) {
			return "", nil
		}
		return string(s[i]), nil
	},
	"charCodeAt": func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		i := int(ToNumber(arg(args, 0)))
		if i < 0 || i >= len(s) {
			return nan(), nil
		}
		return float64(s[i]), nil
	},
	"trim": func(in *Interp, this Value, args []Value) (Value, error) {
		return strings.TrimSpace(this.(string)), nil
	},
	"repeat": func(in *Interp, this Value, args []Value) (Value, error) {
		n := int(ToNumber(arg(args, 0)))
		if n < 0 {
			return nil, &ThrowError{Value: "invalid repeat count"}
		}
		s := strings.Repeat(this.(string), n)
		in.alloc(len(s))
		return s, nil
	},
	"startsWith": func(in *Interp, this Value, args []Value) (Value, error) {
		sub, _ := arg(args, 0).(string)
		return strings.HasPrefix(this.(string), sub), nil
	},
	"endsWith": func(in *Interp, this Value, args []Value) (Value, error) {
		sub, _ := arg(args, 0).(string)
		return strings.HasSuffix(this.(string), sub), nil
	},
}

// installBuiltins populates the global scope: console, JSON, Math,
// Object, Date, plus the host bridge functions (http, spin, sleep).
func (in *Interp) installBuiltins() {
	g := in.globals

	console := NewObject()
	console.Set("log", &Builtin{Name: "console.log", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for n, a := range args {
			parts[n] = ToString(a)
		}
		if i.hooks.Output != nil {
			i.hooks.Output(strings.Join(parts, " "))
		}
		return Undefined{}, nil
	}})
	console.Set("error", console.Get("log"))
	g.Define("console", console)

	jsonObj := NewObject()
	jsonObj.Set("stringify", &Builtin{Name: "JSON.stringify", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		s := JSONStringify(arg(args, 0))
		i.alloc(len(s))
		return s, nil
	}})
	jsonObj.Set("parse", &Builtin{Name: "JSON.parse", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		s, ok := arg(args, 0).(string)
		if !ok {
			return nil, &ThrowError{Value: "JSON.parse requires a string"}
		}
		v, err := parseJSON(i, s)
		if err != nil {
			return nil, &ThrowError{Value: err.Error()}
		}
		return v, nil
	}})
	g.Define("JSON", jsonObj)

	mathObj := NewObject()
	num1 := func(name string, f func(float64) float64) {
		mathObj.Set(name, &Builtin{Name: "Math." + name, Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
			return f(ToNumber(arg(args, 0))), nil
		}})
	}
	num1("floor", math.Floor)
	num1("ceil", math.Ceil)
	num1("round", math.Round)
	num1("abs", math.Abs)
	num1("sqrt", math.Sqrt)
	num1("log", math.Log)
	num1("exp", math.Exp)
	num1("sin", math.Sin)
	num1("cos", math.Cos)
	mathObj.Set("pow", &Builtin{Name: "Math.pow", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		return math.Pow(ToNumber(arg(args, 0)), ToNumber(arg(args, 1))), nil
	}})
	mathObj.Set("max", &Builtin{Name: "Math.max", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, ToNumber(a))
		}
		return out, nil
	}})
	mathObj.Set("min", &Builtin{Name: "Math.min", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, ToNumber(a))
		}
		return out, nil
	}})
	mathObj.Set("random", &Builtin{Name: "Math.random", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		if i.hooks.Random != nil {
			return i.hooks.Random(), nil
		}
		return 0.5, nil // deterministic default
	}})
	mathObj.Set("PI", math.Pi)
	g.Define("Math", mathObj)

	objectObj := NewObject()
	objectObj.Set("keys", &Builtin{Name: "Object.keys", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		o, ok := arg(args, 0).(*Object)
		if !ok {
			return &Array{}, nil
		}
		ks := o.Keys()
		out := &Array{Elems: make([]Value, len(ks))}
		for n, k := range ks {
			out.Elems[n] = k
		}
		i.alloc(24 + 16*len(ks))
		return out, nil
	}})
	objectObj.Set("values", &Builtin{Name: "Object.values", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		o, ok := arg(args, 0).(*Object)
		if !ok {
			return &Array{}, nil
		}
		out := &Array{}
		for _, k := range o.Keys() {
			out.Elems = append(out.Elems, o.Get(k))
		}
		i.alloc(24 + 16*len(out.Elems))
		return out, nil
	}})
	objectObj.Set("assign", &Builtin{Name: "Object.assign", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		dst, ok := arg(args, 0).(*Object)
		if !ok {
			return nil, &ThrowError{Value: "Object.assign target must be an object"}
		}
		for _, src := range args[1:] {
			if so, ok := src.(*Object); ok {
				for _, k := range so.Keys() {
					i.alloc(32 + len(k))
					dst.Set(k, so.Get(k))
				}
			}
		}
		return dst, nil
	}})
	g.Define("Object", objectObj)

	arrayObj := NewObject()
	arrayObj.Set("isArray", &Builtin{Name: "Array.isArray", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		_, ok := arg(args, 0).(*Array)
		return ok, nil
	}})
	g.Define("Array", arrayObj)

	dateObj := NewObject()
	dateObj.Set("now", &Builtin{Name: "Date.now", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		if i.hooks.Now != nil {
			return i.hooks.Now(), nil
		}
		return 0.0, nil
	}})
	g.Define("Date", dateObj)

	// Host bridge: the workload corpus calls these.
	httpObj := NewObject()
	httpObj.Set("get", &Builtin{Name: "http.get", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		url, _ := arg(args, 0).(string)
		if i.hooks.HTTPGet == nil {
			return nil, &ThrowError{Value: "http.get: no network available"}
		}
		body, err := i.hooks.HTTPGet(url)
		if err != nil {
			return nil, &ThrowError{Value: "http.get: " + err.Error()}
		}
		i.alloc(len(body))
		return body, nil
	}})
	g.Define("http", httpObj)

	g.Define("spin", &Builtin{Name: "spin", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		if i.hooks.Spin != nil {
			i.hooks.Spin(ToNumber(arg(args, 0)))
		}
		return Undefined{}, nil
	}})
	g.Define("sleep", &Builtin{Name: "sleep", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		if i.hooks.Sleep != nil {
			i.hooks.Sleep(ToNumber(arg(args, 0)))
		}
		return Undefined{}, nil
	}})
	g.Define("parseInt", &Builtin{Name: "parseInt", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		return math.Trunc(ToNumber(arg(args, 0))), nil
	}})
	g.Define("parseFloat", &Builtin{Name: "parseFloat", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		return ToNumber(arg(args, 0)), nil
	}})
	g.Define("String", &Builtin{Name: "String", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		return ToString(arg(args, 0)), nil
	}})
	g.Define("Number", &Builtin{Name: "Number", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		return ToNumber(arg(args, 0)), nil
	}})
	g.Define("isNaN", &Builtin{Name: "isNaN", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		n := ToNumber(arg(args, 0))
		return n != n, nil
	}})
	g.Define("Error", &Builtin{Name: "Error", Fn: func(i *Interp, _ Value, args []Value) (Value, error) {
		o := NewObject()
		o.Set("message", arg(args, 0))
		i.alloc(64)
		return o, nil
	}})
}

// extraStringMethods and extraArrayMethods extend the method tables
// with the remainder of the commonly-used surface (replace, substring,
// padding; sort, some/every, flat).
func init() {
	stringMethods["replace"] = func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		old, _ := arg(args, 0).(string)
		nw := ToString(arg(args, 1))
		out := strings.Replace(s, old, nw, 1)
		in.alloc(len(out))
		return out, nil
	}
	stringMethods["replaceAll"] = func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		old, _ := arg(args, 0).(string)
		nw := ToString(arg(args, 1))
		out := strings.ReplaceAll(s, old, nw)
		in.alloc(len(out))
		return out, nil
	}
	stringMethods["substring"] = stringMethods["slice"]
	stringMethods["padStart"] = func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		n := int(ToNumber(arg(args, 0)))
		pad := " "
		if p, ok := arg(args, 1).(string); ok && p != "" {
			pad = p
		}
		for len(s) < n {
			s = pad + s
			if len(s) > n {
				s = s[len(s)-n:]
			}
		}
		in.alloc(len(s))
		return s, nil
	}
	stringMethods["padEnd"] = func(in *Interp, this Value, args []Value) (Value, error) {
		s := this.(string)
		n := int(ToNumber(arg(args, 0)))
		pad := " "
		if p, ok := arg(args, 1).(string); ok && p != "" {
			pad = p
		}
		for len(s) < n {
			s = s + pad
			if len(s) > n {
				s = s[:n]
			}
		}
		in.alloc(len(s))
		return s, nil
	}

	arrayMethods["sort"] = func(in *Interp, this Value, args []Value) (Value, error) {
		a := this.(*Array)
		cmp, hasCmp := arg(args, 0).(*Closure)
		var sortErr error
		sortStable(a.Elems, func(x, y Value) bool {
			if sortErr != nil {
				return false
			}
			if hasCmp {
				v, err := in.CallValue(cmp, Undefined{}, []Value{x, y})
				if err != nil {
					sortErr = err
					return false
				}
				return ToNumber(v) < 0
			}
			return ToString(x) < ToString(y) // JS default: string order
		})
		if sortErr != nil {
			return nil, sortErr
		}
		return a, nil
	}
	arrayMethods["some"] = func(in *Interp, this Value, args []Value) (Value, error) {
		a := this.(*Array)
		for i, e := range a.Elems {
			v, err := in.CallValue(arg(args, 0), Undefined{}, []Value{e, float64(i)})
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				return true, nil
			}
		}
		return false, nil
	}
	arrayMethods["every"] = func(in *Interp, this Value, args []Value) (Value, error) {
		a := this.(*Array)
		for i, e := range a.Elems {
			v, err := in.CallValue(arg(args, 0), Undefined{}, []Value{e, float64(i)})
			if err != nil {
				return nil, err
			}
			if !Truthy(v) {
				return false, nil
			}
		}
		return true, nil
	}
	arrayMethods["find"] = func(in *Interp, this Value, args []Value) (Value, error) {
		a := this.(*Array)
		for i, e := range a.Elems {
			v, err := in.CallValue(arg(args, 0), Undefined{}, []Value{e, float64(i)})
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				return e, nil
			}
		}
		return Undefined{}, nil
	}
	arrayMethods["flat"] = func(in *Interp, this Value, args []Value) (Value, error) {
		a := this.(*Array)
		out := &Array{}
		for _, e := range a.Elems {
			if inner, ok := e.(*Array); ok {
				out.Elems = append(out.Elems, inner.Elems...)
			} else {
				out.Elems = append(out.Elems, e)
			}
		}
		in.alloc(24 + 16*len(out.Elems))
		return out, nil
	}
}

// sortStable is an insertion sort: stable, no reflection, fine for the
// array sizes guest functions use.
func sortStable(v []Value, less func(a, b Value) bool) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && less(v[j], v[j-1]); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
