package lang

import "fmt"

// parser is a recursive-descent / Pratt parser for MiniJS.
type parser struct {
	toks []Token
	pos  int
}

// Parse compiles MiniJS source into a Program. This is the "import and
// compile the function code" step of a cold invocation.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Source: src}
	for !p.at(TokEOF, "") {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, stmt)
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, &SyntaxError{
		Msg:  fmt.Sprintf("expected %q, found %q", want, t.Text),
		Line: t.Line, Col: t.Col,
	}
}

func (p *parser) errHere(msg string) error {
	t := p.cur()
	return &SyntaxError{Msg: msg, Line: t.Line, Col: t.Col}
}

// ---- statements ----

func (p *parser) statement() (Node, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "var", "let", "const":
			return p.varDecl()
		case "function":
			return p.funcDecl()
		case "return":
			p.next()
			var val Node
			if !p.at(TokPunct, ";") && !p.at(TokPunct, "}") && !p.at(TokEOF, "") {
				v, err := p.expression()
				if err != nil {
					return nil, err
				}
				val = v
			}
			p.accept(TokPunct, ";")
			return &Return{Value: val}, nil
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "for":
			return p.forStmt()
		case "break":
			p.next()
			p.accept(TokPunct, ";")
			return &Break{}, nil
		case "continue":
			p.next()
			p.accept(TokPunct, ";")
			return &Continue{}, nil
		case "throw":
			p.next()
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.accept(TokPunct, ";")
			return &Throw{Value: v}, nil
		case "try":
			return p.tryStmt()
		case "switch":
			return p.switchStmt()
		case "do":
			return p.doWhileStmt()
		}
	}
	if p.at(TokPunct, "{") {
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Block{Body: body}, nil
	}
	if p.accept(TokPunct, ";") {
		return &Block{}, nil // empty statement
	}
	expr, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.accept(TokPunct, ";")
	return &ExprStmt{Expr: expr}, nil
}

func (p *parser) varDecl() (Node, error) {
	p.next() // var/let/const
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	var init Node
	if p.accept(TokPunct, "=") {
		init, err = p.assignExpr()
		if err != nil {
			return nil, err
		}
	}
	// Comma-separated declarations desugar into a block.
	if p.accept(TokPunct, ",") {
		rest, err := p.varDeclTail()
		if err != nil {
			return nil, err
		}
		return &Block{Body: append([]Node{&VarDecl{Name: name.Text, Init: init}}, rest...)}, nil
	}
	p.accept(TokPunct, ";")
	return &VarDecl{Name: name.Text, Init: init}, nil
}

func (p *parser) varDeclTail() ([]Node, error) {
	var out []Node
	for {
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		var init Node
		if p.accept(TokPunct, "=") {
			init, err = p.assignExpr()
			if err != nil {
				return nil, err
			}
		}
		out = append(out, &VarDecl{Name: name.Text, Init: init})
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	p.accept(TokPunct, ";")
	return out, nil
}

func (p *parser) funcDecl() (Node, error) {
	p.next() // function
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	fn, err := p.funcRest(name.Text)
	if err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.Text, Init: fn}, nil
}

// funcRest parses "(params) { body }" after the function keyword/name.
func (p *parser) funcRest(name string) (*FuncLit, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(TokPunct, ")") {
		id, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		params = append(params, id.Text)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncLit{Name: name, Params: params, Body: body}, nil
}

func (p *parser) block() ([]Node, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var body []Node
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, p.errHere("unterminated block")
		}
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, stmt)
	}
	p.next() // }
	return body, nil
}

func (p *parser) ifStmt() (Node, error) {
	p.next() // if
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	var els []Node
	if p.accept(TokKeyword, "else") {
		if p.at(TokKeyword, "if") {
			elseIf, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = []Node{elseIf}
		} else {
			els, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	}
	return &If{Test: test, Then: then, Else: els}, nil
}

func (p *parser) blockOrSingle() ([]Node, error) {
	if p.at(TokPunct, "{") {
		return p.block()
	}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []Node{stmt}, nil
}

func (p *parser) whileStmt() (Node, error) {
	p.next() // while
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &While{Test: test, Body: body}, nil
}

func (p *parser) forStmt() (Node, error) {
	p.next() // for
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	// for (x of e) / for (x in e)
	if (p.at(TokKeyword, "var") || p.at(TokKeyword, "let") || p.at(TokKeyword, "const")) &&
		p.toks[p.pos+1].Kind == TokIdent &&
		(p.toks[p.pos+2].Text == "of" || p.toks[p.pos+2].Text == "in") {
		p.next() // var
		name := p.next()
		ofTok := p.next()
		expr, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &ForIn{Var: name.Text, Of: ofTok.Text == "of", Expr: expr, Body: body}, nil
	}
	var init Node
	var err error
	if !p.at(TokPunct, ";") {
		if p.at(TokKeyword, "var") || p.at(TokKeyword, "let") || p.at(TokKeyword, "const") {
			init, err = p.varDecl() // consumes its own ';'
		} else {
			var e Node
			e, err = p.expression()
			init = &ExprStmt{Expr: e}
			if err == nil {
				_, err = p.expect(TokPunct, ";")
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		p.next()
	}
	var test Node
	if !p.at(TokPunct, ";") {
		test, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	var post Node
	if !p.at(TokPunct, ")") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		post = &ExprStmt{Expr: e}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &For{Init: init, Test: test, Post: post, Body: body}, nil
}

func (p *parser) switchStmt() (Node, error) {
	p.next() // switch
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	tag, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	sw := &Switch{Tag: tag}
	for !p.at(TokPunct, "}") {
		switch {
		case p.accept(TokKeyword, "case"):
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			sw.Cases = append(sw.Cases, SwitchCase{Value: val, Body: body})
		case p.accept(TokKeyword, "default"):
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			sw.Default = body
		default:
			return nil, p.errHere("expected case or default")
		}
	}
	p.next() // }
	return sw, nil
}

// caseBody parses statements until the next case/default/closing brace.
func (p *parser) caseBody() ([]Node, error) {
	var body []Node
	for !p.at(TokKeyword, "case") && !p.at(TokKeyword, "default") && !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, p.errHere("unterminated switch")
		}
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, stmt)
	}
	return body, nil
}

func (p *parser) doWhileStmt() (Node, error) {
	p.next() // do
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "while"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	p.accept(TokPunct, ";")
	return &DoWhile{Body: body, Test: test}, nil
}

func (p *parser) tryStmt() (Node, error) {
	p.next() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "catch"); err != nil {
		return nil, err
	}
	catchVar := ""
	if p.accept(TokPunct, "(") {
		id, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		catchVar = id.Text
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	catchBody, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Try{Body: body, CatchVar: catchVar, CatchBody: catchBody}, nil
}

// ---- expressions (precedence climbing) ----

func (p *parser) expression() (Node, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Node, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=":
			if !isAssignable(lhs) {
				return nil, p.errHere("invalid assignment target")
			}
			p.next()
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: t.Text, Target: lhs, Value: rhs}, nil
		}
	}
	return lhs, nil
}

func isAssignable(n Node) bool {
	switch n.(type) {
	case *Ident, *Member, *Index:
		return true
	}
	return false
}

func (p *parser) condExpr() (Node, error) {
	test, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.accept(TokPunct, "?") {
		then, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		els, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{Test: test, Then: then, Else: els}, nil
	}
	return test, nil
}

// binary operator precedence (higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) (Node, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		if t.Text == "&&" || t.Text == "||" {
			lhs = &Logical{Op: t.Text, LHS: lhs, RHS: rhs}
		} else {
			lhs = &Binary{Op: t.Text, LHS: lhs, RHS: rhs}
		}
	}
}

func (p *parser) unaryExpr() (Node, error) {
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "+" || t.Text == "!" || t.Text == "~") {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, Expr: e}, nil
	}
	if t.Kind == TokPunct && (t.Text == "++" || t.Text == "--") {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if !isAssignable(e) {
			return nil, p.errHere("invalid update target")
		}
		return &Update{Op: t.Text, Target: e}, nil
	}
	if t.Kind == TokKeyword && t.Text == "typeof" {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "typeof", Expr: e}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Node, error) {
	e, err := p.callExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "++" || t.Text == "--") {
		if !isAssignable(e) {
			return nil, p.errHere("invalid update target")
		}
		p.next()
		return &Update{Op: t.Text, Target: e, Postfix: true}, nil
	}
	return e, nil
}

func (p *parser) callExpr() (Node, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokPunct, "("):
			var args []Node
			for !p.at(TokPunct, ")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			e = &Call{Fn: e, Args: args}
		case p.accept(TokPunct, "."):
			id, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &Member{Obj: e, Name: id.Text}
		case p.accept(TokPunct, "["):
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = &Index{Obj: e, Key: key}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{Value: t.Num}, nil
	case TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case TokTemplate:
		p.next()
		return parseTemplate(t)
	case TokKeyword:
		switch t.Text {
		case "true":
			p.next()
			return &BoolLit{Value: true}, nil
		case "false":
			p.next()
			return &BoolLit{Value: false}, nil
		case "null":
			p.next()
			return &NullLit{}, nil
		case "undefined":
			p.next()
			return &UndefinedLit{}, nil
		case "function":
			p.next()
			name := ""
			if p.at(TokIdent, "") {
				name = p.next().Text
			}
			return p.funcRest(name)
		case "new":
			// MiniJS treats `new F(args)` as a plain call.
			p.next()
			return p.callExpr()
		}
	case TokIdent:
		// Arrow function: ident => ...
		if p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "=>" {
			p.next()
			p.next()
			return p.arrowBody([]string{t.Text})
		}
		p.next()
		return &Ident{Name: t.Text}, nil
	case TokPunct:
		switch t.Text {
		case "(":
			// Could be a parenthesized expression or arrow params.
			if params, ok := p.tryArrowParams(); ok {
				return p.arrowBody(params)
			}
			p.next()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.next()
			var elems []Node
			for !p.at(TokPunct, "]") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			return &ArrayLit{Elems: elems}, nil
		case "{":
			return p.objectLit()
		}
	}
	return nil, p.errHere(fmt.Sprintf("unexpected token %q", t.Text))
}

// parseTemplate desugars a template literal into nested string
// concatenation: `a${x}b` → "a" + (x) + "b". Holes are parsed as full
// expressions.
func parseTemplate(t Token) (Node, error) {
	body := t.Text
	var node Node = &StringLit{Value: ""}
	appendNode := func(n Node) {
		node = &Binary{Op: "+", LHS: node, RHS: n}
	}
	for len(body) > 0 {
		idx := indexHole(body)
		if idx < 0 {
			appendNode(&StringLit{Value: body})
			break
		}
		if idx > 0 {
			appendNode(&StringLit{Value: body[:idx]})
		}
		rest := body[idx+2:] // past "${"
		depth := 1
		end := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					end = i
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, &SyntaxError{Msg: "unterminated ${ in template literal", Line: t.Line, Col: t.Col}
		}
		holeSrc := rest[:end]
		toks, err := lexAll(holeSrc)
		if err != nil {
			return nil, err
		}
		hp := &parser{toks: toks}
		expr, err := hp.expression()
		if err != nil {
			return nil, err
		}
		if !hp.at(TokEOF, "") {
			return nil, &SyntaxError{Msg: "trailing tokens in template hole", Line: t.Line, Col: t.Col}
		}
		appendNode(expr)
		body = rest[end+1:]
	}
	if len(t.Text) == 0 {
		return &StringLit{Value: ""}, nil
	}
	return node, nil
}

// indexHole finds the next unescaped "${" in a template body.
func indexHole(s string) int {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '$' && s[i+1] == '{' {
			return i
		}
	}
	return -1
}

// objectLit parses {k: v, "k": v, ...}.
func (p *parser) objectLit() (Node, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	obj := &ObjectLit{}
	for !p.at(TokPunct, "}") {
		var key string
		switch {
		case p.at(TokIdent, "") || p.cur().Kind == TokKeyword:
			key = p.next().Text
		case p.cur().Kind == TokString:
			key = p.next().Text
		case p.cur().Kind == TokNumber:
			key = p.next().Text
		default:
			return nil, p.errHere("expected property name")
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		val, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		obj.Keys = append(obj.Keys, key)
		obj.Values = append(obj.Values, val)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, "}"); err != nil {
		return nil, err
	}
	return obj, nil
}

// tryArrowParams looks ahead for "(a, b) =>" and, if found, consumes
// through "=>" and returns the parameter names.
func (p *parser) tryArrowParams() ([]string, bool) {
	save := p.pos
	if !p.accept(TokPunct, "(") {
		return nil, false
	}
	var params []string
	for !p.at(TokPunct, ")") {
		if !p.at(TokIdent, "") {
			p.pos = save
			return nil, false
		}
		params = append(params, p.next().Text)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if !p.accept(TokPunct, ")") || !p.accept(TokPunct, "=>") {
		p.pos = save
		return nil, false
	}
	return params, true
}

func (p *parser) arrowBody(params []string) (Node, error) {
	if p.at(TokPunct, "{") {
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &FuncLit{Params: params, Body: body}, nil
	}
	expr, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &FuncLit{Params: params, Body: []Node{&Return{Value: expr}}}, nil
}
