package lang

import (
	"encoding/json"
	"fmt"
)

// parseJSON converts a JSON document into MiniJS values, charging the
// resulting structures to the guest heap. It rides on encoding/json and
// converts the generic representation.
func parseJSON(in *Interp, s string) (Value, error) {
	var raw interface{}
	if err := json.Unmarshal([]byte(s), &raw); err != nil {
		return nil, fmt.Errorf("JSON.parse: %v", err)
	}
	return fromGo(in, raw), nil
}

func fromGo(in *Interp, raw interface{}) Value {
	switch t := raw.(type) {
	case nil:
		return Null{}
	case bool:
		return t
	case float64:
		return t
	case string:
		in.alloc(len(t))
		return t
	case []interface{}:
		arr := &Array{Elems: make([]Value, len(t))}
		in.alloc(24 + 16*len(t))
		for i, e := range t {
			arr.Elems[i] = fromGo(in, e)
		}
		return arr
	case map[string]interface{}:
		obj := NewObject()
		in.alloc(48)
		// Note: Go maps iterate in random order; sort for determinism.
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			in.alloc(32 + len(k))
			obj.Set(k, fromGo(in, t[k]))
		}
		return obj
	}
	return Undefined{}
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// GoValue converts a MiniJS value into plain Go data (for host-side
// inspection of results).
func GoValue(v Value) interface{} {
	switch t := v.(type) {
	case nil, Undefined:
		return nil
	case Null:
		return nil
	case bool:
		return t
	case float64:
		return t
	case string:
		return t
	case *Array:
		out := make([]interface{}, len(t.Elems))
		for i, e := range t.Elems {
			out[i] = GoValue(e)
		}
		return out
	case *Object:
		out := make(map[string]interface{}, t.Len())
		for _, k := range t.Keys() {
			out[k] = GoValue(t.Get(k))
		}
		return out
	}
	return ToString(v)
}
