// Package libos simulates the Rumprun unikernel that forms the bottom
// of every unikernel context (§6): a POSIX-like library OS booted into
// a language interpreter, with a ramdisk filesystem and an in-guest
// network endpoint, running on the narrow Solo5 hypercall interface.
//
// Everything the guest software allocates flows through the unikernel's
// bump-pointer heap into the UC's simulated address space, so snapshot
// diffs, AO effects, and per-invocation fault counts are *measured* from
// real page-table state. Time costs (boot phases, lazy first-use slow
// paths, connection setup) come from the calibrated table in
// internal/costs.
package libos

import (
	"errors"
	"fmt"
	"time"

	"seuss/internal/costs"
	"seuss/internal/hypercall"
	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// Guest virtual memory layout. The flat single address space is the
// defining property of a unikernel (§3): kernel, libraries, interpreter
// and function code share one space.
const (
	// KernelBase holds the Rumprun kernel text/data.
	KernelBase = uint64(0x0000_0000_0010_0000)
	// HeapBase is where the unified guest heap begins; it grows upward
	// through interpreter, driver, and function allocations.
	HeapBase = uint64(0x0000_0001_0000_0000)
	// StackTop is the top of the primary guest stack (grows down).
	StackTop = uint64(0x0000_7fff_fff0_0000)
	// StackPages is the committed stack depth.
	StackPages = 64
)

// ErrNotBooted is returned by guest operations before Boot/Rehydrate.
var ErrNotBooted = errors.New("libos: unikernel not booted")

// Env is the host environment a unikernel charges work against. The
// SEUSS kernel provides one bound to the discrete-event engine; unit
// tests use CountingEnv.
type Env interface {
	// ChargeCPU burns d of guest CPU time.
	ChargeCPU(d time.Duration)
	// Block suspends the guest for d without burning CPU (I/O wait).
	Block(d time.Duration)
	// Now returns the current time since host boot.
	Now() time.Duration
	// HTTPGet performs an outbound request through the network proxy,
	// blocking until the response arrives.
	HTTPGet(url string) (string, error)
	// Output receives guest console lines.
	Output(s string)
}

// State is the libos portion of a snapshot's guest metadata: the
// simulation's stand-in for state that, on real hardware, lives inside
// the captured memory image itself.
type State struct {
	// HeapBrk is the bump allocator's current break.
	HeapBrk uint64
	// NetWarm records that the network stack's lazy first-use
	// initialization has run in this lineage.
	NetWarm bool
	// NetAO records that network warming happened *before* the base
	// snapshot (the anticipatory optimization), which pre-sizes pools
	// for every descendant.
	NetAO bool
	// Booted records that the kernel boot phases completed.
	Booted bool
	// Files is the ramdisk content (path → size); contents live in
	// guest pages.
	Files map[string]int64
	// FileAddrs maps ramdisk paths to their guest addresses.
	FileAddrs map[string]uint64
}

// Unikernel is one guest instance: the library OS side of a UC.
type Unikernel struct {
	as   *pagetable.AddressSpace
	host hypercall.Host
	env  Env
	st   State

	lastFaults int // fault count already charged to virtual time

	// deployGen is the host-injected deploy generation (restore-time
	// uniqueness, DESIGN.md §14). Deliberately NOT part of State: a
	// snapshot must never capture it, or every clone would restore the
	// same value and the uniqueness guarantee would die in the image.
	// The deploying host sets it after every restore.
	deployGen uint64
}

// New wraps an address space and host interface into an unbooted
// unikernel.
func New(as *pagetable.AddressSpace, host hypercall.Host, env Env) *Unikernel {
	return &Unikernel{
		as:   as,
		host: host,
		env:  env,
		st: State{
			HeapBrk:   HeapBase,
			Files:     make(map[string]int64),
			FileAddrs: make(map[string]uint64),
		},
	}
}

// Space returns the underlying address space.
func (u *Unikernel) Space() *pagetable.AddressSpace { return u.as }

// Host returns the hypercall interface.
func (u *Unikernel) Host() hypercall.Host { return u.host }

// Env returns the host environment.
func (u *Unikernel) Env() Env { return u.env }

// State returns the rehydration payload for snapshot capture.
func (u *Unikernel) State() State {
	files := make(map[string]int64, len(u.st.Files))
	for k, v := range u.st.Files {
		files[k] = v
	}
	addrs := make(map[string]uint64, len(u.st.FileAddrs))
	for k, v := range u.st.FileAddrs {
		addrs[k] = v
	}
	st := u.st
	st.Files = files
	st.FileAddrs = addrs
	return st
}

// Rehydrate restores guest metadata from a snapshot payload without
// charging any virtual time: on real hardware this state is simply part
// of the restored memory image. The address space must already be the
// snapshot's deployed clone. The unikernel's existing ramdisk maps are
// reused (cleared and refilled) so recycled deploy kits rehydrate
// without allocating.
func (u *Unikernel) Rehydrate(st State) {
	files := u.st.Files
	if files == nil {
		files = make(map[string]int64, len(st.Files))
	}
	clear(files)
	for k, v := range st.Files {
		files[k] = v
	}
	addrs := u.st.FileAddrs
	if addrs == nil {
		addrs = make(map[string]uint64, len(st.FileAddrs))
	}
	clear(addrs)
	for k, v := range st.FileAddrs {
		addrs[k] = v
	}
	u.st = st
	u.st.Files = files
	u.st.FileAddrs = addrs
	u.syncFaultBase()
}

// Reattach rebinds a recycled unikernel to a fresh deployment: a new
// address space clone, hypercall interface, and host environment. Guest
// metadata is untouched — callers follow with Rehydrate, which resets it
// from the snapshot payload (including the fault-charging base).
func (u *Unikernel) Reattach(as *pagetable.AddressSpace, host hypercall.Host, env Env) {
	u.as = as
	u.host = host
	u.env = env
	u.lastFaults = 0
}

// SetDeployGeneration records the host-issued generation of the deploy
// that produced this incarnation. Called by the deploying host on every
// path — cold boot, warm deploy, lukewarm promote, recycled kit —
// never restored from a snapshot payload.
func (u *Unikernel) SetDeployGeneration(gen uint64) { u.deployGen = gen }

// DeployGeneration returns the generation of the deploy that produced
// this incarnation (0 only before the first deploy completes).
func (u *Unikernel) DeployGeneration() uint64 { return u.deployGen }

// DrawEntropy pulls one fresh randomness draw from the host — a single
// hypercall crossing. The guest runtime mixes it with the deploy
// generation to reseed its RNG at restore time.
func (u *Unikernel) DrawEntropy() uint64 { return u.host.Entropy() }

// syncFaultBase resets fault charging so pre-existing faults (e.g. from
// rehydration-time bookkeeping) are not billed.
func (u *Unikernel) syncFaultBase() {
	u.lastFaults = u.as.Faults.Copied()
}

// chargeFaults bills virtual time for faults resolved since the last
// charge. Every guest-visible operation ends with this, so CoW and
// demand-zero activity shows up in invocation latency exactly as the
// kernel fault handler would.
func (u *Unikernel) chargeFaults() {
	n := u.as.Faults.Copied()
	if d := n - u.lastFaults; d > 0 {
		u.env.ChargeCPU(time.Duration(d) * costs.PageFault)
	}
	u.lastFaults = n
}

// Boot runs the full unikernel boot: Solo5 middleware, Rumprun kernel,
// shared libraries, ramdisk mount, stack setup. It is paid once per
// supported interpreter at system initialization — deployments from
// snapshots skip it entirely (the point of the paper).
func (u *Unikernel) Boot() error {
	if u.st.Booted {
		return fmt.Errorf("libos: double boot")
	}
	// Kernel text/data/bss: written at load time.
	kernelBytes := int64(4 << 20)
	if err := u.as.TouchRange(KernelBase, uint64(kernelBytes)); err != nil {
		return fmt.Errorf("libos: loading kernel image: %w", err)
	}
	// Primary stack.
	if err := u.as.TouchRange(StackTop-uint64(StackPages*mem.PageSize), uint64(StackPages*mem.PageSize)); err != nil {
		return fmt.Errorf("libos: committing stack: %w", err)
	}
	// Hypercall handshake: the boot path queries its world.
	u.host.SetTLS(StackTop - 4096)
	u.host.MemInfo()
	u.host.BlkInfo()
	u.host.NetInfo()
	u.env.ChargeCPU(costs.UnikernelBoot)
	u.st.Booted = true
	u.chargeFaults()
	return nil
}

// Booted reports whether boot (or rehydration from a booted image) has
// completed.
func (u *Unikernel) Booted() bool { return u.st.Booted }

// HeapBrk returns the current bump-allocator break.
func (u *Unikernel) HeapBrk() uint64 { return u.st.HeapBrk }

// Alloc bump-allocates n guest-heap bytes, touching the spanned pages
// (demand-zero or CoW faults as appropriate) and billing fault time.
// It returns the allocation's guest virtual address.
func (u *Unikernel) Alloc(n int64) (uint64, error) {
	if !u.st.Booted {
		return 0, ErrNotBooted
	}
	if n < 0 {
		return 0, fmt.Errorf("libos: negative allocation %d", n)
	}
	addr := u.st.HeapBrk
	if n == 0 {
		return addr, nil
	}
	end := addr + uint64(n)
	// Touch each page the allocation spans. Pages already private stay
	// free; new pages fault.
	first := pagetable.PageBase(addr)
	for p := first; p < end; p += mem.PageSize {
		if err := u.as.Touch(p); err != nil {
			return 0, fmt.Errorf("libos: heap allocation: %w", err)
		}
	}
	u.st.HeapBrk = end
	u.chargeFaults()
	return addr, nil
}

// WriteGuest writes real bytes at a guest address (used where content
// fidelity matters, e.g. the ramdisk), billing fault time.
func (u *Unikernel) WriteGuest(va uint64, data []byte) error {
	if err := u.as.Store(va, data); err != nil {
		return err
	}
	u.chargeFaults()
	return nil
}

// ReadGuest reads guest memory.
func (u *Unikernel) ReadGuest(va uint64, buf []byte) error {
	return u.as.Load(va, buf)
}

// DirtyHot rewrites n of the pages captured in the image this guest was
// deployed from — the runtime structures (caches, counters, free lists)
// that get mutated on their next use and CoW back in. It walks down
// from just below the heap break, touching every k-th mapped page.
func (u *Unikernel) DirtyHot(n int) {
	if n <= 0 {
		return
	}
	// Stride through the most recently allocated region: hot runtime
	// structures cluster near the top of the heap image.
	const stride = 3 * mem.PageSize
	va := pagetable.PageBase(u.st.HeapBrk)
	for i := 0; i < n && va > HeapBase; i++ {
		if va >= stride {
			va -= stride
		}
		if err := u.as.Touch(va); err != nil {
			break
		}
	}
	u.chargeFaults()
}

// WriteFile stores a file in the ramdisk filesystem, charging its
// content to guest memory. Rumprun's ramdisk holds the interpreter's
// support files and imported function sources.
func (u *Unikernel) WriteFile(path string, data []byte) error {
	if !u.st.Booted {
		return ErrNotBooted
	}
	va, err := u.Alloc(int64(len(data)) + 64) // inode + content
	if err != nil {
		return err
	}
	if err := u.WriteGuest(va, data); err != nil {
		return err
	}
	u.st.Files[path] = int64(len(data))
	u.st.FileAddrs[path] = va
	// One blk write round trip through the hypercall interface.
	u.host.BlkWrite(0, nil)
	return nil
}

// ReadFile reads a ramdisk file's contents back out of guest memory,
// crossing the hypercall interface the way Rumprun's ramdisk driver
// does. It returns nil for absent paths.
func (u *Unikernel) ReadFile(path string) []byte {
	sz, ok := u.st.Files[path]
	if !ok {
		return nil
	}
	// One block read round trip per 4 KiB sector.
	sectors := int(sz/4096) + 1
	for i := 0; i < sectors; i++ {
		u.host.BlkRead(int64(i), nil)
	}
	out := make([]byte, sz)
	if va, ok2 := u.st.FileAddrs[path]; ok2 {
		u.ReadGuest(va, out)
	}
	return out
}

// FileSize returns a ramdisk file's size, or -1 if absent.
func (u *Unikernel) FileSize(path string) int64 {
	if sz, ok := u.st.Files[path]; ok {
		return sz
	}
	return -1
}

// Files returns the number of ramdisk files.
func (u *Unikernel) Files() int { return len(u.st.Files) }

// WarmNetwork exercises the guest network stack end to end — the
// network anticipatory optimization (§3): an HTTP request is sent into
// the unikernel before the base snapshot is captured, migrating lazy
// pool growth and protocol table setup into the shared image. Beyond
// plain first-use initialization it pre-grows pools to production
// depth, trading base-snapshot bytes for cheap descendant connects.
func (u *Unikernel) WarmNetwork() error {
	if !u.st.Booted {
		return ErrNotBooted
	}
	if err := u.ensureNetFirstUse(); err != nil {
		return err
	}
	if !u.st.NetAO {
		if _, err := u.Alloc(costs.NetAOExtraBytes); err != nil {
			return err
		}
	}
	u.st.NetAO = true
	return nil
}

// Resume performs the guest work that follows a deployment: the resumed
// unikernel rewrites its stacks, timers, scheduler bookkeeping, and
// rebinds the driver's listening socket. These writes are the dominant
// part of an idle UC's marginal footprint.
func (u *Unikernel) Resume() error {
	if !u.st.Booted {
		return ErrNotBooted
	}
	if _, err := u.Alloc(costs.ResumeStateBytes); err != nil {
		return err
	}
	return nil
}

// ensureNetFirstUse runs the lazy first-use network initialization if
// this lineage has never carried traffic.
func (u *Unikernel) ensureNetFirstUse() error {
	if u.st.NetWarm {
		return nil
	}
	if _, err := u.Alloc(costs.NetAOBytes); err != nil {
		return err
	}
	// The slow path crosses the hypercall boundary repeatedly while
	// bringing up the device.
	u.host.NetInfo()
	u.host.NetWrite(nil)
	u.env.ChargeCPU(costs.NetFirstUse)
	u.st.NetWarm = true
	return nil
}

// Conn is an accepted host→UC connection (the invocation driver's
// channel for code, arguments, and results).
type Conn struct {
	uk    *Unikernel
	alive bool
}

// AcceptConnection models the driver accepting a TCP connection from
// the SEUSS kernel. Cost depends on whether the image lineage carries
// the network AO: pre-grown pools make per-connection setup cheap.
func (u *Unikernel) AcceptConnection() (*Conn, error) {
	if !u.st.Booted {
		return nil, ErrNotBooted
	}
	if err := u.ensureNetFirstUse(); err != nil {
		return nil, err
	}
	if _, err := u.Alloc(costs.ConnStateBytes); err != nil {
		return nil, err
	}
	if u.st.NetAO {
		u.env.ChargeCPU(costs.ConnectWarm)
	} else {
		u.env.ChargeCPU(costs.ConnectCold)
	}
	u.host.NetRead()
	u.host.NetWrite(nil)
	u.chargeFaults()
	return &Conn{uk: u, alive: true}, nil
}

// Send models data arriving on the connection (arguments, code).
func (c *Conn) Send(n int64) error {
	if !c.alive {
		return errors.New("libos: send on closed connection")
	}
	// Receive buffers for the payload.
	if _, err := c.uk.Alloc(minInt64(n, 256<<10)); err != nil {
		return err
	}
	c.uk.host.NetRead()
	return nil
}

// Reply models data leaving the UC (results).
func (c *Conn) Reply(n int64) error {
	if !c.alive {
		return errors.New("libos: reply on closed connection")
	}
	c.uk.host.NetWrite(nil)
	c.uk.env.ChargeCPU(costs.ResultReturn)
	return nil
}

// Close tears down the connection.
func (c *Conn) Close() { c.alive = false }

// Alive reports whether the connection is open.
func (c *Conn) Alive() bool { return c.alive }

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// CountingEnv is an Env that accumulates charges — the harness for
// single-UC microbenchmarks (Tables 1 and 2), where the paper also
// measures one invocation at a time.
type CountingEnv struct {
	CPU     time.Duration
	Blocked time.Duration
	Lines   []string
	// HTTP handles outbound requests; nil returns an error to the
	// guest.
	HTTP func(url string) (string, error)
	// HTTPLatency is added to Blocked per outbound request.
	HTTPLatency time.Duration
}

// ChargeCPU implements Env.
func (e *CountingEnv) ChargeCPU(d time.Duration) { e.CPU += d }

// Block implements Env.
func (e *CountingEnv) Block(d time.Duration) { e.Blocked += d }

// Now implements Env.
func (e *CountingEnv) Now() time.Duration { return e.CPU + e.Blocked }

// HTTPGet implements Env.
func (e *CountingEnv) HTTPGet(url string) (string, error) {
	if e.HTTP == nil {
		return "", errors.New("libos: no external network")
	}
	e.Blocked += e.HTTPLatency
	return e.HTTP(url)
}

// Output implements Env.
func (e *CountingEnv) Output(s string) { e.Lines = append(e.Lines, s) }

// Elapsed returns total virtual time consumed (CPU + blocked).
func (e *CountingEnv) Elapsed() time.Duration { return e.CPU + e.Blocked }

// Reset zeroes the accumulators.
func (e *CountingEnv) Reset() { e.CPU, e.Blocked, e.Lines = 0, 0, nil }

var _ Env = (*CountingEnv)(nil)
