package libos

import (
	"testing"
	"time"

	"seuss/internal/costs"
	"seuss/internal/hypercall"
	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

func newUK(t *testing.T) (*Unikernel, *CountingEnv) {
	t.Helper()
	st := mem.NewStore(0)
	as, err := pagetable.New(st)
	if err != nil {
		t.Fatal(err)
	}
	env := &CountingEnv{}
	uk := New(as, hypercall.NewStubHost(), env)
	return uk, env
}

func booted(t *testing.T) (*Unikernel, *CountingEnv) {
	t.Helper()
	uk, env := newUK(t)
	if err := uk.Boot(); err != nil {
		t.Fatal(err)
	}
	return uk, env
}

func TestBootTouchesKernelAndStack(t *testing.T) {
	uk, env := newUK(t)
	if err := uk.Boot(); err != nil {
		t.Fatal(err)
	}
	if !uk.Booted() {
		t.Fatal("not booted")
	}
	// 4 MB kernel + 64-page stack.
	wantPages := (4<<20)/mem.PageSize + StackPages
	if got := uk.Space().MappedPages(); got != wantPages {
		t.Errorf("mapped = %d, want %d", got, wantPages)
	}
	if env.CPU < costs.UnikernelBoot {
		t.Errorf("boot charged %v", env.CPU)
	}
}

func TestDoubleBootFails(t *testing.T) {
	uk, _ := booted(t)
	if err := uk.Boot(); err == nil {
		t.Error("double boot succeeded")
	}
}

func TestOpsBeforeBootFail(t *testing.T) {
	uk, _ := newUK(t)
	if _, err := uk.Alloc(10); err != ErrNotBooted {
		t.Errorf("Alloc err = %v", err)
	}
	if _, err := uk.AcceptConnection(); err != ErrNotBooted {
		t.Errorf("Accept err = %v", err)
	}
	if err := uk.WarmNetwork(); err != ErrNotBooted {
		t.Errorf("Warm err = %v", err)
	}
	if err := uk.WriteFile("/x", nil); err != ErrNotBooted {
		t.Errorf("WriteFile err = %v", err)
	}
}

func TestAllocBumpsAndTouchesPages(t *testing.T) {
	uk, _ := booted(t)
	before := uk.Space().DirtyCount()
	addr, err := uk.Alloc(10 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if addr != HeapBase {
		t.Errorf("first alloc at %#x, want HeapBase", addr)
	}
	if got := uk.Space().DirtyCount() - before; got != 10 {
		t.Errorf("dirtied %d pages, want 10", got)
	}
	addr2, _ := uk.Alloc(1)
	if addr2 != HeapBase+10*mem.PageSize {
		t.Errorf("bump pointer wrong: %#x", addr2)
	}
}

func TestSmallAllocsSharePages(t *testing.T) {
	uk, _ := booted(t)
	before := uk.Space().DirtyCount()
	for i := 0; i < 64; i++ {
		if _, err := uk.Alloc(32); err != nil {
			t.Fatal(err)
		}
	}
	// 64 x 32 B = 2 KB: should dirty exactly one page.
	if got := uk.Space().DirtyCount() - before; got != 1 {
		t.Errorf("dirtied %d pages for 2KB of small allocs", got)
	}
}

func TestAllocChargesFaultTime(t *testing.T) {
	uk, env := booted(t)
	cpu0 := env.CPU
	if _, err := uk.Alloc(100 * mem.PageSize); err != nil {
		t.Fatal(err)
	}
	want := 100 * costs.PageFault
	if got := env.CPU - cpu0; got != want {
		t.Errorf("fault time = %v, want %v", got, want)
	}
}

func TestAllocNegative(t *testing.T) {
	uk, _ := booted(t)
	if _, err := uk.Alloc(-1); err == nil {
		t.Error("negative alloc succeeded")
	}
}

func TestAllocZero(t *testing.T) {
	uk, _ := booted(t)
	a1, err := uk.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := uk.Alloc(0)
	if a1 != a2 {
		t.Error("zero alloc moved brk")
	}
}

func TestWarmNetworkFirstUseCosts(t *testing.T) {
	uk, env := booted(t)
	cpu0 := env.CPU
	if err := uk.WarmNetwork(); err != nil {
		t.Fatal(err)
	}
	if env.CPU-cpu0 < costs.NetFirstUse {
		t.Errorf("first warm charged %v", env.CPU-cpu0)
	}
	st := uk.State()
	if !st.NetWarm || !st.NetAO {
		t.Errorf("state = %+v", st)
	}
	// Idempotent: second warm is nearly free.
	cpu1 := env.CPU
	uk.WarmNetwork()
	if env.CPU-cpu1 > time.Millisecond {
		t.Errorf("second warm charged %v", env.CPU-cpu1)
	}
}

func TestAcceptConnectionCostDependsOnAO(t *testing.T) {
	// With network AO: cheap connects.
	ukAO, envAO := booted(t)
	ukAO.WarmNetwork()
	cpu0 := envAO.CPU
	if _, err := ukAO.AcceptConnection(); err != nil {
		t.Fatal(err)
	}
	withAO := envAO.CPU - cpu0

	// Without AO (but already carried traffic): expensive connects.
	ukNo, envNo := booted(t)
	if _, err := ukNo.AcceptConnection(); err != nil { // pays first-use too
		t.Fatal(err)
	}
	cpu1 := envNo.CPU
	if _, err := ukNo.AcceptConnection(); err != nil {
		t.Fatal(err)
	}
	withoutAO := envNo.CPU - cpu1

	if withAO >= withoutAO {
		t.Errorf("AO connect %v !< non-AO connect %v", withAO, withoutAO)
	}
}

func TestFirstConnectionTriggersLazyInit(t *testing.T) {
	uk, env := booted(t)
	cpu0 := env.CPU
	if _, err := uk.AcceptConnection(); err != nil {
		t.Fatal(err)
	}
	if env.CPU-cpu0 < costs.NetFirstUse {
		t.Errorf("first connection without AO charged only %v", env.CPU-cpu0)
	}
	if !uk.State().NetWarm {
		t.Error("NetWarm not set")
	}
	if uk.State().NetAO {
		t.Error("NetAO set without AO")
	}
}

func TestConnSendReply(t *testing.T) {
	uk, _ := booted(t)
	conn, err := uk.AcceptConnection()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(128); err != nil {
		t.Fatal(err)
	}
	if err := conn.Reply(64); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if conn.Alive() {
		t.Error("alive after close")
	}
	if err := conn.Send(1); err == nil {
		t.Error("send on closed conn")
	}
	if err := conn.Reply(1); err == nil {
		t.Error("reply on closed conn")
	}
}

func TestWriteFileChargesGuestMemory(t *testing.T) {
	uk, _ := booted(t)
	brk0 := uk.HeapBrk()
	if err := uk.WriteFile("/fn/main.js", []byte("function main() {}")); err != nil {
		t.Fatal(err)
	}
	if uk.HeapBrk() <= brk0 {
		t.Error("file content not charged to heap")
	}
	if uk.FileSize("/fn/main.js") != 18 {
		t.Errorf("size = %d", uk.FileSize("/fn/main.js"))
	}
	if uk.FileSize("/missing") != -1 {
		t.Error("missing file has size")
	}
	if uk.Files() != 1 {
		t.Errorf("files = %d", uk.Files())
	}
}

func TestStateRoundTrip(t *testing.T) {
	uk, _ := booted(t)
	uk.WarmNetwork()
	uk.WriteFile("/a", []byte("xy"))
	st := uk.State()

	// Rehydrate into a second unikernel over a clone (as deploy does).
	uk.Space().SetCoWAll()
	uk.Space().ClearDirty()
	uk.Space().Freeze()
	clone, err := uk.Space().Clone()
	if err != nil {
		t.Fatal(err)
	}
	env2 := &CountingEnv{}
	uk2 := New(clone, hypercall.NewStubHost(), env2)
	uk2.Rehydrate(st)
	if !uk2.Booted() || !uk2.State().NetWarm || !uk2.State().NetAO {
		t.Errorf("rehydrated state = %+v", uk2.State())
	}
	if uk2.HeapBrk() != uk.HeapBrk() {
		t.Error("heap brk not restored")
	}
	if uk2.FileSize("/a") != 2 {
		t.Error("fs not restored")
	}
	if env2.CPU != 0 {
		t.Errorf("rehydration charged %v", env2.CPU)
	}
	// State maps are independent.
	uk2.WriteFile("/b", []byte("q"))
	if uk.FileSize("/b") != -1 {
		t.Error("rehydrated state aliases source state")
	}
}

func TestDirtyHotFaultsPages(t *testing.T) {
	uk, _ := booted(t)
	uk.Alloc(500 * mem.PageSize)

	// Capture-like downgrade, then clone as a deploy would.
	uk.Space().SetCoWAll()
	uk.Space().ClearDirty()
	uk.Space().Freeze()
	clone, _ := uk.Space().Clone()
	env2 := &CountingEnv{}
	uk2 := New(clone, hypercall.NewStubHost(), env2)
	uk2.Rehydrate(uk.State())

	uk2.DirtyHot(50)
	if got := clone.Faults.CoW; got == 0 {
		t.Error("DirtyHot produced no CoW faults")
	}
	if env2.CPU == 0 {
		t.Error("DirtyHot charged no time")
	}
}

func TestGuestReadWrite(t *testing.T) {
	uk, _ := booted(t)
	va, _ := uk.Alloc(64)
	if err := uk.WriteGuest(va, []byte("unikernel")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if err := uk.ReadGuest(va, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "unikernel" {
		t.Errorf("read %q", buf)
	}
}

func TestCountingEnv(t *testing.T) {
	e := &CountingEnv{HTTPLatency: time.Millisecond, HTTP: func(url string) (string, error) {
		return "ok:" + url, nil
	}}
	e.ChargeCPU(2 * time.Millisecond)
	e.Block(3 * time.Millisecond)
	body, err := e.HTTPGet("x")
	if err != nil || body != "ok:x" {
		t.Fatalf("HTTPGet = %q, %v", body, err)
	}
	if e.Elapsed() != 6*time.Millisecond {
		t.Errorf("Elapsed = %v", e.Elapsed())
	}
	e.Output("line")
	if len(e.Lines) != 1 {
		t.Error("output lost")
	}
	e.Reset()
	if e.Elapsed() != 0 || e.Lines != nil {
		t.Error("reset incomplete")
	}
}

func TestCountingEnvNoNetwork(t *testing.T) {
	e := &CountingEnv{}
	if _, err := e.HTTPGet("x"); err == nil {
		t.Error("HTTPGet without handler succeeded")
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	uk, _ := booted(t)
	content := []byte("function main() { return 1; }")
	if err := uk.WriteFile("/fn/main.js", content); err != nil {
		t.Fatal(err)
	}
	got := uk.ReadFile("/fn/main.js")
	if string(got) != string(content) {
		t.Errorf("read %q", got)
	}
	if uk.ReadFile("/missing") != nil {
		t.Error("phantom file")
	}
}

func TestReadFileSurvivesRehydration(t *testing.T) {
	uk, _ := booted(t)
	uk.WriteFile("/cfg", []byte("answer=42"))
	st := uk.State()
	uk.Space().SetCoWAll()
	uk.Space().ClearDirty()
	uk.Space().Freeze()
	clone, err := uk.Space().Clone()
	if err != nil {
		t.Fatal(err)
	}
	uk2 := New(clone, hypercall.NewStubHost(), &CountingEnv{})
	uk2.Rehydrate(st)
	if got := uk2.ReadFile("/cfg"); string(got) != "answer=42" {
		t.Errorf("rehydrated read %q", got)
	}
}
