// Package hypercall defines the narrow domain interface between a
// unikernel context and the trusted SEUSS kernel.
//
// The prototype's UCs run on Solo5/ukvm middleware, which "exposes only
// 12 system calls while the standard security of a Docker container
// gives access to over 300 Linux syscalls" (§5). Reproducing that
// interface matters for two reasons: it is the security argument of the
// paper, and it is the only channel through which guest software touches
// the host, so charging each crossing a fixed cost keeps the time model
// honest.
//
// The table carries one extension beyond Solo5's 12: Entropy, the
// host-provided randomness draw behind restore-time uniqueness
// (DESIGN.md §14). Clones deployed from one snapshot resume with
// byte-identical guest state, so any in-guest RNG would replay the same
// stream in every sibling; fresh host entropy at deploy is the only fix
// that does not widen the interface further.
package hypercall

import "time"

// Number identifies one of the thirteen hypercalls.
type Number int

// The hypercall table, mirroring Solo5's ukvm interface plus the
// Entropy extension.
const (
	NumWallTime Number = iota
	NumPuts
	NumPoll
	NumBlkInfo
	NumBlkRead
	NumBlkWrite
	NumNetInfo
	NumNetRead
	NumNetWrite
	NumMemInfo
	NumSetTLS
	NumHalt
	NumEntropy

	// NumCalls is the size of the hypercall table. The narrowness of
	// this interface — 13 entries: Solo5's 12 plus Entropy — is
	// asserted by tests; growing it is a deliberate act.
	NumCalls
)

var names = [...]string{
	"walltime", "puts", "poll",
	"blkinfo", "blkread", "blkwrite",
	"netinfo", "netread", "netwrite",
	"meminfo", "settls", "halt",
	"entropy",
}

// String returns the hypercall's name.
func (n Number) String() string {
	if n < 0 || int(n) >= len(names) {
		return "invalid"
	}
	return names[n]
}

// NetInfo describes the guest's network identity. Every UC is
// configured with an identical IP and MAC address (§6 Networking),
// which is what lets snapshots be redeployed across time, cores, and —
// in future work — machines.
type NetInfo struct {
	MAC [6]byte
	IP  [4]byte
	MTU int
}

// DefaultNetInfo is the identity every UC shares.
var DefaultNetInfo = NetInfo{
	MAC: [6]byte{0x02, 0x5e, 0x55, 0x00, 0x00, 0x01},
	IP:  [4]byte{10, 0, 0, 2},
	MTU: 1500,
}

// Host is the kernel side of the hypercall interface. libos is its only
// caller; the SEUSS kernel (internal/core) and the standalone test
// harnesses provide implementations.
type Host interface {
	// WallTime returns nanoseconds since host boot.
	WallTime() time.Duration
	// Puts writes console output from the guest.
	Puts(s string)
	// Poll blocks the guest until I/O is ready or the timeout expires;
	// it returns true if I/O became ready.
	Poll(timeout time.Duration) bool
	// BlkInfo returns the ramdisk's size in bytes and its sector size.
	BlkInfo() (capacity int64, sectorSize int)
	// BlkRead reads one sector into buf.
	BlkRead(sector int64, buf []byte) error
	// BlkWrite writes one sector from buf.
	BlkWrite(sector int64, buf []byte) error
	// NetInfo returns the guest's network identity.
	NetInfo() NetInfo
	// NetRead receives one frame, blocking in virtual time; ok=false
	// means the device was closed.
	NetRead() (frame []byte, ok bool)
	// NetWrite transmits one frame through the per-core network proxy.
	NetWrite(frame []byte) error
	// MemInfo returns the guest's memory limit in bytes.
	MemInfo() int64
	// SetTLS records the guest's thread-local storage base.
	SetTLS(base uint64)
	// Halt terminates the guest with an exit status.
	Halt(status int)
	// Entropy returns a fresh host randomness draw. The guest calls it
	// once per deploy to reseed its RNG, so clones restored from one
	// snapshot diverge instead of replaying a shared stream. Hosts must
	// keep this a pure arithmetic step (no syscall, no allocation): it
	// sits on the allocation-free deploy path.
	Entropy() uint64
}

// CPUSink receives the CPU-time cost of each domain crossing. Any
// environment with a ChargeCPU method (e.g. libos.Env) satisfies it
// directly — holding the sink as an interface instead of a bound method
// value keeps Counter construction allocation-free.
type CPUSink interface {
	ChargeCPU(d time.Duration)
}

// ChargeFunc adapts a plain function to CPUSink (test harnesses).
type ChargeFunc func(d time.Duration)

// ChargeCPU implements CPUSink.
func (f ChargeFunc) ChargeCPU(d time.Duration) { f(d) }

// Counter wraps a Host and counts crossings per hypercall, charging the
// domain-crossing cost to a CPU-time sink. It is how the evaluation
// observes hypercall traffic and how the time model charges crossings.
type Counter struct {
	inner  Host
	counts [NumCalls]int64
	sink   CPUSink
	cost   time.Duration
}

// NewCounter returns a counting, cost-charging wrapper around inner.
// sink may be nil (no time accounting, e.g. unit tests).
func NewCounter(inner Host, cost time.Duration, sink CPUSink) *Counter {
	return &Counter{inner: inner, cost: cost, sink: sink}
}

// Reset rebinds the counter to a new inner host and sink and zeroes the
// crossing counts — the recycling path for deploy kits, where the
// Counter struct outlives one UC incarnation and must start the next
// with clean accounting.
func (c *Counter) Reset(inner Host, sink CPUSink) {
	c.inner = inner
	c.sink = sink
	c.counts = [NumCalls]int64{}
}

// Counts returns the per-hypercall crossing counts.
func (c *Counter) Counts() [NumCalls]int64 { return c.counts }

// Total returns the total number of crossings.
func (c *Counter) Total() int64 {
	var t int64
	for _, n := range c.counts {
		t += n
	}
	return t
}

func (c *Counter) cross(n Number) {
	c.counts[n]++
	if c.sink != nil {
		c.sink.ChargeCPU(c.cost)
	}
}

// WallTime implements Host.
func (c *Counter) WallTime() time.Duration { c.cross(NumWallTime); return c.inner.WallTime() }

// Puts implements Host.
func (c *Counter) Puts(s string) { c.cross(NumPuts); c.inner.Puts(s) }

// Poll implements Host.
func (c *Counter) Poll(timeout time.Duration) bool { c.cross(NumPoll); return c.inner.Poll(timeout) }

// BlkInfo implements Host.
func (c *Counter) BlkInfo() (int64, int) { c.cross(NumBlkInfo); return c.inner.BlkInfo() }

// BlkRead implements Host.
func (c *Counter) BlkRead(sector int64, buf []byte) error {
	c.cross(NumBlkRead)
	return c.inner.BlkRead(sector, buf)
}

// BlkWrite implements Host.
func (c *Counter) BlkWrite(sector int64, buf []byte) error {
	c.cross(NumBlkWrite)
	return c.inner.BlkWrite(sector, buf)
}

// NetInfo implements Host.
func (c *Counter) NetInfo() NetInfo { c.cross(NumNetInfo); return c.inner.NetInfo() }

// NetRead implements Host.
func (c *Counter) NetRead() ([]byte, bool) { c.cross(NumNetRead); return c.inner.NetRead() }

// NetWrite implements Host.
func (c *Counter) NetWrite(frame []byte) error { c.cross(NumNetWrite); return c.inner.NetWrite(frame) }

// MemInfo implements Host.
func (c *Counter) MemInfo() int64 { c.cross(NumMemInfo); return c.inner.MemInfo() }

// SetTLS implements Host.
func (c *Counter) SetTLS(base uint64) { c.cross(NumSetTLS); c.inner.SetTLS(base) }

// Halt implements Host.
func (c *Counter) Halt(status int) { c.cross(NumHalt); c.inner.Halt(status) }

// Entropy implements Host.
func (c *Counter) Entropy() uint64 { c.cross(NumEntropy); return c.inner.Entropy() }

var _ Host = (*Counter)(nil)
