package hypercall

import (
	"testing"
	"time"
)

func TestInterfaceIsNarrow(t *testing.T) {
	// The security argument of §5: Solo5's 12 hypercalls vs >300 Linux
	// syscalls. Entropy (restore-time uniqueness, DESIGN.md §14) is the
	// one deliberate extension, making 13. Growing this number further
	// weakens the argument — it must be a conscious decision, not drift.
	if NumCalls != 13 {
		t.Fatalf("hypercall table has %d entries, want 13 (Solo5's 12 + entropy)", NumCalls)
	}
}

func TestNumberNames(t *testing.T) {
	if NumWallTime.String() != "walltime" || NumHalt.String() != "halt" || NumEntropy.String() != "entropy" {
		t.Error("names wrong")
	}
	if Number(-1).String() != "invalid" || NumCalls.String() != "invalid" {
		t.Error("out-of-range names")
	}
}

func TestCounterCountsAndCharges(t *testing.T) {
	stub := NewStubHost()
	var charged time.Duration
	c := NewCounter(stub, 300*time.Nanosecond, ChargeFunc(func(d time.Duration) { charged += d }))
	c.Puts("hello")
	c.Puts("world")
	c.NetInfo()
	c.MemInfo()
	counts := c.Counts()
	if counts[NumPuts] != 2 || counts[NumNetInfo] != 1 || counts[NumMemInfo] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	if charged != 4*300*time.Nanosecond {
		t.Errorf("charged = %v", charged)
	}
	if len(stub.Console) != 2 || stub.Console[0] != "hello" {
		t.Errorf("console = %v", stub.Console)
	}
}

func TestCounterNilCharge(t *testing.T) {
	c := NewCounter(NewStubHost(), time.Microsecond, nil)
	c.Halt(0) // must not panic
	if c.Counts()[NumHalt] != 1 {
		t.Error("halt not counted")
	}
}

func TestCounterReset(t *testing.T) {
	var a, b time.Duration
	first := NewStubHost()
	c := NewCounter(first, time.Microsecond, ChargeFunc(func(d time.Duration) { a += d }))
	c.Puts("x")
	second := NewStubHost()
	c.Reset(second, ChargeFunc(func(d time.Duration) { b += d }))
	if c.Total() != 0 {
		t.Errorf("counts survived Reset: total = %d", c.Total())
	}
	c.Puts("y")
	if a != time.Microsecond || b != time.Microsecond {
		t.Errorf("charges a=%v b=%v, want 1µs each", a, b)
	}
	if len(first.Console) != 1 || len(second.Console) != 1 {
		t.Errorf("console routing: first=%v second=%v", first.Console, second.Console)
	}
}

func TestStubDisk(t *testing.T) {
	h := NewStubHost()
	cap0, sec := h.BlkInfo()
	if cap0 <= 0 || sec != 512 {
		t.Errorf("BlkInfo = %d, %d", cap0, sec)
	}
	if err := h.BlkWrite(7, []byte("sector-data")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if err := h.BlkRead(7, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "sector-data" {
		t.Errorf("read %q", buf)
	}
	// Unwritten sectors read as zeros.
	zero := make([]byte, 4)
	zero[0] = 0xff
	h.BlkRead(99, zero)
	if zero[0] != 0 {
		t.Error("unwritten sector nonzero")
	}
}

func TestStubNetworkLoopback(t *testing.T) {
	h := NewStubHost()
	if h.Poll(0) {
		t.Error("poll true with no frames")
	}
	h.NetWrite([]byte{1, 2, 3})
	if !h.Poll(0) {
		t.Error("poll false with pending frame")
	}
	f, ok := h.NetRead()
	if !ok || len(f) != 3 || f[2] != 3 {
		t.Errorf("NetRead = %v, %v", f, ok)
	}
	if _, ok := h.NetRead(); ok {
		t.Error("read from empty device")
	}
}

func TestDefaultNetIdentityShared(t *testing.T) {
	// Every UC has an identical IP and MAC (§6 Networking).
	a, b := NewStubHost(), NewStubHost()
	if a.NetInfo() != b.NetInfo() {
		t.Error("UC network identities differ")
	}
	if a.NetInfo().IP != [4]byte{10, 0, 0, 2} {
		t.Errorf("IP = %v", a.NetInfo().IP)
	}
}

func TestStubHalt(t *testing.T) {
	h := NewStubHost()
	if h.Halted != -1 {
		t.Error("initial halted state")
	}
	h.Halt(3)
	if h.Halted != 3 {
		t.Errorf("Halted = %d", h.Halted)
	}
}

func TestCounterCoversAllCalls(t *testing.T) {
	stub := NewStubHost()
	c := NewCounter(stub, 0, nil)
	c.WallTime()
	c.Puts("x")
	c.Poll(0)
	c.BlkInfo()
	c.BlkRead(0, make([]byte, 1))
	c.BlkWrite(0, []byte{1})
	c.NetInfo()
	c.NetWrite([]byte{1})
	c.NetRead()
	c.MemInfo()
	c.SetTLS(0x1000)
	c.Halt(0)
	c.Entropy()
	counts := c.Counts()
	for n := Number(0); n < NumCalls; n++ {
		if counts[n] != 1 {
			t.Errorf("%s crossed %d times, want 1", n, counts[n])
		}
	}
	if c.Total() != 13 {
		t.Errorf("total = %d", c.Total())
	}
	if stub.TLSBase != 0x1000 {
		t.Error("SetTLS not forwarded")
	}
	if stub.Clock != c.WallTime() {
		t.Error("WallTime not forwarded")
	}
}

// TestStubEntropyDiverges: consecutive draws differ, the stream is
// deterministic from a given state, and distinctly seeded stubs
// produce distinct streams.
func TestStubEntropyDiverges(t *testing.T) {
	h := NewStubHost()
	a, b := h.Entropy(), h.Entropy()
	if a == b {
		t.Error("consecutive entropy draws identical")
	}
	replay := NewStubHost()
	if got := replay.Entropy(); got != a {
		t.Errorf("zero-state stub drew %#x, want the deterministic %#x", got, a)
	}
	seeded := NewStubHost()
	seeded.EntropyState = 0xDEAD
	if got := seeded.Entropy(); got == a {
		t.Error("distinctly seeded stub replayed the default stream")
	}
}
