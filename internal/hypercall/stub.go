package hypercall

import "time"

// StubHost is a self-contained Host for tests and standalone guests: a
// fixed clock source, an in-memory console, a small ramdisk, and a
// loopback network that delivers written frames back to NetRead.
type StubHost struct {
	// Console accumulates Puts output.
	Console []string
	// Clock is advanced manually by tests.
	Clock time.Duration
	// Disk is the ramdisk contents, sector-indexed.
	Disk       map[int64][]byte
	SectorSize int
	Capacity   int64
	// Mem is the reported guest memory limit.
	Mem int64
	// TLSBase records the last SetTLS.
	TLSBase uint64
	// Halted records the exit status passed to Halt, or -1.
	Halted int
	// EntropyState is the splitmix64 state behind Entropy. Zero by
	// default, so a fresh stub draws a deterministic stream — tests and
	// the simulation stay replayable; hosts wanting distinct streams
	// seed it before handing the stub to a guest.
	EntropyState uint64

	frames [][]byte
}

// NewStubHost returns a StubHost with a 64 MB ramdisk and 512 MB guest
// memory limit.
func NewStubHost() *StubHost {
	return &StubHost{
		Disk:       make(map[int64][]byte),
		SectorSize: 512,
		Capacity:   64 << 20,
		Mem:        512 << 20,
		Halted:     -1,
	}
}

// WallTime implements Host.
func (h *StubHost) WallTime() time.Duration { return h.Clock }

// Puts implements Host.
func (h *StubHost) Puts(s string) { h.Console = append(h.Console, s) }

// Poll implements Host.
func (h *StubHost) Poll(timeout time.Duration) bool { return len(h.frames) > 0 }

// BlkInfo implements Host.
func (h *StubHost) BlkInfo() (int64, int) { return h.Capacity, h.SectorSize }

// BlkRead implements Host.
func (h *StubHost) BlkRead(sector int64, buf []byte) error {
	if data, ok := h.Disk[sector]; ok {
		copy(buf, data)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// BlkWrite implements Host.
func (h *StubHost) BlkWrite(sector int64, buf []byte) error {
	cp := make([]byte, len(buf))
	copy(cp, buf)
	h.Disk[sector] = cp
	return nil
}

// NetInfo implements Host.
func (h *StubHost) NetInfo() NetInfo { return DefaultNetInfo }

// NetRead implements Host.
func (h *StubHost) NetRead() ([]byte, bool) {
	if len(h.frames) == 0 {
		return nil, false
	}
	f := h.frames[0]
	h.frames = h.frames[1:]
	return f, true
}

// NetWrite implements Host (loopback: frames come back on NetRead).
func (h *StubHost) NetWrite(frame []byte) error {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	h.frames = append(h.frames, cp)
	return nil
}

// MemInfo implements Host.
func (h *StubHost) MemInfo() int64 { return h.Mem }

// SetTLS implements Host.
func (h *StubHost) SetTLS(base uint64) { h.TLSBase = base }

// Halt implements Host.
func (h *StubHost) Halt(status int) { h.Halted = status }

// Entropy implements Host: a splitmix64 step over EntropyState. Pure
// arithmetic — the stub backs the allocation-free deploy benchmarks,
// so the draw must not allocate or syscall. The state persists across
// deploy-kit recycling (the stub outlives UC incarnations), so every
// redeploy draws a fresh value.
func (h *StubHost) Entropy() uint64 {
	h.EntropyState += 0x9E3779B97F4A7C15
	x := h.EntropyState
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

var _ Host = (*StubHost)(nil)
