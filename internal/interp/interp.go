// Package interp is the managed language runtime inside a unikernel
// context — the reproduction's stand-in for the Node.js port the SEUSS
// prototype links into Rumprun (§6).
//
// A Runtime couples the MiniJS interpreter (internal/lang) to a
// unikernel (internal/libos): every interpreter allocation lands in the
// UC's simulated address space through the unikernel's bump heap, every
// evaluation step charges virtual CPU time, and the OpenWhisk-style
// invocation driver is a real MiniJS script run through the real
// interpreter. Snapshot diffs and AO effects are therefore measured
// consequences of running code.
//
// Because Go object graphs cannot live inside simulated pages, each
// snapshot carries a State payload; deploying re-creates the Go-level
// interpreter by silently (zero virtual time, no allocation charging)
// replaying the deterministic import sequence — the simulation
// equivalent of the memory image already containing that state.
package interp

import (
	"errors"
	"fmt"
	"time"

	"seuss/internal/costs"
	"seuss/internal/entropy"
	"seuss/internal/lang"
	"seuss/internal/libos"
)

// DriverSource is the invocation driver (§4): a real MiniJS script run
// at system initialization, before the runtime snapshot is captured. It
// keeps per-UC bookkeeping and wraps user functions with the platform's
// request/response protocol.
const DriverSource = `
var __driver = {requests: 0, status: "listening", proto: "http/1.1"};
function __handle(payload) {
	__driver.requests = __driver.requests + 1;
	var req = JSON.parse(payload);
	var res = main(req.args);
	if (res === undefined) { res = null; }
	return JSON.stringify({ok: true, result: res, seq: __driver.requests});
}
function __status() {
	return JSON.stringify({status: __driver.status, requests: __driver.requests});
}
`

// WarmSource is the "dummy" script of the interpreter anticipatory
// optimization: run through the interpreter before the base snapshot so
// parser tables, caches, and common code paths land in the shared image.
const WarmSource = `
function __warm() {
	var acc = [];
	for (var i = 0; i < 64; i++) { acc.push(i * 3 + 1); }
	var text = JSON.stringify({vals: acc, tag: "anticipatory"});
	var back = JSON.parse(text);
	var s = "";
	for (var k in back) { s = s + k; }
	return back.vals.length + s.length;
}
__warm();
`

// ErrNoFunction is returned by Invoke before a function is imported.
var ErrNoFunction = errors.New("interp: no function imported")

// State is the interpreter half of a snapshot payload (libos carries
// the other half).
type State struct {
	// InterpWarm records the interpreter's lazy first-run
	// initialization has happened in this lineage.
	InterpWarm bool
	// InterpAO records warming happened before the base snapshot.
	InterpAO bool
	// DriverStarted records the invocation driver is loaded and
	// listening.
	DriverStarted bool
	// Runtime names the interpreter profile this lineage runs
	// ("nodejs" when empty, for compatibility).
	Runtime string
	// ImportedSource is the user function, once a cold path imported
	// it ("" before).
	ImportedSource string
	// Requests is the driver's request counter at capture time (lives
	// in __driver.requests inside the guest; mirrored here so
	// rehydration can restore it).
	Requests int
	// DeployedDiffPages is the page diff of the snapshot this runtime
	// was deployed from; the next invocation rewrites a fraction of it
	// (mutable runtime structures CoW back in).
	DeployedDiffPages int
}

// Runtime is the guest software stack above the unikernel.
type Runtime struct {
	uk      *libos.Unikernel
	in      *lang.Interp
	prof    Profile
	st      State
	conn    *libos.Conn
	silent  bool // rehydration replay: no charging
	allocs  int64
	hookErr error
	rngSeed uint64
	// pristine records that the interpreter environment still equals the
	// state RestoreFromState replayed — no driver or user code has run
	// since — so the whole guest stack can be recycled as a deploy kit.
	pristine bool
	// staleSeed is rngSeed as RestoreFromState left it: the byte-exact
	// restore baseline every clone of the snapshot shares. Kit recycling
	// rewinds to it so a recycled deploy starts from the same state a
	// fresh rehydration would — and then the deploying host MUST call
	// Reseed, on every path, or siblings replay one RNG stream (the
	// snapshot-uniqueness bug of arXiv 2102.12892).
	staleSeed uint64
}

// NewRuntime wires a fresh Node.js-profile interpreter to a booted
// unikernel. The interpreter image itself is not yet loaded; call
// InitInterpreter (the once-per-interpreter system initialization) or
// RestoreFromState (the deploy path).
func NewRuntime(uk *libos.Unikernel) *Runtime {
	return NewRuntimeWithProfile(uk, NodeJS)
}

// NewRuntimeWithProfile wires a specific interpreter flavor. The RNG
// starts on a placeholder seed; every boot and deploy path follows up
// with Reseed (host entropy + deploy generation), so no two runtimes
// serve traffic on this constant.
func NewRuntimeWithProfile(uk *libos.Unikernel, prof Profile) *Runtime {
	r := &Runtime{uk: uk, prof: prof, rngSeed: entropy.Golden}
	r.st.Runtime = prof.Name
	r.in = lang.New(r.hooks())
	return r
}

// Profile returns the runtime's interpreter profile.
func (r *Runtime) Profile() Profile { return r.prof }

func (r *Runtime) hooks() lang.Hooks {
	return lang.Hooks{
		Alloc: func(n int) {
			if r.silent {
				return
			}
			r.allocs += int64(n)
			if _, err := r.uk.Alloc(int64(n)); err != nil && r.hookErr == nil {
				r.hookErr = err
			}
		},
		Step: func(n int) {
			if r.silent {
				return
			}
			r.uk.Env().ChargeCPU(time.Duration(n) * costs.StepTime)
		},
		Output: func(s string) {
			if r.silent {
				return
			}
			r.uk.Env().Output(s)
		},
		HTTPGet: func(url string) (string, error) {
			if r.silent {
				return "", nil
			}
			return r.uk.Env().HTTPGet(url)
		},
		Now: func() float64 {
			return float64(r.uk.Env().Now()) / float64(time.Millisecond)
		},
		Spin: func(ms float64) {
			if r.silent {
				return
			}
			r.uk.Env().ChargeCPU(time.Duration(ms * float64(time.Millisecond)))
		},
		Sleep: func(ms float64) {
			if r.silent {
				return
			}
			r.uk.Env().Block(time.Duration(ms * float64(time.Millisecond)))
		},
		Random: func() float64 {
			// xorshift64*: deterministic per runtime.
			r.rngSeed ^= r.rngSeed >> 12
			r.rngSeed ^= r.rngSeed << 25
			r.rngSeed ^= r.rngSeed >> 27
			return float64(r.rngSeed*0x2545F4914F6CDD1D>>11) / float64(uint64(1)<<53)
		},
	}
}

// Reseed re-derives the guest RNG seed from a host entropy draw and
// the deploy generation — the restore-time uniqueness step (DESIGN.md
// §14), called by the deploying host on every path: cold boot, warm
// deploy, lukewarm promote, recycled kit. The generation term alone
// guarantees sibling clones diverge (entropy.MixSeed is a bijection in
// gen), while a pinned (draw, gen) pair replays the identical stream —
// per-clone determinism for the fault matrix. Reseeding is host work,
// not guest activity, so it does not spoil pristineness.
func (r *Runtime) Reseed(draw, gen uint64) {
	r.rngSeed = entropy.MixSeed(draw, gen)
}

// RewindToStaleSeed undoes the deploy's reseed, returning the RNG to
// the shared restore baseline — the `entropy-stale` fault point's
// payload, which makes every clone replay one stream exactly as an
// unfixed snapshot restore would. No-op before the first restore.
func (r *Runtime) RewindToStaleSeed() {
	if r.staleSeed != 0 {
		r.rngSeed = r.staleSeed
	}
}

// Unikernel returns the underlying libos instance.
func (r *Runtime) Unikernel() *libos.Unikernel { return r.uk }

// State returns the interpreter payload for snapshot capture.
func (r *Runtime) State() State { return r.st }

// GuestAllocs returns the total guest-heap bytes charged by interpreter
// activity (diagnostics).
func (r *Runtime) GuestAllocs() int64 { return r.allocs }

// LimitSteps bounds the guest's *next* execution to n more interpreter
// steps (lang.ErrTooManySteps past the cap). This is how invocation
// deadlines reach the interpreter: deadline / costs.StepTime steps.
// n <= 0 removes the limit. The budget is relative to steps already
// consumed, so a long-lived hot UC never exhausts a lifetime budget.
func (r *Runtime) LimitSteps(n int64) { r.in.LimitSteps(n) }

// Steps returns total interpreter steps consumed over the runtime's
// lifetime (diagnostics).
func (r *Runtime) Steps() int64 { return r.in.Steps() }

// InitInterpreter loads the interpreter image into guest memory and
// boots it — the expensive once-per-interpreter step at system
// initialization (paid before the runtime snapshot, never on an
// invocation path).
func (r *Runtime) InitInterpreter() error {
	if !r.uk.Booted() {
		return libos.ErrNotBooted
	}
	r.pristine = false
	// Interpreter binary + initial heap: the bulk of the runtime image
	// (109.6 MB for the Node.js profile). Kernel, stack, and driver
	// make up the rest.
	if _, err := r.uk.Alloc(r.prof.ImageBytes); err != nil {
		return fmt.Errorf("interp: loading %s image: %w", r.prof.Name, err)
	}
	r.uk.Env().ChargeCPU(r.prof.InitCost)
	return nil
}

// StartDriver runs the invocation driver script and leaves the runtime
// listening for connections. Part of system initialization (B in Fig 2
// happens right after this).
func (r *Runtime) StartDriver() error {
	if r.st.DriverStarted {
		return errors.New("interp: driver already started")
	}
	r.pristine = false
	if err := r.uk.WriteFile("/driver.js", []byte(r.prof.DriverSource)); err != nil {
		return err
	}
	if _, err := r.in.RunSource(r.prof.DriverSource); err != nil {
		return fmt.Errorf("interp: driver script: %w", err)
	}
	r.st.DriverStarted = true
	return r.hookError()
}

// WarmInterpreter applies the interpreter anticipatory optimization:
// run the dummy script before capturing the base snapshot, migrating
// lazy interpreter initialization into the shared image and pre-growing
// caches to production depth.
func (r *Runtime) WarmInterpreter() error {
	r.pristine = false
	if err := r.ensureInterpFirstRun(); err != nil {
		return err
	}
	if _, err := r.in.RunSource(r.prof.WarmSource); err != nil {
		return fmt.Errorf("interp: warm script: %w", err)
	}
	if !r.st.InterpAO {
		if _, err := r.uk.Alloc(costs.InterpAOExtraBytes); err != nil {
			return err
		}
	}
	r.st.InterpAO = true
	return r.hookError()
}

// ensureInterpFirstRun performs the interpreter's lazy first-run
// initialization if this lineage never executed a script.
func (r *Runtime) ensureInterpFirstRun() error {
	if r.st.InterpWarm {
		return nil
	}
	if _, err := r.uk.Alloc(costs.InterpAOBytes); err != nil {
		return err
	}
	r.uk.Env().ChargeCPU(costs.InterpFirstUse)
	r.st.InterpWarm = true
	return nil
}

// Connect accepts the kernel's TCP connection into the UC (each
// deployed UC starts with its driver in a listening state).
func (r *Runtime) Connect() error {
	if !r.st.DriverStarted {
		return errors.New("interp: driver not started")
	}
	conn, err := r.uk.AcceptConnection()
	if err != nil {
		return err
	}
	r.conn = conn
	return nil
}

// Connected reports whether a live connection exists.
func (r *Runtime) Connected() bool { return r.conn != nil && r.conn.Alive() }

// ImportAndCompile receives user function source over the connection,
// compiles it, and defines it in the interpreter — the C step of a cold
// invocation. The function must define main(args).
func (r *Runtime) ImportAndCompile(src string) error {
	if !r.Connected() {
		return errors.New("interp: import without connection")
	}
	r.pristine = false
	if err := r.conn.Send(int64(len(src))); err != nil {
		return err
	}
	if err := r.ensureInterpFirstRun(); err != nil {
		return err
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return fmt.Errorf("interp: compile: %w", err)
	}
	// Module machinery + compiled-code metadata land in the guest heap.
	if _, err := r.uk.Alloc(costs.ImportMachineryBytes + int64(costs.CompileAllocFactor*lang.TreeSize(prog))); err != nil {
		return err
	}
	r.uk.Env().ChargeCPU(costs.CompileBase + time.Duration(len(src))*costs.CompilePerByte)
	if err := r.uk.WriteFile("/fn/main.js", []byte(src)); err != nil {
		return err
	}
	if _, err := r.in.Run(prog); err != nil {
		return fmt.Errorf("interp: module evaluation: %w", err)
	}
	r.st.ImportedSource = src
	return r.hookError()
}

// Imported reports whether a user function is loaded.
func (r *Runtime) Imported() bool { return r.st.ImportedSource != "" }

// Invoke sends one set of arguments (a JSON document) into the driver
// and runs the function, returning the driver's JSON reply. This is the
// shared tail of cold, warm, and hot paths.
func (r *Runtime) Invoke(argsJSON string) (string, error) {
	if !r.Imported() {
		return "", ErrNoFunction
	}
	if !r.Connected() {
		return "", errors.New("interp: invoke without connection")
	}
	if err := r.conn.Send(int64(len(argsJSON))); err != nil {
		return "", err
	}
	r.pristine = false
	r.uk.Env().ChargeCPU(costs.ArgImport)

	// Mutable runtime structures captured in the deployed image are
	// written on their next use and CoW back in: the per-invocation
	// cost that AO shrinks by shrinking diffs. The runtime's mutable
	// working set is finite, hence the cap.
	hot := int(float64(r.st.DeployedDiffPages) * costs.HotWriteFraction)
	if hot > costs.HotWriteCapPages {
		hot = costs.HotWriteCapPages
	}
	r.uk.DirtyHot(hot)
	r.st.DeployedDiffPages = 0 // only the first invocation after deploy re-dirties

	if _, err := r.uk.Alloc(costs.InvokeScratchBytes); err != nil {
		return "", err
	}
	if r.st.InterpAO {
		r.uk.Env().ChargeCPU(costs.DriverWarm)
	} else {
		r.uk.Env().ChargeCPU(costs.DriverCold)
	}

	payload := `{"args": ` + argsJSON + `}`
	r.st.Requests++
	v, err := r.in.CallGlobal("__handle", []lang.Value{payload})
	if err != nil {
		if te, ok := err.(*lang.ThrowError); ok {
			return `{"ok": false, "error": ` + lang.JSONStringify(lang.ToString(te.Value)) + `}`, nil
		}
		return "", err
	}
	if err := r.conn.Reply(int64(len(lang.ToString(v)))); err != nil {
		return "", err
	}
	if err := r.hookError(); err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("interp: driver returned %T", v)
	}
	return s, nil
}

// Requests returns the driver's in-guest request counter (read through
// the interpreter, proving the driver state is real).
func (r *Runtime) Requests() (int, error) {
	r.pristine = false
	v, err := r.in.CallGlobal("__status", nil)
	if err != nil {
		return 0, err
	}
	s, _ := v.(string)
	var n int
	_, err = fmt.Sscanf(s, `{"status":"listening","requests":%d}`, &n)
	if err != nil {
		return 0, fmt.Errorf("interp: bad status %q: %v", s, err)
	}
	return n, nil
}

// hookError surfaces allocation failures recorded by the lang hooks.
func (r *Runtime) hookError() error {
	err := r.hookErr
	r.hookErr = nil
	return err
}

// RestoreFromState rebuilds a runtime deployed from a snapshot: the
// unikernel must already be rehydrated. The driver script and imported
// source are replayed silently — zero virtual time, zero allocation
// charging — because on real hardware this state arrives inside the
// restored memory image. diffPages is the deployed snapshot's diff size.
func RestoreFromState(uk *libos.Unikernel, st State, diffPages int) (*Runtime, error) {
	name := st.Runtime
	if name == "" {
		name = NodeJS.Name
	}
	prof, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	r := NewRuntimeWithProfile(uk, prof)
	r.st = st
	r.st.Runtime = prof.Name
	r.st.DeployedDiffPages = diffPages
	r.silent = true
	defer func() { r.silent = false }()
	if st.DriverStarted {
		if _, err := r.in.RunSource(prof.DriverSource); err != nil {
			return nil, fmt.Errorf("interp: rehydrating driver: %w", err)
		}
	}
	if st.InterpAO {
		if _, err := r.in.RunSource(prof.WarmSource); err != nil {
			return nil, fmt.Errorf("interp: rehydrating warm state: %w", err)
		}
	}
	if st.ImportedSource != "" {
		if _, err := r.in.RunSource(st.ImportedSource); err != nil {
			return nil, fmt.Errorf("interp: rehydrating function: %w", err)
		}
	}
	if st.DriverStarted && st.Requests > 0 {
		// The captured driver counter arrives inside the memory image;
		// poke it back into the replayed interpreter.
		src := fmt.Sprintf("__driver.requests = %d;", st.Requests)
		if _, err := r.in.RunSource(src); err != nil {
			return nil, fmt.Errorf("interp: rehydrating driver counter: %w", err)
		}
	}
	r.pristine = true
	r.staleSeed = r.rngSeed
	return r, nil
}

// Pristine reports whether the interpreter environment still equals
// exactly what RestoreFromState replayed: no driver traffic, imports,
// or invocations have run since. A pristine runtime can be rebound to a
// fresh deployment of the same snapshot without replaying anything.
// Connecting does not spoil pristineness — connection state lives in
// libos and is reset by rehydration.
func (r *Runtime) Pristine() bool { return r.pristine }

// ResetForRedeploy rebinds a pristine runtime to a fresh deployment of
// the snapshot it was rehydrated from, restoring every field
// RestoreFromState would have set — without the replay, because
// pristine means the interpreter environment already matches. The
// unikernel must already be reattached and rehydrated. The RNG rewinds
// to the shared restore baseline; the deploy path reseeds it next, the
// same contract every other restore shape follows.
func (r *Runtime) ResetForRedeploy(st State, diffPages int) {
	r.st = st
	if r.st.Runtime == "" {
		r.st.Runtime = r.prof.Name
	}
	r.st.DeployedDiffPages = diffPages
	r.conn = nil
	r.silent = false
	r.allocs = 0
	r.hookErr = nil
	r.rngSeed = r.staleSeed
	r.in.LimitSteps(0)
}
