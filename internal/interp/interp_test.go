package interp

import (
	"strings"
	"testing"
	"time"

	"seuss/internal/costs"
	"seuss/internal/hypercall"
	"seuss/internal/lang"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// newRuntime boots a unikernel and loads the interpreter + driver —
// the full system-initialization sequence.
func newRuntime(t *testing.T) (*Runtime, *libos.CountingEnv) {
	t.Helper()
	st := mem.NewStore(0)
	as, err := pagetable.New(st)
	if err != nil {
		t.Fatal(err)
	}
	env := &libos.CountingEnv{}
	uk := libos.New(as, hypercall.NewStubHost(), env)
	if err := uk.Boot(); err != nil {
		t.Fatal(err)
	}
	r := NewRuntime(uk)
	if err := r.InitInterpreter(); err != nil {
		t.Fatal(err)
	}
	if err := r.StartDriver(); err != nil {
		t.Fatal(err)
	}
	return r, env
}

func TestDriverScriptIsRealMiniJS(t *testing.T) {
	if _, err := lang.Parse(DriverSource); err != nil {
		t.Fatalf("driver does not parse: %v", err)
	}
	if _, err := lang.Parse(WarmSource); err != nil {
		t.Fatalf("warm script does not parse: %v", err)
	}
}

func TestInitLoadsInterpreterImage(t *testing.T) {
	r, _ := newRuntime(t)
	// The interpreter image accounts for ~98 MiB (103 MB) of guest heap.
	if brk := r.Unikernel().HeapBrk(); brk-libos.HeapBase < 95<<20 {
		t.Errorf("heap after init = %d MB", (brk-libos.HeapBase)>>20)
	}
	if !r.State().DriverStarted {
		t.Error("driver not started")
	}
}

func TestInitRequiresBoot(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := pagetable.New(st)
	uk := libos.New(as, hypercall.NewStubHost(), &libos.CountingEnv{})
	r := NewRuntime(uk)
	if err := r.InitInterpreter(); err != libos.ErrNotBooted {
		t.Errorf("err = %v", err)
	}
}

func TestDoubleStartDriverFails(t *testing.T) {
	r, _ := newRuntime(t)
	if err := r.StartDriver(); err == nil {
		t.Error("double StartDriver succeeded")
	}
}

func TestImportInvokeFlow(t *testing.T) {
	r, _ := newRuntime(t)
	if r.Imported() {
		t.Fatal("imported before import")
	}
	if _, err := r.Invoke(`{}`); err != ErrNoFunction {
		t.Errorf("invoke before import: %v", err)
	}
	if err := r.ImportAndCompile(`function main(a) { return 1; }`); err == nil {
		t.Error("import without connection succeeded")
	}
	if err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := r.ImportAndCompile(`function main(args) { return {v: args.x + 1}; }`); err != nil {
		t.Fatal(err)
	}
	out, err := r.Invoke(`{"x": 41}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"v":42`) {
		t.Errorf("out = %q", out)
	}
}

func TestConnectRequiresDriver(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := pagetable.New(st)
	uk := libos.New(as, hypercall.NewStubHost(), &libos.CountingEnv{})
	uk.Boot()
	r := NewRuntime(uk)
	if err := r.Connect(); err == nil {
		t.Error("connect without driver succeeded")
	}
}

func TestImportRejectsBadSource(t *testing.T) {
	r, _ := newRuntime(t)
	r.Connect()
	if err := r.ImportAndCompile(`function main( {`); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestInvokeThrowBecomesDriverError(t *testing.T) {
	r, _ := newRuntime(t)
	r.Connect()
	r.ImportAndCompile(`function main(args) { throw "kaboom"; }`)
	out, err := r.Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ok": false`) || !strings.Contains(out, "kaboom") {
		t.Errorf("out = %q", out)
	}
}

func TestRequestCounterTracksInvocations(t *testing.T) {
	r, _ := newRuntime(t)
	r.Connect()
	r.ImportAndCompile(`function main(args) { return {}; }`)
	for i := 0; i < 3; i++ {
		if _, err := r.Invoke(`{}`); err != nil {
			t.Fatal(err)
		}
	}
	n, err := r.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("driver requests = %d", n)
	}
	if r.State().Requests != 3 {
		t.Errorf("state requests = %d", r.State().Requests)
	}
}

func TestWarmInterpreterSetsAOAndAllocates(t *testing.T) {
	r, env := newRuntime(t)
	cpu0 := env.CPU
	brk0 := r.Unikernel().HeapBrk()
	if err := r.WarmInterpreter(); err != nil {
		t.Fatal(err)
	}
	if !r.State().InterpAO || !r.State().InterpWarm {
		t.Errorf("state = %+v", r.State())
	}
	if env.CPU-cpu0 < costs.InterpFirstUse {
		t.Errorf("warm charged %v", env.CPU-cpu0)
	}
	grew := int64(r.Unikernel().HeapBrk() - brk0)
	if grew < costs.InterpAOBytes {
		t.Errorf("warm grew heap by %d", grew)
	}
}

func TestImportWithoutAOPaysFirstUse(t *testing.T) {
	r, env := newRuntime(t)
	r.Connect()
	cpu0 := env.CPU
	if err := r.ImportAndCompile(`function main(a) { return {}; }`); err != nil {
		t.Fatal(err)
	}
	if env.CPU-cpu0 < costs.InterpFirstUse {
		t.Errorf("first import without AO charged %v", env.CPU-cpu0)
	}
	if r.State().InterpAO {
		t.Error("InterpAO set without AO pass")
	}
	if !r.State().InterpWarm {
		t.Error("InterpWarm not set after first run")
	}
}

func TestCompileChargesBySourceSize(t *testing.T) {
	small, envS := newRuntime(t)
	small.Connect()
	small.WarmInterpreter()
	cpu0 := envS.CPU
	small.ImportAndCompile(`function main(a) { return {}; }`)
	smallCost := envS.CPU - cpu0

	big, envB := newRuntime(t)
	big.Connect()
	big.WarmInterpreter()
	var sb strings.Builder
	sb.WriteString(`function main(a) { var x = 0; `)
	for i := 0; i < 500; i++ {
		sb.WriteString("x = x + 1; ")
	}
	sb.WriteString(`return {x: x}; }`)
	cpu1 := envB.CPU
	big.ImportAndCompile(sb.String())
	bigCost := envB.CPU - cpu1
	if bigCost <= smallCost {
		t.Errorf("big compile %v !> small compile %v", bigCost, smallCost)
	}
}

func TestRestoreFromStateReplaysSilently(t *testing.T) {
	r, _ := newRuntime(t)
	r.Connect()
	r.WarmInterpreter()
	src := `var calls = 0; function main(args) { calls = calls + 1; return {calls: calls}; }`
	if err := r.ImportAndCompile(src); err != nil {
		t.Fatal(err)
	}
	r.Invoke(`{}`)
	r.Invoke(`{}`)

	// Simulate the snapshot/deploy cycle: clone the space, rebuild the
	// runtime from the state payload.
	st := r.State()
	ukState := r.Unikernel().State()
	space := r.Unikernel().Space()
	space.SetCoWAll()
	space.ClearDirty()
	space.Freeze()
	clone, err := space.Clone()
	if err != nil {
		t.Fatal(err)
	}
	env2 := &libos.CountingEnv{}
	uk2 := libos.New(clone, hypercall.NewStubHost(), env2)
	uk2.Rehydrate(ukState)
	r2, err := RestoreFromState(uk2, st, 500)
	if err != nil {
		t.Fatal(err)
	}
	if env2.CPU != 0 {
		t.Errorf("rehydration charged %v", env2.CPU)
	}
	if !r2.Imported() || !r2.State().InterpAO {
		t.Errorf("state lost: %+v", r2.State())
	}
	if err := r2.Connect(); err != nil {
		t.Fatal(err)
	}
	out, err := r2.Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	// Driver sequence number continues from the captured value; the
	// function's own counter restarts from the snapshot point (the
	// snapshot was taken at import time, before any invocation wrote
	// calls — matching the paper's warm-path semantics of re-running
	// from the post-compile image).
	if !strings.Contains(out, `"seq":3`) {
		t.Errorf("driver seq lost: %q", out)
	}
	if !strings.Contains(out, `"calls":1`) {
		t.Errorf("function state wrong: %q", out)
	}
}

func TestHotWriteCapBoundsDirtying(t *testing.T) {
	r, _ := newRuntime(t)
	r.Connect()
	r.WarmInterpreter()
	r.ImportAndCompile(`function main(a) { return {}; }`)
	// Pretend this runtime was deployed from an enormous snapshot.
	r.st.DeployedDiffPages = 1_000_000
	before := r.Unikernel().Space().Faults.Copied()
	if _, err := r.Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	faults := r.Unikernel().Space().Faults.Copied() - before
	if faults > costs.HotWriteCapPages+200 {
		t.Errorf("invocation dirtied %d pages; cap is %d", faults, costs.HotWriteCapPages)
	}
}

func TestGuestHTTPThroughHooks(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := pagetable.New(st)
	env := &libos.CountingEnv{
		HTTP:        func(url string) (string, error) { return "pong:" + url, nil },
		HTTPLatency: 250 * time.Millisecond,
	}
	uk := libos.New(as, hypercall.NewStubHost(), env)
	uk.Boot()
	r := NewRuntime(uk)
	r.InitInterpreter()
	r.StartDriver()
	r.Connect()
	r.ImportAndCompile(`function main(args) { return {body: http.get("svc")}; }`)
	blocked0 := env.Blocked
	out, err := r.Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pong:svc") {
		t.Errorf("out = %q", out)
	}
	if env.Blocked-blocked0 < 250*time.Millisecond {
		t.Errorf("guest IO did not block: %v", env.Blocked-blocked0)
	}
}

func TestGuestAllocsAccounted(t *testing.T) {
	r, _ := newRuntime(t)
	r.Connect()
	r.ImportAndCompile(`function main(args) { var a = []; for (var i = 0; i < 100; i++) { a.push({i: i}); } return {n: a.length}; }`)
	a0 := r.GuestAllocs()
	if _, err := r.Invoke(`{}`); err != nil {
		t.Fatal(err)
	}
	if r.GuestAllocs() <= a0 {
		t.Error("function allocations not charged to guest heap")
	}
}

func TestProfileRegistry(t *testing.T) {
	if _, err := ProfileByName("nodejs"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("python"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("cobol"); err == nil {
		t.Error("unknown profile resolved")
	}
	names := Profiles()
	if len(names) < 2 {
		t.Errorf("profiles = %v", names)
	}
	// Registration replaces.
	custom := Profile{Name: "custom", ImageBytes: 1 << 20, InitCost: time.Millisecond,
		DriverSource: DriverSource, WarmSource: WarmSource}
	RegisterProfile(custom)
	got, err := ProfileByName("custom")
	if err != nil || got.ImageBytes != 1<<20 {
		t.Errorf("custom profile: %+v, %v", got, err)
	}
}

func TestPythonProfileRuntime(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := pagetable.New(st)
	env := &libos.CountingEnv{}
	uk := libos.New(as, hypercall.NewStubHost(), env)
	uk.Boot()
	r := NewRuntimeWithProfile(uk, Python)
	if err := r.InitInterpreter(); err != nil {
		t.Fatal(err)
	}
	if err := r.StartDriver(); err != nil {
		t.Fatal(err)
	}
	if r.State().Runtime != "python" {
		t.Errorf("runtime = %q", r.State().Runtime)
	}
	// Python's resident image is much smaller than Node's.
	heap := int64(uk.HeapBrk() - libos.HeapBase)
	if heap > 50<<20 {
		t.Errorf("python heap = %d MB", heap>>20)
	}
	r.Connect()
	if err := r.ImportAndCompile(`function main(a) { return {ok: 1}; }`); err != nil {
		t.Fatal(err)
	}
	out, err := r.Invoke(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ok":1`) {
		t.Errorf("out = %q", out)
	}
}

func TestRestorePreservesRuntimeName(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := pagetable.New(st)
	env := &libos.CountingEnv{}
	uk := libos.New(as, hypercall.NewStubHost(), env)
	uk.Boot()
	r := NewRuntimeWithProfile(uk, Python)
	r.InitInterpreter()
	r.StartDriver()

	stState := r.State()
	ukState := uk.State()
	space := uk.Space()
	space.SetCoWAll()
	space.ClearDirty()
	space.Freeze()
	clone, _ := space.Clone()
	uk2 := libos.New(clone, hypercall.NewStubHost(), &libos.CountingEnv{})
	uk2.Rehydrate(ukState)
	r2, err := RestoreFromState(uk2, stState, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Profile().Name != "python" {
		t.Errorf("restored profile = %q", r2.Profile().Name)
	}
}
