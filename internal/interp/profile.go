package interp

import (
	"fmt"
	"time"

	"seuss/internal/costs"
)

// Profile describes one supported interpreter flavor. SEUSS keeps one
// base runtime snapshot per supported interpreter (§4); the prototype
// shipped Rumprun ports of Node.js and Python. In the reproduction
// every flavor executes MiniJS — what distinguishes interpreters for
// the experiments is their runtime *profile*: image size, boot cost,
// and driver script.
type Profile struct {
	// Name identifies the runtime ("nodejs", "python").
	Name string
	// ImageBytes is the resident interpreter image (binary + initial
	// heap) loaded at system initialization.
	ImageBytes int64
	// InitCost is the interpreter boot time at system initialization.
	InitCost time.Duration
	// DriverSource is the runtime's invocation driver script.
	DriverSource string
	// WarmSource is the runtime's anticipatory-optimization dummy
	// script.
	WarmSource string
}

// NodeJS is the profile of the paper's primary runtime; its image
// size reproduces Table 1's 109.6 MB runtime snapshot.
var NodeJS = Profile{
	Name:         "nodejs",
	ImageBytes:   costs.RuntimeImageBytes - int64(6<<20),
	InitCost:     costs.InterpreterInit,
	DriverSource: DriverSource,
	WarmSource:   WarmSource,
}

// Python is the second runtime the prototype ports: a smaller resident
// image and faster interpreter boot, the same driver protocol.
var Python = Profile{
	Name:         "python",
	ImageBytes:   int64(38 << 20),
	InitCost:     180 * time.Millisecond,
	DriverSource: DriverSource,
	WarmSource:   WarmSource,
}

var profiles = map[string]Profile{}

// RegisterProfile adds (or replaces) a runtime profile.
func RegisterProfile(p Profile) {
	profiles[p.Name] = p
}

// ProfileByName looks a registered profile up.
func ProfileByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("interp: unknown runtime %q", name)
	}
	return p, nil
}

// Profiles returns the registered runtime names.
func Profiles() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	return out
}

func init() {
	RegisterProfile(NodeJS)
	RegisterProfile(Python)
}
