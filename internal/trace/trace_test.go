package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindDeploy})
	tr.Span(KindInvoke, "k", "cold", 0, time.Millisecond)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded")
	}
}

func TestRecordAndQuery(t *testing.T) {
	tr := New(0)
	tr.Span(KindInvoke, "fn", "cold", 10*time.Millisecond, 7*time.Millisecond)
	tr.Record(Event{At: 20 * time.Millisecond, Kind: KindReclaim, Key: "fn2"})
	tr.Span(KindInvoke, "fn", "hot", 30*time.Millisecond, time.Millisecond)

	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	invokes := tr.ByKind(KindInvoke)
	if len(invokes) != 2 || invokes[0].Path != "cold" || invokes[1].Path != "hot" {
		t.Errorf("invokes = %+v", invokes)
	}
	if got := tr.Summary(); !strings.Contains(got, "invoke=2") || !strings.Contains(got, "reclaim=1") {
		t.Errorf("summary = %q", got)
	}
}

func TestMaxEventsCap(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Kind: KindDeploy})
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d, want capped 2", tr.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(0)
	tr.Span(KindInvoke, "a/b", "warm", time.Second, 3*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindInvoke || ev.Key != "a/b" || ev.Dur != 3*time.Millisecond {
		t.Errorf("round trip = %+v", ev)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New(0)
	tr.Span(KindInvoke, "fn", "cold", time.Millisecond, 7*time.Millisecond)
	tr.Record(Event{At: 2 * time.Millisecond, Kind: KindReclaim})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["dur"].(float64) != 7000 {
		t.Errorf("span = %v", events[0])
	}
	if events[1]["ph"] != "i" {
		t.Errorf("instant = %v", events[1])
	}
	// Distinct kinds land in distinct lanes.
	if events[0]["tid"] == events[1]["tid"] {
		t.Error("lanes collided")
	}
}

func TestChildMergesIntoParent(t *testing.T) {
	parent := New(0)
	parent.Record(Event{At: 5 * time.Millisecond, Kind: KindReclaim})
	c1 := parent.Child()
	c2 := parent.Child()
	c1.Span(KindInvoke, "a", "cold", 1*time.Millisecond, time.Millisecond)
	c2.Span(KindInvoke, "b", "hot", 3*time.Millisecond, time.Millisecond)
	c1.Record(Event{At: 9 * time.Millisecond, Kind: KindEvict, Key: "a"})

	if parent.Len() != 4 {
		t.Fatalf("parent.Len() = %d, want 4", parent.Len())
	}
	evs := parent.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	// Merged view is ordered by virtual timestamp across children.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of timestamp order: %v after %v", evs[i].At, evs[i-1].At)
		}
	}
	if evs[0].Key != "a" || evs[1].Key != "b" || evs[3].Kind != KindEvict {
		t.Errorf("merged order wrong: %+v", evs)
	}
	if got := len(parent.ByKind(KindInvoke)); got != 2 {
		t.Errorf("ByKind(invoke) across children = %d, want 2", got)
	}

	// Children are independent leaves: each sees only its own events.
	if c1.Len() != 2 || c2.Len() != 1 {
		t.Errorf("child lens = %d, %d; want 2, 1", c1.Len(), c2.Len())
	}
}

func TestChildOfNilTracer(t *testing.T) {
	var tr *Tracer
	c := tr.Child()
	if c != nil {
		t.Fatal("nil tracer returned non-nil child")
	}
	c.Record(Event{Kind: KindDeploy}) // must not panic
	if c.Len() != 0 {
		t.Error("nil child recorded")
	}
}

func TestChildInheritsCap(t *testing.T) {
	parent := New(2)
	c := parent.Child()
	for i := 0; i < 5; i++ {
		c.Record(Event{At: time.Duration(i), Kind: KindInvoke})
	}
	if c.Len() != 2 {
		t.Errorf("child retained %d events, want cap 2", c.Len())
	}
}
