package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindDeploy})
	tr.Span(KindInvoke, "k", "cold", 0, time.Millisecond)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded")
	}
}

func TestRecordAndQuery(t *testing.T) {
	tr := New(0)
	tr.Span(KindInvoke, "fn", "cold", 10*time.Millisecond, 7*time.Millisecond)
	tr.Record(Event{At: 20 * time.Millisecond, Kind: KindReclaim, Key: "fn2"})
	tr.Span(KindInvoke, "fn", "hot", 30*time.Millisecond, time.Millisecond)

	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	invokes := tr.ByKind(KindInvoke)
	if len(invokes) != 2 || invokes[0].Path != "cold" || invokes[1].Path != "hot" {
		t.Errorf("invokes = %+v", invokes)
	}
	if got := tr.Summary(); !strings.Contains(got, "invoke=2") || !strings.Contains(got, "reclaim=1") {
		t.Errorf("summary = %q", got)
	}
}

func TestMaxEventsCap(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Kind: KindDeploy})
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d, want capped 2", tr.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(0)
	tr.Span(KindInvoke, "a/b", "warm", time.Second, 3*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindInvoke || ev.Key != "a/b" || ev.Dur != 3*time.Millisecond {
		t.Errorf("round trip = %+v", ev)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New(0)
	tr.Span(KindInvoke, "fn", "cold", time.Millisecond, 7*time.Millisecond)
	tr.Record(Event{At: 2 * time.Millisecond, Kind: KindReclaim})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		OtherData   map[string]string        `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	events := doc.TraceEvents
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if doc.OtherData["events"] != "2" || doc.OtherData["dropped"] != "0" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	if events[0]["ph"] != "X" || events[0]["dur"].(float64) != 7000 {
		t.Errorf("span = %v", events[0])
	}
	if events[1]["ph"] != "i" {
		t.Errorf("instant = %v", events[1])
	}
	// Distinct kinds land in distinct lanes.
	if events[0]["tid"] == events[1]["tid"] {
		t.Error("lanes collided")
	}
}

func TestChildMergesIntoParent(t *testing.T) {
	parent := New(0)
	parent.Record(Event{At: 5 * time.Millisecond, Kind: KindReclaim})
	c1 := parent.Child()
	c2 := parent.Child()
	c1.Span(KindInvoke, "a", "cold", 1*time.Millisecond, time.Millisecond)
	c2.Span(KindInvoke, "b", "hot", 3*time.Millisecond, time.Millisecond)
	c1.Record(Event{At: 9 * time.Millisecond, Kind: KindEvict, Key: "a"})

	if parent.Len() != 4 {
		t.Fatalf("parent.Len() = %d, want 4", parent.Len())
	}
	evs := parent.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	// Merged view is ordered by virtual timestamp across children.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of timestamp order: %v after %v", evs[i].At, evs[i-1].At)
		}
	}
	if evs[0].Key != "a" || evs[1].Key != "b" || evs[3].Kind != KindEvict {
		t.Errorf("merged order wrong: %+v", evs)
	}
	if got := len(parent.ByKind(KindInvoke)); got != 2 {
		t.Errorf("ByKind(invoke) across children = %d, want 2", got)
	}

	// Children are independent leaves: each sees only its own events.
	if c1.Len() != 2 || c2.Len() != 1 {
		t.Errorf("child lens = %d, %d; want 2, 1", c1.Len(), c2.Len())
	}
}

func TestChildOfNilTracer(t *testing.T) {
	var tr *Tracer
	c := tr.Child()
	if c != nil {
		t.Fatal("nil tracer returned non-nil child")
	}
	c.Record(Event{Kind: KindDeploy}) // must not panic
	if c.Len() != 0 {
		t.Error("nil child recorded")
	}
}

func TestChildInheritsCap(t *testing.T) {
	parent := New(2)
	c := parent.Child()
	for i := 0; i < 5; i++ {
		c.Record(Event{At: time.Duration(i), Kind: KindInvoke})
	}
	if c.Len() != 2 {
		t.Errorf("child retained %d events, want cap 2", c.Len())
	}
}

func TestDroppedAccounting(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Record(Event{At: time.Duration(i), Kind: KindDeploy})
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tr.Dropped())
	}
	if got := tr.Summary(); !strings.Contains(got, "dropped=7") {
		t.Errorf("summary lacks drop accounting: %q", got)
	}
	// Unlimited tracers never drop and never report it.
	unl := New(0)
	unl.Record(Event{Kind: KindDeploy})
	if unl.Dropped() != 0 || strings.Contains(unl.Summary(), "dropped") {
		t.Errorf("unlimited tracer reported drops: %q", unl.Summary())
	}
}

func TestBudgetIsPoolWide(t *testing.T) {
	// The New(max) contract: max events across the whole tree, not
	// max per buffer. With 4 children and max=10, parent+children
	// together must retain exactly 10 and drop the rest.
	const max = 10
	parent := New(max)
	children := make([]*Tracer, 4)
	for i := range children {
		children[i] = parent.Child()
	}
	total := 0
	for round := 0; round < 5; round++ {
		parent.Record(Event{At: time.Duration(total), Kind: KindDeploy})
		total++
		for _, c := range children {
			c.Record(Event{At: time.Duration(total), Kind: KindInvoke})
			total++
		}
	}
	if parent.Len() != max {
		t.Errorf("tree retained %d events, want pool-wide cap %d", parent.Len(), max)
	}
	if got := parent.Dropped(); got != int64(total-max) {
		t.Errorf("Dropped = %d, want %d", got, total-max)
	}
}

func TestConcurrentRecordEventsDropped(t *testing.T) {
	// Hammer a capped tracer tree from many goroutines while readers
	// poll; meant to run under -race. Invariants: retained ≤ max, and
	// retained + dropped == total recorded once the dust settles.
	const (
		max        = 64
		writers    = 8
		perWriter  = 500
		totalElems = writers * perWriter
	)
	parent := New(max)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		tr := parent
		if w%2 == 1 {
			tr = parent.Child()
		}
		wg.Add(1)
		go func(tr *Tracer, w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(Event{At: time.Duration(w*perWriter + i), Kind: KindInvoke})
			}
		}(tr, w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if parent.Len() > max {
				t.Errorf("Len %d exceeded cap %d mid-run", parent.Len(), max)
				return
			}
			_ = parent.Events()
			_ = parent.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if parent.Len() != max {
		t.Errorf("Len = %d, want %d", parent.Len(), max)
	}
	if got := parent.Len() + int(parent.Dropped()); got != totalElems {
		t.Errorf("Len+Dropped = %d, want %d", got, totalElems)
	}
}

func TestSubscribe(t *testing.T) {
	parent := New(0)
	ch, cancel := parent.Subscribe(16)
	c := parent.Child()
	parent.Record(Event{At: 1, Kind: KindDeploy})
	c.Record(Event{At: 2, Kind: KindInvoke, Key: "fn"})
	got := []Event{<-ch, <-ch}
	if got[0].Kind != KindDeploy || got[1].Key != "fn" {
		t.Errorf("subscription saw %+v", got)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel not closed after cancel")
	}
	cancel() // idempotent
	// Post-cancel records must not panic or deliver.
	parent.Record(Event{At: 3, Kind: KindEvict})
}

func TestSubscribeFullBufferDoesNotBlock(t *testing.T) {
	tr := New(0)
	_, cancel := tr.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			tr.Record(Event{At: time.Duration(i), Kind: KindDeploy})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("recorder blocked on a full subscriber")
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d, want 10", tr.Len())
	}
}

func TestSubscribeNilTracer(t *testing.T) {
	var tr *Tracer
	ch, cancel := tr.Subscribe(4)
	if _, ok := <-ch; ok {
		t.Error("nil tracer subscription delivered an event")
	}
	cancel()
}

func TestForEachSortedMergesShards(t *testing.T) {
	parent := New(0)
	c1, c2 := parent.Child(), parent.Child()
	// Each shard's buffer is monotonic on its own clock; the merged
	// walk must interleave them globally sorted.
	c1.Record(Event{At: 1, Kind: KindInvoke})
	c1.Record(Event{At: 5, Kind: KindInvoke})
	c2.Record(Event{At: 2, Kind: KindInvoke})
	c2.Record(Event{At: 4, Kind: KindInvoke})
	parent.Record(Event{At: 3, Kind: KindReclaim})
	var ats []time.Duration
	parent.ForEachSorted(func(ev Event) bool {
		ats = append(ats, ev.At)
		return true
	})
	want := []time.Duration{1, 2, 3, 4, 5}
	if len(ats) != len(want) {
		t.Fatalf("visited %d events, want %d", len(ats), len(want))
	}
	for i := range want {
		if ats[i] != want[i] {
			t.Fatalf("order = %v, want %v", ats, want)
		}
	}
	// Early termination.
	n := 0
	parent.ForEachSorted(func(Event) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestForEachSortedUnsortedBuffer(t *testing.T) {
	// A buffer recorded out of timestamp order (e.g. a manually driven
	// clock) still yields a globally sorted walk.
	tr := New(0)
	tr.Record(Event{At: 5, Kind: KindInvoke})
	tr.Record(Event{At: 1, Kind: KindInvoke})
	tr.Record(Event{At: 3, Kind: KindInvoke})
	var ats []time.Duration
	tr.ForEachSorted(func(ev Event) bool {
		ats = append(ats, ev.At)
		return true
	})
	for i := 1; i < len(ats); i++ {
		if ats[i] < ats[i-1] {
			t.Fatalf("unsorted walk: %v", ats)
		}
	}
}

func TestWriteJSONLStreamsSorted(t *testing.T) {
	parent := New(0)
	c := parent.Child()
	c.Record(Event{At: 2 * time.Millisecond, Kind: KindInvoke, ID: 7})
	parent.Record(Event{At: 1 * time.Millisecond, Kind: KindDeploy})
	var buf bytes.Buffer
	if err := parent.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var first, second Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Kind != KindDeploy || second.ID != 7 {
		t.Errorf("stream order: %+v then %+v", first, second)
	}
}
