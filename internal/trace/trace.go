// Package trace records structured events from the SEUSS node — which
// invocation path ran, how long each stage took, when the OOM policy
// reclaimed, when snapshots were captured or evicted — on the virtual
// clock. Traces export as JSON lines or as Chrome trace-event format
// (load the file at chrome://tracing or https://ui.perfetto.dev to see
// the node's timeline).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the node.
const (
	KindDeploy  Kind = "deploy"
	KindConnect Kind = "connect"
	KindImport  Kind = "import"
	KindCapture Kind = "capture"
	KindExecute Kind = "execute"
	KindInvoke  Kind = "invoke" // whole-invocation span
	KindDestroy Kind = "destroy"
	KindReclaim Kind = "reclaim"
	KindEvict   Kind = "evict"
	KindMigrate Kind = "migrate"
	KindFault   Kind = "fault" // injected or contained failure

)

// Event is one recorded occurrence: an instant (Dur == 0) or a span.
type Event struct {
	// At is the event's start on the virtual clock.
	At time.Duration `json:"at"`
	// Dur is the span length (0 for instants).
	Dur time.Duration `json:"dur,omitempty"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Key is the function involved, if any.
	Key string `json:"key,omitempty"`
	// Path is cold/warm/hot for invocation spans.
	Path string `json:"path,omitempty"`
	// Detail carries free-form context ("3 idle UCs reclaimed").
	Detail string `json:"detail,omitempty"`
}

// Tracer accumulates events. A nil *Tracer is valid and records
// nothing, so instrumented code needs no conditionals.
//
// A Tracer is safe for concurrent use: the shards of a node pool run on
// independent goroutines and may share one tracer, so recording and
// reading are serialized by an internal mutex. Event timestamps are
// whatever virtual clock the recorder read — in a pool, events from
// different shards interleave on their own per-shard clocks.
//
// For a sharded recorder, prefer one Child per shard: each child has a
// private buffer (its mutex is never contended when only its shard
// records to it), and the parent's readers see the union.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	max    int
	// children are per-shard sub-tracers; readers merge them in.
	children []*Tracer
}

// New returns a tracer retaining at most max events (0 = unlimited).
func New(max int) *Tracer { return &Tracer{max: max} }

// Child returns a tracer recording into a private buffer while the
// parent's readers (Events, Len, ByKind, writers) see the union of the
// parent's own events and every child's. One child per shard keeps the
// record path contention-free — a child's mutex is only ever taken by
// its shard goroutine and by readers. Safe on a nil tracer (returns a
// nil child, which records nothing).
func (t *Tracer) Child() *Tracer {
	if t == nil {
		return nil
	}
	c := New(t.max)
	t.mu.Lock()
	t.children = append(t.children, c)
	t.mu.Unlock()
	return c
}

// Record appends an event. Safe on a nil tracer.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && len(t.events) >= t.max {
		return
	}
	t.events = append(t.events, ev)
}

// Span records a span event. Safe on a nil tracer.
func (t *Tracer) Span(kind Kind, key, path string, at, dur time.Duration) {
	t.Record(Event{At: at, Dur: dur, Kind: kind, Key: key, Path: path})
}

// Events returns the recorded events. A tracer with children returns
// the merged union ordered by virtual timestamp (children run on
// independent clocks, so timestamp order is the only meaningful one);
// a leaf tracer returns its events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	children := t.children
	t.mu.Unlock()
	for _, c := range children {
		out = append(out, c.Events()...)
	}
	if len(children) > 0 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	}
	return out
}

// Len returns the number of recorded events, including children's.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.events)
	children := t.children
	t.mu.Unlock()
	for _, c := range children {
		n += c.Len()
	}
	return n
}

// ByKind returns the events of one kind.
func (t *Tracer) ByKind(k Kind) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL writes the trace as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace-event format record.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON. Spans
// become complete ("X") events; instants become instant ("i") events.
// Rows (tids) group by event kind so the timeline reads as lanes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	lanes := map[Kind]int{}
	var out []chromeEvent
	for _, ev := range t.Events() {
		lane, ok := lanes[ev.Kind]
		if !ok {
			lane = len(lanes) + 1
			lanes[ev.Kind] = lane
		}
		name := string(ev.Kind)
		if ev.Key != "" {
			name += " " + ev.Key
		}
		args := map[string]string{}
		if ev.Path != "" {
			args["path"] = ev.Path
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		ce := chromeEvent{
			Name: name,
			TS:   float64(ev.At.Microseconds()),
			PID:  1,
			TID:  lane,
			Args: args,
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(ev.Dur.Microseconds())
		} else {
			ce.Phase = "i"
		}
		out = append(out, ce)
	}
	return json.NewEncoder(w).Encode(out)
}

// Summary renders a one-line-per-kind count summary.
func (t *Tracer) Summary() string {
	counts := map[Kind]int{}
	var order []Kind
	for _, ev := range t.Events() {
		if counts[ev.Kind] == 0 {
			order = append(order, ev.Kind)
		}
		counts[ev.Kind]++
	}
	var sb strings.Builder
	for _, k := range order {
		fmt.Fprintf(&sb, "%s=%d ", k, counts[k])
	}
	return strings.TrimSpace(sb.String())
}
