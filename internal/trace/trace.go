// Package trace records structured events from the SEUSS node — which
// invocation path ran, how long each stage took, when the OOM policy
// reclaimed, when snapshots were captured or evicted — on the virtual
// clock. Traces export as JSON lines or as Chrome trace-event format
// (load the file at chrome://tracing or https://ui.perfetto.dev to see
// the node's timeline).
//
// Drop accounting: a tracer built with New(max) retains at most max
// events ACROSS ITS WHOLE TREE — the budget is shared by the parent
// and every Child(), so an N-shard pool holds max events total, not
// (N+1)×max. Once the budget is spent, Record drops the newest events
// and counts them; Dropped exposes the count, Summary and the export
// metadata carry it, so a truncated trace is always distinguishable
// from a complete one.
//
// Live export: Subscribe registers a bounded channel that receives
// every subsequently recorded event (a full subscriber misses events
// rather than stalling the recorder), which is how the node serves
// /trace?follow=1 without the retained buffer being the only window
// into a run.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the node.
const (
	KindDeploy  Kind = "deploy"
	KindConnect Kind = "connect"
	KindImport  Kind = "import"
	KindCapture Kind = "capture"
	KindExecute Kind = "execute"
	KindInvoke  Kind = "invoke" // whole-invocation span
	KindDestroy Kind = "destroy"
	KindReclaim Kind = "reclaim"
	KindEvict   Kind = "evict"
	KindDemote  Kind = "demote"  // snapshot written to the disk tier
	KindPromote Kind = "promote" // snapshot restored from the disk tier
	KindMigrate Kind = "migrate"
	KindFault   Kind = "fault"  // injected or contained failure
	KindGossip  Kind = "gossip" // scheduler manifest exchange round
	KindFetch   Kind = "fetch"  // content-addressed layer transfer
	KindStale   Kind = "stale"  // stale directory entry pruned

	KindCrash    Kind = "crash"    // member crashed, partitioned, or declared dead
	KindFailover Kind = "failover" // invocation re-picked off an unreachable member
	KindRepair   Kind = "repair"   // redundancy restored for an orphaned lineage
	KindRejoin   Kind = "rejoin"   // member rejoined and resynced its manifest

	KindWorkingSet Kind = "workingset" // working-set record/merge/prefetch activity
)

// Event is one recorded occurrence: an instant (Dur == 0) or a span.
type Event struct {
	// At is the event's start on the virtual clock.
	At time.Duration `json:"at"`
	// Dur is the span length (0 for instants).
	Dur time.Duration `json:"dur,omitempty"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// ID is the request ID for per-invocation spans (0 when the event
	// is not tied to one request).
	ID uint64 `json:"id,omitempty"`
	// Key is the function involved, if any.
	Key string `json:"key,omitempty"`
	// Path is cold/warm/hot for invocation spans.
	Path string `json:"path,omitempty"`
	// Detail carries free-form context ("3 idle UCs reclaimed").
	Detail string `json:"detail,omitempty"`
	// Reseed is the deploy generation the serving UC's RNG seed was
	// mixed with (invoke spans; 0 when the span deployed nothing new).
	Reseed uint64 `json:"reseed,omitempty"`
}

// shared is the state one tracer tree holds in common: the retention
// budget, the drop counter, and the live subscriber set. Children
// created with Child share their parent's instance, which is what
// makes New(max) a pool-wide contract.
type shared struct {
	max     int          // retention budget across the tree (0 = unlimited)
	used    atomic.Int64 // events currently retained tree-wide
	dropped atomic.Int64 // events dropped after the budget filled

	subCount atomic.Int32 // len(subs); checked before taking subMu
	subMu    sync.Mutex
	subs     []chan Event
}

// take reserves one budget slot; false means the event must drop.
func (sh *shared) take() bool {
	if sh.max <= 0 {
		return true
	}
	if sh.used.Add(1) > int64(sh.max) {
		sh.used.Add(-1)
		sh.dropped.Add(1)
		return false
	}
	return true
}

// publish fans an event out to subscribers, never blocking the
// recorder: a subscriber whose buffer is full misses the event.
func (sh *shared) publish(ev Event) {
	sh.subMu.Lock()
	for _, ch := range sh.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	sh.subMu.Unlock()
}

// Tracer accumulates events. A nil *Tracer is valid and records
// nothing, so instrumented code needs no conditionals.
//
// A Tracer is safe for concurrent use: the shards of a node pool run on
// independent goroutines and may share one tracer, so recording and
// reading are serialized by an internal mutex. Event timestamps are
// whatever virtual clock the recorder read — in a pool, events from
// different shards interleave on their own per-shard clocks.
//
// For a sharded recorder, prefer one Child per shard: each child has a
// private buffer (its mutex is never contended when only its shard
// records to it), the parent's readers see the union, and the
// retention budget stays pool-wide.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	sh     *shared
	// children are per-shard sub-tracers; readers merge them in.
	children []*Tracer
}

// New returns a tracer retaining at most max events (0 = unlimited).
// The cap covers the tracer and every Child() transitively: it is a
// tree-wide budget, not a per-buffer one.
func New(max int) *Tracer { return &Tracer{sh: &shared{max: max}} }

// Child returns a tracer recording into a private buffer while the
// parent's readers (Events, Len, ByKind, writers) see the union of the
// parent's own events and every child's. One child per shard keeps the
// record path contention-free — a child's mutex is only ever taken by
// its shard goroutine and by readers. The child draws on the parent's
// retention budget and publishes to the parent's subscribers. Safe on
// a nil tracer (returns a nil child, which records nothing).
func (t *Tracer) Child() *Tracer {
	if t == nil {
		return nil
	}
	c := &Tracer{sh: t.sh}
	t.mu.Lock()
	t.children = append(t.children, c)
	t.mu.Unlock()
	return c
}

// Record appends an event, dropping it (and counting the drop) when
// the tree-wide retention budget is spent. Safe on a nil tracer.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	if !t.sh.take() {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
	if t.sh.subCount.Load() != 0 {
		t.sh.publish(ev)
	}
}

// Span records a span event. Safe on a nil tracer.
func (t *Tracer) Span(kind Kind, key, path string, at, dur time.Duration) {
	t.Record(Event{At: at, Dur: dur, Kind: kind, Key: key, Path: path})
}

// Dropped returns the number of events discarded tree-wide after the
// retention budget filled. Safe on a nil tracer.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.sh.dropped.Load()
}

// Cap returns the tree-wide retention budget (0 = unlimited).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return t.sh.max
}

// Subscribe registers a live feed of every event recorded anywhere in
// the tracer's tree from now on, buffered to buf events (minimum 1).
// The recorder never blocks on a subscriber: events arriving while the
// buffer is full are not delivered to that subscriber. The returned
// cancel function unregisters the feed and closes the channel; it is
// idempotent and must be called to release the subscription.
func (t *Tracer) Subscribe(buf int) (<-chan Event, func()) {
	if t == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	sh := t.sh
	sh.subMu.Lock()
	sh.subs = append(sh.subs, ch)
	sh.subMu.Unlock()
	sh.subCount.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			sh.subMu.Lock()
			for i, c := range sh.subs {
				if c == ch {
					sh.subs = append(sh.subs[:i], sh.subs[i+1:]...)
					break
				}
			}
			// Closed under subMu: publish holds the lock while sending,
			// so no send can race the close.
			close(ch)
			sh.subMu.Unlock()
			sh.subCount.Add(-1)
		})
	}
	return ch, cancel
}

// Events returns the recorded events. A tracer with children returns
// the merged union ordered by virtual timestamp (children run on
// independent clocks, so timestamp order is the only meaningful one);
// a leaf tracer returns its events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	children := t.children
	t.mu.Unlock()
	for _, c := range children {
		out = append(out, c.Events()...)
	}
	if len(children) > 0 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	}
	return out
}

// Len returns the number of recorded events, including children's.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.events)
	children := t.children
	t.mu.Unlock()
	for _, c := range children {
		n += c.Len()
	}
	return n
}

// ByKind returns the events of one kind.
func (t *Tracer) ByKind(k Kind) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// snapshotBuffers copies each buffer in the tree separately: one slice
// for this tracer's own events plus one per (transitive) child. Each
// slice preserves its buffer's record order.
func (t *Tracer) snapshotBuffers() [][]Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	own := make([]Event, len(t.events))
	copy(own, t.events)
	children := append([]*Tracer(nil), t.children...)
	t.mu.Unlock()
	parts := [][]Event{own}
	for _, c := range children {
		parts = append(parts, c.snapshotBuffers()...)
	}
	return parts
}

// ForEachSorted visits the tree's events in virtual-timestamp order
// without first materializing one merged slice: each buffer is
// snapshotted independently and the visit is a k-way merge across
// them (k = buffers, i.e. shards + 1 — small). Each shard records on a
// monotonic virtual clock, so its buffer is normally already sorted;
// a buffer found out of order is sorted in place before merging, so
// the global ordering guarantee holds regardless. Returning false from
// fn stops the walk.
func (t *Tracer) ForEachSorted(fn func(Event) bool) {
	parts := t.snapshotBuffers()
	live := parts[:0]
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i].At < p[j].At }) {
			sort.SliceStable(p, func(i, j int) bool { return p[i].At < p[j].At })
		}
		live = append(live, p)
	}
	heads := make([]int, len(live))
	for {
		best := -1
		for i, p := range live {
			if heads[i] < len(p) && (best < 0 || p[heads[i]].At < live[best][heads[best]].At) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		if !fn(live[best][heads[best]]) {
			return
		}
		heads[best]++
	}
}

// WriteJSONL writes the trace as JSON lines, streamed one event at a
// time in timestamp order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	var err error
	t.ForEachSorted(func(ev Event) bool {
		err = enc.Encode(ev)
		return err == nil
	})
	return err
}

// chromeEvent is the Chrome trace-event format record.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON object
// form: {"traceEvents": [...], "otherData": {...}}, which Chrome and
// Perfetto load exactly like the bare array. Spans become complete
// ("X") events; instants become instant ("i") events. Rows (tids)
// group by event kind so the timeline reads as lanes.
//
// The array is streamed event by event — the writer never builds the
// whole converted trace in memory, so exporting a full buffer does
// not spike allocations — and otherData carries the drop accounting
// (retained and dropped event counts) so a truncated trace is
// self-describing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	lanes := map[Kind]int{}
	enc := json.NewEncoder(w)
	ce := chromeEvent{PID: 1, Args: map[string]string{}}
	var err error
	n := 0
	t.ForEachSorted(func(ev Event) bool {
		if n > 0 {
			if _, err = io.WriteString(w, ","); err != nil {
				return false
			}
		}
		lane, ok := lanes[ev.Kind]
		if !ok {
			lane = len(lanes) + 1
			lanes[ev.Kind] = lane
		}
		name := string(ev.Kind)
		if ev.Key != "" {
			name += " " + ev.Key
		}
		for k := range ce.Args {
			delete(ce.Args, k)
		}
		if ev.Path != "" {
			ce.Args["path"] = ev.Path
		}
		if ev.Detail != "" {
			ce.Args["detail"] = ev.Detail
		}
		if ev.ID != 0 {
			ce.Args["id"] = fmt.Sprintf("%d", ev.ID)
		}
		ce.Name = name
		ce.TS = float64(ev.At.Microseconds())
		ce.TID = lane
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(ev.Dur.Microseconds())
		} else {
			ce.Phase = "i"
			ce.Dur = 0
		}
		err = enc.Encode(ce) // Encode's trailing newline is valid JSON whitespace
		n++
		return err == nil
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, `],"otherData":{"events":"%d","dropped":"%d"}}`, n, t.Dropped())
	return err
}

// Summary renders a one-line-per-kind count summary, with drop
// accounting appended when any event was discarded.
func (t *Tracer) Summary() string {
	counts := map[Kind]int{}
	var order []Kind
	for _, ev := range t.Events() {
		if counts[ev.Kind] == 0 {
			order = append(order, ev.Kind)
		}
		counts[ev.Kind]++
	}
	var sb strings.Builder
	for _, k := range order {
		fmt.Fprintf(&sb, "%s=%d ", k, counts[k])
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "dropped=%d ", d)
	}
	return strings.TrimSpace(sb.String())
}
