package fault

import (
	"errors"
	"os"
	"strconv"
	"strings"
	"testing"
)

// testSeed honors the CI fault-matrix seed so the same suite runs
// under several fixed seeds (SEUSS_FAULT_SEED), defaulting to 1.
func testSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SEUSS_FAULT_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SEUSS_FAULT_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Fire(PointUCCrash) {
			t.Fatal("nil injector fired")
		}
	}
	if in.Visits(PointUCCrash) != 0 || in.Fired(PointUCCrash) != 0 || in.TotalFired() != 0 {
		t.Error("nil injector counted something")
	}
	if in.Trace() != nil || in.TraceString() != "" {
		t.Error("nil injector has a trace")
	}
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	if New(Config{Seed: 42}) != nil {
		t.Error("config with no rate and no schedule should build the nil injector")
	}
	if !(Config{Rate: 0.1}).Enabled() {
		t.Error("rate should enable")
	}
	if !(Config{Schedule: map[Point][]uint64{PointUCCrash: {1}}}).Enabled() {
		t.Error("schedule should enable")
	}
}

func TestFaultScheduleFiresExactVisits(t *testing.T) {
	in := New(Config{Schedule: map[Point][]uint64{PointUCCrash: {2, 5}}})
	var fired []int
	for i := 1; i <= 6; i++ {
		if in.Fire(PointUCCrash) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Errorf("fired on visits %v, want [2 5]", fired)
	}
	// A scheduled point never also fires randomly; an unscheduled point
	// in a schedule-only config never fires.
	for i := 0; i < 50; i++ {
		if in.Fire(PointShardStall) {
			t.Fatal("unscheduled point fired in schedule-only config")
		}
	}
}

func TestFaultSeedReproducesIdenticalTrace(t *testing.T) {
	seed := testSeed(t)
	run := func() string {
		in := New(Config{Seed: seed, Rate: 0.3})
		for i := 0; i < 200; i++ {
			in.Fire(PointUCCrash)
			in.Fire(PointShardStall)
			if i%3 == 0 {
				in.Fire(PointProxyDrop)
			}
		}
		return in.TraceString()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n%s", a, b)
	}
	if a == "" {
		t.Fatal("rate 0.3 over 200 visits fired nothing — firing hash broken")
	}
	// Per-point determinism is independent of interleaving with other
	// points.
	solo := New(Config{Seed: seed, Rate: 0.3})
	var soloVisits []uint64
	for i := 0; i < 200; i++ {
		if solo.Fire(PointUCCrash) {
			soloVisits = append(soloVisits, solo.Visits(PointUCCrash))
		}
	}
	mixed := New(Config{Seed: seed, Rate: 0.3})
	var mixedVisits []uint64
	for i := 0; i < 200; i++ {
		mixed.Fire(PointShardStall) // interleaved noise
		if mixed.Fire(PointUCCrash) {
			mixedVisits = append(mixedVisits, mixed.Visits(PointUCCrash))
		}
	}
	if len(soloVisits) != len(mixedVisits) {
		t.Fatalf("interleaving changed firing: %v vs %v", soloVisits, mixedVisits)
	}
	for i := range soloVisits {
		if soloVisits[i] != mixedVisits[i] {
			t.Fatalf("interleaving changed firing visits: %v vs %v", soloVisits, mixedVisits)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	trace := func(seed int64) string {
		in := New(Config{Seed: seed, Rate: 0.25})
		for i := 0; i < 400; i++ {
			in.Fire(PointUCCrash)
		}
		return in.TraceString()
	}
	if trace(1) == trace(2) {
		t.Error("seeds 1 and 2 produced the identical 400-visit trace")
	}
}

func TestChildConfigsFaultIndependently(t *testing.T) {
	base := Config{Seed: testSeed(t), Rate: 0.25}
	trace := func(c Config) string {
		in := New(c)
		for i := 0; i < 300; i++ {
			in.Fire(PointShardStall)
		}
		return in.TraceString()
	}
	if trace(base.Child(0)) == trace(base.Child(1)) {
		t.Error("sibling shards share a firing trace")
	}
	if trace(base.Child(1)) != trace(base.Child(1)) {
		t.Error("child derivation is not deterministic")
	}
}

func TestPointsFilterRestrictsRandomFiring(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 1, Points: []Point{PointUCCrash}})
	if !in.Fire(PointUCCrash) {
		t.Error("enabled point at rate 1 must fire")
	}
	if in.Fire(PointProxyDrop) {
		t.Error("filtered-out point fired")
	}
}

func TestRateOneFiresAlways(t *testing.T) {
	in := New(Config{Seed: 3, Rate: 1})
	for i := 0; i < 64; i++ {
		if !in.Fire(PointUCCrash) {
			t.Fatalf("rate 1 missed on visit %d", i+1)
		}
	}
	if in.Fired(PointUCCrash) != 64 || in.Visits(PointUCCrash) != 64 {
		t.Errorf("counters: fired=%d visits=%d", in.Fired(PointUCCrash), in.Visits(PointUCCrash))
	}
}

func TestRegistryListsBuiltins(t *testing.T) {
	pts := Points()
	want := map[Point]bool{
		PointUCCrash: true, PointSnapshotCorrupt: true,
		PointShardStall: true, PointProxyDrop: true,
	}
	found := 0
	for _, pt := range pts {
		if want[pt] {
			found++
		}
		if Describe(pt) == "" {
			t.Errorf("registered point %q has no description", pt)
		}
	}
	if found != len(want) {
		t.Errorf("builtin points missing from registry: %v", pts)
	}
	Register(Point("custom-test-point"), "test")
	if Describe(Point("custom-test-point")) != "test" {
		t.Error("Register did not take")
	}
	Register(Point("custom-test-point"), "overwrite")
	if Describe(Point("custom-test-point")) != "test" {
		t.Error("Register overwrote an existing description")
	}
}

func TestContainmentMarker(t *testing.T) {
	base := errors.New("uc crashed")
	c := Contain(base)
	if !IsContained(c) {
		t.Fatal("Contain did not mark")
	}
	if !errors.Is(c, base) {
		t.Fatal("Contain broke errors.Is")
	}
	if IsContained(base) {
		t.Error("unmarked error reads as contained")
	}
	if Contain(nil) != nil {
		t.Error("Contain(nil) != nil")
	}
	if Contain(c) != c {
		t.Error("Contain is not idempotent")
	}
	// Wrapping a contained error keeps the mark visible.
	wrapped := &wrapErr{msg: "invoke failed", err: c}
	if !IsContained(wrapped) {
		t.Error("containment lost through wrapping")
	}
}

type wrapErr struct {
	msg string
	err error
}

func (w *wrapErr) Error() string { return w.msg + ": " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }

// TestFaultPointRosterMatchesDocs walks the live registry and requires
// every point to carry a description and to appear — as `point` — in
// the README fault-point table and in DESIGN.md. Adding a fault point
// without documenting it is a test failure; that's the point: the
// roster must not drift from the docs (same contract as the seuss-node
// flag tests).
func TestFaultPointRosterMatchesDocs(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	// The lifecycle trio must be registered at all — a regression here
	// means the member-failure machinery lost its injection sites.
	roster := map[Point]bool{}
	for _, pt := range Points() {
		roster[pt] = true
	}
	for _, pt := range []Point{PointMemberCrash, PointMemberRestart, PointMemberPartition} {
		if !roster[pt] {
			t.Errorf("lifecycle point %q missing from the registry", pt)
		}
	}
	for _, pt := range Points() {
		if strings.Contains(string(pt), "test") {
			continue // artifacts of sibling tests exercising Register
		}
		if Describe(pt) == "" {
			t.Errorf("point %q has no registry description", pt)
		}
		tick := "`" + string(pt) + "`"
		if !strings.Contains(string(readme), tick) {
			t.Errorf("point %q is not in the README.md fault-point table", pt)
		}
		if !strings.Contains(string(design), tick) {
			t.Errorf("point %q is not documented in DESIGN.md", pt)
		}
	}
}
