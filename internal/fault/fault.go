// Package fault is the deterministic fault-injection framework behind
// the reproduction's failure model (PAPER.md §4: faults are contained
// to the UC; the snapshot is immutable and redeploys a fresh context).
//
// A fault *point* is a named site in the serving path where a failure
// can be made to happen: a UC crashing mid-invocation, a snapshot diff
// corrupting on the wire, a compute shard stalling, the per-core proxy
// dropping a packet. Production code asks its Injector whether the
// point fires *this* time; the injector decides from a seeded hash or
// an explicit schedule, never from wall-clock time or global entropy,
// so a fault run is replayable: the same seed and the same per-point
// visit sequence produce the identical firing trace, run after run.
//
// Zero overhead when disabled: a nil *Injector is the off switch —
// every method is nil-safe and Fire on nil is a single predictable
// branch. Code under test never checks a flag; it just calls Fire.
//
// Containment taxonomy: handling layers (node, pool, platform,
// cluster) wrap the errors that destroyed only the offending UC/shard
// request in Contain; retry layers consult IsContained to distinguish
// "retry against a fresh deploy" from "deterministic failure, do not
// waste the retry budget".
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Point names a fault-injection site.
type Point string

// The built-in fault points exercised by the stack.
const (
	// PointUCCrash crashes a UC mid-invocation (core.Node.runOn): the
	// UC is destroyed, never recycled, and the caller sees a contained
	// error it may retry against a fresh snapshot deploy.
	PointUCCrash Point = "uc-crash"
	// PointSnapshotCorrupt corrupts a snapshot diff on the wire
	// (cluster migrate): decode fails and the holder serves instead.
	PointSnapshotCorrupt Point = "snapshot-corrupt"
	// PointShardStall stalls a compute shard (shardpool serve): the
	// request is requeued to a healthy shard and the stall counts
	// against the shard's circuit breaker.
	PointShardStall Point = "shard-stall"
	// PointProxyDrop drops an outbound proxy packet (core env.HTTPGet):
	// the flow pays one retransmit timeout and proceeds.
	PointProxyDrop Point = "proxy-drop"
	// PointGossipDrop drops one node's manifest exchange during a
	// cluster gossip round: the scheduler's view of that node stays
	// stale until the next round.
	PointGossipDrop Point = "gossip-drop"
	// PointFetchDrop drops a snapshot-layer transfer packet (cluster
	// fetch): the layer pays one retransmit RTT and proceeds.
	PointFetchDrop Point = "fetch-drop"
	// PointMemberCrash kills a cluster member (consulted once per member
	// per gossip round): resident UCs and memory-tier snapshots are
	// lost, the disk tier survives, in-flight invocations fail contained
	// and fail over to a live member.
	PointMemberCrash Point = "member-crash"
	// PointMemberRestart rejoins a crashed member (consulted once per
	// down member per gossip round): the node rebuilds over its
	// surviving disk tier, resyncs its manifest, and prewarms. Fired
	// against a partitioned member it heals the partition instead.
	PointMemberRestart Point = "member-restart"
	// PointMemberPartition isolates a member (consulted once per live
	// member per gossip round): the node keeps running but is reachable
	// by no one — heartbeats stop, placements skip it, and its state
	// machine walks alive → suspect → dead until the partition heals.
	PointMemberPartition Point = "member-partition"
	// PointWSCorrupt corrupts a working-set sidecar as it is read for a
	// lukewarm restore (core promote): decode fails, the record is
	// dropped, and the restore degrades to on-demand faulting — the
	// invocation still succeeds.
	PointWSCorrupt Point = "ws-corrupt"
	// PointEntropyStale skips the restore-time uniqueness re-draw (core
	// deploy): the deployed clone keeps the snapshot's captured RNG seed,
	// reproducing the duplicated-stream bug the re-draw exists to
	// prevent. The divergence tests fire it to prove they would catch a
	// regression.
	PointEntropyStale Point = "entropy-stale"
	// PointPolicyMisfire makes the lifecycle policy misjudge one reaper
	// tick (core PolicyTick): keep-alive windows collapse to zero, so
	// idle state expires early, and the prewarm scheduler promotes a
	// tier lineage nothing predicted a recurrence for. Both
	// mispredictions are safe-by-construction — expired state
	// lukewarm-restores on the next hit and a useless prewarm only
	// wastes RAM — and the policy tests fire this point to prove it.
	PointPolicyMisfire Point = "policy-misfire"
)

var (
	regMu    sync.Mutex
	registry = map[Point]string{
		PointUCCrash:         "UC crashes mid-invocation; destroyed and redeployed from snapshot",
		PointSnapshotCorrupt: "snapshot diff corrupts in transit; decode fails, holder serves",
		PointShardStall:      "shard stalls; request requeues and the breaker counts a failure",
		PointProxyDrop:       "proxy drops an outbound packet; one retransmit timeout",
		PointGossipDrop:      "gossip exchange drops; the scheduler view stays stale one round",
		PointFetchDrop:       "layer fetch drops a packet; one retransmit RTT",
		PointMemberCrash:     "cluster member dies; RAM state lost, disk tier survives, invocations fail over",
		PointMemberRestart:   "crashed member rejoins; manifest resync and disk-tier prewarm",
		PointMemberPartition: "member unreachable but running; suspected, then declared dead until healed",
		PointWSCorrupt:       "working-set sidecar corrupts on read; restore degrades to on-demand faulting",
		PointEntropyStale:    "deploy skips the uniqueness re-draw; the clone keeps the snapshot's stale RNG seed",
		PointPolicyMisfire:   "lifecycle policy misjudges one tick; keep-alive expires early and a prewarm fires for a key with no recurrence",
	}
)

// Register adds a fault point to the global registry (idempotent).
// Points need not be registered to fire; the registry exists so
// operators can enumerate what a build can inject.
func Register(pt Point, desc string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[pt]; !ok {
		registry[pt] = desc
	}
}

// Points lists the registered fault points in sorted order.
func Points() []Point {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Point, 0, len(registry))
	for pt := range registry {
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Describe returns a registered point's description ("" if unknown).
func Describe(pt Point) string {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[pt]
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives the per-point firing hash. Two injectors with the
	// same seed fire identically for the same per-point visit counts.
	Seed int64
	// Rate is the probability in [0, 1] that an enabled point fires on
	// one visit (0 disables random firing).
	Rate float64
	// Points restricts random firing to the listed points (empty = all
	// points fire at Rate). Scheduled points ignore this filter.
	Points []Point
	// Schedule fires a point deterministically on exact visit numbers
	// (1-based): Schedule[PointUCCrash] = []uint64{3} crashes exactly
	// the third UC invocation the injector sees. A scheduled point
	// never also fires randomly.
	Schedule map[Point][]uint64
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool { return c.Rate > 0 || len(c.Schedule) > 0 }

// Child derives the config for a numbered sub-component (a shard, a
// cluster member): same rate, points, and schedule, but a seed offset
// so siblings fault independently yet reproducibly.
func (c Config) Child(id int) Config {
	c.Seed = c.Seed + int64(id)*0x9E3779B9
	return c
}

// Event is one fired fault in an injector's trace.
type Event struct {
	// Seq is the event's position in the injector's firing order.
	Seq uint64
	// Point is the site that fired.
	Point Point
	// Visit is the point's 1-based visit count when it fired.
	Visit uint64
}

// String renders the event compactly ("3:uc-crash@7").
func (e Event) String() string { return fmt.Sprintf("%d:%s@%d", e.Seq, e.Point, e.Visit) }

// Injector decides, deterministically, whether fault points fire. The
// nil *Injector is valid and never fires — the zero-overhead disabled
// state. A non-nil injector is safe for concurrent use (the pool's
// submit path and a shard goroutine may consult breaker-adjacent
// points concurrently); determinism is per point, not across points.
type Injector struct {
	mu        sync.Mutex
	seed      uint64
	threshold uint64 // Rate mapped onto the uint64 space; 0 = no random firing
	enabled   map[Point]bool
	schedule  map[Point]map[uint64]bool
	visits    map[Point]uint64
	fired     map[Point]uint64
	events    []Event
	seq       uint64
}

// traceCap bounds the retained event trace (fault storms must not grow
// memory without bound; counters keep counting past the cap).
const traceCap = 4096

// New builds an injector, or nil — the zero-overhead disabled
// injector — when the config injects nothing.
func New(c Config) *Injector {
	if !c.Enabled() {
		return nil
	}
	in := &Injector{
		seed:     splitmix64(uint64(c.Seed) ^ 0x5E055EED),
		visits:   make(map[Point]uint64),
		fired:    make(map[Point]uint64),
		schedule: make(map[Point]map[uint64]bool),
	}
	if c.Rate > 0 {
		r := c.Rate
		if r >= 1 {
			in.threshold = math.MaxUint64
		} else {
			in.threshold = uint64(r * float64(math.MaxUint64))
		}
	}
	if len(c.Points) > 0 {
		in.enabled = make(map[Point]bool, len(c.Points))
		for _, pt := range c.Points {
			in.enabled[pt] = true
		}
	}
	for pt, visits := range c.Schedule {
		set := make(map[uint64]bool, len(visits))
		for _, v := range visits {
			set[v] = true
		}
		in.schedule[pt] = set
	}
	return in
}

// Fire reports whether the fault point fires on this visit. Nil-safe:
// a nil injector never fires.
func (in *Injector) Fire(pt Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.visits[pt]++
	visit := in.visits[pt]
	var fire bool
	if sched, ok := in.schedule[pt]; ok {
		fire = sched[visit]
	} else if in.threshold > 0 && (in.enabled == nil || in.enabled[pt]) {
		fire = mix(in.seed, pt, visit) <= in.threshold
	}
	if fire {
		in.fired[pt]++
		in.seq++
		if len(in.events) < traceCap {
			in.events = append(in.events, Event{Seq: in.seq, Point: pt, Visit: visit})
		}
	}
	return fire
}

// Visits returns how many times the point has been evaluated.
func (in *Injector) Visits(pt Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.visits[pt]
}

// Fired returns how many times the point has fired.
func (in *Injector) Fired(pt Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[pt]
}

// TotalFired returns the count of all fired faults.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Trace returns a copy of the firing trace (capped at an internal
// limit; counters are exact regardless).
func (in *Injector) Trace() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// TraceString renders the firing trace on one line — the replayable
// fingerprint the determinism tests compare.
func (in *Injector) TraceString() string {
	events := in.Trace()
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// mix hashes (seed, point, visit) into the uint64 space. Per-point
// determinism is independent of how visits to *other* points
// interleave, which is what makes shard-local traces replayable even
// when cross-shard ordering is not.
func mix(seed uint64, pt Point, visit uint64) uint64 {
	h := seed
	for i := 0; i < len(pt); i++ {
		h = (h ^ uint64(pt[i])) * 0x100000001B3 // FNV-1a step
	}
	return splitmix64(h ^ visit*0x9E3779B97F4A7C15)
}

// splitmix64 is the standard 64-bit finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ---- Containment taxonomy ----

// containedError marks a failure as contained: the fault destroyed
// only the offending UC (or was absorbed by a re-route) and the
// request is safe to retry against a fresh snapshot deploy.
type containedError struct{ err error }

// Error implements error.
func (c *containedError) Error() string { return c.err.Error() }

// Unwrap preserves errors.Is/As against the wrapped cause.
func (c *containedError) Unwrap() error { return c.err }

// Contain marks err as a contained fault (idempotent; nil passes
// through).
func Contain(err error) error {
	if err == nil || IsContained(err) {
		return err
	}
	return &containedError{err: err}
}

// IsContained reports whether err (or any error it wraps) was marked
// contained — i.e. retrying may succeed against a fresh deploy.
func IsContained(err error) bool {
	for err != nil {
		if _, ok := err.(*containedError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
