// Package faas implements the OpenWhisk-like FaaS platform of the
// macro evaluation (§6, §7): an action registry (the CouchDB role), a
// topic-based message bus (the Kafka role), a controller with its
// API-gateway overheads, and interchangeable compute backends —
//
//   - LinuxBackend: the stock OpenWhisk invoker managing Docker
//     containers, with the stemcell cache, the container cache limit,
//     and the bridged network whose broadcast scaling caps it;
//   - SeussBackend: the drop-in SEUSS OS replacement reached through
//     the shim process, whose single TCP connection serializes
//     messages and adds the ≈8 ms hop of §6; and
//   - SeussPoolBackend: the same shim front door over a sharded,
//     shared-nothing node pool (internal/shardpool) instead of a
//     single node; and
//   - SeussDistBackend: the shim front door over a multi-node
//     DR-SEUSS cluster (internal/cluster) with scheduler-driven,
//     snapshot-locality-aware placement.
//
// Both satisfy workload.Invoker, so every macro experiment runs
// unmodified against either.
package faas

import (
	"errors"
	"time"

	"seuss/internal/cluster"
	"seuss/internal/core"
	"seuss/internal/costs"
	"seuss/internal/fault"
	"seuss/internal/isolation"
	"seuss/internal/metrics"
	"seuss/internal/netsim"
	"seuss/internal/shardpool"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// ErrNoCapacity is returned when the Linux invoker cannot obtain a
// container before the platform timeout.
var ErrNoCapacity = errors.New("faas: no container capacity")

// Action is a registered function (the CouchDB document).
type Action struct {
	Name     string
	Source   string
	Revision int
}

// Registry is the action store.
type Registry struct {
	actions map[string]*Action
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{actions: make(map[string]*Action)} }

// Put registers or updates an action, bumping its revision.
func (r *Registry) Put(name, source string) *Action {
	if a, ok := r.actions[name]; ok {
		a.Source = source
		a.Revision++
		return a
	}
	a := &Action{Name: name, Source: source, Revision: 1}
	r.actions[name] = a
	return a
}

// Get looks an action up.
func (r *Registry) Get(name string) (*Action, bool) {
	a, ok := r.actions[name]
	return a, ok
}

// Len returns the number of registered actions.
func (r *Registry) Len() int { return len(r.actions) }

// Backend is a compute node reachable from the controller.
type Backend interface {
	// Invoke services one invocation inside p.
	Invoke(p *sim.Proc, spec workload.Spec, args string) error
	// Name identifies the backend in reports.
	Name() string
}

// RetryPolicy bounds the platform's handling of contained compute
// faults: a crashed UC, a deadline kill, or a stalled shard is
// re-submitted to the backend after a doubling backoff, up to Max
// attempts beyond the first. The zero policy retries nothing.
type RetryPolicy struct {
	// Max is the retry budget per activation (retries after the first
	// attempt).
	Max int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 1 ms when Max > 0).
	Backoff time.Duration
}

// Cluster is the whole platform: control plane + one compute backend.
// Requests flow controller → message bus → invoker dispatcher →
// backend, and completions return on per-request reply queues, exactly
// as OpenWhisk routes activations through Kafka.
type Cluster struct {
	eng      *sim.Engine
	registry *Registry
	backend  Backend
	bus      *Bus
	acts     activations
	// Retry is the platform's contained-fault retry policy. Set it
	// before traffic; the dispatcher reads it per activation.
	Retry RetryPolicy
	// Requests / Failures count platform-level outcomes.
	Requests int64
	Failures int64
	// Retries counts re-submissions after contained faults.
	Retries int64
	// Metrics, when non-nil, mirrors the platform outcome counters into
	// the pre-registered metrics registry (CtrPlatformRequests /
	// Failures / Retries). Set it before traffic, alongside Retry.
	Metrics *metrics.Recorder
}

// busRequest is one activation in flight on the bus.
type busRequest struct {
	spec  workload.Spec
	args  string
	reply *sim.Queue
}

// invokerTopic is the bus topic the compute backend consumes.
const invokerTopic = "invoker0"

// NewCluster assembles a platform over the given backend and starts
// its invoker dispatcher.
func NewCluster(eng *sim.Engine, backend Backend) *Cluster {
	c := &Cluster{eng: eng, registry: NewRegistry(), backend: backend, bus: NewBus(eng)}
	c.acts = activations{byID: make(map[int64]*Activation), updated: sim.NewSignal(eng)}
	eng.Go("invoker-dispatch", func(p *sim.Proc) {
		for {
			m, ok := c.bus.Consume(p, invokerTopic)
			if !ok {
				return
			}
			r := m.Body.(*busRequest)
			// Each activation is handled concurrently; the backend
			// applies its own concurrency limits.
			eng.Go("activation", func(hp *sim.Proc) {
				err := c.invokeWithRetry(hp, r.spec, r.args)
				r.reply.Put(err)
			})
		}
	})
	return c
}

// invokeWithRetry drives one activation through the backend, spending
// the retry budget on contained faults only: a crashed UC is
// redeployed from its immutable snapshot on the retry (SEUSS §4's
// containment property is what makes blind re-submission safe).
// Deterministic failures — bad source, uncontained backend errors —
// surface immediately.
func (c *Cluster) invokeWithRetry(p *sim.Proc, spec workload.Spec, args string) error {
	err := c.backend.Invoke(p, spec, args)
	if err == nil || c.Retry.Max <= 0 {
		return err
	}
	backoff := c.Retry.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	for attempt := 0; attempt < c.Retry.Max && err != nil && fault.IsContained(err); attempt++ {
		c.Retries++
		c.Metrics.Inc(metrics.CtrPlatformRetries)
		p.Sleep(backoff)
		backoff *= 2
		err = c.backend.Invoke(p, spec, args)
	}
	return err
}

// Bus exposes the message service (instrumentation).
func (c *Cluster) Bus() *Bus { return c.bus }

// Registry exposes the action store (trials pre-register functions the
// way the paper populates a fresh OpenWhisk deployment).
func (c *Cluster) Registry() *Registry { return c.registry }

// Backend returns the compute backend.
func (c *Cluster) Backend() Backend { return c.backend }

// Invoke implements workload.Invoker: API gateway + controller
// overhead, publish the activation to the bus, and block on the reply
// (the paper's benchmark issues synchronous requests).
func (c *Cluster) Invoke(p *sim.Proc, spec workload.Spec, args string) error {
	c.Requests++
	c.Metrics.Inc(metrics.CtrPlatformRequests)
	c.registry.Put(spec.Key, spec.Source) // idempotent registration
	p.Sleep(costs.ControllerOverhead)
	r := &busRequest{spec: spec, args: args, reply: sim.NewQueue(c.eng)}
	c.bus.Publish(invokerTopic, r)
	v, _ := r.reply.Get(p)
	if v != nil {
		if err, ok := v.(error); ok {
			c.Failures++
			c.Metrics.Inc(metrics.CtrPlatformFailures)
			return err
		}
	}
	return nil
}

// ---- SEUSS backend ----

// SeussBackend fronts a SEUSS OS compute node with the shim process of
// §6: requests are read from the message bus by the shim and forwarded
// over its single TCP connection into the VM.
type SeussBackend struct {
	node *core.Node
	shim *sim.Resource
	rng  *sim.RNG
	// Deadline, when set, bounds every invocation this backend serves:
	// it is threaded through core.Request into the interpreter's step
	// budget, so a runaway guest is killed (and its UC destroyed)
	// instead of wedging the node. Zero defers to the node's own
	// InvokeDeadline.
	Deadline time.Duration
}

// NewSeussBackend wraps a node.
func NewSeussBackend(node *core.Node) *SeussBackend {
	return &SeussBackend{
		node: node,
		shim: sim.NewResource(node.Engine(), 1),
		rng:  sim.NewRNG(0x5E05),
	}
}

// Node returns the underlying compute node.
func (b *SeussBackend) Node() *core.Node { return b.node }

// Name implements Backend.
func (b *SeussBackend) Name() string { return "seuss" }

// Invoke implements Backend: the shim's single connection serializes
// message transfer (the Table 3 creation-rate bottleneck) and the extra
// hop adds ≈8 ms to the round trip (§7's 21% at small set sizes).
func (b *SeussBackend) Invoke(p *sim.Proc, spec workload.Spec, args string) error {
	b.shim.Acquire(p)
	p.Sleep(b.rng.Jitter(costs.ShimSerialize, 0.08))
	b.shim.Release()
	p.Sleep(costs.ShimHop - costs.ShimSerialize)
	_, err := b.node.Invoke(p, core.Request{
		Key: spec.Key, Source: spec.Source, Args: args, Deadline: b.Deadline,
	})
	return err
}

// ---- SEUSS sharded-pool backend ----

// SeussPoolBackend fronts a sharded node pool (internal/shardpool)
// instead of a single node: the same shim-process front door, but the
// compute side fans out across shared-nothing shards, so the invoker
// no longer serializes on one engine.
//
// Bridge semantics: the platform's virtual clock and the pool's
// per-shard virtual clocks are distinct. An invocation crosses the
// boundary synchronously — the pool serves it in wall clock while the
// platform clock is frozen — and the shard-side virtual service time
// is then charged to the platform task as a Sleep. Platform-level
// determinism therefore holds only for the overheads and the per-shard
// latencies, not for cross-shard interleaving.
type SeussPoolBackend struct {
	pool *shardpool.Pool
	shim *sim.Resource
	rng  *sim.RNG
	// Deadline, when set, bounds every invocation (see
	// SeussBackend.Deadline).
	Deadline time.Duration
}

// NewSeussPoolBackend wraps a pool for platform use.
func NewSeussPoolBackend(eng *sim.Engine, pool *shardpool.Pool) *SeussPoolBackend {
	return &SeussPoolBackend{
		pool: pool,
		shim: sim.NewResource(eng, 1),
		rng:  sim.NewRNG(0x5E05),
	}
}

// Pool returns the underlying shard pool.
func (b *SeussPoolBackend) Pool() *shardpool.Pool { return b.pool }

// Name implements Backend.
func (b *SeussPoolBackend) Name() string { return "seuss-pool" }

// Invoke implements Backend: shim serialization and hop as for the
// single-node backend, then the pool serves the request and its
// shard-side virtual latency is charged to the platform clock.
func (b *SeussPoolBackend) Invoke(p *sim.Proc, spec workload.Spec, args string) error {
	b.shim.Acquire(p)
	p.Sleep(b.rng.Jitter(costs.ShimSerialize, 0.08))
	b.shim.Release()
	p.Sleep(costs.ShimHop - costs.ShimSerialize)
	res, err := b.pool.Invoke(core.Request{
		Key: spec.Key, Source: spec.Source, Args: args, Deadline: b.Deadline,
	})
	if err != nil {
		return err
	}
	p.Sleep(res.Latency)
	return nil
}

// ---- SEUSS distributed-cluster backend ----

// SeussDistBackend fronts a multi-node DR-SEUSS cluster
// (internal/cluster): the same shim-process front door, with placement
// across nodes delegated to the cluster's scheduler — locality-aware
// routing over the gossiped snapshot directory, and replication by
// layer fetch or diff migration when a holder saturates.
type SeussDistBackend struct {
	cluster *cluster.Cluster
	shim    *sim.Resource
	rng     *sim.RNG
	// Deadline, when set, bounds every invocation (see
	// SeussBackend.Deadline).
	Deadline time.Duration
}

// NewSeussDistBackend wraps a cluster for platform use. The cluster
// must share the platform's engine. Unlike the single-node backends,
// each member node runs its own shim process, so the front door has
// one serialization lane per member.
func NewSeussDistBackend(eng *sim.Engine, c *cluster.Cluster) *SeussDistBackend {
	lanes := len(c.Members())
	if lanes < 1 {
		lanes = 1
	}
	return &SeussDistBackend{
		cluster: c,
		shim:    sim.NewResource(eng, lanes),
		rng:     sim.NewRNG(0x5E05),
	}
}

// Cluster returns the underlying node cluster.
func (b *SeussDistBackend) Cluster() *cluster.Cluster { return b.cluster }

// MemberStates reports every member's lifecycle state — front doors
// surface it next to their health endpoints.
func (b *SeussDistBackend) MemberStates() []cluster.MemberInfo { return b.cluster.MemberStates() }

// Name implements Backend.
func (b *SeussDistBackend) Name() string { return "seuss-dist" }

// Invoke implements Backend: shim serialization and hop as for the
// single-node backend, then the cluster scheduler places and serves the
// request.
func (b *SeussDistBackend) Invoke(p *sim.Proc, spec workload.Spec, args string) error {
	b.shim.Acquire(p)
	p.Sleep(b.rng.Jitter(costs.ShimSerialize, 0.08))
	b.shim.Release()
	p.Sleep(costs.ShimHop - costs.ShimSerialize)
	_, _, err := b.cluster.Invoke(p, core.Request{
		Key: spec.Key, Source: spec.Source, Args: args, Deadline: b.Deadline,
	})
	return err
}

// ---- Linux backend ----

// LinuxConfig parameterizes the stock OpenWhisk invoker.
type LinuxConfig struct {
	// ContainerLimit caps live containers (1024 in the throughput
	// runs — the Linux bridge's default endpoint limit).
	ContainerLimit int
	// Stemcells is the pre-warmed container pool target (256 in the
	// burst experiment, 0 = disabled as in the throughput runs).
	Stemcells int
	// Cores is the node's CPU count.
	Cores int
	// MemoryBytes is the node's memory.
	MemoryBytes int64
	// Seed drives drop/jitter randomness.
	Seed int64
	// HTTPDelay models the external server's think time for IO-bound
	// functions (the workload Spec carries per-function IO too).
	HTTPDelay time.Duration
}

func (c LinuxConfig) withDefaults() LinuxConfig {
	if c.ContainerLimit == 0 {
		c.ContainerLimit = 1024
	}
	if c.Cores == 0 {
		c.Cores = costs.NodeCores
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = costs.NodeMemoryBytes
	}
	return c
}

// container is one warm Docker container with imported code.
type container struct {
	inst *isolation.Instance
	fn   string
	last sim.Time
	busy bool
}

// LinuxBackend is the stock OpenWhisk invoker on a Linux compute node.
type LinuxBackend struct {
	eng          *sim.Engine
	cfg          LinuxConfig
	cores        *sim.Resource
	invoker      *sim.Resource // the invoker's serialized dispatch path
	docker       *isolation.Backend
	bridge       *netsim.Bridge
	rng          *sim.RNG
	byFn         map[string][]*container
	creating     map[string]int // in-flight creations per function
	stemcells    []*container
	total        int
	freed        *sim.Signal // broadcast when a container frees
	replenishing bool

	// Stats
	Cold, Warm, Errors int64
}

// NewLinuxBackend builds the Linux invoker and, if configured, starts
// the stemcell replenisher.
func NewLinuxBackend(eng *sim.Engine, cfg LinuxConfig) *LinuxBackend {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	bridge := netsim.NewBridge(rng)
	b := &LinuxBackend{
		eng:      eng,
		cfg:      cfg,
		cores:    sim.NewResource(eng, cfg.Cores),
		invoker:  sim.NewResource(eng, 1),
		docker:   isolation.NewBackend(isolation.KindContainer, isolation.NewMemPool(cfg.MemoryBytes), bridge, rng),
		bridge:   bridge,
		rng:      rng,
		byFn:     make(map[string][]*container),
		creating: make(map[string]int),
		freed:    sim.NewSignal(eng),
	}
	if cfg.Stemcells > 0 {
		b.prewarmStemcells()
	}
	return b
}

// prewarmStemcells populates the initial stemcell pool during platform
// setup (the paper's burst trials start from a fresh deployment with
// the cache configured, before the measurement clock matters), so no
// virtual time is charged.
func (b *LinuxBackend) prewarmStemcells() {
	for i := 0; i < b.cfg.Stemcells; i++ {
		inst, err := b.docker.Prewarm()
		if err != nil {
			return
		}
		b.total++
		b.stemcells = append(b.stemcells, &container{inst: inst, last: b.eng.Now()})
	}
}

// Name implements Backend.
func (b *LinuxBackend) Name() string { return "linux" }

// Bridge exposes the container network (instrumentation).
func (b *LinuxBackend) Bridge() *netsim.Bridge { return b.bridge }

// Containers returns the live container count.
func (b *LinuxBackend) Containers() int { return b.total }

// maybeReplenish restarts the stemcell replenisher after the pool is
// consumed. The replenisher competes with invocations for the Docker
// daemon — the §7 observation that automatic background container
// construction interferes with cold starts — and exits once the pool
// is back at target (keeping the event queue drainable).
func (b *LinuxBackend) maybeReplenish() {
	if b.cfg.Stemcells == 0 || b.replenishing {
		return
	}
	b.replenishing = true
	b.eng.Go("stemcell-replenisher", func(p *sim.Proc) {
		defer func() { b.replenishing = false }()
		for len(b.stemcells) < b.cfg.Stemcells && b.total < b.cfg.ContainerLimit {
			b.total++
			inst, err := b.docker.Create(p)
			if err != nil {
				b.total--
				return
			}
			b.stemcells = append(b.stemcells, &container{inst: inst, last: b.eng.Now()})
			b.freed.Broadcast()
		}
	})
}

// Invoke implements Backend.
func (b *LinuxBackend) Invoke(p *sim.Proc, spec workload.Spec, args string) error {
	p.Sleep(costs.InvokerOverhead)
	// The invoker's dispatch path is serialized (message decode,
	// scheduling, result collection share one loop).
	b.invoker.Acquire(p)
	p.Sleep(b.rng.Jitter(costs.InvokerSerialize, 0.08))
	b.invoker.Release()

	ctr, err := b.acquireContainer(p, spec)
	if err != nil {
		b.Errors++
		return err
	}
	err = b.runIn(p, ctr, spec)
	ctr.busy = false
	ctr.last = b.eng.Now()
	b.freed.Broadcast()
	if err != nil {
		b.Errors++
		return err
	}
	return nil
}

// acquireContainer finds or builds a warm container for the function:
// idle container → stemcell import → fresh create → evict-and-create,
// waiting for capacity up to the platform timeout.
func (b *LinuxBackend) acquireContainer(p *sim.Proc, spec workload.Spec) (*container, error) {
	deadline := p.Now().Add(costs.ConnTimeout)
	for {
		// A request that cannot be scheduled before the platform
		// timeout has already failed upstream.
		if p.Now() > deadline {
			return nil, ErrNoCapacity
		}
		// Warm: idle container already holding this function.
		if list := b.byFn[spec.Key]; len(list) > 0 {
			for _, ctr := range list {
				if !ctr.busy {
					ctr.busy = true
					b.Warm++
					return ctr, nil
				}
			}
		}
		// Stemcell: import code into a pre-warmed container.
		if len(b.stemcells) > 0 {
			ctr := b.stemcells[len(b.stemcells)-1]
			b.stemcells = b.stemcells[:len(b.stemcells)-1]
			ctr.fn = spec.Key
			ctr.busy = true
			b.byFn[spec.Key] = append(b.byFn[spec.Key], ctr)
			b.maybeReplenish()
			p.Sleep(costs.StemcellImport)
			b.Cold++
			return ctr, nil
		}
		// Busy containers exist for this action: queue briefly for one
		// to free; only a full ActionQueueWait without any completion
		// spawns an additional container (scale-out under sustained
		// concurrency without racing the daemon on every lost wakeup).
		if len(b.byFn[spec.Key]) > 0 {
			if b.freed.WaitTimeout(p, costs.ActionQueueWait) {
				continue // something freed; re-check the warm path
			}
		}
		// A container for this action is already being created and none
		// exists yet: wait for the first one rather than racing the
		// Docker daemon with duplicates nobody can use.
		if len(b.byFn[spec.Key]) == 0 && b.creating[spec.Key] > 0 {
			b.freed.WaitTimeout(p, costs.ActionQueueWait)
			continue
		}
		// Create: room below the container limit.
		if b.total < b.cfg.ContainerLimit {
			ctr, err := b.createFor(p, spec)
			if err == nil {
				if p.Now() > deadline {
					// The activation timed out while the daemon was
					// still building its container: the request fails
					// upstream, but the container joins the cache.
					ctr.busy = false
					ctr.last = b.eng.Now()
					b.freed.Broadcast()
					return nil, ErrNoCapacity
				}
				b.Cold++
				return ctr, nil
			}
			if err != isolation.ErrOutOfMemory {
				return nil, err
			}
		}
		// Evict: destroy the LRU idle container, then retry.
		if victim := b.lruIdle(); victim != nil {
			b.removeContainer(p, victim)
			continue
		}
		// Everything is busy: wait for a container to free.
		b.freed.Wait(p)
	}
}

// createFor builds a brand-new container and imports the function. The
// container-limit slot is reserved up front: creations take seconds,
// and admitting more of them than the limit would overshoot it. A
// share of the creation burns node CPU, contending with running
// functions.
func (b *LinuxBackend) createFor(p *sim.Proc, spec workload.Spec) (*container, error) {
	b.total++
	b.creating[spec.Key]++
	inst, err := b.docker.Create(p)
	// dockerd/containerd/runc burn node CPU concurrently with the
	// creation, contending with running functions (the background
	// stream disturbance of Figures 6-8).
	b.eng.Go("docker-cpu", func(bp *sim.Proc) { b.cores.Use(bp, costs.ContainerCreateCPU) })
	b.creating[spec.Key]--
	if b.creating[spec.Key] == 0 {
		delete(b.creating, spec.Key)
	}
	if err != nil {
		b.total--
		return nil, err
	}
	b.freed.Broadcast() // wake same-action waiters
	ctr := &container{inst: inst, fn: spec.Key, busy: true, last: b.eng.Now()}
	b.byFn[spec.Key] = append(b.byFn[spec.Key], ctr)
	p.Sleep(costs.StemcellImport) // code injection into the new container
	return ctr, nil
}

// lruIdle returns the least recently used idle warm container.
func (b *LinuxBackend) lruIdle() *container {
	var lru *container
	for _, list := range b.byFn {
		for _, ctr := range list {
			if ctr.busy {
				continue
			}
			if lru == nil || ctr.last < lru.last {
				lru = ctr
			}
		}
	}
	return lru
}

// removeContainer destroys a container and forgets it.
func (b *LinuxBackend) removeContainer(p *sim.Proc, victim *container) {
	list := b.byFn[victim.fn]
	for i, ctr := range list {
		if ctr == victim {
			b.byFn[victim.fn] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(b.byFn[victim.fn]) == 0 {
		delete(b.byFn, victim.fn)
	}
	b.docker.Destroy(p, victim.inst)
	b.total--
}

// runIn executes the function inside its container: connect across the
// bridge, run the modeled CPU on the node's cores, block for external
// IO.
func (b *LinuxBackend) runIn(p *sim.Proc, ctr *container, spec workload.Spec) error {
	if !b.bridge.Connect() {
		p.Sleep(costs.ConnTimeout)
		return isolation.ErrConnTimeout
	}
	b.cores.Use(p, costs.ContainerWarmInvoke)
	if spec.CPU > 0 {
		b.cores.Use(p, spec.CPU)
	}
	if spec.IO > 0 {
		p.Sleep(spec.IO + b.cfg.HTTPDelay)
	}
	return nil
}

// ---- Asynchronous activations ----

// Activation is the platform's record of one invocation (the CouchDB
// activation document): OpenWhisk clients may invoke non-blocking and
// fetch the result later by activation ID.
type Activation struct {
	ID    int64
	Key   string
	Start time.Duration
	End   time.Duration
	Err   error
	Done  bool
}

// activations is the cluster's activation store.
type activations struct {
	next    int64
	byID    map[int64]*Activation
	updated *sim.Signal
}

// InvokeAsync publishes an activation and returns immediately with its
// ID; the result lands in the activation store when the backend
// finishes. Controller overhead is charged to the caller, as for
// blocking invocations.
func (c *Cluster) InvokeAsync(p *sim.Proc, spec workload.Spec, args string) int64 {
	c.Requests++
	c.Metrics.Inc(metrics.CtrPlatformRequests)
	c.registry.Put(spec.Key, spec.Source)
	p.Sleep(costs.ControllerOverhead)
	c.acts.next++
	id := c.acts.next
	act := &Activation{ID: id, Key: spec.Key, Start: time.Duration(c.eng.Now())}
	c.acts.byID[id] = act
	c.eng.Go("activation-async", func(hp *sim.Proc) {
		err := c.invokeWithRetry(hp, spec, args)
		act.End = time.Duration(c.eng.Now())
		act.Err = err
		act.Done = true
		if err != nil {
			c.Failures++
			c.Metrics.Inc(metrics.CtrPlatformFailures)
		}
		c.acts.updated.Broadcast()
	})
	return id
}

// Activation fetches an activation record by ID.
func (c *Cluster) Activation(id int64) (*Activation, bool) {
	a, ok := c.acts.byID[id]
	return a, ok
}

// WaitActivation blocks until the activation completes and returns it;
// nil for unknown IDs.
func (c *Cluster) WaitActivation(p *sim.Proc, id int64) *Activation {
	a, ok := c.acts.byID[id]
	if !ok {
		return nil
	}
	for !a.Done {
		c.acts.updated.Wait(p)
	}
	return a
}
