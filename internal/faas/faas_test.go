package faas

import (
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/costs"
	"seuss/internal/shardpool"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

func newSeussCluster(t *testing.T, eng *sim.Engine) *Cluster {
	t.Helper()
	node, err := core.NewNode(eng, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(eng, NewSeussBackend(node))
}

func newLinuxCluster(eng *sim.Engine, cfg LinuxConfig) *Cluster {
	return NewCluster(eng, NewLinuxBackend(eng, cfg))
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Put("fn", "src1")
	if a.Revision != 1 {
		t.Errorf("rev = %d", a.Revision)
	}
	a2 := r.Put("fn", "src2")
	if a2.Revision != 2 || a2.Source != "src2" {
		t.Errorf("update = %+v", a2)
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("phantom action")
	}
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestSeussEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	c := newSeussCluster(t, eng)
	spec := workload.NOPSpec(0)
	var lat []time.Duration
	eng.Go("client", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			t0 := p.Now()
			if err := c.Invoke(p, spec, "{}"); err != nil {
				t.Error(err)
				return
			}
			lat = append(lat, time.Duration(p.Now()-t0))
		}
	})
	eng.Run()
	if len(lat) != 3 {
		t.Fatal("invocations lost")
	}
	// Cold ≈ controller 3 + shim 8 + node 7.5 ≈ 18.5 ms; hot ≈ 12 ms.
	if lat[0] < 14*time.Millisecond || lat[0] > 25*time.Millisecond {
		t.Errorf("cold e2e = %v", lat[0])
	}
	if lat[2] < 9*time.Millisecond || lat[2] > 16*time.Millisecond {
		t.Errorf("hot e2e = %v", lat[2])
	}
	if lat[2] >= lat[0] {
		t.Errorf("hot %v !< cold %v", lat[2], lat[0])
	}
	if c.Requests != 3 || c.Failures != 0 {
		t.Errorf("requests=%d failures=%d", c.Requests, c.Failures)
	}
}

func TestSeussThroughputIsShimBound(t *testing.T) {
	// Table 3 / Figure 4: the shim's single TCP connection caps the
	// SEUSS platform near 130 requests/s regardless of path.
	eng := sim.NewEngine()
	c := newSeussCluster(t, eng)
	tr := workload.Trial{N: 600, Fns: []workload.Spec{workload.NOPSpec(0)}, C: 32, Seed: 1, Warmup: 50}
	res := tr.Run(eng, c)
	rate := res.Throughput()
	if rate < 110 || rate > 145 {
		t.Errorf("SEUSS platform throughput = %.1f/s, want ≈130", rate)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
}

func TestLinuxHotPathAndThroughput(t *testing.T) {
	eng := sim.NewEngine()
	c := newLinuxCluster(eng, LinuxConfig{Seed: 1})
	// A single hot action under 32 workers converges slowly: duplicate
	// containers accumulate through per-action queueing timeouts until
	// collisions vanish, so give it a long warmup.
	tr := workload.Trial{N: 800, Fns: []workload.Spec{workload.NOPSpec(0)}, C: 32, Seed: 1, Warmup: 1400}
	res := tr.Run(eng, c)
	rate := res.SteadyThroughput()
	// Invoker-serialization bound ≈156/s; single-action convergence
	// keeps some queueing overhead, so accept a band below it.
	if rate < 110 || rate > 175 {
		t.Errorf("Linux platform throughput = %.1f/s, want ≈156", rate)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
}

func TestFigure4ShapeSmallSetLinuxWins(t *testing.T) {
	// At M=64, Linux throughput exceeds SEUSS by ≈21% (the shim hop).
	// Warmup must cover the initial container-cache build: the first
	// pass is a 32-way creation storm (the paper measures only after
	// throughput stabilizes).
	engS := sim.NewEngine()
	cs := newSeussCluster(t, engS)
	fns := make([]workload.Spec, 16)
	for i := range fns {
		fns[i] = workload.NOPSpec(i)
	}
	resS := workload.Trial{N: 1200, Fns: fns, C: 32, Seed: 1, Warmup: 512}.Run(engS, cs)

	engL := sim.NewEngine()
	cl := newLinuxCluster(engL, LinuxConfig{Seed: 1})
	resL := workload.Trial{N: 1200, Fns: fns, C: 32, Seed: 1, Warmup: 512}.Run(engL, cl)

	ratio := resL.SteadyThroughput() / resS.SteadyThroughput()
	if ratio < 1.05 || ratio > 1.45 {
		t.Errorf("Linux/SEUSS at small M = %.2f (L=%.0f/s S=%.0f/s), paper ≈1.21",
			ratio, resL.SteadyThroughput(), resS.SteadyThroughput())
	}
}

func TestFigure4ShapeLargeSetSeussWins(t *testing.T) {
	// Scaled-down saturation: container limit 32, 300 unique functions.
	// Every Linux request needs an eviction + creation; SEUSS cold
	// starts stay cheap. The full-scale run is in the benchmarks.
	engS := sim.NewEngine()
	cs := newSeussCluster(t, engS)
	fns := make([]workload.Spec, 300)
	for i := range fns {
		fns[i] = workload.NOPSpec(i)
	}
	resS := workload.Trial{N: 400, Fns: fns, C: 16, Seed: 1}.Run(engS, cs)

	engL := sim.NewEngine()
	cl := newLinuxCluster(engL, LinuxConfig{Seed: 1, ContainerLimit: 32})
	resL := workload.Trial{N: 400, Fns: fns, C: 16, Seed: 1}.Run(engL, cl)

	if resS.Throughput() < 5*resL.Throughput() {
		t.Errorf("SEUSS %.1f/s not >5x Linux %.1f/s on unique-function workload",
			resS.Throughput(), resL.Throughput())
	}
	lb := cl.Backend().(*LinuxBackend)
	if lb.docker.Destroyed == 0 {
		t.Error("Linux saturation never evicted containers")
	}
}

func TestLinuxStemcellAbsorbsBurst(t *testing.T) {
	eng := sim.NewEngine()
	lb := NewLinuxBackend(eng, LinuxConfig{Seed: 1, Stemcells: 64, ContainerLimit: 128})
	c := NewCluster(eng, lb)
	if len(lb.stemcells) != 64 {
		t.Fatalf("prewarmed stemcells = %d", len(lb.stemcells))
	}
	// A burst of 32 fresh functions: all served from stemcells,
	// quickly.
	var worst time.Duration
	done := 0
	for i := 0; i < 32; i++ {
		spec := workload.CPUSpec("burst/"+string(rune('a'+i)), 10)
		eng.Go("burst", func(p *sim.Proc) {
			t0 := p.Now()
			if err := c.Invoke(p, spec, "{}"); err != nil {
				t.Error(err)
				return
			}
			if d := time.Duration(p.Now() - t0); d > worst {
				worst = d
			}
			done++
		})
	}
	eng.Run()
	if done != 32 {
		t.Fatal("burst requests lost")
	}
	// Stemcell path ≈ import 80ms + dispatch; no container creation on
	// the critical path.
	if worst > time.Second {
		t.Errorf("worst burst latency = %v with stemcells available", worst)
	}
	// The replenisher refilled the pool afterwards.
	if len(lb.stemcells) != 64 {
		t.Errorf("stemcells after replenish = %d, want 64", len(lb.stemcells))
	}
}

func TestLinuxErrorsWhenCapacityExhausted(t *testing.T) {
	// Tiny cache, all containers pinned busy by long functions: new
	// requests wait, then time out — the paper's burst failures.
	eng := sim.NewEngine()
	lb := NewLinuxBackend(eng, LinuxConfig{Seed: 1, ContainerLimit: 4})
	c := NewCluster(eng, lb)
	errs := 0
	done := 0
	for i := 0; i < 12; i++ {
		spec := workload.CPUSpec("pin/"+string(rune('a'+i)), 90_000) // 90s CPU each
		eng.Go("pin", func(p *sim.Proc) {
			if err := c.Invoke(p, spec, "{}"); err != nil {
				errs++
			}
			done++
		})
	}
	eng.Run()
	if done != 12 {
		t.Fatal("requests lost")
	}
	if errs == 0 {
		t.Error("no capacity errors despite 12 long requests on 4 containers")
	}
	if c.Failures != int64(errs) {
		t.Errorf("cluster failures = %d, errs = %d", c.Failures, errs)
	}
}

func TestBackendNames(t *testing.T) {
	eng := sim.NewEngine()
	if NewLinuxBackend(eng, LinuxConfig{}).Name() != "linux" {
		t.Error("linux name")
	}
	node, err := core.NewNode(eng, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if NewSeussBackend(node).Name() != "seuss" {
		t.Error("seuss name")
	}
}

func TestBusOrderingAndOffsets(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng)
	for i := 0; i < 5; i++ {
		if off := bus.Publish("invoker0", i); off != int64(i+1) {
			t.Errorf("offset = %d", off)
		}
	}
	var got []int
	eng.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			m, ok := bus.Consume(p, "invoker0")
			if !ok {
				t.Error("topic closed early")
				return
			}
			if m.Seq != int64(i+1) || m.Topic != "invoker0" {
				t.Errorf("message = %+v", m)
			}
			got = append(got, m.Body.(int))
		}
	})
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	topic := bus.Topic("invoker0")
	if topic.Published() != 5 || topic.Consumed() != 5 || topic.Depth() != 0 {
		t.Errorf("topic = %v", topic)
	}
}

func TestBusBlocksConsumerUntilPublish(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng)
	var at time.Duration
	eng.Go("consumer", func(p *sim.Proc) {
		if _, ok := bus.Consume(p, "completed"); ok {
			at = time.Duration(p.Now())
		}
	})
	eng.Go("producer", func(p *sim.Proc) {
		p.Sleep(9 * time.Millisecond)
		bus.Publish("completed", "result")
	})
	eng.Run()
	if at != 9*time.Millisecond {
		t.Errorf("consumed at %v", at)
	}
}

func TestBusTopicsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng)
	bus.Publish("a", 1)
	bus.Publish("b", 2)
	if bus.Topics() != 2 {
		t.Errorf("topics = %d", bus.Topics())
	}
	if bus.Topic("a").Depth() != 1 || bus.Topic("b").Depth() != 1 {
		t.Error("cross-topic interference")
	}
}

func TestBusClose(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng)
	bus.Publish("t", "last")
	bus.Close("t")
	var sawLast, sawClosed bool
	eng.Go("c", func(p *sim.Proc) {
		if m, ok := bus.Consume(p, "t"); ok && m.Body == "last" {
			sawLast = true
		}
		if _, ok := bus.Consume(p, "t"); !ok {
			sawClosed = true
		}
	})
	eng.Run()
	if !sawLast || !sawClosed {
		t.Errorf("drain-then-close broken: last=%v closed=%v", sawLast, sawClosed)
	}
}

func TestAsyncActivations(t *testing.T) {
	eng := sim.NewEngine()
	c := newSeussCluster(t, eng)
	spec := workload.CPUSpec("async/cpu", 50)
	var id int64
	var waited *Activation
	eng.Go("client", func(p *sim.Proc) {
		id = c.InvokeAsync(p, spec, "{}")
		// The call returns before the function completes.
		if a, ok := c.Activation(id); !ok || a.Done {
			t.Errorf("activation state at submit: %+v ok=%v", a, ok)
		}
		waited = c.WaitActivation(p, id)
	})
	eng.Run()
	if waited == nil || !waited.Done || waited.Err != nil {
		t.Fatalf("activation = %+v", waited)
	}
	// A 50ms CPU function through the cold path: the span covers it.
	if waited.End-waited.Start < 50*time.Millisecond {
		t.Errorf("span = %v", waited.End-waited.Start)
	}
	if c.WaitActivation(nil, 999999) != nil {
		t.Error("phantom activation")
	}
}

func TestAsyncActivationFailureRecorded(t *testing.T) {
	eng := sim.NewEngine()
	lb := NewLinuxBackend(eng, LinuxConfig{Seed: 1, ContainerLimit: 1})
	c := NewCluster(eng, lb)
	// Pin the only container with a >timeout function, then submit
	// another async activation: it must complete with an error.
	var failedID int64
	eng.Go("client", func(p *sim.Proc) {
		c.InvokeAsync(p, workload.CPUSpec("pin/a", 120_000), "{}")
		failedID = c.InvokeAsync(p, workload.CPUSpec("pin/b", 10), "{}")
		a := c.WaitActivation(p, failedID)
		if a.Err == nil {
			t.Error("capacity failure not recorded")
		}
	})
	eng.Run()
	if c.Failures == 0 {
		t.Error("cluster failures not counted")
	}
}

func TestSeussPoolBackend(t *testing.T) {
	pool, err := shardpool.New(shardpool.Config{
		Shards: 2,
		Node:   core.Config{NetworkAO: true, InterpreterAO: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	eng := sim.NewEngine()
	c := NewCluster(eng, NewSeussPoolBackend(eng, pool))
	if c.Backend().Name() != "seuss-pool" {
		t.Errorf("name = %q", c.Backend().Name())
	}

	specs := []workload.Spec{workload.NOPSpec(0), workload.NOPSpec(1), workload.NOPSpec(0)}
	var clocks []time.Duration
	eng.Go("client", func(p *sim.Proc) {
		for _, spec := range specs {
			before := time.Duration(p.Now())
			if err := c.Invoke(p, spec, "{}"); err != nil {
				t.Errorf("%s: %v", spec.Key, err)
			}
			clocks = append(clocks, time.Duration(p.Now())-before)
		}
	})
	eng.Run()
	if len(clocks) != len(specs) {
		t.Fatalf("completed %d of %d", len(clocks), len(specs))
	}
	// The shard-side virtual latency is charged to the platform clock:
	// every round trip costs at least the ≈8 ms shim hop plus service.
	for i, d := range clocks {
		if d < costs.ShimHop {
			t.Errorf("invocation %d: platform span %v < shim hop", i, d)
		}
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Node.Cold + st.Node.Warm + st.Node.Hot; got != int64(len(specs)) {
		t.Errorf("pool served %d, want %d", got, len(specs))
	}
	if c.Requests != int64(len(specs)) || c.Failures != 0 {
		t.Errorf("requests=%d failures=%d", c.Requests, c.Failures)
	}
}
