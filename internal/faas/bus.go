package faas

import (
	"fmt"

	"seuss/internal/sim"
)

// Bus is the platform's message service (the Kafka role in OpenWhisk):
// durable, ordered, per-topic queues connecting the controller to the
// invokers and the invokers' completions back to the controller. The
// transport latency is part of costs.ControllerOverhead; the Bus
// provides the ordering, buffering, and decoupling semantics.
type Bus struct {
	eng    *sim.Engine
	topics map[string]*Topic
}

// Topic is one ordered message stream.
type Topic struct {
	name      string
	queue     *sim.Queue
	published int64
	consumed  int64
}

// Message is one bus message.
type Message struct {
	// Topic the message was published to.
	Topic string
	// Seq is the message's per-topic sequence number (offset).
	Seq int64
	// Body is the payload.
	Body interface{}
}

// NewBus returns an empty bus.
func NewBus(eng *sim.Engine) *Bus {
	return &Bus{eng: eng, topics: make(map[string]*Topic)}
}

// Topic returns (creating on first use) the named topic.
func (b *Bus) Topic(name string) *Topic {
	t, ok := b.topics[name]
	if !ok {
		t = &Topic{name: name, queue: sim.NewQueue(b.eng)}
		b.topics[name] = t
	}
	return t
}

// Topics returns the number of live topics.
func (b *Bus) Topics() int { return len(b.topics) }

// Publish appends a message to the topic and returns its offset.
func (b *Bus) Publish(topic string, body interface{}) int64 {
	t := b.Topic(topic)
	t.published++
	t.queue.Put(Message{Topic: topic, Seq: t.published, Body: body})
	return t.published
}

// Consume blocks the process until a message is available on the topic
// and returns it in publication order. ok=false means the topic was
// closed and drained.
func (b *Bus) Consume(p *sim.Proc, topic string) (Message, bool) {
	t := b.Topic(topic)
	v, ok := t.queue.Get(p)
	if !ok {
		return Message{}, false
	}
	t.consumed++
	return v.(Message), true
}

// Close marks a topic closed; consumers drain the backlog then see
// ok=false.
func (b *Bus) Close(topic string) {
	b.Topic(topic).queue.Close()
}

// Depth returns the topic's backlog (published, not yet consumed).
func (t *Topic) Depth() int { return t.queue.Len() }

// Published returns the lifetime publication count.
func (t *Topic) Published() int64 { return t.published }

// Consumed returns the lifetime consumption count.
func (t *Topic) Consumed() int64 { return t.consumed }

// String implements fmt.Stringer.
func (t *Topic) String() string {
	return fmt.Sprintf("topic(%s: %d published, %d backlog)", t.name, t.published, t.Depth())
}
