package faas

import (
	"errors"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/fault"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

func newFaultyCluster(t *testing.T, eng *sim.Engine, sched map[fault.Point][]uint64) *Cluster {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Faults = fault.New(fault.Config{Schedule: sched})
	node, err := core.NewNode(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(eng, NewSeussBackend(node))
}

// TestPlatformRetryMasksContainedCrash: with a retry budget, an
// injected UC crash never reaches the client — the dispatcher backs
// off, re-submits, and the fresh deploy from the snapshot serves the
// activation.
func TestPlatformRetryMasksContainedCrash(t *testing.T) {
	eng := sim.NewEngine()
	c := newFaultyCluster(t, eng, map[fault.Point][]uint64{fault.PointUCCrash: {1}})
	c.Retry = RetryPolicy{Max: 2, Backoff: time.Millisecond}
	spec := workload.NOPSpec(0)
	var err error
	eng.Go("client", func(p *sim.Proc) { err = c.Invoke(p, spec, "{}") })
	eng.Run()
	if err != nil {
		t.Fatalf("retried activation still failed: %v", err)
	}
	if c.Retries != 1 {
		t.Errorf("Retries = %d, want 1", c.Retries)
	}
	if c.Failures != 0 {
		t.Errorf("Failures = %d, want 0 — the crash must be masked", c.Failures)
	}
}

// TestPlatformNoRetryByDefault: the zero policy fails fast, surfacing
// the contained error to the caller.
func TestPlatformNoRetryByDefault(t *testing.T) {
	eng := sim.NewEngine()
	c := newFaultyCluster(t, eng, map[fault.Point][]uint64{fault.PointUCCrash: {1}})
	spec := workload.NOPSpec(0)
	var err error
	eng.Go("client", func(p *sim.Proc) { err = c.Invoke(p, spec, "{}") })
	eng.Run()
	if !errors.Is(err, core.ErrUCCrashed) {
		t.Fatalf("err = %v, want ErrUCCrashed", err)
	}
	if c.Failures != 1 || c.Retries != 0 {
		t.Errorf("failures=%d retries=%d, want 1 and 0", c.Failures, c.Retries)
	}
}

// TestPlatformRetryAsyncActivation: the async path shares the retry
// machinery — the activation record completes successfully.
func TestPlatformRetryAsyncActivation(t *testing.T) {
	eng := sim.NewEngine()
	c := newFaultyCluster(t, eng, map[fault.Point][]uint64{fault.PointUCCrash: {1}})
	c.Retry = RetryPolicy{Max: 1, Backoff: time.Millisecond}
	spec := workload.NOPSpec(0)
	eng.Go("client", func(p *sim.Proc) {
		id := c.InvokeAsync(p, spec, "{}")
		act := c.WaitActivation(p, id)
		if act == nil || !act.Done {
			t.Error("activation never completed")
			return
		}
		if act.Err != nil {
			t.Errorf("async activation failed despite retry budget: %v", act.Err)
		}
	})
	eng.Run()
	if c.Retries != 1 {
		t.Errorf("Retries = %d, want 1", c.Retries)
	}
}

// TestBackendDeadlineKillsRunawayGuest: the platform-level deadline is
// threaded through the backend into the interpreter's step budget; a
// spinning guest is killed and the platform records a failure instead
// of hanging the whole simulated node.
func TestBackendDeadlineKillsRunawayGuest(t *testing.T) {
	eng := sim.NewEngine()
	node, err := core.NewNode(eng, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	backend := NewSeussBackend(node)
	backend.Deadline = 2 * time.Millisecond
	c := NewCluster(eng, backend)
	spec := workload.Spec{
		Key:    "user/spin",
		Source: `function main(args) { while (true) { var x = 1; } }`,
	}
	var invokeErr error
	eng.Go("client", func(p *sim.Proc) { invokeErr = c.Invoke(p, spec, "{}") })
	eng.Run()
	if !errors.Is(invokeErr, core.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", invokeErr)
	}
	if !fault.IsContained(invokeErr) {
		t.Error("deadline kill not contained")
	}
	if node.IdleUCs() != 0 {
		t.Errorf("runaway UC cached as idle (idle=%d)", node.IdleUCs())
	}
}
