package entropy

import (
	"sync"
	"testing"
)

func TestSplitmix64Bijective(t *testing.T) {
	// Distinct inputs must give distinct outputs (spot-check a window;
	// the function is a known bijection, this guards against edits).
	seen := make(map[uint64]bool, 4096)
	for i := uint64(0); i < 4096; i++ {
		v := Splitmix64(i)
		if seen[v] {
			t.Fatalf("collision at input %d", i)
		}
		seen[v] = true
	}
}

func TestMixSeedDistinctAcrossGenerations(t *testing.T) {
	// The guarantee the whole uniqueness layer rests on: with the SAME
	// entropy draw, distinct generations still produce distinct seeds.
	const draw = 0xABCDEF
	seen := make(map[uint64]bool, 10000)
	for gen := uint64(1); gen <= 10000; gen++ {
		s := MixSeed(draw, gen)
		if s == 0 {
			t.Fatalf("MixSeed produced the xorshift64* fixed point at gen %d", gen)
		}
		if seen[s] {
			t.Fatalf("seed collision at gen %d", gen)
		}
		seen[s] = true
	}
}

func TestMixSeedDeterministic(t *testing.T) {
	if MixSeed(42, 7) != MixSeed(42, 7) {
		t.Error("MixSeed not a pure function")
	}
	if MixSeed(42, 7) == MixSeed(42, 8) || MixSeed(42, 7) == MixSeed(43, 7) {
		t.Error("MixSeed insensitive to an input")
	}
}

func TestSourceDeterministicPerSeed(t *testing.T) {
	a, b := NewSource(5), NewSource(5)
	for i := 0; i < 16; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed sources diverged")
		}
	}
	c := NewSource(6)
	if NewSource(5).Next() == c.Next() {
		t.Error("distinct seeds produced the same first draw")
	}
}

func TestSharedSourceConcurrentDrawsDistinct(t *testing.T) {
	draw := NewSharedSource(99)
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[uint64]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, draw())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if seen[v] {
					t.Error("shared source repeated a draw")
					return
				}
				seen[v] = true
			}
		}()
	}
	wg.Wait()
}

func TestIDBaseLeavesSequenceRoom(t *testing.T) {
	base := IDBase()
	if base>>40 != BootGeneration()&0xFFFFFF {
		t.Error("IDBase does not carry the boot generation's low 24 bits")
	}
	if base&((1<<40)-1) != 0 {
		t.Error("IDBase intrudes into the 2^40 sequence space")
	}
	if IDBase() != base {
		t.Error("IDBase not stable within one process")
	}
}
