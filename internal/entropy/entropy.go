// Package entropy is the host-side randomness kit behind restore-time
// uniqueness (DESIGN.md §14): splitmix64 stepping and seed mixing for
// the Entropy hypercall, deterministic per-node sources for tests and
// simulation, and the process boot generation that keeps UC and
// request identifiers unique across binary restarts.
//
// Everything here is pure arithmetic — no syscalls, no allocation —
// because the deploy hot path draws entropy on every UC deploy and
// must stay at 0 allocs/op.
package entropy

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync/atomic"
	"time"
)

// Golden is the 64-bit golden-ratio increment used by splitmix64 and
// the generation mixer.
const Golden = 0x9E3779B97F4A7C15

// Splitmix64 is the standard 64-bit finalizer: a bijection on uint64,
// so distinct inputs always produce distinct outputs.
func Splitmix64(x uint64) uint64 {
	x += Golden
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// MixSeed folds a host entropy draw and a deploy generation into one
// guest RNG seed. The generation term is a bijection (gen*Golden is
// invertible mod 2^64, and Splitmix64 is a bijection), so two deploys
// with distinct generations get distinct seeds even if the host hands
// them the identical entropy draw — divergence does not depend on the
// quality of the entropy source.
func MixSeed(draw, gen uint64) uint64 {
	s := Splitmix64(draw ^ gen*Golden)
	if s == 0 {
		// xorshift64* has a zero fixed point; dodge it.
		s = Golden
	}
	return s
}

// Source is a deterministic splitmix64 stream: the default node
// entropy source, seeded from the node's Config.Seed so tests and the
// simulation replay identically. NOT safe for concurrent use — it
// follows the core.Node ownership contract (one owning goroutine).
type Source struct {
	state uint64
}

// NewSource returns a stream seeded from seed.
func NewSource(seed uint64) *Source {
	return &Source{state: Splitmix64(seed ^ 0xE47)}
}

// Next returns the stream's next draw.
func (s *Source) Next() uint64 {
	s.state += Golden
	x := s.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewSharedSource returns a concurrency-safe draw function seeded from
// seed — the form a caller hands to many shards at once (every shard's
// node may call it from its own goroutine).
func NewSharedSource(seed uint64) func() uint64 {
	var ctr atomic.Uint64
	base := Splitmix64(seed ^ 0x5A17)
	return func() uint64 {
		return Splitmix64(base ^ ctr.Add(1)*Golden)
	}
}

// bootGen is drawn once per process from the OS CSPRNG. It is what
// makes identifiers minted by this process distinct from those minted
// by the process that ran here before a restart — both start their
// in-memory sequences at zero, so the sequence alone cannot be unique.
var bootGen = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	// CSPRNG failure is effectively impossible; a clock fallback still
	// separates restarts.
	return Splitmix64(uint64(time.Now().UnixNano()))
}()

// BootGeneration returns the process's boot generation: a random
// 64-bit value fixed for the life of the process.
func BootGeneration() uint64 { return bootGen }

// IDBase returns the boot generation folded into the high 24 bits of
// an identifier space, leaving 2^40 sequence numbers per boot. UC ids
// and request ids start their atomic sequences here, so ids minted
// after a binary restart never collide with ids from the previous
// boot whose lineages survived on the disk tier.
func IDBase() uint64 { return (bootGen & 0xFFFFFF) << 40 }
