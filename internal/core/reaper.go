// The lifecycle reaper: the sim-clock loop that turns a Config.Policy
// into state transitions. Each PolicyTick walks three stages —
//
//  1. idle-UC expiry: idle UCs past their keep-alive window are
//     destroyed (their function snapshot still serves warm starts);
//  2. scale-to-zero: lineages whose snapshot window also lapsed are
//     demoted to the disk tier and freed from RAM — the next hit
//     lukewarm-restores;
//  3. prewarm: lineages the policy predicted a recurrence for are
//     promoted back from the tier just ahead of the predicted arrival.
//
// The reaper does not self-schedule: sim.Engine.Run drains ALL events,
// so a self-rescheduling proc would never terminate. Owners drive it —
// experiments via eng.At ticks, shardpool via a `tick` control
// message, seuss-node via a wall-clock ticker mapped onto the virtual
// clock.
package core

import (
	"fmt"
	"sort"
	"time"

	"seuss/internal/fault"
	"seuss/internal/metrics"
	"seuss/internal/policy"
	"seuss/internal/sim"
	"seuss/internal/trace"
)

// TickStats summarizes one reaper pass.
type TickStats struct {
	// ExpiredUCs counts idle UCs destroyed by keep-alive expiry.
	ExpiredUCs int
	// DemotedLineages counts lineages scaled to zero (demoted to the
	// disk tier, or destroyed when no tier is attached).
	DemotedLineages int
	// Prewarmed counts lineages promoted back by the prewarm stage.
	Prewarmed int
}

// Add accumulates o into ts (pool aggregation).
func (ts *TickStats) Add(o TickStats) {
	ts.ExpiredUCs += o.ExpiredUCs
	ts.DemotedLineages += o.DemotedLineages
	ts.Prewarmed += o.Prewarmed
}

// PolicyTick runs one reaper pass at the current virtual instant.
// No-op without a configured policy. Must run on the node's owner
// goroutine, like every node method.
func (n *Node) PolicyTick(p *sim.Proc) TickStats {
	var ts TickStats
	pol := n.cfg.Policy
	if pol == nil {
		return ts
	}
	now := time.Duration(n.eng.Now())

	// Fault point: the policy misjudges this tick — keep-alive windows
	// collapse to zero (early expiry) and the prewarm stage promotes
	// one lineage nothing predicted a recurrence for. Both are safe by
	// construction: expired state lukewarm-restores on its next hit, a
	// useless prewarm only occupies RAM until it expires again.
	misfire := n.cfg.Faults.Fire(fault.PointPolicyMisfire)
	if misfire {
		n.cfg.Metrics.Inc(metrics.CtrFaultsInjected)
		n.stats.FaultsInjected = faultsInjected(n.cfg.Faults)
		n.cfg.Tracer.Record(trace.Event{
			At: now, Kind: trace.KindFault,
			Detail: "policy-misfire: zero keep-alive this tick; one unpredicted prewarm",
		})
	}

	n.expireIdleUCs(p, pol, now, misfire, &ts)
	n.scaleToZero(p, pol, now, misfire, &ts)
	n.runPrewarms(p, now, misfire, &ts)
	return ts
}

// expireIdleUCs destroys idle UCs whose keep-alive window lapsed.
// Keys are walked in sorted order so the destruction sequence (and its
// trace) is deterministic.
func (n *Node) expireIdleUCs(p *sim.Proc, pol policy.Policy, now time.Duration, misfire bool, ts *TickStats) {
	keys := make([]string, 0, len(n.idle))
	for key := range n.idle {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ka := pol.KeepAlive(key, now)
		if misfire {
			ka = 0
		}
		if ka < 0 {
			continue // pinned
		}
		list := n.idle[key]
		kept := list[:0]
		for _, entry := range list {
			if now-time.Duration(entry.last) < ka {
				kept = append(kept, entry)
				continue
			}
			entry.mu.e.bind(p)
			n.destroyUC(entry.mu)
			n.idleCount--
			ts.ExpiredUCs++
			n.stats.PolicyExpirations++
			n.cfg.Metrics.Inc(metrics.CtrPolicyExpirations)
			n.cfg.Tracer.Record(trace.Event{
				At: now, Kind: trace.KindReclaim, Key: key,
				Detail: fmt.Sprintf("keep-alive %v expired", ka),
			})
		}
		if len(kept) == 0 {
			delete(n.idle, key)
		} else {
			n.idle[key] = kept
		}
	}
}

// scaleToZero demotes lineages whose snapshot keep-alive window lapsed
// and no live state remains: the encoded diff goes to the disk tier,
// the RAM copy is deleted, and — if the policy predicts a recurrence —
// a prewarm is scheduled.
func (n *Node) scaleToZero(p *sim.Proc, pol policy.Policy, now time.Duration, misfire bool, ts *TickStats) {
	keys := make([]string, 0, len(n.fnSnaps))
	for key := range n.fnSnaps {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if len(n.idle[key]) > 0 {
			continue // live idle UCs outrank the snapshot window
		}
		entry := n.fnSnaps[key]
		ska := pol.SnapshotKeepAlive(key, now)
		if misfire {
			ska = 0
		}
		if ska < 0 {
			continue // pinned
		}
		if now-time.Duration(entry.last) < ska {
			continue
		}
		if entry.snap.ActiveUCs() > 0 || entry.snap.Children() > 0 {
			continue // an in-flight invocation or a derived snapshot depends on it
		}
		// Demote-before-delete. With a tier attached, a failed demote
		// keeps the lineage resident (never lose the only copy); with
		// no tier, expiry degrades to plain destruction — the policy
		// said scale to zero, and the next hit rebuilds cold.
		if !n.demoteSnapshot(p, entry.snap) && n.cfg.SnapStore != nil {
			continue
		}
		if err := entry.snap.Delete(); err != nil {
			continue
		}
		delete(n.fnSnaps, key)
		ts.DemotedLineages++
		n.stats.PolicyExpirations++
		n.cfg.Metrics.Inc(metrics.CtrPolicyExpirations)
		n.cfg.Tracer.Record(trace.Event{
			At: now, Kind: trace.KindEvict, Key: key,
			Detail: fmt.Sprintf("scale-to-zero after %v idle", ska),
		})
		if n.cfg.Residency != nil {
			n.cfg.Residency.LineageDemoted(key)
		}
		if n.cfg.SnapStore != nil {
			// Only arm predictions that are still ahead of the clock: a
			// stale instant here means the key stopped recurring (the
			// hold released and the lineage is being retired) — re-arming
			// it would promote/demote the dead key forever.
			if at, ok := pol.PrewarmAt(key, now); ok && at > now {
				n.prewarmDue[key] = at
			}
		}
	}
}

// runPrewarms promotes every lineage whose predicted recurrence is due.
// Under a misfire it additionally promotes one lineage with no due
// prediction at all — the "prewarm fires for a key with no recurrence"
// half of the fault point.
func (n *Node) runPrewarms(p *sim.Proc, now time.Duration, misfire bool, ts *TickStats) {
	if n.cfg.SnapStore == nil {
		return
	}
	due := make([]string, 0, len(n.prewarmDue))
	for key, at := range n.prewarmDue {
		if at <= now {
			due = append(due, key)
		}
	}
	sort.Strings(due)
	for _, key := range due {
		delete(n.prewarmDue, key)
		n.prewarmLineage(p, now, key, false, ts)
	}
	if misfire {
		if key, ok := n.misfireTarget(); ok {
			n.prewarmLineage(p, now, key, true, ts)
		}
	}
}

// misfireTarget picks the most recently demoted non-resident lineage —
// the one an over-eager predictor would plausibly pull back.
func (n *Node) misfireTarget() (string, bool) {
	for _, name := range n.cfg.SnapStore.KeysMRU() {
		key := trimFnPrefix(name)
		if key == "" {
			continue
		}
		if _, resident := n.fnSnaps[key]; !resident {
			return key, true
		}
	}
	return "", false
}

// prewarmLineage promotes one lineage from the tier and accounts the
// outcome: promoted, miss (tier no longer holds it), or misfire (the
// injected unpredicted promotion).
func (n *Node) prewarmLineage(p *sim.Proc, now time.Duration, key string, misfire bool, ts *TickStats) {
	name := "fn/" + key
	if n.residentSnapshot(name) != nil {
		return // an invocation already brought it back; nothing to do
	}
	if _, err := n.promote(p, name, 0, metrics.CtrTierPromotionsPrewarm); err != nil {
		n.stats.PolicyPrewarmMisses++
		n.cfg.Metrics.Inc(metrics.CtrPolicyPrewarmsMiss)
		n.cfg.Tracer.Record(trace.Event{
			At: now, Kind: trace.KindFault, Key: key,
			Detail: "prewarm miss: " + err.Error(),
		})
		return
	}
	ts.Prewarmed++
	if misfire {
		n.stats.PolicyPrewarmMisfires++
		n.cfg.Metrics.Inc(metrics.CtrPolicyPrewarmsMisfire)
	} else {
		n.stats.PolicyPrewarms++
		n.cfg.Metrics.Inc(metrics.CtrPolicyPrewarmsPromoted)
	}
	if n.cfg.Residency != nil {
		n.cfg.Residency.LineagePromoted(key)
	}
}

// trimFnPrefix returns the function key of a "fn/..." tier name, or "".
func trimFnPrefix(name string) string {
	const pfx = "fn/"
	if len(name) > len(pfx) && name[:len(pfx)] == pfx {
		return name[len(pfx):]
	}
	return ""
}
