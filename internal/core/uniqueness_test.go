package core

import (
	"testing"

	"seuss/internal/fault"
	"seuss/internal/metrics"
	"seuss/internal/sim"
	"seuss/internal/trace"
)

// randSource surfaces the guest RNG stream in invocation output.
const randSource = `
function main(args) {
	return {a: Math.random(), b: Math.random()};
}
`

// TestColdClonesDivergeEntropy: two cold deploys from the shared base
// runtime snapshot produce distinct RNG streams.
func TestColdClonesDivergeEntropy(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	r1, err := invoke(t, n, eng, Request{Key: "acct/r1", Source: randSource, Args: "{}"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := invoke(t, n, eng, Request{Key: "acct/r2", Source: randSource, Args: "{}"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Path != PathCold || r2.Path != PathCold {
		t.Fatalf("paths = %v, %v, want cold, cold", r1.Path, r2.Path)
	}
	if r1.Output == r2.Output {
		t.Errorf("cold clones replayed the same RNG stream: %s", r1.Output)
	}
	if r1.ID == r2.ID {
		t.Error("request ids collided")
	}
}

// TestWarmClonesDivergeEntropy: repeated warm deploys from one function
// snapshot diverge. MaxIdlePerFn < 0 disables the idle cache, so every
// repeat is a genuine warm deploy, not a hot hit.
func TestWarmClonesDivergeEntropy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxIdlePerFn = -1
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/rand", Source: randSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	w1, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Path != PathWarm || w2.Path != PathWarm {
		t.Fatalf("paths = %v, %v, want warm, warm", w1.Path, w2.Path)
	}
	if w1.Output == w2.Output {
		t.Errorf("warm clones replayed the same RNG stream: %s", w1.Output)
	}
}

// TestLukewarmClonesDivergeEntropy: two nodes restoring one lineage
// from the shared disk tier — the first on-demand, the second through
// the working-set replay the first recorded — still diverge. This is
// the "restart with the same snapshot directory" shape where identical
// restores are most tempting.
func TestLukewarmClonesDivergeEntropy(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/rand", Source: randSource, Args: "{}"}

	cfgA := DefaultConfig()
	cfgA.SnapStore = store
	nA, engA := newTestNode(t, cfgA)
	if _, err := invoke(t, nA, engA, req); err != nil {
		t.Fatal(err)
	}
	if n := nA.FlushSnapshots(nil); n != 1 {
		t.Fatalf("flushed %d snapshots, want 1", n)
	}

	restore := func() Result {
		cfg := DefaultConfig()
		cfg.SnapStore = store
		n, eng := newTestNode(t, cfg)
		res, err := invoke(t, n, eng, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != PathLukewarm {
			t.Fatalf("path = %v, want lukewarm", res.Path)
		}
		return res
	}
	l1, l2 := restore(), restore()
	if l1.Output == l2.Output {
		t.Errorf("lukewarm clones replayed the same RNG stream: %s", l1.Output)
	}
}

// TestEntropyStaleFaultReproducesCollision: firing the entropy-stale
// point skips the uniqueness re-draw, and the clones collide — proof
// the divergence assertions above would catch a regression rather than
// pass vacuously.
func TestEntropyStaleFaultReproducesCollision(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.New(fault.Config{
		Seed:     1,
		Schedule: map[fault.Point][]uint64{fault.PointEntropyStale: {1, 2}},
	})
	n, eng := newTestNode(t, cfg)
	r1, err := invoke(t, n, eng, Request{Key: "acct/r1", Source: randSource, Args: "{}"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := invoke(t, n, eng, Request{Key: "acct/r2", Source: randSource, Args: "{}"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output {
		t.Errorf("stale clones should collide:\n%s\n%s", r1.Output, r2.Output)
	}
	if n.Stats().FaultsInjected != 2 {
		t.Errorf("FaultsInjected = %d, want 2", n.Stats().FaultsInjected)
	}
}

// TestReseedMetricsByPath: the seuss_uc_reseeds_total family counts one
// re-draw per deploy, attributed to the right path.
func TestReseedMetricsByPath(t *testing.T) {
	rec := metrics.NewRecorder()
	cfg := DefaultConfig()
	cfg.Metrics = rec
	n, eng := newTestNode(t, cfg)
	snap := rec.Snapshot()
	if got := snap.Counter(metrics.CtrReseedsBoot); got != 1 {
		t.Errorf("boot reseeds = %d, want 1", got)
	}

	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot().Counter(metrics.CtrReseedsCold); got != 1 {
		t.Errorf("cold reseeds = %d, want 1", got)
	}

	// Hot hit: no deploy, no reseed.
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	cold := rec.Snapshot().Counter(metrics.CtrReseedsCold)
	warm := rec.Snapshot().Counter(metrics.CtrReseedsWarm)
	if cold != 1 || warm != 0 {
		t.Errorf("hot hit drew a reseed: cold=%d warm=%d", cold, warm)
	}

	// Reclaim the idle UC; the next invoke is a warm deploy.
	eng.Go("reclaim", func(p *sim.Proc) { n.reclaimAll(p) })
	eng.Run()
	if res, err := invoke(t, n, eng, req); err != nil || res.Path != PathWarm {
		t.Fatalf("warm invoke: path=%v err=%v", res.Path, err)
	}
	if got := rec.Snapshot().Counter(metrics.CtrReseedsWarm); got != 1 {
		t.Errorf("warm reseeds = %d, want 1", got)
	}

	// Deploy-kit recycling: an un-invoked idle UC parks a kit; the next
	// deploy rebinds it and the reseed is attributed to the kit path.
	eng.Go("idle", func(p *sim.Proc) {
		u, err := n.DeployIdle(p)
		if err != nil {
			t.Error(err)
			return
		}
		u.Destroy()
		if _, err := n.DeployIdle(p); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if got := rec.Snapshot().Counter(metrics.CtrReseedsKit); got != 1 {
		t.Errorf("kit reseeds = %d, want 1", got)
	}
}

// TestInvokeTraceCarriesReseedGeneration: invocation spans that
// deployed a UC record the deploy generation; hot hits record zero.
func TestInvokeTraceCarriesReseedGeneration(t *testing.T) {
	tr := trace.New(0)
	cfg := DefaultConfig()
	cfg.Tracer = tr
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil { // cold
		t.Fatal(err)
	}
	if _, err := invoke(t, n, eng, req); err != nil { // hot
		t.Fatal(err)
	}
	var invokes []trace.Event
	for _, e := range tr.Events() {
		if e.Kind == trace.KindInvoke {
			invokes = append(invokes, e)
		}
	}
	if len(invokes) != 2 {
		t.Fatalf("invoke spans = %d, want 2", len(invokes))
	}
	if invokes[0].Reseed == 0 {
		t.Error("cold invoke span lost its reseed generation")
	}
	if invokes[1].Reseed != 0 {
		t.Errorf("hot invoke span claims a reseed generation: %d", invokes[1].Reseed)
	}
}
