package core

import (
	"errors"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"seuss/internal/fault"
	"seuss/internal/lang"
)

// faultSeed honors the CI fault-matrix seed (SEUSS_FAULT_SEED),
// defaulting to 1.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SEUSS_FAULT_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SEUSS_FAULT_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

// TestFaultCrashedUCNeverRecycled is the containment regression test:
// a UC whose invocation returned an error — injected crash here — must
// be destroyed, never returned to the idle cache where its dirty
// interpreter state would poison later warm hits.
func TestFaultCrashedUCNeverRecycled(t *testing.T) {
	cfg := DefaultConfig()
	// Crash exactly the second invocation the node runs.
	cfg.Faults = fault.New(fault.Config{
		Schedule: map[fault.Point][]uint64{fault.PointUCCrash: {2}},
	})
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}

	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	if n.IdleUCs() != 1 {
		t.Fatalf("idle UCs after cold = %d, want 1", n.IdleUCs())
	}

	// Second invocation takes the idle UC hot and crashes.
	_, err := invoke(t, n, eng, req)
	if !errors.Is(err, ErrUCCrashed) {
		t.Fatalf("err = %v, want ErrUCCrashed", err)
	}
	if !fault.IsContained(err) {
		t.Error("crash not marked contained")
	}
	if n.IdleUCs() != 0 {
		t.Fatalf("crashed UC returned to the idle cache (idle=%d)", n.IdleUCs())
	}
	if n.Stats().UCCrashes != 1 {
		t.Errorf("UCCrashes = %d, want 1", n.Stats().UCCrashes)
	}

	// Containment: the snapshot survived the crash, so the retry is
	// served warm from a fresh deploy with the same output shape.
	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatalf("retry after contained crash: %v", err)
	}
	if res.Path != PathWarm {
		t.Errorf("retry path = %v, want warm (fresh deploy from snapshot)", res.Path)
	}
	if !strings.Contains(res.Output, `"ok":true`) {
		t.Errorf("retry output = %q", res.Output)
	}
}

// TestFaultGuestErrorDestroysUC covers the non-injected flavor of the
// same audit: a genuine guest failure (step-budget exhaustion) must
// also destroy the UC.
func TestFaultGuestErrorDestroysUC(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	spin := Request{
		Key:      "acct/spin",
		Source:   `function main(args) { while (true) { var x = 1; } }`,
		Args:     "{}",
		Deadline: 2 * time.Millisecond,
	}
	_, err := invoke(t, n, eng, spin)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, lang.ErrTooManySteps) {
		t.Errorf("deadline error should wrap the step-budget cause: %v", err)
	}
	if !fault.IsContained(err) {
		t.Error("deadline kill not marked contained")
	}
	if n.IdleUCs() != 0 {
		t.Fatalf("errored UC cached as idle (idle=%d)", n.IdleUCs())
	}
	st := n.Stats()
	if st.DeadlinesExceeded != 1 || st.UCCrashes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDeadlineDoesNotLeakAcrossInvocations: a deadlined request on a UC
// must not shrink the budget of a later undeadlined request served hot
// by the same lineage, and a healthy hot UC must not exhaust a lifetime
// budget across many invocations.
func TestDeadlineDoesNotLeakAcrossInvocations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InvokeDeadline = 5 * time.Millisecond
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	for i := 0; i < 10; i++ {
		res, err := invoke(t, n, eng, req)
		if err != nil {
			t.Fatalf("invoke %d under per-invocation deadline: %v", i, err)
		}
		if i > 0 && res.Path != PathHot {
			t.Fatalf("invoke %d path = %v, want hot", i, res.Path)
		}
	}
	if n.Stats().DeadlinesExceeded != 0 {
		t.Errorf("healthy function hit its deadline: %+v", n.Stats())
	}
}

// TestStagedPressureDegradesWithoutErrors drives a node far past its
// memory budget and asserts the degradation ladder holds: requests are
// served (hot → warm → cold as caches shrink), never failed, and the
// pressure counters show the ladder actually engaged.
func TestStagedPressureDegradesWithoutErrors(t *testing.T) {
	cfg := DefaultConfig()
	// Runtime image ≈117MB; leave room for only a handful of cached
	// functions so deploys constantly collide with the budget.
	cfg.MemoryBytes = 140 << 20
	n, eng := newTestNode(t, cfg)

	for round := 0; round < 3; round++ {
		for i := 0; i < 30; i++ {
			key := "fn-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			req := Request{Key: key, Source: nopSource, Args: "{}"}
			if _, err := invoke(t, n, eng, req); err != nil {
				t.Fatalf("round %d invoke %d (%s): %v", round, i, key, err)
			}
		}
	}
	st := n.Stats()
	if st.Errors != 0 {
		t.Fatalf("pressure produced %d errors; ladder must degrade, not fail: %+v", st.Errors, st)
	}
	if st.PressureIdleReclaims == 0 && st.UCsReclaimed == 0 {
		t.Errorf("level 1 (idle reclaim) never engaged: %+v", st)
	}
	if st.SnapshotsEvicted == 0 {
		t.Errorf("level 2 (snapshot eviction) never engaged: %+v", st)
	}
}

// TestFaultRandomRateContained: under a random crash storm every
// failure is contained (an error, never a wedged node) and the same
// seed reproduces the identical fault trace.
func TestFaultRandomRateContained(t *testing.T) {
	seed := faultSeed(t)
	run := func() (Stats, string) {
		cfg := DefaultConfig()
		cfg.Faults = fault.New(fault.Config{
			Seed: seed, Rate: 0.2, Points: []fault.Point{fault.PointUCCrash},
		})
		n, eng := newTestNode(t, cfg)
		req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
		for i := 0; i < 50; i++ {
			_, err := invoke(t, n, eng, req)
			if err != nil && !fault.IsContained(err) {
				t.Fatalf("invoke %d: uncontained error %v", i, err)
			}
		}
		return n.Stats(), cfg.Faults.TraceString()
	}
	st1, tr1 := run()
	st2, tr2 := run()
	if tr1 != tr2 {
		t.Fatalf("same seed, different fault traces:\n%s\n%s", tr1, tr2)
	}
	if st1.UCCrashes != st2.UCCrashes || st1.Hot != st2.Hot {
		t.Errorf("same seed, different stats: %+v vs %+v", st1, st2)
	}
	if st1.UCCrashes == 0 {
		t.Error("rate 0.2 over 50 invocations crashed nothing")
	}
	if st1.Hot == 0 {
		t.Error("no hot hits between crashes — containment wiped healthy state")
	}
}

// TestProxyDropAbsorbed: a dropped proxy packet delays the flow one
// retransmit, it does not fail the request.
func TestProxyDropAbsorbed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.New(fault.Config{
		Schedule: map[fault.Point][]uint64{fault.PointProxyDrop: {1}},
	})
	cfg.HTTPHandler = func(url string) (string, time.Duration, error) {
		return `"pong"`, 0, nil
	}
	n, eng := newTestNode(t, cfg)
	ioSrc := `function main(args) { return {body: http.get("http://x/")}; }`
	res, err := invoke(t, n, eng, Request{Key: "io", Source: ioSrc, Args: "{}"})
	if err != nil {
		t.Fatalf("dropped packet failed the request: %v", err)
	}
	if !strings.Contains(res.Output, "pong") {
		t.Errorf("output = %q", res.Output)
	}
	if cfg.Faults.Fired(fault.PointProxyDrop) != 1 {
		t.Error("drop point never fired")
	}

	// The same function without the drop is strictly faster.
	cfg2 := DefaultConfig()
	cfg2.HTTPHandler = cfg.HTTPHandler
	n2, eng2 := newTestNode(t, cfg2)
	res2, err := invoke(t, n2, eng2, Request{Key: "io", Source: ioSrc, Args: "{}"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= res2.Latency {
		t.Errorf("drop latency %v not above clean latency %v", res.Latency, res2.Latency)
	}
}

// TestColdFallbackServesWhenWarmCannotFit pins the level-3 rung
// directly: a warm deploy that cannot fit is abandoned and the request
// served cold, not failed.
func TestColdFallbackServesWhenWarmCannotFit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 123 << 20 // barely above the ≈117MB runtime image
	n, eng := newTestNode(t, cfg)

	// First function: cold, captures a snapshot, caches an idle UC.
	a := Request{Key: "fn-a", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, a); err != nil {
		t.Fatalf("cold a: %v", err)
	}
	// Churn more functions through; with ~6MB of headroom the ladder
	// must reclaim and evict to keep serving, and some warm deploys
	// will fall back to cold. No request may fail.
	keys := []string{"fn-b", "fn-c", "fn-a", "fn-b", "fn-a", "fn-c", "fn-a"}
	for i, k := range keys {
		if _, err := invoke(t, n, eng, Request{Key: k, Source: nopSource, Args: "{}"}); err != nil {
			t.Fatalf("invoke %d (%s): %v", i, k, err)
		}
	}
	if n.Stats().Errors != 0 {
		t.Errorf("errors = %d under saturation; want graceful degradation", n.Stats().Errors)
	}
}
