package core

import (
	"bytes"
	"testing"

	"seuss/internal/snapstore"
)

// newTierStore opens a snapshot store in a fresh temp directory.
func newTierStore(t *testing.T, capBytes int64) *snapstore.Store {
	t.Helper()
	st, err := snapstore.Open(t.TempDir(), capBytes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLukewarmPathServesFromTier is the end-to-end tier round trip: a
// node flushes its function snapshot to disk, and a second node sharing
// the store serves the same function via the lukewarm path — no
// interpreter replay — with the same output the in-RAM warm path
// produces.
func TestLukewarmPathServesFromTier(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}

	cfgA := DefaultConfig()
	cfgA.SnapStore = store
	nA, engA := newTestNode(t, cfgA)
	if res, err := invoke(t, nA, engA, req); err != nil || res.Path != PathCold {
		t.Fatalf("first invoke: path=%v err=%v", res.Path, err)
	}
	if n := nA.FlushSnapshots(nil); n != 1 {
		t.Fatalf("flushed %d snapshots, want 1", n)
	}
	if !store.Has("fn/acct/fn") {
		t.Fatal("flush left no tier entry for fn/acct/fn")
	}

	// The warm path's output, for comparison: a store-less node whose
	// idle UC was reclaimed deploys from the in-RAM snapshot.
	nC, engC := newTestNode(t, DefaultConfig())
	if _, err := invoke(t, nC, engC, req); err != nil {
		t.Fatal(err)
	}
	nC.reclaimAll(nil)
	warmRes, err := invoke(t, nC, engC, req)
	if err != nil || warmRes.Path != PathWarm {
		t.Fatalf("warm reference: path=%v err=%v", warmRes.Path, err)
	}

	// A restarted node: nothing resident but the runtime image, the
	// store holds the function's stack.
	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	lukeRes, err := invoke(t, nB, engB, req)
	if err != nil {
		t.Fatal(err)
	}
	if lukeRes.Path != PathLukewarm {
		t.Fatalf("path = %v, want lukewarm", lukeRes.Path)
	}
	if lukeRes.Output != warmRes.Output {
		t.Errorf("lukewarm output %q != warm output %q", lukeRes.Output, warmRes.Output)
	}
	st := nB.Stats()
	if st.Lukewarm != 1 || st.TierHits == 0 || st.SnapshotsPromoted == 0 {
		t.Errorf("tier stats = %+v", st)
	}
	if st.Cold != 0 {
		t.Errorf("lukewarm restore went cold: %+v", st)
	}

	// The restored snapshot is a real cache resident: the next
	// invocation is hot or warm, not another promotion.
	again, err := invoke(t, nB, engB, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Path != PathHot && again.Path != PathWarm {
		t.Errorf("second path = %v, want hot or warm", again.Path)
	}
}

// TestLukewarmLatencyBetweenWarmAndCold pins the lukewarm path's place
// in the latency hierarchy: promotion charges real (virtual) time, so
// a disk restore is strictly slower than a warm deploy and strictly
// faster than a cold rebuild.
func TestLukewarmLatencyBetweenWarmAndCold(t *testing.T) {
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}

	nC, engC := newTestNode(t, DefaultConfig())
	coldRes, err := invoke(t, nC, engC, req)
	if err != nil || coldRes.Path != PathCold {
		t.Fatalf("cold: path=%v err=%v", coldRes.Path, err)
	}
	nC.reclaimAll(nil)
	warmRes, err := invoke(t, nC, engC, req)
	if err != nil || warmRes.Path != PathWarm {
		t.Fatalf("warm: path=%v err=%v", warmRes.Path, err)
	}

	store := newTierStore(t, -1)
	cfgA := DefaultConfig()
	cfgA.SnapStore = store
	nA, engA := newTestNode(t, cfgA)
	if _, err := invoke(t, nA, engA, req); err != nil {
		t.Fatal(err)
	}
	nA.FlushSnapshots(nil)

	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	lukeRes, err := invoke(t, nB, engB, req)
	if err != nil || lukeRes.Path != PathLukewarm {
		t.Fatalf("lukewarm: path=%v err=%v", lukeRes.Path, err)
	}

	if !(warmRes.Latency < lukeRes.Latency) {
		t.Errorf("lukewarm %v not slower than warm %v", lukeRes.Latency, warmRes.Latency)
	}
	if !(lukeRes.Latency < coldRes.Latency) {
		t.Errorf("lukewarm %v not faster than cold %v", lukeRes.Latency, coldRes.Latency)
	}
}

// TestPromotedSnapshotReExportsByteIdentical is the tier's integrity
// contract: the bytes demoted to disk, the bytes promoted back, and a
// re-export of the restored snapshot are all identical — so a restore
// is exact and a re-demotion dedupes onto the same content-addressed
// entry instead of growing the store.
func TestPromotedSnapshotReExportsByteIdentical(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}

	cfgA := DefaultConfig()
	cfgA.SnapStore = store
	nA, engA := newTestNode(t, cfgA)
	if _, err := invoke(t, nA, engA, req); err != nil {
		t.Fatal(err)
	}
	nA.FlushSnapshots(nil)
	demoted, err := store.Get("fn/acct/fn")
	if err != nil {
		t.Fatal(err)
	}

	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	if res, err := invoke(t, nB, engB, req); err != nil || res.Path != PathLukewarm {
		t.Fatalf("path=%v err=%v", res.Path, err)
	}
	entry, ok := nB.fnSnaps["acct/fn"]
	if !ok {
		t.Fatal("promotion did not install the snapshot in the cache")
	}
	var reExport bytes.Buffer
	if err := entry.snap.Export(&reExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reExport.Bytes(), demoted) {
		t.Fatalf("re-export of promoted snapshot differs from demoted bytes (%d vs %d bytes)",
			reExport.Len(), len(demoted))
	}

	// Re-demotion of identical content must not grow the store.
	sizeBefore := store.SizeBytes()
	if n := nB.FlushSnapshots(nil); n != 1 {
		t.Fatalf("re-flush wrote %d entries", n)
	}
	if store.SizeBytes() != sizeBefore {
		t.Errorf("re-demotion grew the store: %d -> %d bytes", sizeBefore, store.SizeBytes())
	}
}

// TestPressureEvictionsDemoteToTier reruns the staged-pressure workload
// with a disk tier attached: the degradation ladder must still serve
// every request, and each snapshot eviction must land in the store
// instead of destroying the only copy.
func TestPressureEvictionsDemoteToTier(t *testing.T) {
	store := newTierStore(t, -1)
	cfg := DefaultConfig()
	cfg.MemoryBytes = 140 << 20
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)

	for round := 0; round < 3; round++ {
		for i := 0; i < 30; i++ {
			key := "fn-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			req := Request{Key: key, Source: nopSource, Args: "{}"}
			if _, err := invoke(t, n, eng, req); err != nil {
				t.Fatalf("round %d invoke %d (%s): %v", round, i, key, err)
			}
		}
	}
	st := n.Stats()
	if st.Errors != 0 {
		t.Fatalf("pressure with tier produced %d errors: %+v", st.Errors, st)
	}
	if st.SnapshotsEvicted == 0 {
		t.Fatalf("pressure never evicted; test exercised nothing: %+v", st)
	}
	if st.SnapshotsDemoted == 0 {
		t.Errorf("evictions destroyed snapshots instead of demoting: %+v", st)
	}
	if store.Len() == 0 {
		t.Error("no demoted entries reached the store")
	}
	if st.Lukewarm == 0 {
		t.Errorf("re-invocations of evicted functions never went lukewarm: %+v", st)
	}
}

// TestFullTierFallsBackToDestroy covers the degraded configuration: a
// zero-capacity store rejects every demotion, and eviction must fall
// back to plain destruction without erroring a single invocation.
func TestFullTierFallsBackToDestroy(t *testing.T) {
	store := newTierStore(t, 0)
	cfg := DefaultConfig()
	cfg.MemoryBytes = 140 << 20
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)

	for i := 0; i < 30; i++ {
		key := "fn-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		req := Request{Key: key, Source: nopSource, Args: "{}"}
		if _, err := invoke(t, n, eng, req); err != nil {
			t.Fatalf("invoke %d (%s): %v", i, key, err)
		}
	}
	st := n.Stats()
	if st.Errors != 0 {
		t.Fatalf("full tier produced %d errors: %+v", st.Errors, st)
	}
	if st.SnapshotsEvicted == 0 {
		t.Fatalf("pressure never evicted; test exercised nothing: %+v", st)
	}
	if st.SnapshotsDemoted != 0 || store.Len() != 0 {
		t.Errorf("zero-capacity store accepted demotions: demoted=%d len=%d",
			st.SnapshotsDemoted, store.Len())
	}
	if store.Stats().PutRejected == 0 {
		t.Error("no Put was ever attempted against the full tier")
	}
}

// TestPrewarmRestoresLineage: PromoteLineage restores a flushed stack
// before any request arrives, so the first invocation after a restart
// is warm (or hot), not lukewarm or cold.
func TestPrewarmRestoresLineage(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}

	cfgA := DefaultConfig()
	cfgA.SnapStore = store
	nA, engA := newTestNode(t, cfgA)
	if _, err := invoke(t, nA, engA, req); err != nil {
		t.Fatal(err)
	}
	nA.FlushSnapshots(nil)

	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	if err := nB.PromoteLineage(nil, "fn/acct/fn"); err != nil {
		t.Fatal(err)
	}
	st := nB.Stats()
	if st.SnapshotsPrewarmed == 0 {
		t.Errorf("prewarm not counted: %+v", st)
	}
	// Idempotent: a second prewarm of a resident lineage is a no-op.
	if err := nB.PromoteLineage(nil, "fn/acct/fn"); err != nil {
		t.Fatal(err)
	}
	if nB.Stats().SnapshotsPrewarmed != st.SnapshotsPrewarmed {
		t.Error("re-prewarm of a resident lineage promoted again")
	}

	res, err := invoke(t, nB, engB, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm && res.Path != PathHot {
		t.Errorf("first post-prewarm path = %v, want warm or hot", res.Path)
	}
}
