package core

import (
	"bytes"
	"testing"

	"seuss/internal/fault"
	"seuss/internal/snapstore"
)

// wsSetupFlushed runs one cold invocation on a node attached to store
// and flushes the function stack to disk — the precondition every
// lukewarm test starts from.
func wsSetupFlushed(t *testing.T, store *snapstore.Store, req Request) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)
	if res, err := invoke(t, n, eng, req); err != nil || res.Path != PathCold {
		t.Fatalf("setup invoke: path=%v err=%v", res.Path, err)
	}
	if n.FlushSnapshots(nil) == 0 {
		t.Fatal("setup flushed nothing")
	}
}

// TestWorkingSetRecordReplayAcrossNodes is the tentpole round trip:
// the first lukewarm restore of a lineage runs on demand and records
// the fault storm into a sidecar; a later restore (a fresh node, same
// store — nothing resident) loads the record and premaps the pages
// before the first instruction, with byte-identical output.
func TestWorkingSetRecordReplayAcrossNodes(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	wsSetupFlushed(t, store, req)

	// First lukewarm restore: no record yet — on-demand faulting, then
	// the harvest persists one.
	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	demandRes, err := invoke(t, nB, engB, req)
	if err != nil || demandRes.Path != PathLukewarm {
		t.Fatalf("first lukewarm: path=%v err=%v", demandRes.Path, err)
	}
	stB := nB.Stats()
	if stB.WSRecorded != 1 {
		t.Fatalf("first lukewarm recorded %d working sets, want 1: %+v", stB.WSRecorded, stB)
	}
	if stB.WSPrefetchedPages != 0 {
		t.Errorf("first lukewarm prefetched %d pages with no record", stB.WSPrefetchedPages)
	}
	if _, err := store.GetWorkingSet("fn/acct/fn"); err != nil {
		t.Fatalf("harvest left no sidecar: %v", err)
	}

	// Second lukewarm restore on a fresh node: the record replays.
	cfgC := DefaultConfig()
	cfgC.SnapStore = store
	nC, engC := newTestNode(t, cfgC)
	prefRes, err := invoke(t, nC, engC, req)
	if err != nil || prefRes.Path != PathLukewarm {
		t.Fatalf("second lukewarm: path=%v err=%v", prefRes.Path, err)
	}
	stC := nC.Stats()
	if stC.WSPrefetchedPages == 0 {
		t.Fatalf("recorded lineage restored without prefetch: %+v", stC)
	}
	if stC.WSRecorded != 0 {
		t.Errorf("re-recorded over an existing record: %+v", stC)
	}
	if prefRes.Output != demandRes.Output {
		t.Errorf("prefetched output %q != on-demand output %q", prefRes.Output, demandRes.Output)
	}
	// The covered invocation feeds the coverage counters.
	if stC.WSCoverageHits == 0 {
		t.Errorf("prefetched invocation counted no coverage hits: %+v", stC)
	}
}

// TestWorkingSetPrefetchedFasterThanOnDemand pins the point of the
// record: a prefetched lukewarm restore charges the batched per-page
// rate instead of the per-fault rate, so its virtual latency is
// strictly below the recording restore's.
func TestWorkingSetPrefetchedFasterThanOnDemand(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	wsSetupFlushed(t, store, req)

	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	demandRes, err := invoke(t, nB, engB, req)
	if err != nil || demandRes.Path != PathLukewarm {
		t.Fatalf("on-demand lukewarm: path=%v err=%v", demandRes.Path, err)
	}

	cfgC := DefaultConfig()
	cfgC.SnapStore = store
	nC, engC := newTestNode(t, cfgC)
	prefRes, err := invoke(t, nC, engC, req)
	if err != nil || prefRes.Path != PathLukewarm {
		t.Fatalf("prefetched lukewarm: path=%v err=%v", prefRes.Path, err)
	}
	if nC.Stats().WSPrefetchedPages == 0 {
		t.Fatal("second restore did not prefetch; comparison is vacuous")
	}
	if !(prefRes.Latency < demandRes.Latency) {
		t.Errorf("prefetched restore %v not faster than on-demand %v",
			prefRes.Latency, demandRes.Latency)
	}
}

// TestWorkingSetCorruptRecordFallsBack: a sidecar that corrupts on
// read (injected at the ws-corrupt fault point) must cost nothing but
// the prefetch — the restore degrades to on-demand faulting with zero
// client-visible errors and identical output.
func TestWorkingSetCorruptRecordFallsBack(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	wsSetupFlushed(t, store, req)

	// Record the working set with a healthy node.
	cfgB := DefaultConfig()
	cfgB.SnapStore = store
	nB, engB := newTestNode(t, cfgB)
	healthy, err := invoke(t, nB, engB, req)
	if err != nil || healthy.Path != PathLukewarm {
		t.Fatalf("recording restore: path=%v err=%v", healthy.Path, err)
	}

	// Restore on a node whose every sidecar read corrupts.
	cfgC := DefaultConfig()
	cfgC.SnapStore = store
	cfgC.Faults = fault.New(fault.Config{
		Schedule: map[fault.Point][]uint64{fault.PointWSCorrupt: {1}},
	})
	nC, engC := newTestNode(t, cfgC)
	res, err := invoke(t, nC, engC, req)
	if err != nil {
		t.Fatalf("corrupt sidecar surfaced to the client: %v", err)
	}
	if res.Path != PathLukewarm {
		t.Fatalf("path = %v, want lukewarm", res.Path)
	}
	if res.Output != healthy.Output {
		t.Errorf("degraded output %q != healthy output %q", res.Output, healthy.Output)
	}
	st := nC.Stats()
	if st.WSCorrupt != 1 {
		t.Errorf("corrupt record not counted: %+v", st)
	}
	if st.WSPrefetchedPages != 0 {
		t.Errorf("corrupt record still prefetched %d pages", st.WSPrefetchedPages)
	}
	if st.Errors != 0 {
		t.Errorf("degradation produced %d errors", st.Errors)
	}
	// The sidecar itself is untouched on disk: a later healthy read
	// still replays it.
	cfgD := DefaultConfig()
	cfgD.SnapStore = store
	nD, engD := newTestNode(t, cfgD)
	if res, err := invoke(t, nD, engD, req); err != nil || res.Path != PathLukewarm {
		t.Fatalf("post-fault restore: path=%v err=%v", res.Path, err)
	} else if nD.Stats().WSPrefetchedPages == 0 {
		t.Error("record lost after an injected corrupt read")
	}
}

// TestWorkingSetMissingRecordIsSilent: a lineage with no sidecar
// restores exactly as before the feature existed — no error, no
// prefetch, and the restore arms recording.
func TestWorkingSetMissingRecordIsSilent(t *testing.T) {
	store := newTierStore(t, -1)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	wsSetupFlushed(t, store, req)

	cfg := DefaultConfig()
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)
	res, err := invoke(t, n, eng, req)
	if err != nil || res.Path != PathLukewarm {
		t.Fatalf("path=%v err=%v", res.Path, err)
	}
	st := n.Stats()
	if st.WSPrefetchedPages != 0 || st.WSCorrupt != 0 || st.Errors != 0 {
		t.Errorf("missing record was not silent: %+v", st)
	}
	if st.WSRecorded != 1 {
		t.Errorf("missing record did not arm recording: %+v", st)
	}
}

// TestWorkingSetRecordDeterministic: the same workload under the same
// seed produces bit-identical sidecar bytes — the property that makes
// the record content-addressable and fabric-shippable.
func TestWorkingSetRecordDeterministic(t *testing.T) {
	record := func() []byte {
		store := newTierStore(t, -1)
		req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
		wsSetupFlushed(t, store, req)
		cfg := DefaultConfig()
		cfg.SnapStore = store
		n, eng := newTestNode(t, cfg)
		if res, err := invoke(t, n, eng, req); err != nil || res.Path != PathLukewarm {
			t.Fatalf("path=%v err=%v", res.Path, err)
		}
		data, err := store.GetWorkingSet("fn/acct/fn")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := record(), record()
	if !bytes.Equal(a, b) {
		t.Fatalf("same workload produced different records (%d vs %d bytes)", len(a), len(b))
	}
}

// TestWSMissCount pins the drift arithmetic harvestWorkingSet merges
// on.
func TestWSMissCount(t *testing.T) {
	cases := []struct {
		observed, ws []uint64
		want         int
	}{
		{nil, nil, 0},
		{[]uint64{4096}, nil, 1},
		{[]uint64{4096}, []uint64{4096}, 0},
		{[]uint64{4096, 8192, 12288}, []uint64{8192}, 2},
		{[]uint64{8192}, []uint64{4096, 12288}, 1},
		{[]uint64{4096, 12288}, []uint64{4096, 8192, 12288}, 0},
	}
	for _, c := range cases {
		if got := wsMissCount(c.observed, c.ws); got != c.want {
			t.Errorf("wsMissCount(%v, %v) = %d, want %d", c.observed, c.ws, got, c.want)
		}
	}
}
