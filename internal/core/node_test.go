package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"seuss/internal/mem"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/trace"
)

const nopSource = `function main(args) { return {}; }`

func newTestNode(t *testing.T, cfg Config) (*Node, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	n, err := NewNode(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, eng
}

// invoke runs a single invocation to completion and returns the result.
func invoke(t *testing.T, n *Node, eng *sim.Engine, req Request) (Result, error) {
	t.Helper()
	var res Result
	var err error
	eng.Go("client", func(p *sim.Proc) {
		res, err = n.Invoke(p, req)
	})
	eng.Run()
	return res, err
}

func TestInvokePathProgression(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}

	r1, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Path != PathCold {
		t.Errorf("first = %v, want cold", r1.Path)
	}
	if !strings.Contains(r1.Output, `"ok":true`) {
		t.Errorf("output = %q", r1.Output)
	}

	// The cold path cached both a snapshot and an idle UC: next is hot.
	r2, _ := invoke(t, n, eng, req)
	if r2.Path != PathHot {
		t.Errorf("second = %v, want hot", r2.Path)
	}

	st := n.Stats()
	if st.Cold != 1 || st.Hot != 1 || st.SnapshotsCaptured != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWarmPathWhenIdleUCBusyOrAbsent(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "fn", Source: nopSource, Args: "{}"}
	invoke(t, n, eng, req) // cold, caches idle UC + snapshot

	// Two concurrent invocations: one takes the idle UC (hot), the
	// other must deploy from the snapshot (warm).
	var paths []Path
	for i := 0; i < 2; i++ {
		eng.Go("client", func(p *sim.Proc) {
			res, err := n.Invoke(p, req)
			if err != nil {
				t.Error(err)
				return
			}
			paths = append(paths, res.Path)
		})
	}
	eng.Run()
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	hot, warm := 0, 0
	for _, p := range paths {
		switch p {
		case PathHot:
			hot++
		case PathWarm:
			warm++
		}
	}
	if hot != 1 || warm != 1 {
		t.Errorf("paths = %v, want one hot one warm", paths)
	}
}

func TestLatenciesMatchTable1(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "fn", Source: nopSource, Args: "{}"}
	cold, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := invoke(t, n, eng, req)

	// Force a warm start by invoking twice concurrently (see above) —
	// simpler: drain the idle cache.
	n.reclaimAll(nil)
	warm, _ := invoke(t, n, eng, req)

	if warm.Path != PathWarm {
		t.Fatalf("expected warm, got %v", warm.Path)
	}
	// Table 1 (after AO): cold 7.5 ms, warm 3.5 ms, hot 0.8 ms.
	if cold.Latency < 5*time.Millisecond || cold.Latency > 11*time.Millisecond {
		t.Errorf("cold = %v", cold.Latency)
	}
	if warm.Latency < 2*time.Millisecond || warm.Latency > 6*time.Millisecond {
		t.Errorf("warm = %v", warm.Latency)
	}
	if hot.Latency < 300*time.Microsecond || hot.Latency > 2*time.Millisecond {
		t.Errorf("hot = %v", hot.Latency)
	}
}

func TestDistinctFunctionsIsolated(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	counter := `var n = 0; function main(args) { n = n + 1; return {n: n}; }`
	a := Request{Key: "alice/counter", Source: counter, Args: "{}"}
	b := Request{Key: "bob/counter", Source: counter, Args: "{}"}
	invoke(t, n, eng, a)
	invoke(t, n, eng, a)
	ra, _ := invoke(t, n, eng, a)
	rb, _ := invoke(t, n, eng, b)
	if !strings.Contains(ra.Output, `"n":3`) {
		t.Errorf("a = %q", ra.Output)
	}
	if !strings.Contains(rb.Output, `"n":1`) {
		t.Errorf("functions share state: %q", rb.Output)
	}
	if n.CachedSnapshots() != 2 {
		t.Errorf("snapshots = %d", n.CachedSnapshots())
	}
}

func TestFunctionErrorReturnsDriverError(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "bad", Source: `function main(args) { throw "boom"; }`, Args: "{}"}
	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, `"ok": false`) || !strings.Contains(res.Output, "boom") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestBadSourceFailsColdPath(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "syntax", Source: `function main( {`, Args: "{}"}
	_, err := invoke(t, n, eng, req)
	if err == nil {
		t.Fatal("syntax error accepted")
	}
	if n.Stats().Errors == 0 {
		t.Error("error not counted")
	}
}

func TestCPUBoundFunctionChargesCores(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "cpu", Source: `function main(args) { spin(150); return {}; }`, Args: "{}"}
	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < 150*time.Millisecond {
		t.Errorf("CPU-bound latency = %v, want >150ms", res.Latency)
	}
}

func TestIOBoundFunctionBlocksWithoutCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.HTTPHandler = func(url string) (string, time.Duration, error) {
		return "OK", 250 * time.Millisecond, nil
	}
	n, eng := newTestNode(t, cfg)
	ioSrc := `function main(args) { return {body: http.get("http://ext/")}; }`

	// Two IO-bound invocations on a single core: if blocking held the
	// core, they would serialize to ≈500ms; overlapped they finish in
	// ≈250ms + overheads.
	var done []sim.Time
	for i := 0; i < 2; i++ {
		key := []string{"io-a", "io-b"}[i]
		eng.Go("client", func(p *sim.Proc) {
			if _, err := n.Invoke(p, Request{Key: key, Source: ioSrc, Args: "{}"}); err != nil {
				t.Error(err)
				return
			}
			done = append(done, p.Now())
		})
	}
	eng.Run()
	if len(done) != 2 {
		t.Fatal("invocations lost")
	}
	last := time.Duration(done[1])
	if last > 400*time.Millisecond {
		t.Errorf("two overlapped IO invocations took %v; blocking is holding the core", last)
	}
}

func TestCoreContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	n, eng := newTestNode(t, cfg)
	src := `function main(args) { spin(100); return {}; }`
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		key := []string{"a", "b", "c"}[i]
		eng.Go("client", func(p *sim.Proc) {
			if _, err := n.Invoke(p, Request{Key: key, Source: src, Args: "{}"}); err != nil {
				t.Error(err)
				return
			}
			finish = append(finish, p.Now())
		})
	}
	eng.Run()
	if len(finish) != 3 {
		t.Fatal("lost invocations")
	}
	// 3 x 100ms of CPU on one core: the last completion is past 300ms.
	if last := time.Duration(finish[2]); last < 300*time.Millisecond {
		t.Errorf("last finish = %v; CPU not contended", last)
	}
}

func TestOOMReclaimsIdleUCs(t *testing.T) {
	cfg := DefaultConfig()
	// Budget: runtime image ≈117MB + room for ~17 cached functions
	// (snapshot + idle UC ≈ 3.8MB each) before the 2% threshold bites.
	cfg.MemoryBytes = 180 << 20
	n, eng := newTestNode(t, cfg)

	// Create many distinct functions; idle UCs accumulate until the
	// OOM threshold reclaims the oldest.
	for i := 0; i < 25; i++ {
		req := Request{Key: "fn" + string(rune('a'+i)), Source: nopSource, Args: "{}"}
		if _, err := invoke(t, n, eng, req); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	if n.Stats().UCsReclaimed == 0 {
		t.Error("OOM policy never reclaimed an idle UC")
	}
	if n.Stats().Errors != 0 {
		t.Errorf("errors = %d; reclaim should prevent failures", n.Stats().Errors)
	}
}

func TestSnapshotEvictionUnderMemoryPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 180 << 20
	n, eng := newTestNode(t, cfg)
	for i := 0; i < 40; i++ {
		req := Request{Key: "fn" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Source: nopSource, Args: "{}"}
		if _, err := invoke(t, n, eng, req); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	st := n.Stats()
	if st.SnapshotsEvicted == 0 {
		t.Errorf("no snapshot evictions under pressure: %+v", st)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}

func TestDeployIdleFootprint(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	var foot int64
	eng.Go("d", func(p *sim.Proc) {
		u, err := n.DeployIdle(p)
		if err != nil {
			t.Error(err)
			return
		}
		foot = u.FootprintBytes()
	})
	eng.Run()
	if foot < 1<<20 || foot > 3<<20 {
		t.Errorf("idle UC footprint = %.2f MB, want ≈1.6", float64(foot)/1e6)
	}
}

func TestAblationNoAOColdSlower(t *testing.T) {
	fast, engF := newTestNode(t, DefaultConfig())
	slowCfg := DefaultConfig()
	slowCfg.DisableAO = true
	slow, engS := newTestNode(t, slowCfg)

	req := Request{Key: "fn", Source: nopSource, Args: "{}"}
	rf, err := invoke(t, fast, engF, req)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := invoke(t, slow, engS, req)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Latency < 3*rf.Latency {
		t.Errorf("no-AO cold %v not >3x AO cold %v (paper: 42 vs 7.5 ms)", rs.Latency, rf.Latency)
	}
}

func TestNoFrameLeakAcrossInvocations(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "fn", Source: nopSource, Args: "{}"}
	invoke(t, n, eng, req)
	base := n.MemStats().FramesInUse

	// Steady-state hot invocations must not grow memory monotonically
	// beyond the cached UC's accumulation, which reclaim can recover.
	for i := 0; i < 10; i++ {
		invoke(t, n, eng, req)
	}
	n.reclaimAll(nil)
	after := n.MemStats().FramesInUse
	// The fn snapshot remains; idle UCs are gone. Allow the snapshot
	// plus slack.
	if after > base+int64(10*mem.PageSize) && after > base*2 {
		t.Errorf("frames grew %d → %d", base, after)
	}
}

func TestPathString(t *testing.T) {
	if PathCold.String() != "cold" || PathWarm.String() != "warm" || PathHot.String() != "hot" {
		t.Error("path names")
	}
}

func TestProxyMappingsTrackUCs(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "fn", Source: nopSource, Args: "{}"}
	invoke(t, n, eng, req)
	in, _ := n.Proxy().Mappings()
	if in == 0 {
		t.Error("no internal proxy mapping for the cached idle UC")
	}
	// Reclaiming the idle UCs removes their mappings.
	n.reclaimAll(nil)
	in, _ = n.Proxy().Mappings()
	if in != 0 {
		t.Errorf("mappings leaked after reclaim: %d", in)
	}
}

func TestUCsSpreadAcrossCores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	n, eng := newTestNode(t, cfg)
	// Deploy several idle UCs; resident cores should rotate.
	cores := map[int]bool{}
	eng.Go("d", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			mu, _, err := n.deploy(p, n.runtimeSnap, nil, PathWarm)
			if err != nil {
				t.Error(err)
				return
			}
			cores[mu.core] = true
		}
	})
	eng.Run()
	if len(cores) != 4 {
		t.Errorf("UCs placed on %d cores, want 4", len(cores))
	}
}

func TestTracerRecordsNodeTimeline(t *testing.T) {
	cfg := DefaultConfig()
	tr := trace.New(0)
	cfg.Tracer = tr
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "traced/fn", Source: nopSource, Args: "{}"}
	invoke(t, n, eng, req)
	invoke(t, n, eng, req)

	invokes := tr.ByKind(trace.KindInvoke)
	if len(invokes) != 2 {
		t.Fatalf("invoke spans = %d", len(invokes))
	}
	if invokes[0].Path != "cold" || invokes[1].Path != "hot" {
		t.Errorf("paths = %s, %s", invokes[0].Path, invokes[1].Path)
	}
	if invokes[0].Dur <= invokes[1].Dur {
		t.Errorf("cold span %v not longer than hot %v", invokes[0].Dur, invokes[1].Dur)
	}
	captures := tr.ByKind(trace.KindCapture)
	if len(captures) != 1 || captures[0].Key != "traced/fn" {
		t.Errorf("captures = %+v", captures)
	}
	// Chrome export of a real node trace parses.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("invalid chrome trace JSON")
	}
}

func TestMultiRuntimeNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runtimes = []string{"nodejs", "python"}
	n, eng := newTestNode(t, cfg)
	if got := n.Runtimes(); len(got) != 2 || got[0] != "nodejs" || got[1] != "python" {
		t.Fatalf("runtimes = %v", got)
	}

	// Invocations on each runtime; distinct base snapshots serve them.
	rn, err := invoke(t, n, eng, Request{Key: "a/node", Source: nopSource, Args: "{}", Runtime: "nodejs"})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := invoke(t, n, eng, Request{Key: "a/py", Source: nopSource, Args: "{}", Runtime: "python"})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Path != PathCold || rp.Path != PathCold {
		t.Errorf("paths = %v, %v", rn.Path, rp.Path)
	}
	// Hot reuse works per runtime.
	rp2, _ := invoke(t, n, eng, Request{Key: "a/py", Source: nopSource, Args: "{}", Runtime: "python"})
	if rp2.Path != PathHot {
		t.Errorf("python second = %v", rp2.Path)
	}

	// The python runtime snapshot is far smaller than the Node.js one.
	nodeSnap := n.runtimeSnaps["nodejs"]
	pySnap := n.runtimeSnaps["python"]
	if pySnap.DiffBytes() >= nodeSnap.DiffBytes()/2 {
		t.Errorf("python image %d not much smaller than nodejs %d",
			pySnap.DiffBytes(), nodeSnap.DiffBytes())
	}
}

func TestUnknownRuntimeRejected(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	_, err := invoke(t, n, eng, Request{Key: "x", Source: nopSource, Args: "{}", Runtime: "ruby"})
	if err == nil {
		t.Fatal("unknown runtime accepted")
	}
}

func TestNewNodeUnknownRuntimeFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runtimes = []string{"fortran"}
	eng := sim.NewEngine()
	if _, err := NewNode(eng, cfg); err == nil {
		t.Fatal("bad runtime config accepted")
	}
}

func TestGuestTrafficRoutesThroughProxy(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	invoke(t, n, eng, Request{Key: "net/fn", Source: nopSource, Args: "{}"})
	in, out := n.Proxy().Traffic()
	if in == 0 || out == 0 {
		t.Errorf("proxy traffic in=%d out=%d; guest hypercalls not routed", in, out)
	}
}

func TestExportAdoptBetweenNodes(t *testing.T) {
	// Two nodes with identical base images: export a function snapshot
	// from A, adopt the diff on B, then invoke warm on B.
	engA := sim.NewEngine()
	a, err := NewNode(engA, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Key: "mig/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, a, engA, req); err != nil {
		t.Fatal(err)
	}
	if !a.HasSnapshot("mig/fn") || a.SnapshotDiffBytes("mig/fn") == 0 {
		t.Fatal("sender missing snapshot")
	}
	if !a.HasIdleUC("mig/fn") {
		t.Fatal("sender missing idle UC")
	}

	var wire bytes.Buffer
	if err := a.ExportSnapshot("mig/fn", &wire); err != nil {
		t.Fatal(err)
	}
	if err := a.ExportSnapshot("missing", &wire); err == nil {
		t.Error("export of missing snapshot succeeded")
	}

	engB := sim.NewEngine()
	b, err := NewNode(engB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	diff, err := snapshot.Import(&wire)
	if err != nil {
		t.Fatal(err)
	}
	engB.Go("adopt", func(p *sim.Proc) {
		if err := b.AdoptDiff(p, "mig/fn", diff); err != nil {
			t.Error(err)
		}
	})
	engB.Run()
	if !b.HasSnapshot("mig/fn") {
		t.Fatal("receiver missing adopted snapshot")
	}
	// The adopted function serves a warm start on B, no source needed
	// beyond the diff payload.
	res, err := invoke(t, b, engB, Request{Key: "mig/fn", Args: "{}"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm {
		t.Errorf("adopted path = %v, want warm", res.Path)
	}
	if !strings.Contains(res.Output, `"ok":true`) {
		t.Errorf("output = %q", res.Output)
	}
}

func TestNodeAccessors(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	if n.Engine() != eng {
		t.Error("Engine accessor")
	}
	if n.RuntimeSnapshot() == nil || n.Store() == nil || n.Cores() == nil {
		t.Error("nil accessor")
	}
	if n.IdleUCs() != 0 {
		t.Errorf("idle = %d", n.IdleUCs())
	}
	invoke(t, n, eng, Request{Key: "fn", Source: nopSource, Args: "{}"})
	if n.IdleUCs() != 1 {
		t.Errorf("idle = %d after invoke", n.IdleUCs())
	}
}
