package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"seuss/internal/fault"
	"seuss/internal/policy"
	"seuss/internal/sim"
)

// stubPolicy is a fully scripted lifecycle policy: fixed windows, an
// explicit prewarm offset, and counters for the hook calls — the
// reaper's behaviour isolated from any real policy's estimation.
type stubPolicy struct {
	ka, ska        time.Duration
	prewarmAfter   time.Duration // PrewarmAt = now + prewarmAfter when > 0
	invokes        int
	pressureEvents int
}

func (s *stubPolicy) Name() string                               { return "stub" }
func (s *stubPolicy) RecordInvoke(key string, now time.Duration) { s.invokes++ }
func (s *stubPolicy) RecordPressure(key string, now time.Duration) {
	s.pressureEvents++
}
func (s *stubPolicy) KeepAlive(key string, now time.Duration) time.Duration { return s.ka }
func (s *stubPolicy) SnapshotKeepAlive(key string, now time.Duration) time.Duration {
	return s.ska
}
func (s *stubPolicy) PrewarmAt(key string, now time.Duration) (time.Duration, bool) {
	if s.prewarmAfter <= 0 {
		return 0, false
	}
	return now + s.prewarmAfter, true
}
func (s *stubPolicy) Clone() policy.Policy { return s }

// policyTick advances the virtual clock to `at` and runs one reaper
// pass there, returning its TickStats.
func policyTick(t *testing.T, n *Node, eng *sim.Engine, at time.Duration) TickStats {
	t.Helper()
	var ts TickStats
	eng.Go("reaper", func(p *sim.Proc) {
		if d := at - time.Duration(p.Now()); d > 0 {
			p.Sleep(d)
		}
		ts = n.PolicyTick(p)
	})
	eng.Run()
	return ts
}

// TestPolicyKeepAliveExpiresIdleUCs: an idle UC past its keep-alive
// window is destroyed by the reaper, but the function snapshot stays
// resident — the next hit is warm, not cold.
func TestPolicyKeepAliveExpiresIdleUCs(t *testing.T) {
	pol := &stubPolicy{ka: 30 * time.Second, ska: 10 * time.Minute}
	cfg := DefaultConfig()
	cfg.Policy = pol
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	if n.IdleUCs() != 1 {
		t.Fatalf("idle UCs = %d, want 1", n.IdleUCs())
	}

	// Inside the window: nothing expires.
	if ts := policyTick(t, n, eng, 10*time.Second); ts.ExpiredUCs != 0 {
		t.Fatalf("tick inside window expired %d UCs", ts.ExpiredUCs)
	}

	ts := policyTick(t, n, eng, 40*time.Second)
	if ts.ExpiredUCs != 1 || ts.DemotedLineages != 0 {
		t.Fatalf("tick = %+v, want 1 expired UC, 0 demoted", ts)
	}
	if n.IdleUCs() != 0 {
		t.Errorf("idle UCs = %d after expiry, want 0", n.IdleUCs())
	}
	if n.Stats().PolicyExpirations != 1 {
		t.Errorf("PolicyExpirations = %d, want 1", n.Stats().PolicyExpirations)
	}

	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm {
		t.Errorf("post-expiry path = %v, want warm (snapshot survived)", res.Path)
	}
	if pol.invokes == 0 {
		t.Error("policy never saw RecordInvoke")
	}
}

// TestPolicyScaleToZeroLukewarmByteIdentical: when the snapshot window
// also lapses, the lineage is demoted to the disk tier and freed from
// RAM; the next invocation lukewarm-restores and produces exactly the
// output a warm deploy from the same snapshot produced, and the tier
// bytes are untouched by the restore.
func TestPolicyScaleToZeroLukewarmByteIdentical(t *testing.T) {
	store := newTierStore(t, -1)
	cfg := DefaultConfig()
	cfg.Policy = &stubPolicy{ka: 30 * time.Second, ska: 60 * time.Second}
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	n.reclaimAll(nil)
	warmRes, err := invoke(t, n, eng, req)
	if err != nil || warmRes.Path != PathWarm {
		t.Fatalf("warm reference: path=%v err=%v", warmRes.Path, err)
	}

	// First stage at +40s: the idle UC dies, the snapshot stays.
	if ts := policyTick(t, n, eng, 40*time.Second); ts.ExpiredUCs != 1 || ts.DemotedLineages != 0 {
		t.Fatalf("first tick = %+v, want UC-only expiry", ts)
	}
	if n.CachedSnapshots() != 1 {
		t.Fatalf("snapshot demoted too early")
	}

	// Second stage at +70s: scale to zero.
	ts := policyTick(t, n, eng, 70*time.Second)
	if ts.DemotedLineages != 1 {
		t.Fatalf("second tick = %+v, want 1 demoted lineage", ts)
	}
	if n.CachedSnapshots() != 0 {
		t.Errorf("snapshot still resident after scale-to-zero")
	}
	if !store.Has("fn/acct/fn") {
		t.Fatal("scale-to-zero left no tier entry")
	}
	demoted, err := store.Get("fn/acct/fn")
	if err != nil {
		t.Fatal(err)
	}

	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathLukewarm {
		t.Fatalf("post-demote path = %v, want lukewarm", res.Path)
	}
	if res.Output != warmRes.Output {
		t.Errorf("lukewarm output %q != warm output %q", res.Output, warmRes.Output)
	}
	restored, err := store.Get("fn/acct/fn")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(demoted, restored) {
		t.Error("tier bytes changed across the restore")
	}
}

// TestPolicyScaleToZeroRestoresDivergeEntropy: two fresh nodes
// restoring the lineage a reaper demoted still re-draw guest entropy —
// scale-to-zero composes with the uniqueness reseed, not around it.
func TestPolicyScaleToZeroRestoresDivergeEntropy(t *testing.T) {
	store := newTierStore(t, -1)
	cfg := DefaultConfig()
	cfg.Policy = &stubPolicy{ka: 10 * time.Second, ska: 20 * time.Second}
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/rand", Source: randSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	if ts := policyTick(t, n, eng, 30*time.Second); ts.DemotedLineages != 1 {
		t.Fatalf("tick = %+v, want 1 demoted lineage", ts)
	}

	restore := func() Result {
		c := DefaultConfig()
		c.SnapStore = store
		nn, ee := newTestNode(t, c)
		res, err := invoke(t, nn, ee, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != PathLukewarm {
			t.Fatalf("path = %v, want lukewarm", res.Path)
		}
		return res
	}
	l1, l2 := restore(), restore()
	if l1.Output == l2.Output {
		t.Errorf("restores from a reaper-demoted lineage replayed the same RNG stream: %s", l1.Output)
	}
}

// TestPolicyPrewarmPromotesAheadOfRecurrence: a demoted lineage whose
// policy predicted a recurrence is promoted back once the predicted
// instant passes — the arrival that follows lands warm, not lukewarm.
func TestPolicyPrewarmPromotesAheadOfRecurrence(t *testing.T) {
	store := newTierStore(t, -1)
	cfg := DefaultConfig()
	cfg.Policy = &stubPolicy{ka: 30 * time.Second, ska: 60 * time.Second, prewarmAfter: 90 * time.Second}
	cfg.SnapStore = store
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}

	// +70s: scale to zero; prewarm scheduled for 70s+90s = +160s.
	if ts := policyTick(t, n, eng, 70*time.Second); ts.DemotedLineages != 1 {
		t.Fatalf("demote tick = %+v", ts)
	}
	// +100s: prediction not due yet.
	if ts := policyTick(t, n, eng, 100*time.Second); ts.Prewarmed != 0 {
		t.Fatalf("early tick prewarmed %d", ts.Prewarmed)
	}
	// +165s: due — the lineage comes back before any request asks.
	ts := policyTick(t, n, eng, 165*time.Second)
	if ts.Prewarmed != 1 {
		t.Fatalf("due tick = %+v, want 1 prewarm", ts)
	}
	st := n.Stats()
	if st.PolicyPrewarms != 1 || st.PolicyPrewarmMisfires != 0 {
		t.Errorf("prewarm stats = %+v", st)
	}

	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm {
		t.Errorf("post-prewarm path = %v, want warm (promotion hid the tier)", res.Path)
	}
}

// TestPolicyMisfireFaultEarlyExpiry: the policy-misfire point collapses
// every keep-alive window to zero for one tick. State demotes long
// before its window — and the next hit still lukewarm-restores
// correctly, which is what makes the fault safe.
func TestPolicyMisfireFaultEarlyExpiry(t *testing.T) {
	store := newTierStore(t, -1)
	cfg := DefaultConfig()
	cfg.Policy = &stubPolicy{ka: 10 * time.Minute, ska: 10 * time.Minute}
	cfg.SnapStore = store
	cfg.Faults = fault.New(fault.Config{
		Seed:     faultSeed(t),
		Schedule: map[fault.Point][]uint64{fault.PointPolicyMisfire: {1}},
	})
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}

	// One misfiring tick runs the whole lifecycle in fast-forward: the
	// idle UC dies, the lineage demotes through the tier, and the
	// misfire's unpredicted prewarm pulls it straight back — a full
	// encode/decode round trip decades ahead of schedule.
	ts := policyTick(t, n, eng, time.Second)
	if ts.ExpiredUCs != 1 || ts.DemotedLineages != 1 || ts.Prewarmed != 1 {
		t.Fatalf("misfire tick = %+v, want expiry, demotion, and misfire prewarm", ts)
	}
	st := n.Stats()
	if st.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", st.FaultsInjected)
	}
	if st.SnapshotsDemoted != 1 || st.SnapshotsPromoted != 1 {
		t.Errorf("tier round trip = %d demoted / %d promoted, want 1/1", st.SnapshotsDemoted, st.SnapshotsPromoted)
	}
	if st.PolicyPrewarmMisfires != 1 {
		t.Errorf("PolicyPrewarmMisfires = %d, want 1", st.PolicyPrewarmMisfires)
	}

	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm {
		t.Errorf("post-misfire path = %v, want warm from the restored snapshot", res.Path)
	}
	if !strings.Contains(res.Output, `"ok":true`) {
		t.Errorf("restored output = %q", res.Output)
	}
}

// TestPolicyMisfireFaultUnpredictedPrewarm: the other half of the
// fault point — a misfiring tick promotes a lineage no prediction was
// due for, counted as outcome="misfire" rather than a real prewarm.
func TestPolicyMisfireFaultUnpredictedPrewarm(t *testing.T) {
	store := newTierStore(t, -1)
	cfg := DefaultConfig()
	cfg.Policy = &stubPolicy{ka: 10 * time.Second, ska: 20 * time.Second}
	cfg.SnapStore = store
	cfg.Faults = fault.New(fault.Config{
		Seed:     faultSeed(t),
		Schedule: map[fault.Point][]uint64{fault.PointPolicyMisfire: {2}},
	})
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	// Tick 1 (no fault): regular scale-to-zero; no prewarm is scheduled
	// because the stub predicts none.
	if ts := policyTick(t, n, eng, 30*time.Second); ts.DemotedLineages != 1 || ts.Prewarmed != 0 {
		t.Fatalf("demote tick = %+v", ts)
	}
	// Tick 2 (misfire): the reaper promotes the demoted lineage anyway.
	ts := policyTick(t, n, eng, 60*time.Second)
	if ts.Prewarmed != 1 {
		t.Fatalf("misfire tick = %+v, want 1 prewarm", ts)
	}
	st := n.Stats()
	if st.PolicyPrewarmMisfires != 1 || st.PolicyPrewarms != 0 {
		t.Errorf("prewarm stats = %+v, want the promotion counted as a misfire", st)
	}

	res, err := invoke(t, n, eng, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathWarm {
		t.Errorf("post-misfire-prewarm path = %v, want warm", res.Path)
	}
}

// TestPolicyIdleCapEvictionNotifiesPressure: satellite 1 — the
// MaxIdlePerFn cap evicts the oldest idle UC (LRU), accounts it as a
// reclaim, flushes the fn snapshot toward the tier, and reports the
// pressure event to the policy.
func TestPolicyIdleCapEvictionNotifiesPressure(t *testing.T) {
	store := newTierStore(t, -1)
	pol := &stubPolicy{ka: 10 * time.Minute, ska: 10 * time.Minute}
	cfg := DefaultConfig()
	cfg.Policy = pol
	cfg.SnapStore = store
	cfg.MaxIdlePerFn = 1
	n, eng := newTestNode(t, cfg)
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	// Two concurrent invocations: one hot (takes the idle UC), one warm
	// (fresh deploy). Both UCs return to a cap of one — the overflow
	// evicts the older resident.
	for i := 0; i < 2; i++ {
		eng.Go("client", func(p *sim.Proc) {
			if _, err := n.Invoke(p, req); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()

	if n.IdleUCs() != 1 {
		t.Errorf("idle UCs = %d, want cap of 1", n.IdleUCs())
	}
	st := n.Stats()
	if st.UCsReclaimed != 1 {
		t.Errorf("UCsReclaimed = %d, want 1", st.UCsReclaimed)
	}
	if pol.pressureEvents == 0 {
		t.Error("cap eviction never reported pressure to the policy")
	}
	if !store.Has("fn/acct/fn") {
		t.Error("cap eviction did not flush the fn snapshot to the tier")
	}
}

// TestPolicyTickWithoutPolicyIsNoOp: a node with no lifecycle policy
// never expires anything — the pre-subsystem behaviour, bit for bit.
func TestPolicyTickWithoutPolicyIsNoOp(t *testing.T) {
	n, eng := newTestNode(t, DefaultConfig())
	req := Request{Key: "acct/fn", Source: nopSource, Args: "{}"}
	if _, err := invoke(t, n, eng, req); err != nil {
		t.Fatal(err)
	}
	if ts := policyTick(t, n, eng, time.Hour); ts != (TickStats{}) {
		t.Fatalf("tick = %+v, want zero", ts)
	}
	if n.IdleUCs() != 1 || n.CachedSnapshots() != 1 {
		t.Errorf("no-policy tick touched residency: idle=%d snaps=%d", n.IdleUCs(), n.CachedSnapshots())
	}
}
